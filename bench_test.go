// Benchmarks regenerating the measurements behind every table and figure of
// the paper, as testing.B benchmarks (the cmd/baskerbench harness prints
// the full formatted tables; these benches integrate with `go test -bench`).
//
// Naming: BenchmarkTable1_*, BenchmarkTable2_*, BenchmarkFig5_*, ... map to
// the experiment index of DESIGN.md §4. Numeric factorization only, like
// the paper. BENCH_SCALE can shrink the workloads (default 0.5).
package basker

import (
	"fmt"
	"os"
	"strconv"
	"testing"

	"repro/internal/core"
	"repro/internal/klu"
	"repro/internal/matgen"
	"repro/internal/pmkl"
	"repro/internal/slumt"
	"repro/internal/sparse"
)

func benchScale() float64 {
	if v := os.Getenv("BENCH_SCALE"); v != "" {
		if f, err := strconv.ParseFloat(v, 64); err == nil && f > 0 {
			return f
		}
	}
	return 0.5
}

func suiteMatrix(b *testing.B, name string) *sparse.CSC {
	for _, m := range matgen.TableISuite(benchScale()) {
		if m.Name == name {
			return m.Gen()
		}
	}
	b.Fatalf("unknown suite matrix %q", name)
	return nil
}

func benchKLU(b *testing.B, a *sparse.CSC) {
	sym, err := klu.Analyze(a, klu.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := klu.Factor(a, sym); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(a.Nnz()), "nnz")
}

func benchBasker(b *testing.B, a *sparse.CSC, threads int, mod func(*core.Options)) {
	opts := core.DefaultOptions()
	opts.Threads = threads
	if mod != nil {
		mod(&opts)
	}
	sym, err := core.Analyze(a, opts)
	if err != nil {
		b.Fatal(err)
	}
	var sim float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		num, err := core.Factor(a, sym)
		if err != nil {
			b.Fatal(err)
		}
		sim = num.SimulatedSeconds()
	}
	b.ReportMetric(sim*1e3, "sim-ms")
}

func benchPMKL(b *testing.B, a *sparse.CSC, threads int) {
	opts := pmkl.DefaultOptions()
	opts.Threads = threads
	sym, err := pmkl.Analyze(a, opts)
	if err != nil {
		b.Fatal(err)
	}
	var sim float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		num, err := pmkl.Factor(a, sym)
		if err != nil {
			b.Fatal(err)
		}
		sim = num.SimulatedSeconds(threads)
	}
	b.ReportMetric(sim*1e3, "sim-ms")
}

// ---- Table I: factor-size and numeric-factor cost per suite matrix ----

func BenchmarkTable1_KLU(b *testing.B) {
	for _, m := range matgen.TableISuite(benchScale()) {
		a := m.Gen()
		b.Run(m.Name, func(b *testing.B) { benchKLU(b, a) })
	}
}

func BenchmarkTable1_Basker8(b *testing.B) {
	for _, m := range matgen.TableISuite(benchScale()) {
		a := m.Gen()
		b.Run(m.Name, func(b *testing.B) { benchBasker(b, a, 8, nil) })
	}
}

func BenchmarkTable1_PMKL8(b *testing.B) {
	for _, m := range matgen.TableISuite(benchScale()) {
		a := m.Gen()
		b.Run(m.Name, func(b *testing.B) { benchPMKL(b, a, 8) })
	}
}

// ---- Table II: the mesh suite (PMKL's ideal inputs) ----

func BenchmarkTable2_PMKL(b *testing.B) {
	for _, m := range matgen.TableIISuite(benchScale()) {
		a := m.Gen()
		b.Run(m.Name, func(b *testing.B) { benchPMKL(b, a, 8) })
	}
}

// ---- Figure 5: raw time, three solvers on the six-matrix subset ----

func BenchmarkFig5(b *testing.B) {
	for _, m := range matgen.Fig5Subset(benchScale()) {
		a := m.Gen()
		for _, cores := range []int{1, 8, 16} {
			b.Run(fmt.Sprintf("%s/basker-%d", m.Name, cores), func(b *testing.B) {
				benchBasker(b, a, cores, nil)
			})
			b.Run(fmt.Sprintf("%s/pmkl-%d", m.Name, cores), func(b *testing.B) {
				benchPMKL(b, a, cores)
			})
			b.Run(fmt.Sprintf("%s/slumt-%d", m.Name, cores), func(b *testing.B) {
				sym, err := pmkl.Analyze(a, pmkl.Options{Threads: 1})
				if err != nil {
					b.Fatal(err)
				}
				var sim float64
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					num, err := slumt.FactorWithSymbolic(a, sym, slumt.Options{Threads: cores})
					if err != nil {
						b.Skip("slumt failed (matches the paper's rajat21 failure)")
					}
					sim = num.SimulatedSeconds(cores)
				}
				b.ReportMetric(sim*1e3, "sim-ms")
			})
		}
	}
}

// ---- Figure 6: core sweep for the speedup-vs-KLU plots ----

func BenchmarkFig6_Basker(b *testing.B) {
	for _, m := range matgen.Fig5Subset(benchScale()) {
		a := m.Gen()
		for _, cores := range []int{1, 2, 4, 8, 16} {
			b.Run(fmt.Sprintf("%s/p%d", m.Name, cores), func(b *testing.B) {
				benchBasker(b, a, cores, nil)
			})
		}
	}
}

func BenchmarkFig6_PMKL(b *testing.B) {
	for _, m := range matgen.Fig5Subset(benchScale()) {
		a := m.Gen()
		for _, cores := range []int{1, 2, 4, 8, 16} {
			b.Run(fmt.Sprintf("%s/p%d", m.Name, cores), func(b *testing.B) {
				benchPMKL(b, a, cores)
			})
		}
	}
}

// ---- Figure 7: the performance-profile inputs (per-solver suite sweep) ----

func BenchmarkFig7_Serial(b *testing.B) {
	for _, m := range matgen.TableISuite(benchScale())[:8] { // representative slice
		a := m.Gen()
		b.Run(m.Name+"/klu", func(b *testing.B) { benchKLU(b, a) })
		b.Run(m.Name+"/basker", func(b *testing.B) { benchBasker(b, a, 1, nil) })
		b.Run(m.Name+"/pmkl", func(b *testing.B) { benchPMKL(b, a, 1) })
	}
}

// ---- Figure 8: self-relative scaling on ideal inputs ----

func BenchmarkFig8_BaskerIdeal(b *testing.B) {
	for _, m := range matgen.BaskerIdealSubset(benchScale())[:3] {
		a := m.Gen()
		for _, cores := range []int{1, 4, 16} {
			b.Run(fmt.Sprintf("%s/p%d", m.Name, cores), func(b *testing.B) {
				benchBasker(b, a, cores, nil)
			})
		}
	}
}

func BenchmarkFig8_PMKLIdeal(b *testing.B) {
	for _, m := range matgen.TableIISuite(benchScale())[:3] {
		a := m.Gen()
		for _, cores := range []int{1, 4, 16} {
			b.Run(fmt.Sprintf("%s/p%d", m.Name, cores), func(b *testing.B) {
				benchPMKL(b, a, cores)
			})
		}
	}
}

// ---- §V-F: the Xyce transient sequence (refactorization path) ----

func BenchmarkXyceSequence(b *testing.B) {
	base := matgen.XyceSequenceBase(benchScale())
	const steps = 20
	mats := make([]*sparse.CSC, steps)
	for t := range mats {
		mats[t] = matgen.TransientStep(base, t, 777)
	}
	b.Run("basker-refactor", func(b *testing.B) {
		opts := core.DefaultOptions()
		opts.Threads = 8
		num, err := core.FactorDirect(mats[0], opts)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := num.Refactor(mats[1+i%(steps-1)]); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("klu-refactor", func(b *testing.B) {
		num, err := klu.FactorDirect(mats[0], klu.DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := num.Refactor(mats[1+i%(steps-1)]); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("pmkl-factor", func(b *testing.B) {
		opts := pmkl.DefaultOptions()
		opts.Threads = 8
		sym, err := pmkl.Analyze(mats[0], opts)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := pmkl.Factor(mats[1+i%(steps-1)], sym); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// ---- PR 2: the zero-allocation refactorization pipeline ----

// BenchmarkRefactor measures the steady-state serial Refactor — the pure
// numeric-scatter path (no Permute, no ExtractBlock, no goroutines). The
// acceptance bar is 0 allocs/op once the pipeline is warm.
func BenchmarkRefactor(b *testing.B) {
	base := matgen.XyceSequenceBase(benchScale())
	const steps = 20
	mats := make([]*sparse.CSC, steps)
	for t := range mats {
		mats[t] = matgen.TransientStep(base, t, 777)
	}
	num, err := core.FactorDirect(mats[0], core.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	// Warm: build the entry maps and grow every pooled buffer.
	for t := 1; t < 4; t++ {
		if err := num.Refactor(mats[t]); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := num.Refactor(mats[1+i%(steps-1)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRefactorParallel drives the unified scheduler (fine-ND blocks
// concurrent with the fine-BTF partition); the only steady-state
// allocations left on this path are the per-sweep goroutine launches.
func BenchmarkRefactorParallel(b *testing.B) {
	base := matgen.XyceSequenceBase(benchScale())
	const steps = 20
	mats := make([]*sparse.CSC, steps)
	for t := range mats {
		mats[t] = matgen.TransientStep(base, t, 777)
	}
	opts := core.DefaultOptions()
	opts.Threads = 8
	num, err := core.FactorDirect(mats[0], opts)
	if err != nil {
		b.Fatal(err)
	}
	for t := 1; t < 4; t++ {
		if err := num.Refactor(mats[t]); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := num.Refactor(mats[1+i%(steps-1)]); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- PR 3: the pruned, pooled, fully-overlapped fresh factorization ----

// BenchmarkFactorParallel measures the fresh numeric factorization over the
// whole Table I suite: per-matrix fresh Factor (new pivots every call)
// through the pooled FactorInto serving path — the hot loop a workload that
// cannot trust cached pivots runs. The acceptance bar for this PR is a
// >= 1.5x geomean speedup over the pre-PR two-phase Factor.
func BenchmarkFactorParallel(b *testing.B) {
	for _, m := range matgen.TableISuite(benchScale()) {
		a := m.Gen()
		b.Run(m.Name, func(b *testing.B) {
			opts := core.DefaultOptions()
			opts.Threads = 8
			sym, err := core.Analyze(a, opts)
			if err != nil {
				b.Fatal(err)
			}
			num, err := core.Factor(a, sym)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := num.FactorInto(a); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFactorPruning is the pruning ablation on the fresh serial path.
func BenchmarkFactorPruning(b *testing.B) {
	a := suiteMatrix(b, "G2_Circuit")
	for _, noPrune := range []bool{false, true} {
		name := "pruned"
		if noPrune {
			name = "unpruned"
		}
		b.Run(name, func(b *testing.B) {
			benchBasker(b, a, 8, func(o *core.Options) { o.NoPrune = noPrune })
		})
	}
}

// BenchmarkPoolFactor drives repeated same-pattern fresh factorization
// through the pool: cached symbolic analysis plus recycled numeric storage.
// The acceptance bar is <= 5% of the factor-every-call allocations.
func BenchmarkPoolFactor(b *testing.B) {
	base := matgen.XyceSequenceBase(benchScale() * 0.2)
	const steps = 8
	mats := make([]*sparse.CSC, steps)
	for t := range mats {
		mats[t] = matgen.TransientStep(base, t, 99)
	}
	opts := Options{Threads: 2, BigBlockMin: 64}
	b.Run("factor-every-call", func(b *testing.B) {
		solver := New(opts)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := solver.Factor(mats[i%steps]); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("pool-factor", func(b *testing.B) {
		pool := NewPool(PoolOptions{Options: opts})
		for w := 0; w < 3; w++ {
			lease, err := pool.Factor(mats[w])
			if err != nil {
				b.Fatal(err)
			}
			lease.Release()
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			lease, err := pool.Factor(mats[i%steps])
			if err != nil {
				b.Fatal(err)
			}
			lease.Release()
		}
	})
}

// ---- §IV: synchronization ablation (wall-clock, real goroutines) ----

func BenchmarkSyncAblation(b *testing.B) {
	a := suiteMatrix(b, "G2_Circuit")
	for _, cores := range []int{4, 8} {
		b.Run(fmt.Sprintf("p2p-%d", cores), func(b *testing.B) {
			benchWall(b, a, cores, core.SyncPointToPoint)
		})
		b.Run(fmt.Sprintf("barrier-%d", cores), func(b *testing.B) {
			benchWall(b, a, cores, core.SyncBarrier)
		})
	}
}

func benchWall(b *testing.B, a *sparse.CSC, threads int, mode core.SyncMode) {
	opts := core.DefaultOptions()
	opts.Threads = threads
	opts.Sync = mode
	sym, err := core.Analyze(a, opts)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Factor(a, sym); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- DESIGN.md §5 ablations: BTF / MWCM / local AMD ----

func BenchmarkAblationBTF(b *testing.B) {
	a := suiteMatrix(b, "rajat21")
	b.Run("with-btf", func(b *testing.B) { benchBasker(b, a, 8, nil) })
	b.Run("no-btf", func(b *testing.B) {
		benchBasker(b, a, 8, func(o *core.Options) { o.UseBTF = false })
	})
}

func BenchmarkAblationMWCM(b *testing.B) {
	a := suiteMatrix(b, "Xyce1")
	b.Run("with-mwcm", func(b *testing.B) { benchBasker(b, a, 8, nil) })
	b.Run("no-mwcm", func(b *testing.B) {
		benchBasker(b, a, 8, func(o *core.Options) { o.UseMWCM = false })
	})
}

func BenchmarkAblationLocalAMD(b *testing.B) {
	a := suiteMatrix(b, "Xyce3")
	b.Run("with-amd", func(b *testing.B) { benchBasker(b, a, 8, nil) })
	b.Run("no-amd", func(b *testing.B) {
		benchBasker(b, a, 8, func(o *core.Options) { o.LocalAMD = false })
	})
}

// ---- substrate micro-benchmarks ----

func BenchmarkGPFactorSerial(b *testing.B) {
	a := suiteMatrix(b, "bcircuit")
	benchKLU(b, a)
}

// ---- Concurrent solve subsystem: batched multi-RHS and pool throughput ----

// BenchmarkSolvePhase compares a loop of single Solve calls against the
// blocked SolveMany sweep (same serial factorization: isolates the
// cache-blocking win, zero steady-state allocations) and against SolveMany
// with panel parallelism (the intended serving configuration).
func BenchmarkSolvePhase(b *testing.B) {
	a := suiteMatrix(b, "Power0")
	const nrhs = 32
	master := make([]float64, a.N)
	for i := range master {
		master[i] = 1 + float64(i%7)
	}
	batch := make([][]float64, nrhs)
	for c := range batch {
		batch[c] = make([]float64, a.N)
	}
	fill := func() {
		for c := range batch {
			copy(batch[c], master)
		}
	}
	serial, err := New(Options{Threads: 1}).Factor(a)
	if err != nil {
		b.Fatal(err)
	}
	parallel, err := New(Options{Threads: 8}).Factor(a)
	if err != nil {
		b.Fatal(err)
	}
	fill()
	serial.SolveMany(batch) // warm workspace pools before measuring
	parallel.SolveMany(batch)

	b.Run("solve-loop", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			fill()
			for c := range batch {
				serial.Solve(batch[c])
			}
		}
	})
	b.Run("solve-many", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			fill()
			serial.SolveMany(batch)
		}
	})
	b.Run("solve-many-parallel", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			fill()
			parallel.SolveMany(batch)
		}
	})
}

// BenchmarkPoolThroughput drives the pattern-keyed factorization pool the
// way a serving layer would: concurrent goroutines stamping same-pattern
// transient steps, against the factor-every-call baseline.
func BenchmarkPoolThroughput(b *testing.B) {
	base := matgen.XyceSequenceBase(benchScale() * 0.2)
	const steps = 16
	mats := make([]*sparse.CSC, steps)
	for t := range mats {
		mats[t] = matgen.TransientStep(base, t, 99)
	}
	opts := Options{Threads: 2, BigBlockMin: 64}

	b.Run("factor-every-call", func(b *testing.B) {
		solver := New(opts)
		b.RunParallel(func(pb *testing.PB) {
			rhs := make([]float64, base.N)
			i := 0
			for pb.Next() {
				f, err := solver.Factor(mats[i%steps])
				if err != nil {
					b.Error(err)
					return
				}
				for j := range rhs {
					rhs[j] = 1
				}
				f.Solve(rhs)
				i++
			}
		})
	})
	b.Run("pool", func(b *testing.B) {
		pool := NewPool(PoolOptions{Options: opts})
		rhs0 := make([]float64, base.N)
		if err := pool.Solve(mats[0], rhs0); err != nil { // prime the pattern
			b.Fatal(err)
		}
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			rhs := make([]float64, base.N)
			i := 0
			for pb.Next() {
				for j := range rhs {
					rhs[j] = 1
				}
				if err := pool.Solve(mats[i%steps], rhs); err != nil {
					b.Error(err)
					return
				}
				i++
			}
		})
		st := pool.Stats()
		b.ReportMetric(float64(st.Hits)/float64(st.Hits+st.Misses)*100, "hit%")
	})
}

func BenchmarkSolveOnly(b *testing.B) {
	a := suiteMatrix(b, "Power0")
	opts := core.DefaultOptions()
	opts.Threads = 4
	num, err := core.FactorDirect(a, opts)
	if err != nil {
		b.Fatal(err)
	}
	rhs := make([]float64, a.N)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range rhs {
			rhs[j] = 1
		}
		num.Solve(rhs)
	}
}
