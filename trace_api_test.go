package basker

import (
	"bytes"
	"encoding/json"
	"expvar"
	"math"
	"math/rand"
	"testing"

	"repro/internal/matgen"
)

// TestTracePublicAPI drives the exported observability surface end to
// end: a Tracer attached via Options.Trace, per-sweep Profiles for every
// pipeline phase touched, the Chrome trace export, and the extended
// Stats counters.
func TestTracePublicAPI(t *testing.T) {
	tr := NewTracer(0)
	base := matgen.XyceSequenceBase(0.1)
	f, err := New(Options{Threads: 4, BigBlockMin: 64, Trace: tr}).Factor(base)
	if err != nil {
		t.Fatal(err)
	}
	var last *Matrix
	for step := 1; step <= 3; step++ {
		last = matgen.TransientStep(base, step, 5)
		if err := f.Refactor(last); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
	}
	rng := rand.New(rand.NewSource(9))
	x := make([]float64, last.N)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	b := make([]float64, last.N)
	last.MulVec(b, x)
	f.Solve(b)
	for i := range x {
		if math.Abs(b[i]-x[i]) > 1e-6*(1+math.Abs(x[i])) {
			t.Fatalf("x[%d] = %v, want %v", i, b[i], x[i])
		}
	}

	for _, phase := range []Phase{PhaseAnalyze, PhaseFactor, PhaseRefactor} {
		p, ok := f.Profile(phase)
		if !ok {
			t.Fatalf("no %v profile", phase)
		}
		if p.Events == 0 || p.WallSeconds <= 0 {
			t.Fatalf("%v profile is empty: %+v", phase, p)
		}
	}
	if got := len(f.Profiles()); got < 5 { // analyze + factor + 3 refactors
		t.Fatalf("profiles = %d, want >= 5", got)
	}

	var buf bytes.Buffer
	if err := f.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("WriteTrace output is not JSON: %v", err)
	}
	if len(out.TraceEvents) == 0 {
		t.Fatal("WriteTrace emitted no events")
	}

	st := f.Stats(last)
	if st.SyncWaitSeconds < 0 || st.SyncWaits < 0 {
		t.Fatalf("negative sync accounting: %+v", st)
	}
	if st.PivotFallbacks < 0 || st.DenseKernelHits < 0 {
		t.Fatalf("negative counters: %+v", st)
	}
	if st.DenseKernels < 0 || st.DirtyBlocks < 0 || st.DirtyBlocksTotal < 0 {
		t.Fatalf("negative block counters: %+v", st)
	}
}

// TestTraceWriteTraceNilTracer pins WriteTrace's behavior without a
// tracer: a valid, empty Chrome trace rather than an error.
func TestTraceWriteTraceNilTracer(t *testing.T) {
	base := matgen.XyceSequenceBase(0.1)
	f, err := New(Options{Threads: 1, BigBlockMin: 64}).Factor(base)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := f.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("empty trace is not JSON: %v", err)
	}
	if len(out.TraceEvents) != 0 {
		t.Fatalf("expected no events, got %d", len(out.TraceEvents))
	}
}

// TestTraceExpvarBridge publishes the pool counters and tracer totals and
// reads them back through the expvar registry, the way a /debug/vars
// scrape would.
func TestTraceExpvarBridge(t *testing.T) {
	tr := NewTracer(0)
	base := matgen.XyceSequenceBase(0.1)
	pool := NewPool(PoolOptions{Options: Options{Threads: 2, BigBlockMin: 64, Trace: tr}})
	lease, err := pool.Factor(base)
	if err != nil {
		t.Fatal(err)
	}
	lease.Release()

	// expvar names are global and Publish panics on reuse, so the names
	// are test-specific and published exactly once.
	pool.PublishExpvar("basker_test_pool")
	PublishTraceExpvar("basker_test_trace", tr)

	var ps PoolStats
	if err := json.Unmarshal([]byte(expvar.Get("basker_test_pool").String()), &ps); err != nil {
		t.Fatalf("pool expvar is not JSON: %v", err)
	}
	if ps.Misses < 1 {
		t.Fatalf("pool stats missing the factor miss: %+v", ps)
	}
	var totals map[string]float64
	if err := json.Unmarshal([]byte(expvar.Get("basker_test_trace").String()), &totals); err != nil {
		t.Fatalf("trace expvar is not JSON: %v", err)
	}
	if totals["factor_sweeps"] < 1 {
		t.Fatalf("trace totals missing factor sweep: %v", totals)
	}
	if totals["analyze_sweeps"] < 1 {
		t.Fatalf("trace totals missing analyze sweep: %v", totals)
	}
}
