package basker

import (
	"context"
	"runtime"
)

// ShardedPool spreads a Pool's pattern-keyed cache over N independent
// shards, picked by pattern hash: every operation on one sparsity pattern
// always lands on the same shard, so each shard upholds the full Pool
// contract for the patterns it owns, while patterns from different shards
// never touch the same mutex. This is the serving-layer form of the pool —
// a single Pool serializes all bookkeeping (idle-cache lookups, eviction
// sweeps, statistics) on one mutex, which under many-client mixed-pattern
// load becomes the one serial resource left; sharding divides it.
//
// Semantics relative to a single Pool:
//
//   - Leases are ordinary Leases; Release/Discard return them to the owning
//     shard automatically.
//   - PoolOptions.MaxConcurrentFactors stays a global bound: all shards
//     share one admission semaphore.
//   - PoolOptions.MaxBytes and MaxCachedPatterns are divided evenly across
//     shards (each shard enforces its slice independently), so the
//     aggregate bound is preserved but a single pattern family can use at
//     most its own shard's slice.
//   - Stats sums the per-shard counters; ShardStats exposes the split.
type ShardedPool struct {
	shards []*Pool
	mask   uint64
	// sharedSem notes that every shard aliases one admission semaphore, so
	// aggregated in-flight gauges must not double-count it.
	sharedSem bool
}

// DefaultShards is the shard count NewShardedPool picks for n <= 0: enough
// to keep pool bookkeeping off the critical path at the machine's
// parallelism (the next power of two at or above 2·GOMAXPROCS, at least 8).
func DefaultShards() int {
	n := 2 * runtime.GOMAXPROCS(0)
	if n < 8 {
		n = 8
	}
	return nextPow2(n)
}

func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// NewShardedPool returns a pool of n shards (n <= 0 selects DefaultShards;
// other values are rounded up to a power of two). Every shard uses opts,
// with MaxBytes and MaxCachedPatterns divided across shards and one shared
// MaxConcurrentFactors semaphore. NewShardedPool(1, opts) is a plain Pool
// behind the ShardedPool API — the baseline the load generator compares
// sharding against.
func NewShardedPool(n int, opts PoolOptions) *ShardedPool {
	if n <= 0 {
		n = DefaultShards()
	}
	n = nextPow2(n)
	shardOpts := opts
	// Admission control is installed globally below, not per shard.
	shardOpts.MaxConcurrentFactors = 0
	if opts.MaxBytes > 0 {
		shardOpts.MaxBytes = (opts.MaxBytes + int64(n) - 1) / int64(n)
	}
	if opts.MaxCachedPatterns > 0 {
		per := (opts.MaxCachedPatterns + n - 1) / n
		shardOpts.MaxCachedPatterns = per
	}
	sp := &ShardedPool{
		shards: make([]*Pool, n),
		mask:   uint64(n - 1),
	}
	var sem chan struct{}
	if opts.MaxConcurrentFactors > 0 {
		sem = make(chan struct{}, opts.MaxConcurrentFactors)
		sp.sharedSem = true
	}
	for i := range sp.shards {
		p := NewPool(shardOpts)
		p.sem = sem
		sp.shards[i] = p
	}
	return sp
}

// NumShards reports the shard count.
func (sp *ShardedPool) NumShards() int { return len(sp.shards) }

// shardOf routes a pattern key to its shard. The key's low bits come out of
// an FNV multiply, so a finalizer mix (splitmix64's) spreads them before
// masking; the mapping is a pure function of the pattern key, hence
// deterministic for a given pattern.
func (sp *ShardedPool) shardOf(key uint64) *Pool {
	key ^= key >> 33
	key *= 0xff51afd7ed558ccd
	key ^= key >> 33
	return sp.shards[key&sp.mask]
}

// ShardIndex reports which shard serves matrices with a's sparsity pattern
// — stable for the pool's lifetime (tests and traffic analyses use it; the
// serving layer never needs it).
func (sp *ShardedPool) ShardIndex(a *Matrix) int {
	key := patternKey(a)
	key ^= key >> 33
	key *= 0xff51afd7ed558ccd
	key ^= key >> 33
	return int(key & sp.mask)
}

// Acquire routes to the pattern's shard; see Pool.Acquire.
func (sp *ShardedPool) Acquire(a *Matrix) (*Lease, error) {
	return sp.AcquireCtx(context.Background(), a)
}

// AcquireCtx routes to the pattern's shard; see Pool.AcquireCtx.
func (sp *ShardedPool) AcquireCtx(ctx context.Context, a *Matrix) (*Lease, error) {
	key := patternKey(a)
	return sp.shardOf(key).acquireKeyed(ctx, a, key)
}

// Factor routes to the pattern's shard; see Pool.Factor.
func (sp *ShardedPool) Factor(a *Matrix) (*Lease, error) {
	key := patternKey(a)
	return sp.shardOf(key).factorKeyed(a, key)
}

// Solve factors (or refactors) a on its pattern's shard and solves
// A·x = b in place; see Pool.Solve.
func (sp *ShardedPool) Solve(a *Matrix, b []float64) error {
	lease, err := sp.Acquire(a)
	if err != nil {
		return err
	}
	err = lease.Solve(b)
	lease.Release()
	return err
}

// SolveMany is ShardedPool.Solve for a batch of right-hand sides.
func (sp *ShardedPool) SolveMany(a *Matrix, bs [][]float64) error {
	lease, err := sp.Acquire(a)
	if err != nil {
		return err
	}
	err = lease.SolveMany(bs)
	lease.Release()
	return err
}

// Stats sums the per-shard counters into one PoolStats. The in-flight
// fresh-factorization gauge reads the shared admission semaphore once
// (every shard aliases it), so it is never double-counted.
func (sp *ShardedPool) Stats() PoolStats {
	var agg PoolStats
	for i, p := range sp.shards {
		s := p.Stats()
		agg.Hits += s.Hits
		agg.Misses += s.Misses
		agg.FactorReuses += s.FactorReuses
		agg.Evictions += s.Evictions
		agg.MemEvictions += s.MemEvictions
		agg.PoisonEvictions += s.PoisonEvictions
		agg.Discards += s.Discards
		agg.Rejected += s.Rejected
		agg.Canceled += s.Canceled
		agg.QueueWaits += s.QueueWaits
		agg.Idle += s.Idle
		agg.BytesCached += s.BytesCached
		agg.CachedSymbolics += s.CachedSymbolics
		agg.LockWaitSeconds += s.LockWaitSeconds
		agg.LockHoldSeconds += s.LockHoldSeconds
		if !sp.sharedSem || i == 0 {
			agg.InFlightFactors += s.InFlightFactors
		}
	}
	return agg
}

// ShardStats snapshots every shard's own counters, in shard order — the
// load-balance view of the pattern-hash routing.
func (sp *ShardedPool) ShardStats() []PoolStats {
	out := make([]PoolStats, len(sp.shards))
	for i, p := range sp.shards {
		out[i] = p.Stats()
	}
	return out
}
