package basker

import "expvar"

// PublishExpvar publishes this pool's cache counters (PoolStats) under
// the given expvar name as a JSON object, so any HTTP server exposing
// /debug/vars makes them scrapable (Prometheus expvar collectors read
// the same endpoint). Each read snapshots the live counters. Publishing
// the same name twice panics, per expvar semantics — publish once at
// startup.
func (p *Pool) PublishExpvar(name string) {
	expvar.Publish(name, expvar.Func(func() any { return p.Stats() }))
}

// PublishExpvar publishes the sharded pool's aggregated counters
// (ShardedPool.Stats) under the given expvar name as a JSON object, exactly
// like Pool.PublishExpvar. Publish once at startup; expvar panics on
// duplicate names.
func (sp *ShardedPool) PublishExpvar(name string) {
	expvar.Publish(name, expvar.Func(func() any { return sp.Stats() }))
}

// PublishShardExpvar publishes the per-shard PoolStats split (the
// load-balance view of the pattern-hash routing) under the given expvar
// name as a JSON array.
func (sp *ShardedPool) PublishShardExpvar(name string) {
	expvar.Publish(name, expvar.Func(func() any { return sp.ShardStats() }))
}

// PublishTraceExpvar publishes a tracer's cumulative per-phase totals
// (sweep counts plus wall/work/wait seconds, e.g. "refactor_sweeps",
// "refactor_wait_seconds") under the given expvar name as a flat JSON
// object of float64s — the shape Prometheus-style scrapers flatten into
// counters. Each read snapshots the live totals; a nil tracer publishes
// an empty object.
func PublishTraceExpvar(name string, tr *Tracer) {
	expvar.Publish(name, expvar.Func(func() any { return tr.CumulativeSeconds() }))
}
