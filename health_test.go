package basker

import (
	"errors"
	"math"
	"testing"

	"repro/internal/matgen"
)

// refRcond computes the reference reciprocal condition 1/(‖A‖₁·‖A⁻¹‖₁)
// exactly (to solve accuracy): ‖A⁻¹‖₁ is the max over unit vectors e_j of
// ‖A⁻¹e_j‖₁, affordable at these sizes.
func refRcond(t *testing.T, f *Factorization, a *Matrix) float64 {
	t.Helper()
	normA := 0.0
	for j := 0; j < a.N; j++ {
		s := 0.0
		for p := a.Colptr[j]; p < a.Colptr[j+1]; p++ {
			s += math.Abs(a.Values[p])
		}
		normA = math.Max(normA, s)
	}
	normInv := 0.0
	e := make([]float64, a.N)
	for j := 0; j < a.N; j++ {
		for i := range e {
			e[i] = 0
		}
		e[j] = 1
		if err := f.Solve(e); err != nil {
			t.Fatal(err)
		}
		s := 0.0
		for _, v := range e {
			s += math.Abs(v)
		}
		normInv = math.Max(normInv, s)
	}
	return 1 / (normA * normInv)
}

// TestHealthRcondAccuracy pins the Hager/Higham estimate against the exact
// reciprocal condition on a suite of small matgen matrices: within 10×,
// never optimistic by more than the slack (a norm-estimate lower bound makes
// the rcond estimate an upper bound on the true value).
func TestHealthRcondAccuracy(t *testing.T) {
	cases := []matgen.CircuitParams{
		{N: 60, BTFPct: 40, Blocks: 4, Core: matgen.CoreLadder, ExtraDensity: 0.4, Seed: 2},
		{N: 90, BTFPct: 60, Blocks: 6, Core: matgen.CoreLadder, ExtraDensity: 0.3, Seed: 3},
		{N: 120, BTFPct: 30, Blocks: 8, Core: matgen.CoreLadder, ExtraDensity: 0.5, Seed: 4},
		{N: 150, BTFPct: 50, Blocks: 10, Core: matgen.CoreLadder, ExtraDensity: 0.3, Seed: 5},
	}
	for _, p := range cases {
		a := matgen.Circuit(p)
		f, err := New(Options{Threads: 2}).Factor(a)
		if err != nil {
			t.Fatal(err)
		}
		h := f.Health()
		if h.Rcond <= 0 || h.Rcond > 1 {
			t.Fatalf("N=%d: rcond estimate %g outside (0, 1]", p.N, h.Rcond)
		}
		ref := refRcond(t, f, a)
		if ratio := h.Rcond / ref; ratio > 10 || ratio < 0.1 {
			t.Errorf("N=%d: rcond estimate %g vs reference %g (ratio %.2f), want within 10×",
				p.N, h.Rcond, ref, ratio)
		}
		if h.RecipPivotGrowth <= 0 || h.RecipPivotGrowth > 1 {
			t.Errorf("N=%d: reciprocal pivot growth %g outside (0, 1]", p.N, h.RecipPivotGrowth)
		}
		if !h.Finite {
			t.Errorf("N=%d: healthy factorization reported non-finite", p.N)
		}
		if h.Poisoned || h.InternalPanics != 0 {
			t.Errorf("N=%d: healthy factorization reported poisoned/panics: %+v", p.N, h)
		}
		if err := f.Check(); err != nil {
			t.Errorf("N=%d: Check on healthy factorization: %v", p.N, err)
		}
	}
}

// TestHealthIllConditionedAdvisory drives Check's ErrIllConditioned
// advisory with a diagonal matrix whose condition number is ~1e15.
func TestHealthIllConditionedAdvisory(t *testing.T) {
	const n = 8
	tr := NewTriplets(n, n)
	for i := 0; i < n; i++ {
		v := 1.0
		if i == n-1 {
			v = 1e-15
		}
		tr.Add(i, i, v)
	}
	f, err := New(Options{}).Factor(tr.Matrix())
	if err != nil {
		t.Fatal(err)
	}
	h := f.Health()
	if h.Rcond > 1e-13 {
		t.Fatalf("rcond estimate %g for a ~1e15-conditioned matrix", h.Rcond)
	}
	if err := f.Check(); !errors.Is(err, ErrIllConditioned) {
		t.Fatalf("Check reported %v, want ErrIllConditioned", err)
	}
}

// TestHealthRefinementOnIllConditioned closes the loop the advisory points
// at: SolveRefined reports a componentwise backward error at working
// precision even when the condition number is large.
func TestHealthRefinementOnIllConditioned(t *testing.T) {
	a := matgen.Circuit(matgen.CircuitParams{N: 200, BTFPct: 40, Blocks: 10, Core: matgen.CoreLadder, ExtraDensity: 0.4, Seed: 9})
	// A loose pivot tolerance trades stability for sparsity — the scenario
	// refinement exists for.
	f, err := New(Options{Threads: 2, PivotTol: 1e-4}).Factor(a)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, a.N)
	for i := range x {
		x[i] = 1 + float64(i%7)
	}
	b := make([]float64, a.N)
	a.MulVec(b, x)
	res, err := f.SolveRefined(a, b, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("refinement did not converge: %+v", res)
	}
	if res.BackwardError > RefineTol {
		t.Fatalf("backward error %g above RefineTol %g", res.BackwardError, RefineTol)
	}
}
