// Package basker is a pure-Go reimplementation of Basker, the threaded
// sparse LU factorization with hierarchical parallelism and data layouts of
// Booth, Rajamanickam and Thornquist (IPDPS 2016). It targets unsymmetric,
// low fill-in matrices from circuit and power-grid simulation.
//
// The solver permutes the matrix to block triangular form (BTF), factors
// the many small diagonal blocks embarrassingly in parallel with the
// Gilbert–Peierls algorithm, and factors each large block through a
// nested-dissection 2D block hierarchy in which multiple goroutines
// cooperate on a single block column with point-to-point synchronization —
// the paper's parallel Gilbert–Peierls.
//
// Quick start:
//
//	tr := basker.NewTriplets(n, n)
//	tr.Add(i, j, v) // stamp the matrix
//	A := tr.Matrix()
//	s, err := basker.New(basker.Options{Threads: 4}).Factor(A)
//	if err != nil { ... }
//	s.Solve(b) // b becomes x with A·x = b
//
// For repeated factorizations of matrices with a fixed sparsity pattern
// (transient circuit simulation), use Refactor, which reuses the symbolic
// analysis and pivot sequences.
package basker

import (
	"context"
	"errors"
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/gp"
	"repro/internal/order/matching"
	"repro/internal/sparse"
	"repro/internal/trace"
	"repro/internal/trisolve"
)

// Matrix is a sparse matrix in compressed sparse column form.
type Matrix = sparse.CSC

// Triplets is a coordinate-format accumulator for building matrices;
// duplicate entries are summed, matching circuit-stamping semantics.
type Triplets struct {
	coo *sparse.COO
}

// NewTriplets returns an empty m×n accumulator.
func NewTriplets(m, n int) *Triplets {
	return &Triplets{coo: sparse.NewCOO(m, n, 64)}
}

// Add accumulates v at position (i, j).
func (t *Triplets) Add(i, j int, v float64) { t.coo.Add(i, j, v) }

// Matrix compresses the triplets into CSC form.
func (t *Triplets) Matrix() *Matrix { return t.coo.ToCSC(false) }

// ReadMatrixMarket parses a MatrixMarket coordinate stream.
func ReadMatrixMarket(r io.Reader) (*Matrix, error) { return sparse.ReadMatrixMarket(r) }

// WriteMatrixMarket writes m in MatrixMarket coordinate format.
func WriteMatrixMarket(w io.Writer, m *Matrix) error { return sparse.WriteMatrixMarket(w, m) }

// Options configures a Solver.
type Options struct {
	// Threads is the number of worker goroutines (the fine-ND engine uses
	// the largest power of two ≤ Threads). Default 1.
	Threads int
	// DisableBTF turns off the coarse block triangular form.
	DisableBTF bool
	// DisableMWCM replaces the bottleneck weighted matching with a plain
	// maximum cardinality matching.
	DisableMWCM bool
	// PivotTol is the partial-pivoting diagonal preference tolerance in
	// (0, 1]; 0 selects KLU's default 0.001. 1 forces partial pivoting.
	PivotTol float64
	// BigBlockMin is the smallest BTF block factored with the parallel
	// nested-dissection engine (default 128).
	BigBlockMin int
	// DisableLocalAMD turns off AMD ordering inside ND diagonal blocks.
	DisableLocalAMD bool
	// Barrier switches the ND engine from point-to-point synchronization
	// to global barriers (slower; exists for the paper's ablation).
	Barrier bool
	// NoDenseKernels disables the density-adaptive dense panel kernels of
	// the fine-ND engine: fill-heavy separator blocks stay on the sparse
	// Gilbert–Peierls path (exists for the ablation study).
	NoDenseKernels bool
	// DenseKernelThreshold overrides the estimated block density at which
	// fine-ND kernels switch to the dense panel layer. 0 selects the
	// default; values above 1 never trigger.
	DenseKernelThreshold float64
	// SupernodeRelax overrides the relaxed-amalgamation bound of the
	// elimination-tree supernode detection inside fine-ND leaf diagonals
	// (the largest merged column run that is not a pure etree chain;
	// SuperLU's relaxation parameter). 0 selects the default.
	SupernodeRelax int
	// NoSupernodes disables elimination-tree supernode detection: every
	// moderate-density leaf diagonal factors column at a time (exists for
	// the ablation study).
	NoSupernodes bool
	// Trace, when non-nil, records per-kernel scheduler events from every
	// phase (analyze, factor, refactor, partial refactor, parallel solve)
	// into the given recorder: per-sweep profiles come back through
	// Factorization.Profile, the raw timeline through
	// Factorization.WriteTrace. A nil Trace keeps every hot path on its
	// untraced, allocation-free fast path.
	Trace *Tracer
	// ValidateInputs screens every matrix entering Factor and the Refactor
	// family for structural CSC invariants and non-finite (NaN/Inf) values
	// before any numeric work, reporting ErrBadInput/ErrNotFinite instead of
	// propagating garbage into the factors. The screen is O(nnz); cheap O(1)
	// dimension checks are always on regardless of this flag.
	ValidateInputs bool
	// StallTimeout arms the per-sweep stall watchdog: a parallel sweep
	// (factor, refactor, partial refactor, parallel solve) that makes no
	// progress for this long is aborted with ErrStalled naming the stuck
	// block and worker lane, and the factorization is left poisoned but
	// recoverable (RefactorRobust or a fresh Factor restores it). 0 — the
	// default — disables the watchdog. Serial sweeps run on the caller's
	// goroutine and cannot be unwound by the watchdog.
	StallTimeout time.Duration

	// inject arms the numeric engine's deterministic fault-injection points
	// (chaos tests only; set by in-package tests or InjectFaults, nil in
	// production).
	inject *faultinject.Injector
}

// InjectFaults returns a copy of o with the numeric engine's deterministic
// fault-injection harness (internal/faultinject) armed — the hook chaos
// tests of layers built on the public API (the serve package's full-stack
// suite) use to force worker panics, NaN kernels, pivot failures and stalls
// at exact points. The parameter type lives in an internal package, so
// nothing outside this module can arm it; production callers leave
// injection off.
func (o Options) InjectFaults(inj *faultinject.Injector) Options {
	o.inject = inj
	return o
}

// Tracer is the scheduler event recorder of the observability layer: a
// fixed-capacity lock-free ring any number of workers record into. One
// Tracer may be shared by several solvers/pools; see NewTracer.
type Tracer = trace.Recorder

// Profile is a per-sweep scheduler summary: wall/work/wait seconds, the
// sync-overhead fraction (the paper's 2.3%-vs-11% metric), effective
// parallelism, per-worker utilization and the top straggler blocks.
type Profile = trace.Summary

// NewTracer returns a Tracer whose event ring holds at least capacity
// events (<= 0 selects a 65536-event default). Pass it through
// Options.Trace, then read profiles with Factorization.Profile or export
// the timeline with Factorization.WriteTrace.
func NewTracer(capacity int) *Tracer { return trace.NewRecorder(capacity) }

func (o Options) internal() core.Options {
	c := core.DefaultOptions()
	c.Threads = o.Threads
	c.UseBTF = !o.DisableBTF
	c.UseMWCM = !o.DisableMWCM
	if o.PivotTol > 0 {
		c.PivotTol = o.PivotTol
	}
	if o.BigBlockMin > 0 {
		c.BigBlockMin = o.BigBlockMin
	}
	c.LocalAMD = !o.DisableLocalAMD
	if o.Barrier {
		c.Sync = core.SyncBarrier
	}
	c.NoDenseKernels = o.NoDenseKernels
	c.DenseKernelThreshold = o.DenseKernelThreshold
	c.SupernodeRelax = o.SupernodeRelax
	c.NoSupernodes = o.NoSupernodes
	c.Trace = o.Trace
	c.ValidateInputs = o.ValidateInputs
	c.StallTimeout = o.StallTimeout
	c.Inject = o.inject
	return c
}

// ErrSingular reports a numerically or structurally singular matrix.
var ErrSingular = errors.New("basker: matrix is singular")

// Input-validation and health errors. All are matched with errors.Is; the
// wrapped error carries the specifics.
var (
	// ErrBadInput reports a malformed input matrix: broken CSC invariants
	// (column pointers, row ranges, ordering) or, with
	// Options.ValidateInputs, non-finite values. Every validation error
	// matches ErrBadInput.
	ErrBadInput = errors.New("basker: malformed input matrix")
	// ErrNotFinite reports NaN or Inf among the input values (it also
	// matches ErrBadInput).
	ErrNotFinite = errors.New("basker: input has non-finite values")
	// ErrDimensionMismatch reports a shape disagreement: a non-square
	// matrix, a right-hand side of the wrong length, or a refresh matrix
	// whose dimensions differ from the factored one. These O(1) checks are
	// always on.
	ErrDimensionMismatch = errors.New("basker: dimension mismatch")
	// ErrInternalPanic reports that a worker goroutine panicked during a
	// numeric sweep. The panic was recovered and its siblings drained; the
	// factorization is poisoned until a subsequent Factor/Refactor succeeds.
	// The wrapped error carries the panic value and stack.
	ErrInternalPanic = errors.New("basker: internal panic")
	// ErrIllConditioned is the advisory Factorization.Check reports when the
	// estimated reciprocal condition number says solutions may carry no
	// correct digits. The factorization remains usable — pair solves with
	// SolveRefined and inspect RefineResult.BackwardError.
	ErrIllConditioned = errors.New("basker: matrix is ill-conditioned")
)

// Cancellation and watchdog errors of the context-accepting entry points
// (FactorCtx, RefactorCtx and friends). A sweep aborted by any of these
// leaves the factorization poisoned but recoverable: RefactorRobust or a
// fresh Factor re-establishes a consistent state.
var (
	// ErrCanceled reports that the caller's context was cancelled mid-sweep.
	// It wraps context.Canceled, so errors.Is matches either.
	ErrCanceled = core.ErrCanceled
	// ErrDeadlineExceeded reports that the caller's context deadline fired
	// mid-sweep. It wraps context.DeadlineExceeded.
	ErrDeadlineExceeded = core.ErrDeadlineExceeded
	// ErrStalled reports that the stall watchdog (Options.StallTimeout)
	// aborted a sweep that made no progress. The concrete error is a
	// *StallError; match the class with errors.Is and the diagnostics with
	// errors.As.
	ErrStalled = core.ErrStalled
)

// StallError carries the stall watchdog's diagnostics: the sweep name, the
// first coarse block still pending when the watchdog fired, the fine-BTF
// worker lane owning it (-1 for cooperative fine-ND teams or when unknown),
// and how long the sweep had been idle.
type StallError = core.StallError

// validateInput is the gated O(nnz) screen of the API boundary.
func validateInput(a *Matrix, on bool) error {
	if !on {
		return nil
	}
	if err := a.Check(); err != nil {
		return errors.Join(ErrBadInput, err)
	}
	if err := a.CheckFinite(); err != nil {
		return errors.Join(ErrBadInput, ErrNotFinite, err)
	}
	return nil
}

// Solver is a configured Basker instance.
type Solver struct {
	opts core.Options
}

// New returns a Solver with the given options.
func New(opts Options) *Solver {
	return &Solver{opts: opts.internal()}
}

// Factorization holds the result of a factorization; it can solve systems
// (from any number of goroutines, singly or in batches) and be numerically
// refreshed for same-pattern matrices.
type Factorization struct {
	num *core.Numeric
	ts  *trisolve.Solver
}

// Factor analyzes and numerically factors a.
func (s *Solver) Factor(a *Matrix) (*Factorization, error) {
	return s.FactorCtx(context.Background(), a)
}

// FactorCtx is Factor with cooperative cancellation: a ctx that is
// cancelled or deadline-expired mid-sweep aborts the numeric factorization
// at the next block boundary and returns ErrCanceled or
// ErrDeadlineExceeded (both matching the corresponding context errors with
// errors.Is). A Done-capable ctx also arms the sweep monitor, as does
// Options.StallTimeout. context.Background() keeps the exact fast path of
// Factor.
func (s *Solver) FactorCtx(ctx context.Context, a *Matrix) (*Factorization, error) {
	if a.M != a.N {
		return nil, fmt.Errorf("%w: matrix is %d×%d, want square", ErrDimensionMismatch, a.M, a.N)
	}
	if err := validateInput(a, s.opts.ValidateInputs); err != nil {
		return nil, err
	}
	num, err := core.FactorDirectCtx(ctx, a, s.opts)
	if err != nil {
		return nil, wrapErr(err)
	}
	return newFactorization(num), nil
}

func newFactorization(num *core.Numeric) *Factorization {
	workers := num.Sym.Opts.Threads
	if workers < 1 {
		workers = 1
	}
	return &Factorization{
		num: num,
		ts:  trisolve.New(num, trisolve.Options{Workers: workers}),
	}
}

// Solve solves A·x = b in place: b is overwritten with x. It is reentrant
// — any number of goroutines may call Solve, SolveMany and SolveRefined on
// one Factorization concurrently (but not concurrently with Refactor);
// per-call scratch comes from an internal workspace pool, so the serial
// path is allocation-free in steady state. On matrices whose BTF blocks
// are both many and large, independent blocks are scheduled across the
// solver's worker goroutines (that path allocates its per-call signal
// fabric). A wrong-length b reports ErrDimensionMismatch; a non-nil error
// leaves b unspecified but never harms the factorization (solves only read
// it).
func (f *Factorization) Solve(b []float64) error {
	if n := f.num.Sym.N; len(b) != n {
		return fmt.Errorf("%w: len(b) = %d, want %d", ErrDimensionMismatch, len(b), n)
	}
	return wrapErr(f.ts.Solve(b))
}

// SolveCtx is Solve with cooperative cancellation: a fired ctx aborts the
// dependency-scheduled parallel sweep at the next block boundary and
// returns ErrCanceled or ErrDeadlineExceeded with b unspecified (the
// factorization is unharmed — solves only read it). The serial solve path
// runs on the caller's goroutine and only honours a ctx already expired at
// entry. A Done-capable ctx or Options.StallTimeout arms the sweep monitor
// on the parallel path.
func (f *Factorization) SolveCtx(ctx context.Context, b []float64) error {
	if n := f.num.Sym.N; len(b) != n {
		return fmt.Errorf("%w: len(b) = %d, want %d", ErrDimensionMismatch, len(b), n)
	}
	return wrapErr(f.ts.SolveCtx(ctx, b))
}

// SolveMany solves A·xᵢ = bᵢ in place for every right-hand side, sweeping
// the BTF block back-substitution once per panel of right-hand sides
// instead of once per vector and distributing panels across the solver's
// worker goroutines. Each bᵢ must have length n (checked up front, before
// any vector is touched); results are bit-for-bit identical to calling
// Solve on each bᵢ.
func (f *Factorization) SolveMany(bs [][]float64) error {
	n := f.num.Sym.N
	for i, b := range bs {
		if len(b) != n {
			return fmt.Errorf("%w: len(bs[%d]) = %d, want %d", ErrDimensionMismatch, i, len(b), n)
		}
	}
	return wrapErr(f.ts.SolveMany(bs))
}

// SolveManyCtx is SolveMany with cooperative cancellation: workers stop
// picking up panels once ctx fires and the call returns ErrCanceled or
// ErrDeadlineExceeded with the batch partially solved (every bᵢ is then
// unspecified). The sweep joins fully before returning, so cancellation
// accelerates the unwind rather than abandoning work in flight.
func (f *Factorization) SolveManyCtx(ctx context.Context, bs [][]float64) error {
	n := f.num.Sym.N
	for i, b := range bs {
		if len(b) != n {
			return fmt.Errorf("%w: len(bs[%d]) = %d, want %d", ErrDimensionMismatch, i, len(b), n)
		}
	}
	return wrapErr(f.ts.SolveManyCtx(ctx, bs))
}

// SolveMatrix solves A·X = B in place for a dense column-major
// right-hand-side block: x holds nrhs vectors of length n back to back.
func (f *Factorization) SolveMatrix(x []float64, nrhs int) error {
	n := f.num.Sym.N
	if nrhs < 0 || len(x) != n*nrhs {
		return fmt.Errorf("%w: SolveMatrix: len(x) = %d, want n·nrhs = %d·%d", ErrDimensionMismatch, len(x), n, nrhs)
	}
	return wrapErr(f.ts.SolveMatrix(x, nrhs))
}

// Refactor recomputes the numeric factorization for a matrix with the same
// sparsity pattern, reusing orderings, factor patterns and pivot
// sequences. This is the fast path of transient simulation: after the
// first call builds its entry maps, every subsequent call refreshes all
// numeric values in place with zero allocations, sweeping independent BTF
// blocks concurrently. A diagonal block whose reused pivot sequence is
// defeated by the new values is transparently re-pivoted on its own.
//
// Refactor must not run concurrently with solves or other Refactor calls
// on the same Factorization (Refactor between solve batches is fine). If
// Refactor returns an error, the factorization's numeric values are
// unspecified and it must not be solved with until a subsequent Refactor
// succeeds or it is discarded for a fresh Factor.
func (f *Factorization) Refactor(a *Matrix) error {
	if err := f.refreshChecks(a); err != nil {
		return err
	}
	return wrapErr(f.num.Refactor(a))
}

// RefactorCtx is Refactor with cooperative cancellation: a ctx cancelled or
// deadline-expired mid-sweep aborts at the next block boundary, returning
// ErrCanceled or ErrDeadlineExceeded and leaving the factorization poisoned
// but recoverable (RefactorRobust or a fresh Factor restores it). A
// Done-capable ctx or Options.StallTimeout arms the sweep monitor;
// context.Background() keeps Refactor's zero-allocation steady state.
func (f *Factorization) RefactorCtx(ctx context.Context, a *Matrix) error {
	if err := f.refreshChecks(a); err != nil {
		return err
	}
	return wrapErr(f.num.RefactorCtx(ctx, a))
}

// refreshChecks is the shared API-boundary screen of the Refactor family:
// an always-on O(1) dimension check plus the gated O(nnz) validation pass.
func (f *Factorization) refreshChecks(a *Matrix) error {
	if n := f.num.Sym.N; a.M != n || a.N != n {
		return fmt.Errorf("%w: matrix is %d×%d, factorization is %d×%d", ErrDimensionMismatch, a.M, a.N, n, n)
	}
	return validateInput(a, f.num.Sym.Opts.ValidateInputs)
}

// RefactorPartial is Refactor for a matrix that differs from the values the
// factorization currently holds only in the listed columns (original
// indices) — the localized-perturbation fast path of transient simulation,
// where each Newton or time step restamps a handful of devices. Only the
// coarse BTF blocks the change set touches are refreshed; inside them, only
// the dependency closure of the dirty columns recomputes (small blocks) or
// the dirty kernels of the 2D hierarchy rerun (fine-ND blocks). Clean
// blocks keep their factors untouched, so steady-state cost scales with
// what the perturbation reaches, not with the matrix. Listing extra
// unchanged columns is allowed; columns not listed must be bitwise
// identical to the previous refresh. Near-total change sets transparently
// degrade to the full Refactor sweep.
//
// Exclusion and error contracts match Refactor. After a failed refresh the
// next incremental call automatically runs a full recovery sweep.
func (f *Factorization) RefactorPartial(a *Matrix, changedCols []int) error {
	if err := f.refreshChecks(a); err != nil {
		return err
	}
	return wrapErr(f.num.RefactorPartial(a, changedCols))
}

// RefactorPartialCtx is RefactorPartial with cooperative cancellation; the
// contract matches RefactorCtx.
func (f *Factorization) RefactorPartialCtx(ctx context.Context, a *Matrix, changedCols []int) error {
	if err := f.refreshChecks(a); err != nil {
		return err
	}
	return wrapErr(f.num.RefactorPartialCtx(ctx, a, changedCols))
}

// RefactorAuto is Refactor with automatic change discovery: incoming values
// are diffed against the cached previous gather entry by entry, and only
// the blocks a real change reaches are refreshed. Use it when tracking an
// explicit change set is impractical; the cost over RefactorPartial is one
// compare per matrix entry, and a fully-changed matrix degrades gracefully
// to roughly full-Refactor speed. Pool.Acquire uses this path, so pooled
// lease holders get incremental refreshes transparently.
//
// Exclusion and error contracts match Refactor.
func (f *Factorization) RefactorAuto(a *Matrix) error {
	if err := f.refreshChecks(a); err != nil {
		return err
	}
	return wrapErr(f.num.RefactorAuto(a))
}

// RefactorAutoCtx is RefactorAuto with cooperative cancellation; the
// contract matches RefactorCtx.
func (f *Factorization) RefactorAutoCtx(ctx context.Context, a *Matrix) error {
	if err := f.refreshChecks(a); err != nil {
		return err
	}
	return wrapErr(f.num.RefactorAutoCtx(ctx, a))
}

// RefactorRobust is the graceful-degradation refresh: it tries the
// cheapest path first and falls back rung by rung until one succeeds —
// the change-set-aware incremental sweep, the full pivot-reusing Refactor,
// a fresh pivoting factorization at the configured tolerance, and finally
// a fresh factorization under full partial pivoting (tolerance 1, trading
// sparsity for maximum stability). Use it in long transient sequences
// where occasional pathological steps must not terminate the run; the
// returned error is the last rung's, and only after it does the
// factorization stay poisoned.
func (f *Factorization) RefactorRobust(a *Matrix) error {
	if err := f.refreshChecks(a); err != nil {
		return err
	}
	if err := f.num.RefactorAuto(a); err == nil {
		return nil
	}
	if err := f.num.Refactor(a); err == nil {
		return nil
	}
	if err := f.num.FactorInto(a); err == nil {
		return nil
	}
	return wrapErr(f.num.FactorIntoTol(a, 1.0))
}

// Phase identifies a pipeline stage in scheduler profiles.
type Phase = trace.Phase

// The traced pipeline stages.
const (
	PhaseAnalyze  = trace.PhaseAnalyze
	PhaseFactor   = trace.PhaseFactor
	PhaseRefactor = trace.PhaseRefactor
	PhasePartial  = trace.PhasePartial
	PhaseSolve    = trace.PhaseSolve
)

// tracer returns the recorder this factorization was configured with
// (nil when tracing is off).
func (f *Factorization) tracer() *Tracer { return f.num.Sym.Opts.Trace }

// Profile returns the most recent sweep profile of the given phase, or
// false when tracing is off or no such sweep has run.
func (f *Factorization) Profile(p Phase) (Profile, bool) {
	return f.tracer().LastSummary(p)
}

// Profiles returns every retained per-sweep profile, oldest first (nil
// when tracing is off).
func (f *Factorization) Profiles() []Profile { return f.tracer().Summaries() }

// WriteTrace exports the recorded scheduler timeline as Chrome
// trace-event JSON, loadable in Perfetto (ui.perfetto.dev) or
// chrome://tracing. It is a no-op writing an empty trace when tracing is
// off. Call between sweeps — events recorded concurrently may be torn.
func (f *Factorization) WriteTrace(w io.Writer) error {
	tr := f.tracer()
	if tr == nil {
		_, err := io.WriteString(w, `{"traceEvents":[]}`+"\n")
		return err
	}
	return tr.WriteChromeTrace(w)
}

// NumBlocks reports the number of coarse BTF blocks of the factorization.
func (f *Factorization) NumBlocks() int { return f.num.Sym.NumBlocks() }

// BlockOfColumn reports the coarse BTF block containing original column j —
// the index to use with the AffectedSolutionBlocks result — or -1 when j is
// out of range (matching AffectedSolutionBlocks, which skips out-of-range
// columns).
func (f *Factorization) BlockOfColumn(j int) int {
	return f.ts.BlockOfColumn(j)
}

// AffectedSolutionBlocks reports, per coarse BTF block, whether the block's
// solution component can change when the listed columns' values change: the
// blocks whose factors the change set dirties plus everything upstream of
// them through the coupling structure (the reachability closure of the
// block dependency graph the parallel solver schedules with). Blocks
// reported false produce bit-for-bit identical solution components for the
// same right-hand side, so callers running incremental refactorization can
// reuse per-block solution work across steps.
func (f *Factorization) AffectedSolutionBlocks(changedCols []int) []bool {
	return f.ts.SolutionClosure(changedCols)
}

// RefineResult reports what an iterative-refinement solve achieved:
// correction steps taken, the final Oettli–Prager componentwise backward
// error, the ∞-norm residual, and whether refinement converged to working
// precision or stagnated (a stagnating refinement is the reliable symptom
// of a factorization too inaccurate to help — check Health).
type RefineResult = trisolve.RefineResult

// RefineTol is the componentwise backward-error target refinement drives
// toward: a small multiple of the double-precision unit roundoff.
const RefineTol = trisolve.RefineTol

// SolveRefined solves A·x = b with convergent iterative refinement: after
// the direct solve, correction steps x += A⁻¹(b − A·x) run until the
// componentwise backward error reaches RefineTol, a step stops making
// progress, or maxIters corrections have been applied — useful when the
// KLU-style pivot tolerance traded stability for sparsity. a must be the
// matrix that was factored (or refactored). b is overwritten with x. Like
// Solve, it is reentrant and draws all scratch from the workspace pool.
func (f *Factorization) SolveRefined(a *Matrix, b []float64, maxIters int) (RefineResult, error) {
	n := f.num.Sym.N
	if a.M != n || a.N != n {
		return RefineResult{}, fmt.Errorf("%w: matrix is %d×%d, factorization is %d×%d", ErrDimensionMismatch, a.M, a.N, n, n)
	}
	if len(b) != n {
		return RefineResult{}, fmt.Errorf("%w: len(b) = %d, want %d", ErrDimensionMismatch, len(b), n)
	}
	res, err := f.ts.SolveRefined(a, b, maxIters)
	return res, wrapErr(err)
}

// SolveRefinedCtx is SolveRefined with cooperative cancellation between
// refinement iterations: when ctx fires, refinement stops, b holds the
// best iterate computed so far, and the returned RefineResult describes it
// with Canceled set alongside ErrCanceled or ErrDeadlineExceeded.
func (f *Factorization) SolveRefinedCtx(ctx context.Context, a *Matrix, b []float64, maxIters int) (RefineResult, error) {
	n := f.num.Sym.N
	if a.M != n || a.N != n {
		return RefineResult{}, fmt.Errorf("%w: matrix is %d×%d, factorization is %d×%d", ErrDimensionMismatch, a.M, a.N, n, n)
	}
	if len(b) != n {
		return RefineResult{}, fmt.Errorf("%w: len(b) = %d, want %d", ErrDimensionMismatch, len(b), n)
	}
	res, err := f.ts.SolveRefinedCtx(ctx, a, b, maxIters)
	return res, wrapErr(err)
}

// Health reports the numerical condition of a factorization: how much the
// computed factors can be trusted, independent of any particular right-hand
// side. Obtain one with Factorization.Health.
type Health struct {
	// Rcond is a Hager/Higham estimate of the reciprocal 1-norm condition
	// number 1/(‖A‖₁·‖A⁻¹‖₁) ∈ [0, 1]; values near zero flag an
	// ill-conditioned system whose solutions may carry few correct digits.
	Rcond float64
	// RecipPivotGrowth is max|A|/max|U| clamped to [0, 1] — the classic
	// cheap stability diagnostic; tiny values mean element growth ate the
	// factorization's accuracy and a tighter pivot tolerance is warranted.
	RecipPivotGrowth float64
	// Finite is false when any stored factor value is NaN or Inf.
	Finite bool
	// Poisoned mirrors Stats.Poisoned: the last refresh failed and the
	// numeric values are unspecified until a successful Factor/Refactor.
	Poisoned bool
	// InternalPanics mirrors Stats.InternalPanics.
	InternalPanics int64
}

// Health computes the factorization's numerical health report. The Rcond
// estimate costs a handful of solve sweeps (it is skipped, reported as 0,
// when the factorization is poisoned or non-finite); everything else is a
// cheap scan of the stored factors.
func (f *Factorization) Health() Health {
	h := Health{
		Poisoned:       f.num.Poisoned(),
		InternalPanics: f.num.Panics(),
	}
	if h.Poisoned {
		return h
	}
	h.Finite = f.num.Finite()
	h.RecipPivotGrowth = f.num.RecipPivotGrowth()
	if h.Finite {
		h.Rcond = f.num.EstimateRcond()
	}
	return h
}

// RcondAdvisory is the reciprocal-condition threshold below which
// Factorization.Check reports ErrIllConditioned: roughly the point where a
// double-precision solve can lose all significant digits.
const RcondAdvisory = 1e-14

// Check runs the health report and converts it to a verdict: nil when the
// factorization looks trustworthy, ErrInternalPanic when it is poisoned,
// ErrNotFinite when factor values overflowed, and the advisory
// ErrIllConditioned when the condition estimate or pivot growth suggests
// solutions need iterative refinement (SolveRefined) to be trusted.
func (f *Factorization) Check() error {
	h := f.Health()
	switch {
	case h.Poisoned:
		return fmt.Errorf("%w: factorization is poisoned; refresh with Factor or RefactorRobust", ErrInternalPanic)
	case !h.Finite:
		return fmt.Errorf("%w: factor values are NaN or Inf", ErrNotFinite)
	case h.Rcond < RcondAdvisory:
		return fmt.Errorf("%w: rcond estimate %.3g, reciprocal pivot growth %.3g", ErrIllConditioned, h.Rcond, h.RecipPivotGrowth)
	}
	return nil
}

// Stats summarizes a factorization (the paper's Table I statistics).
type Stats struct {
	// NnzLU is |L+U|, counting each factor's diagonal once.
	NnzLU int
	// FillDensity is |L+U| / |A| (can be below 1 with BTF).
	FillDensity float64
	// BTFBlocks is the number of coarse BTF diagonal blocks.
	BTFBlocks int
	// BTFPercent is the share of rows in small BTF blocks.
	BTFPercent float64
	// NDBlocks counts coarse blocks factored by the parallel ND engine.
	NDBlocks int
	// DenseKernels counts the fine-ND kernels statically tagged for the
	// dense panel layer at analysis time; DenseKernelHits counts the kernel
	// executions actually routed through it during the last numeric sweep.
	DenseKernels    int
	DenseKernelHits int64
	// Supernodes counts the wide (two or more column) supernodes the
	// analysis detected in fine-ND leaf diagonals; SupernodeHits counts the
	// leaf-diagonal factorizations or refreshes the last numeric sweep
	// actually ran through the supernodal panel path.
	Supernodes    int
	SupernodeHits int64
	// PivotFallbacks counts per-block fresh-pivot fallbacks refresh sweeps
	// have taken over this factorization's lifetime (reused pivot
	// sequences defeated by value drift).
	PivotFallbacks int64
	// DirtyBlocks is how many coarse blocks the most recent incremental
	// refresh (RefactorPartial/RefactorAuto) reworked; DirtyBlocksTotal
	// accumulates across all incremental calls.
	DirtyBlocks      int
	DirtyBlocksTotal int64
	// SyncWaits counts contended point-to-point waits of the last numeric
	// sweep; SyncWaitSeconds is the wall-clock time those blocked waits
	// (plus barrier waits) cost, summed over workers — the paper's
	// sync-overhead measurement, available even without tracing.
	SyncWaits       int64
	SyncWaitSeconds float64
	// Poisoned reports that the last refresh failed, leaving the numeric
	// values unspecified: solves must wait for a successful Factor/Refactor.
	Poisoned bool
	// InternalPanics counts worker panics the sweeps of this factorization
	// have recovered over its lifetime (zero in healthy operation).
	InternalPanics int64
}

// Stats reports factorization statistics relative to the matrix a that was
// factored. |L+U| is cached on the numeric object at factorization time,
// so this is O(1).
func (f *Factorization) Stats(a *Matrix) Stats {
	return Stats{
		NnzLU:            f.num.NnzLU(),
		FillDensity:      f.num.FillDensity(a),
		BTFBlocks:        f.num.Sym.NumBlocks(),
		BTFPercent:       f.num.Sym.BTFPercent,
		NDBlocks:         f.num.Sym.NumNDBlocks(),
		DenseKernels:     f.num.Sym.DenseKernels(),
		DenseKernelHits:  f.num.DenseKernelHits(),
		Supernodes:       f.num.Sym.Supernodes(),
		SupernodeHits:    f.num.SupernodeHits(),
		PivotFallbacks:   f.num.PivotFallbacks(),
		DirtyBlocks:      f.num.LastDirtyBlocks(),
		DirtyBlocksTotal: f.num.DirtyBlocksTotal(),
		SyncWaits:        f.num.SyncWaits,
		SyncWaitSeconds:  f.num.SyncWaitSeconds(),
		Poisoned:         f.num.Poisoned(),
		InternalPanics:   f.num.Panics(),
	}
}

func wrapErr(err error) error {
	if err == nil {
		return nil
	}
	if errors.Is(err, core.ErrInternalPanic) {
		return errors.Join(ErrInternalPanic, err)
	}
	if errors.Is(err, gp.ErrSingular) || errors.Is(err, matching.ErrStructurallySingular) {
		return errors.Join(ErrSingular, err)
	}
	return err
}
