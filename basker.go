// Package basker is a pure-Go reimplementation of Basker, the threaded
// sparse LU factorization with hierarchical parallelism and data layouts of
// Booth, Rajamanickam and Thornquist (IPDPS 2016). It targets unsymmetric,
// low fill-in matrices from circuit and power-grid simulation.
//
// The solver permutes the matrix to block triangular form (BTF), factors
// the many small diagonal blocks embarrassingly in parallel with the
// Gilbert–Peierls algorithm, and factors each large block through a
// nested-dissection 2D block hierarchy in which multiple goroutines
// cooperate on a single block column with point-to-point synchronization —
// the paper's parallel Gilbert–Peierls.
//
// Quick start:
//
//	tr := basker.NewTriplets(n, n)
//	tr.Add(i, j, v) // stamp the matrix
//	A := tr.Matrix()
//	s, err := basker.New(basker.Options{Threads: 4}).Factor(A)
//	if err != nil { ... }
//	s.Solve(b) // b becomes x with A·x = b
//
// For repeated factorizations of matrices with a fixed sparsity pattern
// (transient circuit simulation), use Refactor, which reuses the symbolic
// analysis and pivot sequences.
package basker

import (
	"errors"
	"io"

	"repro/internal/core"
	"repro/internal/gp"
	"repro/internal/order/matching"
	"repro/internal/sparse"
)

// Matrix is a sparse matrix in compressed sparse column form.
type Matrix = sparse.CSC

// Triplets is a coordinate-format accumulator for building matrices;
// duplicate entries are summed, matching circuit-stamping semantics.
type Triplets struct {
	coo *sparse.COO
}

// NewTriplets returns an empty m×n accumulator.
func NewTriplets(m, n int) *Triplets {
	return &Triplets{coo: sparse.NewCOO(m, n, 64)}
}

// Add accumulates v at position (i, j).
func (t *Triplets) Add(i, j int, v float64) { t.coo.Add(i, j, v) }

// Matrix compresses the triplets into CSC form.
func (t *Triplets) Matrix() *Matrix { return t.coo.ToCSC(false) }

// ReadMatrixMarket parses a MatrixMarket coordinate stream.
func ReadMatrixMarket(r io.Reader) (*Matrix, error) { return sparse.ReadMatrixMarket(r) }

// WriteMatrixMarket writes m in MatrixMarket coordinate format.
func WriteMatrixMarket(w io.Writer, m *Matrix) error { return sparse.WriteMatrixMarket(w, m) }

// Options configures a Solver.
type Options struct {
	// Threads is the number of worker goroutines (the fine-ND engine uses
	// the largest power of two ≤ Threads). Default 1.
	Threads int
	// DisableBTF turns off the coarse block triangular form.
	DisableBTF bool
	// DisableMWCM replaces the bottleneck weighted matching with a plain
	// maximum cardinality matching.
	DisableMWCM bool
	// PivotTol is the partial-pivoting diagonal preference tolerance in
	// (0, 1]; 0 selects KLU's default 0.001. 1 forces partial pivoting.
	PivotTol float64
	// BigBlockMin is the smallest BTF block factored with the parallel
	// nested-dissection engine (default 128).
	BigBlockMin int
	// DisableLocalAMD turns off AMD ordering inside ND diagonal blocks.
	DisableLocalAMD bool
	// Barrier switches the ND engine from point-to-point synchronization
	// to global barriers (slower; exists for the paper's ablation).
	Barrier bool
}

func (o Options) internal() core.Options {
	c := core.DefaultOptions()
	c.Threads = o.Threads
	c.UseBTF = !o.DisableBTF
	c.UseMWCM = !o.DisableMWCM
	if o.PivotTol > 0 {
		c.PivotTol = o.PivotTol
	}
	if o.BigBlockMin > 0 {
		c.BigBlockMin = o.BigBlockMin
	}
	c.LocalAMD = !o.DisableLocalAMD
	if o.Barrier {
		c.Sync = core.SyncBarrier
	}
	return c
}

// ErrSingular reports a numerically or structurally singular matrix.
var ErrSingular = errors.New("basker: matrix is singular")

// Solver is a configured Basker instance.
type Solver struct {
	opts core.Options
}

// New returns a Solver with the given options.
func New(opts Options) *Solver {
	return &Solver{opts: opts.internal()}
}

// Factorization holds the result of a factorization; it can solve systems
// and be numerically refreshed for same-pattern matrices.
type Factorization struct {
	num *core.Numeric
}

// Factor analyzes and numerically factors a.
func (s *Solver) Factor(a *Matrix) (*Factorization, error) {
	num, err := core.FactorDirect(a, s.opts)
	if err != nil {
		return nil, wrapErr(err)
	}
	return &Factorization{num: num}, nil
}

// Solve solves A·x = b in place: b is overwritten with x.
func (f *Factorization) Solve(b []float64) { f.num.Solve(b) }

// Refactor recomputes the numeric factorization for a matrix with the same
// sparsity pattern, reusing orderings, factor patterns and pivot
// sequences. This is the fast path of transient simulation.
func (f *Factorization) Refactor(a *Matrix) error {
	return wrapErr(f.num.Refactor(a))
}

// SolveRefined solves A·x = b with iterative refinement: after the direct
// solve, up to iters refinement steps (x += A⁻¹(b − A·x)) sharpen the
// answer — useful when the KLU-style pivot tolerance traded stability for
// sparsity. a must be the matrix that was factored (or refactored). b is
// overwritten with x; the returned value is the final residual ∞-norm
// relative to ‖b‖∞.
func (f *Factorization) SolveRefined(a *Matrix, b []float64, iters int) float64 {
	n := a.N
	rhs := append([]float64(nil), b...)
	f.Solve(b)
	r := make([]float64, n)
	scale := 0.0
	for _, v := range rhs {
		if v < 0 {
			v = -v
		}
		if v > scale {
			scale = v
		}
	}
	if scale == 0 {
		scale = 1
	}
	res := 0.0
	for it := 0; it <= iters; it++ {
		a.MulVec(r, b)
		res = 0
		for i := range r {
			r[i] = rhs[i] - r[i]
			d := r[i]
			if d < 0 {
				d = -d
			}
			if d > res {
				res = d
			}
		}
		res /= scale
		if it == iters || res == 0 {
			break
		}
		f.Solve(r)
		for i := range b {
			b[i] += r[i]
		}
	}
	return res
}

// Stats summarizes a factorization (the paper's Table I statistics).
type Stats struct {
	// NnzLU is |L+U|, counting each factor's diagonal once.
	NnzLU int
	// FillDensity is |L+U| / |A| (can be below 1 with BTF).
	FillDensity float64
	// BTFBlocks is the number of coarse BTF diagonal blocks.
	BTFBlocks int
	// BTFPercent is the share of rows in small BTF blocks.
	BTFPercent float64
	// NDBlocks counts coarse blocks factored by the parallel ND engine.
	NDBlocks int
}

// Stats reports factorization statistics relative to the matrix a that was
// factored.
func (f *Factorization) Stats(a *Matrix) Stats {
	return Stats{
		NnzLU:       f.num.NnzLU(),
		FillDensity: f.num.FillDensity(a),
		BTFBlocks:   f.num.Sym.NumBlocks(),
		BTFPercent:  f.num.Sym.BTFPercent,
		NDBlocks:    f.num.Sym.NumNDBlocks(),
	}
}

func wrapErr(err error) error {
	if err == nil {
		return nil
	}
	if errors.Is(err, gp.ErrSingular) || errors.Is(err, matching.ErrStructurallySingular) {
		return errors.Join(ErrSingular, err)
	}
	return err
}
