package basker

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/matgen"
)

func memTestMatrix(seed int64) *Matrix {
	return matgen.Circuit(matgen.CircuitParams{
		N: 140, BTFPct: 50, Blocks: 8, Core: matgen.CoreLadder, ExtraDensity: 0.5, Seed: seed,
	})
}

// TestPoolMaxBytesAccounting pins the footprint ledger across the entry
// life cycle: release adds an entry's estimate, acquire removes it, and the
// estimate itself is |L+U|-derived and positive.
func TestPoolMaxBytesAccounting(t *testing.T) {
	a := memTestMatrix(3)
	pool := NewPool(PoolOptions{Options: Options{Threads: 1, BigBlockMin: 64}})
	if got := pool.Stats().BytesCached; got != 0 {
		t.Fatalf("empty pool BytesCached = %d, want 0", got)
	}
	lease, err := pool.Acquire(a)
	if err != nil {
		t.Fatal(err)
	}
	want := entryBytes(lease.Factorization)
	if want <= 0 {
		t.Fatalf("entryBytes = %d, want > 0", want)
	}
	if got := pool.Stats().BytesCached; got != 0 {
		t.Fatalf("leased entry counted while checked out: BytesCached = %d", got)
	}
	lease.Release()
	if got := pool.Stats().BytesCached; got != want {
		t.Fatalf("after release BytesCached = %d, want %d", got, want)
	}
	lease, err = pool.Acquire(a)
	if err != nil {
		t.Fatal(err)
	}
	if got := pool.Stats().BytesCached; got != 0 {
		t.Fatalf("after re-acquire BytesCached = %d, want 0", got)
	}
	lease.Discard()
	s := pool.Stats()
	if s.BytesCached != 0 || s.Idle != 0 || s.Discards != 1 {
		t.Fatalf("after discard: %+v, want empty idle cache and Discards = 1", s)
	}
}

// TestPoolMemEvictionStorm floods the idle cache past MaxBytes and checks
// convergence under the bound with the eviction counter matching the
// observed drops exactly.
func TestPoolMemEvictionStorm(t *testing.T) {
	a := memTestMatrix(4)
	// Measure one entry's footprint on an unbounded pool.
	probe := NewPool(PoolOptions{Options: Options{Threads: 1, BigBlockMin: 64}})
	lease, err := probe.Acquire(a)
	if err != nil {
		t.Fatal(err)
	}
	unit := entryBytes(lease.Factorization)
	lease.Release()

	const keep = 3
	pool := NewPool(PoolOptions{
		Options:           Options{Threads: 1, BigBlockMin: 64},
		MaxIdlePerPattern: -1,
		MaxBytes:          keep*unit + unit/2,
	})
	// Check out a storm of same-pattern leases (every one a miss: the idle
	// cache is empty while they are all held), then release them all.
	const storm = 10
	leases := make([]*Lease, storm)
	for i := range leases {
		l, err := pool.Acquire(a)
		if err != nil {
			t.Fatal(err)
		}
		leases[i] = l
	}
	for _, l := range leases {
		l.Release()
	}
	s := pool.Stats()
	if s.BytesCached > keep*unit+unit/2 {
		t.Fatalf("idle cache footprint %d exceeds MaxBytes %d", s.BytesCached, keep*unit+unit/2)
	}
	if s.Idle != keep {
		t.Fatalf("idle entries = %d, want %d under the byte bound", s.Idle, keep)
	}
	if want := uint64(storm - keep); s.MemEvictions != want {
		t.Fatalf("MemEvictions = %d, want %d (stormed %d, kept %d)", s.MemEvictions, want, storm, keep)
	}
	if s.Evictions != 0 {
		t.Fatalf("capacity/age evictions = %d, want 0 (only the byte bound should fire)", s.Evictions)
	}
	// The survivors still serve the pattern.
	l, err := pool.Acquire(a)
	if err != nil {
		t.Fatal(err)
	}
	checkLeaseSolve(t, l, a, 99)
	l.Release()
}

// TestPoolMemEvictionMixedPatterns checks oldest-first selection across
// pattern buckets: the stale pattern's entry is the one evicted.
func TestPoolMemEvictionMixedPatterns(t *testing.T) {
	old := memTestMatrix(5)
	hot := memTestMatrix(6)
	probe := NewPool(PoolOptions{Options: Options{Threads: 1, BigBlockMin: 64}})
	l, err := probe.Acquire(old)
	if err != nil {
		t.Fatal(err)
	}
	unit := entryBytes(l.Factorization)
	l.Release()

	now := time.Unix(1000, 0)
	pool := NewPool(PoolOptions{
		Options:  Options{Threads: 1, BigBlockMin: 64},
		MaxBytes: 2*unit + unit/2, // room for two entries of either pattern
	})
	pool.now = func() time.Time { return now }

	for i, a := range []*Matrix{old, hot} {
		l, err := pool.Acquire(a)
		if err != nil {
			t.Fatalf("pattern %d: %v", i, err)
		}
		l.Release()
		now = now.Add(time.Second)
	}
	// A second hot-pattern entry pushes the pool over budget; the oldest
	// idle entry (the old pattern's) must be the casualty.
	l2, err := pool.Factor(scaleValues(hot, 1.5))
	if err != nil {
		t.Fatal(err)
	}
	// Factor recycled the hot pattern's idle entry, so take another lease
	// to force a second live factorization of hot.
	l3, err := pool.Acquire(scaleValues(hot, 2.0))
	if err != nil {
		t.Fatal(err)
	}
	l2.Release()
	now = now.Add(time.Second)
	l3.Release()
	s := pool.Stats()
	if s.MemEvictions != 1 {
		t.Fatalf("MemEvictions = %d, want 1: %+v", s.MemEvictions, s)
	}
	// The old pattern must now miss; the hot pattern must hit.
	before := pool.Stats().Misses
	lo, err := pool.Acquire(old)
	if err != nil {
		t.Fatal(err)
	}
	lo.Release()
	if got := pool.Stats().Misses; got != before+1 {
		t.Fatalf("old pattern served from cache after its entry should have been evicted")
	}
}

// TestPoolDeadlineFreesAdmissionSlot proves a deadline-expired in-flight
// factorization returns its admission-semaphore token: PoolStats shows no
// held slots afterwards and the next caller proceeds without queueing
// forever.
func TestPoolDeadlineFreesAdmissionSlot(t *testing.T) {
	big := matgen.Circuit(matgen.CircuitParams{
		N: 2200, BTFPct: 30, Blocks: 12, Core: matgen.CoreGrid3D, ExtraDensity: 0.8, Seed: 7,
	})
	pool := NewPool(PoolOptions{
		Options:              Options{Threads: 2, BigBlockMin: 64},
		MaxConcurrentFactors: 1,
	})
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Millisecond)
	defer cancel()
	_, err := pool.AcquireCtx(ctx, big)
	if err == nil {
		t.Skip("matrix factored inside the deadline; cannot exercise mid-flight cancellation here")
	}
	if !errors.Is(err, ErrDeadlineExceeded) && !errors.Is(err, ErrCanceled) {
		t.Fatalf("got %v, want deadline/cancel", err)
	}
	s := pool.Stats()
	if s.InFlightFactors != 0 {
		t.Fatalf("admission slot leaked after cancelled factorization: %+v", s)
	}
	// The slot must be available again: a fresh factorization on the only
	// slot completes.
	small := memTestMatrix(8)
	lease, err := pool.Acquire(small)
	if err != nil {
		t.Fatal(err)
	}
	lease.Release()
	if got := pool.Stats().InFlightFactors; got != 0 {
		t.Fatalf("admission slots held at rest: %d", got)
	}
}

// TestPoolQueuedCallerCanceledFreesSlot covers the queued side: a caller
// whose ctx fires while waiting for the admission semaphore is counted in
// PoolStats.Canceled and leaks nothing.
func TestPoolQueuedCallerCanceledFreesSlot(t *testing.T) {
	pool := NewPool(PoolOptions{
		Options:              Options{Threads: 1, BigBlockMin: 64},
		MaxConcurrentFactors: 1,
	})
	// Occupy the only slot directly (the numeric path is irrelevant here).
	pool.sem <- struct{}{}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	_, err := pool.AcquireCtx(ctx, memTestMatrix(9))
	if !errors.Is(err, ErrDeadlineExceeded) && !errors.Is(err, ErrCanceled) {
		t.Fatalf("queued caller got %v, want deadline/cancel", err)
	}
	<-pool.sem // release the artificial holder
	s := pool.Stats()
	if s.Canceled != 1 || s.QueueWaits != 1 {
		t.Fatalf("queue counters: %+v, want Canceled = 1, QueueWaits = 1", s)
	}
	if s.InFlightFactors != 0 {
		t.Fatalf("slots held at rest: %d", s.InFlightFactors)
	}
	lease, err := pool.Acquire(memTestMatrix(9))
	if err != nil {
		t.Fatal(err)
	}
	lease.Release()
}
