// Package serve is the HTTP/JSON front end of the solver-as-a-service
// layer: assemble→factor→solve and refactor→solve traffic over a
// basker.ShardedPool, with the library's typed error taxonomy mapped onto
// HTTP semantics. Everything is stdlib net/http + encoding/json.
//
// Endpoints:
//
//	POST /v1/matrices  register a matrix template (CSC or triplets); returns
//	                   a pattern id for values-only refresh traffic
//	POST /v1/factor    factor (or refresh) a matrix into the pool cache
//	POST /v1/solve     factor/refresh + solve one or many right-hand sides
//	GET  /v1/stats     pool + shard + server counters
//	GET  /healthz      liveness
//	GET  /debug/vars   expvar (mount point for the pool's expvar bridges)
//
// Error mapping (body {"error":{"code","message"}}):
//
//	400 bad_input | not_finite | dimension_mismatch | body_too_large (413)
//	404 unknown_pattern
//	422 singular
//	499 canceled            (client closed request / context canceled)
//	503 overloaded          (server admission: MaxInFlight exceeded)
//	503 stalled             (stall watchdog aborted the sweep)
//	504 deadline_exceeded   (request deadline fired mid-sweep)
//	500 internal_panic      (recovered worker panic; entry evicted)
//	500 not_finite_solution (served solution failed the finiteness screen;
//	                         entry discarded)
package serve

import (
	"errors"
	"fmt"
	"math"
	"net/http"

	basker "repro"
)

// StatusClientClosedRequest is the non-standard 499 status (nginx's
// "client closed request") reported when the caller's context was canceled
// — there is no requester left to read a real status.
const StatusClientClosedRequest = 499

// MatrixJSON is a sparse matrix in compressed sparse column form on the
// wire.
type MatrixJSON struct {
	M      int       `json:"m"`
	N      int       `json:"n"`
	Colptr []int     `json:"colptr"`
	Rowidx []int     `json:"rowidx"`
	Values []float64 `json:"values"`
}

// TripletsJSON is coordinate-form assembly input: entry k adds Values[k] at
// (Rows[k], Cols[k]), duplicates summing — circuit-stamping semantics.
type TripletsJSON struct {
	M      int       `json:"m"`
	N      int       `json:"n"`
	Rows   []int     `json:"rows"`
	Cols   []int     `json:"cols"`
	Values []float64 `json:"values"`
}

// wireError is a request defect detected at the wire layer, before the
// solver sees anything.
type wireError struct {
	status int
	code   string
	msg    string
}

func (e *wireError) Error() string { return e.msg }

func badRequest(code, format string, args ...any) *wireError {
	return &wireError{status: http.StatusBadRequest, code: code, msg: fmt.Sprintf(format, args...)}
}

// toCSC validates the wire-level shape (lengths and ranges that would make
// the CSC unreadable) and converts. Deeper invariants — monotone column
// pointers, ordered rows, finite values — are the solver's
// ValidateInputs screen, reported through the error taxonomy.
func (mj *MatrixJSON) toCSC() (*basker.Matrix, error) {
	if mj.M <= 0 || mj.N <= 0 {
		return nil, badRequest("bad_input", "matrix dimensions %dx%d must be positive", mj.M, mj.N)
	}
	if len(mj.Colptr) != mj.N+1 {
		return nil, badRequest("bad_input", "len(colptr) = %d, want n+1 = %d", len(mj.Colptr), mj.N+1)
	}
	nnz := mj.Colptr[mj.N]
	if nnz < 0 || len(mj.Rowidx) != nnz || len(mj.Values) != nnz {
		return nil, badRequest("bad_input", "colptr[n] = %d, len(rowidx) = %d, len(values) = %d; all three must agree",
			nnz, len(mj.Rowidx), len(mj.Values))
	}
	return &basker.Matrix{M: mj.M, N: mj.N, Colptr: mj.Colptr, Rowidx: mj.Rowidx, Values: mj.Values}, nil
}

// toCSC assembles the triplets through the library's accumulator
// (duplicates sum), yielding sorted CSC.
func (tj *TripletsJSON) toCSC() (*basker.Matrix, error) {
	if tj.M <= 0 || tj.N <= 0 {
		return nil, badRequest("bad_input", "matrix dimensions %dx%d must be positive", tj.M, tj.N)
	}
	if len(tj.Rows) != len(tj.Cols) || len(tj.Rows) != len(tj.Values) {
		return nil, badRequest("bad_input", "triplet arrays disagree: %d rows, %d cols, %d values",
			len(tj.Rows), len(tj.Cols), len(tj.Values))
	}
	tr := basker.NewTriplets(tj.M, tj.N)
	for k := range tj.Rows {
		i, j := tj.Rows[k], tj.Cols[k]
		if i < 0 || i >= tj.M || j < 0 || j >= tj.N {
			return nil, badRequest("bad_input", "triplet %d at (%d,%d) outside %dx%d", k, i, j, tj.M, tj.N)
		}
		tr.Add(i, j, tj.Values[k])
	}
	return tr.Matrix(), nil
}

// SolveRequest asks for A·x = b (or a batch). Exactly one of Matrix,
// Triplets or ID selects the matrix; with ID, Values optionally restamps
// the registered pattern's values (refactor→solve traffic) and an absent
// Values solves against the registered values (pure amortized solve).
type SolveRequest struct {
	Matrix   *MatrixJSON   `json:"matrix,omitempty"`
	Triplets *TripletsJSON `json:"triplets,omitempty"`
	ID       string        `json:"id,omitempty"`
	Values   []float64     `json:"values,omitempty"`
	// B is one right-hand side; Bs a batch. Exactly one must be set.
	B  []float64   `json:"b,omitempty"`
	Bs [][]float64 `json:"bs,omitempty"`
	// Mode "refresh" (default) reuses a cached same-pattern factorization
	// through the incremental refactorization path; "fresh" forces new
	// pivots (values drifted far from the ones that chose them).
	Mode string `json:"mode,omitempty"`
	// TimeoutMillis bounds this request's factor+solve work; 0 uses the
	// server default. The deadline propagates into the numeric sweeps.
	TimeoutMillis int64 `json:"timeout_ms,omitempty"`
}

// SolveResponse carries the solution(s) overwriting the request's b shape.
type SolveResponse struct {
	X         []float64   `json:"x,omitempty"`
	Xs        [][]float64 `json:"xs,omitempty"`
	ElapsedMS float64     `json:"elapsed_ms"`
}

// FactorRequest warms or refreshes the pool cache for a matrix without
// solving — the assemble→factor half of the serving loop.
type FactorRequest struct {
	Matrix        *MatrixJSON   `json:"matrix,omitempty"`
	Triplets      *TripletsJSON `json:"triplets,omitempty"`
	ID            string        `json:"id,omitempty"`
	Values        []float64     `json:"values,omitempty"`
	Mode          string        `json:"mode,omitempty"`
	TimeoutMillis int64         `json:"timeout_ms,omitempty"`
}

// FactorResponse reports what the factorization cost and produced.
type FactorResponse struct {
	N         int     `json:"n"`
	NnzLU     int     `json:"nnz_lu"`
	ElapsedMS float64 `json:"elapsed_ms"`
}

// RegisterRequest registers a matrix template for values-only traffic.
type RegisterRequest struct {
	Matrix   *MatrixJSON   `json:"matrix,omitempty"`
	Triplets *TripletsJSON `json:"triplets,omitempty"`
	// Warm also factors the template into the cache before returning.
	Warm          bool  `json:"warm,omitempty"`
	TimeoutMillis int64 `json:"timeout_ms,omitempty"`
}

// RegisterResponse names the registered pattern. IDs are content-derived
// (a hash of the sparsity pattern), so re-registering the same pattern is
// idempotent and updates the template values.
type RegisterResponse struct {
	ID    string `json:"id"`
	N     int    `json:"n"`
	Nnz   int    `json:"nnz"`
	Shard int    `json:"shard"`
}

// ErrorBody is every non-2xx response's JSON shape.
type ErrorBody struct {
	Error ErrorDetail `json:"error"`
}

// ErrorDetail carries the machine-readable code (stable, documented above)
// and a human-readable message.
type ErrorDetail struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// errorStatus maps the solver's typed error taxonomy onto HTTP status and
// wire code — the serving layer's contract, locked by the error-mapping
// table test. Order matters where errors wrap each other (ErrNotFinite
// also matches ErrBadInput; the specific code wins).
func errorStatus(err error) (int, string) {
	var we *wireError
	switch {
	case errors.As(err, &we):
		return we.status, we.code
	case errors.Is(err, basker.ErrDimensionMismatch):
		return http.StatusBadRequest, "dimension_mismatch"
	case errors.Is(err, basker.ErrNotFinite):
		return http.StatusBadRequest, "not_finite"
	case errors.Is(err, basker.ErrBadInput):
		return http.StatusBadRequest, "bad_input"
	case errors.Is(err, basker.ErrSingular):
		return http.StatusUnprocessableEntity, "singular"
	case errors.Is(err, basker.ErrDeadlineExceeded):
		return http.StatusGatewayTimeout, "deadline_exceeded"
	case errors.Is(err, basker.ErrCanceled):
		return StatusClientClosedRequest, "canceled"
	case errors.Is(err, basker.ErrStalled):
		return http.StatusServiceUnavailable, "stalled"
	case errors.Is(err, basker.ErrInternalPanic):
		return http.StatusInternalServerError, "internal_panic"
	default:
		return http.StatusInternalServerError, "internal"
	}
}

// finiteSlice reports whether every component is a real number.
func finiteSlice(xs []float64) bool {
	for _, v := range xs {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return true
}

// patternID derives the content-addressed registration id from a sparsity
// pattern (FNV-1a over dimensions, column pointers and row indices — the
// same quantities the pool keys on).
func patternID(a *basker.Matrix) string {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	h = (h ^ uint64(a.M)) * prime64
	h = (h ^ uint64(a.N)) * prime64
	for _, c := range a.Colptr {
		h = (h ^ uint64(c)) * prime64
	}
	for _, r := range a.Rowidx {
		h = (h ^ uint64(r)) * prime64
	}
	return fmt.Sprintf("p-%016x", h)
}
