package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	basker "repro"
	"repro/internal/faultinject"
	"repro/internal/matgen"
)

// serveMatrix is the battery's standard small system.
func serveMatrix(seed int64) *basker.Matrix {
	return matgen.Circuit(matgen.CircuitParams{
		N: 120, BTFPct: 50, Blocks: 8, Core: matgen.CoreLadder, ExtraDensity: 0.4, Seed: seed,
	})
}

func matrixJSON(a *basker.Matrix) *MatrixJSON {
	return &MatrixJSON{M: a.M, N: a.N, Colptr: a.Colptr, Rowidx: a.Rowidx, Values: a.Values}
}

// rhsFor manufactures a b with known solution x and returns both.
func rhsFor(a *basker.Matrix, seed int64) (b, x []float64) {
	rng := rand.New(rand.NewSource(seed))
	x = make([]float64, a.N)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	b = make([]float64, a.N)
	a.MulVec(b, x)
	return b, x
}

func wantClose(t *testing.T, got, want []float64, what string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d components, want %d", what, len(got), len(want))
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-5*(1+math.Abs(want[i])) {
			t.Fatalf("%s[%d] = %v, want %v", what, i, got[i], want[i])
		}
	}
}

// newHTTPServer mounts an already-built Server on a test listener.
func newHTTPServer(t *testing.T, s *Server) string {
	t.Helper()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts.URL
}

func newTestServer(t *testing.T, shards int, popts basker.PoolOptions, sopts Options) (*Server, *httptest.Server) {
	t.Helper()
	if popts.Options.Threads == 0 {
		popts.Options.Threads = 2
	}
	if popts.Options.BigBlockMin == 0 {
		popts.Options.BigBlockMin = 64
	}
	popts.Options.ValidateInputs = true
	s := NewServer(basker.NewShardedPool(shards, popts), sopts)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// postJSON round-trips one request, returning status and raw body.
func postJSON(t *testing.T, url string, body any) (int, []byte) {
	t.Helper()
	payload, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, raw
}

func getJSON(t *testing.T, url string, dst any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if dst != nil {
		if err := json.NewDecoder(resp.Body).Decode(dst); err != nil {
			t.Fatalf("GET %s: %v", url, err)
		}
	}
	return resp.StatusCode
}

func decodeInto(t *testing.T, raw []byte, dst any) {
	t.Helper()
	if err := json.Unmarshal(raw, dst); err != nil {
		t.Fatalf("response %q: %v", raw, err)
	}
}

// errCode extracts the wire error code from a non-2xx body.
func errCode(t *testing.T, raw []byte) string {
	t.Helper()
	var eb ErrorBody
	decodeInto(t, raw, &eb)
	if eb.Error.Code == "" {
		t.Fatalf("error response %q carries no code", raw)
	}
	return eb.Error.Code
}

// TestServeSolveGoldenRoundTrip is the wire-protocol golden path: an inline
// CSC solve whose JSON response reproduces the known solution.
func TestServeSolveGoldenRoundTrip(t *testing.T) {
	a := serveMatrix(1)
	b, x := rhsFor(a, 10)
	_, ts := newTestServer(t, 4, basker.PoolOptions{}, Options{})
	status, raw := postJSON(t, ts.URL+"/v1/solve", SolveRequest{Matrix: matrixJSON(a), B: b})
	if status != http.StatusOK {
		t.Fatalf("status %d, body %s", status, raw)
	}
	var resp SolveResponse
	decodeInto(t, raw, &resp)
	wantClose(t, resp.X, x, "x")
	if resp.ElapsedMS < 0 {
		t.Fatalf("elapsed_ms = %v", resp.ElapsedMS)
	}
	if resp.Xs != nil {
		t.Fatalf("single-rhs response carries xs")
	}
}

// TestServeSolveTripletsBatch covers the assembly form and the batched
// right-hand-side shape in one round trip.
func TestServeSolveTripletsBatch(t *testing.T) {
	a := serveMatrix(2)
	// Re-express a as triplets.
	tj := &TripletsJSON{M: a.M, N: a.N}
	for j := 0; j < a.N; j++ {
		for p := a.Colptr[j]; p < a.Colptr[j+1]; p++ {
			tj.Rows = append(tj.Rows, a.Rowidx[p])
			tj.Cols = append(tj.Cols, j)
			tj.Values = append(tj.Values, a.Values[p])
		}
	}
	b1, x1 := rhsFor(a, 20)
	b2, x2 := rhsFor(a, 21)
	_, ts := newTestServer(t, 4, basker.PoolOptions{}, Options{})
	status, raw := postJSON(t, ts.URL+"/v1/solve", SolveRequest{Triplets: tj, Bs: [][]float64{b1, b2}})
	if status != http.StatusOK {
		t.Fatalf("status %d, body %s", status, raw)
	}
	var resp SolveResponse
	decodeInto(t, raw, &resp)
	if len(resp.Xs) != 2 {
		t.Fatalf("batch returned %d solutions, want 2", len(resp.Xs))
	}
	wantClose(t, resp.Xs[0], x1, "xs[0]")
	wantClose(t, resp.Xs[1], x2, "xs[1]")
}

// TestServeRegisterValuesTraffic is the amortized serving loop over the
// wire: register once (warm), then values-only refresh solves ride the
// cached factorization — the pool must report hits, and the id must be
// stable across re-registration.
func TestServeRegisterValuesTraffic(t *testing.T) {
	a := serveMatrix(3)
	s, ts := newTestServer(t, 4, basker.PoolOptions{}, Options{})

	status, raw := postJSON(t, ts.URL+"/v1/matrices", RegisterRequest{Matrix: matrixJSON(a), Warm: true})
	if status != http.StatusOK {
		t.Fatalf("register: status %d, body %s", status, raw)
	}
	var reg RegisterResponse
	decodeInto(t, raw, &reg)
	if !strings.HasPrefix(reg.ID, "p-") || reg.N != a.N || reg.Nnz != len(a.Values) {
		t.Fatalf("register response %+v", reg)
	}
	if reg.Shard < 0 || reg.Shard >= s.pool.NumShards() {
		t.Fatalf("register shard %d out of range", reg.Shard)
	}

	// Values-only refresh traffic: same pattern, drifted values.
	vals := make([]float64, len(a.Values))
	for i, v := range a.Values {
		vals[i] = 1.25 * v
	}
	scaled := &basker.Matrix{M: a.M, N: a.N, Colptr: a.Colptr, Rowidx: a.Rowidx, Values: vals}
	b, x := rhsFor(scaled, 30)
	status, raw = postJSON(t, ts.URL+"/v1/solve", SolveRequest{ID: reg.ID, Values: vals, B: b})
	if status != http.StatusOK {
		t.Fatalf("values solve: status %d, body %s", status, raw)
	}
	var resp SolveResponse
	decodeInto(t, raw, &resp)
	wantClose(t, resp.X, x, "x")

	// Id-only solve uses the registered template values.
	b0, x0 := rhsFor(a, 31)
	status, raw = postJSON(t, ts.URL+"/v1/solve", SolveRequest{ID: reg.ID, B: b0})
	if status != http.StatusOK {
		t.Fatalf("id solve: status %d, body %s", status, raw)
	}
	decodeInto(t, raw, &resp)
	wantClose(t, resp.X, x0, "x")

	ps := s.pool.Stats()
	if ps.Hits == 0 {
		t.Fatalf("values traffic missed the cache: %+v", ps)
	}

	// Re-registration is idempotent on the id and does not double-count.
	status, raw = postJSON(t, ts.URL+"/v1/matrices", RegisterRequest{Matrix: matrixJSON(scaled)})
	if status != http.StatusOK {
		t.Fatalf("re-register: status %d, body %s", status, raw)
	}
	var reg2 RegisterResponse
	decodeInto(t, raw, &reg2)
	if reg2.ID != reg.ID {
		t.Fatalf("same pattern re-registered under %s, want %s", reg2.ID, reg.ID)
	}
	if got := s.Stats().Patterns; got != 1 {
		t.Fatalf("patterns = %d, want 1 after idempotent re-register", got)
	}
}

// TestServeFactorEndpoint warms the cache over the wire and checks the
// follow-up solve hits it.
func TestServeFactorEndpoint(t *testing.T) {
	a := serveMatrix(4)
	s, ts := newTestServer(t, 4, basker.PoolOptions{}, Options{})
	status, raw := postJSON(t, ts.URL+"/v1/factor", FactorRequest{Matrix: matrixJSON(a)})
	if status != http.StatusOK {
		t.Fatalf("factor: status %d, body %s", status, raw)
	}
	var fr FactorResponse
	decodeInto(t, raw, &fr)
	if fr.N != a.N || fr.NnzLU < a.N {
		t.Fatalf("factor response %+v (want n = %d, nnz_lu >= n)", fr, a.N)
	}
	b, x := rhsFor(a, 40)
	status, raw = postJSON(t, ts.URL+"/v1/solve", SolveRequest{Matrix: matrixJSON(a), B: b})
	if status != http.StatusOK {
		t.Fatalf("solve: status %d, body %s", status, raw)
	}
	var resp SolveResponse
	decodeInto(t, raw, &resp)
	wantClose(t, resp.X, x, "x")
	if s.pool.Stats().Hits == 0 {
		t.Fatalf("solve after factor missed the cache: %+v", s.pool.Stats())
	}
}

// TestServeStatsHealthDebugVars covers the observability endpoints: stats
// aggregates pool+shards+server coherently, healthz answers, and
// /debug/vars serves valid JSON.
func TestServeStatsHealthDebugVars(t *testing.T) {
	a := serveMatrix(5)
	s, ts := newTestServer(t, 4, basker.PoolOptions{}, Options{MaxInFlight: 16})
	b, _ := rhsFor(a, 50)
	if status, raw := postJSON(t, ts.URL+"/v1/solve", SolveRequest{Matrix: matrixJSON(a), B: b}); status != http.StatusOK {
		t.Fatalf("solve: status %d, body %s", status, raw)
	}

	var st StatsResponse
	if status := getJSON(t, ts.URL+"/v1/stats", &st); status != http.StatusOK {
		t.Fatalf("stats status %d", status)
	}
	if len(st.Shards) != s.pool.NumShards() {
		t.Fatalf("stats lists %d shards, want %d", len(st.Shards), s.pool.NumShards())
	}
	if st.Pool.Misses == 0 {
		t.Fatalf("pool stats recorded no traffic: %+v", st.Pool)
	}
	var sum uint64
	for _, sh := range st.Shards {
		sum += sh.Misses
	}
	if sum != st.Pool.Misses {
		t.Fatalf("shard misses sum %d != aggregate %d", sum, st.Pool.Misses)
	}
	if st.Server.Requests == 0 || st.Server.InFlight != 0 {
		t.Fatalf("server stats %+v", st.Server)
	}

	var health map[string]string
	if status := getJSON(t, ts.URL+"/healthz", &health); status != http.StatusOK || health["status"] != "ok" {
		t.Fatalf("healthz: %d %v", status, health)
	}

	var vars map[string]json.RawMessage
	if status := getJSON(t, ts.URL+"/debug/vars", &vars); status != http.StatusOK {
		t.Fatalf("debug/vars status %d", status)
	}
	if _, ok := vars["cmdline"]; !ok {
		t.Fatalf("/debug/vars JSON lacks the standard cmdline var: %v", vars)
	}
}

// TestErrorStatusTable locks errorStatus over the whole taxonomy, including
// errors a JSON client cannot express on the wire (NaN input values are not
// representable in JSON, but the mapping must still hold for them) and the
// wrap orderings where one class also matches another.
func TestErrorStatusTable(t *testing.T) {
	cases := []struct {
		name       string
		err        error
		wantStatus int
		wantCode   string
	}{
		{"bad input", fmt.Errorf("x: %w", basker.ErrBadInput), http.StatusBadRequest, "bad_input"},
		{"not finite beats bad input", fmt.Errorf("x: %w", errors.Join(basker.ErrBadInput, basker.ErrNotFinite)),
			http.StatusBadRequest, "not_finite"},
		{"dimension mismatch", fmt.Errorf("x: %w", basker.ErrDimensionMismatch), http.StatusBadRequest, "dimension_mismatch"},
		{"singular", fmt.Errorf("x: %w", basker.ErrSingular), http.StatusUnprocessableEntity, "singular"},
		{"canceled", fmt.Errorf("x: %w", basker.ErrCanceled), StatusClientClosedRequest, "canceled"},
		{"deadline beats canceled", fmt.Errorf("x: %w", errors.Join(basker.ErrCanceled, basker.ErrDeadlineExceeded)),
			http.StatusGatewayTimeout, "deadline_exceeded"},
		{"stalled", fmt.Errorf("x: %w", basker.ErrStalled), http.StatusServiceUnavailable, "stalled"},
		{"internal panic", fmt.Errorf("x: %w", basker.ErrInternalPanic), http.StatusInternalServerError, "internal_panic"},
		{"unknown", errors.New("mystery"), http.StatusInternalServerError, "internal"},
		{"wire error passthrough", badRequest("bad_input", "nope"), http.StatusBadRequest, "bad_input"},
	}
	for _, tc := range cases {
		status, code := errorStatus(tc.err)
		if status != tc.wantStatus || code != tc.wantCode {
			t.Errorf("%s: errorStatus = (%d, %q), want (%d, %q)", tc.name, status, code, tc.wantStatus, tc.wantCode)
		}
	}
}

// TestServeErrorMappingTable locks the taxonomy→HTTP contract endpoint by
// endpoint: every typed solver error, every wire defect, admission
// rejection and cancellation land on their documented status and code.
func TestServeErrorMappingTable(t *testing.T) {
	good := serveMatrix(6)
	big := matgen.Circuit(matgen.CircuitParams{
		N: 2600, BTFPct: 30, Blocks: 12, Core: matgen.CoreGrid3D, ExtraDensity: 0.8, Seed: 7,
	})
	goodB, _ := rhsFor(good, 60)

	// A structurally singular system: an exactly empty column.
	singular := func() *MatrixJSON {
		a := serveMatrix(7)
		mj := matrixJSON(a)
		cp := make([]int, len(a.Colptr))
		nnz := 0
		ri := []int{}
		vv := []float64{}
		for j := 0; j < a.N; j++ {
			cp[j] = nnz
			if j == 3 {
				continue // drop column 3 entirely
			}
			for p := a.Colptr[j]; p < a.Colptr[j+1]; p++ {
				ri = append(ri, a.Rowidx[p])
				vv = append(vv, a.Values[p])
				nnz++
			}
		}
		cp[a.N] = nnz
		mj.Colptr, mj.Rowidx, mj.Values = cp, ri, vv
		return mj
	}()

	// Broken CSC invariants (non-monotone colptr) that pass the wire-level
	// shape check and must be caught by the solver's ValidateInputs screen.
	brokenCSC := func() *MatrixJSON {
		a := serveMatrix(8)
		mj := matrixJSON(a)
		cp := append([]int(nil), a.Colptr...)
		cp[1], cp[2] = cp[2], cp[1] // non-monotone
		mj.Colptr = cp
		return mj
	}()

	inject := faultinject.New()
	s, ts := newTestServer(t, 4, basker.PoolOptions{
		Options: basker.Options{Threads: 4, StallTimeout: 60 * time.Millisecond}.InjectFaults(inject),
	}, Options{MaxInFlight: 4})

	zeros := func(n int) []float64 { return make([]float64, n) }

	cases := []struct {
		name       string
		path       string
		body       any
		rawBody    string // overrides body when non-empty
		arm        func()
		wantStatus int
		wantCode   string
	}{
		{
			name: "invalid JSON", path: "/v1/solve", rawBody: "{not json",
			wantStatus: http.StatusBadRequest, wantCode: "bad_input",
		},
		{
			name: "no matrix selector", path: "/v1/solve",
			body:       SolveRequest{B: zeros(4)},
			wantStatus: http.StatusBadRequest, wantCode: "bad_input",
		},
		{
			name: "two matrix selectors", path: "/v1/solve",
			body:       SolveRequest{Matrix: matrixJSON(good), ID: "p-x", B: zeros(good.N)},
			wantStatus: http.StatusBadRequest, wantCode: "bad_input",
		},
		{
			name: "both b and bs", path: "/v1/solve",
			body:       SolveRequest{Matrix: matrixJSON(good), B: zeros(good.N), Bs: [][]float64{zeros(good.N)}},
			wantStatus: http.StatusBadRequest, wantCode: "bad_input",
		},
		{
			name: "neither b nor bs", path: "/v1/solve",
			body:       SolveRequest{Matrix: matrixJSON(good)},
			wantStatus: http.StatusBadRequest, wantCode: "bad_input",
		},
		{
			name: "wire-shape colptr mismatch", path: "/v1/solve",
			body: SolveRequest{Matrix: &MatrixJSON{M: 4, N: 4, Colptr: []int{0, 1}, Rowidx: []int{0}, Values: []float64{1}},
				B: zeros(4)},
			wantStatus: http.StatusBadRequest, wantCode: "bad_input",
		},
		{
			name: "solver ErrBadInput broken CSC", path: "/v1/solve",
			body:       SolveRequest{Matrix: brokenCSC, B: zeros(brokenCSC.N)},
			wantStatus: http.StatusBadRequest, wantCode: "bad_input",
		},
		{
			name: "ErrDimensionMismatch wrong b length", path: "/v1/solve",
			body:       SolveRequest{Matrix: matrixJSON(good), B: zeros(good.N - 1)},
			wantStatus: http.StatusBadRequest, wantCode: "dimension_mismatch",
		},
		{
			name: "values length mismatch on registered id", path: "/v1/solve",
			body:       nil, // built below after registration
			wantStatus: http.StatusBadRequest, wantCode: "dimension_mismatch",
		},
		{
			name: "ErrSingular empty column", path: "/v1/solve",
			body:       SolveRequest{Matrix: singular, B: zeros(singular.N)},
			wantStatus: http.StatusUnprocessableEntity, wantCode: "singular",
		},
		{
			name: "unknown pattern id", path: "/v1/solve",
			body:       SolveRequest{ID: "p-deadbeefdeadbeef", B: zeros(4)},
			wantStatus: http.StatusNotFound, wantCode: "unknown_pattern",
		},
		{
			name: "bad mode", path: "/v1/solve",
			body:       SolveRequest{Matrix: matrixJSON(good), B: zeros(good.N), Mode: "sideways"},
			wantStatus: http.StatusBadRequest, wantCode: "bad_input",
		},
		{
			name: "ErrDeadlineExceeded mid-factor", path: "/v1/solve",
			body:       SolveRequest{Matrix: matrixJSON(big), B: zeros(big.N), TimeoutMillis: 1},
			wantStatus: http.StatusGatewayTimeout, wantCode: "deadline_exceeded",
		},
		{
			name: "ErrStalled wedged sweep", path: "/v1/solve",
			body: SolveRequest{Matrix: matrixJSON(serveMatrix(11)), B: zeros(serveMatrix(11).N)},
			arm: func() {
				inject.Arm(faultinject.PointStall, faultinject.Rule{
					Sweep: faultinject.SweepFactor, SweepSet: true, Block: -1, Worker: -1,
					Times: 1, Stall: 900 * time.Millisecond,
				})
			},
			wantStatus: http.StatusServiceUnavailable, wantCode: "stalled",
		},
		{
			name: "ErrInternalPanic worker panic", path: "/v1/solve",
			body: SolveRequest{Matrix: matrixJSON(serveMatrix(12)), B: zeros(serveMatrix(12).N)},
			arm: func() {
				inject.Arm(faultinject.PointWorkerPanic, faultinject.Rule{
					Sweep: faultinject.SweepFactor, SweepSet: true, Block: -1, Worker: -1, Times: 1,
				})
			},
			wantStatus: http.StatusInternalServerError, wantCode: "internal_panic",
		},
	}

	// Register a pattern for the values-length-mismatch row.
	status, raw := postJSON(t, ts.URL+"/v1/matrices", RegisterRequest{Matrix: matrixJSON(good)})
	if status != http.StatusOK {
		t.Fatalf("register: status %d, body %s", status, raw)
	}
	var reg RegisterResponse
	decodeInto(t, raw, &reg)
	for i := range cases {
		if cases[i].name == "values length mismatch on registered id" {
			cases[i].body = SolveRequest{ID: reg.ID, Values: zeros(3), B: zeros(good.N)}
		}
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if tc.arm != nil {
				tc.arm()
				defer inject.DisarmAll()
			}
			var status int
			var raw []byte
			if tc.rawBody != "" {
				resp, err := http.Post(ts.URL+tc.path, "application/json", strings.NewReader(tc.rawBody))
				if err != nil {
					t.Fatal(err)
				}
				defer resp.Body.Close()
				status = resp.StatusCode
				raw, _ = io.ReadAll(resp.Body)
			} else {
				status, raw = postJSON(t, ts.URL+tc.path, tc.body)
			}
			if status != tc.wantStatus {
				t.Fatalf("status %d, want %d (body %s)", status, tc.wantStatus, raw)
			}
			if code := errCode(t, raw); code != tc.wantCode {
				t.Fatalf("code %q, want %q (body %s)", code, tc.wantCode, raw)
			}
		})
	}

	// Admission rejection: occupy every in-flight slot, then knock.
	for i := 0; i < cap(s.inflight); i++ {
		s.inflight <- struct{}{}
	}
	status, raw = postJSON(t, ts.URL+"/v1/solve", SolveRequest{Matrix: matrixJSON(good), B: zeros(good.N)})
	if status != http.StatusServiceUnavailable || errCode(t, raw) != "overloaded" {
		t.Fatalf("full server: status %d, body %s, want 503 overloaded", status, raw)
	}
	for i := 0; i < cap(s.inflight); i++ {
		<-s.inflight
	}
	if got := s.Stats().Shed; got == 0 {
		t.Fatalf("shed counter did not move")
	}

	// Canceled client: a request whose context is already dead maps to 499.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	payload, _ := json.Marshal(SolveRequest{Matrix: matrixJSON(good), B: goodB})
	req := httptest.NewRequest("POST", "/v1/solve", bytes.NewReader(payload)).WithContext(ctx)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != StatusClientClosedRequest {
		t.Fatalf("canceled request: status %d, body %s, want 499", rec.Code, rec.Body.Bytes())
	}
	if code := errCode(t, rec.Body.Bytes()); code != "canceled" {
		t.Fatalf("canceled request code %q", code)
	}

	// Body too large.
	_, tiny := newTestServer(t, 1, basker.PoolOptions{}, Options{MaxBodyBytes: 16})
	resp, err := http.Post(tiny.URL+"/v1/solve", "application/json",
		strings.NewReader(fmt.Sprintf(`{"b": [%s1]}`, strings.Repeat("1,", 64))))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ = io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusRequestEntityTooLarge || errCode(t, raw) != "body_too_large" {
		t.Fatalf("oversized body: status %d, body %s, want 413 body_too_large", resp.StatusCode, raw)
	}
}
