package serve

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	basker "repro"
)

// Options configures the HTTP front end. The pool itself is constructed by
// the caller (shard count, admission control, memory bound, fault injection
// for chaos tests) and handed to NewServer.
type Options struct {
	// MaxInFlight bounds concurrently executing /v1/ requests; excess
	// traffic is shed immediately with 503 overloaded rather than queued
	// (the pool's own MaxConcurrentFactors queues; this layer does not).
	// 0 means unlimited.
	MaxInFlight int
	// MaxBodyBytes bounds request bodies; beyond it the request fails with
	// 413 body_too_large. 0 means the 64 MiB default.
	MaxBodyBytes int64
	// DefaultTimeout applies to requests that carry no timeout_ms. 0 means
	// no server-imposed deadline (the client's connection is still the
	// cancellation source).
	DefaultTimeout time.Duration
}

const defaultMaxBody = 64 << 20

// Server serves assemble→factor→solve traffic over a sharded
// factorization pool.
type Server struct {
	pool     *basker.ShardedPool
	opts     Options
	mux      *http.ServeMux
	inflight chan struct{} // admission tokens; nil when unlimited

	registry sync.Map // pattern id -> *pattern
	patterns atomic.Int64

	requests atomic.Uint64 // /v1/ requests accepted for processing
	shed     atomic.Uint64 // /v1/ requests rejected by admission
	failures atomic.Uint64 // /v1/ requests answered with an error body
}

// pattern is a registered matrix template. The pattern arrays are shared
// read-only with values-only requests; the solver never mutates its input
// matrix.
type pattern struct {
	a     *basker.Matrix
	shard int
}

// ServerStats is the front end's own counter block, reported beside the
// pool's in /v1/stats.
type ServerStats struct {
	Requests uint64 `json:"requests"`
	Shed     uint64 `json:"shed"`
	Failures uint64 `json:"failures"`
	InFlight int    `json:"in_flight"`
	Patterns int64  `json:"patterns"`
}

// StatsResponse is the GET /v1/stats body.
type StatsResponse struct {
	Pool   basker.PoolStats   `json:"pool"`
	Shards []basker.PoolStats `json:"shards"`
	Server ServerStats        `json:"server"`
}

// NewServer wires the handlers over the given pool.
func NewServer(pool *basker.ShardedPool, opts Options) *Server {
	if opts.MaxBodyBytes <= 0 {
		opts.MaxBodyBytes = defaultMaxBody
	}
	s := &Server{pool: pool, opts: opts, mux: http.NewServeMux()}
	if opts.MaxInFlight > 0 {
		s.inflight = make(chan struct{}, opts.MaxInFlight)
	}
	s.mux.HandleFunc("POST /v1/solve", s.admit(s.handleSolve))
	s.mux.HandleFunc("POST /v1/factor", s.admit(s.handleFactor))
	s.mux.HandleFunc("POST /v1/matrices", s.admit(s.handleRegister))
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.Handle("GET /debug/vars", expvar.Handler())
	return s
}

// Handler returns the front end as an http.Handler for mounting or for
// httptest.
func (s *Server) Handler() http.Handler { return s }

// Pool exposes the backing sharded pool (for operational hooks such as
// expvar publication at process startup).
func (s *Server) Pool() *basker.ShardedPool { return s.pool }

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Stats snapshots the front end's counters.
func (s *Server) Stats() ServerStats {
	st := ServerStats{
		Requests: s.requests.Load(),
		Shed:     s.shed.Load(),
		Failures: s.failures.Load(),
		Patterns: s.patterns.Load(),
	}
	if s.inflight != nil {
		st.InFlight = len(s.inflight)
	}
	return st
}

// admit applies load shedding and panic containment around a solver
// endpoint. A handler panic must answer 500 and keep the process alive —
// the chaos battery's survival property — and a full server must shed
// immediately so health checks and queued upstream load balancers see
// backpressure, not latency.
func (s *Server) admit(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if s.inflight != nil {
			select {
			case s.inflight <- struct{}{}:
				defer func() { <-s.inflight }()
			default:
				s.shed.Add(1)
				w.Header().Set("Retry-After", "1")
				s.writeError(w, http.StatusServiceUnavailable, "overloaded",
					"server is at its in-flight request limit")
				return
			}
		}
		s.requests.Add(1)
		defer func() {
			if p := recover(); p != nil {
				s.writeError(w, http.StatusInternalServerError, "internal_panic",
					"request handler panicked; request dropped")
			}
		}()
		r.Body = http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes)
		h(w, r)
	}
}

func (s *Server) writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(body)
}

func (s *Server) writeError(w http.ResponseWriter, status int, code, msg string) {
	s.failures.Add(1)
	s.writeJSON(w, status, ErrorBody{Error: ErrorDetail{Code: code, Message: msg}})
}

// fail maps a solver or wire error onto its HTTP shape.
func (s *Server) fail(w http.ResponseWriter, err error) {
	status, code := errorStatus(err)
	s.writeError(w, status, code, err.Error())
}

// decode reads one JSON body into dst, translating size and syntax defects
// into wire errors.
func (s *Server) decode(r *http.Request, dst any) error {
	if err := json.NewDecoder(r.Body).Decode(dst); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			return &wireError{status: http.StatusRequestEntityTooLarge, code: "body_too_large",
				msg: "request body exceeds the server limit"}
		}
		return badRequest("bad_input", "invalid JSON request body: %v", err)
	}
	return nil
}

// resolveMatrix turns a request's matrix selector — inline CSC, inline
// triplets, or registered id with optional replacement values — into the
// CSC the pool factors.
func (s *Server) resolveMatrix(mj *MatrixJSON, tj *TripletsJSON, id string, values []float64) (*basker.Matrix, error) {
	selectors := 0
	if mj != nil {
		selectors++
	}
	if tj != nil {
		selectors++
	}
	if id != "" {
		selectors++
	}
	if selectors != 1 {
		return nil, badRequest("bad_input",
			"exactly one of matrix, triplets or id must select the system (got %d selectors)", selectors)
	}
	switch {
	case mj != nil:
		return mj.toCSC()
	case tj != nil:
		return tj.toCSC()
	}
	v, ok := s.registry.Load(id)
	if !ok {
		return nil, &wireError{status: http.StatusNotFound, code: "unknown_pattern",
			msg: "no registered matrix with id " + id}
	}
	pat := v.(*pattern)
	if values == nil {
		return pat.a, nil
	}
	if len(values) != len(pat.a.Values) {
		return nil, badRequest("dimension_mismatch",
			"values carries %d entries; pattern %s has %d nonzeros", len(values), id, len(pat.a.Values))
	}
	// Shallow template: the immutable pattern arrays are shared, the values
	// are this request's own — the refactor→solve wire path allocates only
	// what the client sent.
	return &basker.Matrix{M: pat.a.M, N: pat.a.N, Colptr: pat.a.Colptr, Rowidx: pat.a.Rowidx, Values: values}, nil
}

// requestContext derives the work deadline for one request: the client
// connection is always a cancellation source, timeout_ms (or the server
// default) adds a deadline on top.
func (s *Server) requestContext(r *http.Request, timeoutMillis int64) (context.CancelFunc, context.Context) {
	base := r.Context()
	d := s.opts.DefaultTimeout
	if timeoutMillis > 0 {
		d = time.Duration(timeoutMillis) * time.Millisecond
	}
	if d <= 0 {
		return func() {}, base
	}
	c, cancel := context.WithTimeout(base, d)
	return cancel, c
}

func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	var req SolveRequest
	if err := s.decode(r, &req); err != nil {
		s.fail(w, err)
		return
	}
	if (req.B == nil) == (len(req.Bs) == 0) {
		s.fail(w, badRequest("bad_input", "exactly one of b or bs must be set"))
		return
	}
	a, err := s.resolveMatrix(req.Matrix, req.Triplets, req.ID, req.Values)
	if err != nil {
		s.fail(w, err)
		return
	}
	cancel, ctx := s.requestContext(r, req.TimeoutMillis)
	defer cancel()
	lease, err := s.acquire(ctx, a, req.Mode)
	if err != nil {
		s.fail(w, err)
		return
	}
	if req.B != nil {
		err = lease.SolveCtx(ctx, req.B)
	} else {
		err = lease.SolveManyCtx(ctx, req.Bs)
	}
	if err != nil {
		lease.Release()
		s.fail(w, err)
		return
	}
	// Finiteness screen: silent numeric corruption (the KernelNaN chaos
	// mode) can survive factorization and surface only in the solution.
	// A non-finite answer is never served; the factorization that produced
	// it is discarded so the next same-pattern request refactors cleanly.
	finite := true
	if req.B != nil {
		finite = finiteSlice(req.B)
	} else {
		for _, b := range req.Bs {
			if !finiteSlice(b) {
				finite = false
				break
			}
		}
	}
	if !finite {
		lease.Discard()
		s.writeError(w, http.StatusInternalServerError, "not_finite_solution",
			"computed solution contains NaN or Inf; cached factorization discarded")
		return
	}
	lease.Release()
	resp := SolveResponse{ElapsedMS: float64(time.Since(start)) / float64(time.Millisecond)}
	if req.B != nil {
		resp.X = req.B
	} else {
		resp.Xs = req.Bs
	}
	s.writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleFactor(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	var req FactorRequest
	if err := s.decode(r, &req); err != nil {
		s.fail(w, err)
		return
	}
	a, err := s.resolveMatrix(req.Matrix, req.Triplets, req.ID, req.Values)
	if err != nil {
		s.fail(w, err)
		return
	}
	cancel, ctx := s.requestContext(r, req.TimeoutMillis)
	defer cancel()
	lease, err := s.acquire(ctx, a, req.Mode)
	if err != nil {
		s.fail(w, err)
		return
	}
	st := lease.Stats(a)
	lease.Release()
	s.writeJSON(w, http.StatusOK, FactorResponse{
		N:         a.N,
		NnzLU:     st.NnzLU,
		ElapsedMS: float64(time.Since(start)) / float64(time.Millisecond),
	})
}

func (s *Server) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req RegisterRequest
	if err := s.decode(r, &req); err != nil {
		s.fail(w, err)
		return
	}
	if (req.Matrix == nil) == (req.Triplets == nil) {
		s.fail(w, badRequest("bad_input", "exactly one of matrix or triplets must be set"))
		return
	}
	var (
		a   *basker.Matrix
		err error
	)
	if req.Matrix != nil {
		a, err = req.Matrix.toCSC()
	} else {
		a, err = req.Triplets.toCSC()
	}
	if err != nil {
		s.fail(w, err)
		return
	}
	id := patternID(a)
	pat := &pattern{a: a, shard: s.pool.ShardIndex(a)}
	if _, existed := s.registry.Swap(id, pat); !existed {
		s.patterns.Add(1)
	}
	if req.Warm {
		cancel, ctx := s.requestContext(r, req.TimeoutMillis)
		defer cancel()
		lease, err := s.pool.AcquireCtx(ctx, a)
		if err != nil {
			s.fail(w, err)
			return
		}
		lease.Release()
	}
	s.writeJSON(w, http.StatusOK, RegisterResponse{
		ID:    id,
		N:     a.N,
		Nnz:   len(a.Values),
		Shard: pat.shard,
	})
}

// acquire picks the pool entry point for the request mode: "refresh"
// (default) rides the cached-pattern refactorization path, "fresh" forces
// a newly pivoted factorization.
func (s *Server) acquire(ctx context.Context, a *basker.Matrix, mode string) (*basker.Lease, error) {
	switch mode {
	case "", "refresh":
		return s.pool.AcquireCtx(ctx, a)
	case "fresh":
		return s.pool.Factor(a)
	default:
		return nil, badRequest("bad_input", "mode %q is not one of refresh, fresh", mode)
	}
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, StatsResponse{
		Pool:   s.pool.Stats(),
		Shards: s.pool.ShardStats(),
		Server: s.Stats(),
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}
