package serve

import (
	"net/http"
	"sync"
	"testing"

	basker "repro"
	"repro/internal/faultinject"
	"repro/internal/matgen"
)

// chaosServeMatrix mirrors the library chaos battery's shape: enough
// blocks and fill that refresh and factor sweeps run their parallel paths,
// where the injection points live.
func chaosServeMatrix(seed int64) *basker.Matrix {
	return matgen.Circuit(matgen.CircuitParams{
		N: 700, BTFPct: 50, Blocks: 40, Core: matgen.CoreLadder, ExtraDensity: 0.3, Seed: seed,
	})
}

func newChaosServer(t *testing.T, inject *faultinject.Injector) (*Server, string) {
	t.Helper()
	pool := basker.NewShardedPool(4, basker.PoolOptions{
		Options: basker.Options{Threads: 4, BigBlockMin: 64}.InjectFaults(inject),
	})
	s := NewServer(pool, Options{})
	ts := newHTTPServer(t, s)
	return s, ts
}

// scaledValues returns a same-pattern values vector drifted by factor c —
// the refresh traffic that drives the pool's RefactorAuto sweep, where the
// chaos points fire.
func scaledValues(a *basker.Matrix, c float64) []float64 {
	vals := make([]float64, len(a.Values))
	for i, v := range a.Values {
		vals[i] = c * v
	}
	return vals
}

// TestServeChaosWorkerPanic drives an injected worker panic through the
// whole service stack: the request answers 500 internal_panic (never a
// hung connection, never a dead process), the poisoned entry does not
// survive in the cache, and the next same-pattern request recovers with a
// fresh factorization.
func TestServeChaosWorkerPanic(t *testing.T) {
	inject := faultinject.New()
	s, url := newChaosServer(t, inject)
	a := chaosServeMatrix(11)

	status, raw := postJSON(t, url+"/v1/matrices", RegisterRequest{Matrix: matrixJSON(a), Warm: true})
	if status != http.StatusOK {
		t.Fatalf("register: status %d, body %s", status, raw)
	}
	var reg RegisterResponse
	decodeInto(t, raw, &reg)

	// Every parallel sweep consultation panics: the refresh panics, and so
	// does every fresh-factor fallback behind it — the error must surface
	// as a mapped 500, not kill the server.
	inject.Arm(faultinject.PointWorkerPanic, faultinject.Any())
	vals := scaledValues(a, 1.5)
	scaled := &basker.Matrix{M: a.M, N: a.N, Colptr: a.Colptr, Rowidx: a.Rowidx, Values: vals}
	b, _ := rhsFor(scaled, 70)
	status, raw = postJSON(t, url+"/v1/solve", SolveRequest{ID: reg.ID, Values: vals, B: b})
	if inject.Fired(faultinject.PointWorkerPanic) == 0 {
		t.Skip("no parallel sweep consulted the panic point at this configuration")
	}
	if status != http.StatusInternalServerError {
		t.Fatalf("panicked request: status %d, body %s, want 500", status, raw)
	}
	if code := errCode(t, raw); code != "internal_panic" {
		t.Fatalf("panicked request code %q, want internal_panic", code)
	}

	// The service is still alive and healthy.
	var health map[string]string
	if st := getJSON(t, url+"/healthz", &health); st != http.StatusOK || health["status"] != "ok" {
		t.Fatalf("healthz after panic: %d %v", st, health)
	}

	// Recovery: disarmed, the same pattern factors fresh and solves right.
	inject.DisarmAll()
	missesBefore := s.pool.Stats().Misses
	b2, x2 := rhsFor(scaled, 71)
	status, raw = postJSON(t, url+"/v1/solve", SolveRequest{ID: reg.ID, Values: vals, B: b2})
	if status != http.StatusOK {
		t.Fatalf("recovery solve: status %d, body %s", status, raw)
	}
	var resp SolveResponse
	decodeInto(t, raw, &resp)
	wantClose(t, resp.X, x2, "recovered x")
	if got := s.pool.Stats().Misses; got == missesBefore {
		t.Fatalf("recovery reused a cache entry; the poisoned factorization must have been dropped (misses %d)", got)
	}
}

// TestServeChaosKernelNaN drives silent numeric corruption through the
// stack: the injected NaN survives the refresh without an error, so only
// the serving layer's finiteness screen stands between it and the client —
// the response must be 500 not_finite_solution, the corrupted entry
// discarded, and the next request clean.
func TestServeChaosKernelNaN(t *testing.T) {
	inject := faultinject.New()
	s, url := newChaosServer(t, inject)
	a := chaosServeMatrix(12)

	status, raw := postJSON(t, url+"/v1/matrices", RegisterRequest{Matrix: matrixJSON(a), Warm: true})
	if status != http.StatusOK {
		t.Fatalf("register: status %d, body %s", status, raw)
	}
	var reg RegisterResponse
	decodeInto(t, raw, &reg)

	inject.Arm(faultinject.PointKernelNaN, faultinject.Rule{
		Sweep: faultinject.SweepPartial, SweepSet: true, Block: -1, Worker: -1, Times: 1,
	})
	vals := scaledValues(a, 1.25)
	scaled := &basker.Matrix{M: a.M, N: a.N, Colptr: a.Colptr, Rowidx: a.Rowidx, Values: vals}
	b, _ := rhsFor(scaled, 80)
	status, raw = postJSON(t, url+"/v1/solve", SolveRequest{ID: reg.ID, Values: vals, B: b})
	if inject.Fired(faultinject.PointKernelNaN) == 0 {
		t.Skip("refresh did not consult the NaN point at this configuration")
	}
	if status != http.StatusInternalServerError {
		t.Fatalf("NaN-corrupted request: status %d, body %s, want 500", status, raw)
	}
	if code := errCode(t, raw); code != "not_finite_solution" {
		t.Fatalf("NaN-corrupted request code %q, want not_finite_solution", code)
	}
	if got := s.pool.Stats().Discards; got == 0 {
		t.Fatalf("corrupted factorization was not discarded: %+v", s.pool.Stats())
	}

	// Clean recovery on the same pattern.
	inject.DisarmAll()
	b2, x2 := rhsFor(scaled, 81)
	status, raw = postJSON(t, url+"/v1/solve", SolveRequest{ID: reg.ID, Values: vals, B: b2})
	if status != http.StatusOK {
		t.Fatalf("recovery solve: status %d, body %s", status, raw)
	}
	var resp SolveResponse
	decodeInto(t, raw, &resp)
	wantClose(t, resp.X, x2, "recovered x")
}

// TestServeChaosStorm hammers the service with mixed-pattern traffic while
// faults come and go: every response is a well-formed JSON verdict (2xx or
// mapped 5xx, never a hang, never a dead process), and after the chaos
// clears every pattern still solves correctly.
func TestServeChaosStorm(t *testing.T) {
	inject := faultinject.New()
	s, url := newChaosServer(t, inject)

	pats := make([]*basker.Matrix, 4)
	ids := make([]string, len(pats))
	for i := range pats {
		pats[i] = matgen.Circuit(matgen.CircuitParams{
			N: 180 + 40*i, BTFPct: 50, Blocks: 10, Core: matgen.CoreLadder, ExtraDensity: 0.4, Seed: int64(30 + i),
		})
		status, raw := postJSON(t, url+"/v1/matrices", RegisterRequest{Matrix: matrixJSON(pats[i]), Warm: true})
		if status != http.StatusOK {
			t.Fatalf("register %d: status %d, body %s", i, status, raw)
		}
		var reg RegisterResponse
		decodeInto(t, raw, &reg)
		ids[i] = reg.ID
	}

	// Intermittent chaos: a bounded burst of panics while the storm runs.
	inject.Arm(faultinject.PointWorkerPanic, faultinject.AnyTimes(6))

	const goroutines = 8
	const iters = 10
	var wg sync.WaitGroup
	var mu sync.Mutex
	counts := map[int]int{}
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for it := 0; it < iters; it++ {
				i := (g + it) % len(pats)
				vals := scaledValues(pats[i], 1+0.01*float64(g*iters+it))
				scaled := &basker.Matrix{M: pats[i].M, N: pats[i].N, Colptr: pats[i].Colptr, Rowidx: pats[i].Rowidx, Values: vals}
				b, _ := rhsFor(scaled, int64(g*1000+it))
				status, raw := postJSON(t, url+"/v1/solve", SolveRequest{ID: ids[i], Values: vals, B: b})
				switch status {
				case http.StatusOK:
					var resp SolveResponse
					decodeInto(t, raw, &resp)
					if len(resp.X) != pats[i].N {
						t.Errorf("goroutine %d iter %d: %d components, want %d", g, it, len(resp.X), pats[i].N)
					}
				case http.StatusInternalServerError:
					if code := errCode(t, raw); code != "internal_panic" && code != "not_finite_solution" {
						t.Errorf("goroutine %d iter %d: unexpected 500 code %q", g, it, code)
					}
				default:
					t.Errorf("goroutine %d iter %d: unexpected status %d, body %s", g, it, status, raw)
				}
				mu.Lock()
				counts[status]++
				mu.Unlock()
			}
		}(g)
	}
	wg.Wait()
	inject.DisarmAll()

	if counts[http.StatusOK] == 0 {
		t.Fatalf("no request succeeded during the storm: %v", counts)
	}

	// The chaos has cleared: every pattern must solve correctly again.
	for i, a := range pats {
		b, x := rhsFor(a, int64(90+i))
		status, raw := postJSON(t, url+"/v1/solve", SolveRequest{ID: ids[i], B: b})
		if status != http.StatusOK {
			t.Fatalf("post-storm solve %d: status %d, body %s", i, status, raw)
		}
		var resp SolveResponse
		decodeInto(t, raw, &resp)
		wantClose(t, resp.X, x, "post-storm x")
	}
	var health map[string]string
	if st := getJSON(t, url+"/healthz", &health); st != http.StatusOK || health["status"] != "ok" {
		t.Fatalf("healthz after storm: %d %v", st, health)
	}
	if got := s.pool.Stats().InFlightFactors; got != 0 {
		t.Fatalf("admission slots leaked through the storm: %d", got)
	}
}
