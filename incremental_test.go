package basker

import (
	"math"
	"testing"

	"repro/internal/matgen"
)

// TestPublicAPIRefactorPartial drives the incremental refresh through the
// public Factorization surface: explicit change sets and the diff-based
// RefactorAuto must both track a transient sequence of localized
// perturbations and keep solves accurate.
func TestPublicAPIRefactorPartial(t *testing.T) {
	base := matgen.XyceSequenceBase(0.15)
	s := New(Options{Threads: 2})
	fp, err := s.Factor(base)
	if err != nil {
		t.Fatal(err)
	}
	fa, err := s.Factor(base)
	if err != nil {
		t.Fatal(err)
	}
	cur := base
	for step := 1; step <= 4; step++ {
		cols := matgen.ChangeSet(base.N, 0.02, int64(step), step%2 == 0)
		next := matgen.PerturbColumns(cur, cols, step, 17)
		if err := fp.RefactorPartial(next, cols); err != nil {
			t.Fatalf("partial step %d: %v", step, err)
		}
		if err := fa.RefactorAuto(next); err != nil {
			t.Fatalf("auto step %d: %v", step, err)
		}
		for _, f := range []*Factorization{fp, fa} {
			x := make([]float64, next.N)
			for i := range x {
				x[i] = 1 + float64(i%5)
			}
			b := make([]float64, next.N)
			next.MulVec(b, x)
			f.Solve(b)
			for i := range x {
				if math.Abs(b[i]-x[i]) > 1e-6 {
					t.Fatalf("step %d: x[%d] = %v, want %v", step, i, b[i], x[i])
				}
			}
		}
		cur = next
	}
}

// TestAffectedSolutionBlocks verifies the dependency-closure contract: after
// an incremental refresh, solution components of blocks the closure reports
// clean are bit-for-bit identical to the pre-change solution.
func TestAffectedSolutionBlocks(t *testing.T) {
	a := matgen.Circuit(matgen.CircuitParams{N: 800, BTFPct: 90, Blocks: 60, Core: matgen.CoreLadder, ExtraDensity: 0.3, Seed: 7})
	f, err := New(Options{Threads: 1}).Factor(a)
	if err != nil {
		t.Fatal(err)
	}
	if f.NumBlocks() < 4 {
		t.Skip("matrix collapsed into too few blocks for a meaningful closure test")
	}
	rhs := make([]float64, a.N)
	for i := range rhs {
		rhs[i] = 1 + float64(i%7)
	}
	before := append([]float64(nil), rhs...)
	f.Solve(before)

	cols := matgen.ChangeSet(a.N, 0.01, 3, true)
	affected := f.AffectedSolutionBlocks(cols)
	if len(affected) != f.NumBlocks() {
		t.Fatalf("affected has %d entries, want %d", len(affected), f.NumBlocks())
	}
	anyAffected, anyClean := false, false
	for _, d := range affected {
		if d {
			anyAffected = true
		} else {
			anyClean = true
		}
	}
	if !anyAffected {
		t.Fatal("change set affects no block")
	}
	if !anyClean {
		t.Skip("change set reaches every block; nothing to verify")
	}
	for _, c := range cols {
		if !affected[f.BlockOfColumn(c)] {
			t.Fatalf("changed column %d's own block not reported affected", c)
		}
	}

	next := matgen.PerturbColumns(a, cols, 1, 23)
	if err := f.RefactorPartial(next, cols); err != nil {
		t.Fatal(err)
	}
	after := append([]float64(nil), rhs...)
	f.Solve(after)
	// Solution components of clean blocks must be bitwise unchanged.
	for j := 0; j < a.N; j++ {
		if !affected[f.BlockOfColumn(j)] && after[j] != before[j] {
			t.Fatalf("solution component %d (clean block %d) changed: %v -> %v",
				j, f.BlockOfColumn(j), after[j], before[j])
		}
	}
}
