package basker

import (
	"context"
	"errors"
	"sync"
	"time"

	"repro/internal/core"
)

// Pool is a pattern-keyed cache of Factorizations: the serving layer for
// workloads where many goroutines stamp matrices with a small set of
// recurring sparsity patterns (one per circuit/scenario family) and solve
// concurrently. Acquire hands each caller a private Factorization for its
// matrix — refreshed through the change-set-aware RefactorAuto path when a
// cached factorization with the same pattern is idle (only the blocks whose
// values actually differ are reworked), or built with a full Factor on a
// miss — so solves never contend and transient sequences hit the
// incremental fast path almost always.
//
// Typical serving loop:
//
//	lease, err := pool.Acquire(a) // Refactor hit or Factor miss
//	if err != nil { ... }
//	lease.Solve(b)
//	lease.Release() // return the factorization for the next same-pattern call
//
// Refactor-vs-Solve exclusion: a Refactor must never run concurrently with
// solves on the same Factorization. The Pool upholds the contract
// structurally — Acquire refactors an entry only while it is idle (checked
// out of the cache, not leased to anyone), and a leased factorization is
// private to its holder until Release — so callers only have to keep the
// rule within their own lease: finish solving before releasing, and never
// call Refactor on a leased factorization they are concurrently solving
// with. If a cached entry's Refactor fails (new values defeat every reused
// pivot), the entry is discarded and the Acquire falls back to a fresh
// Factor, so callers never observe a half-refreshed factorization.
//
// A Pool serializes its bookkeeping (never the numeric work) on one mutex;
// under many-core many-client load, wrap it in a ShardedPool, which spreads
// patterns over independent Pools.
type Pool struct {
	solver   *Solver
	maxIdle  int
	maxSyms  int
	maxAge   time.Duration
	maxBytes int64
	meter    bool
	// now is the clock (replaceable by tests of the age-based eviction).
	now func() time.Time

	// leases recycles Lease headers so the steady-state hit path allocates
	// nothing (a released lease is cleared before reuse, so stale caller
	// pointers fail fast on nil instead of aliasing the next holder).
	leases sync.Pool

	mu       sync.Mutex
	idle     map[uint64][]*poolEntry
	syms     map[uint64][]*symEntry
	symCount int
	hits     uint64
	misses   uint64
	// factorReuses counts fresh factorizations that recycled a cached
	// entry's storage (the Pool.Factor fast path and re-pivoting fallbacks).
	factorReuses uint64
	// evictions counts idle factorizations dropped by the capacity cap or
	// the idle-age limit; memEvictions counts drops forced by the MaxBytes
	// memory bound.
	evictions    uint64
	memEvictions uint64
	// bytesCached is the estimated footprint of all idle entries (the sum
	// of their entryBytes at release time).
	bytesCached int64
	// poisonEvictions counts released factorizations dropped because a
	// failed or panicked refresh left their numerics poisoned; discards
	// counts leases the holder dropped through Lease.Discard.
	poisonEvictions uint64
	discards        uint64
	// rejected counts AcquireCtx calls turned away because their context
	// was already expired at entry; canceled counts callers whose context
	// fired while queued for a fresh-factorization slot; queueWaits counts
	// fresh factorizations that had to block for a slot.
	rejected   uint64
	canceled   uint64
	queueWaits uint64
	// lockWaitNs/lockHoldNs accumulate mutex wait and hold time when
	// PoolOptions.MeterLock is set (the serving layer's contention meter);
	// lockT0 is the running section's acquisition instant.
	lockWaitNs int64
	lockHoldNs int64
	lockT0     time.Time

	// sem is the fresh-factorization admission semaphore (nil = unlimited):
	// each in-flight full numeric factorization holds one slot, bounding
	// the memory and CPU burst a miss storm can impose on the serving
	// layer. Refactor fast paths are never gated. A ShardedPool shares one
	// semaphore across all shards, so the admission bound stays global.
	sem chan struct{}
}

type poolEntry struct {
	f   *Factorization
	key uint64
	// idleSince is when the entry last entered the idle cache; bytes is its
	// estimated footprint, computed at that moment (the factorization's
	// |L+U| can drift across refreshes).
	idleSince time.Time
	bytes     int64
}

// entryBytes estimates one cached factorization's memory footprint from its
// |L+U|: 8 bytes of value plus 8 of row index per stored factor entry, plus
// another 8 amortizing the permuted input copy, block inputs and gather
// maps, and ~48 bytes per row of permutation/scratch/pointer vectors. An
// estimate — Go gives no exact per-object accounting — but it is monotone
// in the quantity that matters (factor fill), which is what a memory bound
// needs.
func entryBytes(f *Factorization) int64 {
	return 24*int64(f.num.NnzLU()) + 48*int64(f.num.Sym.N)
}

// symEntry caches one sparsity pattern's symbolic analysis, so repeated
// full factorizations of a known pattern skip Analyze (orderings, BTF,
// partition, entry maps) entirely. Exact verification behind the hash key
// delegates to the analysis' own recorded pattern (Symbolic.PatternMatches
// — the single implementation every pattern-keyed fast path shares), so no
// second copy of the pattern is retained.
type symEntry struct {
	sym *core.Symbolic
}

func (e *symEntry) matches(a *Matrix) bool { return e.sym.PatternMatches(a) }

// PoolOptions configures a Pool.
type PoolOptions struct {
	// Options configures the underlying solver used for cache misses.
	Options
	// MaxIdlePerPattern caps how many idle factorizations are retained per
	// sparsity pattern; 0 selects the default (16), negative is unlimited.
	MaxIdlePerPattern int
	// MaxCachedPatterns caps how many distinct sparsity patterns retain a
	// cached symbolic analysis (each holds orderings plus the gather plan,
	// several times the matrix's index footprint); 0 selects the default
	// (32), negative is unlimited. Evicting a pattern only drops the cached
	// analysis — factorizations already built with it remain valid — so a
	// workload whose patterns evolve over time cannot grow the pool's
	// memory without bound.
	MaxCachedPatterns int
	// MaxIdleAge drops idle factorizations that have not been leased for
	// this long, so a pattern family that goes quiet releases its numeric
	// storage instead of pinning it until the capacity cap evicts it.
	// 0 disables age-based eviction. Expiry is enforced lazily on the
	// pool's own operations (no background goroutine).
	MaxIdleAge time.Duration
	// MaxBytes caps the estimated aggregate footprint of idle cached
	// factorizations (per-entry footprints are derived from |L+U|; see
	// PoolStats.BytesCached). When a Release pushes the pool over the
	// bound, the oldest idle entries are evicted until it fits
	// (PoolStats.MemEvictions), so a burst of large or many-pattern traffic
	// converges back under the bound as leases drain. Leased factorizations
	// are not counted — the bound governs what the pool retains, not what
	// callers hold. 0 disables the bound.
	MaxBytes int64
	// MaxConcurrentFactors caps how many fresh numeric factorizations (the
	// expensive miss path and the re-pivoting fallbacks; never the
	// Refactor fast path) run concurrently. Excess callers queue for a
	// slot — honouring their context when they came through AcquireCtx —
	// so a burst of cold patterns degrades into an orderly queue instead
	// of a memory and CPU stampede. 0 disables admission control.
	MaxConcurrentFactors int
	// MeterLock accounts the pool mutex's wait and hold time
	// (PoolStats.LockWaitSeconds/LockHoldSeconds) at the cost of two clock
	// reads per locked section — the serving layer's direct measure of how
	// contended one pool's bookkeeping is (the number sharding exists to
	// divide). Off by default; the metered path allocates nothing, so the
	// zero-alloc steady states hold either way.
	MeterLock bool
}

// NewPool returns an empty factorization pool.
func NewPool(opts PoolOptions) *Pool {
	maxIdle := opts.MaxIdlePerPattern
	switch {
	case maxIdle == 0:
		maxIdle = 16
	case maxIdle < 0:
		maxIdle = 1 << 30
	}
	maxSyms := opts.MaxCachedPatterns
	switch {
	case maxSyms == 0:
		maxSyms = 32
	case maxSyms < 0:
		maxSyms = 1 << 30
	}
	var sem chan struct{}
	if opts.MaxConcurrentFactors > 0 {
		sem = make(chan struct{}, opts.MaxConcurrentFactors)
	}
	return &Pool{
		solver:   New(opts.Options),
		maxIdle:  maxIdle,
		maxSyms:  maxSyms,
		maxAge:   opts.MaxIdleAge,
		maxBytes: opts.MaxBytes,
		meter:    opts.MeterLock,
		now:      time.Now,
		idle:     map[uint64][]*poolEntry{},
		syms:     map[uint64][]*symEntry{},
		sem:      sem,
	}
}

// lock acquires the pool mutex, accounting wait and hold time when metering
// is on (lockT0 is protected by the mutex itself).
func (p *Pool) lock() {
	if !p.meter {
		p.mu.Lock()
		return
	}
	t0 := time.Now()
	p.mu.Lock()
	now := time.Now()
	p.lockWaitNs += now.Sub(t0).Nanoseconds()
	p.lockT0 = now
}

func (p *Pool) unlock() {
	if p.meter {
		p.lockHoldNs += time.Since(p.lockT0).Nanoseconds()
	}
	p.mu.Unlock()
}

// acquireSlot admits one fresh factorization, blocking for a semaphore
// slot when the cap is reached. A ctx that fires while queued abandons the
// wait with the typed cancellation error.
func (p *Pool) acquireSlot(ctx context.Context) error {
	if p.sem == nil {
		return nil
	}
	select {
	case p.sem <- struct{}{}:
		return nil
	default:
	}
	p.lock()
	p.queueWaits++
	p.unlock()
	if ctx == nil || ctx.Done() == nil {
		p.sem <- struct{}{}
		return nil
	}
	select {
	case p.sem <- struct{}{}:
		return nil
	case <-ctx.Done():
		p.lock()
		p.canceled++
		p.unlock()
		return core.CancelCause(ctx)
	}
}

func (p *Pool) releaseSlot() {
	if p.sem != nil {
		<-p.sem
	}
}

// evictExpiredLocked drops idle entries whose idle age exceeds MaxIdleAge,
// across every pattern bucket: a pattern family that has gone quiet is
// never touched by its own key again, so expiry must piggyback on whatever
// pool traffic still flows (bucket counts are small — one per live pattern
// family). Caller holds p.mu.
func (p *Pool) evictExpiredLocked() {
	if p.maxAge <= 0 {
		return
	}
	cutoff := p.now().Add(-p.maxAge)
	for key, bucket := range p.idle {
		kept := bucket[:0]
		for _, e := range bucket {
			if e.idleSince.Before(cutoff) {
				p.evictions++
				p.bytesCached -= e.bytes
				continue
			}
			kept = append(kept, e)
		}
		if len(kept) == 0 {
			delete(p.idle, key)
			continue
		}
		p.idle[key] = kept
	}
}

// evictOverBudgetLocked drops oldest-idle entries until the estimated
// cached footprint fits under MaxBytes. Oldest-first matches the age
// eviction's bias: the entries least likely to be leased again go first.
// Caller holds p.mu.
func (p *Pool) evictOverBudgetLocked() {
	if p.maxBytes <= 0 {
		return
	}
	for p.bytesCached > p.maxBytes {
		var oldestKey uint64
		oldestIdx := -1
		var oldest time.Time
		for key, bucket := range p.idle {
			for i, e := range bucket {
				if oldestIdx < 0 || e.idleSince.Before(oldest) {
					oldestKey, oldestIdx, oldest = key, i, e.idleSince
				}
			}
		}
		if oldestIdx < 0 {
			return // nothing idle left to evict
		}
		bucket := p.idle[oldestKey]
		e := bucket[oldestIdx]
		last := len(bucket) - 1
		bucket[oldestIdx] = bucket[last]
		if last == 0 {
			delete(p.idle, oldestKey)
		} else {
			p.idle[oldestKey] = bucket[:last]
		}
		p.bytesCached -= e.bytes
		p.memEvictions++
	}
}

// removeIdleLocked takes one same-pattern entry out of the idle cache,
// maintaining the footprint account. Caller holds p.mu.
func (p *Pool) removeIdleLocked(key uint64, a *Matrix) *poolEntry {
	bucket := p.idle[key]
	for i, e := range bucket {
		if samePattern(e, a) {
			last := len(bucket) - 1
			bucket[i] = bucket[last]
			p.idle[key] = bucket[:last]
			p.bytesCached -= e.bytes
			return e
		}
	}
	return nil
}

// Lease is a Factorization checked out of a Pool. Release returns it; a
// leased factorization is private to the caller until then.
type Lease struct {
	*Factorization
	pool  *Pool
	entry *poolEntry
}

// newLease recycles a Lease header from the pool's free list.
func (p *Pool) newLease(f *Factorization, e *poolEntry) *Lease {
	l, _ := p.leases.Get().(*Lease)
	if l == nil {
		l = &Lease{}
	}
	l.Factorization, l.pool, l.entry = f, p, e
	return l
}

// detach clears the lease (so any retained pointer fails fast instead of
// aliasing the header's next holder) and recycles it.
func (l *Lease) detach() (*Pool, *poolEntry) {
	p, e := l.pool, l.entry
	l.Factorization, l.pool, l.entry = nil, nil, nil
	p.leases.Put(l)
	return p, e
}

// Acquire returns a factorization of a, reusing an idle same-pattern
// factorization via Refactor when one is cached and running a full Factor
// otherwise. Safe for concurrent use; the numeric work happens outside the
// pool lock.
func (p *Pool) Acquire(a *Matrix) (*Lease, error) {
	return p.AcquireCtx(context.Background(), a)
}

// AcquireCtx is Acquire with deadline-aware admission: a ctx already
// expired at entry is rejected before any numeric work (PoolStats.Rejected),
// a ctx that fires while queued for a fresh-factorization slot abandons the
// queue (PoolStats.Canceled), and a ctx cancelled mid-sweep aborts the
// refresh or factorization itself, returning ErrCanceled or
// ErrDeadlineExceeded. A cached entry whose refresh was cancelled mid-sweep
// is discarded (its numerics are unspecified), so later Acquires of the
// pattern rebuild cleanly.
func (p *Pool) AcquireCtx(ctx context.Context, a *Matrix) (*Lease, error) {
	return p.acquireKeyed(ctx, a, patternKey(a))
}

// acquireKeyed is AcquireCtx for a caller that already hashed the pattern
// (the ShardedPool front end, which routes on the same key).
func (p *Pool) acquireKeyed(ctx context.Context, a *Matrix, key uint64) (*Lease, error) {
	if ctx != nil && ctx.Err() != nil {
		p.lock()
		p.rejected++
		p.unlock()
		return nil, core.CancelCause(ctx)
	}
	// The pool is an API boundary like Solver.Factor: the same opt-in
	// validation screen guards it, so malformed or non-finite input reports
	// ErrBadInput/ErrNotFinite instead of corrupting a cached entry.
	if err := validateInput(a, p.solver.opts.ValidateInputs); err != nil {
		return nil, err
	}
	p.lock()
	p.evictExpiredLocked()
	entry := p.removeIdleLocked(key, a)
	p.unlock()

	if entry != nil {
		// Diff-based incremental refresh: transient lease holders whose
		// steps perturb a few stamps get the change-set-aware sweep
		// transparently; fully-changed matrices degrade to ~full Refactor.
		if err := entry.f.num.RefactorAutoCtx(ctx, a); err != nil {
			if isAbortErr(err) {
				// Cancelled or stalled mid-refresh: the entry's numerics are
				// unspecified, so drop the storage rather than fall through
				// to an even more expensive fresh factorization.
				return nil, wrapErr(err)
			}
			// A same-pattern matrix whose values defeat the cached pivot
			// sequence: fall back to a fresh factorization with new pivots,
			// recycling the entry's storage; if even that pivots into trouble,
			// retry once with full partial pivoting before giving up on the
			// recycled storage. Fresh-pivot work honours the admission cap.
			if err := p.acquireSlot(ctx); err != nil {
				return nil, err
			}
			if err := entry.f.num.FactorIntoCtx(ctx, a); err != nil {
				if isAbortErr(err) {
					p.releaseSlot()
					return nil, wrapErr(err)
				}
				if err := entry.f.num.FactorIntoTol(a, 1.0); err != nil {
					p.releaseSlot()
					return p.factorMissCtx(ctx, a, key) // storage discarded
				}
			}
			p.releaseSlot()
			p.lock()
			p.factorReuses++
			p.unlock()
			return p.newLease(entry.f, entry), nil
		}
		p.lock()
		p.hits++
		p.unlock()
		return p.newLease(entry.f, entry), nil
	}
	return p.factorMissCtx(ctx, a, key)
}

// isAbortErr reports whether err is an external-abort verdict (cancel,
// deadline, stall) rather than a numeric failure worth a fallback.
func isAbortErr(err error) bool {
	return errors.Is(err, ErrCanceled) || errors.Is(err, ErrDeadlineExceeded) || errors.Is(err, ErrStalled)
}

// Factor returns a freshly pivoted factorization of a through the pool: the
// numeric factorization runs from scratch (unlike Acquire it never reuses a
// cached pivot sequence — the escape hatch when values have drifted far
// from the ones that chose the pivots), but both the symbolic analysis and,
// when an idle same-pattern factorization is cached, its entire storage are
// reused, so repeated same-pattern Factor calls allocate almost nothing.
func (p *Pool) Factor(a *Matrix) (*Lease, error) {
	return p.factorKeyed(a, patternKey(a))
}

// factorKeyed is Factor for a caller that already hashed the pattern.
func (p *Pool) factorKeyed(a *Matrix, key uint64) (*Lease, error) {
	if err := validateInput(a, p.solver.opts.ValidateInputs); err != nil {
		return nil, err
	}
	p.lock()
	p.evictExpiredLocked()
	entry := p.removeIdleLocked(key, a)
	p.unlock()
	if entry != nil {
		if err := p.acquireSlot(nil); err != nil {
			return nil, err
		}
		err := entry.f.num.FactorInto(a)
		p.releaseSlot()
		if err != nil {
			// Singular (or otherwise unusable) values: the recycled entry's
			// numerics are unspecified now, so drop it and surface the error
			// through the ordinary full-factor path.
			return p.factorMiss(a, key)
		}
		p.lock()
		p.factorReuses++
		p.unlock()
		return p.newLease(entry.f, entry), nil
	}
	return p.factorMiss(a, key)
}

// symFor returns the cached symbolic analysis for a's pattern, creating and
// memoizing it on first use. The analysis itself runs outside the pool lock.
func (p *Pool) symFor(a *Matrix, key uint64) (*core.Symbolic, error) {
	p.lock()
	for _, e := range p.syms[key] {
		if e.matches(a) {
			p.unlock()
			return e.sym, nil
		}
	}
	p.unlock()
	sym, err := core.Analyze(a, p.solver.opts)
	if err != nil {
		return nil, err
	}
	p.lock()
	// Double-checked insert: concurrent first factorizations of one pattern
	// may race to Analyze; keep only the winner's entry.
	for _, e := range p.syms[key] {
		if e.matches(a) {
			p.unlock()
			return e.sym, nil
		}
	}
	for p.symCount >= p.maxSyms {
		// Evict an arbitrary cached pattern (map order); live
		// factorizations keep their own Symbolic pointers and stay valid.
		evicted := false
		for k, bucket := range p.syms {
			if len(bucket) > 1 {
				p.syms[k] = bucket[:len(bucket)-1]
			} else {
				delete(p.syms, k)
			}
			p.symCount--
			evicted = true
			break
		}
		if !evicted {
			break
		}
	}
	p.syms[key] = append(p.syms[key], &symEntry{sym: sym})
	p.symCount++
	p.unlock()
	return sym, nil
}

func (p *Pool) factorMiss(a *Matrix, key uint64) (*Lease, error) {
	return p.factorMissCtx(context.Background(), a, key)
}

func (p *Pool) factorMissCtx(ctx context.Context, a *Matrix, key uint64) (*Lease, error) {
	p.lock()
	p.misses++
	p.unlock()
	sym, err := p.symFor(a, key)
	if err != nil {
		return nil, wrapErr(err)
	}
	if err := p.acquireSlot(ctx); err != nil {
		return nil, err
	}
	num, err := core.FactorCtx(ctx, a, sym)
	p.releaseSlot()
	if err != nil {
		return nil, wrapErr(err)
	}
	f := newFactorization(num)
	// Verification data is the analysis' own pattern copy (never the
	// caller's buffers), so a caller that restamps its matrix in place
	// cannot corrupt the check behind the hash key.
	entry := &poolEntry{f: f, key: key}
	return p.newLease(f, entry), nil
}

// Release returns the lease's factorization to the pool for reuse by the
// next same-pattern Acquire. Releasing twice is a bug; the factorization
// must not be used after Release.
func (l *Lease) Release() {
	p, entry := l.detach()
	if entry.f.num.Poisoned() {
		// A failed refresh left the numerics unspecified; never hand such an
		// entry to the next Acquire — drop it so the pattern's next lease
		// rebuilds from scratch.
		p.lock()
		p.poisonEvictions++
		p.unlock()
		return
	}
	bytes := entryBytes(entry.f)
	p.lock()
	p.evictExpiredLocked()
	if len(p.idle[entry.key]) < p.maxIdle {
		entry.idleSince = p.now()
		entry.bytes = bytes
		p.idle[entry.key] = append(p.idle[entry.key], entry)
		p.bytesCached += bytes
		p.evictOverBudgetLocked()
	} else {
		p.evictions++
	}
	p.unlock()
}

// Discard drops the lease's factorization instead of returning it to the
// pool — for holders with reason to distrust the entry beyond what the
// pool can see itself (a served solution that came back non-finite, a
// failed application-level check). The pattern's next Acquire rebuilds
// fresh. The factorization must not be used after Discard.
func (l *Lease) Discard() {
	p, _ := l.detach()
	p.lock()
	p.discards++
	p.unlock()
}

// Solve factors (or refactors) a and solves A·x = b in place — the
// one-call serving path: Acquire, Solve, Release.
func (p *Pool) Solve(a *Matrix, b []float64) error {
	lease, err := p.Acquire(a)
	if err != nil {
		return err
	}
	err = lease.Solve(b)
	lease.Release()
	return err
}

// SolveMany is Pool.Solve for a batch of right-hand sides.
func (p *Pool) SolveMany(a *Matrix, bs [][]float64) error {
	lease, err := p.Acquire(a)
	if err != nil {
		return err
	}
	err = lease.SolveMany(bs)
	lease.Release()
	return err
}

// PoolStats reports cache effectiveness counters.
type PoolStats struct {
	// Hits counts Acquires served through the Refactor fast path.
	Hits uint64
	// Misses counts acquisitions that ran a full Factor with freshly
	// allocated storage (first sight of a pattern, or a recycled entry
	// whose FactorInto failed).
	Misses uint64
	// FactorReuses counts freshly pivoted factorizations that recycled a
	// cached entry's storage: Pool.Factor fast paths and the re-pivoting
	// fallback inside Acquire.
	FactorReuses uint64
	// Evictions counts idle factorizations dropped by the capacity cap or
	// the idle-age limit.
	Evictions uint64
	// MemEvictions counts idle factorizations dropped by the MaxBytes
	// memory bound.
	MemEvictions uint64
	// PoisonEvictions counts released factorizations discarded because a
	// failed or panicked refresh poisoned their numerics.
	PoisonEvictions uint64
	// Discards counts leases dropped by their holders via Lease.Discard.
	Discards uint64
	// Rejected counts AcquireCtx calls turned away because their context
	// was already expired at entry (no numeric work was attempted).
	Rejected uint64
	// Canceled counts callers whose context fired while they were queued
	// for a fresh-factorization admission slot.
	Canceled uint64
	// QueueWaits counts fresh factorizations that found the admission
	// semaphore full and had to queue (PoolOptions.MaxConcurrentFactors).
	QueueWaits uint64
	// InFlightFactors is the number of admission-semaphore slots currently
	// held by in-flight fresh factorizations (0 when admission control is
	// off). A pool at rest must report 0 — cancelled or failed callers
	// return their slots.
	InFlightFactors int
	// Idle counts factorizations currently cached.
	Idle int
	// BytesCached is the estimated footprint of the idle cache (per-entry
	// |L+U|-derived estimates; see PoolOptions.MaxBytes).
	BytesCached int64
	// CachedSymbolics counts sparsity patterns holding a cached symbolic
	// analysis.
	CachedSymbolics int
	// LockWaitSeconds and LockHoldSeconds accumulate the pool mutex's
	// contended wait time and total hold time when PoolOptions.MeterLock is
	// on (both 0 otherwise) — the direct measurement of the single-mutex
	// bottleneck a ShardedPool divides.
	LockWaitSeconds float64
	LockHoldSeconds float64
}

// Stats snapshots the pool counters. Age-based eviction is lazy, so idle
// counts may include entries that would expire on their next touch.
func (p *Pool) Stats() PoolStats {
	inFlight := 0
	if p.sem != nil {
		inFlight = len(p.sem)
	}
	p.lock()
	idle := 0
	for _, b := range p.idle {
		idle += len(b)
	}
	s := PoolStats{
		Hits:            p.hits,
		Misses:          p.misses,
		FactorReuses:    p.factorReuses,
		Evictions:       p.evictions,
		MemEvictions:    p.memEvictions,
		PoisonEvictions: p.poisonEvictions,
		Discards:        p.discards,
		Rejected:        p.rejected,
		Canceled:        p.canceled,
		QueueWaits:      p.queueWaits,
		InFlightFactors: inFlight,
		Idle:            idle,
		BytesCached:     p.bytesCached,
		CachedSymbolics: p.symCount,
		LockWaitSeconds: float64(p.lockWaitNs) / 1e9,
		LockHoldSeconds: float64(p.lockHoldNs) / 1e9,
	}
	p.unlock()
	return s
}

// patternKey hashes the sparsity pattern of a (dimensions, column
// pointers, row indices) with word-at-a-time FNV-1a — allocation-free, so
// the steady-state hit path stays zero-alloc. Matching keys are verified
// entry-by-entry before the Refactor fast path is taken, so hash quality
// only affects bucketing, never correctness.
func patternKey(a *Matrix) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	h = (h ^ uint64(a.M)) * prime64
	h = (h ^ uint64(a.N)) * prime64
	for _, c := range a.Colptr {
		h = (h ^ uint64(c)) * prime64
	}
	for _, r := range a.Rowidx {
		h = (h ^ uint64(r)) * prime64
	}
	return h
}

// samePattern verifies the caller's matrix against the entry's analyzed
// pattern (pool entries are only ever built through a symbolic analysis of
// their own pattern, so the analysis' recorded pattern is the entry's).
func samePattern(e *poolEntry, a *Matrix) bool {
	return e.f.num.Sym.PatternMatches(a)
}
