package basker

import (
	"context"
	"errors"
	"hash/fnv"
	"sync"
	"time"

	"repro/internal/core"
)

// Pool is a pattern-keyed cache of Factorizations: the serving layer for
// workloads where many goroutines stamp matrices with a small set of
// recurring sparsity patterns (one per circuit/scenario family) and solve
// concurrently. Acquire hands each caller a private Factorization for its
// matrix — refreshed through the change-set-aware RefactorAuto path when a
// cached factorization with the same pattern is idle (only the blocks whose
// values actually differ are reworked), or built with a full Factor on a
// miss — so solves never contend and transient sequences hit the
// incremental fast path almost always.
//
// Typical serving loop:
//
//	lease, err := pool.Acquire(a) // Refactor hit or Factor miss
//	if err != nil { ... }
//	lease.Solve(b)
//	lease.Release() // return the factorization for the next same-pattern call
//
// Refactor-vs-Solve exclusion: a Refactor must never run concurrently with
// solves on the same Factorization. The Pool upholds the contract
// structurally — Acquire refactors an entry only while it is idle (checked
// out of the cache, not leased to anyone), and a leased factorization is
// private to its holder until Release — so callers only have to keep the
// rule within their own lease: finish solving before releasing, and never
// call Refactor on a leased factorization they are concurrently solving
// with. If a cached entry's Refactor fails (new values defeat every reused
// pivot), the entry is discarded and the Acquire falls back to a fresh
// Factor, so callers never observe a half-refreshed factorization.
type Pool struct {
	solver  *Solver
	maxIdle int
	maxSyms int
	maxAge  time.Duration
	// now is the clock (replaceable by tests of the age-based eviction).
	now func() time.Time

	mu       sync.Mutex
	idle     map[uint64][]*poolEntry
	syms     map[uint64][]*symEntry
	symCount int
	hits     uint64
	misses   uint64
	// factorReuses counts fresh factorizations that recycled a cached
	// entry's storage (the Pool.Factor fast path and re-pivoting fallbacks).
	factorReuses uint64
	// evictions counts idle factorizations dropped by the capacity cap or
	// the idle-age limit.
	evictions uint64
	// poisonEvictions counts released factorizations dropped because a
	// failed or panicked refresh left their numerics poisoned.
	poisonEvictions uint64
	// rejected counts AcquireCtx calls turned away because their context
	// was already expired at entry; canceled counts callers whose context
	// fired while queued for a fresh-factorization slot; queueWaits counts
	// fresh factorizations that had to block for a slot.
	rejected   uint64
	canceled   uint64
	queueWaits uint64

	// sem is the fresh-factorization admission semaphore (nil = unlimited):
	// each in-flight full numeric factorization holds one slot, bounding
	// the memory and CPU burst a miss storm can impose on the serving
	// layer. Refactor fast paths are never gated.
	sem chan struct{}
}

type poolEntry struct {
	f   *Factorization
	key uint64
	// idleSince is when the entry last entered the idle cache.
	idleSince time.Time
}

// symEntry caches one sparsity pattern's symbolic analysis, so repeated
// full factorizations of a known pattern skip Analyze (orderings, BTF,
// partition, entry maps) entirely. Exact verification behind the hash key
// delegates to the analysis' own recorded pattern (Symbolic.PatternMatches
// — the single implementation every pattern-keyed fast path shares), so no
// second copy of the pattern is retained.
type symEntry struct {
	sym *core.Symbolic
}

func (e *symEntry) matches(a *Matrix) bool { return e.sym.PatternMatches(a) }

// PoolOptions configures a Pool.
type PoolOptions struct {
	// Options configures the underlying solver used for cache misses.
	Options
	// MaxIdlePerPattern caps how many idle factorizations are retained per
	// sparsity pattern; 0 selects the default (16), negative is unlimited.
	MaxIdlePerPattern int
	// MaxCachedPatterns caps how many distinct sparsity patterns retain a
	// cached symbolic analysis (each holds orderings plus the gather plan,
	// several times the matrix's index footprint); 0 selects the default
	// (32), negative is unlimited. Evicting a pattern only drops the cached
	// analysis — factorizations already built with it remain valid — so a
	// workload whose patterns evolve over time cannot grow the pool's
	// memory without bound.
	MaxCachedPatterns int
	// MaxIdleAge drops idle factorizations that have not been leased for
	// this long, so a pattern family that goes quiet releases its numeric
	// storage instead of pinning it until the capacity cap evicts it.
	// 0 disables age-based eviction. Expiry is enforced lazily on the
	// pool's own operations (no background goroutine).
	MaxIdleAge time.Duration
	// MaxConcurrentFactors caps how many fresh numeric factorizations (the
	// expensive miss path and the re-pivoting fallbacks; never the
	// Refactor fast path) run concurrently. Excess callers queue for a
	// slot — honouring their context when they came through AcquireCtx —
	// so a burst of cold patterns degrades into an orderly queue instead
	// of a memory and CPU stampede. 0 disables admission control.
	MaxConcurrentFactors int
}

// NewPool returns an empty factorization pool.
func NewPool(opts PoolOptions) *Pool {
	maxIdle := opts.MaxIdlePerPattern
	switch {
	case maxIdle == 0:
		maxIdle = 16
	case maxIdle < 0:
		maxIdle = 1 << 30
	}
	maxSyms := opts.MaxCachedPatterns
	switch {
	case maxSyms == 0:
		maxSyms = 32
	case maxSyms < 0:
		maxSyms = 1 << 30
	}
	var sem chan struct{}
	if opts.MaxConcurrentFactors > 0 {
		sem = make(chan struct{}, opts.MaxConcurrentFactors)
	}
	return &Pool{
		solver:  New(opts.Options),
		maxIdle: maxIdle,
		maxSyms: maxSyms,
		maxAge:  opts.MaxIdleAge,
		now:     time.Now,
		idle:    map[uint64][]*poolEntry{},
		syms:    map[uint64][]*symEntry{},
		sem:     sem,
	}
}

// acquireSlot admits one fresh factorization, blocking for a semaphore
// slot when the cap is reached. A ctx that fires while queued abandons the
// wait with the typed cancellation error.
func (p *Pool) acquireSlot(ctx context.Context) error {
	if p.sem == nil {
		return nil
	}
	select {
	case p.sem <- struct{}{}:
		return nil
	default:
	}
	p.mu.Lock()
	p.queueWaits++
	p.mu.Unlock()
	if ctx == nil || ctx.Done() == nil {
		p.sem <- struct{}{}
		return nil
	}
	select {
	case p.sem <- struct{}{}:
		return nil
	case <-ctx.Done():
		p.mu.Lock()
		p.canceled++
		p.mu.Unlock()
		return core.CancelCause(ctx)
	}
}

func (p *Pool) releaseSlot() {
	if p.sem != nil {
		<-p.sem
	}
}

// evictExpiredLocked drops idle entries whose idle age exceeds MaxIdleAge,
// across every pattern bucket: a pattern family that has gone quiet is
// never touched by its own key again, so expiry must piggyback on whatever
// pool traffic still flows (bucket counts are small — one per live pattern
// family). Caller holds p.mu.
func (p *Pool) evictExpiredLocked() {
	if p.maxAge <= 0 {
		return
	}
	cutoff := p.now().Add(-p.maxAge)
	for key, bucket := range p.idle {
		kept := bucket[:0]
		for _, e := range bucket {
			if e.idleSince.Before(cutoff) {
				p.evictions++
				continue
			}
			kept = append(kept, e)
		}
		if len(kept) == 0 {
			delete(p.idle, key)
			continue
		}
		p.idle[key] = kept
	}
}

// Lease is a Factorization checked out of a Pool. Release returns it; a
// leased factorization is private to the caller until then.
type Lease struct {
	*Factorization
	pool  *Pool
	entry *poolEntry
}

// Acquire returns a factorization of a, reusing an idle same-pattern
// factorization via Refactor when one is cached and running a full Factor
// otherwise. Safe for concurrent use; the numeric work happens outside the
// pool lock.
func (p *Pool) Acquire(a *Matrix) (*Lease, error) {
	return p.AcquireCtx(context.Background(), a)
}

// AcquireCtx is Acquire with deadline-aware admission: a ctx already
// expired at entry is rejected before any numeric work (PoolStats.Rejected),
// a ctx that fires while queued for a fresh-factorization slot abandons the
// queue (PoolStats.Canceled), and a ctx cancelled mid-sweep aborts the
// refresh or factorization itself, returning ErrCanceled or
// ErrDeadlineExceeded. A cached entry whose refresh was cancelled mid-sweep
// is discarded (its numerics are unspecified), so later Acquires of the
// pattern rebuild cleanly.
func (p *Pool) AcquireCtx(ctx context.Context, a *Matrix) (*Lease, error) {
	if ctx != nil && ctx.Err() != nil {
		p.mu.Lock()
		p.rejected++
		p.mu.Unlock()
		return nil, core.CancelCause(ctx)
	}
	key := patternKey(a)
	p.mu.Lock()
	p.evictExpiredLocked()
	var entry *poolEntry
	bucket := p.idle[key]
	for i, e := range bucket {
		if samePattern(e, a) {
			last := len(bucket) - 1
			bucket[i] = bucket[last]
			p.idle[key] = bucket[:last]
			entry = e
			break
		}
	}
	p.mu.Unlock()

	if entry != nil {
		// Diff-based incremental refresh: transient lease holders whose
		// steps perturb a few stamps get the change-set-aware sweep
		// transparently; fully-changed matrices degrade to ~full Refactor.
		if err := entry.f.num.RefactorAutoCtx(ctx, a); err != nil {
			if isAbortErr(err) {
				// Cancelled or stalled mid-refresh: the entry's numerics are
				// unspecified, so drop the storage rather than fall through
				// to an even more expensive fresh factorization.
				return nil, wrapErr(err)
			}
			// A same-pattern matrix whose values defeat the cached pivot
			// sequence: fall back to a fresh factorization with new pivots,
			// recycling the entry's storage; if even that pivots into trouble,
			// retry once with full partial pivoting before giving up on the
			// recycled storage. Fresh-pivot work honours the admission cap.
			if err := p.acquireSlot(ctx); err != nil {
				return nil, err
			}
			if err := entry.f.num.FactorIntoCtx(ctx, a); err != nil {
				if isAbortErr(err) {
					p.releaseSlot()
					return nil, wrapErr(err)
				}
				if err := entry.f.num.FactorIntoTol(a, 1.0); err != nil {
					p.releaseSlot()
					return p.factorMissCtx(ctx, a, key) // storage discarded
				}
			}
			p.releaseSlot()
			p.mu.Lock()
			p.factorReuses++
			p.mu.Unlock()
			return &Lease{Factorization: entry.f, pool: p, entry: entry}, nil
		}
		p.mu.Lock()
		p.hits++
		p.mu.Unlock()
		return &Lease{Factorization: entry.f, pool: p, entry: entry}, nil
	}
	return p.factorMissCtx(ctx, a, key)
}

// isAbortErr reports whether err is an external-abort verdict (cancel,
// deadline, stall) rather than a numeric failure worth a fallback.
func isAbortErr(err error) bool {
	return errors.Is(err, ErrCanceled) || errors.Is(err, ErrDeadlineExceeded) || errors.Is(err, ErrStalled)
}

// Factor returns a freshly pivoted factorization of a through the pool: the
// numeric factorization runs from scratch (unlike Acquire it never reuses a
// cached pivot sequence — the escape hatch when values have drifted far
// from the ones that chose the pivots), but both the symbolic analysis and,
// when an idle same-pattern factorization is cached, its entire storage are
// reused, so repeated same-pattern Factor calls allocate almost nothing.
func (p *Pool) Factor(a *Matrix) (*Lease, error) {
	key := patternKey(a)
	p.mu.Lock()
	p.evictExpiredLocked()
	var entry *poolEntry
	bucket := p.idle[key]
	for i, e := range bucket {
		if samePattern(e, a) {
			last := len(bucket) - 1
			bucket[i] = bucket[last]
			p.idle[key] = bucket[:last]
			entry = e
			break
		}
	}
	p.mu.Unlock()
	if entry != nil {
		if err := p.acquireSlot(nil); err != nil {
			return nil, err
		}
		err := entry.f.num.FactorInto(a)
		p.releaseSlot()
		if err != nil {
			// Singular (or otherwise unusable) values: the recycled entry's
			// numerics are unspecified now, so drop it and surface the error
			// through the ordinary full-factor path.
			return p.factorMiss(a, key)
		}
		p.mu.Lock()
		p.factorReuses++
		p.mu.Unlock()
		return &Lease{Factorization: entry.f, pool: p, entry: entry}, nil
	}
	return p.factorMiss(a, key)
}

// symFor returns the cached symbolic analysis for a's pattern, creating and
// memoizing it on first use. The analysis itself runs outside the pool lock.
func (p *Pool) symFor(a *Matrix, key uint64) (*core.Symbolic, error) {
	p.mu.Lock()
	for _, e := range p.syms[key] {
		if e.matches(a) {
			p.mu.Unlock()
			return e.sym, nil
		}
	}
	p.mu.Unlock()
	sym, err := core.Analyze(a, p.solver.opts)
	if err != nil {
		return nil, err
	}
	p.mu.Lock()
	// Double-checked insert: concurrent first factorizations of one pattern
	// may race to Analyze; keep only the winner's entry.
	for _, e := range p.syms[key] {
		if e.matches(a) {
			p.mu.Unlock()
			return e.sym, nil
		}
	}
	for p.symCount >= p.maxSyms {
		// Evict an arbitrary cached pattern (map order); live
		// factorizations keep their own Symbolic pointers and stay valid.
		evicted := false
		for k, bucket := range p.syms {
			if len(bucket) > 1 {
				p.syms[k] = bucket[:len(bucket)-1]
			} else {
				delete(p.syms, k)
			}
			p.symCount--
			evicted = true
			break
		}
		if !evicted {
			break
		}
	}
	p.syms[key] = append(p.syms[key], &symEntry{sym: sym})
	p.symCount++
	p.mu.Unlock()
	return sym, nil
}

func (p *Pool) factorMiss(a *Matrix, key uint64) (*Lease, error) {
	return p.factorMissCtx(context.Background(), a, key)
}

func (p *Pool) factorMissCtx(ctx context.Context, a *Matrix, key uint64) (*Lease, error) {
	p.mu.Lock()
	p.misses++
	p.mu.Unlock()
	sym, err := p.symFor(a, key)
	if err != nil {
		return nil, wrapErr(err)
	}
	if err := p.acquireSlot(ctx); err != nil {
		return nil, err
	}
	num, err := core.FactorCtx(ctx, a, sym)
	p.releaseSlot()
	if err != nil {
		return nil, wrapErr(err)
	}
	f := newFactorization(num)
	// Verification data is the analysis' own pattern copy (never the
	// caller's buffers), so a caller that restamps its matrix in place
	// cannot corrupt the check behind the hash key.
	entry := &poolEntry{f: f, key: key}
	return &Lease{Factorization: f, pool: p, entry: entry}, nil
}

// Release returns the lease's factorization to the pool for reuse by the
// next same-pattern Acquire. Releasing twice is a bug; the factorization
// must not be used after Release.
func (l *Lease) Release() {
	p := l.pool
	if l.entry.f.num.Poisoned() {
		// A failed refresh left the numerics unspecified; never hand such an
		// entry to the next Acquire — drop it so the pattern's next lease
		// rebuilds from scratch.
		p.mu.Lock()
		p.poisonEvictions++
		p.mu.Unlock()
		return
	}
	p.mu.Lock()
	p.evictExpiredLocked()
	if len(p.idle[l.entry.key]) < p.maxIdle {
		l.entry.idleSince = p.now()
		p.idle[l.entry.key] = append(p.idle[l.entry.key], l.entry)
	} else {
		p.evictions++
	}
	p.mu.Unlock()
}

// Solve factors (or refactors) a and solves A·x = b in place — the
// one-call serving path: Acquire, Solve, Release.
func (p *Pool) Solve(a *Matrix, b []float64) error {
	lease, err := p.Acquire(a)
	if err != nil {
		return err
	}
	err = lease.Solve(b)
	lease.Release()
	return err
}

// SolveMany is Pool.Solve for a batch of right-hand sides.
func (p *Pool) SolveMany(a *Matrix, bs [][]float64) error {
	lease, err := p.Acquire(a)
	if err != nil {
		return err
	}
	err = lease.SolveMany(bs)
	lease.Release()
	return err
}

// PoolStats reports cache effectiveness counters.
type PoolStats struct {
	// Hits counts Acquires served through the Refactor fast path.
	Hits uint64
	// Misses counts acquisitions that ran a full Factor with freshly
	// allocated storage (first sight of a pattern, or a recycled entry
	// whose FactorInto failed).
	Misses uint64
	// FactorReuses counts freshly pivoted factorizations that recycled a
	// cached entry's storage: Pool.Factor fast paths and the re-pivoting
	// fallback inside Acquire.
	FactorReuses uint64
	// Evictions counts idle factorizations dropped by the capacity cap or
	// the idle-age limit.
	Evictions uint64
	// PoisonEvictions counts released factorizations discarded because a
	// failed or panicked refresh poisoned their numerics.
	PoisonEvictions uint64
	// Rejected counts AcquireCtx calls turned away because their context
	// was already expired at entry (no numeric work was attempted).
	Rejected uint64
	// Canceled counts callers whose context fired while they were queued
	// for a fresh-factorization admission slot.
	Canceled uint64
	// QueueWaits counts fresh factorizations that found the admission
	// semaphore full and had to queue (PoolOptions.MaxConcurrentFactors).
	QueueWaits uint64
	// Idle counts factorizations currently cached.
	Idle int
	// CachedSymbolics counts sparsity patterns holding a cached symbolic
	// analysis.
	CachedSymbolics int
}

// Stats snapshots the pool counters. Age-based eviction is lazy, so idle
// counts may include entries that would expire on their next touch.
func (p *Pool) Stats() PoolStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	idle := 0
	for _, b := range p.idle {
		idle += len(b)
	}
	return PoolStats{
		Hits:            p.hits,
		Misses:          p.misses,
		FactorReuses:    p.factorReuses,
		Evictions:       p.evictions,
		PoisonEvictions: p.poisonEvictions,
		Rejected:        p.rejected,
		Canceled:        p.canceled,
		QueueWaits:      p.queueWaits,
		Idle:            idle,
		CachedSymbolics: p.symCount,
	}
}

// patternKey hashes the sparsity pattern of a (dimensions, column
// pointers, row indices). Matching keys are verified entry-by-entry
// before the Refactor fast path is taken.
func patternKey(a *Matrix) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	word := func(v int) {
		u := uint64(v)
		for i := 0; i < 8; i++ {
			buf[i] = byte(u >> (8 * i))
		}
		h.Write(buf[:])
	}
	word(a.M)
	word(a.N)
	for _, c := range a.Colptr {
		word(c)
	}
	for _, r := range a.Rowidx {
		word(r)
	}
	return h.Sum64()
}

// samePattern verifies the caller's matrix against the entry's analyzed
// pattern (pool entries are only ever built through a symbolic analysis of
// their own pattern, so the analysis' recorded pattern is the entry's).
func samePattern(e *poolEntry, a *Matrix) bool {
	return e.f.num.Sym.PatternMatches(a)
}
