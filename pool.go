package basker

import (
	"hash/fnv"
	"sync"
)

// Pool is a pattern-keyed cache of Factorizations: the serving layer for
// workloads where many goroutines stamp matrices with a small set of
// recurring sparsity patterns (one per circuit/scenario family) and solve
// concurrently. Acquire hands each caller a private Factorization for its
// matrix — refreshed through the cheap Refactor path when a cached
// factorization with the same pattern is idle, or built with a full Factor
// on a miss — so solves never contend and transient sequences hit the
// fast path almost always.
//
// Typical serving loop:
//
//	lease, err := pool.Acquire(a) // Refactor hit or Factor miss
//	if err != nil { ... }
//	lease.Solve(b)
//	lease.Release() // return the factorization for the next same-pattern call
//
// Refactor-vs-Solve exclusion: a Refactor must never run concurrently with
// solves on the same Factorization. The Pool upholds the contract
// structurally — Acquire refactors an entry only while it is idle (checked
// out of the cache, not leased to anyone), and a leased factorization is
// private to its holder until Release — so callers only have to keep the
// rule within their own lease: finish solving before releasing, and never
// call Refactor on a leased factorization they are concurrently solving
// with. If a cached entry's Refactor fails (new values defeat every reused
// pivot), the entry is discarded and the Acquire falls back to a fresh
// Factor, so callers never observe a half-refreshed factorization.
type Pool struct {
	solver  *Solver
	maxIdle int

	mu     sync.Mutex
	idle   map[uint64][]*poolEntry
	hits   uint64
	misses uint64
}

type poolEntry struct {
	f *Factorization
	// The pattern of the matrix first factored, for exact verification
	// behind the hash key (Refactor requires identical structure).
	colptr, rowidx []int
	key            uint64
}

// PoolOptions configures a Pool.
type PoolOptions struct {
	// Options configures the underlying solver used for cache misses.
	Options
	// MaxIdlePerPattern caps how many idle factorizations are retained per
	// sparsity pattern; 0 selects the default (16), negative is unlimited.
	MaxIdlePerPattern int
}

// NewPool returns an empty factorization pool.
func NewPool(opts PoolOptions) *Pool {
	maxIdle := opts.MaxIdlePerPattern
	switch {
	case maxIdle == 0:
		maxIdle = 16
	case maxIdle < 0:
		maxIdle = 1 << 30
	}
	return &Pool{
		solver:  New(opts.Options),
		maxIdle: maxIdle,
		idle:    map[uint64][]*poolEntry{},
	}
}

// Lease is a Factorization checked out of a Pool. Release returns it; a
// leased factorization is private to the caller until then.
type Lease struct {
	*Factorization
	pool  *Pool
	entry *poolEntry
}

// Acquire returns a factorization of a, reusing an idle same-pattern
// factorization via Refactor when one is cached and running a full Factor
// otherwise. Safe for concurrent use; the numeric work happens outside the
// pool lock.
func (p *Pool) Acquire(a *Matrix) (*Lease, error) {
	key := patternKey(a)
	p.mu.Lock()
	var entry *poolEntry
	bucket := p.idle[key]
	for i, e := range bucket {
		if samePattern(e, a) {
			last := len(bucket) - 1
			bucket[i] = bucket[last]
			p.idle[key] = bucket[:last]
			entry = e
			break
		}
	}
	p.mu.Unlock()

	if entry != nil {
		if err := entry.f.Refactor(a); err != nil {
			// A same-pattern matrix whose values defeat the cached pivot
			// sequence: fall back to a fresh factorization (new pivots).
			return p.factorMiss(a, key)
		}
		p.mu.Lock()
		p.hits++
		p.mu.Unlock()
		return &Lease{Factorization: entry.f, pool: p, entry: entry}, nil
	}
	return p.factorMiss(a, key)
}

func (p *Pool) factorMiss(a *Matrix, key uint64) (*Lease, error) {
	p.mu.Lock()
	p.misses++
	p.mu.Unlock()
	f, err := p.solver.Factor(a)
	if err != nil {
		return nil, err
	}
	entry := &poolEntry{
		f: f,
		// Copy the pattern rather than aliasing the caller's buffers, so a
		// caller that restamps its matrix in place cannot corrupt the
		// verification behind the hash key.
		colptr: append([]int(nil), a.Colptr...),
		rowidx: append([]int(nil), a.Rowidx...),
		key:    key,
	}
	return &Lease{Factorization: f, pool: p, entry: entry}, nil
}

// Release returns the lease's factorization to the pool for reuse by the
// next same-pattern Acquire. Releasing twice is a bug; the factorization
// must not be used after Release.
func (l *Lease) Release() {
	p := l.pool
	p.mu.Lock()
	if len(p.idle[l.entry.key]) < p.maxIdle {
		p.idle[l.entry.key] = append(p.idle[l.entry.key], l.entry)
	}
	p.mu.Unlock()
}

// Solve factors (or refactors) a and solves A·x = b in place — the
// one-call serving path: Acquire, Solve, Release.
func (p *Pool) Solve(a *Matrix, b []float64) error {
	lease, err := p.Acquire(a)
	if err != nil {
		return err
	}
	lease.Solve(b)
	lease.Release()
	return nil
}

// SolveMany is Pool.Solve for a batch of right-hand sides.
func (p *Pool) SolveMany(a *Matrix, bs [][]float64) error {
	lease, err := p.Acquire(a)
	if err != nil {
		return err
	}
	lease.SolveMany(bs)
	lease.Release()
	return nil
}

// PoolStats reports cache effectiveness counters.
type PoolStats struct {
	// Hits counts Acquires served through the Refactor fast path.
	Hits uint64
	// Misses counts Acquires that ran a full Factor, including fallbacks
	// from a cached factorization whose pivot sequence the new values
	// defeated.
	Misses uint64
	// Idle counts factorizations currently cached.
	Idle int
}

// Stats snapshots the pool counters.
func (p *Pool) Stats() PoolStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	idle := 0
	for _, b := range p.idle {
		idle += len(b)
	}
	return PoolStats{Hits: p.hits, Misses: p.misses, Idle: idle}
}

// patternKey hashes the sparsity pattern of a (dimensions, column
// pointers, row indices). Matching keys are verified entry-by-entry
// before the Refactor fast path is taken.
func patternKey(a *Matrix) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	word := func(v int) {
		u := uint64(v)
		for i := 0; i < 8; i++ {
			buf[i] = byte(u >> (8 * i))
		}
		h.Write(buf[:])
	}
	word(a.M)
	word(a.N)
	for _, c := range a.Colptr {
		word(c)
	}
	for _, r := range a.Rowidx {
		word(r)
	}
	return h.Sum64()
}

func samePattern(e *poolEntry, a *Matrix) bool {
	if len(e.colptr) != len(a.Colptr) || len(e.rowidx) != len(a.Rowidx) {
		return false
	}
	for i, c := range e.colptr {
		if a.Colptr[i] != c {
			return false
		}
	}
	for i, r := range e.rowidx {
		if a.Rowidx[i] != r {
			return false
		}
	}
	return true
}
