package basker

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/matgen"
)

// stallRule arms a one-shot PointStall on the given sweep that sleeps the
// consulting worker long enough for the watchdog (or a context deadline) to
// fire well before the worker wakes up.
func stallRule(inject *faultinject.Injector, sweep faultinject.Sweep, d time.Duration) {
	inject.Arm(faultinject.PointStall, faultinject.Rule{
		Sweep: sweep, SweepSet: true, Block: -1, Worker: -1, Times: 1, Stall: d,
	})
}

// wantStalled asserts the watchdog's full verdict: the class error, the
// concrete *StallError with the expected sweep name and a named block, and
// an elapsed time proving the sweep returned while the straggler was still
// asleep (stall >> elapsed bound).
func wantStalled(t *testing.T, err error, sweep string, elapsed, bound time.Duration) {
	t.Helper()
	if err == nil {
		t.Fatal("stalled sweep returned nil error")
	}
	if !errors.Is(err, ErrStalled) {
		t.Fatalf("stalled sweep error %v does not match ErrStalled", err)
	}
	var se *StallError
	if !errors.As(err, &se) {
		t.Fatalf("stalled sweep error %v carries no *StallError", err)
	}
	if se.Sweep != sweep {
		t.Fatalf("StallError.Sweep = %q, want %q", se.Sweep, sweep)
	}
	if se.Block < 0 {
		t.Fatalf("StallError names no block: %+v", se)
	}
	if se.Idle <= 0 {
		t.Fatalf("StallError.Idle = %v, want > 0", se.Idle)
	}
	if elapsed >= bound {
		t.Fatalf("stalled sweep took %v to return, want < %v (early return while the straggler sleeps)", elapsed, bound)
	}
}

// TestWatchdogStallFactor wedges a factor-sweep worker inside a kernel for
// far longer than StallTimeout: the watchdog must abort the sweep with
// ErrStalled naming the stuck block while the straggler is still asleep,
// and a fresh Factor after disarming must fully recover.
func TestWatchdogStallFactor(t *testing.T) {
	inject := faultinject.New()
	a := chaosMatrix()
	s := New(Options{Threads: 4, BigBlockMin: 64, StallTimeout: 60 * time.Millisecond, inject: inject})

	stallRule(inject, faultinject.SweepFactor, 900*time.Millisecond)
	t0 := time.Now()
	_, err := s.Factor(a)
	wantStalled(t, err, "factor", time.Since(t0), 700*time.Millisecond)

	inject.DisarmAll()
	f, err := s.Factor(a)
	if err != nil {
		t.Fatalf("factor after stall: %v", err)
	}
	chaosCheckSolve(t, f, a)
}

// TestWatchdogStallND wedges a worker of the fine-ND cooperative team; the
// coarse factor watchdog must still see the heartbeat stop (inner kernel
// completions feed the same progress counter) and abort the sweep.
func TestWatchdogStallND(t *testing.T) {
	inject := faultinject.New()
	a := chaosMatrix()
	s := New(Options{Threads: 4, BigBlockMin: 64, StallTimeout: 60 * time.Millisecond, inject: inject})

	stallRule(inject, faultinject.SweepND, 900*time.Millisecond)
	t0 := time.Now()
	_, err := s.Factor(a)
	if err == nil {
		t.Skip("matrix produced no ND sweep at this configuration")
	}
	wantStalled(t, err, "factor", time.Since(t0), 700*time.Millisecond)

	inject.DisarmAll()
	f, err := s.Factor(a)
	if err != nil {
		t.Fatalf("factor after ND stall: %v", err)
	}
	chaosCheckSolve(t, f, a)
}

// TestWatchdogStallRefactor wedges a refactor-sweep worker: ErrStalled,
// the numeric poisoned but recoverable, RefactorRobust restores it (after
// draining the straggler at the next sweep's entry).
func TestWatchdogStallRefactor(t *testing.T) {
	inject := faultinject.New()
	a := chaosMatrix()
	s := New(Options{Threads: 4, BigBlockMin: 64, StallTimeout: 60 * time.Millisecond, inject: inject})
	f, err := s.Factor(a)
	if err != nil {
		t.Fatal(err)
	}

	stallRule(inject, faultinject.SweepRefactor, 900*time.Millisecond)
	t0 := time.Now()
	err = f.Refactor(a)
	wantStalled(t, err, "refactor", time.Since(t0), 700*time.Millisecond)
	if !f.Health().Poisoned {
		t.Fatal("stalled refactor did not poison the numeric")
	}
	if cerr := f.Check(); cerr == nil {
		t.Fatal("Check on stalled numeric reported nil")
	}

	inject.DisarmAll()
	if err := f.RefactorRobust(a); err != nil {
		t.Fatalf("RefactorRobust after stall: %v", err)
	}
	if err := f.Check(); err != nil {
		t.Fatalf("health check after recovery: %v", err)
	}
	chaosCheckSolve(t, f, a)
}

// TestWatchdogStallPartial wedges a worker of the incremental refresh.
func TestWatchdogStallPartial(t *testing.T) {
	inject := faultinject.New()
	a := chaosMatrix()
	s := New(Options{Threads: 4, BigBlockMin: 64, StallTimeout: 60 * time.Millisecond, inject: inject})
	f, err := s.Factor(a)
	if err != nil {
		t.Fatal(err)
	}

	cols := matgen.ChangeSet(a.N, 0.05, 3, true)
	next := matgen.PerturbColumns(a, cols, 1, 17)

	stallRule(inject, faultinject.SweepPartial, 900*time.Millisecond)
	t0 := time.Now()
	err = f.RefactorPartial(next, cols)
	if err == nil {
		t.Skip("change set stayed on the serial partial path")
	}
	wantStalled(t, err, "partial refactor", time.Since(t0), 700*time.Millisecond)
	if !f.Health().Poisoned {
		t.Fatal("stalled partial refresh did not poison the numeric")
	}

	inject.DisarmAll()
	if err := f.RefactorRobust(next); err != nil {
		t.Fatalf("RefactorRobust after stalled partial: %v", err)
	}
	chaosCheckSolve(t, f, next)
}

// TestCtxPreCanceledEntryPoints drives a context that is already cancelled
// into every ctx-accepting entry point: each must reject at entry with
// ErrCanceled (which also matches context.Canceled) before any numeric
// work, leaving the factorization untouched.
func TestCtxPreCanceledEntryPoints(t *testing.T) {
	_, f, a := chaosFactor(t, nil)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	s := New(Options{Threads: 4, BigBlockMin: 64})

	check := func(name string, err error) {
		t.Helper()
		if !errors.Is(err, ErrCanceled) {
			t.Fatalf("%s with pre-cancelled ctx: %v, want ErrCanceled", name, err)
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("%s error %v does not match context.Canceled", name, err)
		}
	}

	_, err := s.FactorCtx(ctx, a)
	check("FactorCtx", err)
	check("RefactorCtx", f.RefactorCtx(ctx, a))
	check("RefactorAutoCtx", f.RefactorAutoCtx(ctx, a))
	check("RefactorPartialCtx", f.RefactorPartialCtx(ctx, a, []int{0}))

	b := make([]float64, a.N)
	check("SolveCtx", f.SolveCtx(ctx, b))
	check("SolveManyCtx", f.SolveManyCtx(ctx, [][]float64{b}))
	res, err := f.SolveRefinedCtx(ctx, a, b, 5)
	check("SolveRefinedCtx", err)
	if !res.Canceled {
		t.Fatal("SolveRefinedCtx with pre-cancelled ctx did not set RefineResult.Canceled")
	}

	// Rejection is entry-only: the factorization still works.
	if f.Health().Poisoned {
		t.Fatal("entry rejection poisoned the numeric")
	}
	chaosCheckSolve(t, f, a)
}

// TestCtxDeadlineMidFactor wedges a factor worker with no watchdog armed,
// but under a context deadline: the monitor must map the fired deadline to
// ErrDeadlineExceeded (matching context.DeadlineExceeded) and return while
// the straggler is still asleep.
func TestCtxDeadlineMidFactor(t *testing.T) {
	inject := faultinject.New()
	a := chaosMatrix()
	s := New(Options{Threads: 4, BigBlockMin: 64, inject: inject})

	stallRule(inject, faultinject.SweepFactor, 900*time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	t0 := time.Now()
	_, err := s.FactorCtx(ctx, a)
	if elapsed := time.Since(t0); elapsed >= 700*time.Millisecond {
		t.Fatalf("deadline abort took %v, want early return", elapsed)
	}
	if !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("FactorCtx past deadline: %v, want ErrDeadlineExceeded", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("error %v does not match context.DeadlineExceeded", err)
	}

	inject.DisarmAll()
	f, err := s.Factor(a)
	if err != nil {
		t.Fatalf("factor after deadline abort: %v", err)
	}
	chaosCheckSolve(t, f, a)
}

// TestCtxCancelMidRefactor cancels a context mid-refactor (the sweep held
// open by a wedged worker): ErrCanceled, poisoned, RefactorRobust recovers.
func TestCtxCancelMidRefactor(t *testing.T) {
	inject := faultinject.New()
	_, f, a := chaosFactor(t, inject)

	stallRule(inject, faultinject.SweepRefactor, 900*time.Millisecond)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	t0 := time.Now()
	err := f.RefactorCtx(ctx, a)
	if elapsed := time.Since(t0); elapsed >= 700*time.Millisecond {
		t.Fatalf("cancel abort took %v, want early return", elapsed)
	}
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("cancelled RefactorCtx: %v, want ErrCanceled", err)
	}
	if !f.Health().Poisoned {
		t.Fatal("cancelled refactor did not poison the numeric")
	}

	inject.DisarmAll()
	if err := f.RefactorRobust(a); err != nil {
		t.Fatalf("RefactorRobust after cancel: %v", err)
	}
	chaosCheckSolve(t, f, a)
}

// TestBarrierCancelCause pins the barrier-mode ablation contract: a sweep
// aborted by cancellation must report the typed cancellation error — the
// barrier is broken with a distinct cause, so waiters unwind as cancelled,
// never as ErrInternalPanic.
func TestBarrierCancelCause(t *testing.T) {
	inject := faultinject.New()
	a := chaosMatrix()
	s := New(Options{Threads: 4, BigBlockMin: 64, Barrier: true, inject: inject})

	stallRule(inject, faultinject.SweepND, 900*time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 40*time.Millisecond)
	defer cancel()
	_, err := s.FactorCtx(ctx, a)
	if err == nil {
		t.Skip("matrix produced no ND sweep at this configuration")
	}
	if errors.Is(err, ErrInternalPanic) {
		t.Fatalf("cancelled barrier-mode sweep misreported as panic: %v", err)
	}
	if !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("cancelled barrier-mode sweep: %v, want ErrDeadlineExceeded", err)
	}

	inject.DisarmAll()
	f, err := s.Factor(a)
	if err != nil {
		t.Fatalf("barrier-mode factor after cancel: %v", err)
	}
	chaosCheckSolve(t, f, a)
}

// TestSolveRefinedCtxBestIterate cancels refinement between iterations:
// the call reports Canceled with the typed error, and b holds the direct
// solve's iterate (finite, usable) rather than garbage.
func TestSolveRefinedCtxBestIterate(t *testing.T) {
	_, f, a := chaosFactor(t, nil)
	x := make([]float64, a.N)
	for i := range x {
		x[i] = 1 + float64(i%5)
	}
	b := make([]float64, a.N)
	a.MulVec(b, x)

	// The context fires after the entry check; the direct solve and first
	// residual still run, then the inter-iteration check trips.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := f.SolveRefinedCtx(ctx, a, b, 10)
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("cancelled SolveRefinedCtx: %v, want ErrCanceled", err)
	}
	if !res.Canceled {
		t.Fatal("RefineResult.Canceled not set on cancelled refinement")
	}

	// A fresh uncancelled call still converges on the same inputs.
	b2 := make([]float64, a.N)
	a.MulVec(b2, x)
	if _, err := f.SolveRefined(a, b2, 10); err != nil {
		t.Fatalf("SolveRefined after cancelled attempt: %v", err)
	}
}

// TestPoolAcquireCtxRejected pins pool admission accounting: an AcquireCtx
// whose context expired before entry is turned away with no numeric work
// and counted in PoolStats.Rejected.
func TestPoolAcquireCtxRejected(t *testing.T) {
	pool := NewPool(PoolOptions{Options: Options{Threads: 2, BigBlockMin: 64}})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := pool.AcquireCtx(ctx, chaosMatrix()); !errors.Is(err, ErrCanceled) {
		t.Fatalf("AcquireCtx with expired ctx: %v, want ErrCanceled", err)
	}
	st := pool.Stats()
	if st.Rejected != 1 {
		t.Fatalf("Stats.Rejected = %d, want 1", st.Rejected)
	}
	if st.Misses != 0 {
		t.Fatalf("rejected acquire still ran the miss path (Misses = %d)", st.Misses)
	}
}

// TestPoolAdmissionQueue fills the admission semaphore and sends a caller
// with a deadline into the queue: the wait is counted (QueueWaits), the
// fired deadline is counted (Canceled) and reported as ErrDeadlineExceeded,
// and once the slot frees the same acquire succeeds.
func TestPoolAdmissionQueue(t *testing.T) {
	pool := NewPool(PoolOptions{
		Options:              Options{Threads: 2, BigBlockMin: 64},
		MaxConcurrentFactors: 1,
	})
	a := chaosMatrix()

	pool.sem <- struct{}{} // occupy the only slot, as a running factorization would
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Millisecond)
	defer cancel()
	if _, err := pool.AcquireCtx(ctx, a); !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("queued AcquireCtx past deadline: %v, want ErrDeadlineExceeded", err)
	}
	st := pool.Stats()
	if st.QueueWaits != 1 {
		t.Fatalf("Stats.QueueWaits = %d, want 1", st.QueueWaits)
	}
	if st.Canceled != 1 {
		t.Fatalf("Stats.Canceled = %d, want 1", st.Canceled)
	}

	<-pool.sem // slot frees
	lease, err := pool.AcquireCtx(context.Background(), a)
	if err != nil {
		t.Fatalf("AcquireCtx after slot freed: %v", err)
	}
	defer lease.Release()
	chaosCheckSolve(t, lease.Factorization, a)
}

// TestPoolAcquireCtxCancelMidFactor cancels the context while the miss-path
// factorization is running: the pool reports the typed error and the next
// acquire rebuilds cleanly.
func TestPoolAcquireCtxCancelMidFactor(t *testing.T) {
	inject := faultinject.New()
	pool := NewPool(PoolOptions{Options: Options{Threads: 4, BigBlockMin: 64, inject: inject}})
	a := chaosMatrix()

	stallRule(inject, faultinject.SweepFactor, 900*time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if _, err := pool.AcquireCtx(ctx, a); !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("AcquireCtx cancelled mid-factor: %v, want ErrDeadlineExceeded", err)
	}

	inject.DisarmAll()
	lease, err := pool.AcquireCtx(context.Background(), a)
	if err != nil {
		t.Fatalf("AcquireCtx after cancelled factor: %v", err)
	}
	defer lease.Release()
	chaosCheckSolve(t, lease.Factorization, a)
}

// TestRefactorCtxBackgroundZeroAlloc pins the fast-path contract of the
// tentpole: a context.Background() RefactorCtx in steady state arms no
// monitor, allocates nothing, and matches the non-ctx path exactly.
func TestRefactorCtxBackgroundZeroAlloc(t *testing.T) {
	a := chaosMatrix()
	s := New(Options{Threads: 1, BigBlockMin: 64})
	f, err := s.Factor(a)
	if err != nil {
		t.Fatal(err)
	}
	steps := make([]*Matrix, 4)
	for i := range steps {
		steps[i] = matgen.TransientStep(a, i+1, 99)
	}
	ctx := context.Background()
	for _, m := range steps { // warm every reusable buffer
		if err := f.RefactorCtx(ctx, m); err != nil {
			t.Fatal(err)
		}
	}
	i := 0
	allocs := testing.AllocsPerRun(20, func() {
		i++
		if err := f.RefactorCtx(ctx, steps[i%len(steps)]); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state RefactorCtx(Background) allocates: %v allocs/op", allocs)
	}
	chaosCheckSolve(t, f, steps[i%len(steps)])
}
