package basker

import (
	"math"
	"math/rand"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/matgen"
	"repro/internal/sparse"
)

// poolFactorFixture builds a short transient sequence sharing one pattern.
func poolFactorFixture(scale float64) []*sparse.CSC {
	base := matgen.XyceSequenceBase(scale)
	mats := make([]*sparse.CSC, 8)
	for t := range mats {
		mats[t] = matgen.TransientStep(base, t, 99)
	}
	return mats
}

// TestPoolFactorFreshPivots: Pool.Factor must run a genuinely fresh
// pivoting factorization (recycling storage), produce correct solves, and
// count its reuses.
func TestPoolFactorFreshPivots(t *testing.T) {
	mats := poolFactorFixture(0.1)
	pool := NewPool(PoolOptions{Options: Options{Threads: 2, BigBlockMin: 64}})
	rng := rand.New(rand.NewSource(3))
	for i, a := range mats {
		lease, err := pool.Factor(a)
		if err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		x := make([]float64, a.N)
		for k := range x {
			x[k] = rng.NormFloat64()
		}
		b := make([]float64, a.N)
		a.MulVec(b, x)
		lease.Solve(b)
		for k := range x {
			if math.Abs(b[k]-x[k]) > 1e-6*(1+math.Abs(x[k])) {
				t.Fatalf("step %d: x[%d] = %v, want %v", i, k, b[k], x[k])
			}
		}
		lease.Release()
	}
	st := pool.Stats()
	if st.Misses != 1 {
		t.Fatalf("want exactly one cold miss, got %d", st.Misses)
	}
	if st.FactorReuses != uint64(len(mats)-1) {
		t.Fatalf("want %d storage-recycled factorizations, got %d", len(mats)-1, st.FactorReuses)
	}
}

// TestPoolFactorAllocBudget pins the PR's memory acceptance bar: repeated
// same-pattern fresh factorization through the pool must allocate at most
// 5% of what the factor-every-call path (full Analyze + Factor, the pre-PR
// pool miss) allocates.
func TestPoolFactorAllocBudget(t *testing.T) {
	mats := poolFactorFixture(0.1)
	opts := Options{Threads: 2, BigBlockMin: 64}

	solver := New(opts)
	if _, err := solver.Factor(mats[0]); err != nil {
		t.Fatal(err)
	}
	i := 0
	baseline := testing.AllocsPerRun(20, func() {
		i++
		if _, err := solver.Factor(mats[i%len(mats)]); err != nil {
			t.Fatal(err)
		}
	})

	pool := NewPool(PoolOptions{Options: opts})
	for w := 0; w < 3; w++ { // warm the symbolic cache and one pooled entry
		lease, err := pool.Factor(mats[w])
		if err != nil {
			t.Fatal(err)
		}
		lease.Release()
	}
	i = 0
	pooled := testing.AllocsPerRun(20, func() {
		i++
		lease, err := pool.Factor(mats[i%len(mats)])
		if err != nil {
			t.Fatal(err)
		}
		lease.Release()
	})
	if baseline == 0 {
		t.Fatal("baseline allocation measurement broken")
	}
	if ratio := pooled / baseline; ratio > 0.05 {
		t.Fatalf("pool.Factor allocates %.0f/op vs %.0f/op for factor-every-call (%.1f%%, budget 5%%)",
			pooled, baseline, 100*ratio)
	}
}

// TestPoolSymbolicCacheBounded: a workload whose sparsity pattern evolves
// must not grow the symbolic cache without bound; evicted patterns simply
// re-analyze on their next miss and everything keeps solving.
func TestPoolSymbolicCacheBounded(t *testing.T) {
	pool := NewPool(PoolOptions{
		Options:           Options{Threads: 1, BigBlockMin: 64},
		MaxCachedPatterns: 2,
	})
	rng := rand.New(rand.NewSource(17))
	patterns := make([]*sparse.CSC, 5)
	for i := range patterns {
		patterns[i] = matgen.Circuit(matgen.CircuitParams{
			N: 220 + 20*i, BTFPct: 50, Blocks: 10, Core: matgen.CoreLadder,
			ExtraDensity: 0.3, Seed: int64(100 + i),
		})
	}
	for round := 0; round < 3; round++ {
		for i, a := range patterns {
			lease, err := pool.Factor(a)
			if err != nil {
				t.Fatalf("round %d pattern %d: %v", round, i, err)
			}
			x := make([]float64, a.N)
			for k := range x {
				x[k] = rng.NormFloat64()
			}
			b := make([]float64, a.N)
			a.MulVec(b, x)
			lease.Solve(b)
			for k := range x {
				if math.Abs(b[k]-x[k]) > 1e-6*(1+math.Abs(x[k])) {
					t.Fatalf("round %d pattern %d: x[%d] = %v, want %v", round, i, k, b[k], x[k])
				}
			}
			lease.Release()
		}
	}
}

// TestPoolAcquireRepivotFallbackReusesStorage: when new values defeat a
// cached pivot sequence, Acquire re-pivots in the recycled entry instead of
// discarding it.
func TestPoolAcquireRepivotFallbackReusesStorage(t *testing.T) {
	mats := poolFactorFixture(0.08)
	pool := NewPool(PoolOptions{Options: Options{Threads: 1, BigBlockMin: 64}})
	l0, err := pool.Acquire(mats[0])
	if err != nil {
		t.Fatal(err)
	}
	l0.Release()
	// Negate everything and scale wildly: the pattern is unchanged, so
	// Acquire verifies, tries Refactor, and either succeeds (fast path) or
	// re-pivots. Then force the pivot-defeating case: zero the old pivots'
	// magnitudes by scaling one step's values to span many decades.
	drifted := mats[1].Clone()
	rng := rand.New(rand.NewSource(8))
	for p := range drifted.Values {
		drifted.Values[p] = -drifted.Values[p] * math.Pow(10, float64(rng.Intn(6)-3))
	}
	l1, err := pool.Acquire(drifted)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, drifted.N)
	for k := range x {
		x[k] = rng.NormFloat64()
	}
	b := make([]float64, drifted.N)
	drifted.MulVec(b, x)
	l1.Solve(b)
	for k := range x {
		if math.Abs(b[k]-x[k]) > 1e-5*(1+math.Abs(x[k])) {
			t.Fatalf("x[%d] = %v, want %v", k, b[k], x[k])
		}
	}
	l1.Release()
}

// TestPoolAgeEviction: idle entries older than MaxIdleAge are dropped
// lazily on the pool's own operations, counted in Stats, and do not break
// subsequent acquisitions (they just miss).
func TestPoolAgeEviction(t *testing.T) {
	mats := poolFactorFixture(0.1)
	pool := NewPool(PoolOptions{
		Options:    Options{Threads: 1, BigBlockMin: 64},
		MaxIdleAge: time.Minute,
	})
	clock := time.Now()
	pool.now = func() time.Time { return clock }

	lease, err := pool.Acquire(mats[0])
	if err != nil {
		t.Fatal(err)
	}
	lease.Release()
	if st := pool.Stats(); st.Idle != 1 || st.Evictions != 0 {
		t.Fatalf("after release: %+v", st)
	}
	// Within the age limit: the entry is reused (a hit).
	clock = clock.Add(30 * time.Second)
	lease, err = pool.Acquire(mats[1])
	if err != nil {
		t.Fatal(err)
	}
	lease.Release()
	if st := pool.Stats(); st.Hits != 1 {
		t.Fatalf("expected a hit within the age limit: %+v", st)
	}
	// Beyond the age limit: the entry is evicted and the acquire misses.
	clock = clock.Add(2 * time.Minute)
	lease, err = pool.Acquire(mats[2])
	if err != nil {
		t.Fatal(err)
	}
	st := pool.Stats()
	if st.Evictions != 1 {
		t.Fatalf("expected one age eviction: %+v", st)
	}
	if st.Misses != 2 { // first-ever acquire + post-expiry acquire
		t.Fatalf("expected the expired entry to miss: %+v", st)
	}
	if st.CachedSymbolics != 1 {
		t.Fatalf("symbolic analysis should survive entry eviction: %+v", st)
	}
	solveProbe(t, lease.Factorization, mats[2])
	lease.Release()
}

// TestPoolCapacityEvictionCounted: releases beyond MaxIdlePerPattern count
// as evictions.
func TestPoolCapacityEvictionCounted(t *testing.T) {
	mats := poolFactorFixture(0.1)
	pool := NewPool(PoolOptions{
		Options:           Options{Threads: 1, BigBlockMin: 64},
		MaxIdlePerPattern: 1,
	})
	l1, err := pool.Acquire(mats[0])
	if err != nil {
		t.Fatal(err)
	}
	l2, err := pool.Acquire(mats[1])
	if err != nil {
		t.Fatal(err)
	}
	l1.Release()
	l2.Release()
	st := pool.Stats()
	if st.Idle != 1 || st.Evictions != 1 {
		t.Fatalf("capacity eviction not counted: %+v", st)
	}
}

// solveProbe checks one factorization against a generated matrix.
func solveProbe(t *testing.T, f *Factorization, a *sparse.CSC) {
	t.Helper()
	x := make([]float64, a.N)
	for i := range x {
		x[i] = 1 + float64(i%3)
	}
	b := make([]float64, a.N)
	a.MulVec(b, x)
	f.Solve(b)
	for i := range x {
		if math.Abs(b[i]-x[i]) > 1e-6 {
			t.Fatalf("x[%d] = %v, want %v", i, b[i], x[i])
		}
	}
}

// BenchmarkPoolMultiPattern is the multi-pattern contention benchmark of
// the serving-layer hardening: goroutines hammer Acquire/Solve/Release
// across several distinct sparsity-pattern families concurrently, so the
// pool lock, the per-pattern buckets and the symbolic cache all see
// contention (the earlier benches covered one pattern family only).
func BenchmarkPoolMultiPattern(b *testing.B) {
	const patterns = 4
	bases := make([][]*sparse.CSC, patterns)
	for pidx := range bases {
		base := matgen.XyceSequenceBase(0.05 + 0.02*float64(pidx))
		steps := make([]*sparse.CSC, 4)
		for t := range steps {
			steps[t] = matgen.TransientStep(base, t, int64(100*pidx))
		}
		bases[pidx] = steps
	}
	pool := NewPool(PoolOptions{Options: Options{Threads: 1, BigBlockMin: 64}})
	// Warm every pattern so the timed loop measures steady-state serving.
	for _, steps := range bases {
		if err := pool.Solve(steps[0], make([]float64, steps[0].N)); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	var firstErr atomic.Value
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			steps := bases[i%patterns]
			a := steps[i%len(steps)]
			lease, err := pool.Acquire(a)
			if err != nil {
				// FailNow must run on the benchmark goroutine; record and
				// bail out of this worker instead.
				firstErr.CompareAndSwap(nil, err)
				return
			}
			rhs := make([]float64, a.N)
			for j := range rhs {
				rhs[j] = 1
			}
			lease.Solve(rhs)
			lease.Release()
			i++
		}
	})
	if err := firstErr.Load(); err != nil {
		b.Fatal(err)
	}
	st := pool.Stats()
	if total := st.Hits + st.Misses; total > 0 {
		b.ReportMetric(float64(st.Hits)/float64(total)*100, "hit%")
	}
}
