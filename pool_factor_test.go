package basker

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/matgen"
	"repro/internal/sparse"
)

// poolFactorFixture builds a short transient sequence sharing one pattern.
func poolFactorFixture(scale float64) []*sparse.CSC {
	base := matgen.XyceSequenceBase(scale)
	mats := make([]*sparse.CSC, 8)
	for t := range mats {
		mats[t] = matgen.TransientStep(base, t, 99)
	}
	return mats
}

// TestPoolFactorFreshPivots: Pool.Factor must run a genuinely fresh
// pivoting factorization (recycling storage), produce correct solves, and
// count its reuses.
func TestPoolFactorFreshPivots(t *testing.T) {
	mats := poolFactorFixture(0.1)
	pool := NewPool(PoolOptions{Options: Options{Threads: 2, BigBlockMin: 64}})
	rng := rand.New(rand.NewSource(3))
	for i, a := range mats {
		lease, err := pool.Factor(a)
		if err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		x := make([]float64, a.N)
		for k := range x {
			x[k] = rng.NormFloat64()
		}
		b := make([]float64, a.N)
		a.MulVec(b, x)
		lease.Solve(b)
		for k := range x {
			if math.Abs(b[k]-x[k]) > 1e-6*(1+math.Abs(x[k])) {
				t.Fatalf("step %d: x[%d] = %v, want %v", i, k, b[k], x[k])
			}
		}
		lease.Release()
	}
	st := pool.Stats()
	if st.Misses != 1 {
		t.Fatalf("want exactly one cold miss, got %d", st.Misses)
	}
	if st.FactorReuses != uint64(len(mats)-1) {
		t.Fatalf("want %d storage-recycled factorizations, got %d", len(mats)-1, st.FactorReuses)
	}
}

// TestPoolFactorAllocBudget pins the PR's memory acceptance bar: repeated
// same-pattern fresh factorization through the pool must allocate at most
// 5% of what the factor-every-call path (full Analyze + Factor, the pre-PR
// pool miss) allocates.
func TestPoolFactorAllocBudget(t *testing.T) {
	mats := poolFactorFixture(0.1)
	opts := Options{Threads: 2, BigBlockMin: 64}

	solver := New(opts)
	if _, err := solver.Factor(mats[0]); err != nil {
		t.Fatal(err)
	}
	i := 0
	baseline := testing.AllocsPerRun(20, func() {
		i++
		if _, err := solver.Factor(mats[i%len(mats)]); err != nil {
			t.Fatal(err)
		}
	})

	pool := NewPool(PoolOptions{Options: opts})
	for w := 0; w < 3; w++ { // warm the symbolic cache and one pooled entry
		lease, err := pool.Factor(mats[w])
		if err != nil {
			t.Fatal(err)
		}
		lease.Release()
	}
	i = 0
	pooled := testing.AllocsPerRun(20, func() {
		i++
		lease, err := pool.Factor(mats[i%len(mats)])
		if err != nil {
			t.Fatal(err)
		}
		lease.Release()
	})
	if baseline == 0 {
		t.Fatal("baseline allocation measurement broken")
	}
	if ratio := pooled / baseline; ratio > 0.05 {
		t.Fatalf("pool.Factor allocates %.0f/op vs %.0f/op for factor-every-call (%.1f%%, budget 5%%)",
			pooled, baseline, 100*ratio)
	}
}

// TestPoolSymbolicCacheBounded: a workload whose sparsity pattern evolves
// must not grow the symbolic cache without bound; evicted patterns simply
// re-analyze on their next miss and everything keeps solving.
func TestPoolSymbolicCacheBounded(t *testing.T) {
	pool := NewPool(PoolOptions{
		Options:           Options{Threads: 1, BigBlockMin: 64},
		MaxCachedPatterns: 2,
	})
	rng := rand.New(rand.NewSource(17))
	patterns := make([]*sparse.CSC, 5)
	for i := range patterns {
		patterns[i] = matgen.Circuit(matgen.CircuitParams{
			N: 220 + 20*i, BTFPct: 50, Blocks: 10, Core: matgen.CoreLadder,
			ExtraDensity: 0.3, Seed: int64(100 + i),
		})
	}
	for round := 0; round < 3; round++ {
		for i, a := range patterns {
			lease, err := pool.Factor(a)
			if err != nil {
				t.Fatalf("round %d pattern %d: %v", round, i, err)
			}
			x := make([]float64, a.N)
			for k := range x {
				x[k] = rng.NormFloat64()
			}
			b := make([]float64, a.N)
			a.MulVec(b, x)
			lease.Solve(b)
			for k := range x {
				if math.Abs(b[k]-x[k]) > 1e-6*(1+math.Abs(x[k])) {
					t.Fatalf("round %d pattern %d: x[%d] = %v, want %v", round, i, k, b[k], x[k])
				}
			}
			lease.Release()
		}
	}
}

// TestPoolAcquireRepivotFallbackReusesStorage: when new values defeat a
// cached pivot sequence, Acquire re-pivots in the recycled entry instead of
// discarding it.
func TestPoolAcquireRepivotFallbackReusesStorage(t *testing.T) {
	mats := poolFactorFixture(0.08)
	pool := NewPool(PoolOptions{Options: Options{Threads: 1, BigBlockMin: 64}})
	l0, err := pool.Acquire(mats[0])
	if err != nil {
		t.Fatal(err)
	}
	l0.Release()
	// Negate everything and scale wildly: the pattern is unchanged, so
	// Acquire verifies, tries Refactor, and either succeeds (fast path) or
	// re-pivots. Then force the pivot-defeating case: zero the old pivots'
	// magnitudes by scaling one step's values to span many decades.
	drifted := mats[1].Clone()
	rng := rand.New(rand.NewSource(8))
	for p := range drifted.Values {
		drifted.Values[p] = -drifted.Values[p] * math.Pow(10, float64(rng.Intn(6)-3))
	}
	l1, err := pool.Acquire(drifted)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, drifted.N)
	for k := range x {
		x[k] = rng.NormFloat64()
	}
	b := make([]float64, drifted.N)
	drifted.MulVec(b, x)
	l1.Solve(b)
	for k := range x {
		if math.Abs(b[k]-x[k]) > 1e-5*(1+math.Abs(x[k])) {
			t.Fatalf("x[%d] = %v, want %v", k, b[k], x[k])
		}
	}
	l1.Release()
}
