// Circuit transient simulation in the style of the paper's §V-F Xyce
// experiment: a SPICE-like transient analysis generates a long sequence of
// matrices with one fixed sparsity pattern and changing values (device
// linearizations move every Newton step). The right workflow is one full
// factorization followed by cheap refactorizations that reuse the symbolic
// analysis and pivot sequences — this example measures the difference.
package main

import (
	"fmt"
	"log"
	"time"

	basker "repro"
	"repro/internal/matgen"
)

func main() {
	const steps = 60
	base := matgen.XyceSequenceBase(0.5) // structural replica of Xyce1
	fmt.Printf("transient sequence: %d matrices of dimension %d (%d nnz)\n",
		steps, base.N, base.Nnz())

	solver := basker.New(basker.Options{Threads: 4})

	// Path 1 (wrong): factor every matrix from scratch.
	start := time.Now()
	for t := 0; t < steps; t++ {
		if _, err := solver.Factor(matgen.TransientStep(base, t, 42)); err != nil {
			log.Fatalf("step %d: %v", t, err)
		}
	}
	fromScratch := time.Since(start)

	// Path 2 (right): one factorization, then refactor with fixed pattern.
	start = time.Now()
	fact, err := solver.Factor(matgen.TransientStep(base, 0, 42))
	if err != nil {
		log.Fatal(err)
	}
	x := make([]float64, base.N)
	for t := 1; t < steps; t++ {
		m := matgen.TransientStep(base, t, 42)
		if err := fact.Refactor(m); err != nil {
			log.Fatalf("step %d: %v", t, err)
		}
		// Each step solves the Newton update; reuse x as the RHS buffer.
		for i := range x {
			x[i] = 1
		}
		fact.Solve(x)
	}
	withRefactor := time.Since(start)

	fmt.Printf("factor every step:     %8.3fs\n", fromScratch.Seconds())
	fmt.Printf("factor once + refactor:%8.3fs\n", withRefactor.Seconds())
	fmt.Printf("refactorization saves %.1fx\n",
		fromScratch.Seconds()/withRefactor.Seconds())
}
