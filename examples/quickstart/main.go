// Quickstart: build a small circuit-style matrix by stamping triplets,
// factor it with Basker, and solve one linear system.
package main

import (
	"fmt"
	"log"

	basker "repro"
)

func main() {
	// A 5-node resistor network with a voltage source: the classic modified
	// nodal analysis stamp pattern (diagonally dominant, unsymmetric).
	const n = 5
	tr := basker.NewTriplets(n, n)
	conductance := [][3]float64{
		// node i, node j, conductance between them
		{0, 1, 2.0}, {1, 2, 1.0}, {2, 3, 4.0}, {3, 4, 0.5}, {0, 4, 1.0},
	}
	for _, g := range conductance {
		i, j, c := int(g[0]), int(g[1]), g[2]
		tr.Add(i, i, c)
		tr.Add(j, j, c)
		tr.Add(i, j, -c)
		tr.Add(j, i, -c)
	}
	tr.Add(0, 0, 10)  // ground tie keeps the system nonsingular
	tr.Add(2, 0, 0.3) // an unsymmetric device stamp (e.g. a VCCS)
	a := tr.Matrix()

	solver := basker.New(basker.Options{Threads: 2})
	fact, err := solver.Factor(a)
	if err != nil {
		log.Fatal(err)
	}

	// Current injection at node 2; solve for node voltages.
	b := []float64{0, 0, 1, 0, 0}
	fact.Solve(b)
	fmt.Println("node voltages:")
	for i, v := range b {
		fmt.Printf("  v[%d] = %+.6f\n", i, v)
	}

	st := fact.Stats(a)
	fmt.Printf("stats: |L+U| = %d, fill density = %.2f, BTF blocks = %d\n",
		st.NnzLU, st.FillDensity, st.BTFBlocks)
}
