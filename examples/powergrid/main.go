// Power-grid load flow: power-grid matrices decompose almost entirely into
// small BTF blocks (the RS_* and Power0 rows of the paper's Table I), which
// is Basker's best case — every block factors independently in parallel.
// This example compares Basker against the reimplemented KLU and supernodal
// (PMKL-style) baselines on such a matrix and verifies all three agree.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"
	"time"

	basker "repro"
	"repro/internal/klu"
	"repro/internal/matgen"
	"repro/internal/pmkl"
)

func main() {
	grid := matgen.PowerGrid(8000, 600, 7)
	fmt.Printf("power grid: %d buses, %d nonzeros\n", grid.N, grid.Nnz())

	// Shared right-hand side: injections at random buses.
	rng := rand.New(rand.NewSource(1))
	inj := make([]float64, grid.N)
	for i := 0; i < 40; i++ {
		inj[rng.Intn(grid.N)] = 1 + rng.Float64()
	}

	// Basker.
	start := time.Now()
	fact, err := basker.New(basker.Options{Threads: 4}).Factor(grid)
	if err != nil {
		log.Fatal(err)
	}
	xb := append([]float64(nil), inj...)
	fact.Solve(xb)
	fmt.Printf("basker: %.3fs, |L+U| = %d, BTF%% = %.1f (%d blocks)\n",
		time.Since(start).Seconds(), fact.Stats(grid).NnzLU,
		fact.Stats(grid).BTFPercent, fact.Stats(grid).BTFBlocks)

	// KLU baseline.
	start = time.Now()
	kNum, err := klu.FactorDirect(grid, klu.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	xk := append([]float64(nil), inj...)
	kNum.Solve(xk)
	fmt.Printf("klu:    %.3fs, |L+U| = %d\n", time.Since(start).Seconds(), kNum.NnzLU())

	// Supernodal baseline (no BTF): note the factor-size penalty.
	start = time.Now()
	pNum, err := pmkl.FactorDirect(grid, pmkl.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	xp := append([]float64(nil), inj...)
	pNum.Solve(xp)
	fmt.Printf("pmkl:   %.3fs, |L+U| = %d (%.1fx Basker's)\n",
		time.Since(start).Seconds(), pNum.NnzLU(),
		float64(pNum.NnzLU())/float64(fact.Stats(grid).NnzLU))

	// All three must agree.
	worst := 0.0
	for i := range xb {
		worst = math.Max(worst, math.Abs(xb[i]-xk[i]))
		worst = math.Max(worst, math.Abs(xb[i]-xp[i]))
	}
	fmt.Printf("max solver disagreement: %.3e\n", worst)
}
