// Concurrent solves: the serving-layer pattern for transient simulation at
// scale. A pattern-keyed basker.Pool caches factorizations per sparsity
// pattern, so concurrent scenario workers stamping same-pattern matrices
// hit the cheap Refactor path, and each worker solves whole batches of
// right-hand sides with one blocked SolveMany sweep.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sync"

	basker "repro"
)

// stamp builds an n-node ladder-network matrix for one scenario; every
// scenario shares the sparsity pattern and only the conductances change —
// exactly the shape of a transient time step.
func stamp(n int, t float64, rng *rand.Rand) *basker.Matrix {
	tr := basker.NewTriplets(n, n)
	for i := 0; i < n; i++ {
		g := 4 + t + 0.1*rng.Float64()
		tr.Add(i, i, g)
		if i > 0 {
			tr.Add(i, i-1, -1-0.05*t)
			tr.Add(i-1, i, -1+0.02*t)
		}
	}
	return tr.Matrix()
}

func main() {
	const (
		n         = 500
		scenarios = 8
		steps     = 25
		nrhs      = 4 // sources solved per time step, batched
	)
	pool := basker.NewPool(basker.PoolOptions{
		Options: basker.Options{Threads: 2},
	})

	var wg sync.WaitGroup
	for sc := 0; sc < scenarios; sc++ {
		wg.Add(1)
		go func(sc int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(sc)))
			for step := 0; step < steps; step++ {
				a := stamp(n, float64(step)*0.01, rng)
				lease, err := pool.Acquire(a) // Refactor hit after warmup
				if err != nil {
					log.Fatal(err)
				}
				batch := make([][]float64, nrhs)
				for c := range batch {
					batch[c] = make([]float64, n)
					batch[c][(sc*nrhs+c)%n] = 1 // unit current injection
				}
				lease.SolveMany(batch) // one blocked sweep for all sources
				lease.Release()
			}
		}(sc)
	}
	wg.Wait()

	st := pool.Stats()
	fmt.Printf("served %d solves across %d goroutines\n", scenarios*steps, scenarios)
	fmt.Printf("pool: %d Refactor hits, %d full factorizations, %d idle cached (%.0f%% hit rate)\n",
		st.Hits, st.Misses, st.Idle,
		100*float64(st.Hits)/float64(st.Hits+st.Misses))
}
