// Ordering tour: walks through the hierarchy Basker discovers in a circuit
// matrix — the coarse block triangular form, the fine BTF blocks, and the
// nested-dissection tree of the large block — printing the structures the
// paper's Figures 2 and 3 illustrate.
package main

import (
	"fmt"
	"log"

	"repro/internal/matgen"
	"repro/internal/order/btf"
	"repro/internal/order/nd"
	"repro/internal/sparse"
)

func main() {
	a := matgen.Circuit(matgen.CircuitParams{
		N: 3000, BTFPct: 40, Blocks: 80,
		Core: matgen.CoreLadder, ExtraDensity: 0.3, Seed: 11,
	})
	fmt.Printf("input: %d×%d with %d nonzeros\n\n", a.M, a.N, a.Nnz())

	// ---- Coarse structure: MWCM + strongly connected components.
	form, err := btf.Compute(a, true)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("coarse BTF: %d diagonal blocks, largest = %d rows\n",
		form.NumBlocks(), form.LargestBlock())
	fmt.Printf("rows in small blocks (fine-BTF structure): %.1f%%\n",
		form.PercentInSmallBlocks(128))
	hist := map[string]int{}
	for b := 0; b < form.NumBlocks(); b++ {
		size := form.BlockPtr[b+1] - form.BlockPtr[b]
		switch {
		case size == 1:
			hist["1"]++
		case size <= 8:
			hist["2-8"]++
		case size <= 128:
			hist["9-128"]++
		default:
			hist[">128 (fine-ND)"]++
		}
	}
	fmt.Printf("block size histogram: %v\n\n", hist)

	// ---- Fine ND structure of the largest block (the paper's D2).
	perm := a.Permute(form.RowPerm, form.ColPerm)
	big, lo := -1, 0
	for b := 0; b < form.NumBlocks(); b++ {
		if s := form.BlockPtr[b+1] - form.BlockPtr[b]; s > big {
			big, lo = s, form.BlockPtr[b]
		}
	}
	d2 := perm.ExtractBlock(lo, lo+big, lo, lo+big)
	fmt.Printf("largest block D2: %d rows (%d nnz) — %0.f%% of the matrix\n",
		d2.N, d2.Nnz(), 100*float64(d2.N)/float64(a.N))

	tree, err := nd.Compute(d2, 4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("nested-dissection tree for 4 threads (Figure 3 structure):")
	printTree(tree, tree.NumBlocks()-1, "")

	// Verify the 2D structure: entries only couple ancestor-related blocks.
	blockOf := make([]int, d2.N)
	for b := 0; b < tree.NumBlocks(); b++ {
		for i := tree.BlockPtr[b]; i < tree.BlockPtr[b+1]; i++ {
			blockOf[i] = b
		}
	}
	p := d2.Permute(tree.Perm, tree.Perm)
	violations := countViolations(p, tree, blockOf)
	fmt.Printf("entries coupling unrelated subtrees: %d (must be 0)\n", violations)
}

func printTree(t *nd.Tree, node int, indent string) {
	kind := "separator"
	if t.Height[node] == 0 {
		kind = "leaf"
	}
	fmt.Printf("%s- block %d: %d rows (%s, height %d)\n",
		indent, node, t.BlockSize(node), kind, t.Height[node])
	for b := 0; b < t.NumBlocks(); b++ {
		if t.Parent[b] == node {
			printTree(t, b, indent+"  ")
		}
	}
}

func countViolations(p *sparse.CSC, tree *nd.Tree, blockOf []int) int {
	isAncestor := func(anc, node int) bool {
		for node != -1 {
			if node == anc {
				return true
			}
			node = tree.Parent[node]
		}
		return false
	}
	v := 0
	for j := 0; j < p.N; j++ {
		for q := p.Colptr[j]; q < p.Colptr[j+1]; q++ {
			bi, bj := blockOf[p.Rowidx[q]], blockOf[j]
			if !isAncestor(bi, bj) && !isAncestor(bj, bi) {
				v++
			}
		}
	}
	return v
}
