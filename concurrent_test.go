package basker

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/matgen"
)

// TestConcurrentSolveHammer runs Solve and SolveMany against one
// Factorization from many goroutines at once (run with -race to check the
// workspace pool): every per-call buffer must be private.
func TestConcurrentSolveHammer(t *testing.T) {
	a := matgen.Circuit(matgen.CircuitParams{
		N: 800, BTFPct: 50, Blocks: 40, Core: matgen.CoreLadder, ExtraDensity: 0.3, Seed: 42,
	})
	f, err := New(Options{Threads: 4, BigBlockMin: 64}).Factor(a)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, a.N)
	rng := rand.New(rand.NewSource(1))
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	b := make([]float64, a.N)
	a.MulVec(b, x)

	const goroutines = 8
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for it := 0; it < 20; it++ {
				if (g+it)%2 == 0 {
					got := append([]float64(nil), b...)
					f.Solve(got)
					assertClose(t, got, x)
				} else {
					batch := make([][]float64, 4)
					for c := range batch {
						batch[c] = append([]float64(nil), b...)
					}
					f.SolveMany(batch)
					for _, got := range batch {
						assertClose(t, got, x)
					}
				}
			}
		}(g)
	}
	wg.Wait()
}

func assertClose(t *testing.T, got, want []float64) {
	t.Helper()
	for i := range got {
		if math.Abs(got[i]-want[i]) > 1e-7*(1+math.Abs(want[i])) {
			t.Errorf("x[%d] = %v, want %v", i, got[i], want[i])
			return
		}
	}
}

// TestSolveManyGolden asserts SolveMany matches repeated single Solve
// bit-for-bit, across panel boundaries and with parallel panels.
func TestSolveManyGolden(t *testing.T) {
	a := matgen.Circuit(matgen.CircuitParams{
		N: 600, BTFPct: 40, Blocks: 25, Core: matgen.CoreLadder, ExtraDensity: 0.4, Seed: 7,
	})
	f, err := New(Options{Threads: 4, BigBlockMin: 64}).Factor(a)
	if err != nil {
		t.Fatal(err)
	}
	const k = 67 // crosses panel boundaries with an uneven tail
	rng := rand.New(rand.NewSource(2))
	single := make([][]float64, k)
	batch := make([][]float64, k)
	for c := 0; c < k; c++ {
		b := make([]float64, a.N)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		single[c] = append([]float64(nil), b...)
		batch[c] = b
	}
	for c := range single {
		f.Solve(single[c])
	}
	f.SolveMany(batch)
	for c := range batch {
		for i := range batch[c] {
			if batch[c][i] != single[c][i] {
				t.Fatalf("rhs %d: SolveMany differs from Solve at %d: %v != %v",
					c, i, batch[c][i], single[c][i])
			}
		}
	}

	// SolveMatrix is the same sweep over a column-major buffer; batch holds
	// the solved references at this point.
	xmat := make([]float64, a.N*3)
	for c := 0; c < 3; c++ {
		rng2 := rand.New(rand.NewSource(int64(c)))
		for i := 0; i < a.N; i++ {
			xmat[c*a.N+i] = rng2.NormFloat64()
		}
	}
	ref := make([][]float64, 3)
	for c := range ref {
		ref[c] = append([]float64(nil), xmat[c*a.N:(c+1)*a.N]...)
		f.Solve(ref[c])
	}
	if err := f.SolveMatrix(xmat, 3); err != nil {
		t.Fatal(err)
	}
	for c := range ref {
		for i := range ref[c] {
			if xmat[c*a.N+i] != ref[c][i] {
				t.Fatalf("SolveMatrix col %d differs at %d", c, i)
			}
		}
	}
	if err := f.SolveMatrix(xmat, 2); err == nil {
		t.Fatal("SolveMatrix accepted mismatched dimensions")
	}
}

// TestPoolContention mixes Factor-miss and Refactor-hit paths under
// contention: several goroutines serve transient sequences drawn from a
// small set of sparsity patterns through one Pool.
func TestPoolContention(t *testing.T) {
	bases := []*Matrix{
		matgen.XyceSequenceBase(0.1),
		matgen.Circuit(matgen.CircuitParams{
			N: 500, BTFPct: 45, Blocks: 20, Core: matgen.CoreLadder, ExtraDensity: 0.35, Seed: 13,
		}),
		matgen.Mesh2D(14, 3),
	}
	pool := NewPool(PoolOptions{Options: Options{Threads: 2, BigBlockMin: 64}})

	const goroutines = 6
	const iters = 10
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for it := 0; it < iters; it++ {
				base := bases[(g+it)%len(bases)]
				m := matgen.TransientStep(base, it, int64(g))
				x := make([]float64, m.N)
				for i := range x {
					x[i] = rng.NormFloat64()
				}
				b := make([]float64, m.N)
				m.MulVec(b, x)
				lease, err := pool.Acquire(m)
				if err != nil {
					t.Errorf("goroutine %d iter %d: %v", g, it, err)
					return
				}
				lease.Solve(b)
				lease.Release()
				assertClose(t, b, x)
			}
		}(g)
	}
	wg.Wait()

	st := pool.Stats()
	if st.Hits+st.Misses != goroutines*iters {
		t.Fatalf("hits %d + misses %d != %d acquires", st.Hits, st.Misses, goroutines*iters)
	}
	if st.Misses < uint64(len(bases)) {
		t.Fatalf("misses %d below pattern count %d", st.Misses, len(bases))
	}
	if st.Hits == 0 {
		t.Fatal("no Refactor hits despite repeated patterns")
	}
	if st.Idle == 0 {
		t.Fatal("pool retained nothing")
	}

	// Sequential reuse: a second pass over the same patterns must be all
	// hits when contention is gone.
	before := pool.Stats()
	for _, base := range bases {
		m := matgen.TransientStep(base, 99, 5)
		b := make([]float64, m.N)
		for i := range b {
			b[i] = 1
		}
		if err := pool.Solve(m, b); err != nil {
			t.Fatal(err)
		}
	}
	after := pool.Stats()
	if after.Misses != before.Misses {
		t.Fatalf("sequential same-pattern pass took %d fresh factorizations, want 0",
			after.Misses-before.Misses)
	}
}
