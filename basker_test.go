package basker

import (
	"bytes"
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/matgen"
)

func TestPublicAPIQuickstart(t *testing.T) {
	// 2x2: [[2,1],[1,3]] x = b.
	tr := NewTriplets(2, 2)
	tr.Add(0, 0, 2)
	tr.Add(0, 1, 1)
	tr.Add(1, 0, 1)
	tr.Add(1, 1, 3)
	a := tr.Matrix()
	f, err := New(Options{}).Factor(a)
	if err != nil {
		t.Fatal(err)
	}
	b := []float64{5, 10} // solution: x = [1, 3]
	f.Solve(b)
	if math.Abs(b[0]-1) > 1e-12 || math.Abs(b[1]-3) > 1e-12 {
		t.Fatalf("x = %v, want [1 3]", b)
	}
}

func TestPublicAPICircuitParallel(t *testing.T) {
	a := matgen.Circuit(matgen.CircuitParams{N: 600, BTFPct: 50, Blocks: 30, Core: matgen.CoreLadder, ExtraDensity: 0.3, Seed: 42})
	f, err := New(Options{Threads: 4, BigBlockMin: 64}).Factor(a)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	x := make([]float64, a.N)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	b := make([]float64, a.N)
	a.MulVec(b, x)
	f.Solve(b)
	for i := range x {
		if math.Abs(b[i]-x[i]) > 1e-7*(1+math.Abs(x[i])) {
			t.Fatalf("x[%d] = %v, want %v", i, b[i], x[i])
		}
	}
	st := f.Stats(a)
	if st.NnzLU <= 0 || st.BTFBlocks < 2 || st.FillDensity <= 0 {
		t.Fatalf("implausible stats: %+v", st)
	}
}

func TestPublicAPIRefactor(t *testing.T) {
	base := matgen.XyceSequenceBase(0.1)
	f, err := New(Options{Threads: 2, BigBlockMin: 64}).Factor(base)
	if err != nil {
		t.Fatal(err)
	}
	for step := 1; step <= 3; step++ {
		m := matgen.TransientStep(base, step, 5)
		if err := f.Refactor(m); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		rng := rand.New(rand.NewSource(int64(step)))
		x := make([]float64, m.N)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		b := make([]float64, m.N)
		m.MulVec(b, x)
		f.Solve(b)
		for i := range x {
			if math.Abs(b[i]-x[i]) > 1e-6*(1+math.Abs(x[i])) {
				t.Fatalf("step %d: x[%d] = %v, want %v", step, i, b[i], x[i])
			}
		}
	}
}

func TestSingularErrorWrapped(t *testing.T) {
	tr := NewTriplets(2, 2)
	tr.Add(0, 0, 1)
	tr.Add(1, 0, 1) // empty column 1
	_, err := New(Options{}).Factor(tr.Matrix())
	if !errors.Is(err, ErrSingular) {
		t.Fatalf("err = %v, want ErrSingular", err)
	}
}

func TestMatrixMarketRoundTripPublic(t *testing.T) {
	a := matgen.Mesh2D(6, 1)
	var buf bytes.Buffer
	if err := WriteMatrixMarket(&buf, a); err != nil {
		t.Fatal(err)
	}
	b, err := ReadMatrixMarket(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if b.N != a.N || b.Nnz() != a.Nnz() {
		t.Fatal("round trip changed the matrix")
	}
}

func TestBarrierOption(t *testing.T) {
	a := matgen.Mesh2D(12, 2)
	f, err := New(Options{Threads: 4, Barrier: true, BigBlockMin: 32}).Factor(a)
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, a.N)
	for i := range b {
		b[i] = 1
	}
	want := append([]float64(nil), b...)
	f.Solve(b)
	r := make([]float64, a.N)
	a.MulVec(r, b)
	for i := range r {
		if math.Abs(r[i]-want[i]) > 1e-8 {
			t.Fatalf("residual at %d: %v", i, r[i]-want[i])
		}
	}
}

func TestSolveRefined(t *testing.T) {
	a := matgen.Circuit(matgen.CircuitParams{N: 400, BTFPct: 30, Blocks: 20, Core: matgen.CoreLadder, ExtraDensity: 0.4, Seed: 9})
	f, err := New(Options{Threads: 2, BigBlockMin: 64, PivotTol: 0.0001}).Factor(a)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	x := make([]float64, a.N)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	b := make([]float64, a.N)
	a.MulVec(b, x)
	res, err := f.SolveRefined(a, b, 3)
	if err != nil {
		t.Fatalf("SolveRefined: %v", err)
	}
	if res.Residual > 1e-12 {
		t.Fatalf("refined residual %g too large", res.Residual)
	}
	if !res.Converged {
		t.Errorf("refinement did not converge: %+v", res)
	}
	for i := range x {
		if math.Abs(b[i]-x[i]) > 1e-8*(1+math.Abs(x[i])) {
			t.Fatalf("refined x[%d] = %v, want %v", i, b[i], x[i])
		}
	}
	// Zero iterations must still report the direct solve's backward error.
	a.MulVec(b, x)
	res, err = f.SolveRefined(a, b, 0)
	if err != nil {
		t.Fatalf("SolveRefined(0 iters): %v", err)
	}
	if res.Residual < 0 || res.BackwardError < 0 {
		t.Fatalf("negative residual/backward error: %+v", res)
	}
	if res.Iterations != 0 {
		t.Fatalf("maxIters=0 took %d corrections", res.Iterations)
	}
}
