package matgen

import (
	"testing"

	"repro/internal/klu"
	"repro/internal/order/btf"
	"repro/internal/sparse"
)

func TestCircuitIsWellFormedAndFactorable(t *testing.T) {
	a := Circuit(CircuitParams{N: 800, BTFPct: 40, Blocks: 30, Core: CoreLadder, ExtraDensity: 0.3, Seed: 1})
	if err := a.Check(); err != nil {
		t.Fatal(err)
	}
	if a.N != 800 {
		t.Fatalf("n = %d", a.N)
	}
	num, err := klu.FactorDirect(a, klu.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if num.Sym.NumBlocks() < 2 {
		t.Error("expected multiple BTF blocks")
	}
}

func TestCircuitBTFStructureMatchesParams(t *testing.T) {
	// BTFPct=100 must yield no big block; BTFPct=0 must be one SCC.
	all := Circuit(CircuitParams{N: 600, BTFPct: 100, Blocks: 40, Seed: 2})
	form, err := btf.Compute(all, false)
	if err != nil {
		t.Fatal(err)
	}
	if form.LargestBlock() > 100 {
		t.Errorf("BTFPct=100: largest block %d, want small", form.LargestBlock())
	}
	one := Circuit(CircuitParams{N: 600, BTFPct: 0, Blocks: 1, Core: CoreLadder, Seed: 3})
	form2, err := btf.Compute(one, false)
	if err != nil {
		t.Fatal(err)
	}
	if form2.LargestBlock() < 590 {
		t.Errorf("BTFPct=0: largest block %d, want ~600", form2.LargestBlock())
	}
}

func TestCircuitDeterministic(t *testing.T) {
	p := CircuitParams{N: 300, BTFPct: 30, Blocks: 10, Core: CoreGrid, ExtraDensity: 0.4, Seed: 7}
	a := Circuit(p)
	b := Circuit(p)
	if a.Nnz() != b.Nnz() {
		t.Fatal("same seed produced different matrices")
	}
	for i := range a.Values {
		if a.Values[i] != b.Values[i] || a.Rowidx[i] != b.Rowidx[i] {
			t.Fatal("same seed produced different matrices")
		}
	}
}

func TestMeshes(t *testing.T) {
	m2 := Mesh2D(12, 1)
	if m2.N != 144 {
		t.Fatalf("Mesh2D n = %d", m2.N)
	}
	if err := m2.Check(); err != nil {
		t.Fatal(err)
	}
	m3 := Mesh3D(5, 1)
	if m3.N != 125 {
		t.Fatalf("Mesh3D n = %d", m3.N)
	}
	if _, err := klu.FactorDirect(m2, klu.DefaultOptions()); err != nil {
		t.Fatal(err)
	}
	if _, err := klu.FactorDirect(m3, klu.DefaultOptions()); err != nil {
		t.Fatal(err)
	}
}

func TestTableISuiteAllFactorable(t *testing.T) {
	if testing.Short() {
		t.Skip("suite generation is moderately expensive")
	}
	suite := TableISuite(0.15)
	if len(suite) != 22 {
		t.Fatalf("Table I suite has %d matrices, want 22", len(suite))
	}
	for _, m := range suite {
		a := m.Gen()
		if err := a.Check(); err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
		if _, err := klu.FactorDirect(a, klu.DefaultOptions()); err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
	}
}

func TestFillOrderingRoughlyIncreases(t *testing.T) {
	// The suite is sorted by the paper's fill density; our replicas should
	// put the low-fill group genuinely below the high-fill group.
	if testing.Short() {
		t.Skip("expensive")
	}
	suite := TableISuite(0.2)
	lowMax, highMin := 0.0, 1e18
	for _, m := range suite {
		a := m.Gen()
		num, err := klu.FactorDirect(a, klu.DefaultOptions())
		if err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
		fd := num.FillDensity(a)
		t.Logf("%-12s paper=%5.1f got=%5.2f", m.Name, m.PaperFill, fd)
		if m.LowFill && fd > lowMax {
			lowMax = fd
		}
		if !m.LowFill && fd < highMin {
			highMin = fd
		}
	}
	if lowMax >= highMin*2 {
		t.Errorf("fill classes poorly separated: low max %.2f vs high min %.2f", lowMax, highMin)
	}
}

func TestTableIISuite(t *testing.T) {
	suite := TableIISuite(0.3)
	if len(suite) != 6 {
		t.Fatalf("Table II suite has %d matrices, want 6", len(suite))
	}
	for _, m := range suite {
		a := m.Gen()
		if err := a.Check(); err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
	}
}

func TestFig5Subset(t *testing.T) {
	sub := Fig5Subset(0.2)
	if len(sub) != 6 {
		t.Fatalf("Fig 5 subset has %d matrices", len(sub))
	}
	if sub[0].Name != "Power0" || sub[5].Name != "Xyce3" {
		t.Fatalf("wrong subset order: %s..%s", sub[0].Name, sub[5].Name)
	}
}

func TestTransientSequenceSamePattern(t *testing.T) {
	base := XyceSequenceBase(0.1)
	s1 := TransientStep(base, 1, 9)
	s2 := TransientStep(base, 2, 9)
	if s1.Nnz() != base.Nnz() || s2.Nnz() != base.Nnz() {
		t.Fatal("transient steps changed the pattern size")
	}
	for i := range base.Rowidx {
		if s1.Rowidx[i] != base.Rowidx[i] {
			t.Fatal("transient step changed the pattern")
		}
	}
	// Values must actually differ between steps.
	same := true
	for i := range s1.Values {
		if s1.Values[i] != s2.Values[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("transient steps produced identical values")
	}
	// Refactorization across the sequence must stay numerically viable.
	num, err := klu.FactorDirect(base, klu.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for step := 1; step <= 5; step++ {
		if err := num.Refactor(TransientStep(base, step, 9)); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
	}
}

func TestPowerGrid(t *testing.T) {
	a := PowerGrid(500, 40, 3)
	form, err := btf.Compute(a, true)
	if err != nil {
		t.Fatal(err)
	}
	if form.PercentInSmallBlocks(128) < 99 {
		t.Errorf("power grid should be ~100%% small blocks, got %.1f", form.PercentInSmallBlocks(128))
	}
	var _ = sparse.IsPerm(form.RowPerm)
}
