package matgen

import "repro/internal/sparse"

// Named is a test-suite matrix: a scaled structural replica of one of the
// paper's benchmark matrices, together with the statistics the paper
// records for the original (used in EXPERIMENTS.md comparisons).
type Named struct {
	Name string
	// Gen produces the matrix (deterministic).
	Gen func() *sparse.CSC
	// PaperFill is the KLU fill-in density |L+U|/|A| from Table I/II.
	PaperFill float64
	// LowFill marks matrices below the paper's 4.0 fill-density line.
	LowFill bool
	// PaperBTFPct and PaperBlocks are Table I's BTF statistics.
	PaperBTFPct float64
	PaperBlocks int
	PaperN      int
	PaperNnz    float64
	// KLUSeconds is Time(matrix, KLU, 1) from Figure 6's titles where the
	// paper reports it (0 elsewhere).
	KLUSeconds float64
}

func circuitGen(n int, btfPct float64, blocks int, core CoreKind, extra float64, seed int64) func() *sparse.CSC {
	return func() *sparse.CSC {
		return Circuit(CircuitParams{N: n, BTFPct: btfPct, Blocks: blocks, Core: core, ExtraDensity: extra, Seed: seed})
	}
}

// TableISuite returns scaled replicas of the paper's 22-matrix circuit and
// powergrid test suite, sorted (like Table I) by increasing fill density.
// scale multiplies the default dimensions (1.0 ≈ a few thousand rows per
// matrix, sized for laptop benchmarking).
func TableISuite(scale float64) []Named {
	if scale <= 0 {
		scale = 1
	}
	s := func(n int) int {
		v := int(float64(n) * scale)
		if v < 64 {
			v = 64
		}
		return v
	}
	sb := func(b int) int {
		v := int(float64(b) * scale)
		if v < 1 {
			v = 1
		}
		return v
	}
	return []Named{
		{Name: "RS_b39c30", Gen: circuitGen(s(3000), 100, sb(150), CoreLadder, 0, 101), PaperFill: 0.6, LowFill: true, PaperBTFPct: 100, PaperBlocks: 3000, PaperN: 60000, PaperNnz: 1.1e6},
		{Name: "RS_b678c2", Gen: circuitGen(s(2400), 100, sb(30), CoreLadder, 0, 102), PaperFill: 0.7, LowFill: true, PaperBTFPct: 100, PaperBlocks: 271, PaperN: 36000, PaperNnz: 8.8e6},
		{Name: "Power0", Gen: circuitGen(s(4000), 100, sb(320), CoreLadder, 0, 103), PaperFill: 1.3, LowFill: true, PaperBTFPct: 100, PaperBlocks: 7700, PaperN: 98000, PaperNnz: 4.8e5, KLUSeconds: 0.07},
		{Name: "Circuit5M", Gen: circuitGen(s(4500), 0, 1, CoreLadder, 0.5, 104), PaperFill: 1.3, LowFill: true, PaperBTFPct: 0, PaperBlocks: 1, PaperN: 5600000, PaperNnz: 6.0e7},
		{Name: "memplus", Gen: circuitGen(s(2000), 1, 4, CoreLadder, 0.3, 105), PaperFill: 1.4, LowFill: true, PaperBTFPct: 0.1, PaperBlocks: 23, PaperN: 12000, PaperNnz: 9.9e4},
		{Name: "rajat21", Gen: circuitGen(s(3500), 2, sb(60), CoreLadder, 0.3, 106), PaperFill: 1.5, LowFill: true, PaperBTFPct: 2, PaperBlocks: 5900, PaperN: 410000, PaperNnz: 1.9e6, KLUSeconds: 0.53},
		{Name: "trans5", Gen: circuitGen(s(2500), 0, 1, CoreLadder, 0.3, 107), PaperFill: 1.6, LowFill: true, PaperBTFPct: 0, PaperBlocks: 1, PaperN: 120000, PaperNnz: 7.5e5},
		{Name: "circuit_4", Gen: circuitGen(s(2800), 34.8, sb(300), CoreLadder, 0.2, 108), PaperFill: 1.6, LowFill: true, PaperBTFPct: 34.8, PaperBlocks: 28000, PaperN: 80000, PaperNnz: 3.1e5},
		{Name: "Xyce0", Gen: circuitGen(s(3500), 85, sb(500), CoreLadder, 0.2, 109), PaperFill: 1.8, LowFill: true, PaperBTFPct: 85, PaperBlocks: 580000, PaperN: 680000, PaperNnz: 3.9e6},
		{Name: "Xyce4", Gen: circuitGen(s(4000), 12, sb(120), CoreLadder, 0.5, 110), PaperFill: 2.0, LowFill: true, PaperBTFPct: 12, PaperBlocks: 750000, PaperN: 6200000, PaperNnz: 7.3e7},
		{Name: "Xyce1", Gen: circuitGen(s(3000), 21, sb(100), CoreLadder, 0.4, 111), PaperFill: 2.4, LowFill: true, PaperBTFPct: 21, PaperBlocks: 99000, PaperN: 430000, PaperNnz: 2.4e6},
		{Name: "asic_680ks", Gen: circuitGen(s(3400), 86, sb(400), CoreLadder, 0.2, 112), PaperFill: 2.6, LowFill: true, PaperBTFPct: 86, PaperBlocks: 580000, PaperN: 680000, PaperNnz: 1.7e6, KLUSeconds: 1.4},
		{Name: "bcircuit", Gen: circuitGen(s(2600), 0, 1, CoreLadder, 0.8, 113), PaperFill: 2.8, LowFill: true, PaperBTFPct: 0, PaperBlocks: 1, PaperN: 69000, PaperNnz: 3.8e5},
		{Name: "scircuit", Gen: circuitGen(s(3000), 1, sb(10), CoreLadder, 0.8, 114), PaperFill: 2.8, LowFill: true, PaperBTFPct: 0.3, PaperBlocks: 48, PaperN: 170000, PaperNnz: 9.6e5},
		{Name: "hvdc2", Gen: circuitGen(s(2800), 100, sb(60), CoreLadder, 0, 115), PaperFill: 2.8, LowFill: true, PaperBTFPct: 100, PaperBlocks: 67, PaperN: 190000, PaperNnz: 1.3e6, KLUSeconds: 0.55},
		{Name: "Freescale1", Gen: circuitGen(s(4200), 0, 1, CoreGrid, 0.3, 116), PaperFill: 4.1, LowFill: false, PaperBTFPct: 0, PaperBlocks: 1, PaperN: 3400000, PaperNnz: 1.7e7, KLUSeconds: 14},
		{Name: "hcircuit", Gen: circuitGen(s(2400), 13, sb(40), CoreGrid, 0.3, 117), PaperFill: 6.9, LowFill: false, PaperBTFPct: 13, PaperBlocks: 1400, PaperN: 110000, PaperNnz: 5.1e5},
		{Name: "Xyce3", Gen: circuitGen(s(4000), 20, sb(100), CoreGrid, 0.5, 118), PaperFill: 9.2, LowFill: false, PaperBTFPct: 20, PaperBlocks: 400000, PaperN: 1900000, PaperNnz: 9.5e6, KLUSeconds: 32},
		{Name: "memchip", Gen: circuitGen(s(4200), 0, 1, CoreGrid, 0.5, 119), PaperFill: 9.9, LowFill: false, PaperBTFPct: 0, PaperBlocks: 1, PaperN: 2700000, PaperNnz: 1.3e7},
		{Name: "G2_Circuit", Gen: circuitGen(s(3600), 0, 1, CoreGrid3D, 0.2, 120), PaperFill: 27.7, LowFill: false, PaperBTFPct: 0, PaperBlocks: 1, PaperN: 150000, PaperNnz: 7.3e5},
		{Name: "twotone", Gen: circuitGen(s(3200), 0, 1, CoreGrid3D, 0.5, 121), PaperFill: 39.9, LowFill: false, PaperBTFPct: 0, PaperBlocks: 5, PaperN: 120000, PaperNnz: 1.2e6},
		{Name: "onetone1", Gen: circuitGen(s(2200), 1.1, sb(8), CoreGrid3D, 0.5, 122), PaperFill: 40.8, LowFill: false, PaperBTFPct: 1.1, PaperBlocks: 203, PaperN: 36000, PaperNnz: 3.4e5},
	}
}

// Fig5Subset returns the six matrices of Figures 5 and 6 (fill density 1.3
// to 9.2, low to high, left to right in the paper's plots).
func Fig5Subset(scale float64) []Named {
	all := TableISuite(scale)
	names := []string{"Power0", "rajat21", "asic_680ks", "hvdc2", "Freescale1", "Xyce3"}
	var out []Named
	for _, want := range names {
		for _, m := range all {
			if m.Name == want {
				out = append(out, m)
			}
		}
	}
	return out
}

// BaskerIdealSubset returns the six lowest fill-in matrices, Basker's
// "ideal inputs" used by Figure 8.
func BaskerIdealSubset(scale float64) []Named {
	return TableISuite(scale)[:6]
}

// TableIISuite returns scaled replicas of the paper's 2/3D mesh problems —
// PMKL's ideal inputs (Table II, Figure 8).
func TableIISuite(scale float64) []Named {
	if scale <= 0 {
		scale = 1
	}
	s2 := func(k int) int {
		v := int(float64(k) * scale)
		if v < 8 {
			v = 8
		}
		return v
	}
	s3 := func(k int) int {
		v := int(float64(k) * scale)
		if v < 4 {
			v = 4
		}
		return v
	}
	mesh2 := func(k int, seed int64) func() *sparse.CSC {
		return func() *sparse.CSC { return Mesh2D(k, seed) }
	}
	mesh3 := func(k int, seed int64) func() *sparse.CSC {
		return func() *sparse.CSC { return Mesh3D(k, seed) }
	}
	return []Named{
		{Name: "pwtk", Gen: mesh3(s3(18), 201), PaperFill: 8.1, PaperN: 220000, PaperNnz: 1.2e7},
		{Name: "ecology", Gen: mesh2(s2(80), 202), PaperFill: 14.2, PaperN: 1000000, PaperNnz: 5.0e6},
		{Name: "apache2", Gen: mesh3(s3(20), 203), PaperFill: 58.3, PaperN: 720000, PaperNnz: 4.8e6},
		{Name: "bmwcra1", Gen: mesh3(s3(16), 204), PaperFill: 12.7, PaperN: 150000, PaperNnz: 1.1e7},
		{Name: "parabolic_fem", Gen: mesh2(s2(72), 205), PaperFill: 14.1, PaperN: 530000, PaperNnz: 3.7e6},
		{Name: "helm2d03", Gen: mesh2(s2(64), 206), PaperFill: 13.7, PaperN: 390000, PaperNnz: 2.7e6},
	}
}

// XyceSequenceBase generates the base matrix of the §V-F transient
// experiment: a replica of the Xyce1 circuit (the paper's sequence source).
func XyceSequenceBase(scale float64) *sparse.CSC {
	if scale <= 0 {
		scale = 1
	}
	n := int(3000 * scale)
	if n < 64 {
		n = 64
	}
	return Circuit(CircuitParams{N: n, BTFPct: 21, Blocks: int(100 * scale), Core: CoreLadder, ExtraDensity: 0.4, Seed: 111})
}
