// Package matgen generates the synthetic workloads for every experiment in
// the paper. The originals come from the University of Florida collection
// and Sandia's Xyce simulator; neither ships with this repository, so each
// matrix is replaced by a generator that reproduces the *structural
// statistics Basker's behaviour depends on* — dimension (scaled down),
// nonzeros per row, the share of rows in small BTF blocks (Table I's BTF%),
// the number of BTF blocks, and the fill-in density class — as recorded in
// Table I/II of the paper. DESIGN.md documents this substitution.
package matgen

import (
	"math"
	"math/rand"

	"repro/internal/sparse"
)

// CoreKind selects the topology of a matrix's large strongly connected
// block, which controls its fill-in density class.
type CoreKind int

const (
	// CoreLadder is a low fill-in circuit-like core: ring + ladder rungs +
	// sparse random stamps (fill density < 4 under AMD).
	CoreLadder CoreKind = iota
	// CoreGrid is a 2D 5-point stencil core (moderate fill).
	CoreGrid
	// CoreGrid3D is a 3D 7-point stencil core (high fill, the G2_Circuit /
	// twotone / onetone class).
	CoreGrid3D
)

// CircuitParams parametrizes a synthetic circuit/powergrid matrix.
type CircuitParams struct {
	// N is the dimension.
	N int
	// BTFPct is the percentage (0..100) of rows living in small diagonal
	// blocks after BTF (Table I's "BTF %" column).
	BTFPct float64
	// Blocks is the approximate number of small BTF blocks.
	Blocks int
	// Core selects the fill class of the single large block.
	Core CoreKind
	// ExtraDensity adds random entries inside the core (per row).
	ExtraDensity float64
	// Seed makes generation deterministic.
	Seed int64
}

// Circuit generates a nonsingular circuit-like matrix: one strongly
// connected core of size (1-BTFPct/100)·N plus ~Blocks small strongly
// connected subcircuits, with sparse strictly-upper coupling so the BTF is
// exactly this block structure.
func Circuit(p CircuitParams) *sparse.CSC {
	rng := rand.New(rand.NewSource(p.Seed))
	n := p.N
	coo := sparse.NewCOO(n, n, 8*n)
	// Dominant diagonal keeps every matrix numerically comfortable.
	for i := 0; i < n; i++ {
		coo.Add(i, i, 8+2*rng.Float64())
	}
	coreN := int((1 - p.BTFPct/100) * float64(n))
	if coreN > n {
		coreN = n
	}
	if coreN >= 2 {
		genCore(coo, rng, 0, coreN, p.Core, p.ExtraDensity)
	}
	// Small blocks: sizes 1..6, strongly connected via internal rings.
	i := coreN
	blocks := p.Blocks
	if blocks < 1 {
		blocks = 1
	}
	avg := float64(n-coreN) / float64(blocks)
	for i < n {
		size := 1
		if avg > 1 {
			size = 1 + rng.Intn(int(2*avg))
		}
		if i+size > n {
			size = n - i
		}
		for k := 0; k < size; k++ {
			next := i + (k+1)%size
			if next != i+k {
				coo.Add(next, i+k, 0.5+rng.Float64())
			}
		}
		i += size
	}
	// Sparse strictly upper coupling, banded so it contributes little fill
	// inside the diagonal blocks while still coupling consecutive BTF
	// blocks (upper block triangular entries).
	for e := 0; e < n; e++ {
		r := rng.Intn(n)
		c := r + 1 + rng.Intn(12)
		if c < n {
			coo.Add(r, c, 0.3*rng.NormFloat64())
		}
	}
	return coo.ToCSC(false)
}

// genCore stamps a strongly connected core of the requested kind over rows
// [lo, lo+size).
func genCore(coo *sparse.COO, rng *rand.Rand, lo, size int, kind CoreKind, extra float64) {
	// A ring makes the block strongly connected regardless of kind.
	for k := 0; k < size; k++ {
		coo.Add(lo+(k+1)%size, lo+k, 1+0.5*rng.Float64())
	}
	switch kind {
	case CoreLadder:
		// Ladder rungs and sparse stamps: low fill under AMD.
		for k := 0; k+7 < size; k++ {
			if rng.Float64() < 0.7 {
				coo.Add(lo+k, lo+k+7, rng.NormFloat64())
				coo.Add(lo+k+7, lo+k, rng.NormFloat64())
			}
		}
	case CoreGrid:
		side := int(math.Sqrt(float64(size)))
		if side < 2 {
			side = 2
		}
		id := func(i, j int) int { return lo + (i*side+j)%size }
		for i := 0; i < side; i++ {
			for j := 0; j < side; j++ {
				if i > 0 {
					coo.Add(id(i, j), id(i-1, j), -1+0.1*rng.NormFloat64())
				}
				if j > 0 {
					coo.Add(id(i, j), id(i, j-1), -1+0.1*rng.NormFloat64())
				}
				if i < side-1 {
					coo.Add(id(i, j), id(i+1, j), -1+0.1*rng.NormFloat64())
				}
				if j < side-1 {
					coo.Add(id(i, j), id(i, j+1), -1+0.1*rng.NormFloat64())
				}
			}
		}
	case CoreGrid3D:
		side := int(math.Cbrt(float64(size)))
		if side < 2 {
			side = 2
		}
		id := func(i, j, k int) int { return lo + ((i*side+j)*side+k)%size }
		for i := 0; i < side; i++ {
			for j := 0; j < side; j++ {
				for k := 0; k < side; k++ {
					if i > 0 {
						coo.Add(id(i, j, k), id(i-1, j, k), -1+0.1*rng.NormFloat64())
					}
					if j > 0 {
						coo.Add(id(i, j, k), id(i, j-1, k), -1+0.1*rng.NormFloat64())
					}
					if k > 0 {
						coo.Add(id(i, j, k), id(i, j, k-1), -1+0.1*rng.NormFloat64())
					}
					if i < side-1 {
						coo.Add(id(i, j, k), id(i+1, j, k), -1+0.1*rng.NormFloat64())
					}
					if j < side-1 {
						coo.Add(id(i, j, k), id(i, j+1, k), -1+0.1*rng.NormFloat64())
					}
					if k < side-1 {
						coo.Add(id(i, j, k), id(i, j, k+1), -1+0.1*rng.NormFloat64())
					}
				}
			}
		}
	}
	// Extra stamps stay within a local band: real circuit matrices have
	// strong locality, which is what keeps their fill-in density low.
	const band = 12
	stamp := func(k int) {
		d := 1 + rng.Intn(band)
		i := k - d
		if rng.Float64() < 0.5 {
			i = k + d
		}
		if i >= 0 && i < size {
			coo.Add(lo+i, lo+k, 0.3*rng.NormFloat64())
		}
	}
	for k := 0; k < size; k++ {
		for e := 0; e < int(extra); e++ {
			stamp(k)
		}
		if f := extra - math.Floor(extra); rng.Float64() < f {
			stamp(k)
		}
	}
}

// Mesh2D builds the k×k 5-point stencil matrix with a slight unsymmetric
// perturbation (a 2D PDE discretization, Table II class).
func Mesh2D(k int, seed int64) *sparse.CSC {
	rng := rand.New(rand.NewSource(seed))
	n := k * k
	coo := sparse.NewCOO(n, n, 5*n)
	id := func(i, j int) int { return i*k + j }
	for i := 0; i < k; i++ {
		for j := 0; j < k; j++ {
			v := id(i, j)
			coo.Add(v, v, 4+0.1*rng.Float64())
			if i > 0 {
				coo.Add(v, id(i-1, j), -1+0.05*rng.NormFloat64())
			}
			if i < k-1 {
				coo.Add(v, id(i+1, j), -1+0.05*rng.NormFloat64())
			}
			if j > 0 {
				coo.Add(v, id(i, j-1), -1+0.05*rng.NormFloat64())
			}
			if j < k-1 {
				coo.Add(v, id(i, j+1), -1+0.05*rng.NormFloat64())
			}
		}
	}
	return coo.ToCSC(false)
}

// Mesh3D builds the k×k×k 7-point stencil matrix (3D finite differences).
func Mesh3D(k int, seed int64) *sparse.CSC {
	rng := rand.New(rand.NewSource(seed))
	n := k * k * k
	coo := sparse.NewCOO(n, n, 7*n)
	id := func(i, j, l int) int { return (i*k+j)*k + l }
	for i := 0; i < k; i++ {
		for j := 0; j < k; j++ {
			for l := 0; l < k; l++ {
				v := id(i, j, l)
				coo.Add(v, v, 6+0.1*rng.Float64())
				if i > 0 {
					coo.Add(v, id(i-1, j, l), -1+0.05*rng.NormFloat64())
				}
				if i < k-1 {
					coo.Add(v, id(i+1, j, l), -1+0.05*rng.NormFloat64())
				}
				if j > 0 {
					coo.Add(v, id(i, j-1, l), -1+0.05*rng.NormFloat64())
				}
				if j < k-1 {
					coo.Add(v, id(i, j+1, l), -1+0.05*rng.NormFloat64())
				}
				if l > 0 {
					coo.Add(v, id(i, j, l-1), -1+0.05*rng.NormFloat64())
				}
				if l < k-1 {
					coo.Add(v, id(i, j, l+1), -1+0.05*rng.NormFloat64())
				}
			}
		}
	}
	return coo.ToCSC(false)
}

// PowerGrid builds a transmission-network-like matrix: 100% of rows in
// small BTF blocks (the RS_b39c30 / Power0 class of Table I).
func PowerGrid(n int, blocks int, seed int64) *sparse.CSC {
	return Circuit(CircuitParams{
		N:      n,
		BTFPct: 100,
		Blocks: blocks,
		Seed:   seed,
	})
}

// TransientStep produces the t-th matrix of a Xyce-style transient
// sequence: identical pattern to base, values modulated deterministically
// (device states change every Newton iteration while the connectivity is
// fixed). Diagonal entries stay dominant so a fixed pivot sequence remains
// numerically viable, matching the refactorization workflow.
func TransientStep(base *sparse.CSC, t int, seed int64) *sparse.CSC {
	rng := rand.New(rand.NewSource(seed + int64(t)*1000003))
	out := base.Clone()
	phase := float64(t) * 0.05
	for j := 0; j < out.N; j++ {
		for p := out.Colptr[j]; p < out.Colptr[j+1]; p++ {
			f := 1 + 0.4*math.Sin(phase+float64(j)*0.01) + 0.1*rng.NormFloat64()
			if out.Rowidx[p] == j {
				// Keep diagonals bounded away from zero.
				if f < 0.3 {
					f = 0.3
				}
			}
			out.Values[p] *= f
		}
	}
	return out
}

// PerturbColumns produces a transient step that touches only the listed
// columns: the returned matrix has base's pattern, values in cols modulated
// with TransientStep's stamping semantics (diagonals bounded away from
// zero), and every other column bitwise identical to base — the localized
// device-stamp perturbation the incremental refactorization path is built
// for. Steps generated from one base with the same cols differ from each
// other only inside cols.
func PerturbColumns(base *sparse.CSC, cols []int, t int, seed int64) *sparse.CSC {
	rng := rand.New(rand.NewSource(seed + int64(t)*1000003))
	out := base.Clone()
	phase := float64(t) * 0.05
	for _, j := range cols {
		for p := out.Colptr[j]; p < out.Colptr[j+1]; p++ {
			f := 1 + 0.4*math.Sin(phase+float64(j)*0.01) + 0.1*rng.NormFloat64()
			if out.Rowidx[p] == j && f < 0.3 {
				f = 0.3
			}
			out.Values[p] *= f
		}
	}
	return out
}

// ChangeSet returns a deterministic set of max(1, frac·n) column indices.
// clustered picks a contiguous run at a seed-dependent offset — the shape
// of a localized device perturbation, which graph-locality-preserving
// orderings keep confined to few blocks — while scattered draws a uniform
// subset, the adversarial spread for change-set-aware refactorization.
func ChangeSet(n int, frac float64, seed int64, clustered bool) []int {
	k := int(frac*float64(n) + 0.5)
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	rng := rand.New(rand.NewSource(seed))
	cols := make([]int, k)
	if clustered {
		start := rng.Intn(n - k + 1)
		for i := range cols {
			cols[i] = start + i
		}
		return cols
	}
	copy(cols, rng.Perm(n)[:k])
	return cols
}
