package faultinject

import (
	"testing"
	"time"
)

// TestNilInjectorZeroCost pins the disabled state's contract: every hook is
// nil-safe and allocation-free, so production paths can consult a nil
// injector unconditionally.
func TestNilInjectorZeroCost(t *testing.T) {
	var in *Injector
	if avg := testing.AllocsPerRun(100, func() {
		if in.PivotFail(SweepFactor, 3) {
			t.Error("nil injector fired PivotFail")
		}
		if in.KernelNaN(SweepND, 0) {
			t.Error("nil injector fired KernelNaN")
		}
		in.WorkerPanic(SweepSolve, 1)
		in.StallPoint(SweepRefactor, 2)
		in.Disarm(PointPivotFail)
		in.DisarmAll()
		if in.Fired(PointStall) != 0 {
			t.Error("nil injector reports fires")
		}
	}); avg > 0 {
		t.Errorf("nil-injector hooks allocate %.1f objects/run, want 0", avg)
	}
}

func TestRuleMatching(t *testing.T) {
	in := New()

	// Wildcard: fires for every sweep and block.
	in.Arm(PointPivotFail, Any())
	if !in.PivotFail(SweepFactor, 0) || !in.PivotFail(SweepPartial, 17) {
		t.Fatal("wildcard rule did not fire")
	}

	// Sweep targeting: SweepSet gates the zero Sweep value correctly.
	in.Arm(PointPivotFail, Rule{Sweep: SweepRefactor, SweepSet: true, Block: -1, Worker: -1})
	if in.PivotFail(SweepFactor, 0) {
		t.Error("sweep-targeted rule fired for wrong sweep")
	}
	if !in.PivotFail(SweepRefactor, 0) {
		t.Error("sweep-targeted rule did not fire for its sweep")
	}

	// Block targeting, with block 0 as a real id (not a wildcard).
	in.Arm(PointKernelNaN, Rule{Block: 0, Worker: -1})
	if in.KernelNaN(SweepFactor, 5) {
		t.Error("block-0 rule fired for block 5")
	}
	if !in.KernelNaN(SweepFactor, 0) {
		t.Error("block-0 rule did not fire for block 0")
	}

	// Worker targeting on panic points.
	in.Arm(PointWorkerPanic, Rule{Block: -1, Worker: 2})
	in.WorkerPanic(SweepSolve, 1) // must not panic
	func() {
		defer func() {
			if r := recover(); r != ErrInjectedPanic {
				t.Errorf("worker-2 panic carried %v, want ErrInjectedPanic", r)
			}
		}()
		in.WorkerPanic(SweepSolve, 2)
		t.Error("worker-2 rule did not panic")
	}()

	// Disarm stops matching without touching other points.
	in.Disarm(PointPivotFail)
	if in.PivotFail(SweepRefactor, 0) {
		t.Error("disarmed point fired")
	}
	if !in.KernelNaN(SweepFactor, 0) {
		t.Error("Disarm of one point disturbed another")
	}
	in.DisarmAll()
	if in.KernelNaN(SweepFactor, 0) {
		t.Error("DisarmAll left a rule armed")
	}
}

func TestTimesCapIsExact(t *testing.T) {
	in := New()
	in.Arm(PointPivotFail, AnyTimes(3))
	fired := 0
	for i := 0; i < 10; i++ {
		if in.PivotFail(SweepND, i) {
			fired++
		}
	}
	if fired != 3 {
		t.Fatalf("Times=3 rule fired %d times", fired)
	}
	if got := in.Fired(PointPivotFail); got != 3 {
		t.Fatalf("Fired reports %d, want 3", got)
	}
	// Re-arming resets the per-rule cap but not the cumulative counter.
	in.Arm(PointPivotFail, AnyTimes(1))
	if !in.PivotFail(SweepND, 0) {
		t.Fatal("re-armed rule did not fire")
	}
	if got := in.Fired(PointPivotFail); got != 4 {
		t.Fatalf("cumulative Fired reports %d, want 4", got)
	}
}

func TestStallRuleSleeps(t *testing.T) {
	in := New()
	in.Arm(PointStall, Rule{Block: -1, Worker: -1, Times: 1, Stall: 20 * time.Millisecond})
	t0 := time.Now()
	in.StallPoint(SweepSolve, 0)
	if d := time.Since(t0); d < 15*time.Millisecond {
		t.Fatalf("stall slept %v, want ≥20ms", d)
	}
	// Times cap exhausted: no further sleep.
	t0 = time.Now()
	in.StallPoint(SweepSolve, 0)
	if d := time.Since(t0); d > 10*time.Millisecond {
		t.Fatalf("exhausted stall rule still slept %v", d)
	}
}
