// Package faultinject is the deterministic fault-injection harness of the
// numeric engine's chaos test suite. An *Injector is threaded through
// core.Options into every parallel sweep; each sweep consults the injector
// at a small set of fixed points (pivot selection, kernel input values,
// worker entry, signal publication) and, when an armed rule matches, the
// point fires: a forced pivot failure, an injected NaN, a worker panic, or
// a stalled signal publication.
//
// The package follows the same zero-cost-when-disabled discipline as
// internal/trace: a nil *Injector is the disabled state, every hook method
// has a nil receiver check as its first instruction, and the hot paths pay
// one pointer test and nothing else (no allocation, no atomic, no clock).
// Rules are immutable once armed and matching uses atomics only, so armed
// injectors are safe for use from every worker goroutine under -race.
package faultinject

import (
	"errors"
	"sync/atomic"
	"time"
)

// Sweep identifies which parallel sweep is consulting the injector, so a
// rule can target one sweep's workers without disturbing the others.
type Sweep uint8

const (
	// SweepFactor is the unified fresh-factorization scheduler (the
	// fine-BTF partition workers and the per-ND-block launch goroutines).
	SweepFactor Sweep = iota
	// SweepND is a fine-ND block's cooperative worker team (both the fresh
	// factorization and in-place refactorization schedules).
	SweepND
	// SweepRefactor is the unified full-refactorization scheduler.
	SweepRefactor
	// SweepPartial is the incremental (RefactorPartial/RefactorAuto) sweep.
	SweepPartial
	// SweepSolve is the dependency-scheduled parallel block solve.
	SweepSolve
	numSweeps
)

// Point identifies an injection point class.
type Point uint8

const (
	// PointPivotFail forces the consulted kernel call to report a pivot
	// failure (gp.ErrSingular at the call site), exercising the per-block
	// re-pivoting fallbacks and, when those are also forced to fail, the
	// poisoned-numeric error path.
	PointPivotFail Point = iota
	// PointKernelNaN poisons one input value of the consulted block with
	// NaN before its kernel runs: silent numeric corruption, detectable
	// only by the health layer.
	PointKernelNaN
	// PointWorkerPanic panics the consulting worker goroutine with
	// ErrInjectedPanic, exercising the panic-isolation layer.
	PointWorkerPanic
	// PointStall sleeps the consulting worker just before it publishes a
	// completion signal, exercising the point-to-point wait paths (and the
	// CI deadlock watchdog) without changing any result.
	PointStall
	numPoints
)

// ErrInjectedPanic is the value injected worker panics carry.
var ErrInjectedPanic = errors.New("faultinject: injected worker panic")

// Rule arms one injection point. The zero value matches every consultation
// of the point and fires without limit.
type Rule struct {
	// Sweep restricts the rule to one sweep's consultations when AnyBlock
	// and worker targeting are not enough. It is only consulted when
	// SweepSet is true (the zero Sweep value is a real sweep).
	Sweep    Sweep
	SweepSet bool
	// Block restricts the rule to one coarse block id; negative matches
	// every block. Points consulted without a block identity (worker entry)
	// ignore it.
	Block int
	// Worker restricts the rule to one worker index; negative matches every
	// worker. Points consulted without a worker identity ignore it.
	Worker int
	// Times caps how often the rule fires; 0 is unlimited. Deterministic:
	// the cap is enforced with one atomic counter, so exactly Times
	// consultations fire (in program order per consulting goroutine).
	Times int64
	// Stall is the sleep duration of PointStall rules.
	Stall time.Duration
}

type armedRule struct {
	Rule
	fired atomic.Int64
}

// Injector holds at most one armed rule per injection point. The zero
// value is valid and fully disarmed; a nil *Injector is the zero-cost
// disabled state every production path runs with.
type Injector struct {
	rules  [numPoints]atomic.Pointer[armedRule]
	counts [numPoints]atomic.Int64
}

// New returns a disarmed injector.
func New() *Injector { return &Injector{} }

// Arm installs r at point p, replacing any previous rule (its fire count
// starts at zero). Arming while a sweep is consulting the point is safe.
// Block/Worker use negative as the wildcard (0 is a real id); use Any()
// or AnyTimes() for match-everything rules.
func (in *Injector) Arm(p Point, r Rule) {
	in.rules[p].Store(&armedRule{Rule: r})
}

// Any is the wildcard Rule: every consultation of the point matches.
func Any() Rule { return Rule{Block: -1, Worker: -1} }

// AnyTimes is the wildcard Rule firing at most n times.
func AnyTimes(n int64) Rule { return Rule{Block: -1, Worker: -1, Times: n} }

// Disarm removes the rule at point p.
func (in *Injector) Disarm(p Point) {
	if in == nil {
		return
	}
	in.rules[p].Store(nil)
}

// DisarmAll removes every rule.
func (in *Injector) DisarmAll() {
	if in == nil {
		return
	}
	for p := Point(0); p < numPoints; p++ {
		in.rules[p].Store(nil)
	}
}

// Fired reports how many times point p has fired since the injector was
// created (across all rules armed at it).
func (in *Injector) Fired(p Point) int64 {
	if in == nil {
		return 0
	}
	return in.counts[p].Load()
}

// fire consults point p. It returns the matched rule when the point fires.
func (in *Injector) fire(p Point, s Sweep, block, worker int) *armedRule {
	ar := in.rules[p].Load()
	if ar == nil {
		return nil
	}
	if ar.SweepSet && ar.Sweep != s {
		return nil
	}
	if ar.Block >= 0 && block >= 0 && ar.Block != block {
		return nil
	}
	if ar.Worker >= 0 && worker >= 0 && ar.Worker != worker {
		return nil
	}
	if ar.Times > 0 && ar.fired.Add(1) > ar.Times {
		return nil
	}
	in.counts[p].Add(1)
	return ar
}

// PivotFail reports whether the consulted kernel call must fail as if no
// acceptable pivot existed. Nil-safe; zero cost when disabled.
func (in *Injector) PivotFail(s Sweep, block int) bool {
	if in == nil {
		return false
	}
	return in.fire(PointPivotFail, s, block, -1) != nil
}

// KernelNaN reports whether the consulted block's input must be poisoned
// with NaN before its kernel runs. Nil-safe; zero cost when disabled.
func (in *Injector) KernelNaN(s Sweep, block int) bool {
	if in == nil {
		return false
	}
	return in.fire(PointKernelNaN, s, block, -1) != nil
}

// WorkerPanic panics with ErrInjectedPanic when an armed rule matches the
// consulting worker. Nil-safe; zero cost when disabled.
func (in *Injector) WorkerPanic(s Sweep, worker int) {
	if in == nil {
		return
	}
	if in.fire(PointWorkerPanic, s, -1, worker) != nil {
		panic(ErrInjectedPanic)
	}
}

// StallPoint sleeps the consulting worker for the armed rule's Stall
// duration just before it publishes a completion signal. Nil-safe; zero
// cost when disabled.
func (in *Injector) StallPoint(s Sweep, block int) {
	if in == nil {
		return
	}
	if ar := in.fire(PointStall, s, block, -1); ar != nil && ar.Stall > 0 {
		time.Sleep(ar.Stall)
	}
}
