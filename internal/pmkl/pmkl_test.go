package pmkl

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/sparse"
)

func randNonsingular(rng *rand.Rand, n int, density float64) *sparse.CSC {
	coo := sparse.NewCOO(n, n, int(density*float64(n*n))+n)
	for i := 0; i < n; i++ {
		coo.Add(i, i, 4+rng.Float64())
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j && rng.Float64() < density {
				coo.Add(i, j, rng.NormFloat64())
			}
		}
	}
	return coo.ToCSC(false)
}

func grid2D(k int) *sparse.CSC {
	n := k * k
	coo := sparse.NewCOO(n, n, 5*n)
	id := func(i, j int) int { return i*k + j }
	for i := 0; i < k; i++ {
		for j := 0; j < k; j++ {
			v := id(i, j)
			coo.Add(v, v, 4)
			if i > 0 {
				coo.Add(v, id(i-1, j), -1)
			}
			if i < k-1 {
				coo.Add(v, id(i+1, j), -1)
			}
			if j > 0 {
				coo.Add(v, id(i, j-1), -1)
			}
			if j < k-1 {
				coo.Add(v, id(i, j+1), -1)
			}
		}
	}
	return coo.ToCSC(false)
}

func solveCheck(t *testing.T, a *sparse.CSC, num *Numeric, tol float64) {
	t.Helper()
	rng := rand.New(rand.NewSource(42))
	x := make([]float64, a.N)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	b := make([]float64, a.N)
	a.MulVec(b, x)
	num.Solve(b)
	for i := range x {
		if math.Abs(b[i]-x[i]) > tol*(1+math.Abs(x[i])) {
			t.Fatalf("x[%d] = %v, want %v", i, b[i], x[i])
		}
	}
}

func TestFactorSolveRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := randNonsingular(rng, 80, 0.08)
	num, err := FactorDirect(a, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	solveCheck(t, a, num, 1e-7)
}

func TestFactorSolveGrid(t *testing.T) {
	a := grid2D(14)
	num, err := FactorDirect(a, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	solveCheck(t, a, num, 1e-8)
	if num.Sym.NumSupernodes() >= a.N {
		t.Error("expected at least some multi-column supernodes on a mesh")
	}
}

func TestParallelMatchesSerial(t *testing.T) {
	a := grid2D(12)
	serialOpts := DefaultOptions()
	serial, err := FactorDirect(a, serialOpts)
	if err != nil {
		t.Fatal(err)
	}
	parOpts := DefaultOptions()
	parOpts.Threads = 4
	par, err := FactorDirect(a, parOpts)
	if err != nil {
		t.Fatal(err)
	}
	if serial.L.Nnz() != par.L.Nnz() || serial.U.Nnz() != par.U.Nnz() {
		t.Fatal("parallel and serial factor sizes differ")
	}
	for i := range serial.L.Values {
		if math.Abs(serial.L.Values[i]-par.L.Values[i]) > 1e-12 {
			t.Fatalf("L value %d differs: %v vs %v", i, serial.L.Values[i], par.L.Values[i])
		}
	}
	for i := range serial.U.Values {
		if math.Abs(serial.U.Values[i]-par.U.Values[i]) > 1e-12 {
			t.Fatalf("U value %d differs: %v vs %v", i, serial.U.Values[i], par.U.Values[i])
		}
	}
}

func TestSolveRandomProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(90)
		a := randNonsingular(rng, n, 0.1)
		num, err := FactorDirect(a, DefaultOptions())
		if err != nil {
			return false
		}
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		b := make([]float64, n)
		a.MulVec(b, x)
		num.Solve(b)
		for i := range x {
			if math.Abs(b[i]-x[i]) > 1e-6*(1+math.Abs(x[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestSupernodeStructure(t *testing.T) {
	a := grid2D(10)
	sym, err := Analyze(a, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Supernode boundaries must partition 0..n.
	if sym.Super[0] != 0 || sym.Super[len(sym.Super)-1] != a.N {
		t.Fatalf("bad supernode boundaries: %v", sym.Super)
	}
	for s := 0; s+1 < len(sym.Super); s++ {
		if sym.Super[s] >= sym.Super[s+1] {
			t.Fatal("empty supernode")
		}
	}
	// Every level's supernodes must be scheduled exactly once.
	seen := make([]bool, sym.NumSupernodes())
	for _, lvl := range sym.SnByLevel {
		for _, s := range lvl {
			if seen[s] {
				t.Fatal("supernode scheduled twice")
			}
			seen[s] = true
		}
	}
	for s, ok := range seen {
		if !ok {
			t.Fatalf("supernode %d never scheduled", s)
		}
	}
}

func TestStaticPatternIsSuperset(t *testing.T) {
	// The static symmetric-union pattern must contain the permuted matrix.
	rng := rand.New(rand.NewSource(3))
	a := randNonsingular(rng, 50, 0.1)
	sym, err := Analyze(a, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	hasEntry := func(m *sparse.CSC, i, j int) bool {
		for p := m.Colptr[j]; p < m.Colptr[j+1]; p++ {
			if m.Rowidx[p] == i {
				return true
			}
		}
		return false
	}
	b := a.Permute(sym.RowPerm, sym.ColPerm)
	for j := 0; j < b.N; j++ {
		for p := b.Colptr[j]; p < b.Colptr[j+1]; p++ {
			i := b.Rowidx[p]
			if i >= j {
				if !hasEntry(sym.LPat, i, j) {
					t.Fatalf("L pattern misses (%d,%d)", i, j)
				}
			} else if !hasEntry(sym.UPat, i, j) {
				t.Fatalf("U pattern misses (%d,%d)", i, j)
			}
		}
	}
}

func TestNnzLULargerThanKLUStyleOnCircuit(t *testing.T) {
	// A BTF-rich matrix: PMKL's |L+U| should be at least |A| (it factors
	// everything), exercising the Table I contrast.
	rng := rand.New(rand.NewSource(4))
	n := 120
	coo := sparse.NewCOO(n, n, 4*n)
	for i := 0; i < n; i++ {
		coo.Add(i, i, 5)
	}
	for i := 0; i+1 < n; i += 2 {
		coo.Add(i, i+1, rng.NormFloat64())
		coo.Add(i+1, i, rng.NormFloat64())
	}
	for e := 0; e < n/2; e++ {
		i, j := rng.Intn(n), rng.Intn(n)
		if i < j {
			coo.Add(i, j, rng.NormFloat64())
		}
	}
	a := coo.ToCSC(false)
	num, err := FactorDirect(a, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if num.NnzLU() < a.Nnz() {
		t.Fatalf("PMKL |L+U| = %d < |A| = %d; the union pattern should cover A", num.NnzLU(), a.Nnz())
	}
	solveCheck(t, a, num, 1e-6)
}

func TestRefactor(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := randNonsingular(rng, 60, 0.08)
	num, err := FactorDirect(a, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	b := a.Clone()
	for i := range b.Values {
		b.Values[i] *= 1 + 0.1*rng.Float64()
	}
	if err := num.Refactor(b); err != nil {
		t.Fatal(err)
	}
	solveCheck(t, b, num, 1e-6)
}

func TestRectangularRejected(t *testing.T) {
	if _, err := Analyze(sparse.NewCSC(2, 3, 0), DefaultOptions()); err == nil {
		t.Fatal("expected dimension error")
	}
}
