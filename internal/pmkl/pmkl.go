// Package pmkl implements the supernodal baseline solver standing in for
// Intel MKL Pardiso ("PMKL" in the paper). It mirrors the algorithmic
// choices the paper contrasts Basker against:
//
//   - no block triangular form: the whole matrix is factored at once;
//   - static pivoting: a weighted matching moves large entries to the
//     diagonal, then no numerical row exchanges happen during the numeric
//     phase (tiny pivots are perturbed, as Pardiso does);
//   - symmetric-union fill: the factor pattern is the Cholesky pattern of
//     A+Aᵀ under an AMD ordering, computed once symbolically — this is why
//     PMKL's |L+U| is much larger than KLU/Basker's on low fill-in circuit
//     matrices (Table I) and why it wins on high fill-in mesh matrices;
//   - supernodes: chains of columns with identical pattern are factored as
//     dense panels with dense kernels;
//   - etree parallelism: independent supernodes run concurrently, level by
//     level.
package pmkl

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/dense"
	"repro/internal/etree"
	"repro/internal/order/amd"
	"repro/internal/order/matching"
	"repro/internal/order/nd"
	"repro/internal/sparse"
)

// Options configures the solver.
type Options struct {
	// Threads is the number of worker goroutines for the numeric phase
	// (defaults to 1).
	Threads int
	// SupernodeMax caps supernode width (default 32).
	SupernodeMax int
	// PerturbRel is the relative static-pivot perturbation threshold:
	// pivots below PerturbRel*max|A| are bumped (default 1e-10).
	PerturbRel float64
}

// DefaultOptions returns the defaults described above.
func DefaultOptions() Options {
	return Options{Threads: 1, SupernodeMax: 32, PerturbRel: 1e-10}
}

func (o Options) threads() int {
	if o.Threads < 1 {
		return 1
	}
	return o.Threads
}

func (o Options) snmax() int {
	if o.SupernodeMax < 1 {
		return 32
	}
	return o.SupernodeMax
}

func (o Options) perturb() float64 {
	if o.PerturbRel <= 0 {
		return 1e-10
	}
	return o.PerturbRel
}

// Symbolic holds the static analysis: orderings, factor patterns,
// supernodes, and the level schedule.
type Symbolic struct {
	N       int
	RowPerm []int // new-to-old (matching ∘ AMD)
	ColPerm []int // new-to-old (AMD)
	Parent  []int // etree of the permuted symmetric pattern

	// LPat/UPat are the static factor patterns (values unused), columns
	// sorted; LPat includes the diagonal first per column, UPat has the
	// diagonal last per column.
	LPat, UPat *sparse.CSC

	// Super[s]..Super[s+1] are the columns of supernode s.
	Super []int
	// SnByLevel schedules supernodes: all supernodes in level l depend only
	// on lower levels.
	SnByLevel [][]int

	Opts Options
}

// NumSupernodes reports the supernode count.
func (s *Symbolic) NumSupernodes() int { return len(s.Super) - 1 }

// NnzLU reports the static |L+U| (both diagonals counted once).
func (s *Symbolic) NnzLU() int { return s.LPat.Nnz() + s.UPat.Nnz() - s.N }

// Numeric holds factor values aligned with the symbolic patterns.
type Numeric struct {
	Sym  *Symbolic
	L, U *sparse.CSC
	// SnSeconds records each supernode's compute time for the simulated
	// level-scheduled makespan (DESIGN.md hardware substitution).
	SnSeconds []float64
}

// SimulatedSeconds estimates the numeric-phase makespan on `threads` ideal
// cores from the recorded per-supernode durations, with an event-driven
// list scheduling over the supernodal elimination tree. It captures
// Pardiso's parallelism levels: (a) independent subtrees run concurrently
// (a supernode becomes ready only when its children finished), (b) large
// supernode panels are internally parallel (threaded BLAS), modelled by
// shrinking a task's duration with its panel area, and (c) every supernode
// task pays a fixed dispatch overhead (BLAS call setup + task scheduling,
// calibrated at 2µs — the constant that makes real supernodal solvers lose
// on circuit matrices whose supernodes are one or two columns wide; our
// plain-Go loops lack it, so the simulator restores it; see DESIGN.md).
// This is the hardware-substitution timing model of DESIGN.md.
func (num *Numeric) SimulatedSeconds(threads int) float64 {
	if threads < 1 {
		threads = 1
	}
	sym := num.Sym
	ns := sym.NumSupernodes()
	if ns == 0 {
		return 0
	}
	snOf := make([]int, sym.N)
	for s := 0; s < ns; s++ {
		for c := sym.Super[s]; c < sym.Super[s+1]; c++ {
			snOf[c] = s
		}
	}
	// Effective (BLAS-scaled) duration per supernode.
	eff := make([]float64, ns)
	for s := 0; s < ns; s++ {
		c0, c1 := sym.Super[s], sym.Super[s+1]
		rows := sym.LPat.Colptr[c0+1] - sym.LPat.Colptr[c0]
		par := 1 + rows*(c1-c0)/2048
		if par > threads {
			par = threads
		}
		const taskOverhead = 2e-6 // BLAS dispatch + task scheduling
		eff[s] = num.SnSeconds[s]/float64(par) + taskOverhead
	}
	parent := make([]int, ns)
	pending := make([]int, ns)
	readyAt := make([]float64, ns)
	for s := 0; s < ns; s++ {
		parent[s] = -1
		if par := sym.Parent[sym.Super[s+1]-1]; par != -1 {
			parent[s] = snOf[par]
			pending[snOf[par]]++
		}
	}
	ready := make([]int, 0, ns)
	for s := 0; s < ns; s++ {
		if pending[s] == 0 {
			ready = append(ready, s)
		}
	}
	workers := make([]float64, threads)
	makespan := 0.0
	for done := 0; done < ns; done++ {
		if len(ready) == 0 {
			break
		}
		best := 0
		for i := 1; i < len(ready); i++ {
			if eff[ready[i]] > eff[ready[best]] {
				best = i
			}
		}
		s := ready[best]
		ready[best] = ready[len(ready)-1]
		ready = ready[:len(ready)-1]
		w := 0
		for i := 1; i < threads; i++ {
			if workers[i] < workers[w] {
				w = i
			}
		}
		startT := workers[w]
		if readyAt[s] > startT {
			startT = readyAt[s]
		}
		fin := startT + eff[s]
		workers[w] = fin
		if fin > makespan {
			makespan = fin
		}
		if par := parent[s]; par != -1 {
			if fin > readyAt[par] {
				readyAt[par] = fin
			}
			pending[par]--
			if pending[par] == 0 {
				ready = append(ready, par)
			}
		}
	}
	return makespan
}

// Analyze orders the matrix and computes the static factor structure.
func Analyze(a *sparse.CSC, opts Options) (*Symbolic, error) {
	if a.M != a.N {
		return nil, fmt.Errorf("pmkl: matrix must be square, got %d×%d", a.M, a.N)
	}
	n := a.N
	match, err := matching.Bottleneck(a)
	if err != nil {
		return nil, fmt.Errorf("pmkl: matching: %w", err)
	}
	b1 := a.Permute(match.RowPerm, nil)
	// Fill-reducing ordering: nested dissection with AMD inside the parts,
	// exactly as Pardiso uses METIS — ND is what gives the supernodal
	// elimination tree its parallelism. Small matrices fall back to AMD.
	p := orderNDAMD(b1)
	rowPerm := make([]int, n)
	for k := 0; k < n; k++ {
		rowPerm[k] = match.RowPerm[p[k]]
	}
	sym := &Symbolic{N: n, RowPerm: rowPerm, ColPerm: p, Opts: opts}
	b := b1.Permute(p, p)

	// Static symbolic factorization of the symmetric union pattern.
	g := b.SymbolicUnion()
	sym.Parent = etree.Symmetric(g)
	lpat := symbolicL(g, sym.Parent)
	sym.LPat = lpat
	sym.UPat = upperFromLower(lpat)

	// Supernodes: maximal chains j -> j+1 with parent[j] = j+1 and nested
	// equal pattern (|L(:,j+1)| = |L(:,j)| - 1), capped at SupernodeMax.
	snmax := opts.snmax()
	sym.Super = []int{0}
	for j := 1; j < n; j++ {
		c0 := sym.Super[len(sym.Super)-1]
		colLen := func(c int) int { return lpat.Colptr[c+1] - lpat.Colptr[c] }
		if j-c0 < snmax && sym.Parent[j-1] == j && colLen(j) == colLen(j-1)-1 {
			continue
		}
		sym.Super = append(sym.Super, j)
	}
	sym.Super = append(sym.Super, n)

	// Supernodal etree levels.
	ns := len(sym.Super) - 1
	snOf := make([]int, n)
	for s := 0; s < ns; s++ {
		for c := sym.Super[s]; c < sym.Super[s+1]; c++ {
			snOf[c] = s
		}
	}
	snParent := make([]int, ns)
	for s := 0; s < ns; s++ {
		last := sym.Super[s+1] - 1
		if par := sym.Parent[last]; par != -1 {
			snParent[s] = snOf[par]
		} else {
			snParent[s] = -1
		}
	}
	_, sym.SnByLevel = etree.LevelSets(snParent)
	return sym, nil
}

// orderNDAMD computes the PMKL fill-reducing ordering: a nested-dissection
// tree (32 leaves) with an AMD ordering composed inside every tree block.
func orderNDAMD(b1 *sparse.CSC) []int {
	n := b1.N
	if n < 512 {
		return amd.Order(b1)
	}
	leaves := 32
	for leaves*32 > n && leaves > 2 {
		leaves /= 2
	}
	tree, err := nd.Compute(b1, leaves)
	if err != nil {
		return amd.Order(b1)
	}
	p := append([]int(nil), tree.Perm...)
	d2 := b1.Permute(tree.Perm, tree.Perm)
	for blk := 0; blk < tree.NumBlocks(); blk++ {
		b0, b1e := tree.BlockPtr[blk], tree.BlockPtr[blk+1]
		if b1e-b0 < 3 {
			continue
		}
		sub := d2.ExtractBlock(b0, b1e, b0, b1e)
		local := amd.Order(sub)
		for k := 0; k < b1e-b0; k++ {
			p[b0+k] = tree.Perm[b0+local[k]]
		}
	}
	return p
}

// symbolicL computes the full Cholesky-style pattern of L for the symmetric
// pattern g with the given etree, columns sorted, diagonal included.
func symbolicL(g *sparse.CSC, parent []int) *sparse.CSC {
	n := g.N
	counts := etree.ColCounts(g, parent)
	l := &sparse.CSC{M: n, N: n, Colptr: make([]int, n+1)}
	for j := 0; j < n; j++ {
		l.Colptr[j+1] = l.Colptr[j] + counts[j]
	}
	l.Rowidx = make([]int, l.Colptr[n])
	l.Values = make([]float64, l.Colptr[n])
	next := make([]int, n)
	mark := make([]int, n)
	for j := 0; j < n; j++ {
		next[j] = l.Colptr[j]
		mark[j] = -1
		// Diagonal first.
		l.Rowidx[next[j]] = j
		next[j]++
		mark[j] = j
	}
	// Row subtrees: row i appears in column j for every j on the path from
	// each k (g(i,k) != 0, k < i) to i; traversing i ascending keeps each
	// column's rows sorted.
	for i := 0; i < n; i++ {
		for p := g.Colptr[i]; p < g.Colptr[i+1]; p++ {
			k := g.Rowidx[p]
			if k >= i {
				continue
			}
			for j := k; j != -1 && j < i && mark[j] != i; j = parent[j] {
				mark[j] = i
				l.Rowidx[next[j]] = i
				next[j]++
			}
		}
	}
	return l
}

// upperFromLower returns the U pattern (struct(L)ᵀ restricted to the upper
// triangle, diagonal last per column, sorted).
func upperFromLower(l *sparse.CSC) *sparse.CSC {
	// struct(U) = struct(L)ᵀ; transpose gives sorted columns where the
	// diagonal is the maximum row index of each column — i.e. last. Values
	// zeroed.
	u := l.Transpose()
	for i := range u.Values {
		u.Values[i] = 0
	}
	return u
}

// Factor runs the numeric phase with opts.Threads workers.
func Factor(a *sparse.CSC, sym *Symbolic) (*Numeric, error) {
	if a.N != sym.N {
		return nil, fmt.Errorf("pmkl: dimension mismatch")
	}
	b := a.Permute(sym.RowPerm, sym.ColPerm)
	num := &Numeric{
		Sym:       sym,
		L:         sym.LPat.Clone(),
		U:         sym.UPat.Clone(),
		SnSeconds: make([]float64, sym.NumSupernodes()),
	}
	for i := range num.L.Values {
		num.L.Values[i] = 0
	}
	minPiv := sym.Opts.perturb() * b.MaxAbs()

	nthreads := sym.Opts.threads()
	var firstErr error
	var errMu sync.Mutex
	for _, level := range sym.SnByLevel {
		work := make(chan int, len(level))
		for _, s := range level {
			work <- s
		}
		close(work)
		var wg sync.WaitGroup
		for w := 0; w < nthreads; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				x := make([]float64, sym.N)
				for s := range work {
					t0 := time.Now()
					err := factorSupernode(num, b, s, x, minPiv)
					num.SnSeconds[s] = time.Since(t0).Seconds()
					if err != nil {
						errMu.Lock()
						if firstErr == nil {
							firstErr = err
						}
						errMu.Unlock()
					}
				}
			}()
		}
		wg.Wait()
		if firstErr != nil {
			return nil, firstErr
		}
	}
	return num, nil
}

// FactorDirect is the one-shot Analyze+Factor.
func FactorDirect(a *sparse.CSC, opts Options) (*Numeric, error) {
	sym, err := Analyze(a, opts)
	if err != nil {
		return nil, err
	}
	return Factor(a, sym)
}

// factorSupernode computes columns [Super[s], Super[s+1]) of L and U.
// External updates (from columns before the supernode) are applied
// column-wise over the static pattern; the supernode panel itself is
// factored densely.
func factorSupernode(num *Numeric, b *sparse.CSC, s int, x []float64, minPiv float64) error {
	sym := num.Sym
	l, u := num.L, num.U
	c0, c1 := sym.Super[s], sym.Super[s+1]
	w := c1 - c0
	// Panel rows: pattern of L(:,c0) (sorted; first w rows are c0..c1-1).
	rp0, rp1 := l.Colptr[c0], l.Colptr[c0+1]
	rows := l.Rowidx[rp0:rp1]
	panel := dense.New(len(rows), w)
	// Map global row -> panel row (only needed for rows in the panel).
	// Use a linear scan index since rows is sorted.
	for t := 0; t < w; t++ {
		j := c0 + t
		// Scatter A(:,j).
		for p := b.Colptr[j]; p < b.Colptr[j+1]; p++ {
			x[b.Rowidx[p]] = b.Values[p]
		}
		// External updates: k in U(:,j) pattern with k < c0, ascending.
		up0, up1 := u.Colptr[j], u.Colptr[j+1]
		for p := up0; p < up1-1; p++ {
			k := u.Rowidx[p]
			if k >= c0 {
				break
			}
			xk := x[k]
			u.Values[p] = xk
			if xk == 0 {
				continue
			}
			// x -= L(:,k)*xk over L's static pattern (skip unit diagonal).
			for q := l.Colptr[k] + 1; q < l.Colptr[k+1]; q++ {
				x[l.Rowidx[q]] -= l.Values[q] * xk
			}
		}
		// Gather panel column t: rows of L(:,c0) that are >= c0; the
		// column's own static pattern is rows[t:], but gathering the full
		// panel height keeps the dense block aligned (upper entries are
		// the U intra-block values).
		pc := panel.Col(t)
		for r, gi := range rows {
			pc[r] = x[gi]
			x[gi] = 0
		}
		// Clear any external-U scatter remnants (rows < c0 already
		// consumed into u.Values above).
		for p := up0; p < up1-1; p++ {
			k := u.Rowidx[p]
			if k >= c0 {
				break
			}
			x[k] = 0
		}
	}
	// Dense panel factorization: w pivot columns, perturbed static pivots.
	if err := panel.LUNoPivot(w, minPiv); err != nil {
		return fmt.Errorf("pmkl: supernode %d: %w", s, err)
	}
	// Scatter back into L and U values.
	for t := 0; t < w; t++ {
		j := c0 + t
		pc := panel.Col(t)
		// U intra-block: rows c0..j-1 then the pivot (diagonal last).
		up1 := u.Colptr[j+1]
		// The last t+1 entries of U(:,j) are rows c0..j: panel rows 0..t.
		for d := 0; d <= t; d++ {
			u.Values[up1-1-t+d] = pc[d]
		}
		// L(:,j): diagonal 1 plus panel rows t+1.. (pattern rows[t:]).
		lp0 := l.Colptr[j]
		l.Values[lp0] = 1
		for r := t + 1; r < len(rows); r++ {
			l.Values[lp0+r-t] = pc[r]
		}
	}
	return nil
}

// Solve solves A x = rhs in place.
func (num *Numeric) Solve(rhs []float64) {
	sym := num.Sym
	n := sym.N
	y := make([]float64, n)
	for k := 0; k < n; k++ {
		y[k] = rhs[sym.RowPerm[k]]
	}
	// Forward: L y' = y (unit diag first per column).
	l := num.L
	for j := 0; j < n; j++ {
		yj := y[j]
		if yj == 0 {
			continue
		}
		for p := l.Colptr[j] + 1; p < l.Colptr[j+1]; p++ {
			y[l.Rowidx[p]] -= l.Values[p] * yj
		}
	}
	// Backward: U x = y' (pivot last per column).
	u := num.U
	for j := n - 1; j >= 0; j-- {
		p1 := u.Colptr[j+1]
		yj := y[j] / u.Values[p1-1]
		y[j] = yj
		if yj == 0 {
			continue
		}
		for p := u.Colptr[j]; p < p1-1; p++ {
			y[u.Rowidx[p]] -= u.Values[p] * yj
		}
	}
	for k := 0; k < n; k++ {
		rhs[sym.ColPerm[k]] = y[k]
	}
}

// NnzLU reports |L+U| with the two diagonals counted once.
func (num *Numeric) NnzLU() int { return num.Sym.NnzLU() }

// FillDensity reports |L+U|/|A|.
func (num *Numeric) FillDensity(a *sparse.CSC) float64 {
	return float64(num.NnzLU()) / float64(a.Nnz())
}

// Refactor recomputes values for a same-pattern matrix (static pivoting
// makes this identical to Factor numerically, reusing the analysis).
func (num *Numeric) Refactor(a *sparse.CSC) error {
	fresh, err := Factor(a, num.Sym)
	if err != nil {
		return err
	}
	num.L, num.U = fresh.L, fresh.U
	return nil
}
