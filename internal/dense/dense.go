// Package dense provides the small column-major dense kernels used by the
// supernodal baseline solver: panel LU, triangular solves and rank-k
// updates. They are deliberately simple loop nests — the point of the
// supernodal baseline is to capture the *algorithmic* behaviour of a
// BLAS-based solver (dense panels amortize memory traffic on high-fill
// matrices), not to compete with vendor BLAS.
package dense

import "errors"

// ErrSingular reports a zero pivot during unpivoted panel factorization.
var ErrSingular = errors.New("dense: zero pivot")

// Matrix is a column-major dense matrix view: element (i,j) is
// Data[j*LD+i].
type Matrix struct {
	Rows, Cols int
	LD         int
	Data       []float64
}

// New allocates a zeroed rows×cols matrix with LD = rows.
func New(rows, cols int) *Matrix {
	return &Matrix{Rows: rows, Cols: cols, LD: rows, Data: make([]float64, rows*cols)}
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[j*m.LD+i] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[j*m.LD+i] = v }

// Col returns the slice backing column j (length Rows).
func (m *Matrix) Col(j int) []float64 { return m.Data[j*m.LD : j*m.LD+m.Rows] }

// LUNoPivot factors the leading kxk block of the panel in place without
// pivoting and updates the rows below: on return the strictly lower part of
// the first k columns holds L (unit diagonal implicit), the upper part U.
// The panel has Rows >= k rows; rows k..Rows-1 of the first k columns hold
// the off-diagonal L block after the call.
//
// minPiv implements static pivot perturbation à la Pardiso/SuperLU-Dist:
// a pivot smaller in magnitude than minPiv is replaced by ±minPiv. With
// minPiv == 0 a zero pivot returns ErrSingular instead.
func (m *Matrix) LUNoPivot(k int, minPiv float64) error {
	for d := 0; d < k; d++ {
		piv := m.At(d, d)
		if piv < minPiv && piv > -minPiv {
			if minPiv == 0 {
				return ErrSingular
			}
			if piv < 0 {
				piv = -minPiv
			} else {
				piv = minPiv
			}
			m.Set(d, d, piv)
		}
		if piv == 0 {
			return ErrSingular
		}
		cd := m.Col(d)
		inv := 1 / piv
		for i := d + 1; i < m.Rows; i++ {
			cd[i] *= inv
		}
		for j := d + 1; j < k; j++ {
			cj := m.Col(j)
			f := cj[d]
			if f == 0 {
				continue
			}
			for i := d + 1; i < m.Rows; i++ {
				cj[i] -= f * cd[i]
			}
		}
	}
	return nil
}

// TRSMLowerUnit solves L·X = B in place where L is the kxk unit lower
// triangle stored in the first k rows/cols of lu, and B is the kxcols
// matrix b (overwritten by X).
func TRSMLowerUnit(lu *Matrix, k int, b *Matrix) {
	for j := 0; j < b.Cols; j++ {
		col := b.Col(j)
		for d := 0; d < k; d++ {
			xd := col[d]
			if xd == 0 {
				continue
			}
			ld := lu.Col(d)
			for i := d + 1; i < k; i++ {
				col[i] -= ld[i] * xd
			}
		}
	}
}

// GEMMSub computes C -= A·B where A is m×k, B is k×n, C is m×n.
func GEMMSub(c *Matrix, a *Matrix, b *Matrix) {
	for j := 0; j < c.Cols; j++ {
		cj := c.Col(j)
		bj := b.Col(j)
		for l := 0; l < a.Cols; l++ {
			f := bj[l]
			if f == 0 {
				continue
			}
			al := a.Col(l)
			for i := 0; i < c.Rows; i++ {
				cj[i] -= al[i] * f
			}
		}
	}
}
