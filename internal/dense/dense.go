// Package dense provides the small column-major dense kernels used by the
// supernodal baseline solver and, since the density-adaptive kernel layer,
// by the fine-ND engine's fill-heavy separator blocks: panel LU (unpivoted
// and partially pivoted), triangular solves and rank-k updates. They are
// deliberately simple loop nests with contiguous column access — the point
// is to capture the *algorithmic* behaviour of a BLAS-based solver (dense
// panels amortize memory traffic on high-fill matrices), not to compete
// with vendor BLAS.
package dense

import (
	"errors"
	"math"
)

// ErrSingular reports a zero pivot during unpivoted panel factorization, or
// an all-zero pivot column during pivoted factorization.
var ErrSingular = errors.New("dense: zero pivot")

// Matrix is a column-major dense matrix view: element (i,j) is
// Data[j*LD+i].
type Matrix struct {
	Rows, Cols int
	LD         int
	Data       []float64
}

// New allocates a zeroed rows×cols matrix with LD = rows.
func New(rows, cols int) *Matrix {
	return &Matrix{Rows: rows, Cols: cols, LD: rows, Data: make([]float64, rows*cols)}
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[j*m.LD+i] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[j*m.LD+i] = v }

// Col returns the slice backing column j (length Rows).
func (m *Matrix) Col(j int) []float64 { return m.Data[j*m.LD : j*m.LD+m.Rows] }

// LUNoPivot factors the leading kxk block of the panel in place without
// pivoting and updates the rows below: on return the strictly lower part of
// the first k columns holds L (unit diagonal implicit), the upper part U.
// The panel has Rows >= k rows; rows k..Rows-1 of the first k columns hold
// the off-diagonal L block after the call.
//
// minPiv implements static pivot perturbation à la Pardiso/SuperLU-Dist:
// a pivot smaller in magnitude than minPiv is replaced by ±minPiv. With
// minPiv == 0 a zero pivot returns ErrSingular instead.
func (m *Matrix) LUNoPivot(k int, minPiv float64) error {
	for d := 0; d < k; d++ {
		piv := m.At(d, d)
		if piv < minPiv && piv > -minPiv {
			if minPiv == 0 {
				return ErrSingular
			}
			if piv < 0 {
				piv = -minPiv
			} else {
				piv = minPiv
			}
			m.Set(d, d, piv)
		}
		if piv == 0 {
			return ErrSingular
		}
		cd := m.Col(d)
		inv := 1 / piv
		for i := d + 1; i < m.Rows; i++ {
			cd[i] *= inv
		}
		for j := d + 1; j < k; j++ {
			cj := m.Col(j)
			f := cj[d]
			if f == 0 {
				continue
			}
			for i := d + 1; i < m.Rows; i++ {
				cj[i] -= f * cd[i]
			}
		}
	}
	return nil
}

// LUPartialPivot factors the leading Cols columns of the panel in place
// with row partial pivoting, right-looking: on return the strictly lower
// part of column d holds L (unit diagonal implicit) and the upper part U,
// both in pivot order. rows must have length Rows and carry the original
// row id of each panel position (typically initialized to the identity); on
// return rows[k] is the original row that pivots step k — the factor's P.
//
// The pivot rule mirrors the sparse Gilbert–Peierls kernel's: the remaining
// row of largest magnitude wins, unless the natural row (original row d) is
// still unpivoted and within tol of the maximum — the diagonal preference
// that protects a fill-reducing ordering. noPivot forces the natural row
// (static pivoting) and fails on a zero natural pivot.
func (m *Matrix) LUPartialPivot(tol float64, noPivot bool, rows []int) error {
	n := m.Cols
	for d := 0; d < n; d++ {
		cd := m.Col(d)
		// Pivot search over the unpivoted positions d..Rows-1, tracking
		// where the natural row currently lives.
		best, nat := -1, -1
		maxAbs := 0.0
		for i := d; i < m.Rows; i++ {
			if v := math.Abs(cd[i]); v > maxAbs {
				maxAbs = v
				best = i
			}
			if rows[i] == d {
				nat = i
			}
		}
		piv := best
		if noPivot {
			if nat == -1 || cd[nat] == 0 {
				return ErrSingular
			}
			piv = nat
		} else {
			if best == -1 || maxAbs == 0 {
				return ErrSingular
			}
			if nat >= 0 {
				if v := math.Abs(cd[nat]); v >= tol*maxAbs && v > 0 {
					piv = nat
				}
			}
		}
		if piv != d {
			m.SwapRows(d, piv)
			rows[d], rows[piv] = rows[piv], rows[d]
		}
		pv := cd[d]
		// Division (not reciprocal multiplication) keeps the per-element
		// arithmetic bitwise identical to the sparse kernels' refresh paths.
		for i := d + 1; i < m.Rows; i++ {
			cd[i] /= pv
		}
		lo := cd[d+1 : m.Rows]
		for j := d + 1; j < n; j++ {
			cj := m.Col(j)
			f := cj[d]
			if f == 0 {
				continue
			}
			tgt := cj[d+1 : m.Rows]
			tgt = tgt[:len(lo)] // bounds-check elimination hint
			for i, v := range lo {
				tgt[i] -= f * v
			}
		}
	}
	return nil
}

// SwapRows exchanges rows a and b across every column.
func (m *Matrix) SwapRows(a, b int) {
	for j := 0; j < m.Cols; j++ {
		c := m.Col(j)
		c[a], c[b] = c[b], c[a]
	}
}

// Workspace pools the scratch of the dense kernel layer: one panel buffer
// plus integer row scratch, grown on demand and reused forever, so the hot
// factorization loops allocate nothing in steady state. One panel is live
// at a time per workspace (each kernel call replaces the previous view).
type Workspace struct {
	buf  []float64
	rows []int
	mat  Matrix
}

// NewWorkspace returns an empty workspace; buffers grow on first use.
func NewWorkspace() *Workspace { return &Workspace{} }

// Panel returns a zeroed rows×cols column-major view backed by the pooled
// buffer. The view (and its Data) is valid until the next Panel call.
func (w *Workspace) Panel(rows, cols int) *Matrix {
	n := rows * cols
	if cap(w.buf) < n {
		w.buf = make([]float64, n)
	}
	w.buf = w.buf[:n]
	clear(w.buf)
	w.mat = Matrix{Rows: rows, Cols: cols, LD: rows, Data: w.buf}
	return &w.mat
}

// Rows returns pooled integer scratch of length n (contents unspecified).
func (w *Workspace) Rows(n int) []int {
	if cap(w.rows) < n {
		w.rows = make([]int, n)
	}
	return w.rows[:n]
}

// TRSMLowerUnit solves L·X = B in place where L is the kxk unit lower
// triangle stored in the first k rows/cols of lu, and B is the kxcols
// matrix b (overwritten by X).
func TRSMLowerUnit(lu *Matrix, k int, b *Matrix) {
	for j := 0; j < b.Cols; j++ {
		col := b.Col(j)
		for d := 0; d < k; d++ {
			xd := col[d]
			if xd == 0 {
				continue
			}
			ld := lu.Col(d)
			for i := d + 1; i < k; i++ {
				col[i] -= ld[i] * xd
			}
		}
	}
}

// GEMMSub computes C -= A·B where A is m×k, B is k×n, C is m×n.
func GEMMSub(c *Matrix, a *Matrix, b *Matrix) {
	for j := 0; j < c.Cols; j++ {
		cj := c.Col(j)
		bj := b.Col(j)
		for l := 0; l < a.Cols; l++ {
			f := bj[l]
			if f == 0 {
				continue
			}
			al := a.Col(l)
			for i := 0; i < c.Rows; i++ {
				cj[i] -= al[i] * f
			}
		}
	}
}
