package dense

import (
	"math"
	"math/rand"
	"testing"
)

func TestLUNoPivotReconstructs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	rows, k := 7, 4
	m := New(rows, k)
	orig := New(rows, k)
	for j := 0; j < k; j++ {
		for i := 0; i < rows; i++ {
			v := rng.NormFloat64()
			if i == j {
				v += 5 // keep pivots healthy
			}
			m.Set(i, j, v)
			orig.Set(i, j, v)
		}
	}
	if err := m.LUNoPivot(k, 0); err != nil {
		t.Fatal(err)
	}
	// Reconstruct: A = L*U with L unit lower (rows x k), U upper (k x k).
	for i := 0; i < rows; i++ {
		for j := 0; j < k; j++ {
			sum := 0.0
			for d := 0; d <= j && d < k; d++ {
				var lid float64
				switch {
				case i == d:
					lid = 1
				case i > d:
					lid = m.At(i, d)
				default:
					lid = 0
				}
				sum += lid * m.At(d, j) * b2f(d <= j)
			}
			if math.Abs(sum-orig.At(i, j)) > 1e-10 {
				t.Fatalf("LU(%d,%d) = %v, want %v", i, j, sum, orig.At(i, j))
			}
		}
	}
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

func TestLUNoPivotSingular(t *testing.T) {
	m := New(2, 2)
	m.Set(0, 0, 0)
	m.Set(1, 1, 1)
	if err := m.LUNoPivot(2, 0); err != ErrSingular {
		t.Fatalf("err = %v, want ErrSingular", err)
	}
}

func TestLUNoPivotPerturbs(t *testing.T) {
	m := New(2, 2)
	m.Set(0, 0, 0)
	m.Set(0, 1, 1)
	m.Set(1, 0, 1)
	m.Set(1, 1, 1)
	if err := m.LUNoPivot(2, 1e-8); err != nil {
		t.Fatal(err)
	}
	if m.At(0, 0) != 1e-8 {
		t.Fatalf("pivot = %v, want perturbed 1e-8", m.At(0, 0))
	}
}

func TestLUPartialPivotReconstructs(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n := 9
	m := New(n, n)
	orig := New(n, n)
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			v := rng.NormFloat64()
			m.Set(i, j, v)
			orig.Set(i, j, v)
		}
	}
	rows := make([]int, n)
	for i := range rows {
		rows[i] = i
	}
	// tol=1 forces true partial pivoting on a random matrix.
	if err := m.LUPartialPivot(1, false, rows); err != nil {
		t.Fatal(err)
	}
	// Reconstruct: L·U must equal the row-permuted original, P·A.
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			sum := 0.0
			for d := 0; d <= j; d++ {
				var lid float64
				switch {
				case i == d:
					lid = 1
				case i > d:
					lid = m.At(i, d)
				}
				sum += lid * m.At(d, j)
			}
			if want := orig.At(rows[i], j); math.Abs(sum-want) > 1e-10 {
				t.Fatalf("PA(%d,%d) = %v, want %v", i, j, sum, want)
			}
		}
	}
	// Partial pivoting bounds every multiplier by 1.
	for d := 0; d < n; d++ {
		for i := d + 1; i < n; i++ {
			if math.Abs(m.At(i, d)) > 1+1e-12 {
				t.Fatalf("unbounded multiplier L(%d,%d) = %v", i, d, m.At(i, d))
			}
		}
	}
}

func TestLUPartialPivotDiagonalPreference(t *testing.T) {
	// Diagonally dominant: with a small tolerance the natural pivots win
	// everywhere, so rows stays the identity (the Gilbert–Peierls diagonal
	// preference the sparse kernel applies).
	rng := rand.New(rand.NewSource(3))
	n := 12
	m := New(n, n)
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			v := 0.5 * rng.NormFloat64()
			if i == j {
				v = 10 + rng.Float64()
			}
			m.Set(i, j, v)
		}
	}
	rows := make([]int, n)
	for i := range rows {
		rows[i] = i
	}
	if err := m.LUPartialPivot(0.001, false, rows); err != nil {
		t.Fatal(err)
	}
	for i, r := range rows {
		if r != i {
			t.Fatalf("diagonal preference violated: rows[%d] = %d", i, r)
		}
	}
}

func TestLUPartialPivotSingular(t *testing.T) {
	m := New(3, 3)
	m.Set(0, 0, 1) // column 1 is entirely zero
	m.Set(2, 2, 1)
	rows := []int{0, 1, 2}
	if err := m.LUPartialPivot(1, false, rows); err != ErrSingular {
		t.Fatalf("err = %v, want ErrSingular", err)
	}
}

func TestLUPartialPivotNoPivotForcesNatural(t *testing.T) {
	m := New(2, 2)
	m.Set(0, 0, 1e-12) // tiny but nonzero natural pivot
	m.Set(1, 0, 100)
	m.Set(0, 1, 1)
	m.Set(1, 1, 1)
	rows := []int{0, 1}
	if err := m.LUPartialPivot(1, true, rows); err != nil {
		t.Fatal(err)
	}
	if rows[0] != 0 || rows[1] != 1 {
		t.Fatalf("noPivot must keep the natural order, got %v", rows)
	}
}

func TestWorkspacePanelReuse(t *testing.T) {
	w := NewWorkspace()
	p := w.Panel(4, 3)
	for i := range p.Data {
		p.Data[i] = 1
	}
	q := w.Panel(3, 2) // smaller view over the same buffer must come back zeroed
	for i, v := range q.Data {
		if v != 0 {
			t.Fatalf("reused panel not zeroed at %d: %v", i, v)
		}
	}
	if &q.Data[0] != &p.Data[0] {
		t.Fatal("workspace did not reuse its buffer")
	}
	if len(w.Rows(5)) != 5 || len(w.Rows(2)) != 2 {
		t.Fatal("Rows sizing broken")
	}
}

func TestTRSMLowerUnit(t *testing.T) {
	// L = [[1,0],[2,1]], B = [[1],[4]] -> X = [[1],[2]].
	lu := New(2, 2)
	lu.Set(1, 0, 2)
	b := New(2, 1)
	b.Set(0, 0, 1)
	b.Set(1, 0, 4)
	TRSMLowerUnit(lu, 2, b)
	if b.At(0, 0) != 1 || b.At(1, 0) != 2 {
		t.Fatalf("X = [%v %v], want [1 2]", b.At(0, 0), b.At(1, 0))
	}
}

func TestGEMMSub(t *testing.T) {
	a := New(2, 2)
	a.Set(0, 0, 1)
	a.Set(1, 1, 2)
	b := New(2, 2)
	b.Set(0, 0, 3)
	b.Set(1, 0, 4)
	c := New(2, 2)
	GEMMSub(c, a, b)
	if c.At(0, 0) != -3 || c.At(1, 0) != -8 {
		t.Fatalf("C = [[%v],[%v]], want [-3,-8]", c.At(0, 0), c.At(1, 0))
	}
}
