package dense

import (
	"math"
	"math/rand"
	"testing"
)

func TestLUNoPivotReconstructs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	rows, k := 7, 4
	m := New(rows, k)
	orig := New(rows, k)
	for j := 0; j < k; j++ {
		for i := 0; i < rows; i++ {
			v := rng.NormFloat64()
			if i == j {
				v += 5 // keep pivots healthy
			}
			m.Set(i, j, v)
			orig.Set(i, j, v)
		}
	}
	if err := m.LUNoPivot(k, 0); err != nil {
		t.Fatal(err)
	}
	// Reconstruct: A = L*U with L unit lower (rows x k), U upper (k x k).
	for i := 0; i < rows; i++ {
		for j := 0; j < k; j++ {
			sum := 0.0
			for d := 0; d <= j && d < k; d++ {
				var lid float64
				switch {
				case i == d:
					lid = 1
				case i > d:
					lid = m.At(i, d)
				default:
					lid = 0
				}
				sum += lid * m.At(d, j) * b2f(d <= j)
			}
			if math.Abs(sum-orig.At(i, j)) > 1e-10 {
				t.Fatalf("LU(%d,%d) = %v, want %v", i, j, sum, orig.At(i, j))
			}
		}
	}
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

func TestLUNoPivotSingular(t *testing.T) {
	m := New(2, 2)
	m.Set(0, 0, 0)
	m.Set(1, 1, 1)
	if err := m.LUNoPivot(2, 0); err != ErrSingular {
		t.Fatalf("err = %v, want ErrSingular", err)
	}
}

func TestLUNoPivotPerturbs(t *testing.T) {
	m := New(2, 2)
	m.Set(0, 0, 0)
	m.Set(0, 1, 1)
	m.Set(1, 0, 1)
	m.Set(1, 1, 1)
	if err := m.LUNoPivot(2, 1e-8); err != nil {
		t.Fatal(err)
	}
	if m.At(0, 0) != 1e-8 {
		t.Fatalf("pivot = %v, want perturbed 1e-8", m.At(0, 0))
	}
}

func TestTRSMLowerUnit(t *testing.T) {
	// L = [[1,0],[2,1]], B = [[1],[4]] -> X = [[1],[2]].
	lu := New(2, 2)
	lu.Set(1, 0, 2)
	b := New(2, 1)
	b.Set(0, 0, 1)
	b.Set(1, 0, 4)
	TRSMLowerUnit(lu, 2, b)
	if b.At(0, 0) != 1 || b.At(1, 0) != 2 {
		t.Fatalf("X = [%v %v], want [1 2]", b.At(0, 0), b.At(1, 0))
	}
}

func TestGEMMSub(t *testing.T) {
	a := New(2, 2)
	a.Set(0, 0, 1)
	a.Set(1, 1, 2)
	b := New(2, 2)
	b.Set(0, 0, 3)
	b.Set(1, 0, 4)
	c := New(2, 2)
	GEMMSub(c, a, b)
	if c.At(0, 0) != -3 || c.At(1, 0) != -8 {
		t.Fatalf("C = [[%v],[%v]], want [-3,-8]", c.At(0, 0), c.At(1, 0))
	}
}
