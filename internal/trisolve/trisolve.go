// Package trisolve is the concurrent solve subsystem: the triangular
// solve phase of Basker, rebuilt for the workload the factorization
// engine was designed to feed. A transient circuit simulation performs
// one Factor and then thousands of Refactor/Solve calls, frequently for
// many right-hand sides and many concurrent scenarios, so this package
// provides
//
//   - reentrant solves: every per-call scratch buffer (the permuted RHS,
//     the diagonal-block pivot scratch formerly allocated inside ndSolve
//     and gp.Solve, refinement residuals, multi-RHS panels) lives in a
//     sync.Pool-backed Workspace, so any number of goroutines can solve
//     against one factorization with zero steady-state allocation;
//   - blocked multi-RHS solves: SolveMany sweeps the coarse BTF
//     back-substitution once per panel of right-hand sides instead of
//     once per vector, touching each diagonal block's factors once per
//     panel (cache-blocking the solve the way the paper's 2D layout
//     cache-blocks the factorization);
//   - scheduled parallelism: panels are distributed over worker
//     goroutines, and single-RHS solves on matrices with many coarse
//     blocks run a dependency-scheduled parallel block sweep that reuses
//     the point-to-point Signals fabric of the numeric engine — block i
//     waits only on the exact later blocks that feed it.
//
// All entry points perform bit-for-bit the same floating-point operation
// sequence per right-hand side as a serial core.Numeric.Solve, so batched,
// parallel and serial paths are interchangeable and golden-testable.
package trisolve

import (
	"context"
	"fmt"
	"math"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/sparse"
)

const (
	// maxPanel caps the column count of one blocked sweep so the panel
	// buffer stays cache-friendly and bounded (n×32 floats).
	maxPanel = 32
	// blockParallelMinDim is the default minimum average block dimension
	// (rows per coarse block) before a single-RHS solve uses the
	// dependency-scheduled parallel sweep: with thousands of tiny blocks,
	// per-block synchronization costs more than the block solves.
	blockParallelMinDim = 256
)

// Options configures a Solver.
type Options struct {
	// Workers is the number of goroutines used for panel and block
	// parallelism. Values below 1 mean 1 (fully serial).
	Workers int
	// BlockParallelMin overrides the single-RHS parallel-sweep gate: a
	// positive value engages the parallel sweep whenever the matrix has at
	// least that many coarse blocks (regardless of block size), a negative
	// value disables it, and 0 selects the default heuristic (at least
	// 2×Workers blocks averaging blockParallelMinDim rows).
	BlockParallelMin int
}

// Solver drives reentrant, batched and parallel solves against one
// core.Numeric. It is safe for concurrent use by multiple goroutines as
// long as no Refactor runs concurrently with solves; Refactor between
// solve batches is fine (the cached block-dependency structure depends
// only on the sparsity pattern, which Refactor preserves).
type Solver struct {
	num      *core.Numeric
	workers  int
	blockPar bool
	pool     *wsPool

	// Block-dependency structure for the parallel sweep, built lazily once
	// (the pattern is immutable across Refactor). colPos is the inverse
	// column permutation SolutionClosure maps changed columns through.
	depOnce sync.Once
	feeds   [][]feed
	deps    [][]int
	colPos  []int
}

// feed is one off-block coupling entry: y[row] -= Perm.Values[p] · y[col].
// Positions are stored as indices into the permuted matrix so the values
// stay current across Refactor, which rebuilds Perm with an identical
// layout.
type feed struct {
	row, col, p int32
}

// New returns a Solver over num.
func New(num *core.Numeric, opt Options) *Solver {
	w := opt.Workers
	if w < 1 {
		w = 1
	}
	sym := num.Sym
	nb := sym.NumBlocks()
	var blockPar bool
	switch {
	case w <= 1 || opt.BlockParallelMin < 0:
		blockPar = false
	case opt.BlockParallelMin > 0:
		blockPar = nb >= opt.BlockParallelMin && nb >= 2
	default:
		blockPar = nb >= 2*w && sym.N/nb >= blockParallelMinDim
	}
	return &Solver{
		num:      num,
		workers:  w,
		blockPar: blockPar,
		pool:     newWSPool(sym),
	}
}

// panicErr converts a recovered solve-phase panic into the numeric
// engine's internal-panic error, carrying the panic value and stack.
func panicErr(r any) error {
	if e, ok := r.(error); ok {
		// Keep error-typed panic values in the chain so callers can match
		// them with errors.Is through the ErrInternalPanic wrapper.
		return fmt.Errorf("%w: %w\n%s", core.ErrInternalPanic, e, debug.Stack())
	}
	return fmt.Errorf("%w: %v\n%s", core.ErrInternalPanic, r, debug.Stack())
}

// Solve solves A·x = b in place. Reentrant and allocation-free in steady
// state on the serial path. On a non-nil error (a recovered panic in a
// sweep) b is unspecified; the factorization itself is unharmed, solves
// are read-only against it.
func (s *Solver) Solve(b []float64) error {
	return s.SolveCtx(context.Background(), b)
}

// SolveCtx is Solve with cooperative cancellation: a fired ctx aborts the
// dependency-scheduled parallel sweep at the next block boundary and
// returns ErrCanceled or ErrDeadlineExceeded; b is then unspecified (the
// factorization is unharmed — solves only read it). A Done-capable ctx or
// a positive Options.StallTimeout on the factorization also arms the sweep
// watchdog, which aborts a no-progress sweep with ErrStalled. The serial
// path runs on the caller's goroutine and only honours a ctx that is
// already expired at entry.
func (s *Solver) SolveCtx(ctx context.Context, b []float64) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = panicErr(r)
		}
	}()
	if ctx != nil && ctx.Err() != nil {
		return core.CancelCause(ctx)
	}
	if s.blockPar {
		return s.solveBlockParallel(ctx, b)
	}
	ws := s.pool.get()
	defer s.pool.put(ws)
	s.num.SolveInto(b, ws.y, ws.scratch)
	return nil
}

// SolveMany solves A·xᵢ = bᵢ in place for every right-hand side. The batch
// is cut into panels of at most maxPanel columns; each panel runs one
// blocked BTF sweep (per diagonal block, all panel columns are solved
// before moving on), and panels are distributed over the worker
// goroutines. Per right-hand side the operation sequence is identical to
// Solve.
func (s *Solver) SolveMany(bs [][]float64) error {
	return s.SolveManyCtx(context.Background(), bs)
}

// SolveManyCtx is SolveMany with cooperative cancellation: workers stop
// picking up panels once ctx fires (or the stall watchdog trips) and the
// call returns the typed error with the batch partially solved. The sweep
// always joins fully before returning — workers write the caller-owned
// right-hand sides — so cancellation accelerates the unwind rather than
// abandoning stragglers.
func (s *Solver) SolveManyCtx(ctx context.Context, bs [][]float64) (err error) {
	k := len(bs)
	if k == 0 {
		return nil
	}
	defer func() {
		if r := recover(); r != nil {
			err = panicErr(r)
		}
	}()
	if ctx != nil && ctx.Err() != nil {
		return core.CancelCause(ctx)
	}
	// Panel width: fill maxPanel columns when serial, but never leave a
	// worker idle — with few right-hand sides and many workers, narrower
	// panels spread the batch across the goroutines.
	width := maxPanel
	if s.workers > 1 {
		if perW := (k + s.workers - 1) / s.workers; perW < width {
			width = perW
		}
	}
	nchunks := (k + width - 1) / width
	nw := s.workers
	if nw > nchunks {
		nw = nchunks
	}
	if nw <= 1 {
		for lo := 0; lo < k; lo += width {
			if ctx != nil && ctx.Err() != nil {
				return core.CancelCause(ctx)
			}
			s.solvePanel(bs[lo:min(lo+width, k)])
		}
		return nil
	}
	return s.solveManyParallel(ctx, bs, width, nchunks, nw)
}

// solveManyParallel distributes panel chunks over nw worker goroutines
// through a shared atomic cursor. Kept out of SolveMany so the serial path
// stays allocation-free (the worker closures would otherwise force their
// captures onto the heap on every call). A panicking worker records the
// first error and stops; the cursor lets the surviving workers drain the
// remaining panels, so the WaitGroup join always quiesces.
func (s *Solver) solveManyParallel(ctx context.Context, bs [][]float64, width, nchunks, nw int) (err error) {
	k := len(bs)
	inject := s.num.Sym.Opts.Inject
	// Armed batches borrow a pooled workspace purely for its cancellation
	// control; the unarmed fast path allocates and arms nothing.
	var ctl *core.SweepControl
	var mon *core.SweepMonitor
	if stall := s.num.Sym.Opts.StallTimeout; core.MonitorArmed(ctx, stall) {
		cws := s.pool.get()
		defer s.pool.put(cws)
		ctl = &cws.ctl
		ctl.BeginSweep(true)
		mon = core.StartSweepMonitor(core.MonitorSpec{
			Ctx: ctx, Stall: stall, Sweep: "solve", Ctl: ctl,
		})
		defer func() {
			if merr := mon.Stop(); merr != nil && err == nil {
				err = merr
			}
		}()
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	for w := 0; w < nw; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = panicErr(r)
					}
					mu.Unlock()
				}
			}()
			inject.WorkerPanic(faultinject.SweepSolve, w)
			for {
				if ctl != nil && ctl.Canceled() {
					return
				}
				c := int(next.Add(1)) - 1
				if c >= nchunks {
					return
				}
				lo := c * width
				s.solvePanel(bs[lo:min(lo+width, k)])
				if ctl != nil {
					ctl.Step()
				}
			}
		}(w)
	}
	wg.Wait()
	return firstErr
}

// SolveMatrix solves the column-major n×nrhs system A·X = B in place:
// x holds nrhs right-hand sides of length n back to back.
func (s *Solver) SolveMatrix(x []float64, nrhs int) error {
	n := s.num.Sym.N
	cols := make([][]float64, nrhs)
	for c := range cols {
		cols[c] = x[c*n : (c+1)*n]
	}
	return s.SolveMany(cols)
}

// solvePanel runs the blocked BTF back-substitution over one panel of
// right-hand sides with a single pooled workspace: permute all columns in,
// run the core panel sweep (each diagonal block's factors and each
// off-block column traversed once per panel), and permute all columns out.
func (s *Solver) solvePanel(cols [][]float64) {
	ws := s.pool.get()
	defer s.pool.put(ws)
	num := s.num
	sym := num.Sym
	n := sym.N
	k := len(cols)
	buf := ws.panelBuf(n, k)
	ys := ws.views[:k]
	for c, b := range cols {
		y := buf[c*n : (c+1)*n]
		for i := 0; i < n; i++ {
			y[i] = b[sym.RowPerm[i]]
		}
		ys[c] = y
	}
	num.SolvePanel(ys, ws.pw)
	for c, b := range cols {
		y := ys[c]
		for i := 0; i < n; i++ {
			b[sym.ColPerm[i]] = y[i]
		}
	}
}

// RefineResult reports what an iterative-refinement solve achieved.
type RefineResult struct {
	// Iterations is the number of correction steps applied (the direct
	// solve is step zero and is not counted).
	Iterations int
	// BackwardError is the final Oettli–Prager componentwise relative
	// backward error ω = maxᵢ |b−Ax|ᵢ / (|A||x|+|b|)ᵢ: the size of the
	// smallest componentwise perturbation of A and b for which x is an
	// exact solution. At or below RefineTol, x is as good as the working
	// precision allows.
	BackwardError float64
	// Residual is the final ∞-norm residual ‖b−Ax‖∞ / ‖b‖∞ (the normwise
	// diagnostic the previous refinement API reported).
	Residual float64
	// Converged reports that BackwardError reached RefineTol.
	Converged bool
	// Stagnated reports that refinement stopped early because a step failed
	// to at least halve the backward error — the classic symptom of a
	// factorization too inaccurate for refinement to help (severe
	// ill-conditioning), at which point further solves only burn time.
	Stagnated bool
	// Canceled reports that a SolveRefinedCtx context fired between
	// refinement iterations: b holds the best iterate computed so far and
	// the result fields describe it, alongside the returned typed error.
	Canceled bool
}

// RefineTol is the componentwise backward-error target of SolveRefined:
// a small multiple of the double-precision unit roundoff, the level LAPACK
// refinement drives ω to.
const RefineTol = 4 * 2.220446049250313e-16

// SolveRefined solves A·x = b with convergent iterative refinement against
// the matrix a that was factored (or refactored): after the direct solve,
// correction steps x += A⁻¹(b − A·x) run until the Oettli–Prager
// componentwise backward error reaches RefineTol, a step fails to make
// progress (stagnation), or maxIters corrections have been applied. b is
// overwritten with x. All scratch comes from the workspace pool; the
// backward-error pass shares the residual's single sweep over a.
func (s *Solver) SolveRefined(a *sparse.CSC, b []float64, maxIters int) (RefineResult, error) {
	return s.SolveRefinedCtx(context.Background(), a, b, maxIters)
}

// SolveRefinedCtx is SolveRefined with cooperative cancellation between
// refinement iterations: when ctx fires, the method stops refining, leaves
// the best iterate computed so far in b, and returns the result describing
// it with Canceled set alongside ErrCanceled or ErrDeadlineExceeded.
func (s *Solver) SolveRefinedCtx(ctx context.Context, a *sparse.CSC, b []float64, maxIters int) (res RefineResult, err error) {
	ws := s.pool.get()
	defer s.pool.put(ws)
	defer func() {
		if r := recover(); r != nil {
			err = panicErr(r)
		}
	}()
	if ctx != nil && ctx.Err() != nil {
		res.Canceled = true
		return res, core.CancelCause(ctx)
	}
	n := a.N
	r, rhs, den := ws.refine(n)
	copy(rhs, b)
	s.num.SolveInto(b, ws.y, ws.scratch)
	scale := 0.0
	for _, v := range rhs {
		if v := math.Abs(v); v > scale {
			scale = v
		}
	}
	if scale == 0 {
		scale = 1
	}
	prev := math.Inf(1)
	for it := 0; ; it++ {
		omega, resid := backwardError(a, b, rhs, r, den)
		res.Iterations = it
		res.BackwardError = omega
		res.Residual = resid / scale
		if omega <= RefineTol {
			res.Converged = true
			return res, nil
		}
		if it >= maxIters {
			return res, nil
		}
		if ctx != nil && ctx.Err() != nil {
			// b already holds the iterate the result fields describe.
			res.Canceled = true
			return res, core.CancelCause(ctx)
		}
		if omega > 0.5*prev {
			// The last correction did not at least halve ω: stagnation.
			res.Stagnated = true
			return res, nil
		}
		prev = omega
		s.num.SolveInto(r, ws.y, ws.scratch)
		for i := range b {
			b[i] += r[i]
		}
	}
}

// backwardError computes, in one pass over a's columns, the residual
// r = rhs − A·x and the Oettli–Prager denominator den = |A|·|x| + |rhs|,
// returning the componentwise backward error ω = maxᵢ |r|ᵢ/denᵢ (rows with
// a zero denominator and a nonzero residual yield +Inf) and the plain
// residual ∞-norm.
func backwardError(a *sparse.CSC, x, rhs, r, den []float64) (omega, resid float64) {
	for i := range r {
		r[i] = rhs[i]
		den[i] = math.Abs(rhs[i])
	}
	for j := 0; j < a.N; j++ {
		xj := x[j]
		if xj == 0 {
			continue
		}
		axj := math.Abs(xj)
		for p := a.Colptr[j]; p < a.Colptr[j+1]; p++ {
			i := a.Rowidx[p]
			v := a.Values[p]
			r[i] -= v * xj
			den[i] += math.Abs(v) * axj
		}
	}
	for i := range r {
		ri := math.Abs(r[i])
		if ri > resid {
			resid = ri
		}
		switch {
		case den[i] > 0:
			if w := ri / den[i]; w > omega {
				omega = w
			}
		case ri != 0:
			omega = math.Inf(1)
		}
	}
	return omega, resid
}
