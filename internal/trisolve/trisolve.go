// Package trisolve is the concurrent solve subsystem: the triangular
// solve phase of Basker, rebuilt for the workload the factorization
// engine was designed to feed. A transient circuit simulation performs
// one Factor and then thousands of Refactor/Solve calls, frequently for
// many right-hand sides and many concurrent scenarios, so this package
// provides
//
//   - reentrant solves: every per-call scratch buffer (the permuted RHS,
//     the diagonal-block pivot scratch formerly allocated inside ndSolve
//     and gp.Solve, refinement residuals, multi-RHS panels) lives in a
//     sync.Pool-backed Workspace, so any number of goroutines can solve
//     against one factorization with zero steady-state allocation;
//   - blocked multi-RHS solves: SolveMany sweeps the coarse BTF
//     back-substitution once per panel of right-hand sides instead of
//     once per vector, touching each diagonal block's factors once per
//     panel (cache-blocking the solve the way the paper's 2D layout
//     cache-blocks the factorization);
//   - scheduled parallelism: panels are distributed over worker
//     goroutines, and single-RHS solves on matrices with many coarse
//     blocks run a dependency-scheduled parallel block sweep that reuses
//     the point-to-point Signals fabric of the numeric engine — block i
//     waits only on the exact later blocks that feed it.
//
// All entry points perform bit-for-bit the same floating-point operation
// sequence per right-hand side as a serial core.Numeric.Solve, so batched,
// parallel and serial paths are interchangeable and golden-testable.
package trisolve

import (
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/sparse"
)

const (
	// maxPanel caps the column count of one blocked sweep so the panel
	// buffer stays cache-friendly and bounded (n×32 floats).
	maxPanel = 32
	// blockParallelMinDim is the default minimum average block dimension
	// (rows per coarse block) before a single-RHS solve uses the
	// dependency-scheduled parallel sweep: with thousands of tiny blocks,
	// per-block synchronization costs more than the block solves.
	blockParallelMinDim = 256
)

// Options configures a Solver.
type Options struct {
	// Workers is the number of goroutines used for panel and block
	// parallelism. Values below 1 mean 1 (fully serial).
	Workers int
	// BlockParallelMin overrides the single-RHS parallel-sweep gate: a
	// positive value engages the parallel sweep whenever the matrix has at
	// least that many coarse blocks (regardless of block size), a negative
	// value disables it, and 0 selects the default heuristic (at least
	// 2×Workers blocks averaging blockParallelMinDim rows).
	BlockParallelMin int
}

// Solver drives reentrant, batched and parallel solves against one
// core.Numeric. It is safe for concurrent use by multiple goroutines as
// long as no Refactor runs concurrently with solves; Refactor between
// solve batches is fine (the cached block-dependency structure depends
// only on the sparsity pattern, which Refactor preserves).
type Solver struct {
	num      *core.Numeric
	workers  int
	blockPar bool
	pool     *wsPool

	// Block-dependency structure for the parallel sweep, built lazily once
	// (the pattern is immutable across Refactor). colPos is the inverse
	// column permutation SolutionClosure maps changed columns through.
	depOnce sync.Once
	feeds   [][]feed
	deps    [][]int
	colPos  []int
}

// feed is one off-block coupling entry: y[row] -= Perm.Values[p] · y[col].
// Positions are stored as indices into the permuted matrix so the values
// stay current across Refactor, which rebuilds Perm with an identical
// layout.
type feed struct {
	row, col, p int32
}

// New returns a Solver over num.
func New(num *core.Numeric, opt Options) *Solver {
	w := opt.Workers
	if w < 1 {
		w = 1
	}
	sym := num.Sym
	nb := sym.NumBlocks()
	var blockPar bool
	switch {
	case w <= 1 || opt.BlockParallelMin < 0:
		blockPar = false
	case opt.BlockParallelMin > 0:
		blockPar = nb >= opt.BlockParallelMin && nb >= 2
	default:
		blockPar = nb >= 2*w && sym.N/nb >= blockParallelMinDim
	}
	return &Solver{
		num:      num,
		workers:  w,
		blockPar: blockPar,
		pool:     newWSPool(sym),
	}
}

// Solve solves A·x = b in place. Reentrant and allocation-free in steady
// state on the serial path.
func (s *Solver) Solve(b []float64) {
	ws := s.pool.get()
	defer s.pool.put(ws)
	if s.blockPar {
		s.solveBlockParallel(b, ws)
		return
	}
	s.num.SolveInto(b, ws.y, ws.scratch)
}

// SolveMany solves A·xᵢ = bᵢ in place for every right-hand side. The batch
// is cut into panels of at most maxPanel columns; each panel runs one
// blocked BTF sweep (per diagonal block, all panel columns are solved
// before moving on), and panels are distributed over the worker
// goroutines. Per right-hand side the operation sequence is identical to
// Solve.
func (s *Solver) SolveMany(bs [][]float64) {
	k := len(bs)
	if k == 0 {
		return
	}
	// Panel width: fill maxPanel columns when serial, but never leave a
	// worker idle — with few right-hand sides and many workers, narrower
	// panels spread the batch across the goroutines.
	width := maxPanel
	if s.workers > 1 {
		if perW := (k + s.workers - 1) / s.workers; perW < width {
			width = perW
		}
	}
	nchunks := (k + width - 1) / width
	nw := s.workers
	if nw > nchunks {
		nw = nchunks
	}
	if nw <= 1 {
		for lo := 0; lo < k; lo += width {
			s.solvePanel(bs[lo:min(lo+width, k)])
		}
		return
	}
	s.solveManyParallel(bs, width, nchunks, nw)
}

// solveManyParallel distributes panel chunks over nw worker goroutines
// through a shared atomic cursor. Kept out of SolveMany so the serial path
// stays allocation-free (the worker closures would otherwise force their
// captures onto the heap on every call).
func (s *Solver) solveManyParallel(bs [][]float64, width, nchunks, nw int) {
	k := len(bs)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < nw; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				c := int(next.Add(1)) - 1
				if c >= nchunks {
					return
				}
				lo := c * width
				s.solvePanel(bs[lo:min(lo+width, k)])
			}
		}()
	}
	wg.Wait()
}

// SolveMatrix solves the column-major n×nrhs system A·X = B in place:
// x holds nrhs right-hand sides of length n back to back.
func (s *Solver) SolveMatrix(x []float64, nrhs int) {
	n := s.num.Sym.N
	cols := make([][]float64, nrhs)
	for c := range cols {
		cols[c] = x[c*n : (c+1)*n]
	}
	s.SolveMany(cols)
}

// solvePanel runs the blocked BTF back-substitution over one panel of
// right-hand sides with a single pooled workspace: permute all columns in,
// run the core panel sweep (each diagonal block's factors and each
// off-block column traversed once per panel), and permute all columns out.
func (s *Solver) solvePanel(cols [][]float64) {
	ws := s.pool.get()
	defer s.pool.put(ws)
	num := s.num
	sym := num.Sym
	n := sym.N
	k := len(cols)
	buf := ws.panelBuf(n, k)
	ys := ws.views[:k]
	for c, b := range cols {
		y := buf[c*n : (c+1)*n]
		for i := 0; i < n; i++ {
			y[i] = b[sym.RowPerm[i]]
		}
		ys[c] = y
	}
	num.SolvePanel(ys, ws.pw)
	for c, b := range cols {
		y := ys[c]
		for i := 0; i < n; i++ {
			b[sym.ColPerm[i]] = y[i]
		}
	}
}

// SolveRefined solves A·x = b with iterative refinement against the matrix
// a that was factored (or refactored): after the direct solve, up to iters
// steps of x += A⁻¹(b − A·x). b is overwritten with x; the returned value
// is the final residual ∞-norm relative to ‖b‖∞. All scratch comes from
// the workspace pool.
func (s *Solver) SolveRefined(a *sparse.CSC, b []float64, iters int) float64 {
	ws := s.pool.get()
	defer s.pool.put(ws)
	n := a.N
	r, rhs := ws.refine(n)
	copy(rhs, b)
	s.num.SolveInto(b, ws.y, ws.scratch)
	scale := 0.0
	for _, v := range rhs {
		if v < 0 {
			v = -v
		}
		if v > scale {
			scale = v
		}
	}
	if scale == 0 {
		scale = 1
	}
	res := 0.0
	for it := 0; it <= iters; it++ {
		a.MulVec(r, b)
		res = 0
		for i := range r {
			r[i] = rhs[i] - r[i]
			d := r[i]
			if d < 0 {
				d = -d
			}
			if d > res {
				res = d
			}
		}
		res /= scale
		if it == iters || res == 0 {
			break
		}
		s.num.SolveInto(r, ws.y, ws.scratch)
		for i := range b {
			b[i] += r[i]
		}
	}
	return res
}
