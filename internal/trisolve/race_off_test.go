//go:build !race

package trisolve

const raceEnabled = false
