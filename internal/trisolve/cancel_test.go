package trisolve

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/matgen"
)

// stallSolver is chaosSolver with the stall watchdog armed on the
// factorization's options, so block-parallel solves run monitored.
func stallSolver(t *testing.T, inject *faultinject.Injector, stall time.Duration) (*Solver, []float64, []float64) {
	t.Helper()
	a := matgen.Circuit(matgen.CircuitParams{
		N: 700, BTFPct: 50, Blocks: 40, Core: matgen.CoreLadder, ExtraDensity: 0.3, Seed: 11,
	})
	opts := core.DefaultOptions()
	opts.Threads = 4
	opts.BigBlockMin = 64
	opts.Inject = inject
	opts.StallTimeout = stall
	num, err := core.FactorDirect(a, opts)
	if err != nil {
		t.Fatal(err)
	}
	s := New(num, Options{Workers: 4, BlockParallelMin: 1})
	x := randRHS(a.N, 7)
	b := make([]float64, a.N)
	a.MulVec(b, x)
	return s, b, x
}

// TestSolveStallWatchdog wedges a block-parallel solve worker for far
// longer than StallTimeout: the watchdog aborts the sweep with ErrStalled
// naming the stuck block, the caller's right-hand side is untouched (the
// sweep writes only its pooled workspace until the final scatter), the
// factorization is unharmed, and the very next solve succeeds while the
// straggler is still draining.
func TestSolveStallWatchdog(t *testing.T) {
	inject := faultinject.New()
	s, b, x := stallSolver(t, inject, 60*time.Millisecond)

	inject.Arm(faultinject.PointStall, faultinject.Rule{
		Sweep: faultinject.SweepSolve, SweepSet: true, Block: -1, Worker: -1,
		Times: 1, Stall: 900 * time.Millisecond,
	})
	got := append([]float64(nil), b...)
	t0 := time.Now()
	err := s.Solve(got)
	if elapsed := time.Since(t0); elapsed >= 700*time.Millisecond {
		t.Fatalf("stalled solve took %v to return, want early abort", elapsed)
	}
	if !errors.Is(err, core.ErrStalled) {
		t.Fatalf("stalled solve error %v does not match ErrStalled", err)
	}
	var se *core.StallError
	if !errors.As(err, &se) {
		t.Fatalf("stalled solve error %v carries no *StallError", err)
	}
	if se.Sweep != "solve" || se.Block < 0 || se.Lane < 0 {
		t.Fatalf("StallError diagnostics incomplete: %+v", se)
	}
	for i := range got {
		if got[i] != b[i] {
			t.Fatalf("aborted solve clobbered rhs[%d]: %v != %v", i, got[i], b[i])
		}
	}

	// Solves only read the factorization: the next call — racing the
	// still-sleeping straggler, which owns a detached workspace — succeeds.
	got = append([]float64(nil), b...)
	if err := s.Solve(got); err != nil {
		t.Fatalf("solve after stall: %v", err)
	}
	checkSolution(t, got, x)
}

// TestSolveCtxDeadline aborts a block-parallel solve via context deadline
// (no watchdog armed): ErrDeadlineExceeded, rhs untouched, next solve fine.
func TestSolveCtxDeadline(t *testing.T) {
	inject := faultinject.New()
	s, b, x := stallSolver(t, inject, 0)

	inject.Arm(faultinject.PointStall, faultinject.Rule{
		Sweep: faultinject.SweepSolve, SweepSet: true, Block: -1, Worker: -1,
		Times: 1, Stall: 900 * time.Millisecond,
	})
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	got := append([]float64(nil), b...)
	t0 := time.Now()
	err := s.SolveCtx(ctx, got)
	if elapsed := time.Since(t0); elapsed >= 700*time.Millisecond {
		t.Fatalf("deadline abort took %v, want early return", elapsed)
	}
	if !errors.Is(err, core.ErrDeadlineExceeded) {
		t.Fatalf("solve past deadline: %v, want ErrDeadlineExceeded", err)
	}
	for i := range got {
		if got[i] != b[i] {
			t.Fatalf("aborted solve clobbered rhs[%d]", i)
		}
	}

	got = append([]float64(nil), b...)
	if err := s.Solve(got); err != nil {
		t.Fatalf("solve after deadline abort: %v", err)
	}
	checkSolution(t, got, x)
}

// TestSolveManyCtxArmedPath runs the panel-parallel batch solve with a
// live (unfired) cancellable context: the armed monitor path must produce
// exactly the serial results and shut the monitor down cleanly.
func TestSolveManyCtxArmedPath(t *testing.T) {
	a := testMatrix(t)
	num := factor(t, a, 2)
	s := New(num, Options{Workers: 4})
	want := make([][]float64, 6)
	batch := make([][]float64, 6)
	for i := range batch {
		want[i] = randRHS(a.N, int64(20+i))
		batch[i] = append([]float64(nil), want[i]...)
		num.Solve(want[i])
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := s.SolveManyCtx(ctx, batch); err != nil {
		t.Fatalf("SolveManyCtx: %v", err)
	}
	for i := range batch {
		checkSolution(t, batch[i], want[i])
	}
}

// TestSolveCtxBackgroundAllocs pins the fast-path contract: SolveCtx and
// SolveManyCtx with context.Background() arm no monitor and stay on the
// allocation-free steady-state path.
func TestSolveCtxBackgroundAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops items under -race; allocation counts are unrepresentative")
	}
	a := testMatrix(t)
	num := factor(t, a, 1)
	s := New(num, Options{Workers: 1})
	ctx := context.Background()
	b := randRHS(a.N, 3)
	s.SolveCtx(ctx, b) // warm the pool
	batch := [][]float64{randRHS(a.N, 4), randRHS(a.N, 5)}
	s.SolveManyCtx(ctx, batch) // warm the panel buffer
	if avg := testing.AllocsPerRun(50, func() { s.SolveCtx(ctx, b) }); avg > 0.5 {
		t.Errorf("SolveCtx(Background) allocates %.1f objects/call in steady state, want 0", avg)
	}
	if avg := testing.AllocsPerRun(50, func() { s.SolveManyCtx(ctx, batch) }); avg > 0.5 {
		t.Errorf("SolveManyCtx(Background) allocates %.1f objects/call in steady state, want 0", avg)
	}
}
