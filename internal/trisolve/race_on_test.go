//go:build race

package trisolve

// raceEnabled reports that the race detector is active: sync.Pool
// deliberately drops items under -race, so allocation-count assertions
// are meaningless there.
const raceEnabled = true
