package trisolve

import (
	"sync"

	"repro/internal/core"
)

// Workspace holds every per-call scratch buffer of the solve phase: the
// permuted right-hand side, the pivot-application scratch that used to be
// allocated inside ndSolve/gp.Solve, the iterative-refinement residuals,
// and the panel buffers for blocked multi-RHS sweeps. Workspaces are owned
// by a Solver's sync.Pool, so steady-state solves allocate nothing and any
// number of goroutines can solve concurrently, each with its own set.
type Workspace struct {
	y       []float64 // permuted RHS, length n
	scratch []float64 // diagonal-block pivot scratch, length SolveScratchLen
	r       []float64 // refinement residual, length n (lazily sized)
	rhs     []float64 // refinement saved RHS, length n (lazily sized)
	den     []float64 // Oettli–Prager denominator |A||x|+|b|, length n (lazily sized)

	panel []float64            // column-major multi-RHS panel, grown on demand
	views [][]float64          // per-column views into panel, maxPanel wide
	pw    *core.PanelWorkspace // gather buffers of the panel kernels

	// sig is the per-call point-to-point fabric of the parallel block
	// sweep. The resettable epoch variant lives in the pooled workspace so
	// steady-state parallel solves allocate no synchronization state
	// (each concurrent call owns its workspace, hence its fabric).
	sig *core.EpochSignals

	// ctl is the per-call cancellation fabric: the sweep monitor of an
	// armed (cancellable or stall-watched) solve cancels through it, and
	// sig's blocked waits poll it. Living in the pooled workspace keeps
	// armed solves as reentrant as plain ones.
	ctl core.SweepControl
}

// signals returns the workspace's block-completion fabric, reset for a new
// sweep (lazily sized on first use so serial solves never pay for it) and
// bound to the workspace's cancellation control.
func (w *Workspace) signals(nb int) *core.EpochSignals {
	if w.sig == nil || w.sig.Len() < nb {
		w.sig = core.NewEpochSignals(nb)
		w.sig.Bind(&w.ctl)
	}
	w.sig.Reset()
	return w.sig
}

func newWorkspace(sym *core.Symbolic) *Workspace {
	return &Workspace{
		y:       make([]float64, sym.N),
		scratch: make([]float64, sym.SolveScratchLen()),
		views:   make([][]float64, maxPanel),
		pw:      sym.NewPanelWorkspace(maxPanel),
	}
}

// refine returns the residual, saved-RHS and backward-error denominator
// buffers, sizing them on first use so plain solves never pay for
// refinement scratch.
func (w *Workspace) refine(n int) (r, rhs, den []float64) {
	if len(w.r) < n {
		w.r = make([]float64, n)
		w.rhs = make([]float64, n)
		w.den = make([]float64, n)
	}
	return w.r[:n], w.rhs[:n], w.den[:n]
}

// panelBuf returns a column-major n×k buffer, growing the retained slice
// if the panel is wider than any seen before.
func (w *Workspace) panelBuf(n, k int) []float64 {
	if need := n * k; cap(w.panel) < need {
		w.panel = make([]float64, need)
	}
	return w.panel[:n*k]
}

// wsPool is a typed sync.Pool of Workspaces for one factorization shape.
type wsPool struct {
	p sync.Pool
}

func newWSPool(sym *core.Symbolic) *wsPool {
	return &wsPool{p: sync.Pool{New: func() any { return newWorkspace(sym) }}}
}

func (wp *wsPool) get() *Workspace  { return wp.p.Get().(*Workspace) }
func (wp *wsPool) put(w *Workspace) { wp.p.Put(w) }
