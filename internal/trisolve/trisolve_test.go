package trisolve

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/matgen"
	"repro/internal/sparse"
)

func testMatrix(t testing.TB) *sparse.CSC {
	t.Helper()
	return matgen.Circuit(matgen.CircuitParams{
		N: 700, BTFPct: 50, Blocks: 40, Core: matgen.CoreLadder, ExtraDensity: 0.3, Seed: 11,
	})
}

func factor(t testing.TB, a *sparse.CSC, threads int) *core.Numeric {
	t.Helper()
	opts := core.DefaultOptions()
	opts.Threads = threads
	opts.BigBlockMin = 64
	num, err := core.FactorDirect(a, opts)
	if err != nil {
		t.Fatal(err)
	}
	return num
}

func randRHS(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	b := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	return b
}

// TestSolveMatchesSerial pins every trisolve path — serial, blocked
// multi-RHS, panel-parallel, and the dependency-scheduled block-parallel
// sweep — to the bit pattern of core.Numeric.Solve.
func TestSolveMatchesSerial(t *testing.T) {
	a := testMatrix(t)
	num := factor(t, a, 4)

	const k = 70 // several panels, uneven tail
	ref := make([][]float64, k)
	for c := range ref {
		ref[c] = randRHS(a.N, int64(c))
	}
	want := make([][]float64, k)
	for c := range ref {
		want[c] = append([]float64(nil), ref[c]...)
		num.Solve(want[c])
	}

	cases := []struct {
		name string
		opt  Options
	}{
		{"serial", Options{Workers: 1}},
		{"panel-parallel", Options{Workers: 4}},
		{"block-parallel", Options{Workers: 4, BlockParallelMin: 1}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := New(num, tc.opt)
			// Single solves.
			for c := 0; c < 4; c++ {
				got := append([]float64(nil), ref[c]...)
				s.Solve(got)
				for i := range got {
					if got[i] != want[c][i] {
						t.Fatalf("Solve rhs %d: bit mismatch at %d: %v != %v", c, i, got[i], want[c][i])
					}
				}
			}
			// Batched.
			got := make([][]float64, k)
			for c := range ref {
				got[c] = append([]float64(nil), ref[c]...)
			}
			s.SolveMany(got)
			for c := range got {
				for i := range got[c] {
					if got[c][i] != want[c][i] {
						t.Fatalf("SolveMany rhs %d: bit mismatch at %d: %v != %v", c, i, got[c][i], want[c][i])
					}
				}
			}
		})
	}
}

func TestSolveMatrix(t *testing.T) {
	a := testMatrix(t)
	num := factor(t, a, 2)
	s := New(num, Options{Workers: 2})
	const k = 5
	n := a.N
	x := make([]float64, n*k)
	want := make([][]float64, k)
	for c := 0; c < k; c++ {
		b := randRHS(n, 100+int64(c))
		copy(x[c*n:], b)
		want[c] = b
		num.Solve(want[c])
	}
	s.SolveMatrix(x, k)
	for c := 0; c < k; c++ {
		for i := 0; i < n; i++ {
			if x[c*n+i] != want[c][i] {
				t.Fatalf("col %d row %d: %v != %v", c, i, x[c*n+i], want[c][i])
			}
		}
	}
}

// TestConcurrentSolvesRace hammers one Solver from many goroutines mixing
// Solve and SolveMany; run under -race it checks the workspace pool and
// the parallel sweeps share nothing by accident.
func TestConcurrentSolvesRace(t *testing.T) {
	a := testMatrix(t)
	num := factor(t, a, 4)
	x := randRHS(a.N, 7)
	b := make([]float64, a.N)
	a.MulVec(b, x)

	for _, opt := range []Options{
		{Workers: 4},
		{Workers: 4, BlockParallelMin: 1},
	} {
		s := New(num, opt)
		const goroutines = 8
		var wg sync.WaitGroup
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for it := 0; it < 15; it++ {
					if (g+it)%2 == 0 {
						got := append([]float64(nil), b...)
						s.Solve(got)
						checkSolution(t, got, x)
					} else {
						batch := make([][]float64, 3)
						for c := range batch {
							batch[c] = append([]float64(nil), b...)
						}
						s.SolveMany(batch)
						for _, got := range batch {
							checkSolution(t, got, x)
						}
					}
				}
			}(g)
		}
		wg.Wait()
	}
}

func checkSolution(t *testing.T, got, want []float64) {
	t.Helper()
	for i := range got {
		if math.Abs(got[i]-want[i]) > 1e-7*(1+math.Abs(want[i])) {
			t.Errorf("x[%d] = %v, want %v", i, got[i], want[i])
			return
		}
	}
}

func TestSolveRefinedPooled(t *testing.T) {
	a := testMatrix(t)
	num := factor(t, a, 2)
	s := New(num, Options{Workers: 2})
	x := randRHS(a.N, 21)
	b := make([]float64, a.N)
	a.MulVec(b, x)
	res, err := s.SolveRefined(a, b, 3)
	if err != nil {
		t.Fatalf("SolveRefined: %v", err)
	}
	if res.Residual > 1e-12 {
		t.Fatalf("refined residual %g too large", res.Residual)
	}
	if !res.Converged {
		t.Errorf("refinement did not converge: %+v", res)
	}
	if res.BackwardError > RefineTol {
		t.Errorf("backward error %g above RefineTol", res.BackwardError)
	}
	checkSolution(t, b, x)
}

// TestSteadyStateAllocs asserts the serial solve path stops allocating
// once the workspace pool is warm.
func TestSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops items under -race; allocation counts are unrepresentative")
	}
	a := testMatrix(t)
	num := factor(t, a, 1)
	s := New(num, Options{Workers: 1})
	b := randRHS(a.N, 3)
	s.Solve(b) // warm the pool
	batch := [][]float64{randRHS(a.N, 4), randRHS(a.N, 5)}
	s.SolveMany(batch) // warm the panel buffer
	if avg := testing.AllocsPerRun(50, func() { s.Solve(b) }); avg > 0.5 {
		t.Errorf("Solve allocates %.1f objects/call in steady state, want 0", avg)
	}
	if avg := testing.AllocsPerRun(50, func() { s.SolveMany(batch) }); avg > 0.5 {
		t.Errorf("SolveMany allocates %.1f objects/call in steady state, want 0", avg)
	}
}
