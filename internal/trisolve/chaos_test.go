package trisolve

import (
	"errors"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/matgen"
)

// chaosSolver builds a factorization whose solve sweeps consult inject,
// with the dependency-scheduled block-parallel path forced on.
func chaosSolver(t *testing.T, inject *faultinject.Injector) (*Solver, *core.Numeric, []float64, []float64) {
	t.Helper()
	a := matgen.Circuit(matgen.CircuitParams{
		N: 700, BTFPct: 50, Blocks: 40, Core: matgen.CoreLadder, ExtraDensity: 0.3, Seed: 11,
	})
	opts := core.DefaultOptions()
	opts.Threads = 4
	opts.BigBlockMin = 64
	opts.Inject = inject
	num, err := core.FactorDirect(a, opts)
	if err != nil {
		t.Fatal(err)
	}
	s := New(num, Options{Workers: 4, BlockParallelMin: 1})
	x := randRHS(a.N, 7)
	b := make([]float64, a.N)
	a.MulVec(b, x)
	return s, num, b, x
}

// TestChaosSolveWorkerPanic injects a panic into one worker of the
// block-parallel solve sweep: the call must return ErrInternalPanic (not
// deadlock the sibling workers waiting on the dead worker's blocks), leave
// the factorization unharmed, and solve correctly once disarmed.
func TestChaosSolveWorkerPanic(t *testing.T) {
	inject := faultinject.New()
	s, _, b, x := chaosSolver(t, inject)

	inject.Arm(faultinject.PointWorkerPanic, faultinject.Rule{
		Sweep: faultinject.SweepSolve, SweepSet: true, Block: -1, Worker: 2, Times: 1,
	})
	got := append([]float64(nil), b...)
	err := s.Solve(got)
	if err == nil {
		t.Fatal("injected worker panic surfaced no error")
	}
	if !errors.Is(err, core.ErrInternalPanic) {
		t.Fatalf("solve error %v does not wrap ErrInternalPanic", err)
	}
	if !errors.Is(err, faultinject.ErrInjectedPanic) {
		t.Fatalf("solve error %v lost the panic value", err)
	}

	// The factorization is read-only to solves: the very next call succeeds.
	got = append([]float64(nil), b...)
	if err := s.Solve(got); err != nil {
		t.Fatalf("solve after recovered panic: %v", err)
	}
	checkSolution(t, got, x)
}

// TestChaosSolveManyWorkerPanic covers the panel-parallel multi-RHS sweep's
// isolation: one worker dies, the batch call reports it, the solver
// survives.
func TestChaosSolveManyWorkerPanic(t *testing.T) {
	inject := faultinject.New()
	s, _, b, x := chaosSolver(t, inject)

	batch := make([][]float64, 8)
	for c := range batch {
		batch[c] = append([]float64(nil), b...)
	}
	inject.Arm(faultinject.PointWorkerPanic, faultinject.Rule{
		Sweep: faultinject.SweepSolve, SweepSet: true, Block: -1, Worker: 0, Times: 1,
	})
	err := s.SolveMany(batch)
	if !errors.Is(err, core.ErrInternalPanic) {
		t.Fatalf("SolveMany error %v does not wrap ErrInternalPanic", err)
	}

	for c := range batch {
		batch[c] = append([]float64(nil), b...)
	}
	if err := s.SolveMany(batch); err != nil {
		t.Fatalf("SolveMany after recovered panic: %v", err)
	}
	for _, got := range batch {
		checkSolution(t, got, x)
	}
}

// TestChaosSolveStall stalls a block's completion-signal publication: the
// sweep must simply absorb the latency — identical results, no deadlock.
func TestChaosSolveStall(t *testing.T) {
	inject := faultinject.New()
	s, num, b, x := chaosSolver(t, inject)

	want := append([]float64(nil), b...)
	num.Solve(want)

	inject.Arm(faultinject.PointStall, faultinject.Rule{
		Sweep: faultinject.SweepSolve, SweepSet: true, Block: -1, Worker: -1,
		Times: 3, Stall: 10 * time.Millisecond,
	})
	got := append([]float64(nil), b...)
	if err := s.Solve(got); err != nil {
		t.Fatalf("stalled solve: %v", err)
	}
	if fired := inject.Fired(faultinject.PointStall); fired == 0 {
		t.Fatal("stall rule never fired")
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("stalled solve diverged from serial at %d: %v != %v", i, got[i], want[i])
		}
	}
	checkSolution(t, got, x)
}
