package trisolve

import (
	"context"
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/sparse"
	"repro/internal/trace"
)

// buildDeps derives, once per Solver, the coarse-block dependency
// structure of the BTF back-substitution: feeds[i] lists every off-block
// entry that couples a later block's solution into block i, ordered
// exactly as the serial sweep applies them (source block descending, then
// column ascending, then position ascending — so the parallel sweep is
// bit-for-bit identical to the serial one), and deps[i] lists the distinct
// source blocks, descending. The structure depends only on the sparsity
// pattern and therefore survives Refactor.
func (s *Solver) buildDeps() {
	s.depOnce.Do(func() {
		sym := s.num.Sym
		perm := s.num.Perm
		nb := sym.NumBlocks()
		feeds := make([][]feed, nb)
		for c := 0; c < sym.N; c++ {
			r0, _ := sym.BlockRange(sym.BlockOf(c))
			for p := perm.Colptr[c]; p < perm.Colptr[c+1]; p++ {
				i := perm.Rowidx[p]
				if i >= r0 {
					break // columns are row-sorted; the rest is diagonal-block
				}
				bi := sym.BlockOf(i)
				feeds[bi] = append(feeds[bi], feed{int32(i), int32(c), int32(p)})
			}
		}
		deps := make([][]int, nb)
		for i := range feeds {
			fl := feeds[i]
			// Appended in (column asc, position asc) order; a stable sort by
			// source block descending reproduces the serial push order.
			sort.SliceStable(fl, func(a, b int) bool {
				return sym.BlockOf(int(fl[a].col)) > sym.BlockOf(int(fl[b].col))
			})
			last := -1
			for _, f := range fl {
				if bj := sym.BlockOf(int(f.col)); bj != last {
					deps[i] = append(deps[i], bj)
					last = bj
				}
			}
		}
		s.feeds, s.deps = feeds, deps
		// Inverse column permutation for SolutionClosure and BlockOfColumn;
		// built here so per-step closure queries allocate only their result.
		s.colPos = sparse.InversePerm(sym.ColPerm)
	})
}

// BlockOfColumn reports the coarse block containing original column j, or
// -1 when j is out of range (mirroring SolutionClosure, which skips
// out-of-range columns instead of panicking — the two are used together).
func (s *Solver) BlockOfColumn(j int) int {
	s.buildDeps()
	if j < 0 || j >= len(s.colPos) {
		return -1
	}
	return s.num.Sym.BlockOf(s.colPos[j])
}

// SolutionClosure reports which coarse blocks' solution components can
// change when the listed original-index columns' values change: the blocks
// whose diagonal (factored) entries the columns touch, the blocks their
// coarse off-diagonal entries feed, and everything reachable from those
// through the block dependency structure — the reachability closure of the
// BTF coupling graph that `deps` encodes. A block absent from the result is
// guaranteed to produce a bit-for-bit identical solution component for the
// same right-hand side, which is what lets callers of the incremental
// refactorization path reuse cached per-block solution work.
//
// The result is freshly allocated (len NumBlocks); this is an analysis
// helper, not a hot-loop primitive.
func (s *Solver) SolutionClosure(changedCols []int) []bool {
	s.buildDeps()
	num := s.num
	sym := num.Sym
	perm := num.Perm
	nb := sym.NumBlocks()
	dirty := make([]bool, nb)
	colPos := s.colPos
	for _, c := range changedCols {
		if c < 0 || c >= sym.N {
			continue
		}
		k := colPos[c]
		bj := sym.BlockOf(k)
		r0, _ := sym.BlockRange(bj)
		for p := perm.Colptr[k]; p < perm.Colptr[k+1]; p++ {
			i := perm.Rowidx[p]
			if i >= r0 {
				// Diagonal-block entry: the block's factors change, so its
				// solution does. Rows are sorted, so the rest of the column
				// is diagonal-block too.
				dirty[bj] = true
				break
			}
			// Coarse off-diagonal entry: feeds the owning block's solution.
			dirty[sym.BlockOf(i)] = true
		}
	}
	// Close downstream: deps[i] lists strictly later blocks, so one
	// descending pass reaches the fixed point.
	for i := nb - 1; i >= 0; i-- {
		if dirty[i] {
			continue
		}
		for _, j := range s.deps[i] {
			if dirty[j] {
				dirty[i] = true
				break
			}
		}
	}
	return dirty
}

// solveBlockParallel runs the single-RHS BTF back-substitution with
// independent coarse blocks scheduled across the worker goroutines.
// Blocks are assigned round-robin; each worker walks its blocks last to
// first, waits point-to-point (via the numeric engine's Signals fabric)
// only on the exact later blocks that feed each of its blocks, pulls those
// couplings, and solves the diagonal block. Rows of y belonging to block i
// are written only by i's owner, and y values of a feeding block are read
// only after its completion signal, so the sweep is race-free; the feed
// ordering makes it bit-for-bit identical to the serial sweep.
func (s *Solver) solveBlockParallel(ctx context.Context, rhs []float64) error {
	s.buildDeps()
	num := s.num
	sym := num.Sym
	n := sym.N
	ws := s.pool.get()
	y := ws.y
	for k := 0; k < n; k++ {
		y[k] = rhs[sym.RowPerm[k]]
	}
	nb := sym.NumBlocks()
	stall := sym.Opts.StallTimeout
	armed := core.MonitorArmed(ctx, stall)
	ws.ctl.BeginSweep(armed)
	ctl := &ws.ctl
	sig := ws.signals(nb)
	var mon *core.SweepMonitor
	if armed {
		mon = core.StartSweepMonitor(core.MonitorSpec{
			Ctx: ctx, Stall: stall, Sweep: "solve", Ctl: ctl,
			Pending: func() (int, int) {
				blk := sig.FirstPending()
				if blk < 0 {
					return -1, -1
				}
				return blk, (nb - 1 - blk) % s.workers
			},
		})
	}
	rec := sym.Opts.Trace
	inject := sym.Opts.Inject
	var wg sync.WaitGroup
	var errMu sync.Mutex
	var firstErr error
	for w := 0; w < s.workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Panic isolation: record the first panic and fail the fabric,
			// so siblings blocked in dependency waits abort (Wait returns
			// false) instead of deadlocking on the dead worker's slots.
			defer func() {
				if r := recover(); r != nil {
					errMu.Lock()
					if firstErr == nil {
						firstErr = panicErr(r)
					}
					errMu.Unlock()
					sig.Fail()
				}
			}()
			inject.WorkerPanic(faultinject.SweepSolve, w)
			wws := ws
			if w != 0 {
				wws = s.pool.get()
				defer s.pool.put(wws)
			}
			// Descending order per worker: every dependency points at a
			// strictly later block, so the schedule is acyclic and
			// deadlock-free. When traced, each block's event spans the
			// coupling pull plus the diagonal solve, carrying the blocked
			// nanoseconds its dependency waits cost.
			var waitNs int64
			for blk := nb - 1 - w; blk >= 0; blk -= s.workers {
				if ctl.Canceled() {
					return
				}
				for _, j := range s.deps[blk] {
					if rec == nil {
						if !sig.Wait(j) {
							return
						}
					} else {
						d, ok := sig.WaitTimed(j)
						waitNs += d
						if !ok {
							return
						}
					}
				}
				t0 := rec.Now()
				for _, f := range s.feeds[blk] {
					if xc := y[f.col]; xc != 0 {
						y[f.row] -= num.Perm.Values[f.p] * xc
					}
				}
				num.SolveBlock(blk, y, wws.scratch)
				if rec != nil {
					rec.Record(trace.Event{Start: t0, End: rec.Now(), Wait: waitNs,
						Worker: trace.SolveWorker(w), Block: int32(blk), Kind: trace.KindSolveBlock, Phase: trace.PhaseSolve})
					waitNs = 0
				}
				inject.StallPoint(faultinject.SweepSolve, blk)
				sig.Set(blk)
			}
		}(w)
	}
	early := false
	if armed {
		// Per-block join: each wait breaks on cancellation, so a fired
		// deadline or stall verdict returns to the caller while a wedged
		// straggler is still asleep inside a kernel.
		for blk := 0; blk < nb; blk++ {
			if !sig.Wait(blk) {
				early = true
				break
			}
		}
	}
	merr := mon.Stop()
	if early && merr == nil {
		// The fabric broke by Fail (a worker panic), not by our monitor:
		// workers unwind promptly, so the full join stays cheap and makes
		// the error read below race-free.
		early = false
	}
	if !early {
		wg.Wait()
	}
	if early {
		// Stragglers may still write ws.y; hand the workspace to a reaper
		// that repools it only once every worker has exited. rhs itself is
		// untouched — workers only write the workspace copy.
		go func() {
			wg.Wait()
			s.pool.put(ws)
		}()
		return merr
	}
	defer s.pool.put(ws)
	if firstErr != nil {
		// rhs is left as-is (partially solved values never leave y); the
		// factorization itself is untouched — solves only read it.
		return firstErr
	}
	if merr != nil {
		return merr
	}
	for k := 0; k < n; k++ {
		rhs[sym.ColPerm[k]] = y[k]
	}
	return nil
}
