package slumt

import (
	"math"
	"math/rand"
	"testing"
)

import "repro/internal/sparse"

func randNonsingular(rng *rand.Rand, n int, density float64) *sparse.CSC {
	coo := sparse.NewCOO(n, n, int(density*float64(n*n))+n)
	for i := 0; i < n; i++ {
		coo.Add(i, i, 4+rng.Float64())
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j && rng.Float64() < density {
				coo.Add(i, j, rng.NormFloat64())
			}
		}
	}
	return coo.ToCSC(false)
}

func TestFactorSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := randNonsingular(rng, 90, 0.07)
	num, err := Factor(a, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, a.N)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	b := make([]float64, a.N)
	a.MulVec(b, x)
	num.Solve(b)
	for i := range x {
		if math.Abs(b[i]-x[i]) > 1e-7*(1+math.Abs(x[i])) {
			t.Fatalf("x[%d] = %v, want %v", i, b[i], x[i])
		}
	}
}

func TestParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := randNonsingular(rng, 70, 0.08)
	s, err := Factor(a, Options{Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	p, err := Factor(a, Options{Threads: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := range s.L.Values {
		if math.Abs(s.L.Values[i]-p.L.Values[i]) > 1e-12 {
			t.Fatalf("L value %d differs", i)
		}
	}
	for i := range s.U.Values {
		if math.Abs(s.U.Values[i]-p.U.Values[i]) > 1e-12 {
			t.Fatalf("U value %d differs", i)
		}
	}
}

func TestAgreesWithPMKLFill(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randNonsingular(rng, 60, 0.1)
	num, err := Factor(a, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if num.NnzLU() < a.Nnz() {
		t.Fatalf("|L+U| = %d < |A| = %d", num.NnzLU(), a.Nnz())
	}
}
