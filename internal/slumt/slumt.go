// Package slumt implements the SuperLU-MT-like baseline used in the paper's
// Figure 5: a shared-memory parallel LU with a flat one-dimensional data
// layout. It reuses the PMKL-style static analysis (no BTF, symmetric-union
// fill pattern, static pivoting) but factors column by column, scheduling
// columns by elimination-tree level with a global barrier between levels —
// exactly the 1D structure whose separator bottleneck Figure 1 of the paper
// illustrates. Compared to the supernodal baseline it has finer-grained
// barriers and no dense panels, so it trails PMKL on most matrices, which
// is the behaviour the paper reports.
package slumt

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/etree"
	"repro/internal/pmkl"
	"repro/internal/sparse"
)

// Options configures the numeric phase.
type Options struct {
	Threads int
	// PerturbRel is the static pivot perturbation threshold (default
	// 1e-10, as in the PMKL baseline).
	PerturbRel float64
}

// DefaultOptions returns single-threaded defaults.
func DefaultOptions() Options { return Options{Threads: 1, PerturbRel: 1e-10} }

// Numeric is a factorization with the 1D column layout.
type Numeric struct {
	Sym  *pmkl.Symbolic
	L, U *sparse.CSC
	Opts Options
	// ColSeconds records each column's compute time; byLevel holds the
	// column level schedule. Together they give the simulated makespan.
	ColSeconds []float64
	byLevel    [][]int
}

// SimulatedSeconds reports the level-by-level makespan of the recorded
// column durations on `threads` ideal cores (greedy bin packing per level,
// with a barrier between levels — the 1D layout's cost model).
func (num *Numeric) SimulatedSeconds(threads int) float64 {
	if threads < 1 {
		threads = 1
	}
	total := 0.0
	for _, level := range num.byLevel {
		bins := make([]float64, threads)
		for _, c := range level {
			best := 0
			for i := 1; i < threads; i++ {
				if bins[i] < bins[best] {
					best = i
				}
			}
			bins[best] += num.ColSeconds[c]
		}
		max := 0.0
		for _, b := range bins {
			if b > max {
				max = b
			}
		}
		total += max
	}
	return total
}

// Factor analyzes and factors a with the 1D level-scheduled algorithm.
func Factor(a *sparse.CSC, opts Options) (*Numeric, error) {
	sym, err := pmkl.Analyze(a, pmkl.Options{Threads: 1})
	if err != nil {
		return nil, fmt.Errorf("slumt: %w", err)
	}
	return FactorWithSymbolic(a, sym, opts)
}

// FactorWithSymbolic runs the numeric phase against an existing analysis.
func FactorWithSymbolic(a *sparse.CSC, sym *pmkl.Symbolic, opts Options) (*Numeric, error) {
	if a.N != sym.N {
		return nil, fmt.Errorf("slumt: dimension mismatch")
	}
	if opts.Threads < 1 {
		opts.Threads = 1
	}
	if opts.PerturbRel <= 0 {
		opts.PerturbRel = 1e-10
	}
	b := a.Permute(sym.RowPerm, sym.ColPerm)
	num := &Numeric{Sym: sym, L: sym.LPat.Clone(), U: sym.UPat.Clone(), Opts: opts,
		ColSeconds: make([]float64, sym.N)}
	for i := range num.L.Values {
		num.L.Values[i] = 0
	}
	minPiv := opts.PerturbRel * b.MaxAbs()

	// Column-level schedule from the scalar etree.
	_, byLevel := etree.LevelSets(sym.Parent)
	num.byLevel = byLevel

	var firstErr error
	var errMu sync.Mutex
	for _, level := range byLevel {
		work := make(chan int, len(level))
		for _, c := range level {
			work <- c
		}
		close(work)
		var wg sync.WaitGroup
		for w := 0; w < opts.Threads; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				x := make([]float64, sym.N)
				for j := range work {
					t0 := time.Now()
					err := factorColumn(num, b, j, x, minPiv)
					num.ColSeconds[j] = time.Since(t0).Seconds()
					if err != nil {
						errMu.Lock()
						if firstErr == nil {
							firstErr = err
						}
						errMu.Unlock()
					}
				}
			}()
		}
		wg.Wait()
		if firstErr != nil {
			return nil, firstErr
		}
	}
	return num, nil
}

// factorColumn performs the static-pattern left-looking update for one
// column: x = A(:,j); for each k in U(:,j) ascending, x -= L(:,k)·x[k];
// then scale below the pivot.
func factorColumn(num *Numeric, b *sparse.CSC, j int, x []float64, minPiv float64) error {
	l, u := num.L, num.U
	for p := b.Colptr[j]; p < b.Colptr[j+1]; p++ {
		x[b.Rowidx[p]] = b.Values[p]
	}
	up0, up1 := u.Colptr[j], u.Colptr[j+1]
	for p := up0; p < up1-1; p++ {
		k := u.Rowidx[p]
		xk := x[k]
		u.Values[p] = xk
		x[k] = 0
		if xk == 0 {
			continue
		}
		for q := l.Colptr[k] + 1; q < l.Colptr[k+1]; q++ {
			x[l.Rowidx[q]] -= l.Values[q] * xk
		}
	}
	piv := x[j]
	if piv < minPiv && piv > -minPiv {
		if piv < 0 {
			piv = -minPiv
		} else {
			piv = minPiv
		}
		if minPiv == 0 {
			return fmt.Errorf("slumt: zero pivot at column %d", j)
		}
	}
	u.Values[up1-1] = piv
	x[j] = 0
	lp0, lp1 := l.Colptr[j], l.Colptr[j+1]
	l.Values[lp0] = 1
	for p := lp0 + 1; p < lp1; p++ {
		i := l.Rowidx[p]
		l.Values[p] = x[i] / piv
		x[i] = 0
	}
	return nil
}

// Solve solves A x = rhs in place.
func (num *Numeric) Solve(rhs []float64) {
	sym := num.Sym
	n := sym.N
	y := make([]float64, n)
	for k := 0; k < n; k++ {
		y[k] = rhs[sym.RowPerm[k]]
	}
	l := num.L
	for j := 0; j < n; j++ {
		yj := y[j]
		if yj == 0 {
			continue
		}
		for p := l.Colptr[j] + 1; p < l.Colptr[j+1]; p++ {
			y[l.Rowidx[p]] -= l.Values[p] * yj
		}
	}
	u := num.U
	for j := n - 1; j >= 0; j-- {
		p1 := u.Colptr[j+1]
		yj := y[j] / u.Values[p1-1]
		y[j] = yj
		if yj == 0 {
			continue
		}
		for p := u.Colptr[j]; p < p1-1; p++ {
			y[u.Rowidx[p]] -= u.Values[p] * yj
		}
	}
	for k := 0; k < n; k++ {
		rhs[sym.ColPerm[k]] = y[k]
	}
}

// NnzLU reports |L+U|.
func (num *Numeric) NnzLU() int { return num.Sym.NnzLU() }
