// Package klu reimplements the KLU direct solver (Davis & Natarajan, ACM
// TOMS Algorithm 907): permute to block triangular form with a zero-free
// diagonal (maximum weight matching + strongly connected components), apply
// an AMD fill-reducing ordering to every diagonal block, factor each block
// with the serial Gilbert–Peierls algorithm, and solve by block
// back-substitution. It is the sequential baseline every speedup in the
// paper is measured against, and the algorithmic ancestor Basker
// parallelizes.
package klu

import (
	"fmt"
	"time"

	"repro/internal/etree"
	"repro/internal/gp"
	"repro/internal/order/amd"
	"repro/internal/order/btf"
	"repro/internal/sparse"
)

// Options configures the analysis and factorization.
type Options struct {
	// UseBTF enables the block triangular form (default true via
	// DefaultOptions). Without it the whole matrix is one block.
	UseBTF bool
	// UseMWCM selects the bottleneck weighted matching for the zero-free
	// diagonal; otherwise a cardinality matching is used.
	UseMWCM bool
	// PivotTol is the Gilbert–Peierls diagonal preference tolerance.
	PivotTol float64
}

// DefaultOptions mirror KLU's defaults.
func DefaultOptions() Options {
	return Options{UseBTF: true, UseMWCM: true, PivotTol: gp.DefaultPivotTol}
}

// Symbolic holds the ordering analysis, reusable across matrices with the
// same pattern.
type Symbolic struct {
	N        int
	RowPerm  []int // new-to-old, matching ∘ BTF ∘ per-block AMD
	ColPerm  []int
	BlockPtr []int
	EstNnz   []int // per-block factor-size estimate
	Opts     Options

	// BTFPercent and NumBlocks feed the Table I statistics.
	BTFPercent float64
}

// NumBlocks reports the number of BTF diagonal blocks.
func (s *Symbolic) NumBlocks() int { return len(s.BlockPtr) - 1 }

// Numeric holds the factored blocks plus the permuted off-diagonal entries
// needed for the solve.
type Numeric struct {
	Sym     *Symbolic
	Blocks  []*gp.Factors
	Perm    *sparse.CSC // B = A(RowPerm, ColPerm), kept for off-block solve
	FlopsLU int64
	// KernelSeconds is the summed per-block factorization time, the serial
	// counterpart of the parallel solvers' SimulatedSeconds (matrix
	// permutation overhead excluded consistently across solvers).
	KernelSeconds float64
}

// Analyze computes the BTF + AMD orderings for the pattern of a.
func Analyze(a *sparse.CSC, opts Options) (*Symbolic, error) {
	if a.M != a.N {
		return nil, fmt.Errorf("klu: matrix must be square, got %d×%d", a.M, a.N)
	}
	n := a.N
	sym := &Symbolic{N: n, Opts: opts}

	if opts.UseBTF {
		form, err := btf.Compute(a, opts.UseMWCM)
		if err != nil {
			return nil, fmt.Errorf("klu: btf: %w", err)
		}
		sym.RowPerm = form.RowPerm
		sym.ColPerm = form.ColPerm
		sym.BlockPtr = form.BlockPtr
		sym.BTFPercent = form.PercentInSmallBlocks(smallBlockThreshold)
	} else {
		sym.RowPerm = sparse.IdentityPerm(n)
		sym.ColPerm = sparse.IdentityPerm(n)
		sym.BlockPtr = []int{0, n}
		sym.BTFPercent = 0
	}

	// Per-block AMD on the diagonal blocks of the BTF-permuted pattern,
	// composed into the global permutations symmetrically.
	b := a.Permute(sym.RowPerm, sym.ColPerm)
	rowPerm := make([]int, n)
	colPerm := make([]int, n)
	sym.EstNnz = make([]int, sym.NumBlocks())
	for blk := 0; blk < sym.NumBlocks(); blk++ {
		r0, r1 := sym.BlockPtr[blk], sym.BlockPtr[blk+1]
		bs := r1 - r0
		if bs == 1 {
			rowPerm[r0] = sym.RowPerm[r0]
			colPerm[r0] = sym.ColPerm[r0]
			sym.EstNnz[blk] = 1
			continue
		}
		sub := b.ExtractBlock(r0, r1, r0, r1)
		local := amd.Order(sub)
		for k := 0; k < bs; k++ {
			rowPerm[r0+k] = sym.RowPerm[r0+local[k]]
			colPerm[r0+k] = sym.ColPerm[r0+local[k]]
		}
		// Fill estimate from the Cholesky column counts of the reordered
		// block pattern.
		ordered := sub.Permute(local, local)
		parent := etree.Symmetric(ordered)
		counts := etree.ColCounts(ordered, parent)
		est := 0
		for _, c := range counts {
			est += c
		}
		sym.EstNnz[blk] = 2 * est // L and U halves
	}
	sym.RowPerm = rowPerm
	sym.ColPerm = colPerm
	return sym, nil
}

// smallBlockThreshold matches the paper's notion of "small independent
// diagonal submatrices": anything below this size counts toward BTF%.
const smallBlockThreshold = 512

// Factor numerically factors a using a prior analysis.
func Factor(a *sparse.CSC, sym *Symbolic) (*Numeric, error) {
	if a.N != sym.N || a.M != sym.N {
		return nil, fmt.Errorf("klu: dimension mismatch with symbolic analysis")
	}
	b := a.Permute(sym.RowPerm, sym.ColPerm)
	num := &Numeric{Sym: sym, Perm: b, Blocks: make([]*gp.Factors, sym.NumBlocks())}
	ws := gp.NewWorkspace(sym.N)
	opts := gp.Options{PivotTol: sym.Opts.PivotTol}
	for blk := 0; blk < sym.NumBlocks(); blk++ {
		r0, r1 := sym.BlockPtr[blk], sym.BlockPtr[blk+1]
		sub := b.ExtractBlock(r0, r1, r0, r1)
		t0 := time.Now()
		f, err := gp.Factor(sub, sym.EstNnz[blk], opts, ws)
		num.KernelSeconds += time.Since(t0).Seconds()
		if err != nil {
			return nil, fmt.Errorf("klu: block %d (rows %d..%d): %w", blk, r0, r1, err)
		}
		num.Blocks[blk] = f
		num.FlopsLU += f.Flops
	}
	return num, nil
}

// FactorDirect is the convenience one-shot Analyze+Factor.
func FactorDirect(a *sparse.CSC, opts Options) (*Numeric, error) {
	sym, err := Analyze(a, opts)
	if err != nil {
		return nil, err
	}
	return Factor(a, sym)
}

// Refactor recomputes the numeric values for a matrix with the same pattern
// (and acceptable pivots), reusing orderings, patterns and pivot sequences.
func (num *Numeric) Refactor(a *sparse.CSC) error {
	sym := num.Sym
	if a.N != sym.N {
		return fmt.Errorf("klu: refactor dimension mismatch")
	}
	b := a.Permute(sym.RowPerm, sym.ColPerm)
	num.Perm = b
	ws := gp.NewWorkspace(sym.N)
	for blk := 0; blk < sym.NumBlocks(); blk++ {
		r0, r1 := sym.BlockPtr[blk], sym.BlockPtr[blk+1]
		sub := b.ExtractBlock(r0, r1, r0, r1)
		if err := num.Blocks[blk].Refactor(sub, ws); err != nil {
			return fmt.Errorf("klu: refactor block %d: %w", blk, err)
		}
	}
	return nil
}

// Solve solves A x = b, overwriting b with x.
func (num *Numeric) Solve(b []float64) {
	sym := num.Sym
	n := sym.N
	y := make([]float64, n)
	for k := 0; k < n; k++ {
		y[k] = b[sym.RowPerm[k]]
	}
	// Block back-substitution, last block first.
	for blk := sym.NumBlocks() - 1; blk >= 0; blk-- {
		r0, r1 := sym.BlockPtr[blk], sym.BlockPtr[blk+1]
		z := y[r0:r1]
		num.Blocks[blk].Solve(z)
		// Subtract the influence of this block's solution on earlier rows.
		for c := r0; c < r1; c++ {
			xc := y[c]
			if xc == 0 {
				continue
			}
			for p := num.Perm.Colptr[c]; p < num.Perm.Colptr[c+1]; p++ {
				i := num.Perm.Rowidx[p]
				if i >= r0 {
					break // rows within the block: already handled
				}
				y[i] -= num.Perm.Values[p] * xc
			}
		}
	}
	for k := 0; k < n; k++ {
		b[sym.ColPerm[k]] = y[k]
	}
}

// NnzLU reports |L+U|: factored entries in all diagonal blocks plus the
// off-diagonal entries of the permuted matrix that participate in the
// solve. This is the statistic of Table I (which can be smaller than |A|).
func (num *Numeric) NnzLU() int {
	total := 0
	for _, f := range num.Blocks {
		total += f.NnzLU()
	}
	// Off-diagonal (above-block) entries.
	sym := num.Sym
	blockOf := make([]int, sym.N)
	for blk := 0; blk < sym.NumBlocks(); blk++ {
		for i := sym.BlockPtr[blk]; i < sym.BlockPtr[blk+1]; i++ {
			blockOf[i] = blk
		}
	}
	for j := 0; j < sym.N; j++ {
		bj := blockOf[j]
		for p := num.Perm.Colptr[j]; p < num.Perm.Colptr[j+1]; p++ {
			if blockOf[num.Perm.Rowidx[p]] != bj {
				total++
			}
		}
	}
	return total
}

// FillDensity reports |L+U| / |A|, Table I's fill-in density.
func (num *Numeric) FillDensity(a *sparse.CSC) float64 {
	return float64(num.NnzLU()) / float64(a.Nnz())
}
