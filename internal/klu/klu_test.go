package klu

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/sparse"
)

// randCircuitLike builds a nonsingular matrix with many small strongly
// connected blocks plus one larger coupled core, resembling a circuit
// matrix after modified nodal analysis.
func randCircuitLike(rng *rand.Rand, n int) *sparse.CSC {
	coo := sparse.NewCOO(n, n, 6*n)
	for i := 0; i < n; i++ {
		coo.Add(i, i, 5+rng.Float64())
	}
	// A strongly connected core over the first third.
	core := n / 3
	if core < 2 {
		core = 2
	}
	for i := 0; i < core; i++ {
		coo.Add((i+1)%core, i, 1+rng.Float64())
		if rng.Float64() < 0.6 {
			coo.Add(rng.Intn(core), i, rng.NormFloat64())
		}
	}
	// Small 2-cycles scattered through the rest.
	for i := core; i+1 < n; i += 2 {
		coo.Add(i, i+1, rng.NormFloat64()*0.5)
		coo.Add(i+1, i, rng.NormFloat64()*0.5)
	}
	// Sparse upper coupling (keeps BTF nontrivial).
	for e := 0; e < n; e++ {
		i, j := rng.Intn(n), rng.Intn(n)
		if i < j {
			coo.Add(i, j, rng.NormFloat64()*0.3)
		}
	}
	return coo.ToCSC(false)
}

func residual(a *sparse.CSC, x, b []float64) float64 {
	r := make([]float64, a.M)
	a.MulVec(r, x)
	worst := 0.0
	scale := 0.0
	for i := range r {
		if d := math.Abs(r[i] - b[i]); d > worst {
			worst = d
		}
		if v := math.Abs(b[i]); v > scale {
			scale = v
		}
	}
	if scale == 0 {
		scale = 1
	}
	return worst / scale
}

func solveCheck(t *testing.T, a *sparse.CSC, num *Numeric, tol float64) {
	t.Helper()
	rng := rand.New(rand.NewSource(99))
	x := make([]float64, a.N)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	b := make([]float64, a.N)
	a.MulVec(b, x)
	orig := append([]float64(nil), b...)
	num.Solve(b)
	if res := residual(a, b, orig); res > tol {
		t.Fatalf("relative residual %g > %g", res, tol)
	}
}

func TestFactorSolveCircuit(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := randCircuitLike(rng, 120)
	num, err := FactorDirect(a, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if num.Sym.NumBlocks() < 2 {
		t.Fatalf("expected multiple BTF blocks, got %d", num.Sym.NumBlocks())
	}
	solveCheck(t, a, num, 1e-9)
}

func TestFactorWithoutBTF(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := randCircuitLike(rng, 80)
	opts := DefaultOptions()
	opts.UseBTF = false
	num, err := FactorDirect(a, opts)
	if err != nil {
		t.Fatal(err)
	}
	if num.Sym.NumBlocks() != 1 {
		t.Fatalf("UseBTF=false should give 1 block, got %d", num.Sym.NumBlocks())
	}
	solveCheck(t, a, num, 1e-9)
}

func TestBTFReducesFactorSize(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randCircuitLike(rng, 200)
	withBTF, err := FactorDirect(a, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.UseBTF = false
	without, err := FactorDirect(a, opts)
	if err != nil {
		t.Fatal(err)
	}
	if withBTF.NnzLU() > without.NnzLU() {
		t.Fatalf("BTF |L+U| = %d > no-BTF %d", withBTF.NnzLU(), without.NnzLU())
	}
	t.Logf("|L+U|: with BTF %d, without %d", withBTF.NnzLU(), without.NnzLU())
}

func TestRefactorSequence(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := randCircuitLike(rng, 100)
	num, err := FactorDirect(a, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 5; trial++ {
		b := a.Clone()
		for i := range b.Values {
			b.Values[i] *= 1 + 0.2*rng.Float64()
		}
		if err := num.Refactor(b); err != nil {
			t.Fatal(err)
		}
		solveCheck(t, b, num, 1e-8)
	}
}

func TestSolveRandomProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(120)
		a := randCircuitLike(rng, n)
		num, err := FactorDirect(a, DefaultOptions())
		if err != nil {
			return false
		}
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		b := make([]float64, n)
		a.MulVec(b, x)
		num.Solve(b)
		for i := range x {
			if math.Abs(b[i]-x[i]) > 1e-7*(1+math.Abs(x[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestStructurallySingular(t *testing.T) {
	coo := sparse.NewCOO(3, 3, 3)
	coo.Add(0, 0, 1)
	coo.Add(1, 1, 1) // column 2 empty
	if _, err := FactorDirect(coo.ToCSC(false), DefaultOptions()); err == nil {
		t.Fatal("expected error for structurally singular matrix")
	}
}

func TestRectangularRejected(t *testing.T) {
	if _, err := Analyze(sparse.NewCSC(3, 4, 0), DefaultOptions()); err == nil {
		t.Fatal("expected dimension error")
	}
}

func TestFillDensityCanBeBelowOne(t *testing.T) {
	// A lower-triangular-ish matrix (after BTF: all 1×1 blocks) has
	// |L+U| = |diag| + off entries involved, typically ≈ |A|; build a pure
	// upper triangular matrix where factoring is trivial.
	n := 50
	rng := rand.New(rand.NewSource(5))
	coo := sparse.NewCOO(n, n, 4*n)
	for i := 0; i < n; i++ {
		coo.Add(i, i, 2)
	}
	for e := 0; e < 3*n; e++ {
		i := rng.Intn(n - 1)
		j := i + 1 + rng.Intn(n-i-1)
		coo.Add(i, j, rng.NormFloat64())
	}
	a := coo.ToCSC(false)
	num, err := FactorDirect(a, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if num.Sym.NumBlocks() != n {
		t.Fatalf("triangular matrix should give n 1×1 blocks, got %d", num.Sym.NumBlocks())
	}
	if fd := num.FillDensity(a); fd > 1.0001 {
		t.Fatalf("fill density %v should not exceed 1 for triangular input", fd)
	}
	solveCheck(t, a, num, 1e-10)
}
