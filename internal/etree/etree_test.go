package etree

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/sparse"
)

// tridiag returns a tridiagonal pattern: its etree is a path.
func tridiag(n int) *sparse.CSC {
	coo := sparse.NewCOO(n, n, 3*n)
	for i := 0; i < n; i++ {
		coo.Add(i, i, 2)
		if i > 0 {
			coo.Add(i, i-1, -1)
			coo.Add(i-1, i, -1)
		}
	}
	return coo.ToCSC(false)
}

func TestSymmetricEtreePath(t *testing.T) {
	a := tridiag(10)
	parent := Symmetric(a)
	for j := 0; j < 9; j++ {
		if parent[j] != j+1 {
			t.Fatalf("parent[%d] = %d, want %d", j, parent[j], j+1)
		}
	}
	if parent[9] != -1 {
		t.Fatalf("root parent = %d, want -1", parent[9])
	}
}

func TestSymmetricEtreeArrow(t *testing.T) {
	// Arrow matrix: every column connected to the last; etree is a star at
	// n-1 for the "borders last" pattern (each j's lowest fill ancestor is
	// n-1 directly).
	n := 8
	coo := sparse.NewCOO(n, n, 3*n)
	for i := 0; i < n; i++ {
		coo.Add(i, i, 2)
		coo.Add(n-1, i, 1)
		coo.Add(i, n-1, 1)
	}
	parent := Symmetric(coo.ToCSC(false))
	for j := 0; j < n-1; j++ {
		if parent[j] != n-1 {
			t.Fatalf("parent[%d] = %d, want %d", j, parent[j], n-1)
		}
	}
}

func TestPostorderIsValid(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(60)
		// Random forest: parent[j] > j or -1.
		parent := make([]int, n)
		for j := 0; j < n; j++ {
			if j == n-1 || rng.Float64() < 0.2 {
				parent[j] = -1
			} else {
				parent[j] = j + 1 + rng.Intn(n-j-1)
			}
		}
		post := Postorder(parent)
		if !sparse.IsPerm(post) {
			return false
		}
		// Children must appear before parents.
		pos := make([]int, n)
		for k, v := range post {
			pos[v] = k
		}
		for j := 0; j < n; j++ {
			if parent[j] != -1 && pos[j] >= pos[parent[j]] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestColCountsTridiag(t *testing.T) {
	a := tridiag(6)
	parent := Symmetric(a)
	counts := ColCounts(a, parent)
	// Tridiagonal Cholesky has 2 nonzeros per column except the last.
	for j := 0; j < 5; j++ {
		if counts[j] != 2 {
			t.Fatalf("count[%d] = %d, want 2", j, counts[j])
		}
	}
	if counts[5] != 1 {
		t.Fatalf("count[5] = %d, want 1", counts[5])
	}
}

func TestColCountsDense(t *testing.T) {
	n := 7
	coo := sparse.NewCOO(n, n, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			coo.Add(i, j, 1)
		}
	}
	a := coo.ToCSC(false)
	counts := ColCounts(a, Symmetric(a))
	for j := 0; j < n; j++ {
		if counts[j] != n-j {
			t.Fatalf("count[%d] = %d, want %d", j, counts[j], n-j)
		}
	}
}

func TestLevelSets(t *testing.T) {
	// Balanced binary tree of 7 nodes: 0,1,2,3 leaves? Build explicitly:
	// parent: 0->4, 1->4, 2->5, 3->5, 4->6, 5->6, 6 root.
	parent := []int{4, 4, 5, 5, 6, 6, -1}
	level, byLevel := LevelSets(parent)
	want := []int{0, 0, 0, 0, 1, 1, 2}
	for i := range want {
		if level[i] != want[i] {
			t.Fatalf("level[%d] = %d, want %d", i, level[i], want[i])
		}
	}
	if len(byLevel) != 3 || len(byLevel[0]) != 4 || len(byLevel[2]) != 1 {
		t.Fatalf("byLevel shape wrong: %v", byLevel)
	}
}

func TestColEtreeRect(t *testing.T) {
	// Column etree of a bidiagonal rectangular matrix is a path.
	m, n := 6, 5
	coo := sparse.NewCOO(m, n, 2*n)
	for j := 0; j < n; j++ {
		coo.Add(j, j, 1)
		coo.Add(j+1, j, 1)
	}
	parent := ColEtree(coo.ToCSC(false))
	for j := 0; j < n-1; j++ {
		if parent[j] != j+1 {
			t.Fatalf("col etree parent[%d] = %d, want %d", j, parent[j], j+1)
		}
	}
}

func TestFlopEstimate(t *testing.T) {
	if f := FlopEstimate([]int{2, 3}); f != 13 {
		t.Fatalf("FlopEstimate = %v, want 13", f)
	}
}
