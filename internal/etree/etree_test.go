package etree

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/sparse"
)

// tridiag returns a tridiagonal pattern: its etree is a path.
func tridiag(n int) *sparse.CSC {
	coo := sparse.NewCOO(n, n, 3*n)
	for i := 0; i < n; i++ {
		coo.Add(i, i, 2)
		if i > 0 {
			coo.Add(i, i-1, -1)
			coo.Add(i-1, i, -1)
		}
	}
	return coo.ToCSC(false)
}

func TestSymmetricEtreePath(t *testing.T) {
	a := tridiag(10)
	parent := Symmetric(a)
	for j := 0; j < 9; j++ {
		if parent[j] != j+1 {
			t.Fatalf("parent[%d] = %d, want %d", j, parent[j], j+1)
		}
	}
	if parent[9] != -1 {
		t.Fatalf("root parent = %d, want -1", parent[9])
	}
}

func TestSymmetricEtreeArrow(t *testing.T) {
	// Arrow matrix: every column connected to the last; etree is a star at
	// n-1 for the "borders last" pattern (each j's lowest fill ancestor is
	// n-1 directly).
	n := 8
	coo := sparse.NewCOO(n, n, 3*n)
	for i := 0; i < n; i++ {
		coo.Add(i, i, 2)
		coo.Add(n-1, i, 1)
		coo.Add(i, n-1, 1)
	}
	parent := Symmetric(coo.ToCSC(false))
	for j := 0; j < n-1; j++ {
		if parent[j] != n-1 {
			t.Fatalf("parent[%d] = %d, want %d", j, parent[j], n-1)
		}
	}
}

func TestPostorderIsValid(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(60)
		// Random forest: parent[j] > j or -1.
		parent := make([]int, n)
		for j := 0; j < n; j++ {
			if j == n-1 || rng.Float64() < 0.2 {
				parent[j] = -1
			} else {
				parent[j] = j + 1 + rng.Intn(n-j-1)
			}
		}
		post := Postorder(parent)
		if !sparse.IsPerm(post) {
			return false
		}
		// Children must appear before parents.
		pos := make([]int, n)
		for k, v := range post {
			pos[v] = k
		}
		for j := 0; j < n; j++ {
			if parent[j] != -1 && pos[j] >= pos[parent[j]] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestColCountsTridiag(t *testing.T) {
	a := tridiag(6)
	parent := Symmetric(a)
	counts := ColCounts(a, parent)
	// Tridiagonal Cholesky has 2 nonzeros per column except the last.
	for j := 0; j < 5; j++ {
		if counts[j] != 2 {
			t.Fatalf("count[%d] = %d, want 2", j, counts[j])
		}
	}
	if counts[5] != 1 {
		t.Fatalf("count[5] = %d, want 1", counts[5])
	}
}

func TestColCountsDense(t *testing.T) {
	n := 7
	coo := sparse.NewCOO(n, n, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			coo.Add(i, j, 1)
		}
	}
	a := coo.ToCSC(false)
	counts := ColCounts(a, Symmetric(a))
	for j := 0; j < n; j++ {
		if counts[j] != n-j {
			t.Fatalf("count[%d] = %d, want %d", j, counts[j], n-j)
		}
	}
}

func TestLevelSets(t *testing.T) {
	// Balanced binary tree of 7 nodes: 0,1,2,3 leaves? Build explicitly:
	// parent: 0->4, 1->4, 2->5, 3->5, 4->6, 5->6, 6 root.
	parent := []int{4, 4, 5, 5, 6, 6, -1}
	level, byLevel := LevelSets(parent)
	want := []int{0, 0, 0, 0, 1, 1, 2}
	for i := range want {
		if level[i] != want[i] {
			t.Fatalf("level[%d] = %d, want %d", i, level[i], want[i])
		}
	}
	if len(byLevel) != 3 || len(byLevel[0]) != 4 || len(byLevel[2]) != 1 {
		t.Fatalf("byLevel shape wrong: %v", byLevel)
	}
}

func TestColEtreeRect(t *testing.T) {
	// Column etree of a bidiagonal rectangular matrix is a path.
	m, n := 6, 5
	coo := sparse.NewCOO(m, n, 2*n)
	for j := 0; j < n; j++ {
		coo.Add(j, j, 1)
		coo.Add(j+1, j, 1)
	}
	parent := ColEtree(coo.ToCSC(false))
	for j := 0; j < n-1; j++ {
		if parent[j] != j+1 {
			t.Fatalf("col etree parent[%d] = %d, want %d", j, parent[j], j+1)
		}
	}
}

func TestFlopEstimate(t *testing.T) {
	if f := FlopEstimate([]int{2, 3}); f != 13 {
		t.Fatalf("FlopEstimate = %v, want 13", f)
	}
}

// TestRelaxedSupernodesChain: a pure-chain etree (tridiagonal pattern)
// amalgamates into maxWidth-bounded runs regardless of the relax bound.
func TestRelaxedSupernodesChain(t *testing.T) {
	parent := Symmetric(tridiag(10)) // parent[j] = j+1
	xsup := RelaxedSupernodes(parent, nil, 1, 4)
	want := []int{0, 4, 8, 10}
	if len(xsup) != len(want) {
		t.Fatalf("xsup = %v, want %v", xsup, want)
	}
	for i, v := range want {
		if xsup[i] != v {
			t.Fatalf("xsup = %v, want %v", xsup, want)
		}
	}
	// Unbounded width: one supernode.
	xsup = RelaxedSupernodes(parent, nil, 1, 10)
	if len(xsup) != 2 || xsup[1] != 10 {
		t.Fatalf("xsup = %v, want [0 10]", xsup)
	}
}

// TestRelaxedSupernodesForest: with every column a root (no etree edges),
// relax=1 keeps singletons while a larger relax may still merge nothing —
// parents outside (k, e] never amalgamate.
func TestRelaxedSupernodesForest(t *testing.T) {
	parent := []int{-1, -1, -1, -1}
	for _, relax := range []int{1, 4} {
		xsup := RelaxedSupernodes(parent, nil, relax, 8)
		if len(xsup) != 5 {
			t.Fatalf("relax=%d: xsup = %v, want singletons", relax, xsup)
		}
		for i, v := range xsup {
			if v != i {
				t.Fatalf("relax=%d: xsup = %v, want singletons", relax, xsup)
			}
		}
	}
}

// TestRelaxedSupernodesRelaxMerges: small subtrees hanging off a chain merge
// only when the relax bound allows the non-chain run.
func TestRelaxedSupernodesRelaxMerges(t *testing.T) {
	// Columns 0 and 1 are siblings under 2, then 2→3→4.
	parent := []int{2, 2, 3, 4, -1}
	strict := RelaxedSupernodes(parent, nil, 1, 8)
	// relax=1: 0 cannot extend (parent[0]=2 breaks the chain at once and
	// non-chain runs are capped at the relax bound), so 0 stays a
	// singleton; 1→2→3→4 is a pure chain and merges.
	want := []int{0, 1, 5}
	if len(strict) != len(want) {
		t.Fatalf("strict xsup = %v, want %v", strict, want)
	}
	for i, v := range want {
		if strict[i] != v {
			t.Fatalf("strict xsup = %v, want %v", strict, want)
		}
	}
	relaxed := RelaxedSupernodes(parent, nil, 5, 8)
	if len(relaxed) != 2 || relaxed[1] != 5 {
		t.Fatalf("relaxed xsup = %v, want [0 5]", relaxed)
	}
}

// TestRelaxedSupernodesPaddingBound: with fill counts supplied, a pure
// chain with sparse columns (tridiagonal: two nonzeros per factor column)
// must NOT amalgamate into wide panels — the padded panel would inflate
// fill quadratically — while a dense trailing triangle (counts n-k, exactly
// the nested model) still merges to full width.
func TestRelaxedSupernodesPaddingBound(t *testing.T) {
	a := tridiag(12)
	parent := Symmetric(a)
	counts := ColCounts(a, parent)
	xsup := RelaxedSupernodes(parent, counts, 1, 8)
	for s := 0; s+1 < len(xsup); s++ {
		if w := xsup[s+1] - xsup[s]; w > 2 {
			t.Fatalf("tridiagonal chain merged into width-%d panel: %v", w, xsup)
		}
	}
	// Dense pattern: counts[k] = n-k, padded == actual, merges to maxWidth.
	n := 12
	dense := make([]int, n)
	chain := make([]int, n)
	for k := 0; k < n; k++ {
		dense[k] = n - k
		chain[k] = k + 1
	}
	chain[n-1] = -1
	xsup = RelaxedSupernodes(chain, dense, 1, 8)
	if len(xsup) != 3 || xsup[1] != 8 || xsup[2] != 12 {
		t.Fatalf("dense chain xsup = %v, want [0 8 12]", xsup)
	}
}

// TestRelaxedSupernodesPartitionInvariant: on random forests the result is
// always a monotone partition of 0..n covering every column, every run
// respects maxWidth, and every merged run keeps its parents inside (k, e]
// (the correctness invariant padding relies on).
func TestRelaxedSupernodesPartitionInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(60)
		parent := make([]int, n)
		for j := range parent {
			if rng.Intn(3) == 0 {
				parent[j] = -1
			} else {
				parent[j] = j + 1 + rng.Intn(n-j) // in (j, n]; n acts as a root
			}
			if parent[j] >= n {
				parent[j] = -1
			}
		}
		relax := 1 + rng.Intn(6)
		maxw := relax + rng.Intn(10)
		xsup := RelaxedSupernodes(parent, nil, relax, maxw)
		if xsup[0] != 0 || xsup[len(xsup)-1] != n {
			t.Fatalf("trial %d: partition %v does not cover 0..%d", trial, xsup, n)
		}
		for s := 0; s+1 < len(xsup); s++ {
			a, e := xsup[s], xsup[s+1]
			if e <= a || e-a > maxw {
				t.Fatalf("trial %d: bad run [%d,%d) with maxWidth %d", trial, a, e, maxw)
			}
			if e-a == 1 {
				continue
			}
			for k := a; k < e-1; k++ {
				if parent[k] <= k || parent[k] > e-1 {
					t.Fatalf("trial %d: run [%d,%d): parent[%d]=%d escapes the run",
						trial, a, e, k, parent[k])
				}
			}
		}
	}
}
