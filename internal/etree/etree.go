// Package etree provides elimination-tree machinery: tree construction for
// symmetric patterns (A+Aᵀ) and for AᵀA (column elimination trees), postorder
// computation, Cholesky-style column counts used as fill estimates for LU
// factor allocation, and level sets used for 1D level-scheduled parallelism
// (the SLU-MT baseline) — the paper's Algorithm 3 builds per-block versions
// of exactly these quantities.
package etree

import "repro/internal/sparse"

// Symmetric computes the elimination tree of the symmetric pattern of
// a + aᵀ. parent[j] is the etree parent of column j, or -1 for roots.
func Symmetric(a *sparse.CSC) []int {
	g := a.SymbolicUnion()
	n := g.N
	parent := make([]int, n)
	ancestor := make([]int, n)
	for j := 0; j < n; j++ {
		parent[j] = -1
		ancestor[j] = -1
		for p := g.Colptr[j]; p < g.Colptr[j+1]; p++ {
			i := g.Rowidx[p]
			// Walk from i up to the root of its subtree with path
			// compression, attaching to j.
			for i < j && i != -1 {
				next := ancestor[i]
				ancestor[i] = j
				if next == -1 {
					parent[i] = j
				}
				i = next
			}
		}
	}
	return parent
}

// ColEtree computes the column elimination tree, the etree of AᵀA without
// forming AᵀA (Gilbert–Ng). It bounds LU fill under arbitrary partial
// pivoting and is the tree Basker consults when pivoting is enabled.
func ColEtree(a *sparse.CSC) []int {
	m, n := a.M, a.N
	parent := make([]int, n)
	root := make([]int, n)     // root of current subtree containing col j
	firstCol := make([]int, m) // first column whose pattern contains row i
	for i := range firstCol {
		firstCol[i] = -1
	}
	for j := 0; j < n; j++ {
		parent[j] = -1
		root[j] = j
		for p := a.Colptr[j]; p < a.Colptr[j+1]; p++ {
			i := a.Rowidx[p]
			if firstCol[i] == -1 {
				firstCol[i] = j
				continue
			}
			// Row i links column firstCol[i]'s subtree to j.
			k := firstCol[i]
			// Find root with path compression.
			r := k
			for root[r] != r {
				r = root[r]
			}
			for root[k] != r {
				k, root[k] = root[k], r
			}
			if r != j {
				parent[r] = j
				root[r] = j
			}
			firstCol[i] = j
		}
	}
	return parent
}

// Postorder returns a postordering of the forest given by parent (children
// visited before parents, trees in index order).
func Postorder(parent []int) []int {
	n := len(parent)
	head := make([]int, n)
	next := make([]int, n)
	for i := range head {
		head[i] = -1
	}
	// Build child lists in reverse so traversal visits children ascending.
	for v := n - 1; v >= 0; v-- {
		p := parent[v]
		if p != -1 {
			next[v] = head[p]
			head[p] = v
		}
	}
	post := make([]int, 0, n)
	stack := make([]int, 0, 64)
	for r := 0; r < n; r++ {
		if parent[r] != -1 {
			continue
		}
		stack = append(stack[:0], r)
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			c := head[v]
			if c == -1 {
				post = append(post, v)
				stack = stack[:len(stack)-1]
				continue
			}
			head[v] = next[c]
			stack = append(stack, c)
		}
	}
	return post
}

// ColCounts returns, for each column j, the number of nonzeros in column j
// of the Cholesky factor of the symmetric pattern of a + aᵀ (including the
// diagonal). This is the fill estimate the solvers use to size LU factor
// storage. It runs the row-subtree traversal: O(|L|) time.
func ColCounts(a *sparse.CSC, parent []int) []int {
	g := a.SymbolicUnion()
	n := g.N
	count := make([]int, n)
	mark := make([]int, n)
	for i := range mark {
		mark[i] = -1
	}
	for i := 0; i < n; i++ {
		count[i]++ // diagonal
		mark[i] = i
		// Row subtree of i: paths from each k (k<i, a[i,k]!=0) up to i.
		for p := g.Colptr[i]; p < g.Colptr[i+1]; p++ {
			k := g.Rowidx[p]
			if k >= i {
				continue
			}
			for j := k; j != -1 && mark[j] != i; j = parent[j] {
				mark[j] = i
				count[j]++
			}
		}
	}
	return count
}

// LevelSets partitions the forest into levels where level 0 holds leaves
// and level l nodes depend only on strictly lower levels. Returns the level
// of each node and the nodes grouped by level — the schedule used by the
// 1D parallel baseline.
func LevelSets(parent []int) (level []int, byLevel [][]int) {
	n := len(parent)
	level = make([]int, n)
	// Children depth-first accumulation: level[v] = 1 + max(level of
	// children). Process in topological (children-first) order: a postorder
	// guarantees children come first.
	post := Postorder(parent)
	maxLevel := 0
	for _, v := range post {
		p := parent[v]
		if p != -1 && level[v]+1 > level[p] {
			level[p] = level[v] + 1
		}
		if level[v] > maxLevel {
			maxLevel = level[v]
		}
	}
	byLevel = make([][]int, maxLevel+1)
	for v := 0; v < n; v++ {
		byLevel[level[v]] = append(byLevel[level[v]], v)
	}
	return level, byLevel
}

// FlopEstimate estimates the floating point operations of a Cholesky-style
// factorization with the given column counts: sum over columns of
// count[j]^2 — the quantity Basker's fine-BTF symbolic phase uses to
// balance blocks across threads.
func FlopEstimate(counts []int) float64 {
	f := 0.0
	for _, c := range counts {
		f += float64(c) * float64(c)
	}
	return f
}
