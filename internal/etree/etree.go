// Package etree provides elimination-tree machinery: tree construction for
// symmetric patterns (A+Aᵀ) and for AᵀA (column elimination trees), postorder
// computation, Cholesky-style column counts used as fill estimates for LU
// factor allocation, and level sets used for 1D level-scheduled parallelism
// (the SLU-MT baseline) — the paper's Algorithm 3 builds per-block versions
// of exactly these quantities.
package etree

import "repro/internal/sparse"

// Symmetric computes the elimination tree of the symmetric pattern of
// a + aᵀ. parent[j] is the etree parent of column j, or -1 for roots.
func Symmetric(a *sparse.CSC) []int {
	g := a.SymbolicUnion()
	n := g.N
	parent := make([]int, n)
	ancestor := make([]int, n)
	for j := 0; j < n; j++ {
		parent[j] = -1
		ancestor[j] = -1
		for p := g.Colptr[j]; p < g.Colptr[j+1]; p++ {
			i := g.Rowidx[p]
			// Walk from i up to the root of its subtree with path
			// compression, attaching to j.
			for i < j && i != -1 {
				next := ancestor[i]
				ancestor[i] = j
				if next == -1 {
					parent[i] = j
				}
				i = next
			}
		}
	}
	return parent
}

// ColEtree computes the column elimination tree, the etree of AᵀA without
// forming AᵀA (Gilbert–Ng). It bounds LU fill under arbitrary partial
// pivoting and is the tree Basker consults when pivoting is enabled.
func ColEtree(a *sparse.CSC) []int {
	m, n := a.M, a.N
	parent := make([]int, n)
	root := make([]int, n)     // root of current subtree containing col j
	firstCol := make([]int, m) // first column whose pattern contains row i
	for i := range firstCol {
		firstCol[i] = -1
	}
	for j := 0; j < n; j++ {
		parent[j] = -1
		root[j] = j
		for p := a.Colptr[j]; p < a.Colptr[j+1]; p++ {
			i := a.Rowidx[p]
			if firstCol[i] == -1 {
				firstCol[i] = j
				continue
			}
			// Row i links column firstCol[i]'s subtree to j.
			k := firstCol[i]
			// Find root with path compression.
			r := k
			for root[r] != r {
				r = root[r]
			}
			for root[k] != r {
				k, root[k] = root[k], r
			}
			if r != j {
				parent[r] = j
				root[r] = j
			}
			firstCol[i] = j
		}
	}
	return parent
}

// RelaxedSupernodes partitions columns 0..n-1 into supernode candidates
// from the (column) elimination tree, SuperLU-style: a fundamental
// supernode is a maximal run of consecutive columns forming a chain in the
// tree (parent[k] == k+1), whose factor columns then share one nested
// U-pattern and can be eliminated as a blocked dense panel. Relaxed
// amalgamation additionally absorbs small subtrees that terminate inside
// the run — any run [a, b) where every column's parent stays inside
// (k, b-1], a subtree rooted at the run's last column — trading a few
// explicit structural zeros for wider panels, with
// the subtree width capped at relax (SuperLU's relaxation parameter) and
// chain length capped at maxWidth so panel scratch stays bounded.
//
// A chain in the tree does NOT imply nested factor patterns — a
// tridiagonal matrix is one long chain whose factor columns hold two
// nonzeros each, and padding such a run into a shared-pattern panel
// inflates storage and flops quadratically in the width; worse, partial
// pivoting scrambles the below-diagonal patterns the static tree cannot
// see, so sparse chains that look nested in the estimate union into huge
// padded panels at numeric time. When counts is non-nil (factor column
// counts, ColCounts-style fill estimates), a column may therefore join a
// wide run only from the trailing near-dense region of the factor —
// counts[k] at least half the remaining dimension — which is where the
// nested-pattern model is honest even under pivoting, and the run is
// additionally only accepted while its padded panel (every column widened
// to the model counts[b-1] + (b-1-k)) stays within 25% of the estimated
// true fill. A nil counts skips both bounds and partitions on structure
// alone.
//
// The returned xsup holds the supernode boundaries: supernode s spans
// columns [xsup[s], xsup[s+1]), with xsup[0] = 0 and xsup[len-1] = n.
func RelaxedSupernodes(parent, counts []int, relax, maxWidth int) []int {
	n := len(parent)
	if relax < 1 {
		relax = 1
	}
	if maxWidth < relax {
		maxWidth = relax
	}
	xsup := make([]int, 1, n/2+2)
	for a := 0; a < n; {
		// Take the widest valid run [a, b): every in-run column's parent
		// stays inside (k, b-1], i.e. the run is a subtree rooted at column
		// b-1. Validity is not monotone in b — sibling subtrees at the run's
		// front are invalid prefixes of a valid wider run — so each candidate
		// boundary is checked at its own root, not incrementally. A pure
		// chain (parent[k] == k+1 throughout) extends up to maxWidth, a
		// relaxed run (some subtree absorbed) only up to relax.
		best := a + 1
		chain := true
		actual := 0
		for b := a + 1; b <= n && b-a <= maxWidth; b++ {
			if counts != nil {
				if 2*counts[b-1] < n-(b-1) {
					// Column b-1 sits outside the trailing near-dense
					// region; no run containing it can panel profitably.
					break
				}
				actual += counts[b-1] // running sum over [a, b)
			}
			if b > a+1 {
				chain = chain && parent[b-2] == b-1
			}
			if !chain && b-a > relax {
				break
			}
			ok := true
			for k := a; k < b-1; k++ {
				if parent[k] <= k || parent[k] > b-1 {
					ok = false
					break
				}
			}
			if ok && counts != nil {
				// Padded panel: w columns at the nested-pattern model
				// rooted at b-1. Accept while padded <= 1.25 * actual.
				w := b - a
				padded := w*counts[b-1] + w*(w-1)/2
				ok = 4*padded <= 5*actual
			}
			if ok {
				best = b
			}
		}
		xsup = append(xsup, best)
		a = best
	}
	return xsup
}

// Postorder returns a postordering of the forest given by parent (children
// visited before parents, trees in index order).
func Postorder(parent []int) []int {
	n := len(parent)
	head := make([]int, n)
	next := make([]int, n)
	for i := range head {
		head[i] = -1
	}
	// Build child lists in reverse so traversal visits children ascending.
	for v := n - 1; v >= 0; v-- {
		p := parent[v]
		if p != -1 {
			next[v] = head[p]
			head[p] = v
		}
	}
	post := make([]int, 0, n)
	stack := make([]int, 0, 64)
	for r := 0; r < n; r++ {
		if parent[r] != -1 {
			continue
		}
		stack = append(stack[:0], r)
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			c := head[v]
			if c == -1 {
				post = append(post, v)
				stack = stack[:len(stack)-1]
				continue
			}
			head[v] = next[c]
			stack = append(stack, c)
		}
	}
	return post
}

// ColCounts returns, for each column j, the number of nonzeros in column j
// of the Cholesky factor of the symmetric pattern of a + aᵀ (including the
// diagonal). This is the fill estimate the solvers use to size LU factor
// storage. It runs the row-subtree traversal: O(|L|) time.
func ColCounts(a *sparse.CSC, parent []int) []int {
	g := a.SymbolicUnion()
	n := g.N
	count := make([]int, n)
	mark := make([]int, n)
	for i := range mark {
		mark[i] = -1
	}
	for i := 0; i < n; i++ {
		count[i]++ // diagonal
		mark[i] = i
		// Row subtree of i: paths from each k (k<i, a[i,k]!=0) up to i.
		for p := g.Colptr[i]; p < g.Colptr[i+1]; p++ {
			k := g.Rowidx[p]
			if k >= i {
				continue
			}
			for j := k; j != -1 && mark[j] != i; j = parent[j] {
				mark[j] = i
				count[j]++
			}
		}
	}
	return count
}

// LevelSets partitions the forest into levels where level 0 holds leaves
// and level l nodes depend only on strictly lower levels. Returns the level
// of each node and the nodes grouped by level — the schedule used by the
// 1D parallel baseline.
func LevelSets(parent []int) (level []int, byLevel [][]int) {
	n := len(parent)
	level = make([]int, n)
	// Children depth-first accumulation: level[v] = 1 + max(level of
	// children). Process in topological (children-first) order: a postorder
	// guarantees children come first.
	post := Postorder(parent)
	maxLevel := 0
	for _, v := range post {
		p := parent[v]
		if p != -1 && level[v]+1 > level[p] {
			level[p] = level[v] + 1
		}
		if level[v] > maxLevel {
			maxLevel = level[v]
		}
	}
	byLevel = make([][]int, maxLevel+1)
	for v := 0; v < n; v++ {
		byLevel[level[v]] = append(byLevel[level[v]], v)
	}
	return level, byLevel
}

// FlopEstimate estimates the floating point operations of a Cholesky-style
// factorization with the given column counts: sum over columns of
// count[j]^2 — the quantity Basker's fine-BTF symbolic phase uses to
// balance blocks across threads.
func FlopEstimate(counts []int) float64 {
	f := 0.0
	for _, c := range counts {
		f += float64(c) * float64(c)
	}
	return f
}
