package sparse

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ReadMatrixMarket parses a MatrixMarket "coordinate" stream. Supported
// qualifiers: real/integer/pattern and general/symmetric. Pattern entries
// get value 1; symmetric files are expanded to full storage.
func ReadMatrixMarket(r io.Reader) (*CSC, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<26)
	if !sc.Scan() {
		return nil, fmt.Errorf("sparse: empty MatrixMarket stream")
	}
	header := strings.Fields(strings.ToLower(sc.Text()))
	if len(header) < 5 || header[0] != "%%matrixmarket" || header[1] != "matrix" {
		return nil, fmt.Errorf("sparse: bad MatrixMarket header %q", sc.Text())
	}
	if header[2] != "coordinate" {
		return nil, fmt.Errorf("sparse: only coordinate format supported, got %q", header[2])
	}
	field, sym := header[3], header[4]
	switch field {
	case "real", "integer", "pattern":
	default:
		return nil, fmt.Errorf("sparse: unsupported field %q", field)
	}
	switch sym {
	case "general", "symmetric":
	default:
		return nil, fmt.Errorf("sparse: unsupported symmetry %q", sym)
	}

	var m, n, nnz int
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		if _, err := fmt.Sscan(line, &m, &n, &nnz); err != nil {
			return nil, fmt.Errorf("sparse: bad size line %q: %w", line, err)
		}
		break
	}
	coo := NewCOO(m, n, nnz)
	read := 0
	for read < nnz && sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		f := strings.Fields(line)
		if len(f) < 2 {
			return nil, fmt.Errorf("sparse: bad entry line %q", line)
		}
		i, err := strconv.Atoi(f[0])
		if err != nil {
			return nil, fmt.Errorf("sparse: bad row in %q: %w", line, err)
		}
		j, err := strconv.Atoi(f[1])
		if err != nil {
			return nil, fmt.Errorf("sparse: bad col in %q: %w", line, err)
		}
		v := 1.0
		if field != "pattern" {
			if len(f) < 3 {
				return nil, fmt.Errorf("sparse: missing value in %q", line)
			}
			v, err = strconv.ParseFloat(f[2], 64)
			if err != nil {
				return nil, fmt.Errorf("sparse: bad value in %q: %w", line, err)
			}
		}
		coo.Add(i-1, j-1, v)
		if sym == "symmetric" && i != j {
			coo.Add(j-1, i-1, v)
		}
		read++
	}
	if read != nnz {
		return nil, fmt.Errorf("sparse: expected %d entries, read %d", nnz, read)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return coo.ToCSC(false), nil
}

// WriteMatrixMarket writes a in MatrixMarket coordinate real general format.
func WriteMatrixMarket(w io.Writer, a *CSC) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "%%%%MatrixMarket matrix coordinate real general\n%d %d %d\n", a.M, a.N, a.Nnz()); err != nil {
		return err
	}
	for j := 0; j < a.N; j++ {
		for p := a.Colptr[j]; p < a.Colptr[j+1]; p++ {
			if _, err := fmt.Fprintf(bw, "%d %d %.17g\n", a.Rowidx[p]+1, j+1, a.Values[p]); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}
