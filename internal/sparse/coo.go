package sparse

import (
	"errors"
	"fmt"
)

var (
	errBadColptr = errors.New("sparse: malformed column pointers")
	errRowRange  = errors.New("sparse: row index out of range")
	errUnsorted  = errors.New("sparse: column row indices not sorted/unique")
)

// COO is a coordinate-format triplet accumulator used for matrix assembly.
// Duplicate (i,j) entries are summed on conversion to CSC, matching the
// semantics of finite-element / modified-nodal-analysis stamping.
type COO struct {
	M, N int
	Row  []int
	Col  []int
	Val  []float64
}

// NewCOO returns an empty m×n accumulator with the given capacity hint.
func NewCOO(m, n, capHint int) *COO {
	return &COO{
		M:   m,
		N:   n,
		Row: make([]int, 0, capHint),
		Col: make([]int, 0, capHint),
		Val: make([]float64, 0, capHint),
	}
}

// Add appends the triplet (i, j, v). Panics on out-of-range indices, which
// always indicates a programming error in a generator.
func (c *COO) Add(i, j int, v float64) {
	if i < 0 || i >= c.M || j < 0 || j >= c.N {
		panic(fmt.Sprintf("sparse: COO.Add index (%d,%d) outside %d×%d", i, j, c.M, c.N))
	}
	c.Row = append(c.Row, i)
	c.Col = append(c.Col, j)
	c.Val = append(c.Val, v)
}

// Nnz reports the number of (possibly duplicate) triplets.
func (c *COO) Nnz() int { return len(c.Row) }

// ToCSC compresses the triplets into CSC form, summing duplicates and
// dropping exact zeros that result from cancellation of duplicates only if
// drop is true. Columns of the result are sorted.
func (c *COO) ToCSC(drop bool) *CSC {
	n := c.N
	a := &CSC{M: c.M, N: n, Colptr: make([]int, n+1)}
	count := make([]int, n)
	for _, j := range c.Col {
		count[j]++
	}
	for j := 0; j < n; j++ {
		a.Colptr[j+1] = a.Colptr[j] + count[j]
	}
	nnz := a.Colptr[n]
	a.Rowidx = make([]int, nnz)
	a.Values = make([]float64, nnz)
	next := make([]int, n)
	copy(next, a.Colptr[:n])
	for k := range c.Row {
		j := c.Col[k]
		p := next[j]
		next[j]++
		a.Rowidx[p] = c.Row[k]
		a.Values[p] = c.Val[k]
	}
	a.SortColumns()
	// Sum duplicates in place (columns are sorted so duplicates are
	// adjacent), optionally dropping entries that cancelled to zero.
	out := 0
	colEnd := make([]int, n)
	for j := 0; j < n; j++ {
		p := a.Colptr[j]
		end := a.Colptr[j+1]
		for p < end {
			i := a.Rowidx[p]
			v := a.Values[p]
			p++
			for p < end && a.Rowidx[p] == i {
				v += a.Values[p]
				p++
			}
			if drop && v == 0 {
				continue
			}
			a.Rowidx[out] = i
			a.Values[out] = v
			out++
		}
		colEnd[j] = out
	}
	for j := 0; j < n; j++ {
		a.Colptr[j+1] = colEnd[j]
	}
	a.Rowidx = a.Rowidx[:out]
	a.Values = a.Values[:out]
	return a
}
