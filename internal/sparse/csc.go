// Package sparse provides the sparse-matrix substrate used by every solver
// in this repository: compressed sparse column (CSC) storage, coordinate
// (COO) assembly, permutation utilities, sparse matrix-vector products,
// transposition, and contiguous 2D block extraction.
//
// Conventions:
//   - A CSC matrix stores column j's entries in
//     Rowidx[Colptr[j]:Colptr[j+1]] with matching Values.
//   - Row indices within a column are kept sorted ascending by all
//     constructors in this package; algorithms that produce unsorted columns
//     (e.g. numeric factorization) document it.
//   - A permutation p is "new-to-old": p[k] is the old index that moves to
//     new position k, so (PA)(k,:) = A(p[k],:).
package sparse

import "errors"

// CSC is a sparse matrix in compressed sparse column format.
type CSC struct {
	M, N   int   // number of rows, columns
	Colptr []int // length N+1; Colptr[N] == nnz
	Rowidx []int // length nnz; row index of each entry
	Values []float64
}

// NewCSC returns an all-zero m×n matrix with capacity for nnz entries.
func NewCSC(m, n, nnz int) *CSC {
	return &CSC{
		M:      m,
		N:      n,
		Colptr: make([]int, n+1),
		Rowidx: make([]int, 0, nnz),
		Values: make([]float64, 0, nnz),
	}
}

// Nnz reports the number of stored entries.
func (a *CSC) Nnz() int { return a.Colptr[a.N] }

// SharePattern returns a matrix aliasing a's structure (Colptr and Rowidx
// are shared, read-only by convention) with its own zero-filled value
// buffer. This is how one symbolic analysis hands the same sparsity pattern
// to many concurrent factorizations without duplicating the index arrays.
func (a *CSC) SharePattern() *CSC {
	return &CSC{
		M:      a.M,
		N:      a.N,
		Colptr: a.Colptr,
		Rowidx: a.Rowidx,
		Values: make([]float64, a.Nnz()),
	}
}

// ResetShape reinitializes a to an all-zero m×n matrix, reusing the
// allocated capacity of its buffers. Used to recycle factor-block storage
// across repeated fresh factorizations.
func (a *CSC) ResetShape(m, n int) {
	a.M, a.N = m, n
	if cap(a.Colptr) >= n+1 {
		a.Colptr = a.Colptr[:n+1]
		for i := range a.Colptr {
			a.Colptr[i] = 0
		}
	} else {
		a.Colptr = make([]int, n+1)
	}
	a.Rowidx = a.Rowidx[:0]
	a.Values = a.Values[:0]
}

// FillDense fills dst with the structural fully dense m×n block whose
// values are the column-major data (leading dimension m, length m·n):
// every column stores rows 0..m-1, exact zeros included. In the recycled
// steady state — dst is already m×n holding m·n entries, which for the
// sorted unique column patterns all emitters maintain forces exactly the
// full pattern — only the values are copied; otherwise the pattern is
// rebuilt into dst's storage. dst may be nil. This is the single emission
// point of the dense kernel layer, so the fully-dense-pattern invariant
// lives in one place.
func FillDense(dst *CSC, m, n int, data []float64) *CSC {
	if dst == nil {
		dst = NewCSC(m, n, m*n)
	} else if dst.M == m && dst.N == n && len(dst.Rowidx) == m*n && len(dst.Values) == m*n {
		copy(dst.Values, data)
		return dst
	}
	dst.ResetShape(m, n)
	for c := 0; c < n; c++ {
		for i := 0; i < m; i++ {
			dst.Rowidx = append(dst.Rowidx, i)
		}
		dst.Colptr[c+1] = (c + 1) * m
	}
	dst.Values = append(dst.Values, data...)
	return dst
}

// Compact clips the entry slices to their exact length, releasing any extra
// capacity retained from growth hints (a copy is required — Go cannot
// shrink an allocation in place).
func (a *CSC) Compact() {
	if cap(a.Rowidx) > len(a.Rowidx) {
		ri := make([]int, len(a.Rowidx))
		copy(ri, a.Rowidx)
		a.Rowidx = ri
	}
	if cap(a.Values) > len(a.Values) {
		v := make([]float64, len(a.Values))
		copy(v, a.Values)
		a.Values = v
	}
}

// Clone returns a deep copy of a.
func (a *CSC) Clone() *CSC {
	b := &CSC{
		M:      a.M,
		N:      a.N,
		Colptr: make([]int, len(a.Colptr)),
		Rowidx: make([]int, len(a.Rowidx)),
		Values: make([]float64, len(a.Values)),
	}
	copy(b.Colptr, a.Colptr)
	copy(b.Rowidx, a.Rowidx)
	copy(b.Values, a.Values)
	return b
}

// At returns A(i,j) by binary search within column j. It is intended for
// tests and small examples, not inner loops.
func (a *CSC) At(i, j int) float64 {
	lo, hi := a.Colptr[j], a.Colptr[j+1]
	for lo < hi {
		mid := (lo + hi) / 2
		switch {
		case a.Rowidx[mid] == i:
			return a.Values[mid]
		case a.Rowidx[mid] < i:
			lo = mid + 1
		default:
			hi = mid
		}
	}
	return 0
}

// Transpose returns Aᵀ in CSC form (equivalently, A reinterpreted as CSR).
// Columns of the result are sorted.
func (a *CSC) Transpose() *CSC {
	t := &CSC{
		M:      a.N,
		N:      a.M,
		Colptr: make([]int, a.M+1),
		Rowidx: make([]int, a.Nnz()),
		Values: make([]float64, a.Nnz()),
	}
	// Count entries per row of A (column of Aᵀ).
	for _, i := range a.Rowidx[:a.Nnz()] {
		t.Colptr[i+1]++
	}
	for i := 0; i < a.M; i++ {
		t.Colptr[i+1] += t.Colptr[i]
	}
	next := make([]int, a.M)
	copy(next, t.Colptr[:a.M])
	for j := 0; j < a.N; j++ {
		for p := a.Colptr[j]; p < a.Colptr[j+1]; p++ {
			i := a.Rowidx[p]
			q := next[i]
			next[i]++
			t.Rowidx[q] = j
			t.Values[q] = a.Values[p]
		}
	}
	return t
}

// SortColumns sorts the row indices (and matching values) within every
// column in place. It runs a double transpose, which is O(nnz) and stable.
func (a *CSC) SortColumns() {
	s := a.Transpose().Transpose()
	copy(a.Colptr, s.Colptr)
	copy(a.Rowidx, s.Rowidx)
	copy(a.Values, s.Values)
}

// Permute returns B = A(p, q): B[i][j] = A[p[i]][q[j]]. Either permutation
// may be nil, meaning identity. Columns of the result are sorted.
func (a *CSC) Permute(p, q []int) *CSC {
	pinv := InversePerm(p)
	b := &CSC{
		M:      a.M,
		N:      a.N,
		Colptr: make([]int, a.N+1),
		Rowidx: make([]int, a.Nnz()),
		Values: make([]float64, a.Nnz()),
	}
	nz := 0
	for k := 0; k < a.N; k++ {
		j := k
		if q != nil {
			j = q[k]
		}
		b.Colptr[k] = nz
		for t := a.Colptr[j]; t < a.Colptr[j+1]; t++ {
			i := a.Rowidx[t]
			if pinv != nil {
				i = pinv[i]
			}
			b.Rowidx[nz] = i
			b.Values[nz] = a.Values[t]
			nz++
		}
	}
	b.Colptr[a.N] = nz
	b.SortColumns()
	return b
}

// PermuteWithMap is Permute plus a cached entry map: it returns
// B = A(p, q) together with src, where entry t of B came from entry src[t]
// of A. After the one-time structural cost, same-pattern matrices can be
// re-permuted with PermuteInto as a pure value gather — the refactorization
// pipeline's replacement for calling Permute on every transient step.
func (a *CSC) PermuteWithMap(p, q []int) (*CSC, []int) {
	pinv := InversePerm(p)
	nnz := a.Nnz()
	b := &CSC{
		M:      a.M,
		N:      a.N,
		Colptr: make([]int, a.N+1),
		Rowidx: make([]int, nnz),
		Values: make([]float64, nnz),
	}
	src := make([]int, nnz)
	nz := 0
	for k := 0; k < a.N; k++ {
		j := k
		if q != nil {
			j = q[k]
		}
		b.Colptr[k] = nz
		for t := a.Colptr[j]; t < a.Colptr[j+1]; t++ {
			i := a.Rowidx[t]
			if pinv != nil {
				i = pinv[i]
			}
			b.Rowidx[nz] = i
			src[nz] = t
			nz++
		}
	}
	b.Colptr[a.N] = nz
	// Sort each column by row index, carrying the source positions (the
	// double-transpose trick of SortColumns would lose the map).
	for k := 0; k < a.N; k++ {
		sortColumnWithMap(b.Rowidx[b.Colptr[k]:b.Colptr[k+1]], src[b.Colptr[k]:b.Colptr[k+1]])
	}
	for t, s := range src {
		b.Values[t] = a.Values[s]
	}
	return b, src
}

func sortColumnWithMap(rows, src []int) {
	for i := 1; i < len(rows); i++ {
		r, s := rows[i], src[i]
		j := i - 1
		for j >= 0 && rows[j] > r {
			rows[j+1], src[j+1] = rows[j], src[j]
			j--
		}
		rows[j+1], src[j+1] = r, s
	}
}

// PermuteInto refreshes dst's values from src through an entry map built by
// PermuteWithMap: dst.Values[t] = src.Values[entryMap[t]]. The sparsity
// pattern of src must be identical to the matrix the map was built from;
// the call performs no allocation.
func PermuteInto(dst, src *CSC, entryMap []int) {
	gatherValues(dst.Values[:len(entryMap)], src.Values, entryMap)
}

// ExtractBlockWithMap is ExtractBlock plus a cached entry map: entry t of
// the returned block came from entry src[t] of a, so same-pattern refreshes
// can run through ExtractBlockInto without re-walking the source columns.
func (a *CSC) ExtractBlockWithMap(r0, r1, c0, c1 int) (*CSC, []int) {
	b := NewCSC(r1-r0, c1-c0, 0)
	var src []int
	for j := c0; j < c1; j++ {
		for p := a.Colptr[j]; p < a.Colptr[j+1]; p++ {
			i := a.Rowidx[p]
			if i >= r0 && i < r1 {
				b.Rowidx = append(b.Rowidx, i-r0)
				b.Values = append(b.Values, a.Values[p])
				src = append(src, p)
			}
		}
		b.Colptr[j-c0+1] = len(b.Rowidx)
	}
	return b, src
}

// ExtractBlockInto refreshes dst's values from src through an entry map
// built by ExtractBlockWithMap. Zero allocation; the pattern of src must
// match the matrix the map was built from.
func ExtractBlockInto(dst, src *CSC, entryMap []int) {
	gatherValues(dst.Values[:len(entryMap)], src.Values, entryMap)
}

// GatherRange refreshes only the entry range [p0, p1) of dst from src
// through an entry map built by PermuteWithMap or ExtractBlockWithMap — the
// partial-scatter primitive of the incremental refactorization pipeline: a
// change set that touches a few columns gathers exactly those columns'
// entries instead of the whole matrix. Zero allocation.
func GatherRange(dst, src *CSC, entryMap []int, p0, p1 int) {
	dv, sv := dst.Values, src.Values
	for t := p0; t < p1; t++ {
		dv[t] = sv[entryMap[t]]
	}
}

func gatherValues(dst, src []float64, entryMap []int) {
	for t, s := range entryMap {
		dst[t] = src[s]
	}
}

// SamePattern reports whether a's sparsity structure equals the recorded
// (colptr, rowidx) pattern — the one verification every pattern-keyed fast
// path (factor plans, refactor pipelines, pools) performs before trusting
// its cached entry maps.
func SamePattern(colptr, rowidx []int, a *CSC) bool {
	if len(colptr) != len(a.Colptr) || len(rowidx) != len(a.Rowidx) {
		return false
	}
	for i, c := range colptr {
		if a.Colptr[i] != c {
			return false
		}
	}
	for i, r := range rowidx {
		if a.Rowidx[i] != r {
			return false
		}
	}
	return true
}

// GrowInts returns s resized to exactly n elements, reusing its backing
// array when large enough (contents unspecified) — the scratch-growth
// helper shared by the pooled-workspace consumers across packages.
func GrowInts(s []int, n int) []int {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]int, n)
}

// GrowBools is GrowInts for bool scratch.
func GrowBools(s []bool, n int) []bool {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]bool, n)
}

// InversePerm returns pinv with pinv[p[k]] = k, or nil for nil input.
func InversePerm(p []int) []int {
	if p == nil {
		return nil
	}
	pinv := make([]int, len(p))
	for k, v := range p {
		pinv[v] = k
	}
	return pinv
}

// IdentityPerm returns the identity permutation of length n.
func IdentityPerm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	return p
}

// ComposePerm returns the permutation r with r[k] = p[q[k]], i.e. applying
// q first and then p in new-to-old convention: (P_p P_q A)(k,:) = A(r[k],:)
// holds when r = compose as below. Concretely if B = A(q,:) and C = B(p,:)
// then C = A(r,:) with r[k] = q[p[k]].
func ComposePerm(q, p []int) []int {
	r := make([]int, len(p))
	for k := range p {
		r[k] = q[p[k]]
	}
	return r
}

// IsPerm reports whether p is a permutation of 0..len(p)-1.
func IsPerm(p []int) bool {
	seen := make([]bool, len(p))
	for _, v := range p {
		if v < 0 || v >= len(p) || seen[v] {
			return false
		}
		seen[v] = true
	}
	return true
}

// MulVec computes y = A·x. y must have length M, x length N.
func (a *CSC) MulVec(y, x []float64) {
	for i := range y {
		y[i] = 0
	}
	for j := 0; j < a.N; j++ {
		xj := x[j]
		if xj == 0 {
			continue
		}
		for p := a.Colptr[j]; p < a.Colptr[j+1]; p++ {
			y[a.Rowidx[p]] += a.Values[p] * xj
		}
	}
}

// MulVecT computes y = Aᵀ·x. y must have length N, x length M.
func (a *CSC) MulVecT(y, x []float64) {
	for j := 0; j < a.N; j++ {
		s := 0.0
		for p := a.Colptr[j]; p < a.Colptr[j+1]; p++ {
			s += a.Values[p] * x[a.Rowidx[p]]
		}
		y[j] = s
	}
}

// ExtractBlock returns the dense index range A[r0:r1, c0:c1] as a new CSC
// matrix with local indices (row i of the block is global row r0+i). The
// source columns must be sorted, which all constructors guarantee.
func (a *CSC) ExtractBlock(r0, r1, c0, c1 int) *CSC {
	b := NewCSC(r1-r0, c1-c0, 0)
	for j := c0; j < c1; j++ {
		for p := a.Colptr[j]; p < a.Colptr[j+1]; p++ {
			i := a.Rowidx[p]
			if i >= r0 && i < r1 {
				b.Rowidx = append(b.Rowidx, i-r0)
				b.Values = append(b.Values, a.Values[p])
			}
		}
		b.Colptr[j-c0+1] = len(b.Rowidx)
	}
	return b
}

// SymbolicUnion returns the pattern of A + Aᵀ as a CSC matrix with all
// values set to 1. The input must be square. Diagonal entries are included
// only if present in A. Used to build graphs for ordering algorithms.
func (a *CSC) SymbolicUnion() *CSC {
	t := a.Transpose()
	n := a.N
	out := NewCSC(n, n, a.Nnz()*2)
	mark := make([]int, n)
	for i := range mark {
		mark[i] = -1
	}
	for j := 0; j < n; j++ {
		for p := a.Colptr[j]; p < a.Colptr[j+1]; p++ {
			i := a.Rowidx[p]
			if mark[i] != j {
				mark[i] = j
				out.Rowidx = append(out.Rowidx, i)
				out.Values = append(out.Values, 1)
			}
		}
		for p := t.Colptr[j]; p < t.Colptr[j+1]; p++ {
			i := t.Rowidx[p]
			if mark[i] != j {
				mark[i] = j
				out.Rowidx = append(out.Rowidx, i)
				out.Values = append(out.Values, 1)
			}
		}
		out.Colptr[j+1] = len(out.Rowidx)
	}
	out.SortColumns()
	return out
}

// DropDiagonal returns a copy of a square matrix with diagonal entries
// removed. Ordering code works on adjacency structures without self loops.
func (a *CSC) DropDiagonal() *CSC {
	out := NewCSC(a.M, a.N, a.Nnz())
	for j := 0; j < a.N; j++ {
		for p := a.Colptr[j]; p < a.Colptr[j+1]; p++ {
			if a.Rowidx[p] != j {
				out.Rowidx = append(out.Rowidx, a.Rowidx[p])
				out.Values = append(out.Values, a.Values[p])
			}
		}
		out.Colptr[j+1] = len(out.Rowidx)
	}
	return out
}

// MaxAbs returns the largest absolute value stored in the matrix.
func (a *CSC) MaxAbs() float64 {
	m := 0.0
	for _, v := range a.Values[:a.Nnz()] {
		if v < 0 {
			v = -v
		}
		if v > m {
			m = v
		}
	}
	return m
}

// ErrNotFinite reports a NaN or Inf among the stored values.
var ErrNotFinite = errors.New("sparse: matrix has non-finite values")

// CheckFinite screens the stored values for NaN/Inf. One linear pass over
// Values; allocation-free.
func (a *CSC) CheckFinite() error {
	for _, v := range a.Values[:a.Nnz()] {
		// v != v catches NaN; the subtraction catches ±Inf without math.IsInf.
		if v != v || v-v != 0 {
			return ErrNotFinite
		}
	}
	return nil
}

// Validate runs the full API-boundary screen: structural invariants
// (Check) plus value finiteness (CheckFinite). It is the entry-point check
// behind Options.ValidateInputs.
func (a *CSC) Validate() error {
	if err := a.Check(); err != nil {
		return err
	}
	return a.CheckFinite()
}

// Check validates structural invariants: monotone Colptr, in-range row
// indices, and sorted columns. It returns a descriptive error for tests.
func (a *CSC) Check() error {
	if len(a.Colptr) != a.N+1 {
		return errBadColptr
	}
	if a.Colptr[0] != 0 {
		return errBadColptr
	}
	for j := 0; j < a.N; j++ {
		if a.Colptr[j] > a.Colptr[j+1] {
			return errBadColptr
		}
		prev := -1
		for p := a.Colptr[j]; p < a.Colptr[j+1]; p++ {
			i := a.Rowidx[p]
			if i < 0 || i >= a.M {
				return errRowRange
			}
			if i <= prev {
				return errUnsorted
			}
			prev = i
		}
	}
	if a.Colptr[a.N] != len(a.Rowidx) || len(a.Rowidx) != len(a.Values) {
		return errBadColptr
	}
	return nil
}
