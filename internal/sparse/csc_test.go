package sparse

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// randomCSC builds a random m×n matrix with roughly density*m*n entries.
func randomCSC(rng *rand.Rand, m, n int, density float64) *CSC {
	coo := NewCOO(m, n, int(density*float64(m*n))+1)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			if rng.Float64() < density {
				coo.Add(i, j, rng.NormFloat64())
			}
		}
	}
	return coo.ToCSC(false)
}

func randomPerm(rng *rand.Rand, n int) []int {
	return rng.Perm(n)
}

func TestCOOToCSCSumsDuplicates(t *testing.T) {
	coo := NewCOO(3, 3, 4)
	coo.Add(0, 0, 1)
	coo.Add(0, 0, 2)
	coo.Add(2, 1, 5)
	coo.Add(2, 1, -5)
	a := coo.ToCSC(false)
	if got := a.At(0, 0); got != 3 {
		t.Errorf("A(0,0) = %v, want 3", got)
	}
	if got := a.At(2, 1); got != 0 {
		t.Errorf("A(2,1) = %v, want 0 (kept entry)", got)
	}
	if a.Nnz() != 2 {
		t.Errorf("nnz = %d, want 2", a.Nnz())
	}
	b := coo.ToCSC(true)
	if b.Nnz() != 1 {
		t.Errorf("nnz with drop = %d, want 1", b.Nnz())
	}
	if err := a.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestTransposeInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		a := randomCSC(rng, 5+rng.Intn(30), 5+rng.Intn(30), 0.2)
		b := a.Transpose().Transpose()
		if err := b.Check(); err != nil {
			t.Fatal(err)
		}
		if !equalCSC(a, b) {
			t.Fatalf("transpose twice differs from original")
		}
	}
}

func TestTransposeEntry(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := randomCSC(rng, 17, 11, 0.3)
	at := a.Transpose()
	for i := 0; i < a.M; i++ {
		for j := 0; j < a.N; j++ {
			if a.At(i, j) != at.At(j, i) {
				t.Fatalf("A(%d,%d)=%v but Aᵀ(%d,%d)=%v", i, j, a.At(i, j), j, i, at.At(j, i))
			}
		}
	}
}

func equalCSC(a, b *CSC) bool {
	if a.M != b.M || a.N != b.N || a.Nnz() != b.Nnz() {
		return false
	}
	for j := 0; j <= a.N; j++ {
		if a.Colptr[j] != b.Colptr[j] {
			return false
		}
	}
	for p := 0; p < a.Nnz(); p++ {
		if a.Rowidx[p] != b.Rowidx[p] || a.Values[p] != b.Values[p] {
			return false
		}
	}
	return true
}

func TestPermuteRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		n := 4 + rng.Intn(40)
		a := randomCSC(rng, n, n, 0.25)
		p := randomPerm(rng, n)
		q := randomPerm(rng, n)
		b := a.Permute(p, q)
		// Undo: A = B(pinv, qinv).
		c := b.Permute(InversePerm(p), InversePerm(q))
		if !equalCSC(a, c) {
			t.Fatalf("permute round trip failed at trial %d", trial)
		}
	}
}

func TestPermuteEntries(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	n := 12
	a := randomCSC(rng, n, n, 0.3)
	p := randomPerm(rng, n)
	q := randomPerm(rng, n)
	b := a.Permute(p, q)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if b.At(i, j) != a.At(p[i], q[j]) {
				t.Fatalf("B(%d,%d) != A(p[%d],q[%d])", i, j, i, j)
			}
		}
	}
}

func TestInverseComposePerm(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(100)
		p := randomPerm(rng, n)
		pinv := InversePerm(p)
		if !IsPerm(p) || !IsPerm(pinv) {
			return false
		}
		for k := 0; k < n; k++ {
			if pinv[p[k]] != k {
				return false
			}
		}
		id := ComposePerm(p, pinv)
		for k := 0; k < n; k++ {
			if id[k] != k {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMulVecAgainstDense(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := randomCSC(rng, 13, 9, 0.4)
	x := make([]float64, a.N)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	y := make([]float64, a.M)
	a.MulVec(y, x)
	for i := 0; i < a.M; i++ {
		want := 0.0
		for j := 0; j < a.N; j++ {
			want += a.At(i, j) * x[j]
		}
		if math.Abs(y[i]-want) > 1e-12 {
			t.Fatalf("y[%d] = %v, want %v", i, y[i], want)
		}
	}
	// Aᵀx agreement.
	xt := make([]float64, a.M)
	for i := range xt {
		xt[i] = rng.NormFloat64()
	}
	yt := make([]float64, a.N)
	a.MulVecT(yt, xt)
	for j := 0; j < a.N; j++ {
		want := 0.0
		for i := 0; i < a.M; i++ {
			want += a.At(i, j) * xt[i]
		}
		if math.Abs(yt[j]-want) > 1e-12 {
			t.Fatalf("yt[%d] = %v, want %v", j, yt[j], want)
		}
	}
}

func TestExtractBlock(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	a := randomCSC(rng, 20, 20, 0.3)
	b := a.ExtractBlock(5, 12, 3, 17)
	if b.M != 7 || b.N != 14 {
		t.Fatalf("block shape %d×%d, want 7×14", b.M, b.N)
	}
	if err := b.Check(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < b.M; i++ {
		for j := 0; j < b.N; j++ {
			if b.At(i, j) != a.At(5+i, 3+j) {
				t.Fatalf("block(%d,%d) mismatch", i, j)
			}
		}
	}
}

func TestSymbolicUnionSymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := randomCSC(rng, 25, 25, 0.15)
	u := a.SymbolicUnion()
	if err := u.Check(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 25; i++ {
		for j := 0; j < 25; j++ {
			has := u.At(i, j) != 0
			want := a.At(i, j) != 0 || a.At(j, i) != 0
			if has != want {
				t.Fatalf("union pattern (%d,%d): got %v want %v", i, j, has, want)
			}
			if (u.At(i, j) != 0) != (u.At(j, i) != 0) {
				t.Fatalf("union not symmetric at (%d,%d)", i, j)
			}
		}
	}
}

func TestDropDiagonal(t *testing.T) {
	coo := NewCOO(3, 3, 5)
	coo.Add(0, 0, 1)
	coo.Add(1, 1, 2)
	coo.Add(2, 0, 3)
	coo.Add(0, 2, 4)
	a := coo.ToCSC(false).DropDiagonal()
	if a.Nnz() != 2 {
		t.Fatalf("nnz = %d, want 2", a.Nnz())
	}
	if a.At(0, 0) != 0 || a.At(1, 1) != 0 {
		t.Fatal("diagonal survived DropDiagonal")
	}
}

func TestCheckDetectsCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	a := randomCSC(rng, 10, 10, 0.5)
	if err := a.Check(); err != nil {
		t.Fatal(err)
	}
	bad := a.Clone()
	if bad.Nnz() > 1 {
		bad.Rowidx[0], bad.Rowidx[1] = bad.Rowidx[1], bad.Rowidx[0]
		// After the swap column 0 is either unsorted or has a duplicate.
		if err := bad.Check(); err == nil && bad.Colptr[1] >= 2 {
			t.Fatal("Check accepted unsorted column")
		}
	}
	bad2 := a.Clone()
	bad2.Rowidx[0] = 99
	if err := bad2.Check(); err == nil {
		t.Fatal("Check accepted out-of-range row index")
	}
}

func TestMaxAbs(t *testing.T) {
	coo := NewCOO(2, 2, 3)
	coo.Add(0, 0, -7)
	coo.Add(1, 1, 3)
	a := coo.ToCSC(false)
	if a.MaxAbs() != 7 {
		t.Fatalf("MaxAbs = %v, want 7", a.MaxAbs())
	}
}

func TestPermuteWithMapMatchesPermute(t *testing.T) {
	rng := rand.New(rand.NewSource(40))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(30)
		a := randomCSC(rng, n, n, 0.2)
		p := randomPerm(rng, n)
		q := randomPerm(rng, n)
		want := a.Permute(p, q)
		got, src := a.PermuteWithMap(p, q)
		if err := got.Check(); err != nil {
			t.Fatal(err)
		}
		if len(src) != got.Nnz() {
			t.Fatalf("map length %d, nnz %d", len(src), got.Nnz())
		}
		for j := 0; j <= n; j++ {
			if got.Colptr[j] != want.Colptr[j] {
				t.Fatalf("colptr mismatch at %d", j)
			}
		}
		for k := range want.Rowidx {
			if got.Rowidx[k] != want.Rowidx[k] || got.Values[k] != want.Values[k] {
				t.Fatalf("entry %d: got (%d,%v) want (%d,%v)",
					k, got.Rowidx[k], got.Values[k], want.Rowidx[k], want.Values[k])
			}
		}
		// The map must reproduce a permute of fresh values as a pure gather.
		a2 := a.Clone()
		for i := range a2.Values {
			a2.Values[i] = rng.NormFloat64()
		}
		PermuteInto(got, a2, src)
		want2 := a2.Permute(p, q)
		for k := range want2.Values {
			if got.Values[k] != want2.Values[k] {
				t.Fatalf("gathered value %d: got %v want %v", k, got.Values[k], want2.Values[k])
			}
		}
	}
}

func TestExtractBlockWithMapMatchesExtractBlock(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 20; trial++ {
		m := 4 + rng.Intn(30)
		n := 4 + rng.Intn(30)
		a := randomCSC(rng, m, n, 0.25)
		r0 := rng.Intn(m / 2)
		r1 := r0 + 1 + rng.Intn(m-r0-1)
		c0 := rng.Intn(n / 2)
		c1 := c0 + 1 + rng.Intn(n-c0-1)
		want := a.ExtractBlock(r0, r1, c0, c1)
		got, src := a.ExtractBlockWithMap(r0, r1, c0, c1)
		if len(src) != got.Nnz() {
			t.Fatalf("map length %d, nnz %d", len(src), got.Nnz())
		}
		for j := 0; j <= got.N; j++ {
			if got.Colptr[j] != want.Colptr[j] {
				t.Fatalf("colptr mismatch at %d", j)
			}
		}
		for k := range want.Rowidx {
			if got.Rowidx[k] != want.Rowidx[k] || got.Values[k] != want.Values[k] {
				t.Fatalf("entry %d mismatch", k)
			}
		}
		a2 := a.Clone()
		for i := range a2.Values {
			a2.Values[i] = rng.NormFloat64()
		}
		ExtractBlockInto(got, a2, src)
		want2 := a2.ExtractBlock(r0, r1, c0, c1)
		for k := range want2.Values {
			if got.Values[k] != want2.Values[k] {
				t.Fatalf("gathered value %d: got %v want %v", k, got.Values[k], want2.Values[k])
			}
		}
	}
}

func TestSharePatternResetCompact(t *testing.T) {
	coo := NewCOO(4, 4, 8)
	coo.Add(0, 0, 1)
	coo.Add(2, 0, 3)
	coo.Add(1, 1, 2)
	coo.Add(3, 2, 4)
	coo.Add(0, 3, 5)
	a := coo.ToCSC(false)

	// SharePattern aliases structure, owns zero values.
	b := a.SharePattern()
	if &b.Colptr[0] != &a.Colptr[0] || &b.Rowidx[0] != &a.Rowidx[0] {
		t.Fatal("SharePattern must alias the index slices")
	}
	for _, v := range b.Values {
		if v != 0 {
			t.Fatal("SharePattern values must start zero")
		}
	}
	b.Values[0] = 9
	if a.Values[0] == 9 {
		t.Fatal("SharePattern values must be private")
	}
	if err := b.Check(); err != nil {
		t.Fatal(err)
	}

	// ResetShape keeps capacity, zeroes the structure.
	c := NewCSC(4, 4, 16)
	c.Rowidx = append(c.Rowidx, 1, 2)
	c.Values = append(c.Values, 1, 2)
	c.Colptr[4] = 2
	capBefore := cap(c.Rowidx)
	c.ResetShape(3, 3)
	if c.M != 3 || c.N != 3 || c.Nnz() != 0 || len(c.Colptr) != 4 {
		t.Fatalf("ResetShape left %d×%d nnz=%d", c.M, c.N, c.Nnz())
	}
	if cap(c.Rowidx) != capBefore {
		t.Fatal("ResetShape must keep capacity")
	}

	// Compact clips capacity to length.
	d := NewCSC(4, 4, 64)
	d.Rowidx = append(d.Rowidx, 0, 1)
	d.Values = append(d.Values, 1, 2)
	d.Colptr[1], d.Colptr[2], d.Colptr[3], d.Colptr[4] = 2, 2, 2, 2
	d.Compact()
	if cap(d.Rowidx) != 2 || cap(d.Values) != 2 {
		t.Fatalf("Compact left capacity %d/%d", cap(d.Rowidx), cap(d.Values))
	}
	if err := d.Check(); err != nil {
		t.Fatal(err)
	}
}
