package sparse

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

func TestMatrixMarketRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a := randomCSC(rng, 15, 12, 0.3)
	var buf bytes.Buffer
	if err := WriteMatrixMarket(&buf, a); err != nil {
		t.Fatal(err)
	}
	b, err := ReadMatrixMarket(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !equalCSC(a, b) {
		t.Fatal("MatrixMarket round trip altered the matrix")
	}
}

func TestMatrixMarketSymmetric(t *testing.T) {
	in := `%%MatrixMarket matrix coordinate real symmetric
% a comment
3 3 4
1 1 2.0
2 1 -1.0
3 2 4.0
3 3 1.0
`
	a, err := ReadMatrixMarket(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if a.Nnz() != 6 {
		t.Fatalf("nnz = %d, want 6 after symmetric expansion", a.Nnz())
	}
	if a.At(0, 1) != -1 || a.At(1, 0) != -1 {
		t.Fatal("symmetric expansion missing mirrored entry")
	}
}

func TestMatrixMarketPattern(t *testing.T) {
	in := `%%MatrixMarket matrix coordinate pattern general
2 2 2
1 1
2 2
`
	a, err := ReadMatrixMarket(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if a.At(0, 0) != 1 || a.At(1, 1) != 1 {
		t.Fatal("pattern entries should read as 1")
	}
}

func TestMatrixMarketErrors(t *testing.T) {
	cases := []string{
		"",
		"%%MatrixMarket matrix array real general\n2 2\n",
		"%%MatrixMarket matrix coordinate complex general\n1 1 1\n1 1 1 0\n",
		"%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n",
		"%%MatrixMarket matrix coordinate real general\n2 2 1\nx y z\n",
	}
	for i, in := range cases {
		if _, err := ReadMatrixMarket(strings.NewReader(in)); err == nil {
			t.Errorf("case %d: expected error, got nil", i)
		}
	}
}
