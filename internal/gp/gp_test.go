package gp

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/sparse"
)

// multiplyLU computes (L·U)(i,j) densely for verification.
func multiplyLU(f *Factors) [][]float64 {
	n := f.N
	out := make([][]float64, n)
	for i := range out {
		out[i] = make([]float64, n)
	}
	// out += L(:,k) * U(k,:) — iterate U columns.
	for j := 0; j < n; j++ {
		for p := f.U.Colptr[j]; p < f.U.Colptr[j+1]; p++ {
			k := f.U.Rowidx[p]
			ukj := f.U.Values[p]
			for q := f.L.Colptr[k]; q < f.L.Colptr[k+1]; q++ {
				out[f.L.Rowidx[q]][j] += f.L.Values[q] * ukj
			}
		}
	}
	return out
}

func checkFactorization(t *testing.T, a *sparse.CSC, f *Factors, tolmul float64) {
	t.Helper()
	n := a.N
	if !sparse.IsPerm(f.P) {
		t.Fatal("P is not a permutation")
	}
	lu := multiplyLU(f)
	scale := a.MaxAbs()
	if scale == 0 {
		scale = 1
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			want := a.At(f.P[i], j)
			if math.Abs(lu[i][j]-want) > tolmul*1e-10*scale {
				t.Fatalf("LU(%d,%d) = %v, want A(P,:) = %v", i, j, lu[i][j], want)
			}
		}
	}
	checkTriangular(t, f)
}

func checkTriangular(t *testing.T, f *Factors) {
	t.Helper()
	for j := 0; j < f.N; j++ {
		p0, p1 := f.L.Colptr[j], f.L.Colptr[j+1]
		if p0 == p1 || f.L.Rowidx[p0] != j || f.L.Values[p0] != 1 {
			t.Fatalf("L column %d does not start with unit diagonal", j)
		}
		for p := p0; p < p1; p++ {
			if f.L.Rowidx[p] < j {
				t.Fatalf("L has entry above diagonal in column %d", j)
			}
		}
		q0, q1 := f.U.Colptr[j], f.U.Colptr[j+1]
		if q0 == q1 || f.U.Rowidx[q1-1] != j {
			t.Fatalf("U column %d does not end with its pivot", j)
		}
		for q := q0; q < q1; q++ {
			if f.U.Rowidx[q] > j {
				t.Fatalf("U has entry below diagonal in column %d", j)
			}
		}
	}
	if err := f.L.Check(); err != nil {
		t.Fatalf("L malformed: %v", err)
	}
	if err := f.U.Check(); err != nil {
		t.Fatalf("U malformed: %v", err)
	}
}

func randNonsingular(rng *rand.Rand, n int, density float64) *sparse.CSC {
	coo := sparse.NewCOO(n, n, int(density*float64(n*n))+n)
	for i := 0; i < n; i++ {
		coo.Add(i, i, 4+rng.Float64()) // diagonally strong
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j && rng.Float64() < density {
				coo.Add(i, j, rng.NormFloat64())
			}
		}
	}
	return coo.ToCSC(false)
}

func TestFactorSmallDense(t *testing.T) {
	a := sparse.NewCOO(3, 3, 9)
	vals := [][]float64{{2, 1, 1}, {4, -6, 0}, {-2, 7, 2}}
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			a.Add(i, j, vals[i][j])
		}
	}
	m := a.ToCSC(false)
	f, err := Factor(m, 0, Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	checkFactorization(t, m, f, 1)
	// Solve against a known vector.
	x := []float64{1, 2, 3}
	b := make([]float64, 3)
	m.MulVec(b, x)
	f.Solve(b)
	for i := range x {
		if math.Abs(b[i]-x[i]) > 1e-12 {
			t.Fatalf("solve x[%d] = %v, want %v", i, b[i], x[i])
		}
	}
}

func TestFactorRandomProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(60)
		a := randNonsingular(rng, n, 0.15)
		fac, err := Factor(a, 0, Options{}, nil)
		if err != nil {
			return false
		}
		// Residual check: A x = b.
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		b := make([]float64, n)
		a.MulVec(b, x)
		fac.Solve(b)
		for i := range x {
			if math.Abs(b[i]-x[i]) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestPartialPivotingKicksIn(t *testing.T) {
	// Zero diagonal forces off-diagonal pivots.
	coo := sparse.NewCOO(2, 2, 4)
	coo.Add(0, 0, 0)
	coo.Add(0, 1, 1)
	coo.Add(1, 0, 1)
	coo.Add(1, 1, 0)
	a := coo.ToCSC(true) // drop the explicit zeros
	f, err := Factor(a, 0, Options{PivotTol: 1.0}, nil)
	if err != nil {
		t.Fatal(err)
	}
	checkFactorization(t, a, f, 1)
	if f.P[0] != 1 || f.P[1] != 0 {
		t.Fatalf("P = %v, want [1 0]", f.P)
	}
}

func TestSingularDetection(t *testing.T) {
	// Exactly singular: two identical rows.
	coo := sparse.NewCOO(3, 3, 9)
	for j := 0; j < 3; j++ {
		coo.Add(0, j, float64(j+1))
		coo.Add(1, j, float64(j+1))
		coo.Add(2, j, float64(2*j+1))
	}
	_, err := Factor(coo.ToCSC(false), 0, Options{PivotTol: 1}, nil)
	if !errors.Is(err, ErrSingular) {
		t.Fatalf("err = %v, want ErrSingular", err)
	}
	// Structurally singular: empty column.
	coo2 := sparse.NewCOO(2, 2, 2)
	coo2.Add(0, 0, 1)
	coo2.Add(1, 0, 1)
	_, err = Factor(coo2.ToCSC(false), 0, Options{}, nil)
	if !errors.Is(err, ErrSingular) {
		t.Fatalf("err = %v, want ErrSingular", err)
	}
}

func TestRectangularRejected(t *testing.T) {
	if _, err := Factor(sparse.NewCSC(2, 3, 0), 0, Options{}, nil); err == nil {
		t.Fatal("expected dimension error")
	}
}

func TestNoPivotMode(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	a := randNonsingular(rng, 25, 0.1)
	f, err := Factor(a, 0, Options{NoPivot: true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for k, p := range f.P {
		if p != k {
			t.Fatalf("NoPivot produced P[%d] = %d", k, p)
		}
	}
	checkFactorization(t, a, f, 10)
}

func TestRefactorMatchesFactor(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	a := randNonsingular(rng, 40, 0.1)
	f, err := Factor(a, 0, Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Same pattern, new values.
	b := a.Clone()
	for i := range b.Values {
		b.Values[i] *= 1 + 0.3*rng.Float64()
	}
	// Keep the diagonal dominant so the old pivot order stays valid.
	if err := f.Refactor(b, nil); err != nil {
		t.Fatal(err)
	}
	x := make([]float64, b.N)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	rhs := make([]float64, b.N)
	b.MulVec(rhs, x)
	f.Solve(rhs)
	for i := range x {
		if math.Abs(rhs[i]-x[i]) > 1e-8 {
			t.Fatalf("refactor solve x[%d] = %v, want %v", i, rhs[i], x[i])
		}
	}
	checkTriangular(t, f)
}

func TestRefactorSingular(t *testing.T) {
	coo := sparse.NewCOO(2, 2, 3)
	coo.Add(0, 0, 1)
	coo.Add(1, 1, 1)
	coo.Add(0, 1, 2)
	a := coo.ToCSC(false)
	f, err := Factor(a, 0, Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	bad := a.Clone()
	bad.Values[0] = 0 // zero pivot
	if err := f.Refactor(bad, nil); !errors.Is(err, ErrSingular) {
		t.Fatalf("err = %v, want ErrSingular", err)
	}
}

func TestDiagonalPreference(t *testing.T) {
	// With KLU-style tolerance the diagonal should be kept even when a
	// slightly larger off-diagonal entry exists.
	coo := sparse.NewCOO(2, 2, 4)
	coo.Add(0, 0, 1)
	coo.Add(1, 0, 2) // larger, but tol=0.001 keeps the diagonal
	coo.Add(0, 1, 1)
	coo.Add(1, 1, 1)
	a := coo.ToCSC(false)
	f, err := Factor(a, 0, Options{PivotTol: 0.001}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if f.P[0] != 0 {
		t.Fatalf("P[0] = %d, want diagonal pivot 0", f.P[0])
	}
	checkFactorization(t, a, f, 1e4)
}

func TestWorkspaceReuseAcrossSizes(t *testing.T) {
	ws := NewWorkspace(4)
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{4, 16, 8, 32} {
		a := randNonsingular(rng, n, 0.2)
		f, err := Factor(a, 0, Options{}, ws)
		if err != nil {
			t.Fatal(err)
		}
		checkFactorization(t, a, f, 1)
	}
}

func TestFlopsCounted(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a := randNonsingular(rng, 30, 0.2)
	f, err := Factor(a, 0, Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if f.Flops <= 0 {
		t.Fatal("expected positive flop count")
	}
	if f.NnzLU() < a.N {
		t.Fatal("NnzLU impossibly small")
	}
}

// TestRefactorFromMatchesFull checks the per-column granularity contract:
// when only columns >= k0 change, RefactorFrom(k0) produces factors bitwise
// identical to a full Refactor of the same matrix.
func TestRefactorFromMatchesFull(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	a := randNonsingular(rng, 60, 0.15)
	full, err := Factor(a, 0, Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	part, err := Factor(a, 0, Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Normalize both to refactorization arithmetic: Factor and Refactor sum
	// column updates in different orders, so the retained prefix columns are
	// bitwise comparable only once both sides hold Refactor-produced values.
	if err := full.Refactor(a, nil); err != nil {
		t.Fatal(err)
	}
	if err := part.Refactor(a, nil); err != nil {
		t.Fatal(err)
	}
	for _, k0 := range []int{a.N - 1, 40, 17, 0} {
		b := a.Clone()
		for j := k0; j < b.N; j++ {
			for p := b.Colptr[j]; p < b.Colptr[j+1]; p++ {
				b.Values[p] *= 1 + 0.2*rng.Float64()
			}
		}
		if err := full.Refactor(b, nil); err != nil {
			t.Fatalf("full refactor from %d: %v", k0, err)
		}
		if err := part.RefactorFrom(b, nil, k0); err != nil {
			t.Fatalf("partial refactor from %d: %v", k0, err)
		}
		for i, v := range full.L.Values {
			if part.L.Values[i] != v {
				t.Fatalf("k0=%d: L values diverge at entry %d: %v vs %v", k0, i, part.L.Values[i], v)
			}
		}
		for i, v := range full.U.Values {
			if part.U.Values[i] != v {
				t.Fatalf("k0=%d: U values diverge at entry %d: %v vs %v", k0, i, part.U.Values[i], v)
			}
		}
		a = b // next round perturbs relative to the new values
	}
	checkTriangular(t, part)
}
