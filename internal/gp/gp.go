// Package gp implements the Gilbert–Peierls left-looking sparse LU
// factorization with partial pivoting (SIAM J. Sci. Stat. Comput. 9(5),
// 1988): the nonzero pattern of each factor column is discovered by a
// depth-first search in the graph of L, so the total work is proportional
// to the number of arithmetic operations. This is the algorithm KLU applies
// to every BTF diagonal block and the kernel Basker parallelizes.
//
// Factor invariants (checked by tests):
//   - L and U columns are sorted ascending by row index;
//   - L has a unit diagonal stored explicitly as the first entry of each
//     column; all indices of L and U are in pivot (final) order;
//   - U's diagonal pivot is the last entry of each column;
//   - L·U = A(P, :) up to roundoff, where P is the pivot row permutation.
package gp

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/sparse"
)

// ErrSingular is returned when no acceptable pivot exists for some column
// (the matrix is numerically or structurally singular).
var ErrSingular = errors.New("gp: matrix is singular")

// Options controls pivoting behaviour.
type Options struct {
	// PivotTol is the diagonal preference threshold: the diagonal entry is
	// chosen as pivot when |a_kk| >= PivotTol * max|column|. 1.0 forces
	// true partial pivoting; small values preserve the fill-reducing
	// ordering. KLU's default is 0.001.
	PivotTol float64
	// NoPivot disables row pivoting entirely (static pivoting à la
	// SuperLU-Dist/PMKL after an MWCM permutation). Fails if a zero
	// diagonal pivot is met.
	NoPivot bool
	// NoPrune disables Eisenstat–Liu symmetric pruning of the symbolic
	// depth-first searches (the KLU optimization that restricts each DFS to
	// a pruned prefix of every L column). Exists for the ablation study;
	// the factors are identical either way, only the symbolic cost changes.
	NoPrune bool
	// Poll, when non-nil, is invoked about every pollStride columns of a
	// fresh factorization; a non-nil return aborts the kernel with that
	// error. This is the cooperative-cancellation hook of long-running
	// kernels: the parallel drivers bind it to their sweep's cancel flag so
	// a fired deadline unwinds even mid-block.
	Poll func() error
}

// pollStride is how many columns a fresh factorization processes between
// two cancellation polls — frequent enough to bound cancel latency inside
// a big block, rare enough to cost nothing.
const pollStride = 256

// DefaultPivotTol mirrors KLU's diagonal-preference default.
const DefaultPivotTol = 0.001

// pruneMinDim is the smallest dimension worth symmetric pruning: below it
// the depth-first searches are too short for the prune bookkeeping to pay.
const pruneMinDim = 48

func (o Options) tol() float64 {
	if o.PivotTol <= 0 {
		return DefaultPivotTol
	}
	return o.PivotTol
}

// Factors holds the LU factorization L·U = A(P,:).
type Factors struct {
	N    int
	L, U *sparse.CSC
	// P is new-to-old: original row P[k] is the pivot of step k.
	P []int
	// Pinv is old-to-new: Pinv[P[k]] = k.
	Pinv []int
	// PruneEnd[j] is the end position (absolute index into L.Rowidx) of the
	// Eisenstat–Liu pruned prefix of L(:,j): a depth-first search over the
	// finished factor only needs the entries in
	// [L.Colptr[j]+1, PruneEnd[j]) — every fill path through a later entry
	// also runs through the prune column, so reach sets are unchanged.
	// nil when the factorization was built with Options.NoPrune.
	PruneEnd []int
	// Flops counts multiply-add pairs performed during factorization.
	Flops int64
	// Snodes, when non-nil, is the supernode partition the factorization was
	// built with: supernode s spans columns [Snodes[s], Snodes[s+1]).
	// Set by FactorSupernodalInto, nil for column-at-a-time and dense-built
	// factors; the refresh sweeps dispatch on it (a supernodal factor is
	// refreshed by RefactorSupernodal, which relies on the padded panel
	// layout).
	Snodes []int
}

// NnzLU reports nnz(L)+nnz(U) counting both diagonals once each (the |L+U|
// statistic of the paper's Table I counts the unit diagonal of L once).
func (f *Factors) NnzLU() int { return f.L.Nnz() + f.U.Nnz() - f.N }

// Compact clips the factor storage to its exact length, releasing the
// over-allocation retained from the symbolic nnz estimate (the 2× hint can
// leave half of each slice's capacity unused). Intended after a fresh
// factorization whose storage will be kept alive; pooled factorizations that
// will be refilled through FactorInto should keep their slack instead.
func (f *Factors) Compact() {
	f.L.Compact()
	f.U.Compact()
}

// Workspace holds the reusable scratch arrays for factorizations of
// matrices up to a given dimension; reuse across columns and across
// factorizations avoids repeated allocation (critical inside parallel
// regions, as the paper's symbolic-phase discussion stresses).
type Workspace struct {
	X      []float64 // dense accumulator
	Xi     []int     // DFS output: topological pattern
	Pstack []int     // DFS pointer stack
	Mark   []int     // visited tags
	Tag    int
	// lpend[j] is the in-flight symmetric-pruning boundary of L(:,j) during
	// a factorization (absolute end index into L.Rowidx; -1 = not pruned).
	lpend []int
	// sn holds the supernode staging scratch of FactorSupernodalInto,
	// lazily built on first use (nil for workspaces that never factor
	// supernodally).
	sn *snScratch
}

// NewWorkspace returns a workspace for dimension n.
func NewWorkspace(n int) *Workspace {
	return &Workspace{
		X:      make([]float64, n),
		Xi:     make([]int, 2*n),
		Pstack: make([]int, n),
		Mark:   make([]int, n),
		lpend:  make([]int, n),
	}
}

// Grow ensures the workspace covers dimension n.
func (w *Workspace) Grow(n int) {
	if len(w.X) >= n && len(w.lpend) >= n {
		return
	}
	w.X = make([]float64, n)
	w.Xi = make([]int, 2*n)
	w.Pstack = make([]int, n)
	w.Mark = make([]int, n)
	w.lpend = make([]int, n)
	w.Tag = 0
}

// Factor computes the LU factorization of the square matrix a. estNnz is a
// capacity hint for each factor (e.g. from a symbolic column-count pass);
// storage grows on demand if the hint is low. ws may be nil.
func Factor(a *sparse.CSC, estNnz int, opts Options, ws *Workspace) (*Factors, error) {
	f := &Factors{}
	if err := FactorInto(f, a, estNnz, opts, ws); err != nil {
		return nil, err
	}
	return f, nil
}

// FactorInto is Factor writing into caller-owned storage: f's L/U entry
// slices, permutation arrays and prune pointers are reused when large enough
// and grown otherwise, so a pooled factorization that repeats on a fixed
// pattern reaches a steady state with no allocation at all. On error f's
// contents are unspecified and must not be used for solves (retrying with a
// new matrix is fine — every call rebuilds from scratch).
func FactorInto(f *Factors, a *sparse.CSC, estNnz int, opts Options, ws *Workspace) error {
	if a.M != a.N {
		return fmt.Errorf("gp: matrix must be square, got %d×%d", a.M, a.N)
	}
	n := a.N
	if ws == nil {
		ws = NewWorkspace(n)
	} else {
		ws.Grow(n)
	}
	if estNnz < a.Nnz()+n {
		estNnz = a.Nnz() + n
	}
	f.N = n
	f.L = resetFactorCSC(f.L, n, estNnz)
	f.U = resetFactorCSC(f.U, n, estNnz)
	f.P = sparse.GrowInts(f.P, n)
	f.Pinv = sparse.GrowInts(f.Pinv, n)
	f.Flops = 0
	for i := range f.Pinv {
		f.Pinv[i] = -1
	}
	// Pruning pays for its bookkeeping only once columns are long enough
	// for the DFS to matter; tiny blocks (the fine-BTF majority) skip it.
	prune := !opts.NoPrune && n >= pruneMinDim
	for j := 0; j < n; j++ {
		ws.lpend[j] = -1 // always: a reused workspace may hold stale bounds
	}
	if prune {
		// During the factorization PruneEnd[j] records the *step* at which
		// column j was pruned (-1 = never); it is converted to a storage
		// position once L is remapped and sorted.
		f.PruneEnd = sparse.GrowInts(f.PruneEnd, n)
		for j := range f.PruneEnd {
			f.PruneEnd[j] = -1
		}
	} else {
		f.PruneEnd = nil
	}
	tol := opts.tol()

	for k := 0; k < n; k++ {
		if opts.Poll != nil && k%pollStride == 0 {
			if err := opts.Poll(); err != nil {
				return err
			}
		}
		if err := f.factorFreshColumn(a, k, tol, opts, ws, prune); err != nil {
			return err
		}
	}

	// Remap L's row indices from original ids to pivot order and sort both
	// factors so downstream solves and refactorization can rely on order.
	// The sort runs in place through the dense workspace accumulator (which
	// is clean between columns) instead of CSC.SortColumns' double
	// transpose, so it allocates nothing and skips already-sorted columns.
	f.finishFactor(ws, prune)
	f.Snodes = nil
	return nil
}

// factorFreshColumn runs one column of the left-looking factorization: the
// symbolic reach, the numeric forward solve, pivot selection, U/L emission
// and the symmetric-pruning step — the per-column body shared by FactorInto
// and the singleton supernodes of FactorSupernodalInto.
func (f *Factors) factorFreshColumn(a *sparse.CSC, k int, tol float64, opts Options, ws *Workspace, prune bool) error {
	n := f.N
	{
		// --- Symbolic: pattern of x = L \ A(:,k) by DFS from A(:,k),
		// restricted to the pruned prefix of every L column.
		top := reach(f.L, f.Pinv, a, k, ws)
		// --- Numeric: sparse forward solve in topological order. The
		// updates traverse full columns — pruning is symbolic only.
		x := ws.X
		for p := a.Colptr[k]; p < a.Colptr[k+1]; p++ {
			x[a.Rowidx[p]] = a.Values[p]
		}
		xi := ws.Xi
		for t := top; t < n; t++ {
			i := xi[t]     // original row id
			j := f.Pinv[i] // pivot position, or -1
			if j < 0 {
				continue
			}
			xj := x[i]
			if xj == 0 {
				continue
			}
			// x -= L(:,j) * xj, skipping the unit diagonal (first entry).
			lp0 := f.L.Colptr[j]
			lp1 := f.L.Colptr[j+1]
			rows := f.L.Rowidx[lp0+1 : lp1]
			vals := f.L.Values[lp0+1 : lp1]
			vals = vals[:len(rows)] // bounds-check elimination hint
			for t2, i2 := range rows {
				x[i2] -= vals[t2] * xj
			}
			f.Flops += int64(lp1 - lp0 - 1)
		}

		// --- Pivot selection among unpivoted rows in the pattern.
		pivRow := -1
		pivVal := 0.0
		maxAbs := 0.0
		for t := top; t < n; t++ {
			i := xi[t]
			if f.Pinv[i] >= 0 {
				continue
			}
			v := math.Abs(x[i])
			if v > maxAbs {
				maxAbs = v
				pivRow = i
				pivVal = x[i]
			}
		}
		if opts.NoPivot {
			if f.Pinv[k] == -1 {
				if v := math.Abs(x[k]); v > 0 {
					pivRow, pivVal = k, x[k]
				} else {
					pivRow = -1
				}
			} else {
				pivRow = -1
			}
		} else if pivRow != -1 && f.Pinv[k] == -1 {
			// Diagonal preference: keep the natural pivot when acceptable.
			if v := math.Abs(x[k]); v >= tol*maxAbs && v > 0 {
				pivRow, pivVal = k, x[k]
			}
		}
		if pivRow == -1 || pivVal == 0 {
			clearX(x, xi, top, n, a, k)
			return fmt.Errorf("gp: column %d: %w", k, ErrSingular)
		}
		f.P[k] = pivRow
		f.Pinv[pivRow] = k

		// --- Emit U(:,k): pivoted rows (positions < k) plus pivot last.
		// Every pattern entry is stored even when its value cancelled to
		// exact zero: the factor patterns are structural (the DFS reach),
		// which symmetric pruning and in-place refactorization rely on.
		for t := top; t < n; t++ {
			i := xi[t]
			if j := f.Pinv[i]; j >= 0 && j < k {
				f.U.Rowidx = append(f.U.Rowidx, j)
				f.U.Values = append(f.U.Values, x[i])
			}
		}
		f.U.Rowidx = append(f.U.Rowidx, k)
		f.U.Values = append(f.U.Values, pivVal)
		f.U.Colptr[k+1] = len(f.U.Rowidx)

		// --- Emit L(:,k): unit diagonal first, then unpivoted rows scaled.
		f.L.Rowidx = append(f.L.Rowidx, pivRow) // original id; remapped later
		f.L.Values = append(f.L.Values, 1)
		for t := top; t < n; t++ {
			i := xi[t]
			if f.Pinv[i] == -1 {
				f.L.Rowidx = append(f.L.Rowidx, i)
				f.L.Values = append(f.L.Values, x[i]/pivVal)
				f.Flops++
			}
		}
		f.L.Colptr[k+1] = len(f.L.Rowidx)

		clearX(x, xi, top, n, a, k)

		if prune {
			f.pruneStep(k, pivRow, ws)
		}
	}
	return nil
}

// finishFactor remaps L's row indices from original ids to pivot order and
// sorts both factors so downstream solves and refactorization can rely on
// order, then finalizes the prune boundaries. The sort runs in place
// through the dense workspace accumulator (clean between columns), so it
// allocates nothing and skips already-sorted columns.
func (f *Factors) finishFactor(ws *Workspace, prune bool) {
	for t := 0; t < f.L.Nnz(); t++ {
		f.L.Rowidx[t] = f.Pinv[f.L.Rowidx[t]]
	}
	sortFactorColumns(f.L, ws.X)
	sortFactorColumns(f.U, ws.X)
	if prune {
		f.finishPruneEnd()
	}
}

// sortFactorColumns sorts each column's (row, value) entries ascending by
// row, scattering values through the clean dense scratch x (length >= c.M;
// returned clean). Row indices within a column are unique.
func sortFactorColumns(c *sparse.CSC, x []float64) {
	for j := 0; j < c.N; j++ {
		p0, p1 := c.Colptr[j], c.Colptr[j+1]
		rows := c.Rowidx[p0:p1]
		sorted := true
		for i := 1; i < len(rows); i++ {
			if rows[i-1] > rows[i] {
				sorted = false
				break
			}
		}
		if sorted {
			continue
		}
		vals := c.Values[p0:p1]
		vals = vals[:len(rows)]
		for i, r := range rows {
			x[r] = vals[i]
		}
		sortInts(rows)
		for i, r := range rows {
			vals[i] = x[r]
			x[r] = 0
		}
	}
}

// pruneStep applies Eisenstat–Liu symmetric pruning after pivot k has been
// chosen: for every column j with a structural entry U(j,k), if L(:,j) also
// contains the pivot row of step k, then any fill path through a not-yet-
// pivoted entry of L(:,j) can be rerouted through column k — so those
// entries are moved behind the prune boundary and every later DFS skips
// them. Each column is pruned at most once, at the smallest valid k.
func (f *Factors) pruneStep(k, pivRow int, ws *Workspace) {
	up0, up1 := f.U.Colptr[k], f.U.Colptr[k+1]
	for p := up0; p < up1-1; p++ {
		j := f.U.Rowidx[p]
		if ws.lpend[j] >= 0 {
			continue // already pruned
		}
		lp0, lp1 := f.L.Colptr[j]+1, f.L.Colptr[j+1]
		found := false
		for t := lp0; t < lp1; t++ {
			if f.L.Rowidx[t] == pivRow {
				found = true
				break
			}
		}
		if !found {
			continue
		}
		// Partition: rows already pivoted (pivot position <= k) stay in the
		// DFS prefix; unpivoted rows (eventual pivot position > k) move to
		// the pruned tail. Order within a column is free until the final
		// sort, and the numeric updates traverse the whole column anyway.
		head, tail := lp0, lp1
		for head < tail {
			if f.Pinv[f.L.Rowidx[head]] >= 0 {
				head++
			} else {
				tail--
				f.L.Rowidx[head], f.L.Rowidx[tail] = f.L.Rowidx[tail], f.L.Rowidx[head]
				f.L.Values[head], f.L.Values[tail] = f.L.Values[tail], f.L.Values[head]
			}
		}
		ws.lpend[j] = head
		f.PruneEnd[j] = k
	}
}

// finishPruneEnd converts the recorded prune steps into storage positions
// over the final (pivot-ordered, sorted) L, for the finished-factor DFS of
// SolveSparseL: column j pruned at step k keeps exactly the entries with
// pivot row index <= k, a contiguous prefix of the sorted column.
func (f *Factors) finishPruneEnd() {
	for j := 0; j < f.N; j++ {
		p1 := f.L.Colptr[j+1]
		k := f.PruneEnd[j]
		if k < 0 {
			f.PruneEnd[j] = p1
			continue
		}
		lo, hi := f.L.Colptr[j]+1, p1
		for lo < hi { // first position with row index > k
			mid := (lo + hi) / 2
			if f.L.Rowidx[mid] <= k {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		f.PruneEnd[j] = lo
	}
}

// resetFactorCSC prepares an n×n factor for refilling, reusing the entry
// slices' capacity when possible.
func resetFactorCSC(c *sparse.CSC, n, estNnz int) *sparse.CSC {
	if c == nil || len(c.Colptr) != n+1 {
		return sparse.NewCSC(n, n, estNnz)
	}
	c.M, c.N = n, n
	c.Colptr[0] = 0
	c.Rowidx = c.Rowidx[:0]
	c.Values = c.Values[:0]
	return c
}

func clearX(x []float64, xi []int, top, n int, a *sparse.CSC, k int) {
	for t := top; t < n; t++ {
		x[xi[t]] = 0
	}
	for p := a.Colptr[k]; p < a.Colptr[k+1]; p++ {
		x[a.Rowidx[p]] = 0
	}
}

// reach computes the pattern of L⁻¹ A(:,k) by depth-first search from the
// nonzeros of A(:,k) in the graph of the partially built L. Nodes are
// original row ids; a node i with Pinv[i] = j >= 0 has out-edges to the
// rows of the pruned prefix of L(:,j) (ws.lpend; the full column when
// unpruned). The topological order lands in ws.Xi[top:n].
func reach(l *sparse.CSC, pinv []int, a *sparse.CSC, k int, ws *Workspace) int {
	n := l.N
	ws.Tag++
	tag := ws.Tag
	top := n
	xi := ws.Xi
	for p := a.Colptr[k]; p < a.Colptr[k+1]; p++ {
		start := a.Rowidx[p]
		if ws.Mark[start] == tag {
			continue
		}
		top = dfs(start, l, pinv, xi, top, ws.Pstack, ws.Mark, tag, ws.lpend)
	}
	return top
}

// dfs pushes the reverse-postorder of nodes reachable from start onto
// xi[..top], returning the new top. Iterative with an explicit stack held
// in xi[:n] (head section) and pstack. lpend bounds each column's child
// scan to its symmetric-pruning prefix (-1 = unpruned, full column);
// pruning preserves both reachability and topological validity, because
// every skipped edge has a rerouted path inside the pruned graph.
func dfs(start int, l *sparse.CSC, pinv []int, xi []int, top int, pstack, mark []int, tag int, lpend []int) int {
	head := 0
	xi[head] = start
	for head >= 0 {
		i := xi[head]
		j := pinv[i]
		if mark[i] != tag {
			mark[i] = tag
			if j < 0 {
				pstack[head] = 0 // no children
			} else {
				pstack[head] = l.Colptr[j] + 1 // skip unit diagonal
			}
		}
		done := true
		if j >= 0 {
			pend := l.Colptr[j+1]
			if lpend != nil && lpend[j] >= 0 {
				pend = lpend[j]
			}
			for p := pstack[head]; p < pend; p++ {
				child := l.Rowidx[p]
				if mark[child] == tag {
					continue
				}
				pstack[head] = p + 1
				head++
				xi[head] = child
				done = false
				break
			}
		}
		if done {
			head--
			top--
			xi[top] = i
		}
	}
	return top
}

// Solve solves A x = b in place using the factors (b becomes x).
func (f *Factors) Solve(b []float64) {
	f.SolveWith(b, make([]float64, f.N))
}

// SolveWith is Solve with caller-provided pivot-application scratch of at
// least N elements: no allocation, safe for concurrent use on immutable
// factors when each caller brings its own scratch.
func (f *Factors) SolveWith(b, scratch []float64) {
	n := f.N
	// y = P b
	y := scratch[:n]
	for k := 0; k < n; k++ {
		y[k] = b[f.P[k]]
	}
	f.LSolve(y)
	f.USolve(y)
	copy(b, y)
}

// SolveManyWith solves A xᵢ = bᵢ in place for a panel of right-hand
// sides, traversing each factor column once per panel instead of once per
// vector: every (row, value) entry of L and U is loaded once and applied
// to all active right-hand sides, which amortizes index decoding and
// bounds checks across the panel. scratch needs N elements; active and
// vals need len(cols) elements. Per right-hand side the floating-point
// operation sequence is identical to SolveWith.
func (f *Factors) SolveManyWith(cols [][]float64, scratch []float64, active []int, vals []float64) {
	n := f.N
	y := scratch[:n]
	for _, b := range cols {
		for k := 0; k < n; k++ {
			y[k] = b[f.P[k]]
		}
		copy(b, y)
	}
	f.LSolveMany(cols, active, vals)
	f.USolveMany(cols, active, vals)
}

// LSolveMany is LSolve over a panel: one pass over L, each entry applied
// to every right-hand side with a nonzero at the current column.
func (f *Factors) LSolveMany(cols [][]float64, active []int, vals []float64) {
	for j := 0; j < f.N; j++ {
		na := 0
		for c, y := range cols {
			if yj := y[j]; yj != 0 {
				active[na] = c
				vals[na] = yj
				na++
			}
		}
		if na == 0 {
			continue
		}
		for p := f.L.Colptr[j] + 1; p < f.L.Colptr[j+1]; p++ {
			i, v := f.L.Rowidx[p], f.L.Values[p]
			for a := 0; a < na; a++ {
				cols[active[a]][i] -= v * vals[a]
			}
		}
	}
}

// USolveMany is USolve over a panel: one backward pass over U.
func (f *Factors) USolveMany(cols [][]float64, active []int, vals []float64) {
	for j := f.N - 1; j >= 0; j-- {
		p1 := f.U.Colptr[j+1]
		piv := f.U.Values[p1-1] // diagonal is the largest row index: last
		na := 0
		for c, y := range cols {
			yj := y[j] / piv
			y[j] = yj
			if yj != 0 {
				active[na] = c
				vals[na] = yj
				na++
			}
		}
		if na == 0 {
			continue
		}
		for p := f.U.Colptr[j]; p < p1-1; p++ {
			i, v := f.U.Rowidx[p], f.U.Values[p]
			for a := 0; a < na; a++ {
				cols[active[a]][i] -= v * vals[a]
			}
		}
	}
}

// LSolve solves L y = y in place (forward substitution, unit diagonal,
// sorted columns with the diagonal first).
func (f *Factors) LSolve(y []float64) {
	for j := 0; j < f.N; j++ {
		yj := y[j]
		if yj == 0 {
			continue
		}
		for p := f.L.Colptr[j] + 1; p < f.L.Colptr[j+1]; p++ {
			y[f.L.Rowidx[p]] -= f.L.Values[p] * yj
		}
	}
}

// USolve solves U x = y in place (backward substitution, pivot last).
func (f *Factors) USolve(y []float64) {
	for j := f.N - 1; j >= 0; j-- {
		p1 := f.U.Colptr[j+1]
		piv := f.U.Values[p1-1] // diagonal is the largest row index: last
		yj := y[j] / piv
		y[j] = yj
		if yj == 0 {
			continue
		}
		for p := f.U.Colptr[j]; p < p1-1; p++ {
			y[f.U.Rowidx[p]] -= f.U.Values[p] * yj
		}
	}
}

// Refactor recomputes the numeric values of f for a new matrix a with the
// same nonzero pattern as the matrix originally factored, reusing the
// pivot sequence and factor patterns (no pivoting). This is the kernel of
// the Xyce transient-sequence experiment: one symbolic+pivoting
// factorization followed by many cheap refactorizations.
func (f *Factors) Refactor(a *sparse.CSC, ws *Workspace) error {
	return f.RefactorFrom(a, ws, 0)
}

// RefactorSelective is Refactor restricted to the dependency closure of a
// dirty column set: column k is recomputed when its input column changed
// (colStamp[k] == epoch) or when an already-recomputed column appears in
// U(:,k)'s structural pattern — exactly the factor columns its elimination
// consumes — and skipped otherwise, its values provably identical to what
// a full Refactor would produce. rerun must have length n; it is
// overwritten with the computed closure so the caller can inspect what
// reran. The skipped-column scan costs one walk of U's pattern, orders of
// magnitude below the arithmetic it avoids, which is what makes localized
// change sets cheap even inside a large diagonal block whose fill-reducing
// ordering scattered them.
func (f *Factors) RefactorSelective(a *sparse.CSC, ws *Workspace, colStamp []uint64, epoch uint64, rerun []bool) error {
	n := f.N
	if a.M != n || a.N != n {
		return fmt.Errorf("gp: refactor dimension mismatch")
	}
	if ws == nil {
		ws = NewWorkspace(n)
	} else {
		ws.Grow(n)
	}
	x := ws.X
	for k := 0; k < n; k++ {
		need := colStamp[k] == epoch
		if !need {
			up0, up1 := f.U.Colptr[k], f.U.Colptr[k+1]
			for p := up0; p < up1-1; p++ {
				if rerun[f.U.Rowidx[p]] {
					need = true
					break
				}
			}
		}
		rerun[k] = need
		if !need {
			continue
		}
		if err := f.refactorColumn(a, x, k); err != nil {
			return err
		}
	}
	return nil
}

// RefactorFrom is Refactor restricted to columns k0..n-1: factor column k
// depends only on A(:,k) and on earlier factor columns, so when every
// column before k0 of a is unchanged since the last refresh, the prefix
// factor columns are already correct and recomputing the suffix alone
// yields values bitwise identical to a full Refactor. This is the
// per-column granularity the change-set-aware refactorization uses inside a
// dirty diagonal block: k0 is the first column the change set touches.
func (f *Factors) RefactorFrom(a *sparse.CSC, ws *Workspace, k0 int) error {
	n := f.N
	if a.M != n || a.N != n {
		return fmt.Errorf("gp: refactor dimension mismatch")
	}
	if k0 < 0 {
		k0 = 0
	}
	if ws == nil {
		ws = NewWorkspace(n)
	} else {
		ws.Grow(n)
	}
	x := ws.X
	for k := k0; k < n; k++ {
		if err := f.refactorColumn(a, x, k); err != nil {
			return err
		}
	}
	return nil
}

// refactorColumn refreshes factor column k from a's column k with the
// fixed pivot sequence: the one-column body shared by Refactor,
// RefactorFrom and RefactorSelective. x is the dense accumulator (clean on
// entry and on return, including the singular-pivot error path).
func (f *Factors) refactorColumn(a *sparse.CSC, x []float64, k int) error {
	// Scatter P·A(:,k) over pivot positions.
	for p := a.Colptr[k]; p < a.Colptr[k+1]; p++ {
		x[f.Pinv[a.Rowidx[p]]] = a.Values[p]
	}
	// Eliminate along U(:,k)'s pattern in ascending row order.
	up0, up1 := f.U.Colptr[k], f.U.Colptr[k+1]
	for p := up0; p < up1-1; p++ {
		j := f.U.Rowidx[p]
		xj := x[j]
		f.U.Values[p] = xj
		if xj == 0 {
			continue
		}
		rows := f.L.Rowidx[f.L.Colptr[j]+1 : f.L.Colptr[j+1]]
		vals := f.L.Values[f.L.Colptr[j]+1 : f.L.Colptr[j+1]]
		vals = vals[:len(rows)] // bounds-check elimination hint
		for t, i := range rows {
			x[i] -= vals[t] * xj
		}
	}
	piv := x[k]
	if piv == 0 {
		// Clear workspace before reporting.
		for p := up0; p < up1; p++ {
			x[f.U.Rowidx[p]] = 0
		}
		for t := f.L.Colptr[k]; t < f.L.Colptr[k+1]; t++ {
			x[f.L.Rowidx[t]] = 0
		}
		return fmt.Errorf("gp: refactor column %d: %w", k, ErrSingular)
	}
	f.U.Values[up1-1] = piv
	for t := f.L.Colptr[k] + 1; t < f.L.Colptr[k+1]; t++ {
		i := f.L.Rowidx[t]
		f.L.Values[t] = x[i] / piv
		x[i] = 0
	}
	for p := up0; p < up1; p++ {
		x[f.U.Rowidx[p]] = 0
	}
	return nil
}
