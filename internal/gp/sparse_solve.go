package gp

import "repro/internal/sparse"

// SolveSparseL computes x = L⁻¹·(P·b) for a sparse right-hand side b given
// as parallel (bIdx, bVal) with bIdx in the original row numbering of the
// factored block. The nonzero pattern of x is discovered by depth-first
// search in the graph of L (Gilbert–Peierls), so the cost is proportional
// to the arithmetic performed. This is the kernel Basker uses to compute
// the columns of upper off-diagonal blocks U_ij = L_ii⁻¹ P_i A_ij.
//
// The result pattern (pivot-space indices, topological order) is returned
// as a slice into ws.Xi, and the values live in ws.X at those indices. Both
// are valid only until the workspace is reused; callers must copy out and
// then call ClearSparse with the same pattern.
func (f *Factors) SolveSparseL(bIdx []int, bVal []float64, ws *Workspace) []int {
	n := f.N
	ws.Grow(n)
	ws.Tag++
	tag := ws.Tag
	top := n
	for _, r := range bIdx {
		start := f.Pinv[r]
		if ws.Mark[start] == tag {
			continue
		}
		top = dfsFinal(start, f.L, ws.Xi, top, ws.Pstack, ws.Mark, tag)
	}
	pattern := ws.Xi[top:n]
	for k, r := range bIdx {
		ws.X[f.Pinv[r]] += bVal[k]
	}
	for _, j := range pattern {
		xj := ws.X[j]
		if xj == 0 {
			continue
		}
		for p := f.L.Colptr[j] + 1; p < f.L.Colptr[j+1]; p++ {
			ws.X[f.L.Rowidx[p]] -= f.L.Values[p] * xj
		}
	}
	return pattern
}

// ClearSparse zeroes the workspace values over a pattern returned by
// SolveSparseL.
func ClearSparse(ws *Workspace, pattern []int) {
	for _, j := range pattern {
		ws.X[j] = 0
	}
}

// dfsFinal is the DFS over a *finished* L whose row indices are already in
// pivot order: node j's children are the below-diagonal rows of L(:,j).
func dfsFinal(start int, l *sparse.CSC, xi []int, top int, pstack, mark []int, tag int) int {
	head := 0
	xi[head] = start
	for head >= 0 {
		j := xi[head]
		if mark[j] != tag {
			mark[j] = tag
			pstack[head] = l.Colptr[j] + 1 // skip unit diagonal
		}
		done := true
		for p := pstack[head]; p < l.Colptr[j+1]; p++ {
			child := l.Rowidx[p]
			if mark[child] == tag {
				continue
			}
			pstack[head] = p + 1
			head++
			xi[head] = child
			done = false
			break
		}
		if done {
			head--
			top--
			xi[top] = j
		}
	}
	return top
}

// LowerBlockSolve computes X solving X·U = B column by column, where U is
// this factorization's upper factor and B is a sparse block whose rows are
// *outside* the factored block (so no pivoting interaction). This produces
// Basker's lower off-diagonal blocks L_ki from A_ki: column c satisfies
//
//	X(:,c) = (B(:,c) − Σ_{t<c, U(t,c)≠0} X(:,t)·U(t,c)) / U(c,c).
//
// The returned block has sorted columns. mark/acc are caller-provided
// workspaces of length ≥ B.M (acc zeroed); they come back clean.
func (f *Factors) LowerBlockSolve(b *sparse.CSC, mark []int, tagp *int, acc []float64) *sparse.CSC {
	x := sparse.NewCSC(b.M, b.N, b.Nnz()*2)
	var patt []int
	for c := 0; c < b.N; c++ {
		*tagp++
		tag := *tagp
		patt = patt[:0]
		for p := b.Colptr[c]; p < b.Colptr[c+1]; p++ {
			i := b.Rowidx[p]
			if mark[i] != tag {
				mark[i] = tag
				patt = append(patt, i)
			}
			acc[i] += b.Values[p]
		}
		// Accumulate -X(:,t)*U(t,c) for t < c in U(:,c)'s pattern.
		up0, up1 := f.U.Colptr[c], f.U.Colptr[c+1]
		for p := up0; p < up1-1; p++ {
			t := f.U.Rowidx[p]
			utc := f.U.Values[p]
			if utc == 0 {
				continue
			}
			for q := x.Colptr[t]; q < x.Colptr[t+1]; q++ {
				i := x.Rowidx[q]
				if mark[i] != tag {
					mark[i] = tag
					patt = append(patt, i)
				}
				acc[i] -= x.Values[q] * utc
			}
		}
		piv := f.U.Values[up1-1]
		insertionSortInts(patt)
		for _, i := range patt {
			if v := acc[i]; v != 0 {
				x.Rowidx = append(x.Rowidx, i)
				x.Values = append(x.Values, v/piv)
			}
			acc[i] = 0
		}
		x.Colptr[c+1] = len(x.Rowidx)
	}
	return x
}

func insertionSortInts(a []int) {
	for i := 1; i < len(a); i++ {
		v := a[i]
		j := i - 1
		for j >= 0 && a[j] > v {
			a[j+1] = a[j]
			j--
		}
		a[j+1] = v
	}
}
