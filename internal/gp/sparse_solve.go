package gp

import (
	"sort"

	"repro/internal/sparse"
)

// SolveSparseL computes x = L⁻¹·(P·b) for a sparse right-hand side b given
// as parallel (bIdx, bVal) with bIdx in the original row numbering of the
// factored block. The nonzero pattern of x is discovered by depth-first
// search in the graph of L (Gilbert–Peierls), so the cost is proportional
// to the arithmetic performed. This is the kernel Basker uses to compute
// the columns of upper off-diagonal blocks U_ij = L_ii⁻¹ P_i A_ij.
//
// The result pattern (pivot-space indices, topological order) is returned
// as a slice into ws.Xi, and the values live in ws.X at those indices. Both
// are valid only until the workspace is reused; callers must copy out and
// then call ClearSparse with the same pattern.
func (f *Factors) SolveSparseL(bIdx []int, bVal []float64, ws *Workspace) []int {
	n := f.N
	ws.Grow(n)
	ws.Tag++
	tag := ws.Tag
	top := n
	for _, r := range bIdx {
		start := f.Pinv[r]
		if ws.Mark[start] == tag {
			continue
		}
		top = dfsFinal(start, f.L, ws.Xi, top, ws.Pstack, ws.Mark, tag, f.PruneEnd)
	}
	pattern := ws.Xi[top:n]
	for k, r := range bIdx {
		ws.X[f.Pinv[r]] += bVal[k]
	}
	x := ws.X
	for _, j := range pattern {
		xj := x[j]
		if xj == 0 {
			continue
		}
		rows := f.L.Rowidx[f.L.Colptr[j]+1 : f.L.Colptr[j+1]]
		vals := f.L.Values[f.L.Colptr[j]+1 : f.L.Colptr[j+1]]
		vals = vals[:len(rows)] // bounds-check elimination hint
		for p, i := range rows {
			x[i] -= vals[p] * xj
		}
	}
	return pattern
}

// ClearSparse zeroes the workspace values over a pattern returned by
// SolveSparseL.
func ClearSparse(ws *Workspace, pattern []int) {
	for _, j := range pattern {
		ws.X[j] = 0
	}
}

// dfsFinal is the DFS over a *finished* L whose row indices are already in
// pivot order: node j's children are the below-diagonal rows of L(:,j),
// bounded by the symmetric-pruning prefix when pruneEnd is non-nil
// (reachability is preserved — see Factors.PruneEnd).
func dfsFinal(start int, l *sparse.CSC, xi []int, top int, pstack, mark []int, tag int, pruneEnd []int) int {
	head := 0
	xi[head] = start
	for head >= 0 {
		j := xi[head]
		if mark[j] != tag {
			mark[j] = tag
			pstack[head] = l.Colptr[j] + 1 // skip unit diagonal
		}
		pend := l.Colptr[j+1]
		if pruneEnd != nil {
			pend = pruneEnd[j]
		}
		done := true
		for p := pstack[head]; p < pend; p++ {
			child := l.Rowidx[p]
			if mark[child] == tag {
				continue
			}
			pstack[head] = p + 1
			head++
			xi[head] = child
			done = false
			break
		}
		if done {
			head--
			top--
			xi[top] = j
		}
	}
	return top
}

// LowerBlockSolve computes X solving X·U = B column by column, where U is
// this factorization's upper factor and B is a sparse block whose rows are
// *outside* the factored block (so no pivoting interaction). This produces
// Basker's lower off-diagonal blocks L_ki from A_ki: column c satisfies
//
//	X(:,c) = (B(:,c) − Σ_{t<c, U(t,c)≠0} X(:,t)·U(t,c)) / U(c,c).
//
// The returned block has sorted columns. mark/acc are caller-provided
// workspaces of length ≥ B.M (acc zeroed); they come back clean.
//
// The output pattern is structural: entries whose value works out to exact
// zero are kept, so the pattern depends only on the patterns of B and the
// factors — the invariant that lets RefactorLowerBlock refresh the block's
// values in place for a same-pattern matrix.
func (f *Factors) LowerBlockSolve(b *sparse.CSC, mark []int, tagp *int, acc []float64) *sparse.CSC {
	return f.LowerBlockSolveInto(nil, b, mark, tagp, acc)
}

// LowerBlockSolveInto is LowerBlockSolve writing into recycled storage: when
// dst is non-nil its entry slices are reset and refilled (growing only if
// the new pattern is larger), so repeated fresh factorizations on a fixed
// input pattern stop allocating block storage.
func (f *Factors) LowerBlockSolveInto(dst, b *sparse.CSC, mark []int, tagp *int, acc []float64) *sparse.CSC {
	x := dst
	if x == nil {
		x = sparse.NewCSC(b.M, b.N, b.Nnz()*2)
	} else {
		x.ResetShape(b.M, b.N)
	}
	var patt []int
	for c := 0; c < b.N; c++ {
		*tagp++
		tag := *tagp
		patt = patt[:0]
		for p := b.Colptr[c]; p < b.Colptr[c+1]; p++ {
			i := b.Rowidx[p]
			if mark[i] != tag {
				mark[i] = tag
				patt = append(patt, i)
			}
			acc[i] += b.Values[p]
		}
		// Accumulate -X(:,t)*U(t,c) for t < c in U(:,c)'s pattern. U's
		// stored entries are nonzero at factorization time, so iterating
		// the whole pattern keeps the result pattern structural.
		up0, up1 := f.U.Colptr[c], f.U.Colptr[c+1]
		for p := up0; p < up1-1; p++ {
			t := f.U.Rowidx[p]
			utc := f.U.Values[p]
			rows := x.Rowidx[x.Colptr[t]:x.Colptr[t+1]]
			vals := x.Values[x.Colptr[t]:x.Colptr[t+1]]
			vals = vals[:len(rows)] // bounds-check elimination hint
			for qi, i := range rows {
				acc[i] -= vals[qi] * utc
				if mark[i] != tag {
					mark[i] = tag
					patt = append(patt, i)
				}
			}
		}
		piv := f.U.Values[up1-1]
		sortInts(patt)
		for _, i := range patt {
			x.Rowidx = append(x.Rowidx, i)
			x.Values = append(x.Values, acc[i]/piv)
			acc[i] = 0
		}
		x.Colptr[c+1] = len(x.Rowidx)
	}
	return x
}

// RefactorLowerBlock recomputes dst = B·U⁻¹ in place for a same-pattern B,
// where dst was produced by LowerBlockSolve against the matrix originally
// factored and f's values have already been refreshed (Refactor). Because
// LowerBlockSolve patterns are structural, every index touched by the
// recomputation lies inside dst's fixed column patterns, so the sweep needs
// no pattern discovery and performs no allocation. acc must have length
// ≥ B.M and arrive zeroed; it comes back clean.
func (f *Factors) RefactorLowerBlock(dst, b *sparse.CSC, acc []float64) {
	f.RefactorLowerBlockFrom(dst, b, acc, 0)
}

// RefactorLowerBlockFrom is RefactorLowerBlock restricted to columns
// c0..N-1. Column c of the result depends only on input column c, factor
// column U(:,c) and earlier result columns, so when neither the input's
// columns before c0 nor the factor's columns before c0 changed since the
// last refresh, the prefix is already correct and recomputing the suffix
// alone matches a full refresh bitwise — the per-column granularity the
// incremental sweep applies to fine-ND leaf kernels.
func (f *Factors) RefactorLowerBlockFrom(dst, b *sparse.CSC, acc []float64, c0 int) {
	for c := c0; c < b.N; c++ {
		for p := b.Colptr[c]; p < b.Colptr[c+1]; p++ {
			acc[b.Rowidx[p]] += b.Values[p]
		}
		up0, up1 := f.U.Colptr[c], f.U.Colptr[c+1]
		for p := up0; p < up1-1; p++ {
			t := f.U.Rowidx[p]
			utc := f.U.Values[p]
			if utc == 0 {
				continue // refreshed value drifted to zero: contribution vanishes
			}
			for q := dst.Colptr[t]; q < dst.Colptr[t+1]; q++ {
				acc[dst.Rowidx[q]] -= dst.Values[q] * utc
			}
		}
		piv := f.U.Values[up1-1]
		for p := dst.Colptr[c]; p < dst.Colptr[c+1]; p++ {
			i := dst.Rowidx[p]
			dst.Values[p] = acc[i] / piv
			acc[i] = 0
		}
	}
}

// RefactorUpperBlock recomputes dst = L⁻¹·P·B in place for a same-pattern
// B, where dst's columns hold the (structural, sorted, pivot-space)
// patterns discovered by SolveSparseL at factorization time and f's values
// have already been refreshed. Ascending pivot order is a topological order
// of the forward solve, so each column is one masked substitution pass;
// no DFS, no allocation. ws provides the dense accumulator.
func (f *Factors) RefactorUpperBlock(dst, b *sparse.CSC, ws *Workspace) {
	f.RefactorUpperBlockFrom(dst, b, ws, 0)
}

// RefactorUpperBlockFrom is RefactorUpperBlock restricted to columns
// c0..N-1. Unlike the lower-block sweep, each output column here is
// independent of the others but reads the whole of L, so the suffix
// restriction is sound only when the factor itself did not change this
// sweep and every changed input column lies at or beyond c0.
func (f *Factors) RefactorUpperBlockFrom(dst, b *sparse.CSC, ws *Workspace, c0 int) {
	ws.Grow(f.N)
	x := ws.X
	for c := c0; c < b.N; c++ {
		for p := b.Colptr[c]; p < b.Colptr[c+1]; p++ {
			x[f.Pinv[b.Rowidx[p]]] = b.Values[p]
		}
		for p := dst.Colptr[c]; p < dst.Colptr[c+1]; p++ {
			r := dst.Rowidx[p]
			xr := x[r]
			dst.Values[p] = xr
			x[r] = 0
			if xr == 0 {
				continue
			}
			for q := f.L.Colptr[r] + 1; q < f.L.Colptr[r+1]; q++ {
				x[f.L.Rowidx[q]] -= f.L.Values[q] * xr
			}
		}
	}
}

func insertionSortInts(a []int) {
	for i := 1; i < len(a); i++ {
		v := a[i]
		j := i - 1
		for j >= 0 && a[j] > v {
			a[j+1] = a[j]
			j--
		}
		a[j+1] = v
	}
}

// sortInts sorts a column pattern in place: insertion sort on the short
// segments that dominate circuit matrices, pdqsort on long separator
// patterns where O(k²) would show up.
func sortInts(a []int) {
	if len(a) <= 24 {
		insertionSortInts(a)
		return
	}
	sort.Ints(a)
}
