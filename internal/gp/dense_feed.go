package gp

import (
	"fmt"

	"repro/internal/dense"
	"repro/internal/sparse"
)

// This file is the dense-fed side of the Gilbert–Peierls kernel set: entry
// points that run a kernel's arithmetic through a column-major dense panel
// (internal/dense) and scatter the result back into the ordinary sparse
// factor representation. The fine-ND engine routes fill-heavy separator
// kernels here; everything downstream — triangular solves, off-diagonal
// kernels, in-place refactorization, the factorization pool — consumes the
// emitted Factors and CSC blocks exactly as if the sparse kernels had
// produced them.
//
// Emitted patterns are *structural fully dense*: every L column stores rows
// k..n-1 and every U column rows 0..k (exact zeros included), the same
// values-independent-pattern invariant the sparse kernels guarantee, which
// is what lets Refactor/RefactorPartial refresh dense-built blocks in
// place. The per-element update order of every dense kernel matches the
// corresponding in-place refresh sweep (ascending elimination order,
// division by the pivot rather than reciprocal multiplication), so a
// same-values refresh after a dense-fed factorization is a bitwise no-op.

// FactorDenseInto factors the square block a through the dense panel layer,
// recycling f's storage like FactorInto: a is scattered into a pooled
// column-major panel, factored by right-looking LU with the same
// diagonal-preference partial pivoting as the sparse kernel, and emitted as
// structural fully dense factors. dws provides the pooled panel; on error
// f's contents are unspecified (retrying is fine).
func FactorDenseInto(f *Factors, a *sparse.CSC, opts Options, dws *dense.Workspace) error {
	if a.M != a.N {
		return fmt.Errorf("gp: matrix must be square, got %d×%d", a.M, a.N)
	}
	n := a.N
	panel := dws.Panel(n, n)
	for j := 0; j < n; j++ {
		col := panel.Col(j)
		for p := a.Colptr[j]; p < a.Colptr[j+1]; p++ {
			col[a.Rowidx[p]] = a.Values[p]
		}
	}
	rows := dws.Rows(n)
	for i := range rows {
		rows[i] = i
	}
	if err := panel.LUPartialPivot(opts.tol(), opts.NoPivot, rows); err != nil {
		return fmt.Errorf("gp: dense panel: %w", ErrSingular)
	}

	// Emit in pivot order: position k of the panel is pivot row k.
	nnzHalf := n * (n + 1) / 2
	f.N = n
	f.L = resetFactorCSC(f.L, n, nnzHalf)
	f.U = resetFactorCSC(f.U, n, nnzHalf)
	f.P = sparse.GrowInts(f.P, n)
	f.Pinv = sparse.GrowInts(f.Pinv, n)
	f.Flops = 0
	f.Snodes = nil
	for k := 0; k < n; k++ {
		f.P[k] = rows[k]
		f.Pinv[rows[k]] = k
	}
	for k := 0; k < n; k++ {
		col := panel.Col(k)
		for i := 0; i <= k; i++ {
			f.U.Rowidx = append(f.U.Rowidx, i)
			f.U.Values = append(f.U.Values, col[i])
		}
		f.U.Colptr[k+1] = len(f.U.Rowidx)
		f.L.Rowidx = append(f.L.Rowidx, k)
		f.L.Values = append(f.L.Values, 1)
		for i := k + 1; i < n; i++ {
			f.L.Rowidx = append(f.L.Rowidx, i)
			f.L.Values = append(f.L.Values, col[i])
		}
		f.L.Colptr[k+1] = len(f.L.Rowidx)
		f.Flops += int64(n-k-1) * int64(n-k)
	}

	// Symmetric-prune boundaries are trivial for dense columns: U(j,j+1) is
	// structural and L(:,j) holds pivot row j+1, so every column prunes at
	// step j+1 and the finished-factor DFS prefix is the single entry below
	// the unit diagonal — reach sets over the dense L degenerate to a chain.
	if !opts.NoPrune {
		f.PruneEnd = sparse.GrowInts(f.PruneEnd, n)
		for j := 0; j < n; j++ {
			pe := f.L.Colptr[j] + 2
			if p1 := f.L.Colptr[j+1]; pe > p1 {
				pe = p1
			}
			f.PruneEnd[j] = pe
		}
	} else {
		f.PruneEnd = nil
	}
	return nil
}

// DenseUpperSolveInto computes U_kj = L⁻¹·P·b for a factorization built by
// FactorDenseInto, writing a structural fully dense result into recycled
// storage (dst may be nil): one forward-substitution sweep per column over
// the panel, reading f's contiguous dense L columns directly — no reach
// DFS, no pattern sort. The caller must guarantee f is dense-built; the
// arithmetic per column matches RefactorUpperBlock's masked substitution,
// so a same-values refresh reproduces the block bitwise.
func (f *Factors) DenseUpperSolveInto(dst, b *sparse.CSC, dws *dense.Workspace) *sparse.CSC {
	w, nc := f.N, b.N
	panel := dws.Panel(w, nc)
	for c := 0; c < nc; c++ {
		col := panel.Col(c)
		for p := b.Colptr[c]; p < b.Colptr[c+1]; p++ {
			col[f.Pinv[b.Rowidx[p]]] = b.Values[p]
		}
	}
	for c := 0; c < nc; c++ {
		x := panel.Col(c)
		for d := 0; d < w; d++ {
			xd := x[d]
			if xd == 0 {
				continue
			}
			lv := f.L.Values[f.L.Colptr[d]+1 : f.L.Colptr[d+1]]
			tgt := x[d+1:]
			tgt = tgt[:len(lv)] // bounds-check elimination hint
			for i, v := range lv {
				tgt[i] -= v * xd
			}
		}
	}
	return sparse.FillDense(dst, w, nc, panel.Data)
}

// DenseLowerSolveInto computes X solving X·U = B against a dense-built
// factorization's upper factor (Basker's lower off-diagonal kernel), with B
// rows outside the factored block: a left-looking TRSM over the panel
// reading f's contiguous dense U columns. Output is structural fully dense
// into recycled storage (dst may be nil). The per-column arithmetic matches
// RefactorLowerBlock, so a same-values refresh reproduces the block
// bitwise.
func (f *Factors) DenseLowerSolveInto(dst, b *sparse.CSC, dws *dense.Workspace) *sparse.CSC {
	h, w := b.M, b.N
	panel := dws.Panel(h, w)
	for c := 0; c < w; c++ {
		col := panel.Col(c)
		for p := b.Colptr[c]; p < b.Colptr[c+1]; p++ {
			col[b.Rowidx[p]] = b.Values[p]
		}
	}
	for c := 0; c < w; c++ {
		uv := f.U.Values[f.U.Colptr[c]:f.U.Colptr[c+1]] // rows 0..c, pivot last
		xc := panel.Col(c)
		for t := 0; t < c; t++ {
			utc := uv[t]
			if utc == 0 {
				continue
			}
			xt := panel.Col(t)
			xt = xt[:len(xc)] // bounds-check elimination hint
			for i := range xc {
				xc[i] -= xt[i] * utc
			}
		}
		piv := uv[c]
		for i := range xc {
			xc[i] /= piv
		}
	}
	return sparse.FillDense(dst, h, w, panel.Data)
}
