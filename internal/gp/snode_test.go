package gp

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/dense"
	"repro/internal/etree"
	"repro/internal/sparse"
)

// perturbSamePattern returns a copy of a with every value scaled by a
// random factor — same pattern, fresh values, still diagonally dominant
// when a was.
func perturbSamePattern(rng *rand.Rand, a *sparse.CSC) *sparse.CSC {
	out := a.Clone()
	for i := range out.Values {
		out.Values[i] *= 1 + 0.25*rng.Float64()
	}
	return out
}

func assertValuesEqual(t *testing.T, want, got *Factors, ctx string) {
	t.Helper()
	for i, v := range want.L.Values {
		if got.L.Values[i] != v {
			t.Fatalf("%s: L value %d diverges: %v vs %v", ctx, i, got.L.Values[i], v)
		}
	}
	for i, v := range want.U.Values {
		if got.U.Values[i] != v {
			t.Fatalf("%s: U value %d diverges: %v vs %v", ctx, i, got.U.Values[i], v)
		}
	}
}

// TestFactorSupernodalMatchesPlain: across densities spanning the
// supernodal sweet spot, the supernodal factorization (partition from the
// column elimination tree) must satisfy every factor invariant, reconstruct
// P·A, and solve to the same answers as the plain per-column kernel.
func TestFactorSupernodalMatchesPlain(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	dws := dense.NewWorkspace()
	for _, n := range []int{20, 60, 120} {
		for _, fill := range []float64{0.05, 0.15, 0.35} {
			a := denseishCSC(rng, n, fill, true)
			xsup := etree.RelaxedSupernodes(etree.ColEtree(a), nil, 8, 64)
			sn := &Factors{}
			if err := FactorSupernodalInto(sn, a, xsup, 0, Options{}, nil, dws); err != nil {
				t.Fatalf("n=%d fill=%g: %v", n, fill, err)
			}
			checkFactorization(t, a, sn, 100)
			plain, err := Factor(a, 0, Options{}, nil)
			if err != nil {
				t.Fatal(err)
			}
			b := make([]float64, n)
			x := make([]float64, n)
			for i := range b {
				b[i] = rng.NormFloat64()
				x[i] = b[i]
			}
			plain.Solve(b)
			sn.Solve(x)
			for i := range b {
				if math.Abs(b[i]-x[i]) > 1e-8*(1+math.Abs(b[i])) {
					t.Fatalf("n=%d fill=%g: solve diverges at %d: %v vs %v", n, fill, i, x[i], b[i])
				}
			}
			if len(sn.Snodes) != len(xsup) {
				t.Fatalf("factors do not carry the supernode partition")
			}
		}
	}
}

// TestFactorSupernodalArbitraryPartition: padding makes ANY partition
// correct — the elimination tree only drives quality. Fixed-width runs that
// ignore the tree entirely must still factor correctly, with true partial
// pivoting exercising the panel's row swaps.
func TestFactorSupernodalArbitraryPartition(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	n := 48
	a := denseishCSC(rng, n, 0.3, false)
	for _, w := range []int{2, 5, 7, n} {
		xsup := []int{0}
		for xsup[len(xsup)-1] < n {
			e := xsup[len(xsup)-1] + w
			if e > n {
				e = n
			}
			xsup = append(xsup, e)
		}
		sn := &Factors{}
		if err := FactorSupernodalInto(sn, a, xsup, 0, Options{PivotTol: 1}, nil, dense.NewWorkspace()); err != nil {
			t.Fatalf("width %d: %v", w, err)
		}
		checkFactorization(t, a, sn, 100)
	}
}

// TestRefactorSupernodalBitwise pins the refresh contracts the fine-ND
// sweeps rely on: after normalizing to refresh arithmetic, a same-values
// refresh is a bitwise no-op (idempotence), and the selective refresh with
// every column stamped is bitwise identical to the full refresh.
func TestRefactorSupernodalBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	n := 90
	a := denseishCSC(rng, n, 0.15, true)
	xsup := etree.RelaxedSupernodes(etree.ColEtree(a), nil, 8, 64)
	wide := false
	for s := 0; s+1 < len(xsup); s++ {
		if xsup[s+1]-xsup[s] >= 2 {
			wide = true
		}
	}
	if !wide {
		t.Fatal("test premise broken: partition has no wide supernode")
	}
	dws := dense.NewWorkspace()
	ws := NewWorkspace(n)
	var fs [2]*Factors
	for i := range fs {
		fs[i] = &Factors{}
		if err := FactorSupernodalInto(fs[i], a, xsup, 0, Options{}, ws, dws); err != nil {
			t.Fatal(err)
		}
		if err := fs[i].RefactorSupernodal(a, ws, dws); err != nil {
			t.Fatal(err)
		}
	}
	checkFactorization(t, a, fs[0], 100)

	// Idempotence: a second same-values refresh changes no bit.
	snapL := append([]float64(nil), fs[0].L.Values...)
	snapU := append([]float64(nil), fs[0].U.Values...)
	if err := fs[0].RefactorSupernodal(a, ws, dws); err != nil {
		t.Fatal(err)
	}
	for i, v := range snapL {
		if fs[0].L.Values[i] != v {
			t.Fatalf("idempotence: L value %d changed", i)
		}
	}
	for i, v := range snapU {
		if fs[0].U.Values[i] != v {
			t.Fatalf("idempotence: U value %d changed", i)
		}
	}

	// Full vs selective-with-everything-stamped: bitwise identical, and the
	// rerun closure marks every column.
	a2 := perturbSamePattern(rng, a)
	if err := fs[0].RefactorSupernodal(a2, ws, dws); err != nil {
		t.Fatal(err)
	}
	stamp := make([]uint64, n)
	rerun := make([]bool, n)
	for i := range stamp {
		stamp[i] = 7
	}
	if err := fs[1].RefactorSupernodalSelective(a2, ws, dws, stamp, 7, rerun); err != nil {
		t.Fatal(err)
	}
	assertValuesEqual(t, fs[0], fs[1], "selective full-stamp")
	for k, r := range rerun {
		if !r {
			t.Fatalf("column %d not marked rerun under full stamps", k)
		}
	}
	checkFactorization(t, a2, fs[0], 100)

	// No stamps at all: nothing reruns, nothing changes, rerun comes back
	// all-false.
	snapL = append(snapL[:0], fs[1].L.Values...)
	if err := fs[1].RefactorSupernodalSelective(a, ws, dws, stamp, 8, rerun); err != nil {
		t.Fatal(err)
	}
	for i, v := range snapL {
		if fs[1].L.Values[i] != v {
			t.Fatalf("no-stamp refresh touched L value %d", i)
		}
	}
	for k, r := range rerun {
		if r {
			t.Fatalf("column %d marked rerun with no stamps", k)
		}
	}
}

// TestRefactorSupernodalSelectiveClosure: stamping a single column reruns
// exactly its dependency closure at supernode granularity, bitwise equal to
// the full refresh when the unstamped prefix is unchanged.
func TestRefactorSupernodalSelectiveClosure(t *testing.T) {
	rng := rand.New(rand.NewSource(64))
	n := 80
	a := denseishCSC(rng, n, 0.12, true)
	xsup := etree.RelaxedSupernodes(etree.ColEtree(a), nil, 8, 64)
	dws := dense.NewWorkspace()
	ws := NewWorkspace(n)
	var fs [2]*Factors
	for i := range fs {
		fs[i] = &Factors{}
		if err := FactorSupernodalInto(fs[i], a, xsup, 0, Options{}, ws, dws); err != nil {
			t.Fatal(err)
		}
		if err := fs[i].RefactorSupernodal(a, ws, dws); err != nil {
			t.Fatal(err)
		}
	}
	// Perturb one late column only.
	c := 3 * n / 4
	a2 := a.Clone()
	for p := a2.Colptr[c]; p < a2.Colptr[c+1]; p++ {
		a2.Values[p] *= 1.5
	}
	if err := fs[0].RefactorSupernodal(a2, ws, dws); err != nil {
		t.Fatal(err)
	}
	stamp := make([]uint64, n)
	rerun := make([]bool, n)
	stamp[c] = 3
	if err := fs[1].RefactorSupernodalSelective(a2, ws, dws, stamp, 3, rerun); err != nil {
		t.Fatal(err)
	}
	assertValuesEqual(t, fs[0], fs[1], "selective closure")
	if !rerun[c] {
		t.Fatal("stamped column not marked rerun")
	}
	for k := 0; k < n; k++ {
		if rerun[k] && k < c {
			// Allowed only for columns sharing c's supernode (over-refresh).
			in := false
			for s := 0; s+1 < len(xsup); s++ {
				if xsup[s] <= c && c < xsup[s+1] && xsup[s] <= k && k < xsup[s+1] {
					in = true
				}
			}
			if !in {
				t.Fatalf("column %d (< changed column %d, different supernode) reran", k, c)
			}
		}
	}
}

// TestRefactorSupernodalSingular: a pivot drifted to zero must surface
// ErrSingular through the usual chain — the fine-ND per-block fallback
// depends on it — and leave the workspace clean for the retry.
func TestRefactorSupernodalSingular(t *testing.T) {
	rng := rand.New(rand.NewSource(65))
	n := 40
	a := denseishCSC(rng, n, 0.2, true)
	xsup := etree.RelaxedSupernodes(etree.ColEtree(a), nil, 8, 64)
	dws := dense.NewWorkspace()
	ws := NewWorkspace(n)
	f := &Factors{}
	if err := FactorSupernodalInto(f, a, xsup, 0, Options{}, ws, dws); err != nil {
		t.Fatal(err)
	}
	bad := a.Clone()
	for p := bad.Colptr[n/2]; p < bad.Colptr[n/2+1]; p++ {
		bad.Values[p] = 0
	}
	if err := f.RefactorSupernodal(bad, ws, dws); !errors.Is(err, ErrSingular) {
		t.Fatalf("err = %v, want ErrSingular in chain", err)
	}
	// Workspace left clean: a fresh supernodal factorization of a good
	// matrix through the same workspace must succeed and verify.
	if err := FactorSupernodalInto(f, a, xsup, 0, Options{}, ws, dws); err != nil {
		t.Fatalf("retry after singular refresh: %v", err)
	}
	checkFactorization(t, a, f, 100)
}

// TestFactorSupernodalRecyclesStorage: the supernodal path must reach the
// same zero-allocation steady state as the per-column kernel once factor
// storage, workspace and panels have grown.
func TestFactorSupernodalRecyclesStorage(t *testing.T) {
	rng := rand.New(rand.NewSource(66))
	n := 72
	base := denseishCSC(rng, n, 0.15, true)
	xsup := etree.RelaxedSupernodes(etree.ColEtree(base), nil, 8, 64)
	steps := make([]*sparse.CSC, 3)
	for i := range steps {
		steps[i] = perturbSamePattern(rng, base)
	}
	f := &Factors{}
	ws := NewWorkspace(n)
	dws := dense.NewWorkspace()
	for _, s := range steps {
		if err := FactorSupernodalInto(f, s, xsup, 0, Options{}, ws, dws); err != nil {
			t.Fatal(err)
		}
	}
	i := 0
	allocs := testing.AllocsPerRun(20, func() {
		i++
		if err := FactorSupernodalInto(f, steps[i%len(steps)], xsup, 0, Options{}, ws, dws); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state FactorSupernodalInto allocates: %v allocs/op", allocs)
	}
	allocs = testing.AllocsPerRun(20, func() {
		i++
		if err := f.RefactorSupernodal(steps[i%len(steps)], ws, dws); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state RefactorSupernodal allocates: %v allocs/op", allocs)
	}
}

// TestRefactorDenseMatchesSparseRefresh pins the tentpole bitwise claim at
// the kernel level: on a dense-built factorization, RefactorDense (panel
// right-looking) produces values bitwise identical to Refactor (per-column
// left-looking), and the selective variant degenerates to the suffix rule.
func TestRefactorDenseMatchesSparseRefresh(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	n := 56
	a := denseishCSC(rng, n, 0.4, true)
	dws := dense.NewWorkspace()
	ws := NewWorkspace(n)
	var fs [2]*Factors
	for i := range fs {
		fs[i] = &Factors{}
		if err := FactorDenseInto(fs[i], a, Options{}, dws); err != nil {
			t.Fatal(err)
		}
	}
	a2 := perturbSamePattern(rng, a)
	if err := fs[0].Refactor(a2, ws); err != nil {
		t.Fatal(err)
	}
	if err := fs[1].RefactorDense(a2, dws); err != nil {
		t.Fatal(err)
	}
	assertValuesEqual(t, fs[0], fs[1], "dense vs sparse refresh")

	// Suffix restriction: perturb only columns >= c, stamp exactly those,
	// and the selective dense refresh must match the full one bitwise while
	// reporting the rerun suffix.
	c := n / 3
	a3 := a2.Clone()
	for j := c; j < n; j++ {
		for p := a3.Colptr[j]; p < a3.Colptr[j+1]; p++ {
			a3.Values[p] *= 1.25
		}
	}
	if err := fs[0].RefactorDense(a3, dws); err != nil {
		t.Fatal(err)
	}
	stamp := make([]uint64, n)
	rerun := make([]bool, n)
	for j := c; j < n; j++ {
		stamp[j] = 5
	}
	if err := fs[1].RefactorDenseSelective(a3, dws, stamp, 5, rerun); err != nil {
		t.Fatal(err)
	}
	assertValuesEqual(t, fs[0], fs[1], "selective dense refresh")
	for k := range rerun {
		if rerun[k] != (k >= c) {
			t.Fatalf("rerun[%d] = %v, want suffix from %d", k, rerun[k], c)
		}
	}

	// No stamps: a no-op that clears rerun.
	if err := fs[1].RefactorDenseSelective(a3, dws, stamp, 6, rerun); err != nil {
		t.Fatal(err)
	}
	for k := range rerun {
		if rerun[k] {
			t.Fatalf("rerun[%d] set by a no-stamp selective refresh", k)
		}
	}

	// Drifted-to-zero pivot: ErrSingular, factor values untouched.
	bad := a3.Clone()
	for p := bad.Colptr[0]; p < bad.Colptr[1]; p++ {
		bad.Values[p] = 0
	}
	snapU := append([]float64(nil), fs[1].U.Values...)
	if err := fs[1].RefactorDense(bad, dws); !errors.Is(err, ErrSingular) {
		t.Fatalf("err = %v, want ErrSingular in chain", err)
	}
	for i, v := range snapU {
		if fs[1].U.Values[i] != v {
			t.Fatal("failed dense refresh touched factor values")
		}
	}
}

// TestDenseTRSMRefreshMatchesSolve: the in-place dense TRSM refreshes must
// reproduce the dense solve kernels bitwise — same arithmetic on the same
// contiguous columns, destination storage instead of a pooled panel.
func TestDenseTRSMRefreshMatchesSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(68))
	n, m, h := 36, 22, 15
	a := denseishCSC(rng, n, 0.45, true)
	dws := dense.NewWorkspace()
	f := &Factors{}
	if err := FactorDenseInto(f, a, Options{}, dws); err != nil {
		t.Fatal(err)
	}

	// Upper: refresh in place vs fresh solve of the new right-hand block.
	b := denseishCSC(rng, n, 0.25, false).ExtractBlock(0, n, 0, m)
	up := f.DenseUpperSolveInto(nil, b, dws)
	b2 := perturbSamePattern(rng, b)
	want := f.DenseUpperSolveInto(nil, b2, dws)
	f.DenseUpperRefactorFrom(up, b2, 0)
	for i, v := range want.Values {
		if up.Values[i] != v {
			t.Fatalf("upper refresh value %d diverges: %v vs %v", i, up.Values[i], v)
		}
	}
	// Suffix restriction: only columns >= c0 change; the in-place suffix
	// refresh matches the full fresh solve bitwise.
	c0 := m / 2
	b3 := b2.Clone()
	for j := c0; j < m; j++ {
		for p := b3.Colptr[j]; p < b3.Colptr[j+1]; p++ {
			b3.Values[p] *= 1.3
		}
	}
	want = f.DenseUpperSolveInto(want, b3, dws)
	f.DenseUpperRefactorFrom(up, b3, c0)
	for i, v := range want.Values {
		if up.Values[i] != v {
			t.Fatalf("upper suffix refresh value %d diverges", i)
		}
	}

	// Lower: same contract for X·U = B.
	bl := denseishCSC(rng, n, 0.25, false).ExtractBlock(0, h, 0, n)
	lo := f.DenseLowerSolveInto(nil, bl, dws)
	bl2 := perturbSamePattern(rng, bl)
	wantL := f.DenseLowerSolveInto(nil, bl2, dws)
	f.DenseLowerRefactorFrom(lo, bl2, 0)
	for i, v := range wantL.Values {
		if lo.Values[i] != v {
			t.Fatalf("lower refresh value %d diverges: %v vs %v", i, lo.Values[i], v)
		}
	}
}
