package gp

import (
	"fmt"

	"repro/internal/dense"
	"repro/internal/sparse"
)

// This file is the refresh-sweep side of the dense-fed kernel set: in-place
// value refreshes for factors and off-diagonal blocks that were *built* by
// the dense panel layer (dense_feed.go). Dense-built blocks are structural
// fully dense — every column is a contiguous slice of the CSC value array —
// so the refresh arithmetic runs on contiguous storage with no pattern
// indirection: the same flops as the entry-at-a-time sparse refresh, much
// better constants.
//
// Bitwise contracts, matching the sparse refresh kernels exactly:
//   - RefactorDense is bitwise identical to Refactor on a dense-built
//     factor (same per-element operand order, same skip-on-zero tests,
//     division by the pivot rather than reciprocal multiplication);
//   - the *From/*Selective suffix restrictions produce values bitwise
//     identical to the corresponding full refresh, which is what keeps
//     RefactorPartial bitwise-equal to a full Refactor when the fine-ND
//     sweeps dispatch dense-built kernels here.

// RefactorDense recomputes the numeric values of a dense-built factorization
// for a new matrix a with the same pattern, reusing the pivot sequence: a is
// scattered into a pooled panel in pivot order, eliminated right-looking
// with no pivot search, and copied back over the fixed fully dense factor
// patterns. The per-element update sequence matches the left-looking
// refactorColumn exactly (column j's update of column k uses the same
// operands in the same order at both orientations), so the result is
// bitwise identical to Refactor — only the memory traffic differs. The
// caller must guarantee f was built by FactorDenseInto.
func (f *Factors) RefactorDense(a *sparse.CSC, dws *dense.Workspace) error {
	return f.refactorDenseFrom(a, dws, 0)
}

// RefactorDenseSelective is the dense counterpart of RefactorSelective.
// Dense-built U columns are structurally full (U(:,k) holds every row
// 0..k-1), so the sparse closure rule — rerun column k when its input
// changed or when any already-rerun column appears in U(:,k)'s pattern —
// degenerates to the contiguous suffix starting at the first stamped
// column. rerun is overwritten with that suffix so the caller sees the
// same contract as the sparse kernel.
func (f *Factors) RefactorDenseSelective(a *sparse.CSC, dws *dense.Workspace, colStamp []uint64, epoch uint64, rerun []bool) error {
	n := f.N
	k0 := -1
	for k := 0; k < n; k++ {
		if colStamp[k] == epoch {
			k0 = k
			break
		}
	}
	if k0 < 0 {
		clear(rerun[:n])
		return nil
	}
	for k := 0; k < n; k++ {
		rerun[k] = k >= k0
	}
	return f.refactorDenseFrom(a, dws, k0)
}

// refactorDenseFrom refreshes factor columns k0..n-1 through the panel.
// Columns before k0 keep their values; only their L entries (already
// divided by their pivots) are loaded into the panel to feed the suffix
// updates. On a singular drifted pivot the factor values are left
// untouched (the panel is pooled scratch), and the caller falls back to a
// fresh factorization exactly as with the sparse refresh.
func (f *Factors) refactorDenseFrom(a *sparse.CSC, dws *dense.Workspace, k0 int) error {
	n := f.N
	if a.M != n || a.N != n {
		return fmt.Errorf("gp: refactor dimension mismatch")
	}
	panel := dws.Panel(n, n)
	for j := 0; j < k0; j++ {
		copy(panel.Col(j)[j+1:], f.L.Values[f.L.Colptr[j]+1:f.L.Colptr[j+1]])
	}
	for j := k0; j < n; j++ {
		col := panel.Col(j)
		for p := a.Colptr[j]; p < a.Colptr[j+1]; p++ {
			col[f.Pinv[a.Rowidx[p]]] = a.Values[p]
		}
	}
	for d := 0; d < n; d++ {
		cd := panel.Col(d)
		if d >= k0 {
			piv := cd[d]
			if piv == 0 {
				return fmt.Errorf("gp: dense refactor column %d: %w", d, ErrSingular)
			}
			for i := d + 1; i < n; i++ {
				cd[i] /= piv
			}
		}
		lo := cd[d+1:]
		j0 := d + 1
		if j0 < k0 {
			j0 = k0
		}
		for j := j0; j < n; j++ {
			cj := panel.Col(j)
			fjd := cj[d]
			if fjd == 0 {
				continue
			}
			tgt := cj[d+1:]
			tgt = tgt[:len(lo)] // bounds-check elimination hint
			for i, v := range lo {
				tgt[i] -= v * fjd
			}
		}
	}
	for k := k0; k < n; k++ {
		col := panel.Col(k)
		up0 := f.U.Colptr[k]
		copy(f.U.Values[up0:up0+k+1], col[:k+1])
		lp0 := f.L.Colptr[k]
		copy(f.L.Values[lp0+1:f.L.Colptr[k+1]], col[k+1:])
	}
	return nil
}

// DenseUpperRefactorFrom refreshes columns c0..N-1 of a dense-built upper
// block dst = L⁻¹·P·B in place for a same-pattern B. dst's columns are
// contiguous fully dense slices of its value array, so the forward
// substitution runs directly on the destination storage — no panel, no
// scatter-back. The arithmetic per column matches DenseUpperSolveInto (and
// therefore RefactorUpperBlock) bitwise. The suffix restriction carries
// RefactorUpperBlockFrom's contract: sound only when the factor did not
// change this sweep and every changed input column lies at or beyond c0.
func (f *Factors) DenseUpperRefactorFrom(dst, b *sparse.CSC, c0 int) {
	w := f.N
	for c := c0; c < b.N; c++ {
		x := dst.Values[dst.Colptr[c]:dst.Colptr[c+1]]
		clear(x)
		for p := b.Colptr[c]; p < b.Colptr[c+1]; p++ {
			x[f.Pinv[b.Rowidx[p]]] = b.Values[p]
		}
		for d := 0; d < w; d++ {
			xd := x[d]
			if xd == 0 {
				continue
			}
			lv := f.L.Values[f.L.Colptr[d]+1 : f.L.Colptr[d+1]]
			tgt := x[d+1:]
			tgt = tgt[:len(lv)] // bounds-check elimination hint
			for i, v := range lv {
				tgt[i] -= v * xd
			}
		}
	}
}

// DenseLowerRefactorFrom refreshes columns c0..N-1 of a dense-built lower
// block dst solving X·U = B in place for a same-pattern B: the left-looking
// TRSM of DenseLowerSolveInto running directly on dst's contiguous columns.
// Earlier columns are read in place — ascending order guarantees they were
// refreshed (or were already correct) before being consumed, the same
// dependency argument as RefactorLowerBlockFrom, whose arithmetic this
// matches bitwise.
func (f *Factors) DenseLowerRefactorFrom(dst, b *sparse.CSC, c0 int) {
	for c := c0; c < b.N; c++ {
		xc := dst.Values[dst.Colptr[c]:dst.Colptr[c+1]]
		clear(xc)
		for p := b.Colptr[c]; p < b.Colptr[c+1]; p++ {
			xc[b.Rowidx[p]] = b.Values[p]
		}
		uv := f.U.Values[f.U.Colptr[c]:f.U.Colptr[c+1]] // rows 0..c, pivot last
		for t := 0; t < c; t++ {
			utc := uv[t]
			if utc == 0 {
				continue
			}
			xt := dst.Values[dst.Colptr[t]:dst.Colptr[t+1]]
			xt = xt[:len(xc)] // bounds-check elimination hint
			for i := range xc {
				xc[i] -= xt[i] * utc
			}
		}
		piv := uv[c]
		for i := range xc {
			xc[i] /= piv
		}
	}
}
