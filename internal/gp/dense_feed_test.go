package gp

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/dense"
	"repro/internal/sparse"
)

// denseishCSC builds an n×n matrix with the given fill fraction plus a
// dominant diagonal (so the diagonal-preference pivot rule is exercised on
// realistic separator-like blocks).
func denseishCSC(rng *rand.Rand, n int, fill float64, dominant bool) *sparse.CSC {
	coo := sparse.NewCOO(n, n, int(float64(n*n)*fill)+n)
	for i := 0; i < n; i++ {
		d := rng.NormFloat64()
		if dominant {
			d = 20 + rng.Float64()
		}
		coo.Add(i, i, d)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j && rng.Float64() < fill {
				coo.Add(i, j, rng.NormFloat64())
			}
		}
	}
	return coo.ToCSC(false)
}

// TestFactorDenseIntoMatchesSparse: the dense panel factorization must pick
// the same pivot sequence as the sparse kernel on diagonally dominant
// blocks (both prefer the natural pivot) and solve to equivalent residuals;
// its emitted factors must be structural fully dense with sorted columns,
// unit-diagonal-first L and pivot-last U — everything downstream assumes.
func TestFactorDenseIntoMatchesSparse(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for _, n := range []int{5, 16, 33, 64} {
		a := denseishCSC(rng, n, 0.4, true)
		sp, err := Factor(a, 0, Options{}, nil)
		if err != nil {
			t.Fatal(err)
		}
		dn := &Factors{}
		if err := FactorDenseInto(dn, a, Options{}, dense.NewWorkspace()); err != nil {
			t.Fatal(err)
		}
		for k := 0; k < n; k++ {
			if sp.P[k] != dn.P[k] {
				t.Fatalf("n=%d: pivot %d differs: sparse %d dense %d", n, k, sp.P[k], dn.P[k])
			}
		}
		// Structural shape: L column k holds rows k..n-1 (unit diagonal
		// first), U column k rows 0..k (pivot last).
		for k := 0; k < n; k++ {
			if got := dn.L.Colptr[k+1] - dn.L.Colptr[k]; got != n-k {
				t.Fatalf("L column %d has %d entries, want %d", k, got, n-k)
			}
			if dn.L.Values[dn.L.Colptr[k]] != 1 || dn.L.Rowidx[dn.L.Colptr[k]] != k {
				t.Fatalf("L column %d missing leading unit diagonal", k)
			}
			if got := dn.U.Colptr[k+1] - dn.U.Colptr[k]; got != k+1 {
				t.Fatalf("U column %d has %d entries, want %d", k, got, k+1)
			}
			if dn.U.Rowidx[dn.U.Colptr[k+1]-1] != k {
				t.Fatalf("U column %d pivot not last", k)
			}
		}
		// Identical pivots + same math ⇒ equal values up to roundoff.
		b := make([]float64, n)
		x := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
			x[i] = b[i]
		}
		sp.Solve(b)
		dn.Solve(x)
		for i := range b {
			if math.Abs(b[i]-x[i]) > 1e-9*(1+math.Abs(b[i])) {
				t.Fatalf("n=%d: solve diverges at %d: %v vs %v", n, i, b[i], x[i])
			}
		}
	}
}

// TestFactorDenseIntoPivots: with tol=1 (true partial pivoting) on a
// non-dominant matrix, L·U must still reconstruct P·A.
func TestFactorDenseIntoPivots(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	n := 24
	a := denseishCSC(rng, n, 0.6, false)
	f := &Factors{}
	if err := FactorDenseInto(f, a, Options{PivotTol: 1}, dense.NewWorkspace()); err != nil {
		t.Fatal(err)
	}
	// Check L·U = A(P,:) column by column.
	for j := 0; j < n; j++ {
		col := make([]float64, n)
		for p := f.U.Colptr[j]; p < f.U.Colptr[j+1]; p++ {
			k := f.U.Rowidx[p]
			ukj := f.U.Values[p]
			for q := f.L.Colptr[k]; q < f.L.Colptr[k+1]; q++ {
				col[f.L.Rowidx[q]] += f.L.Values[q] * ukj
			}
		}
		for i := 0; i < n; i++ {
			if v := a.At(f.P[i], j); math.Abs(col[i]-v) > 1e-9*(1+math.Abs(v)) {
				t.Fatalf("P·A(%d,%d): LU gives %v, want %v", i, j, col[i], v)
			}
		}
	}
}

// TestFactorDenseIntoSingular: an all-zero column must report ErrSingular
// through the usual error chain (the pivot-drift fallbacks rely on it).
func TestFactorDenseIntoSingular(t *testing.T) {
	coo := sparse.NewCOO(3, 3, 3)
	coo.Add(0, 0, 1)
	coo.Add(2, 2, 1)
	coo.Add(0, 1, 0) // structural entry, zero value
	f := &Factors{}
	err := FactorDenseInto(f, coo.ToCSC(false), Options{}, dense.NewWorkspace())
	if !errors.Is(err, ErrSingular) {
		t.Fatalf("err = %v, want ErrSingular in chain", err)
	}
}

// TestDenseSolvesMatchSparseKernels: the dense TRSM kernels must agree with
// the sparse off-diagonal kernels they replace — same factorization, same
// right-hand blocks, equal values on the shared pattern (and exact zeros on
// the dense-only positions).
func TestDenseSolvesMatchSparseKernels(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	n, m := 32, 20
	a := denseishCSC(rng, n, 0.5, true)
	f := &Factors{}
	dws := dense.NewWorkspace()
	if err := FactorDenseInto(f, a, Options{}, dws); err != nil {
		t.Fatal(err)
	}

	// Upper kernel: U = L⁻¹·P·B against the sparse reach solve.
	b := denseishCSC(rng, n, 0.2, false).ExtractBlock(0, n, 0, m)
	up := f.DenseUpperSolveInto(nil, b, dws)
	ws := NewWorkspace(n)
	for c := 0; c < m; c++ {
		bIdx := b.Rowidx[b.Colptr[c]:b.Colptr[c+1]]
		bVal := b.Values[b.Colptr[c]:b.Colptr[c+1]]
		patt := f.SolveSparseL(bIdx, bVal, ws)
		got := make([]float64, n)
		for p := up.Colptr[c]; p < up.Colptr[c+1]; p++ {
			got[up.Rowidx[p]] = up.Values[p]
		}
		want := make([]float64, n)
		for _, r := range patt {
			want[r] = ws.X[r]
		}
		ClearSparse(ws, patt)
		for i := 0; i < n; i++ {
			if math.Abs(got[i]-want[i]) > 1e-10*(1+math.Abs(want[i])) {
				t.Fatalf("upper col %d row %d: dense %v sparse %v", c, i, got[i], want[i])
			}
		}
	}

	// Lower kernel: X·U = B against LowerBlockSolve.
	h := 17
	bl := denseishCSC(rng, n, 0.25, false).ExtractBlock(0, h, 0, n)
	mark := make([]int, h+1)
	acc := make([]float64, h+1)
	tag := 0
	sparseX := f.LowerBlockSolve(bl, mark, &tag, acc)
	denseX := f.DenseLowerSolveInto(nil, bl, dws)
	for c := 0; c < n; c++ {
		got := make([]float64, h)
		for p := denseX.Colptr[c]; p < denseX.Colptr[c+1]; p++ {
			got[denseX.Rowidx[p]] = denseX.Values[p]
		}
		want := make([]float64, h)
		for p := sparseX.Colptr[c]; p < sparseX.Colptr[c+1]; p++ {
			want[sparseX.Rowidx[p]] = sparseX.Values[p]
		}
		for i := 0; i < h; i++ {
			if math.Abs(got[i]-want[i]) > 1e-10*(1+math.Abs(want[i])) {
				t.Fatalf("lower col %d row %d: dense %v sparse %v", c, i, got[i], want[i])
			}
		}
	}
}

// TestDenseBuiltRefactorBitwiseNoOp: refreshing a dense-built factorization
// with the same values must be a bitwise no-op — the dense kernels' update
// order matches refactorColumn's left-looking sweep exactly. This is the
// invariant that keeps Refactor/RefactorPartial bitwise-stable downstream
// of dense-path factorizations.
func TestDenseBuiltRefactorBitwiseNoOp(t *testing.T) {
	rng := rand.New(rand.NewSource(54))
	n := 40
	a := denseishCSC(rng, n, 0.45, true)
	f := &Factors{}
	dws := dense.NewWorkspace()
	if err := FactorDenseInto(f, a, Options{}, dws); err != nil {
		t.Fatal(err)
	}
	lvals := append([]float64(nil), f.L.Values...)
	uvals := append([]float64(nil), f.U.Values...)
	if err := f.Refactor(a, NewWorkspace(n)); err != nil {
		t.Fatal(err)
	}
	for i, v := range lvals {
		if f.L.Values[i] != v {
			t.Fatalf("L value %d changed: %v -> %v", i, v, f.L.Values[i])
		}
	}
	for i, v := range uvals {
		if f.U.Values[i] != v {
			t.Fatalf("U value %d changed: %v -> %v", i, v, f.U.Values[i])
		}
	}
}

// TestFactorDenseIntoRecyclesStorage: repeated dense factorizations on the
// same dimension must stop allocating once the workspace and factor
// storage have grown.
func TestFactorDenseIntoRecyclesStorage(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	n := 28
	steps := make([]*sparse.CSC, 3)
	for i := range steps {
		steps[i] = denseishCSC(rng, n, 0.5, true)
	}
	f := &Factors{}
	dws := dense.NewWorkspace()
	for _, s := range steps {
		if err := FactorDenseInto(f, s, Options{}, dws); err != nil {
			t.Fatal(err)
		}
	}
	i := 0
	allocs := testing.AllocsPerRun(20, func() {
		i++
		if err := FactorDenseInto(f, steps[i%len(steps)], Options{}, dws); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state FactorDenseInto allocates: %v allocs/op", allocs)
	}
}
