package gp

// Transpose triangular solves. The condition estimator (Hager/Higham,
// driven from internal/core) needs A⁻ᵀ applications through the existing
// factors; with L stored unit-diagonal-first and U pivot-last per sorted
// column, each transpose solve is one pass over the same storage in the
// opposite direction, accumulating dot products instead of scattering
// updates.

// LSolveT solves Lᵀ x = y in place. Lᵀ is unit upper triangular, so the
// sweep runs backward; row j of Lᵀ is column j of L (entries below the
// diagonal).
func (f *Factors) LSolveT(y []float64) {
	for j := f.N - 1; j >= 0; j-- {
		yj := y[j]
		for p := f.L.Colptr[j] + 1; p < f.L.Colptr[j+1]; p++ {
			yj -= f.L.Values[p] * y[f.L.Rowidx[p]]
		}
		y[j] = yj
	}
}

// USolveT solves Uᵀ x = y in place. Uᵀ is lower triangular, so the sweep
// runs forward; row j of Uᵀ is column j of U with the pivot stored last.
func (f *Factors) USolveT(y []float64) {
	for j := 0; j < f.N; j++ {
		p1 := f.U.Colptr[j+1]
		yj := y[j]
		for p := f.U.Colptr[j]; p < p1-1; p++ {
			yj -= f.U.Values[p] * y[f.U.Rowidx[p]]
		}
		y[j] = yj / f.U.Values[p1-1]
	}
}

// SolveTransposeWith solves Aᵀ x = b in place using caller-provided
// scratch of at least N elements. With P A = L U (P applied by SolveWith
// as y[k] = b[P[k]]), Aᵀ = Uᵀ Lᵀ P, so x = Pᵀ L⁻ᵀ U⁻ᵀ b.
func (f *Factors) SolveTransposeWith(b, scratch []float64) {
	n := f.N
	y := scratch[:n]
	copy(y, b[:n])
	f.USolveT(y)
	f.LSolveT(y)
	for k := 0; k < n; k++ {
		b[f.P[k]] = y[k]
	}
}

// MaxAbsU reports the largest absolute value stored in U — the numerator
// side of the reciprocal pivot-growth diagnostic. One O(nnz U) pass over
// finished storage; nothing on the factorization hot path.
func (f *Factors) MaxAbsU() float64 {
	m := 0.0
	for _, v := range f.U.Values[:f.U.Nnz()] {
		if v < 0 {
			v = -v
		}
		if v > m {
			m = v
		}
	}
	return m
}
