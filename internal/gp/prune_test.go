package gp

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/matgen"
	"repro/internal/sparse"
)

// factorBoth factors a with and without Eisenstat–Liu pruning.
func factorBoth(t *testing.T, a *sparse.CSC, opts Options) (pruned, plain *Factors) {
	t.Helper()
	pruned, err := Factor(a, 0, opts, nil)
	if err != nil {
		t.Fatalf("pruned factor: %v", err)
	}
	opts.NoPrune = true
	plain, err = Factor(a, 0, opts, nil)
	if err != nil {
		t.Fatalf("unpruned factor: %v", err)
	}
	return pruned, plain
}

// checkSameFactorization asserts identical pivot sequences, identical L/U
// patterns, and values equal to roundoff: symmetric pruning is a symbolic
// shortcut, not a numerical change (the only legitimate difference is the
// floating-point summation order behind each entry).
func checkSameFactorization(t *testing.T, pruned, plain *Factors, scale float64) {
	t.Helper()
	for k := range plain.P {
		if pruned.P[k] != plain.P[k] {
			t.Fatalf("pivot sequence diverges at step %d: pruned %d, unpruned %d", k, pruned.P[k], plain.P[k])
		}
	}
	checkSameCSC(t, "L", pruned.L, plain.L, scale)
	checkSameCSC(t, "U", pruned.U, plain.U, scale)
}

func checkSameCSC(t *testing.T, name string, got, want *sparse.CSC, scale float64) {
	t.Helper()
	if got.Nnz() != want.Nnz() {
		t.Fatalf("%s pattern size: pruned %d entries, unpruned %d", name, got.Nnz(), want.Nnz())
	}
	for j := 0; j < want.N; j++ {
		if got.Colptr[j+1] != want.Colptr[j+1] {
			t.Fatalf("%s column %d boundary differs", name, j)
		}
	}
	tol := 1e-9 * scale
	for p, r := range want.Rowidx {
		if got.Rowidx[p] != r {
			t.Fatalf("%s entry %d: pruned row %d, unpruned row %d", name, p, got.Rowidx[p], r)
		}
		if d := math.Abs(got.Values[p] - want.Values[p]); d > tol*(1+math.Abs(want.Values[p])) {
			t.Fatalf("%s entry %d: pruned value %v, unpruned %v", name, p, got.Values[p], want.Values[p])
		}
	}
}

// TestPrunedEquivalenceSuite sweeps every matrix-generator class of the
// paper's evaluation (circuit and mesh suites) and checks that the pruned
// factorization is bit-compatible with the unpruned one: same pivots, same
// structural L/U patterns, values identical to roundoff.
func TestPrunedEquivalenceSuite(t *testing.T) {
	suite := matgen.TableISuite(0.08)
	suite = append(suite, matgen.TableIISuite(0.1)...)
	for _, m := range suite {
		m := m
		t.Run(m.Name, func(t *testing.T) {
			a := m.Gen()
			pruned, plain := factorBoth(t, a, Options{PivotTol: DefaultPivotTol})
			checkSameFactorization(t, pruned, plain, a.MaxAbs())
		})
	}
}

// TestPrunedEquivalenceRandom adds random nonsingular matrices with strict
// partial pivoting (PivotTol 1), where the DFS order differs the most.
func TestPrunedEquivalenceRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 20; trial++ {
		n := 10 + rng.Intn(120)
		a := randNonsingular(rng, n, 0.12)
		pruned, plain := factorBoth(t, a, Options{PivotTol: 1})
		checkSameFactorization(t, pruned, plain, a.MaxAbs())
		checkFactorization(t, a, pruned, 10)
	}
}

// TestPruneEndBoundsDFS verifies the finished-factor prune pointers: every
// PruneEnd lies inside its column, and a sparse L-solve through the pruned
// DFS matches a dense forward substitution.
func TestPruneEndBoundsDFS(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := randNonsingular(rng, 120, 0.1)
	f, err := Factor(a, 0, Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if f.PruneEnd == nil {
		t.Fatal("PruneEnd not built")
	}
	prunedCols := 0
	for j := 0; j < f.N; j++ {
		p0, p1 := f.L.Colptr[j], f.L.Colptr[j+1]
		if f.PruneEnd[j] < p0+1 && p1 > p0+1 {
			t.Fatalf("column %d: PruneEnd %d below column start %d", j, f.PruneEnd[j], p0+1)
		}
		if f.PruneEnd[j] > p1 {
			t.Fatalf("column %d: PruneEnd %d beyond column end %d", j, f.PruneEnd[j], p1)
		}
		if f.PruneEnd[j] < p1 {
			prunedCols++
		}
	}
	if prunedCols == 0 {
		t.Fatal("no column was pruned on a connected random matrix")
	}
	// Sparse solve through the pruned DFS vs dense forward substitution.
	ws := NewWorkspace(f.N)
	b := make([]float64, f.N)
	var bIdx []int
	var bVal []float64
	for i := 0; i < f.N; i += 3 {
		bIdx = append(bIdx, i)
		bVal = append(bVal, rng.NormFloat64())
		b[i] = bVal[len(bVal)-1]
	}
	patt := f.SolveSparseL(bIdx, bVal, ws)
	got := make([]float64, f.N)
	for _, r := range patt {
		got[r] = ws.X[r]
	}
	ClearSparse(ws, patt)
	// Dense reference: y = L \ (P b).
	y := make([]float64, f.N)
	for k := 0; k < f.N; k++ {
		y[k] = b[f.P[k]]
	}
	f.LSolve(y)
	for i := range y {
		if math.Abs(got[i]-y[i]) > 1e-10*(1+math.Abs(y[i])) {
			t.Fatalf("pruned sparse solve x[%d] = %v, dense %v", i, got[i], y[i])
		}
	}
}

// TestFactorsCompact pins the over-allocation satellite: a generous nnz
// hint leaves slack capacity; Compact clips it to exactly the stored
// entries and strictly shrinks the retained bytes.
func TestFactorsCompact(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a := randNonsingular(rng, 200, 0.05)
	f, err := Factor(a, 8*a.Nnz(), Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	before := cap(f.L.Values) + cap(f.U.Values) + cap(f.L.Rowidx) + cap(f.U.Rowidx)
	if cap(f.L.Values) == len(f.L.Values) && cap(f.U.Values) == len(f.U.Values) {
		t.Fatal("test premise broken: the 8x hint left no slack to clip")
	}
	f.Compact()
	after := cap(f.L.Values) + cap(f.U.Values) + cap(f.L.Rowidx) + cap(f.U.Rowidx)
	if cap(f.L.Values) != len(f.L.Values) || cap(f.U.Values) != len(f.U.Values) ||
		cap(f.L.Rowidx) != len(f.L.Rowidx) || cap(f.U.Rowidx) != len(f.U.Rowidx) {
		t.Fatalf("Compact left slack: L %d/%d, U %d/%d",
			len(f.L.Values), cap(f.L.Values), len(f.U.Values), cap(f.U.Values))
	}
	if after >= before {
		t.Fatalf("retained capacity did not shrink: %d -> %d", before, after)
	}
	// The compacted factors still solve correctly.
	x := make([]float64, a.N)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	b := make([]float64, a.N)
	a.MulVec(b, x)
	f.Solve(b)
	for i := range x {
		if math.Abs(b[i]-x[i]) > 1e-8 {
			t.Fatalf("solve after Compact: x[%d] = %v, want %v", i, b[i], x[i])
		}
	}
}

// TestFactorIntoSteadyStateAllocFree pins the pooled-storage guarantee: a
// FactorInto that reuses prior storage of the same pattern performs zero
// allocations once every buffer has been grown.
func TestFactorIntoSteadyStateAllocFree(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	base := randNonsingular(rng, 150, 0.08)
	ws := NewWorkspace(base.N)
	f := &Factors{}
	if err := FactorInto(f, base, 0, Options{}, ws); err != nil {
		t.Fatal(err)
	}
	steps := make([]*sparse.CSC, 3)
	for i := range steps {
		steps[i] = base.Clone()
		for p := range steps[i].Values {
			steps[i].Values[p] *= 1 + 0.1*rng.Float64()
		}
		if err := FactorInto(f, steps[i], 0, Options{}, ws); err != nil {
			t.Fatal(err)
		}
	}
	i := 0
	allocs := testing.AllocsPerRun(20, func() {
		i++
		if err := FactorInto(f, steps[i%len(steps)], 0, Options{}, ws); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state FactorInto allocates: %v allocs/op", allocs)
	}
	checkFactorization(t, steps[i%len(steps)], f, 10)
}
