package gp

import (
	"fmt"
	"math"

	"repro/internal/dense"
	"repro/internal/sparse"
)

// This file adds true supernodes to the Gilbert–Peierls kernel, the
// SuperLU idea (Demmel, Eisenstat, Gilbert, Li, Liu): consecutive columns
// whose factor patterns nest — detected from the column elimination tree by
// etree.RelaxedSupernodes — are factored and refreshed together through one
// blocked dense panel instead of column at a time. The win is for blocks at
// moderate density (0.1–0.2): too sparse for the fully dense panel LU of
// dense_feed.go, but with enough pattern overlap that per-column scatter,
// DFS and sort bookkeeping dominates the arithmetic.
//
// Layout invariants of a supernodal factor over supernode S = [k0, k1),
// w = k1-k0 (on top of the standard sorted-factor invariants):
//   - U(:,k) for k = k0+c holds the column's own outside pattern
//     (positions < k0), then the *padded* supernode triangle k0..k-1 —
//     every triangle entry stored even when structurally absent, the few
//     explicit zeros relaxation buys wider panels with — then the pivot;
//   - every L(:,k) of the supernode stores the same below-supernode row
//     set (the union over the supernode's columns, padded with explicit
//     zeros), so after the final position remap and sort, all w columns
//     share one ascending below-row sequence. RefactorSupernodal leans on
//     this: panel row w+t of the refresh is the t-th below entry of every
//     column, no row map needed.
//
// Patterns stay value-independent (reach closures and their unions), so
// the refresh sweeps and the in-place refactorization contracts work on
// supernodal factors exactly as on plain ones.

// snScratch is the reusable staging state of FactorSupernodalInto: the
// orig-row → panel-row assignment of the current supernode (tag-guarded so
// resets are O(1)) and the per-column staged entries awaiting the panel.
type snScratch struct {
	tag      int
	rowTag   []int
	rowPanel []int
	rowsArr  []int // panel row -> original row id
	stageRow []int
	stageVal []float64
	stageOff []int
}

// snScratch returns the workspace's supernode staging scratch, lazily
// built and grown to dimension n.
func (w *Workspace) snScratch(n int) *snScratch {
	if w.sn == nil {
		w.sn = &snScratch{}
	}
	sn := w.sn
	if len(sn.rowTag) < n {
		sn.rowTag = make([]int, n)
		sn.rowPanel = make([]int, n)
		sn.tag = 0
	}
	return sn
}

// FactorSupernodalInto factors the square block a like FactorInto, but
// eliminates the supernodes of the xsup partition (boundaries as returned
// by etree.RelaxedSupernodes: supernode s spans columns [xsup[s],
// xsup[s+1])) through blocked dense panels: each supernode column runs the
// standard reach + left-looking update against the columns *outside* the
// supernode — in-panel pivots are still unassigned, so the DFS
// self-restricts — and the remaining sub-panel (the union of the columns'
// unpivoted patterns, padded with explicit structural zeros) is factored
// right-looking with the same diagonal-preference partial pivoting as the
// sparse kernel. Singleton supernodes take the plain per-column path
// unchanged. Storage recycling, error contract and the emitted invariants
// match FactorInto; dws provides the pooled panel.
func FactorSupernodalInto(f *Factors, a *sparse.CSC, xsup []int, estNnz int, opts Options, ws *Workspace, dws *dense.Workspace) error {
	if a.M != a.N {
		return fmt.Errorf("gp: matrix must be square, got %d×%d", a.M, a.N)
	}
	n := a.N
	if len(xsup) < 2 || xsup[0] != 0 || xsup[len(xsup)-1] != n {
		return fmt.Errorf("gp: supernode partition does not cover 0..%d", n)
	}
	if ws == nil {
		ws = NewWorkspace(n)
	} else {
		ws.Grow(n)
	}
	if estNnz < a.Nnz()+n {
		estNnz = a.Nnz() + n
	}
	f.N = n
	f.L = resetFactorCSC(f.L, n, estNnz)
	f.U = resetFactorCSC(f.U, n, estNnz)
	f.P = sparse.GrowInts(f.P, n)
	f.Pinv = sparse.GrowInts(f.Pinv, n)
	f.Flops = 0
	for i := range f.Pinv {
		f.Pinv[i] = -1
	}
	prune := !opts.NoPrune && n >= pruneMinDim
	for j := 0; j < n; j++ {
		ws.lpend[j] = -1
	}
	if prune {
		f.PruneEnd = sparse.GrowInts(f.PruneEnd, n)
		for j := range f.PruneEnd {
			f.PruneEnd[j] = -1
		}
	} else {
		f.PruneEnd = nil
	}
	tol := opts.tol()
	sn := ws.snScratch(n)

	for s := 0; s+1 < len(xsup); s++ {
		k0, k1 := xsup[s], xsup[s+1]
		if opts.Poll != nil && s%64 == 0 {
			if err := opts.Poll(); err != nil {
				return err
			}
		}
		if k1 == k0+1 {
			if err := f.factorFreshColumn(a, k0, tol, opts, ws, prune); err != nil {
				return err
			}
			continue
		}
		if err := f.factorSupernode(a, k0, k1, tol, opts, ws, sn, dws, prune); err != nil {
			return err
		}
	}
	f.finishFactor(ws, prune)
	f.Snodes = append(f.Snodes[:0], xsup...)
	return nil
}

// factorSupernode eliminates the wide supernode [k0, k1) in two phases:
// the left-looking outside elimination and U emission per column, then one
// right-looking pivoted panel LU over the staged union sub-panel.
func (f *Factors) factorSupernode(a *sparse.CSC, k0, k1 int, tol float64, opts Options, ws *Workspace, sn *snScratch, dws *dense.Workspace, prune bool) error {
	n := f.N
	w := k1 - k0
	x := ws.X
	xi := ws.Xi
	sn.tag++
	tag := sn.tag
	sn.rowsArr = sn.rowsArr[:0]
	sn.stageRow = sn.stageRow[:0]
	sn.stageVal = sn.stageVal[:0]
	sn.stageOff = append(sn.stageOff[:0], 0)

	// --- Phase 1: per column, reach + updates from outside columns only
	// (in-supernode pivots are unassigned, so the DFS treats their rows as
	// leaves and the update loop skips them), U emission with the padded
	// triangle, and staging of the unpivoted remainder.
	for k := k0; k < k1; k++ {
		top := reach(f.L, f.Pinv, a, k, ws)
		for p := a.Colptr[k]; p < a.Colptr[k+1]; p++ {
			x[a.Rowidx[p]] = a.Values[p]
		}
		for t := top; t < n; t++ {
			i := xi[t]
			j := f.Pinv[i]
			if j < 0 {
				continue
			}
			xj := x[i]
			if xj == 0 {
				continue
			}
			lp0 := f.L.Colptr[j]
			lp1 := f.L.Colptr[j+1]
			rows := f.L.Rowidx[lp0+1 : lp1]
			vals := f.L.Values[lp0+1 : lp1]
			vals = vals[:len(rows)] // bounds-check elimination hint
			for t2, i2 := range rows {
				x[i2] -= vals[t2] * xj
			}
			f.Flops += int64(lp1 - lp0 - 1)
		}
		// Emit U(:,k): outside pivoted rows (every assigned pivot is < k0
		// here), then the full padded triangle, pivot placeholder last. The
		// triangle and pivot values land after the panel factors.
		for t := top; t < n; t++ {
			i := xi[t]
			if j := f.Pinv[i]; j >= 0 {
				f.U.Rowidx = append(f.U.Rowidx, j)
				f.U.Values = append(f.U.Values, x[i])
			}
		}
		for d := k0; d < k; d++ {
			f.U.Rowidx = append(f.U.Rowidx, d)
			f.U.Values = append(f.U.Values, 0)
		}
		f.U.Rowidx = append(f.U.Rowidx, k)
		f.U.Values = append(f.U.Values, 0)
		f.U.Colptr[k+1] = len(f.U.Rowidx)
		// Stage the unpivoted pattern rows; panel rows are the union across
		// the supernode's columns, assigned in encounter order.
		for t := top; t < n; t++ {
			i := xi[t]
			if f.Pinv[i] >= 0 {
				continue
			}
			if sn.rowTag[i] != tag {
				sn.rowTag[i] = tag
				sn.rowPanel[i] = len(sn.rowsArr)
				sn.rowsArr = append(sn.rowsArr, i)
			}
			sn.stageRow = append(sn.stageRow, sn.rowPanel[i])
			sn.stageVal = append(sn.stageVal, x[i])
		}
		sn.stageOff = append(sn.stageOff, len(sn.stageRow))
		clearX(x, xi, top, n, a, k)
	}

	m := len(sn.rowsArr)
	if m < w {
		return fmt.Errorf("gp: supernode %d..%d: %w", k0, k1-1, ErrSingular)
	}

	// --- Phase 2: right-looking pivoted LU of the m×w union sub-panel.
	panel := dws.Panel(m, w)
	for c := 0; c < w; c++ {
		col := panel.Col(c)
		for q := sn.stageOff[c]; q < sn.stageOff[c+1]; q++ {
			col[sn.stageRow[q]] = sn.stageVal[q]
		}
	}
	rowsArr := sn.rowsArr
	for d := 0; d < w; d++ {
		cd := panel.Col(d)
		pivR := -1
		maxAbs := 0.0
		for r := d; r < m; r++ {
			if v := math.Abs(cd[r]); v > maxAbs {
				maxAbs = v
				pivR = r
			}
		}
		nat := -1
		for r := d; r < m; r++ {
			if rowsArr[r] == k0+d {
				nat = r
				break
			}
		}
		if opts.NoPivot {
			if nat < 0 || cd[nat] == 0 {
				return fmt.Errorf("gp: column %d: %w", k0+d, ErrSingular)
			}
			pivR = nat
		} else if pivR >= 0 && nat >= 0 {
			// Diagonal preference: keep the natural pivot when acceptable.
			if v := math.Abs(cd[nat]); v >= tol*maxAbs && v > 0 {
				pivR = nat
			}
		}
		if pivR < 0 || cd[pivR] == 0 {
			return fmt.Errorf("gp: column %d: %w", k0+d, ErrSingular)
		}
		if pivR != d {
			panel.SwapRows(d, pivR)
			rowsArr[d], rowsArr[pivR] = rowsArr[pivR], rowsArr[d]
		}
		piv := cd[d]
		for r := d + 1; r < m; r++ {
			cd[r] /= piv
		}
		for j := d + 1; j < w; j++ {
			cj := panel.Col(j)
			fjd := cj[d]
			if fjd == 0 {
				continue
			}
			tgt := cj[d+1:]
			lo := cd[d+1:]
			lo = lo[:len(tgt)] // bounds-check elimination hint
			for r, v := range lo {
				tgt[r] -= v * fjd
			}
		}
		f.Flops += int64(m-d-1) * int64(w-d)
		f.P[k0+d] = rowsArr[d]
		f.Pinv[rowsArr[d]] = k0 + d
	}

	// --- Emit: U triangle + pivot values in place, L columns appended
	// (pivot unit first, then the shared union rows in panel order — the
	// final remap and sort put them in position order).
	for c := 0; c < w; c++ {
		k := k0 + c
		col := panel.Col(c)
		up1 := f.U.Colptr[k+1]
		for d := 0; d < c; d++ {
			f.U.Values[up1-1-c+d] = col[d]
		}
		f.U.Values[up1-1] = col[c]
		f.L.Rowidx = append(f.L.Rowidx, rowsArr[c]) // original id; remapped later
		f.L.Values = append(f.L.Values, 1)
		for r := c + 1; r < m; r++ {
			f.L.Rowidx = append(f.L.Rowidx, rowsArr[r])
			f.L.Values = append(f.L.Values, col[r])
		}
		f.L.Colptr[k+1] = len(f.L.Rowidx)
	}
	if prune {
		for c := 0; c < w; c++ {
			f.pruneStep(k0+c, rowsArr[c], ws)
		}
	}
	return nil
}

// RefactorSupernodal recomputes the numeric values of a supernodal
// factorization (built by FactorSupernodalInto) for a new matrix a with the
// same pattern, reusing the pivot sequence: singleton supernodes refresh
// column at a time exactly like Refactor, wide supernodes gather their
// outside-eliminated columns into a pooled panel and re-run the
// right-looking elimination with no pivot search. Deterministic and
// idempotent like every refresh kernel, so the partial-vs-full bitwise
// contract carries over.
func (f *Factors) RefactorSupernodal(a *sparse.CSC, ws *Workspace, dws *dense.Workspace) error {
	n := f.N
	if a.M != n || a.N != n {
		return fmt.Errorf("gp: refactor dimension mismatch")
	}
	if ws == nil {
		ws = NewWorkspace(n)
	} else {
		ws.Grow(n)
	}
	x := ws.X
	xsup := f.Snodes
	for s := 0; s+1 < len(xsup); s++ {
		k0, k1 := xsup[s], xsup[s+1]
		if k1 == k0+1 {
			if err := f.refactorColumn(a, x, k0); err != nil {
				return err
			}
			continue
		}
		if err := f.refreshSupernode(a, x, k0, k1, dws); err != nil {
			return err
		}
	}
	return nil
}

// RefactorSupernodalSelective is RefactorSupernodal restricted to the
// dependency closure of a dirty column set, at supernode granularity: a
// wide supernode reruns when any of its columns' inputs changed
// (colStamp == epoch) or any already-rerun column appears in its outside
// U patterns, and is skipped whole otherwise. Rerunning a supernode whose
// earlier columns are clean is an over-refresh, which the refresh kernels'
// determinism makes bitwise harmless; rerun is overwritten per column so
// downstream closure scans see the same contract as RefactorSelective.
func (f *Factors) RefactorSupernodalSelective(a *sparse.CSC, ws *Workspace, dws *dense.Workspace, colStamp []uint64, epoch uint64, rerun []bool) error {
	n := f.N
	if a.M != n || a.N != n {
		return fmt.Errorf("gp: refactor dimension mismatch")
	}
	if ws == nil {
		ws = NewWorkspace(n)
	} else {
		ws.Grow(n)
	}
	x := ws.X
	xsup := f.Snodes
	for s := 0; s+1 < len(xsup); s++ {
		k0, k1 := xsup[s], xsup[s+1]
		need := false
		for k := k0; k < k1 && !need; k++ {
			if colStamp[k] == epoch {
				need = true
				break
			}
			up0, up1 := f.U.Colptr[k], f.U.Colptr[k+1]
			for p := up0; p < up1-1; p++ {
				r := f.U.Rowidx[p]
				if r >= k0 {
					break // supernode triangle: own columns, covered above
				}
				if rerun[r] {
					need = true
					break
				}
			}
		}
		for k := k0; k < k1; k++ {
			rerun[k] = need
		}
		if !need {
			continue
		}
		if k1 == k0+1 {
			if err := f.refactorColumn(a, x, k0); err != nil {
				return err
			}
			continue
		}
		if err := f.refreshSupernode(a, x, k0, k1, dws); err != nil {
			return err
		}
	}
	return nil
}

// refreshSupernode refreshes the wide supernode [k0, k1) in place: each
// column scatters its input in pivot space, eliminates against the
// outside columns along its own U pattern (ascending, same arithmetic as
// refactorColumn), and lands its supernode-triangle and below values in the
// panel; the panel then re-runs the fixed-sequence right-looking
// elimination and scatters back over the unchanged factor patterns. Panel
// row w+t is the t-th below-supernode entry of every column — the shared
// sorted below-row sequence the supernodal emission guarantees.
func (f *Factors) refreshSupernode(a *sparse.CSC, x []float64, k0, k1 int, dws *dense.Workspace) error {
	w := k1 - k0
	lp0, lp1 := f.L.Colptr[k0], f.L.Colptr[k0+1]
	below := f.L.Rowidx[lp0+w : lp1] // below-supernode pivot positions, ascending
	m := w + len(below)
	panel := dws.Panel(m, w)
	for c := 0; c < w; c++ {
		k := k0 + c
		for p := a.Colptr[k]; p < a.Colptr[k+1]; p++ {
			x[f.Pinv[a.Rowidx[p]]] = a.Values[p]
		}
		up1 := f.U.Colptr[k+1]
		for p := f.U.Colptr[k]; p < up1; p++ {
			j := f.U.Rowidx[p]
			if j >= k0 {
				break
			}
			xj := x[j]
			f.U.Values[p] = xj
			x[j] = 0
			if xj == 0 {
				continue
			}
			rows := f.L.Rowidx[f.L.Colptr[j]+1 : f.L.Colptr[j+1]]
			vals := f.L.Values[f.L.Colptr[j]+1 : f.L.Colptr[j+1]]
			vals = vals[:len(rows)] // bounds-check elimination hint
			for t, i := range rows {
				x[i] -= vals[t] * xj
			}
		}
		col := panel.Col(c)
		for d := 0; d < w; d++ {
			col[d] = x[k0+d]
			x[k0+d] = 0
		}
		for t, pos := range below {
			col[w+t] = x[pos]
			x[pos] = 0
		}
	}
	// Fixed-sequence elimination: no pivot search, error out on drift to
	// zero (the caller falls back to a fresh factorization). x is already
	// clean here, so the error path needs no workspace cleanup.
	for d := 0; d < w; d++ {
		cd := panel.Col(d)
		piv := cd[d]
		if piv == 0 {
			return fmt.Errorf("gp: refactor column %d: %w", k0+d, ErrSingular)
		}
		for r := d + 1; r < m; r++ {
			cd[r] /= piv
		}
		for j := d + 1; j < w; j++ {
			cj := panel.Col(j)
			fjd := cj[d]
			if fjd == 0 {
				continue
			}
			tgt := cj[d+1:]
			lo := cd[d+1:]
			lo = lo[:len(tgt)] // bounds-check elimination hint
			for r, v := range lo {
				tgt[r] -= v * fjd
			}
		}
	}
	// Scatter back over the fixed patterns.
	for c := 0; c < w; c++ {
		k := k0 + c
		col := panel.Col(c)
		up1 := f.U.Colptr[k+1]
		for d := 0; d < c; d++ {
			f.U.Values[up1-1-c+d] = col[d]
		}
		f.U.Values[up1-1] = col[c]
		lp := f.L.Colptr[k]
		for d := c + 1; d < w; d++ {
			f.L.Values[lp+d-c] = col[d]
		}
		base := lp + w - c
		for t := range below {
			f.L.Values[base+t] = col[w+t]
		}
	}
	return nil
}
