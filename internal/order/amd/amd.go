// Package amd implements an approximate minimum degree (AMD) fill-reducing
// ordering in the style of Amestoy, Davis and Duff (SIAM J. Matrix Anal.
// Appl. 17(4), 1996), the ordering KLU and Basker apply to every BTF
// diagonal block.
//
// The implementation works on the quotient graph: eliminated vertices become
// *elements* whose adjacency lists represent cliques implicitly. It uses
//   - element absorption (an element whose variables are all covered by the
//     newly formed element is removed),
//   - the Amestoy–Davis–Duff approximate external degree computed with the
//     one-pass |Le \ Lk| scan,
//   - supervariable detection by adjacency hashing and exact comparison,
//   - lazy deletion with on-demand workspace compaction.
package amd

import (
	"sort"

	"repro/internal/sparse"
)

// Order computes a fill-reducing elimination order for the symmetric pattern
// of a (the pattern of a + aᵀ is formed internally; the diagonal is
// ignored). It returns a new-to-old permutation p: eliminating the vertices
// of a(p,p) in natural order yields low fill.
func Order(a *sparse.CSC) []int {
	g := a.SymbolicUnion().DropDiagonal()
	return orderGraph(g)
}

// OrderGraph computes the ordering for an already-symmetric adjacency
// structure g (no diagonal, pattern symmetric). Values are ignored.
func OrderGraph(g *sparse.CSC) []int {
	return orderGraph(g)
}

type hashEntry struct{ i, hash int }

type amdState struct {
	n    int
	pe   []int // start of adjacency block in iw (variables and elements)
	blen []int // total adjacency length (elements then variables)
	elen []int // number of leading element entries (variables only)
	nv   []int // supervariable size; 0 = dead (absorbed or eliminated)
	deg  []int // approximate external degree (vars) / |Le| in nv units (elems)
	elem []bool
	dead []bool

	iw     []int
	iwTail int

	// degree lists
	head []int
	next []int
	prev []int

	// marks
	w    []int
	wflg int
	inLk []int
	tag  int

	members [][]int
	order   []int
	nLive   int
	mindeg  int

	scratch []int // reusable copy of an adjacency block during rewrites
}

func orderGraph(g *sparse.CSC) []int {
	n := g.N
	if n == 0 {
		return []int{}
	}
	if n == 1 {
		return []int{0}
	}
	nnz := g.Nnz()
	s := &amdState{
		n:       n,
		pe:      make([]int, n),
		blen:    make([]int, n),
		elen:    make([]int, n),
		nv:      make([]int, n),
		deg:     make([]int, n),
		elem:    make([]bool, n),
		dead:    make([]bool, n),
		iw:      make([]int, nnz+n+1),
		head:    make([]int, n+1),
		next:    make([]int, n),
		prev:    make([]int, n),
		w:       make([]int, n),
		inLk:    make([]int, n),
		members: make([][]int, n),
		order:   make([]int, 0, n),
		nLive:   n,
	}
	for i := range s.head {
		s.head[i] = -1
	}
	pos := 0
	for j := 0; j < n; j++ {
		s.pe[j] = pos
		for p := g.Colptr[j]; p < g.Colptr[j+1]; p++ {
			s.iw[pos] = g.Rowidx[p]
			pos++
		}
		s.blen[j] = pos - s.pe[j]
		s.deg[j] = s.blen[j]
		s.nv[j] = 1
		s.members[j] = []int{j}
		s.listInsert(j, s.deg[j])
	}
	s.iwTail = pos

	for s.nLive > 0 {
		k := s.pickMinDegree()
		s.eliminate(k)
	}
	return s.order
}

func (s *amdState) listInsert(i, d int) {
	s.next[i] = s.head[d]
	s.prev[i] = -1
	if s.head[d] != -1 {
		s.prev[s.head[d]] = i
	}
	s.head[d] = i
	if d < s.mindeg {
		s.mindeg = d
	}
}

func (s *amdState) listRemove(i, d int) {
	if s.prev[i] != -1 {
		s.next[s.prev[i]] = s.next[i]
	} else {
		s.head[d] = s.next[i]
	}
	if s.next[i] != -1 {
		s.prev[s.next[i]] = s.prev[i]
	}
}

func (s *amdState) pickMinDegree() int {
	for s.mindeg <= s.n {
		if h := s.head[s.mindeg]; h != -1 {
			s.listRemove(h, s.mindeg)
			return h
		}
		s.mindeg++
	}
	panic("amd: degree lists empty while variables remain")
}

// ensureSpace guarantees room for extra entries at iwTail, compacting the
// workspace (dropping dead blocks) and growing it if compaction is not
// enough.
func (s *amdState) ensureSpace(extra int) {
	if s.iwTail+extra <= len(s.iw) {
		return
	}
	s.compact()
	if s.iwTail+extra > len(s.iw) {
		grown := make([]int, (s.iwTail+extra)*2)
		copy(grown, s.iw[:s.iwTail])
		s.iw = grown
	}
}

func (s *amdState) compact() {
	type blk struct{ id, pe int }
	live := make([]blk, 0, s.n)
	for i := 0; i < s.n; i++ {
		if s.dead[i] {
			continue
		}
		live = append(live, blk{i, s.pe[i]})
	}
	sort.Slice(live, func(a, b int) bool { return live[a].pe < live[b].pe })
	pos := 0
	for _, b := range live {
		l := s.blen[b.id]
		copy(s.iw[pos:pos+l], s.iw[b.pe:b.pe+l])
		s.pe[b.id] = pos
		pos += l
	}
	s.iwTail = pos
}

// eliminate removes supervariable k, forms element k, and updates degrees of
// all variables in the new element's pattern.
func (s *amdState) eliminate(k int) {
	// ---- Build Lk: live variables adjacent to k directly or via k's
	// elements. Mark membership with inLk tags.
	s.tag++
	tag := s.tag
	lk := make([]int, 0, s.deg[k]+4)
	base := s.pe[k]
	for t := 0; t < s.blen[k]; t++ {
		e := s.iw[base+t]
		if t < s.elen[k] {
			// element neighbour
			if s.dead[e] {
				continue
			}
			eb := s.pe[e]
			for u := 0; u < s.blen[e]; u++ {
				v := s.iw[eb+u]
				if s.nv[v] > 0 && v != k && s.inLk[v] != tag {
					s.inLk[v] = tag
					lk = append(lk, v)
				}
			}
			s.dead[e] = true // absorbed into new element k
		} else {
			v := e
			if s.nv[v] > 0 && v != k && s.inLk[v] != tag {
				s.inLk[v] = tag
				lk = append(lk, v)
			}
		}
	}

	// Emit k's variables in the final order.
	s.order = append(s.order, s.members[k]...)
	s.nLive -= s.nv[k]
	s.nv[k] = 0
	s.dead[k] = true

	if len(lk) == 0 {
		return
	}

	// Store Lk as element k's list.
	s.dead[k] = false // k lives on as an element
	s.elem[k] = true
	s.ensureSpace(len(lk))
	s.pe[k] = s.iwTail
	copy(s.iw[s.iwTail:], lk)
	s.iwTail += len(lk)
	s.blen[k] = len(lk)
	s.elen[k] = 0
	degLk := 0
	for _, v := range lk {
		degLk += s.nv[v]
	}
	s.deg[k] = degLk

	// ---- Scan 1: compute w[e] so that |Le \ Lk| = w[e] - wflg for every
	// element e adjacent to a variable in Lk.
	s.wflg += 2 * (s.n + 2)
	wflg := s.wflg
	for _, i := range lk {
		ib := s.pe[i]
		for t := 0; t < s.elen[i]; t++ {
			e := s.iw[ib+t]
			if s.dead[e] || e == k {
				continue
			}
			if s.w[e] < wflg {
				s.w[e] = s.deg[e] + wflg
			}
			s.w[e] -= s.nv[i]
		}
	}

	// ---- Scan 2: rewrite adjacency of each i in Lk, compute approximate
	// degree, detect supervariables.
	hashes := make([]hashEntry, 0, len(lk))
	for _, i := range lk {
		if s.nv[i] <= 0 {
			continue // merged away earlier in this scan (defensive)
		}
		s.listRemove(i, s.deg[i])
		ib := s.pe[i]
		// Rewrite happens in place; read from a scratch copy so writing the
		// new leading entry (element k) cannot clobber unread entries.
		s.scratch = append(s.scratch[:0], s.iw[ib:ib+s.blen[i]]...)
		d := 0
		hash := k
		// Elements: keep live ones with |Le \ Lk| > 0.
		out := ib
		s.iw[out] = k
		out++
		for t := 0; t < s.elen[i]; t++ {
			e := s.scratch[t]
			if e == k || s.dead[e] {
				continue
			}
			ext := s.w[e] - wflg
			if ext <= 0 {
				// Le ⊆ Lk ∪ {i}: absorb e into k.
				s.dead[e] = true
				continue
			}
			d += ext
			s.iw[out] = e
			out++
			hash += e
		}
		newElen := out - ib
		// Variables: keep live ones outside Lk (and not k itself).
		for t := s.elen[i]; t < s.blen[i]; t++ {
			v := s.scratch[t]
			if v == k || s.nv[v] <= 0 || s.inLk[v] == tag {
				continue
			}
			d += s.nv[v]
			s.iw[out] = v
			out++
			hash += v
		}
		s.elen[i] = newElen
		s.blen[i] = out - ib
		d += degLk - s.nv[i] // |Lk \ i| in nv units
		if lim := s.nLive - s.nv[i]; d > lim {
			d = lim
		}
		if d < 0 {
			d = 0
		}
		s.deg[i] = d
		s.listInsert(i, d)
		if hash < 0 {
			hash = -hash
		}
		hashes = append(hashes, hashEntry{i, hash % (4 * s.n)})
	}

	// ---- Supervariable detection: bucket by hash, compare exact lists.
	sort.Slice(hashes, func(a, b int) bool { return hashes[a].hash < hashes[b].hash })
	for lo := 0; lo < len(hashes); {
		hi := lo + 1
		for hi < len(hashes) && hashes[hi].hash == hashes[lo].hash {
			hi++
		}
		if hi-lo > 1 {
			s.mergeEqualAdjacency(hashes[lo:hi])
		}
		lo = hi
	}
}

// mergeEqualAdjacency merges variables in the bucket whose quotient-graph
// adjacency lists are identical sets (they are indistinguishable and will
// have the same elimination behaviour).
func (s *amdState) mergeEqualAdjacency(bucket []hashEntry) {
	for a := 0; a < len(bucket); a++ {
		i := bucket[a].i
		if s.nv[i] <= 0 {
			continue
		}
		for b := a + 1; b < len(bucket); b++ {
			j := bucket[b].i
			if s.nv[j] <= 0 {
				continue
			}
			if s.sameAdjacency(i, j) {
				// Merge j into i.
				s.listRemove(j, s.deg[j])
				s.listRemove(i, s.deg[i])
				s.deg[i] -= s.nv[j] // j no longer an external neighbour
				if s.deg[i] < 0 {
					s.deg[i] = 0
				}
				s.nv[i] += s.nv[j]
				s.nv[j] = 0
				s.dead[j] = true
				s.members[i] = append(s.members[i], s.members[j]...)
				s.members[j] = nil
				s.listInsert(i, s.deg[i])
			}
		}
	}
}

// sameAdjacency reports whether live adjacency sets of variables i and j are
// identical ignoring each other.
func (s *amdState) sameAdjacency(i, j int) bool {
	s.tag++
	tag := s.tag
	ci := 0
	ib := s.pe[i]
	for t := 0; t < s.blen[i]; t++ {
		v := s.iw[ib+t]
		if v == j || (t >= s.elen[i] && s.nv[v] <= 0) || (t < s.elen[i] && s.dead[v]) {
			continue
		}
		if s.inLk[v] != tag {
			s.inLk[v] = tag
			ci++
		}
	}
	jb := s.pe[j]
	cj := 0
	for t := 0; t < s.blen[j]; t++ {
		v := s.iw[jb+t]
		if v == i || (t >= s.elen[j] && s.nv[v] <= 0) || (t < s.elen[j] && s.dead[v]) {
			continue
		}
		if s.inLk[v] != tag {
			return false
		}
		s.inLk[v] = tag - 1 // consume the mark; duplicates would fail
		cj++
	}
	return ci == cj
}
