package amd

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/sparse"
)

// grid2D builds the 5-point stencil adjacency of a k×k grid (pattern only,
// symmetric, with diagonal).
func grid2D(k int) *sparse.CSC {
	n := k * k
	coo := sparse.NewCOO(n, n, 5*n)
	id := func(i, j int) int { return i*k + j }
	for i := 0; i < k; i++ {
		for j := 0; j < k; j++ {
			v := id(i, j)
			coo.Add(v, v, 4)
			if i > 0 {
				coo.Add(v, id(i-1, j), -1)
			}
			if i < k-1 {
				coo.Add(v, id(i+1, j), -1)
			}
			if j > 0 {
				coo.Add(v, id(i, j-1), -1)
			}
			if j < k-1 {
				coo.Add(v, id(i, j+1), -1)
			}
		}
	}
	return coo.ToCSC(false)
}

func pathGraph(n int) *sparse.CSC {
	coo := sparse.NewCOO(n, n, 3*n)
	for i := 0; i < n; i++ {
		coo.Add(i, i, 2)
		if i > 0 {
			coo.Add(i, i-1, -1)
			coo.Add(i-1, i, -1)
		}
	}
	return coo.ToCSC(false)
}

func starGraph(n int) *sparse.CSC {
	coo := sparse.NewCOO(n, n, 3*n)
	for i := 0; i < n; i++ {
		coo.Add(i, i, 1)
	}
	for i := 1; i < n; i++ {
		coo.Add(0, i, 1)
		coo.Add(i, 0, 1)
	}
	return coo.ToCSC(false)
}

// symbolicFill counts fill edges created by eliminating the symmetric graph
// of a in the order perm (new-to-old).
func symbolicFill(a *sparse.CSC, perm []int) int {
	g := a.SymbolicUnion().DropDiagonal()
	n := g.N
	adj := make([]map[int]bool, n)
	for j := 0; j < n; j++ {
		adj[j] = map[int]bool{}
	}
	for j := 0; j < n; j++ {
		for p := g.Colptr[j]; p < g.Colptr[j+1]; p++ {
			adj[j][g.Rowidx[p]] = true
		}
	}
	pos := make([]int, n)
	for k, v := range perm {
		pos[v] = k
	}
	fill := 0
	for k := 0; k < n; k++ {
		v := perm[k]
		nbrs := make([]int, 0, len(adj[v]))
		for u := range adj[v] {
			if pos[u] > k {
				nbrs = append(nbrs, u)
			}
		}
		for x := 0; x < len(nbrs); x++ {
			for y := x + 1; y < len(nbrs); y++ {
				u, w := nbrs[x], nbrs[y]
				if !adj[u][w] {
					adj[u][w] = true
					adj[w][u] = true
					fill++
				}
			}
		}
	}
	return fill
}

func TestOrderIsPermutation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(100)
		coo := sparse.NewCOO(n, n, 4*n)
		for i := 0; i < n; i++ {
			coo.Add(i, i, 1)
		}
		for e := 0; e < 3*n; e++ {
			coo.Add(rng.Intn(n), rng.Intn(n), 1)
		}
		p := Order(coo.ToCSC(false))
		return sparse.IsPerm(p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPathGraphZeroFill(t *testing.T) {
	a := pathGraph(50)
	p := Order(a)
	if !sparse.IsPerm(p) {
		t.Fatal("not a permutation")
	}
	if fill := symbolicFill(a, p); fill != 0 {
		t.Fatalf("path graph AMD fill = %d, want 0", fill)
	}
}

func TestStarGraphZeroFill(t *testing.T) {
	a := starGraph(40)
	p := Order(a)
	if fill := symbolicFill(a, p); fill != 0 {
		t.Fatalf("star graph AMD fill = %d, want 0 (leaves first)", fill)
	}
	// The hub must be among the last two eliminated (it ties with the final
	// leaf at degree 1 once all other leaves are gone).
	if idx := indexOf(p, 0); idx < len(p)-2 {
		t.Fatalf("hub ordered at %d of %d, want one of the last two", idx, len(p))
	}
}

func indexOf(p []int, v int) int {
	for i, x := range p {
		if x == v {
			return i
		}
	}
	return -1
}

func TestGridFillBeatsNatural(t *testing.T) {
	for _, k := range []int{8, 12, 16} {
		a := grid2D(k)
		p := Order(a)
		if !sparse.IsPerm(p) {
			t.Fatal("not a permutation")
		}
		amdFill := symbolicFill(a, p)
		natFill := symbolicFill(a, sparse.IdentityPerm(k*k))
		if amdFill >= natFill {
			t.Fatalf("k=%d: AMD fill %d >= natural fill %d", k, amdFill, natFill)
		}
		t.Logf("k=%d: AMD fill %d vs natural %d", k, amdFill, natFill)
	}
}

func TestDisconnectedComponents(t *testing.T) {
	// Two disjoint triangles plus isolated vertices.
	coo := sparse.NewCOO(8, 8, 20)
	tri := func(a, b, c int) {
		coo.Add(a, b, 1)
		coo.Add(b, a, 1)
		coo.Add(b, c, 1)
		coo.Add(c, b, 1)
		coo.Add(a, c, 1)
		coo.Add(c, a, 1)
	}
	tri(0, 1, 2)
	tri(3, 4, 5)
	p := Order(coo.ToCSC(false))
	if !sparse.IsPerm(p) {
		t.Fatal("not a permutation")
	}
}

func TestTinyInputs(t *testing.T) {
	if p := Order(sparse.NewCSC(0, 0, 0)); len(p) != 0 {
		t.Fatal("empty matrix should give empty perm")
	}
	one := sparse.NewCOO(1, 1, 1)
	one.Add(0, 0, 5)
	if p := Order(one.ToCSC(false)); len(p) != 1 || p[0] != 0 {
		t.Fatalf("1×1 perm = %v", p)
	}
}

func TestDenseBlockOrder(t *testing.T) {
	// Fully dense graph: any order works, fill must be 0 extra beyond the
	// clique (already complete).
	n := 12
	coo := sparse.NewCOO(n, n, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			coo.Add(i, j, 1)
		}
	}
	a := coo.ToCSC(false)
	p := Order(a)
	if !sparse.IsPerm(p) {
		t.Fatal("not a permutation")
	}
	if fill := symbolicFill(a, p); fill != 0 {
		t.Fatalf("complete graph fill = %d, want 0", fill)
	}
}
