// Package nd implements the nested-dissection ordering Basker applies to
// the large BTF block (the paper's D2): a recursive graph bisection that
// produces a binary tree with 2^k leaves, where each internal node is a
// vertex separator. The permuted matrix has the 2D doubly-bordered
// block-diagonal shape of Figure 3(a) in the paper, with blocks numbered in
// postorder (left subtree, right subtree, separator) so that every subtree
// occupies a contiguous index range ending in its separator.
//
// Bisection uses BFS level structures from a pseudo-peripheral vertex: a
// whole BFS level near the balance point is chosen as the vertex separator
// (smallest such level), then a trimming pass moves separator vertices that
// touch only one side into that side. Disconnected graphs are handled by
// greedy component packing.
package nd

import (
	"fmt"

	"repro/internal/sparse"
)

// Tree is a nested-dissection block tree over an n-vertex graph.
type Tree struct {
	// NumLeaves is the number of leaf blocks (a power of two).
	NumLeaves int
	// Perm is the new-to-old vertex permutation; block b owns permuted
	// indices BlockPtr[b]..BlockPtr[b+1].
	Perm     []int
	BlockPtr []int
	// Parent[b] is the parent block of b in the ND tree (-1 for the root).
	Parent []int
	// Height[b] is 0 for leaves and increases towards the root.
	Height []int
	// Leaves lists the leaf block ids left to right; thread t owns
	// Leaves[t].
	Leaves []int
}

// NumBlocks reports the number of tree nodes (2*NumLeaves - 1).
func (t *Tree) NumBlocks() int { return len(t.BlockPtr) - 1 }

// BlockSize reports the number of vertices in block b.
func (t *Tree) BlockSize(b int) int { return t.BlockPtr[b+1] - t.BlockPtr[b] }

// PathToRoot returns the block ids from b (inclusive) to the root.
func (t *Tree) PathToRoot(b int) []int {
	var path []int
	for b != -1 {
		path = append(path, b)
		b = t.Parent[b]
	}
	return path
}

// Compute builds the ND tree with the given number of leaves for the
// symmetric pattern graph of a (values ignored, A+Aᵀ formed internally).
// leaves must be a power of two and at least 1.
func Compute(a *sparse.CSC, leaves int) (*Tree, error) {
	if a.M != a.N {
		return nil, fmt.Errorf("nd: matrix must be square, got %d×%d", a.M, a.N)
	}
	if leaves < 1 || leaves&(leaves-1) != 0 {
		return nil, fmt.Errorf("nd: leaves must be a power of two, got %d", leaves)
	}
	g := a.SymbolicUnion().DropDiagonal()
	n := g.N
	depth := 0
	for 1<<depth < leaves {
		depth++
	}
	b := &builder{
		g:     g,
		gen:   make([]int, n),
		level: make([]int, n),
		queue: make([]int, 0, n),
	}
	all := make([]int, n)
	for i := range all {
		all[i] = i
	}
	t := &Tree{NumLeaves: leaves}
	t.Parent = make([]int, 0, 2*leaves-1)
	t.Height = make([]int, 0, 2*leaves-1)
	t.BlockPtr = append(t.BlockPtr, 0)
	t.Perm = make([]int, 0, n)
	b.tree = t
	root := b.build(all, depth)
	if root != -1 {
		t.Parent[root] = -1
	}
	return t, nil
}

type builder struct {
	g      *sparse.CSC
	gen    []int // membership generation marks
	curGen int
	level  []int
	queue  []int
	tree   *Tree
}

// build recursively dissects verts to the given remaining depth and returns
// the block id of the subtree root. Blocks are emitted in postorder.
func (b *builder) build(verts []int, depth int) int {
	t := b.tree
	if depth == 0 {
		id := len(t.Parent)
		t.Parent = append(t.Parent, -1)
		t.Height = append(t.Height, 0)
		t.Leaves = append(t.Leaves, id)
		t.Perm = append(t.Perm, verts...)
		t.BlockPtr = append(t.BlockPtr, len(t.Perm))
		return id
	}
	left, right, sep := b.bisect(verts)
	lid := b.build(left, depth-1)
	rid := b.build(right, depth-1)
	id := len(t.Parent)
	t.Parent = append(t.Parent, -1)
	t.Height = append(t.Height, depth)
	t.Parent[lid] = id
	t.Parent[rid] = id
	t.Perm = append(t.Perm, sep...)
	t.BlockPtr = append(t.BlockPtr, len(t.Perm))
	return id
}

// mark returns a fresh generation counter and marks verts as members.
func (b *builder) mark(verts []int) int {
	b.curGen++
	for _, v := range verts {
		b.gen[v] = b.curGen
	}
	return b.curGen
}

// bisect splits verts into (left, right, separator).
func (b *builder) bisect(verts []int) (left, right, sep []int) {
	if len(verts) == 0 {
		return nil, nil, nil
	}
	if len(verts) == 1 {
		return verts, nil, nil
	}
	gen := b.mark(verts)
	comps := b.components(verts, gen)
	if len(comps) > 1 {
		// Largest component below 60%: pure greedy packing, no separator.
		largest := 0
		for i, c := range comps {
			if len(c) > len(comps[largest]) {
				largest = i
			}
		}
		if float64(len(comps[largest])) < 0.6*float64(len(verts)) {
			// Pack components into two sides, biggest first.
			order := make([]int, len(comps))
			for i := range order {
				order[i] = i
			}
			for i := 0; i < len(order); i++ {
				for j := i + 1; j < len(order); j++ {
					if len(comps[order[j]]) > len(comps[order[i]]) {
						order[i], order[j] = order[j], order[i]
					}
				}
			}
			for _, ci := range order {
				if len(left) <= len(right) {
					left = append(left, comps[ci]...)
				} else {
					right = append(right, comps[ci]...)
				}
			}
			return left, right, nil
		}
		// Bisect the giant component; pack the rest onto the smaller side.
		gl, gr, gs := b.bisectConnected(comps[largest])
		left, right, sep = gl, gr, gs
		for i, c := range comps {
			if i == largest {
				continue
			}
			if len(left) <= len(right) {
				left = append(left, c...)
			} else {
				right = append(right, c...)
			}
		}
		return left, right, sep
	}
	return b.bisectConnected(verts)
}

// bisectConnected splits a connected vertex set using a BFS level-set
// vertex separator.
func (b *builder) bisectConnected(verts []int) (left, right, sep []int) {
	gen := b.mark(verts)
	src := b.pseudoPeripheral(verts, gen)
	nLevels := b.bfs(src, gen)
	if nLevels <= 1 {
		// Complete-graph-like set: take half as separator-free split is
		// impossible; put ceil(n/2) in the separator's place by splitting
		// arbitrarily with an empty separator only if no edges cross —
		// here everything is adjacent, so make the left half the
		// separator to stay correct.
		half := len(verts) / 2
		return verts[:half], nil, verts[half:]
	}
	// Count vertices per level.
	counts := make([]int, nLevels)
	for _, v := range verts {
		counts[b.level[v]]++
	}
	total := len(verts)
	// Choose the separator level by scoring each candidate: separator size
	// penalized by the imbalance of the sides it induces. Only levels whose
	// left share lands in [30%, 70%] are eligible; if none is, pick the
	// level closest to an even split.
	bestLevel, bestScore := -1, 1e300
	fallback, fallbackDist := 1, 1e300
	prefix := 0
	for l := 0; l < nLevels; l++ {
		loFrac := float64(prefix) / float64(total)
		prefix += counts[l]
		if l == 0 || l == nLevels-1 {
			continue // separator must leave both sides nonempty
		}
		if d := absf(loFrac - 0.5); d < fallbackDist {
			fallback, fallbackDist = l, d
		}
		if loFrac < 0.30 || loFrac > 0.70 {
			continue
		}
		score := float64(counts[l]) * (1 + 4*absf(loFrac-0.5))
		if score < bestScore {
			bestLevel, bestScore = l, score
		}
	}
	if bestLevel == -1 {
		bestLevel = fallback
	}
	for _, v := range verts {
		switch {
		case b.level[v] < bestLevel:
			left = append(left, v)
		case b.level[v] > bestLevel:
			right = append(right, v)
		default:
			sep = append(sep, v)
		}
	}
	left, right, sep = b.trimSeparator(left, right, sep)
	return left, right, sep
}

// trimSeparator moves separator vertices adjacent to only one side (or
// neither) into a side, shrinking the separator. One pass suffices for the
// common staircase shapes BFS levels produce.
func (b *builder) trimSeparator(left, right, sep []int) ([]int, []int, []int) {
	if len(sep) == 0 {
		return left, right, sep
	}
	// Tag sides: gen for left, gen+1 handled via second array trick — use
	// two fresh generations on the same array.
	b.curGen += 2
	lGen, rGen := b.curGen-1, b.curGen
	for _, v := range left {
		b.gen[v] = lGen
	}
	for _, v := range right {
		b.gen[v] = rGen
	}
	kept := sep[:0]
	for _, v := range sep {
		touchesL, touchesR := false, false
		for p := b.g.Colptr[v]; p < b.g.Colptr[v+1]; p++ {
			switch b.gen[b.g.Rowidx[p]] {
			case lGen:
				touchesL = true
			case rGen:
				touchesR = true
			}
		}
		switch {
		case touchesL && touchesR:
			kept = append(kept, v)
		case touchesR:
			right = append(right, v)
			b.gen[v] = rGen
		default:
			// touches only left or is isolated: prefer the left side,
			// which BFS makes the smaller-or-equal one often enough.
			left = append(left, v)
			b.gen[v] = lGen
		}
	}
	return left, right, kept
}

// bfs runs a breadth-first search from src over vertices marked with gen,
// filling b.level, and returns the number of levels.
func (b *builder) bfs(src int, gen int) int {
	// A second generation value marks "visited".
	b.curGen++
	vis := b.curGen
	q := b.queue[:0]
	q = append(q, src)
	b.level[src] = 0
	b.gen[src] = vis
	maxLevel := 0
	for head := 0; head < len(q); head++ {
		v := q[head]
		for p := b.g.Colptr[v]; p < b.g.Colptr[v+1]; p++ {
			w := b.g.Rowidx[p]
			if b.gen[w] != gen {
				continue
			}
			b.gen[w] = vis
			b.level[w] = b.level[v] + 1
			if b.level[w] > maxLevel {
				maxLevel = b.level[w]
			}
			q = append(q, w)
		}
	}
	b.queue = q
	return maxLevel + 1
}

// pseudoPeripheral finds a vertex of (approximately) maximal eccentricity
// by repeated BFS sweeps.
func (b *builder) pseudoPeripheral(verts []int, gen int) int {
	src := verts[0]
	lastLevels := -1
	for iter := 0; iter < 4; iter++ {
		// Re-mark because bfs consumes the generation marks.
		g := b.mark(verts)
		levels := b.bfs(src, g)
		if levels <= lastLevels {
			break
		}
		lastLevels = levels
		// Farthest vertex with the smallest degree.
		far, farDeg := src, 1<<62
		for _, v := range verts {
			if b.level[v] == levels-1 {
				if d := b.g.Colptr[v+1] - b.g.Colptr[v]; d < farDeg {
					far, farDeg = v, d
				}
			}
		}
		src = far
	}
	// Restore membership marks for the caller's generation.
	for _, v := range verts {
		b.gen[v] = gen
	}
	return src
}

// components returns the connected components of the marked vertex set.
func (b *builder) components(verts []int, gen int) [][]int {
	b.curGen++
	vis := b.curGen
	var comps [][]int
	for _, s := range verts {
		if b.gen[s] != gen {
			continue
		}
		comp := []int{s}
		b.gen[s] = vis
		for head := 0; head < len(comp); head++ {
			v := comp[head]
			for p := b.g.Colptr[v]; p < b.g.Colptr[v+1]; p++ {
				w := b.g.Rowidx[p]
				if b.gen[w] == gen {
					b.gen[w] = vis
					comp = append(comp, w)
				}
			}
		}
		comps = append(comps, comp)
	}
	// Restore marks.
	for _, v := range verts {
		b.gen[v] = gen
	}
	return comps
}

func absf(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
