package nd

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/sparse"
)

func grid2D(k int) *sparse.CSC {
	n := k * k
	coo := sparse.NewCOO(n, n, 5*n)
	id := func(i, j int) int { return i*k + j }
	for i := 0; i < k; i++ {
		for j := 0; j < k; j++ {
			v := id(i, j)
			coo.Add(v, v, 4)
			if i > 0 {
				coo.Add(v, id(i-1, j), -1)
			}
			if i < k-1 {
				coo.Add(v, id(i+1, j), -1)
			}
			if j > 0 {
				coo.Add(v, id(i, j-1), -1)
			}
			if j < k-1 {
				coo.Add(v, id(i, j+1), -1)
			}
		}
	}
	return coo.ToCSC(false)
}

// checkTreeStructure verifies that the permuted matrix only has entries
// between blocks that are on a common ancestor path in the ND tree.
func checkTreeStructure(t *testing.T, a *sparse.CSC, tree *Tree) {
	t.Helper()
	n := a.N
	blockOf := make([]int, n)
	for bidx := 0; bidx < tree.NumBlocks(); bidx++ {
		for i := tree.BlockPtr[bidx]; i < tree.BlockPtr[bidx+1]; i++ {
			blockOf[i] = bidx
		}
	}
	isAncestor := func(anc, node int) bool {
		for node != -1 {
			if node == anc {
				return true
			}
			node = tree.Parent[node]
		}
		return false
	}
	b := a.Permute(tree.Perm, tree.Perm)
	for j := 0; j < n; j++ {
		for p := b.Colptr[j]; p < b.Colptr[j+1]; p++ {
			i := b.Rowidx[p]
			bi, bj := blockOf[i], blockOf[j]
			if !isAncestor(bi, bj) && !isAncestor(bj, bi) {
				t.Fatalf("entry (%d,%d) couples unrelated blocks %d and %d", i, j, bi, bj)
			}
		}
	}
}

func TestGridDissection(t *testing.T) {
	for _, leaves := range []int{1, 2, 4, 8} {
		a := grid2D(12)
		tree, err := Compute(a, leaves)
		if err != nil {
			t.Fatal(err)
		}
		if tree.NumBlocks() != 2*leaves-1 {
			t.Fatalf("leaves=%d: blocks = %d, want %d", leaves, tree.NumBlocks(), 2*leaves-1)
		}
		if !sparse.IsPerm(tree.Perm) {
			t.Fatalf("leaves=%d: not a permutation", leaves)
		}
		if len(tree.Leaves) != leaves {
			t.Fatalf("leaves=%d: Leaves list has %d entries", leaves, len(tree.Leaves))
		}
		checkTreeStructure(t, a, tree)
	}
}

func TestGridBalance(t *testing.T) {
	a := grid2D(16)
	tree, err := Compute(a, 4)
	if err != nil {
		t.Fatal(err)
	}
	n := 16 * 16
	// Each leaf should hold a reasonable share; separators should be small
	// relative to the matrix (O(k) for a k×k grid).
	for _, leaf := range tree.Leaves {
		size := tree.BlockSize(leaf)
		if size < n/16 {
			t.Errorf("leaf %d too small: %d of %d", leaf, size, n)
		}
	}
	sepTotal := 0
	for b := 0; b < tree.NumBlocks(); b++ {
		if tree.Height[b] > 0 {
			sepTotal += tree.BlockSize(b)
		}
	}
	if sepTotal > n/3 {
		t.Errorf("separators hold %d of %d vertices, too many", sepTotal, n)
	}
}

func TestPathToRootAndHeights(t *testing.T) {
	a := grid2D(10)
	tree, err := Compute(a, 4)
	if err != nil {
		t.Fatal(err)
	}
	root := tree.NumBlocks() - 1
	if tree.Parent[root] != -1 {
		t.Fatal("last block should be the root separator")
	}
	for _, leaf := range tree.Leaves {
		path := tree.PathToRoot(leaf)
		if len(path) != 3 { // leaf, level-1 sep, root for 4 leaves
			t.Fatalf("path from leaf %d has length %d, want 3", leaf, len(path))
		}
		if path[len(path)-1] != root {
			t.Fatal("path should end at root")
		}
		if tree.Height[leaf] != 0 {
			t.Fatal("leaf height must be 0")
		}
	}
	if tree.Height[root] != 2 {
		t.Fatalf("root height = %d, want 2", tree.Height[root])
	}
}

func TestDisconnectedGraph(t *testing.T) {
	// Two disjoint 5-cliques: bisection should need no separator.
	coo := sparse.NewCOO(10, 10, 50)
	for a := 0; a < 5; a++ {
		for b := 0; b < 5; b++ {
			if a != b {
				coo.Add(a, b, 1)
				coo.Add(5+a, 5+b, 1)
			}
		}
	}
	a := coo.ToCSC(false)
	tree, err := Compute(a, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !sparse.IsPerm(tree.Perm) {
		t.Fatal("not a permutation")
	}
	root := tree.NumBlocks() - 1
	if tree.BlockSize(root) != 0 {
		t.Errorf("disconnected graph should have empty root separator, got %d", tree.BlockSize(root))
	}
	checkTreeStructure(t, a, tree)
}

func TestErrors(t *testing.T) {
	a := grid2D(4)
	if _, err := Compute(a, 3); err == nil {
		t.Fatal("non power-of-two leaves should error")
	}
	rect := sparse.NewCSC(3, 4, 0)
	if _, err := Compute(rect, 2); err == nil {
		t.Fatal("rectangular matrix should error")
	}
}

func TestRandomGraphsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(120)
		coo := sparse.NewCOO(n, n, 6*n)
		for i := 0; i < n; i++ {
			coo.Add(i, i, 1)
		}
		for e := 0; e < 3*n; e++ {
			i, j := rng.Intn(n), rng.Intn(n)
			coo.Add(i, j, 1)
			coo.Add(j, i, 1)
		}
		a := coo.ToCSC(false)
		leaves := 1 << rng.Intn(3)
		tree, err := Compute(a, leaves)
		if err != nil {
			return false
		}
		if !sparse.IsPerm(tree.Perm) {
			return false
		}
		if tree.BlockPtr[tree.NumBlocks()] != n {
			return false
		}
		// Structure check without *testing.T plumbing.
		blockOf := make([]int, n)
		for bidx := 0; bidx < tree.NumBlocks(); bidx++ {
			for i := tree.BlockPtr[bidx]; i < tree.BlockPtr[bidx+1]; i++ {
				blockOf[i] = bidx
			}
		}
		isAncestor := func(anc, node int) bool {
			for node != -1 {
				if node == anc {
					return true
				}
				node = tree.Parent[node]
			}
			return false
		}
		b := a.Permute(tree.Perm, tree.Perm)
		for j := 0; j < n; j++ {
			for p := b.Colptr[j]; p < b.Colptr[j+1]; p++ {
				bi, bj := blockOf[b.Rowidx[p]], blockOf[j]
				if !isAncestor(bi, bj) && !isAncestor(bj, bi) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestSingleLeaf(t *testing.T) {
	a := grid2D(5)
	tree, err := Compute(a, 1)
	if err != nil {
		t.Fatal(err)
	}
	if tree.NumBlocks() != 1 || tree.BlockSize(0) != 25 {
		t.Fatalf("single-leaf tree wrong: %+v", tree.BlockPtr)
	}
}
