// Package matching implements bipartite matchings used to permute sparse
// matrices to a zero-free diagonal:
//
//   - MaxCardinality: MC21-style augmenting-path maximum cardinality
//     matching on the pattern of A.
//   - Bottleneck: maximum weight-cardinality matching (MWCM) in the
//     bottleneck sense used by Basker — among all perfect matchings, it
//     maximizes the smallest |a_ij| placed on the diagonal. This mirrors the
//     MC64 "bottleneck" option the paper says its MWCM resembles.
package matching

import (
	"errors"
	"math"
	"sort"

	"repro/internal/sparse"
)

// ErrStructurallySingular is returned when no perfect matching exists, i.e.
// the matrix cannot be permuted to a zero-free diagonal.
var ErrStructurallySingular = errors.New("matching: matrix is structurally singular")

// MaxCardinality computes a maximum cardinality matching of the columns of a
// to its rows. It returns rowOf where rowOf[j] is the row matched to column
// j, or -1 if column j is unmatched, along with the matching size.
func MaxCardinality(a *sparse.CSC) (rowOf []int, size int) {
	return maxCardinalityFiltered(a, 0)
}

// maxCardinalityFiltered matches using only entries with |value| >= thresh.
// thresh == 0 admits every stored entry (pattern matching).
func maxCardinalityFiltered(a *sparse.CSC, thresh float64) ([]int, int) {
	n := a.N
	rowOf := make([]int, n)   // column -> matched row
	colOf := make([]int, a.M) // row -> matched column
	for j := range rowOf {
		rowOf[j] = -1
	}
	for i := range colOf {
		colOf[i] = -1
	}
	// Cheap assignment pass: match each column to the first free row.
	size := 0
	for j := 0; j < n; j++ {
		for p := a.Colptr[j]; p < a.Colptr[j+1]; p++ {
			if math.Abs(a.Values[p]) < thresh {
				continue
			}
			i := a.Rowidx[p]
			if colOf[i] == -1 {
				colOf[i] = j
				rowOf[j] = i
				size++
				break
			}
		}
	}
	// Augmenting path search (iterative DFS, one pass per unmatched column).
	// visited[i] == j+1 marks row i as seen while augmenting column j.
	visited := make([]int, a.M)
	// Explicit DFS stack: pairs of (column, next entry pointer).
	type frame struct{ col, ptr int }
	stack := make([]frame, 0, 64)
	// pathRow[d] records the row chosen at depth d so the augmentation can
	// be applied once a free row is found.
	pathRow := make([]int, 0, 64)
	for j0 := 0; j0 < n; j0++ {
		if rowOf[j0] != -1 {
			continue
		}
		stack = stack[:0]
		pathRow = pathRow[:0]
		stack = append(stack, frame{j0, a.Colptr[j0]})
		found := false
		for len(stack) > 0 && !found {
			top := &stack[len(stack)-1]
			j := top.col
			advanced := false
			for p := top.ptr; p < a.Colptr[j+1]; p++ {
				if math.Abs(a.Values[p]) < thresh {
					continue
				}
				i := a.Rowidx[p]
				if visited[i] == j0+1 {
					continue
				}
				visited[i] = j0 + 1
				top.ptr = p + 1
				if colOf[i] == -1 {
					// Free row: augment along the stored path.
					pathRow = append(pathRow, i)
					for d := len(stack) - 1; d >= 0; d-- {
						cj := stack[d].col
						ri := pathRow[d]
						rowOf[cj] = ri
						colOf[ri] = cj
					}
					size++
					found = true
				} else {
					pathRow = append(pathRow, i)
					stack = append(stack, frame{colOf[i], a.Colptr[colOf[i]]})
				}
				advanced = true
				break
			}
			if !advanced {
				stack = stack[:len(stack)-1]
				if len(pathRow) > 0 {
					pathRow = pathRow[:len(pathRow)-1]
				}
			}
		}
	}
	return rowOf, size
}

// Result describes a matching-derived row permutation.
type Result struct {
	// RowPerm is new-to-old: B = A(RowPerm, :) has B(j,j) != 0 for all j.
	RowPerm []int
	// Bottleneck is the smallest |a_ij| on the matched diagonal (only set
	// by Bottleneck; MaxCardinalityPerm leaves it 0).
	Bottleneck float64
}

// MaxCardinalityPerm returns a row permutation placing nonzeros on the
// diagonal, or ErrStructurallySingular if none exists.
func MaxCardinalityPerm(a *sparse.CSC) (*Result, error) {
	if a.M != a.N {
		return nil, errors.New("matching: matrix must be square")
	}
	rowOf, size := MaxCardinality(a)
	if size != a.N {
		return nil, ErrStructurallySingular
	}
	return &Result{RowPerm: rowOf}, nil
}

// Bottleneck computes a maximum weight-cardinality matching that maximizes
// the minimum |a_ij| on the diagonal, by binary searching the threshold over
// the distinct entry magnitudes and testing perfect-matching feasibility
// with the filtered MC21. Complexity O(nnz · log nnz · augmenting cost).
func Bottleneck(a *sparse.CSC) (*Result, error) {
	if a.M != a.N {
		return nil, errors.New("matching: matrix must be square")
	}
	n := a.N
	if n == 0 {
		return &Result{RowPerm: []int{}}, nil
	}
	// Distinct magnitudes, ascending. Zero entries can never be diagonal
	// candidates for a *weighted* matching unless nothing else works; keep
	// them so pattern-singular detection still goes through MC21.
	mags := make([]float64, 0, a.Nnz())
	for _, v := range a.Values[:a.Nnz()] {
		mags = append(mags, math.Abs(v))
	}
	sort.Float64s(mags)
	mags = dedupSorted(mags)

	// Feasibility at the smallest magnitude == plain maximum matching.
	rowOf, size := maxCardinalityFiltered(a, 0)
	if size != n {
		return nil, ErrStructurallySingular
	}
	best := rowOf
	bestThresh := 0.0
	lo, hi := 0, len(mags)-1 // mags[lo] is always feasible once set
	for lo <= hi {
		mid := (lo + hi) / 2
		r, s := maxCardinalityFiltered(a, mags[mid])
		if s == n {
			best = r
			bestThresh = mags[mid]
			lo = mid + 1
		} else {
			hi = mid - 1
		}
	}
	return &Result{RowPerm: best, Bottleneck: bestThresh}, nil
}

func dedupSorted(x []float64) []float64 {
	out := x[:0]
	for i, v := range x {
		if i == 0 || v != x[i-1] {
			out = append(out, v)
		}
	}
	return out
}
