// Package matching implements bipartite matchings used to permute sparse
// matrices to a zero-free diagonal:
//
//   - MaxCardinality: MC21-style augmenting-path maximum cardinality
//     matching on the pattern of A.
//   - Bottleneck: maximum weight-cardinality matching (MWCM) in the
//     bottleneck sense used by Basker — among all perfect matchings, it
//     maximizes the smallest |a_ij| placed on the diagonal. This mirrors the
//     MC64 "bottleneck" option the paper says its MWCM resembles.
package matching

import (
	"errors"
	"math"
	"sort"

	"repro/internal/sparse"
)

// ErrStructurallySingular is returned when no perfect matching exists, i.e.
// the matrix cannot be permuted to a zero-free diagonal.
var ErrStructurallySingular = errors.New("matching: matrix is structurally singular")

// Workspace holds the reusable scratch of the matching searches. The
// bottleneck search runs O(log nnz) feasibility probes, each of which used
// to allocate its full scratch set; a Workspace carried across probes — and
// across Analyze calls, which run one matching per BTF front end plus one
// per fine-ND block — removes that churn from the serial symbolic phase.
type Workspace struct {
	rowOf, colOf, visited []int
	best                  []int
	pathRow               []int
	stack                 []augFrame
	mags                  []float64
}

// augFrame is one DFS frame of the augmenting-path search.
type augFrame struct{ col, ptr int }

// NewWorkspace returns an empty workspace; buffers grow on first use.
func NewWorkspace() *Workspace { return &Workspace{} }

// MaxCardinality computes a maximum cardinality matching of the columns of a
// to its rows. It returns rowOf where rowOf[j] is the row matched to column
// j, or -1 if column j is unmatched, along with the matching size. The
// returned slice is freshly allocated (callers retain it).
func MaxCardinality(a *sparse.CSC) (rowOf []int, size int) {
	r, s := maxCardinalityFiltered(a, 0, NewWorkspace())
	return append([]int(nil), r...), s
}

// maxCardinalityFiltered matches using only entries with |value| >= thresh.
// thresh == 0 admits every stored entry (pattern matching). The returned
// slice aliases ws.rowOf and is valid only until the workspace is reused.
func maxCardinalityFiltered(a *sparse.CSC, thresh float64, ws *Workspace) ([]int, int) {
	n := a.N
	ws.rowOf = sparse.GrowInts(ws.rowOf, n)   // column -> matched row
	ws.colOf = sparse.GrowInts(ws.colOf, a.M) // row -> matched column
	rowOf, colOf := ws.rowOf, ws.colOf
	for j := range rowOf {
		rowOf[j] = -1
	}
	for i := range colOf {
		colOf[i] = -1
	}
	// Cheap assignment pass: match each column to the first free row.
	size := 0
	for j := 0; j < n; j++ {
		for p := a.Colptr[j]; p < a.Colptr[j+1]; p++ {
			if math.Abs(a.Values[p]) < thresh {
				continue
			}
			i := a.Rowidx[p]
			if colOf[i] == -1 {
				colOf[i] = j
				rowOf[j] = i
				size++
				break
			}
		}
	}
	// Augmenting path search (iterative DFS, one pass per unmatched column).
	// visited[i] == j0+1 marks row i as seen while augmenting column j0; the
	// array must start clean, since stale marks from a previous search could
	// collide with the same j0.
	ws.visited = sparse.GrowInts(ws.visited, a.M)
	visited := ws.visited
	for i := range visited {
		visited[i] = 0
	}
	// Explicit DFS stack: pairs of (column, next entry pointer). pathRow[d]
	// records the row chosen at depth d so the augmentation can be applied
	// once a free row is found.
	stack := ws.stack[:0]
	pathRow := ws.pathRow[:0]
	for j0 := 0; j0 < n; j0++ {
		if rowOf[j0] != -1 {
			continue
		}
		stack = stack[:0]
		pathRow = pathRow[:0]
		stack = append(stack, augFrame{j0, a.Colptr[j0]})
		found := false
		for len(stack) > 0 && !found {
			top := &stack[len(stack)-1]
			j := top.col
			advanced := false
			for p := top.ptr; p < a.Colptr[j+1]; p++ {
				if math.Abs(a.Values[p]) < thresh {
					continue
				}
				i := a.Rowidx[p]
				if visited[i] == j0+1 {
					continue
				}
				visited[i] = j0 + 1
				top.ptr = p + 1
				if colOf[i] == -1 {
					// Free row: augment along the stored path.
					pathRow = append(pathRow, i)
					for d := len(stack) - 1; d >= 0; d-- {
						cj := stack[d].col
						ri := pathRow[d]
						rowOf[cj] = ri
						colOf[ri] = cj
					}
					size++
					found = true
				} else {
					pathRow = append(pathRow, i)
					stack = append(stack, augFrame{colOf[i], a.Colptr[colOf[i]]})
				}
				advanced = true
				break
			}
			if !advanced {
				stack = stack[:len(stack)-1]
				if len(pathRow) > 0 {
					pathRow = pathRow[:len(pathRow)-1]
				}
			}
		}
	}
	ws.stack, ws.pathRow = stack, pathRow // keep grown capacity
	return rowOf, size
}

// Result describes a matching-derived row permutation.
type Result struct {
	// RowPerm is new-to-old: B = A(RowPerm, :) has B(j,j) != 0 for all j.
	RowPerm []int
	// Bottleneck is the smallest |a_ij| on the matched diagonal (only set
	// by Bottleneck; MaxCardinalityPerm leaves it 0).
	Bottleneck float64
}

// MaxCardinalityPerm returns a row permutation placing nonzeros on the
// diagonal, or ErrStructurallySingular if none exists.
func MaxCardinalityPerm(a *sparse.CSC) (*Result, error) {
	return MaxCardinalityPermWith(a, nil)
}

// MaxCardinalityPermWith is MaxCardinalityPerm drawing scratch from ws
// (nil allocates a private workspace).
func MaxCardinalityPermWith(a *sparse.CSC, ws *Workspace) (*Result, error) {
	if a.M != a.N {
		return nil, errors.New("matching: matrix must be square")
	}
	if ws == nil {
		ws = NewWorkspace()
	}
	rowOf, size := maxCardinalityFiltered(a, 0, ws)
	if size != a.N {
		return nil, ErrStructurallySingular
	}
	return &Result{RowPerm: append([]int(nil), rowOf...)}, nil
}

// Bottleneck computes a maximum weight-cardinality matching that maximizes
// the minimum |a_ij| on the diagonal, by binary searching the threshold over
// the distinct entry magnitudes and testing perfect-matching feasibility
// with the filtered MC21. Complexity O(nnz · log nnz · augmenting cost).
func Bottleneck(a *sparse.CSC) (*Result, error) {
	return BottleneckWith(a, nil)
}

// BottleneckWith is Bottleneck drawing all scratch — including every
// feasibility probe's — from ws (nil allocates a private workspace). Only
// the returned permutation is freshly allocated.
func BottleneckWith(a *sparse.CSC, ws *Workspace) (*Result, error) {
	if a.M != a.N {
		return nil, errors.New("matching: matrix must be square")
	}
	n := a.N
	if n == 0 {
		return &Result{RowPerm: []int{}}, nil
	}
	if ws == nil {
		ws = NewWorkspace()
	}
	// Distinct magnitudes, ascending. Zero entries can never be diagonal
	// candidates for a *weighted* matching unless nothing else works; keep
	// them so pattern-singular detection still goes through MC21.
	mags := ws.mags[:0]
	for _, v := range a.Values[:a.Nnz()] {
		mags = append(mags, math.Abs(v))
	}
	sort.Float64s(mags)
	mags = dedupSorted(mags)
	ws.mags = mags

	// Feasibility at the smallest magnitude == plain maximum matching.
	rowOf, size := maxCardinalityFiltered(a, 0, ws)
	if size != n {
		return nil, ErrStructurallySingular
	}
	ws.best = append(ws.best[:0], rowOf...)
	bestThresh := 0.0
	lo, hi := 0, len(mags)-1 // mags[lo] is always feasible once set
	for lo <= hi {
		mid := (lo + hi) / 2
		r, s := maxCardinalityFiltered(a, mags[mid], ws)
		if s == n {
			ws.best = append(ws.best[:0], r...)
			bestThresh = mags[mid]
			lo = mid + 1
		} else {
			hi = mid - 1
		}
	}
	return &Result{RowPerm: append([]int(nil), ws.best...), Bottleneck: bestThresh}, nil
}

func dedupSorted(x []float64) []float64 {
	out := x[:0]
	for i, v := range x {
		if i == 0 || v != x[i-1] {
			out = append(out, v)
		}
	}
	return out
}
