package matching

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/sparse"
)

func fromDense(d [][]float64) *sparse.CSC {
	m, n := len(d), len(d[0])
	coo := sparse.NewCOO(m, n, m*n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			if d[i][j] != 0 {
				coo.Add(i, j, d[i][j])
			}
		}
	}
	return coo.ToCSC(false)
}

func TestMaxCardinalityPermSimple(t *testing.T) {
	// Off-diagonal structure forcing an augmenting path.
	a := fromDense([][]float64{
		{0, 1, 0},
		{1, 0, 1},
		{1, 0, 0},
	})
	res, err := MaxCardinalityPerm(a)
	if err != nil {
		t.Fatal(err)
	}
	b := a.Permute(res.RowPerm, nil)
	for j := 0; j < 3; j++ {
		if b.At(j, j) == 0 {
			t.Fatalf("diagonal (%d,%d) is zero after matching", j, j)
		}
	}
}

func TestStructurallySingular(t *testing.T) {
	// Column 2 is empty: no perfect matching exists.
	a := fromDense([][]float64{
		{1, 1, 0},
		{1, 1, 0},
		{1, 1, 0},
	})
	if _, err := MaxCardinalityPerm(a); err != ErrStructurallySingular {
		t.Fatalf("err = %v, want ErrStructurallySingular", err)
	}
	if _, err := Bottleneck(a); err != ErrStructurallySingular {
		t.Fatalf("Bottleneck err = %v, want ErrStructurallySingular", err)
	}
	// Two columns sharing a single row.
	b := fromDense([][]float64{
		{1, 1, 1},
		{0, 0, 1},
		{0, 0, 1},
	})
	if _, err := MaxCardinalityPerm(b); err != ErrStructurallySingular {
		t.Fatalf("err = %v, want ErrStructurallySingular", err)
	}
}

func TestBottleneckMaximizesMinDiagonal(t *testing.T) {
	// Two perfect matchings exist: identity (min |diag| = min(0.01,1) =
	// 0.01) and the swap (min(2,5) = 2). Bottleneck must pick the swap.
	a := fromDense([][]float64{
		{0.01, 5},
		{2, 1},
	})
	res, err := Bottleneck(a)
	if err != nil {
		t.Fatal(err)
	}
	b := a.Permute(res.RowPerm, nil)
	min := math.Inf(1)
	for j := 0; j < 2; j++ {
		if v := math.Abs(b.At(j, j)); v < min {
			min = v
		}
	}
	if min != 2 {
		t.Fatalf("bottleneck diagonal min = %v, want 2", min)
	}
	if res.Bottleneck != 2 {
		t.Fatalf("reported bottleneck = %v, want 2", res.Bottleneck)
	}
}

// randSquareWithDiag builds a random matrix guaranteed to have a zero-free
// diagonal under some permutation (it plants a random permutation diagonal).
func randSquareWithDiag(rng *rand.Rand, n int, density float64) *sparse.CSC {
	coo := sparse.NewCOO(n, n, n*3)
	planted := rng.Perm(n)
	for j := 0; j < n; j++ {
		coo.Add(planted[j], j, 1+rng.Float64())
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if rng.Float64() < density {
				coo.Add(i, j, rng.NormFloat64())
			}
		}
	}
	return coo.ToCSC(false)
}

func TestMatchingIsPermutationProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(60)
		a := randSquareWithDiag(rng, n, 0.1)
		res, err := MaxCardinalityPerm(a)
		if err != nil {
			return false
		}
		if !sparse.IsPerm(res.RowPerm) {
			return false
		}
		b := a.Permute(res.RowPerm, nil)
		for j := 0; j < n; j++ {
			if b.At(j, j) == 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestBottleneckIsPermutationAndDominates(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(40)
		a := randSquareWithDiag(rng, n, 0.15)
		res, err := Bottleneck(a)
		if err != nil {
			return false
		}
		if !sparse.IsPerm(res.RowPerm) {
			return false
		}
		b := a.Permute(res.RowPerm, nil)
		min := math.Inf(1)
		for j := 0; j < n; j++ {
			v := math.Abs(b.At(j, j))
			if v == 0 {
				return false
			}
			if v < min {
				min = v
			}
		}
		// The planted diagonal has all entries >= 1 minus possible
		// duplicate-sum interference; the bottleneck must be at least the
		// min achievable by the plain matching, and must equal the
		// reported threshold.
		return math.Abs(min-res.Bottleneck) < 1e-15 || min >= res.Bottleneck
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestMaxCardinalityRect(t *testing.T) {
	// Wide pattern: 2 rows, 3 cols; max matching is 2.
	a := fromDense([][]float64{
		{1, 1, 0},
		{0, 1, 1},
	})
	rowOf, size := MaxCardinality(a)
	if size != 2 {
		t.Fatalf("size = %d, want 2", size)
	}
	used := map[int]bool{}
	for j, r := range rowOf {
		if r == -1 {
			continue
		}
		if used[r] {
			t.Fatalf("row %d matched twice", r)
		}
		used[r] = true
		if a.At(r, j) == 0 {
			t.Fatalf("matched entry (%d,%d) is zero", r, j)
		}
	}
}

func TestEmptyMatrix(t *testing.T) {
	a := sparse.NewCSC(0, 0, 0)
	res, err := Bottleneck(a)
	if err != nil || len(res.RowPerm) != 0 {
		t.Fatalf("empty matrix: res=%v err=%v", res, err)
	}
}
