// Package btf computes the block triangular form (BTF) of a square sparse
// matrix: a row permutation placing nonzeros on the diagonal (from a
// matching) followed by a symmetric permutation grouping the strongly
// connected components of the induced digraph, so that
//
//	P A Q = [ A11 A12 ... A1k ]
//	        [     A22 ...     ]
//	        [          .      ]
//	        [             Akk ]
//
// is upper block triangular. Only the diagonal blocks need factoring.
// This is the coarse structure KLU and Basker both rely on.
package btf

import (
	"repro/internal/order/matching"
	"repro/internal/sparse"
)

// Form describes a computed block triangular form.
type Form struct {
	// RowPerm and ColPerm are new-to-old: B = A(RowPerm, ColPerm) is upper
	// block triangular with zero-free diagonal.
	RowPerm []int
	ColPerm []int
	// BlockPtr has length NumBlocks+1; block b spans rows/columns
	// BlockPtr[b]..BlockPtr[b+1] of the permuted matrix.
	BlockPtr []int
}

// NumBlocks reports the number of diagonal blocks.
func (f *Form) NumBlocks() int { return len(f.BlockPtr) - 1 }

// LargestBlock returns the size of the largest diagonal block.
func (f *Form) LargestBlock() int {
	max := 0
	for b := 0; b < f.NumBlocks(); b++ {
		if s := f.BlockPtr[b+1] - f.BlockPtr[b]; s > max {
			max = s
		}
	}
	return max
}

// PercentInSmallBlocks reports the percentage of matrix rows that live in
// diagonal blocks strictly smaller than threshold — the "BTF %" statistic
// from Table I of the paper (small independent subblocks handled by the
// fine-BTF method).
func (f *Form) PercentInSmallBlocks(threshold int) float64 {
	n := f.BlockPtr[f.NumBlocks()]
	if n == 0 {
		return 0
	}
	small := 0
	for b := 0; b < f.NumBlocks(); b++ {
		if s := f.BlockPtr[b+1] - f.BlockPtr[b]; s < threshold {
			small += s
		}
	}
	return 100 * float64(small) / float64(n)
}

// Workspace holds the reusable scratch of the BTF front end: the matching
// search's buffers, the values-free pattern transpose the SCC search walks,
// and Tarjan's stacks. Reusing one workspace across Analyze calls removes
// the front end's per-call allocation churn — the serial symbolic-phase
// cost the paper's Algorithm 3 discussion warns about.
type Workspace struct {
	// Match is the matching searches' scratch.
	Match matching.Workspace

	// tptr/tadj hold the pattern of Aᵀ (no values — the SCC search is
	// structural); tnext is the fill cursor.
	tptr, tadj, tnext []int

	// Tarjan scratch.
	index, lowlink, comp, stack []int
	onStack                     []bool
	dfs                         []sccFrame
	sccSizes, newID, next       []int
}

// NewWorkspace returns an empty workspace; buffers grow on first use.
func NewWorkspace() *Workspace { return &Workspace{} }

// Compute finds the BTF of a. The matching permutation is chosen by useMWCM:
// true selects the bottleneck maximum weight matching (Basker's Pm), false
// the plain maximum cardinality matching (pattern only). Returns
// matching.ErrStructurallySingular for structurally singular inputs.
func Compute(a *sparse.CSC, useMWCM bool) (*Form, error) {
	return ComputeWith(a, useMWCM, nil)
}

// ComputeWith is Compute drawing all scratch from ws (nil allocates a
// private workspace). Only the returned Form's slices are freshly
// allocated.
func ComputeWith(a *sparse.CSC, useMWCM bool, ws *Workspace) (*Form, error) {
	if ws == nil {
		ws = NewWorkspace()
	}
	n := a.N
	var match *matching.Result
	var err error
	if useMWCM {
		match, err = matching.BottleneckWith(a, &ws.Match)
	} else {
		match, err = matching.MaxCardinalityPermWith(a, &ws.Match)
	}
	if err != nil {
		return nil, err
	}
	// B = A(match.RowPerm, :) has a zero-free diagonal. Its digraph has an
	// edge u -> v for every nonzero B(u, v); SCCs of that digraph in
	// topological order give the upper BTF. Out-neighbours of u are the
	// pattern of row match.RowPerm[u] of A — column match.RowPerm[u] of the
	// pattern transpose, so one values-free transpose replaces the old
	// Permute+Transpose round trip.
	ws.transposePattern(a)
	sccOrder, blockPtr := tarjanSCC(n, match.RowPerm, ws)

	// sccOrder is a symmetric permutation of B: final ColPerm = sccOrder,
	// final RowPerm composes the matching with sccOrder.
	rowPerm := make([]int, n)
	for k := 0; k < n; k++ {
		rowPerm[k] = match.RowPerm[sccOrder[k]]
	}
	return &Form{RowPerm: rowPerm, ColPerm: sccOrder, BlockPtr: blockPtr}, nil
}

// transposePattern fills ws.tptr/tadj with the pattern of aᵀ: column i of
// the transpose lists the columns of a whose pattern contains row i.
func (ws *Workspace) transposePattern(a *sparse.CSC) {
	nnz := a.Nnz()
	ws.tptr = sparse.GrowInts(ws.tptr, a.M+1)
	ws.tadj = sparse.GrowInts(ws.tadj, nnz)
	ws.tnext = sparse.GrowInts(ws.tnext, a.M)
	tptr, tadj, next := ws.tptr, ws.tadj, ws.tnext
	for i := range tptr {
		tptr[i] = 0
	}
	for _, i := range a.Rowidx[:nnz] {
		tptr[i+1]++
	}
	for i := 0; i < a.M; i++ {
		tptr[i+1] += tptr[i]
		next[i] = tptr[i]
	}
	for j := 0; j < a.N; j++ {
		for p := a.Colptr[j]; p < a.Colptr[j+1]; p++ {
			i := a.Rowidx[p]
			tadj[next[i]] = j
			next[i]++
		}
	}
}

// sccFrame is one DFS frame of the SCC search.
type sccFrame struct{ v, ptr int }

// tarjanSCC runs an iterative Tarjan strongly-connected-components search on
// the digraph whose vertex u has out-adjacency
// tadj[tptr[rowPerm[u]]:tptr[rowPerm[u]+1]] (the matching indirection over
// the pattern transpose). It returns a new-to-old vertex permutation that
// lists SCCs contiguously in topological order of the condensation (all
// edges point from earlier blocks to later blocks), plus the block
// boundaries; both are freshly allocated, all scratch comes from ws.
func tarjanSCC(n int, rowPerm []int, ws *Workspace) (perm []int, blockPtr []int) {
	const unvisited = -1
	ws.index = sparse.GrowInts(ws.index, n)
	ws.lowlink = sparse.GrowInts(ws.lowlink, n)
	ws.comp = sparse.GrowInts(ws.comp, n)
	ws.onStack = sparse.GrowBools(ws.onStack, n)
	index, lowlink, comp, onStack := ws.index, ws.lowlink, ws.comp, ws.onStack
	for i := 0; i < n; i++ {
		index[i] = unvisited
		comp[i] = -1
		onStack[i] = false
	}
	ptr, adj := ws.tptr, ws.tadj
	outs := func(u int) (int, int) {
		p := rowPerm[u]
		return ptr[p], ptr[p+1]
	}
	var (
		counter  int
		sccCount int
	)
	stack := ws.stack[:0] // Tarjan's SCC stack
	sccSizes := ws.sccSizes[:0]
	dfs := ws.dfs[:0]

	for root := 0; root < n; root++ {
		if index[root] != unvisited {
			continue
		}
		p0, _ := outs(root)
		dfs = append(dfs[:0], sccFrame{root, p0})
		index[root] = counter
		lowlink[root] = counter
		counter++
		stack = append(stack, root)
		onStack[root] = true
		for len(dfs) > 0 {
			top := &dfs[len(dfs)-1]
			v := top.v
			_, pend := outs(v)
			if top.ptr < pend {
				w := adj[top.ptr]
				top.ptr++
				if index[w] == unvisited {
					index[w] = counter
					lowlink[w] = counter
					counter++
					stack = append(stack, w)
					onStack[w] = true
					w0, _ := outs(w)
					dfs = append(dfs, sccFrame{w, w0})
				} else if onStack[w] && index[w] < lowlink[v] {
					lowlink[v] = index[w]
				}
				continue
			}
			// v is finished.
			if lowlink[v] == index[v] {
				size := 0
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp[w] = sccCount
					size++
					if w == v {
						break
					}
				}
				sccSizes = append(sccSizes, size)
				sccCount++
			}
			dfs = dfs[:len(dfs)-1]
			if len(dfs) > 0 {
				parent := dfs[len(dfs)-1].v
				if lowlink[v] < lowlink[parent] {
					lowlink[parent] = lowlink[v]
				}
			}
		}
	}
	ws.stack, ws.sccSizes, ws.dfs = stack, sccSizes, dfs // keep grown capacity

	// Tarjan emits SCCs in reverse topological order (an SCC is emitted
	// before any SCC that reaches it). Renumber so block 0 comes first in
	// topological order and edges go earlier -> later (upper triangular).
	ws.newID = sparse.GrowInts(ws.newID, sccCount)
	newID := ws.newID
	for c := 0; c < sccCount; c++ {
		newID[c] = sccCount - 1 - c
	}
	blockPtr = make([]int, sccCount+1)
	for c := 0; c < sccCount; c++ {
		blockPtr[newID[c]+1] = sccSizes[c]
	}
	for b := 0; b < sccCount; b++ {
		blockPtr[b+1] += blockPtr[b]
	}
	ws.next = sparse.GrowInts(ws.next, sccCount)
	next := ws.next
	for b := 0; b < sccCount; b++ {
		next[b] = blockPtr[b]
	}
	perm = make([]int, n)
	for v := 0; v < n; v++ {
		b := newID[comp[v]]
		perm[next[b]] = v
		next[b]++
	}
	return perm, blockPtr
}
