// Package btf computes the block triangular form (BTF) of a square sparse
// matrix: a row permutation placing nonzeros on the diagonal (from a
// matching) followed by a symmetric permutation grouping the strongly
// connected components of the induced digraph, so that
//
//	P A Q = [ A11 A12 ... A1k ]
//	        [     A22 ...     ]
//	        [          .      ]
//	        [             Akk ]
//
// is upper block triangular. Only the diagonal blocks need factoring.
// This is the coarse structure KLU and Basker both rely on.
package btf

import (
	"repro/internal/order/matching"
	"repro/internal/sparse"
)

// Form describes a computed block triangular form.
type Form struct {
	// RowPerm and ColPerm are new-to-old: B = A(RowPerm, ColPerm) is upper
	// block triangular with zero-free diagonal.
	RowPerm []int
	ColPerm []int
	// BlockPtr has length NumBlocks+1; block b spans rows/columns
	// BlockPtr[b]..BlockPtr[b+1] of the permuted matrix.
	BlockPtr []int
}

// NumBlocks reports the number of diagonal blocks.
func (f *Form) NumBlocks() int { return len(f.BlockPtr) - 1 }

// LargestBlock returns the size of the largest diagonal block.
func (f *Form) LargestBlock() int {
	max := 0
	for b := 0; b < f.NumBlocks(); b++ {
		if s := f.BlockPtr[b+1] - f.BlockPtr[b]; s > max {
			max = s
		}
	}
	return max
}

// PercentInSmallBlocks reports the percentage of matrix rows that live in
// diagonal blocks strictly smaller than threshold — the "BTF %" statistic
// from Table I of the paper (small independent subblocks handled by the
// fine-BTF method).
func (f *Form) PercentInSmallBlocks(threshold int) float64 {
	n := f.BlockPtr[f.NumBlocks()]
	if n == 0 {
		return 0
	}
	small := 0
	for b := 0; b < f.NumBlocks(); b++ {
		if s := f.BlockPtr[b+1] - f.BlockPtr[b]; s < threshold {
			small += s
		}
	}
	return 100 * float64(small) / float64(n)
}

// Compute finds the BTF of a. The matching permutation is chosen by useMWCM:
// true selects the bottleneck maximum weight matching (Basker's Pm), false
// the plain maximum cardinality matching (pattern only). Returns
// matching.ErrStructurallySingular for structurally singular inputs.
func Compute(a *sparse.CSC, useMWCM bool) (*Form, error) {
	n := a.N
	var match *matching.Result
	var err error
	if useMWCM {
		match, err = matching.Bottleneck(a)
	} else {
		match, err = matching.MaxCardinalityPerm(a)
	}
	if err != nil {
		return nil, err
	}
	// B = A(match.RowPerm, :) has a zero-free diagonal. Its digraph has an
	// edge u -> v for every nonzero B(u, v); SCCs of that digraph in
	// topological order give the upper BTF. Out-neighbours of u are the
	// pattern of row u of B, i.e. column u of Bᵀ.
	b := a.Permute(match.RowPerm, nil)
	bt := b.Transpose()
	sccOrder, blockPtr := tarjanSCC(n, bt.Colptr, bt.Rowidx)

	// sccOrder is a symmetric permutation of B: final ColPerm = sccOrder,
	// final RowPerm composes the matching with sccOrder.
	rowPerm := make([]int, n)
	for k := 0; k < n; k++ {
		rowPerm[k] = match.RowPerm[sccOrder[k]]
	}
	return &Form{RowPerm: rowPerm, ColPerm: sccOrder, BlockPtr: blockPtr}, nil
}

// tarjanSCC runs an iterative Tarjan strongly-connected-components search on
// the digraph with out-adjacency adj[ptr[u]:ptr[u+1]] for vertex u. It
// returns a new-to-old vertex permutation that lists SCCs contiguously in
// topological order of the condensation (all edges point from earlier blocks
// to later blocks), plus the block boundaries.
func tarjanSCC(n int, ptr, adj []int) (perm []int, blockPtr []int) {
	const unvisited = -1
	index := make([]int, n)
	lowlink := make([]int, n)
	onStack := make([]bool, n)
	comp := make([]int, n)
	for i := range index {
		index[i] = unvisited
		comp[i] = -1
	}
	var (
		counter  int
		sccCount int
		stack    []int // Tarjan's SCC stack
	)
	sccSizes := []int{}

	type frame struct{ v, ptr int }
	dfs := make([]frame, 0, 64)

	for root := 0; root < n; root++ {
		if index[root] != unvisited {
			continue
		}
		dfs = append(dfs[:0], frame{root, ptr[root]})
		index[root] = counter
		lowlink[root] = counter
		counter++
		stack = append(stack, root)
		onStack[root] = true
		for len(dfs) > 0 {
			top := &dfs[len(dfs)-1]
			v := top.v
			if top.ptr < ptr[v+1] {
				w := adj[top.ptr]
				top.ptr++
				if index[w] == unvisited {
					index[w] = counter
					lowlink[w] = counter
					counter++
					stack = append(stack, w)
					onStack[w] = true
					dfs = append(dfs, frame{w, ptr[w]})
				} else if onStack[w] && index[w] < lowlink[v] {
					lowlink[v] = index[w]
				}
				continue
			}
			// v is finished.
			if lowlink[v] == index[v] {
				size := 0
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp[w] = sccCount
					size++
					if w == v {
						break
					}
				}
				sccSizes = append(sccSizes, size)
				sccCount++
			}
			dfs = dfs[:len(dfs)-1]
			if len(dfs) > 0 {
				parent := dfs[len(dfs)-1].v
				if lowlink[v] < lowlink[parent] {
					lowlink[parent] = lowlink[v]
				}
			}
		}
	}

	// Tarjan emits SCCs in reverse topological order (an SCC is emitted
	// before any SCC that reaches it). Renumber so block 0 comes first in
	// topological order and edges go earlier -> later (upper triangular).
	newID := make([]int, sccCount)
	for c := 0; c < sccCount; c++ {
		newID[c] = sccCount - 1 - c
	}
	blockPtr = make([]int, sccCount+1)
	for c := 0; c < sccCount; c++ {
		blockPtr[newID[c]+1] = sccSizes[c]
	}
	for b := 0; b < sccCount; b++ {
		blockPtr[b+1] += blockPtr[b]
	}
	next := make([]int, sccCount)
	for b := 0; b < sccCount; b++ {
		next[b] = blockPtr[b]
	}
	perm = make([]int, n)
	for v := 0; v < n; v++ {
		b := newID[comp[v]]
		perm[next[b]] = v
		next[b]++
	}
	return perm, blockPtr
}
