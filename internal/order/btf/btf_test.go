package btf

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/sparse"
)

// isUpperBlockTriangular checks that all entries of b lie in or above the
// diagonal blocks delimited by blockPtr.
func isUpperBlockTriangular(b *sparse.CSC, blockPtr []int) bool {
	blockOf := make([]int, b.N)
	for k := 0; k < len(blockPtr)-1; k++ {
		for i := blockPtr[k]; i < blockPtr[k+1]; i++ {
			blockOf[i] = k
		}
	}
	for j := 0; j < b.N; j++ {
		for p := b.Colptr[j]; p < b.Colptr[j+1]; p++ {
			if blockOf[b.Rowidx[p]] > blockOf[j] {
				return false
			}
		}
	}
	return true
}

func diagCSC(vals ...float64) *sparse.CSC {
	n := len(vals)
	coo := sparse.NewCOO(n, n, n)
	for i, v := range vals {
		coo.Add(i, i, v)
	}
	return coo.ToCSC(false)
}

func TestDiagonalMatrixGivesNBlocks(t *testing.T) {
	a := diagCSC(1, 2, 3, 4, 5)
	f, err := Compute(a, false)
	if err != nil {
		t.Fatal(err)
	}
	if f.NumBlocks() != 5 {
		t.Fatalf("blocks = %d, want 5", f.NumBlocks())
	}
	if f.LargestBlock() != 1 {
		t.Fatalf("largest = %d, want 1", f.LargestBlock())
	}
}

func TestCycleIsOneBlock(t *testing.T) {
	// A directed n-cycle with diagonal: one strongly connected component.
	n := 6
	coo := sparse.NewCOO(n, n, 2*n)
	for i := 0; i < n; i++ {
		coo.Add(i, i, 2)
		coo.Add((i+1)%n, i, 1) // edge i -> i+1 in the digraph sense
	}
	a := coo.ToCSC(false)
	f, err := Compute(a, false)
	if err != nil {
		t.Fatal(err)
	}
	if f.NumBlocks() != 1 {
		t.Fatalf("blocks = %d, want 1", f.NumBlocks())
	}
}

func TestTwoComponentChain(t *testing.T) {
	// Blocks {0,1} (2-cycle) and {2,3} (2-cycle), coupling 0 -> 2 only.
	coo := sparse.NewCOO(4, 4, 10)
	for i := 0; i < 4; i++ {
		coo.Add(i, i, 1)
	}
	coo.Add(0, 1, 1)
	coo.Add(1, 0, 1)
	coo.Add(2, 3, 1)
	coo.Add(3, 2, 1)
	coo.Add(0, 2, 1) // entry B(0,2): block of {0,1} must come first (upper)
	a := coo.ToCSC(false)
	f, err := Compute(a, false)
	if err != nil {
		t.Fatal(err)
	}
	if f.NumBlocks() != 2 {
		t.Fatalf("blocks = %d, want 2", f.NumBlocks())
	}
	b := a.Permute(f.RowPerm, f.ColPerm)
	if !isUpperBlockTriangular(b, f.BlockPtr) {
		t.Fatal("result is not upper block triangular")
	}
	for j := 0; j < 4; j++ {
		if b.At(j, j) == 0 {
			t.Fatal("zero diagonal after BTF")
		}
	}
}

func randBTFable(rng *rand.Rand, n int, density float64) *sparse.CSC {
	coo := sparse.NewCOO(n, n, 4*n)
	planted := rng.Perm(n)
	for j := 0; j < n; j++ {
		coo.Add(planted[j], j, 1+rng.Float64())
	}
	for k := 0; k < int(density*float64(n*n)); k++ {
		coo.Add(rng.Intn(n), rng.Intn(n), rng.NormFloat64())
	}
	return coo.ToCSC(false)
}

func TestBTFPropertyRandom(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(80)
		a := randBTFable(rng, n, 0.05)
		form, err := Compute(a, seed%2 == 0)
		if err != nil {
			return false
		}
		if !sparse.IsPerm(form.RowPerm) || !sparse.IsPerm(form.ColPerm) {
			return false
		}
		if form.BlockPtr[0] != 0 || form.BlockPtr[form.NumBlocks()] != n {
			return false
		}
		b := a.Permute(form.RowPerm, form.ColPerm)
		if !isUpperBlockTriangular(b, form.BlockPtr) {
			return false
		}
		for j := 0; j < n; j++ {
			if b.At(j, j) == 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestPercentInSmallBlocks(t *testing.T) {
	f := &Form{BlockPtr: []int{0, 1, 2, 10}}
	got := f.PercentInSmallBlocks(5)
	if got != 20 {
		t.Fatalf("PercentInSmallBlocks = %v, want 20", got)
	}
}

func TestSingularBTF(t *testing.T) {
	coo := sparse.NewCOO(3, 3, 2)
	coo.Add(0, 0, 1)
	coo.Add(1, 1, 1) // column 2 empty
	if _, err := Compute(coo.ToCSC(false), false); err == nil {
		t.Fatal("expected structural singularity error")
	}
}

// BenchmarkCompute profiles the front end's allocation behaviour: the
// pooled variant reuses one workspace across calls (the Analyze serving
// pattern), the unpooled one allocates per call as the front end used to.
func BenchmarkCompute(b *testing.B) {
	a := randBTFable(rand.New(rand.NewSource(1)), 1500, 0.002)
	b.Run("pooled", func(b *testing.B) {
		b.ReportAllocs()
		ws := NewWorkspace()
		for i := 0; i < b.N; i++ {
			if _, err := ComputeWith(a, true, ws); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("unpooled", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := Compute(a, true); err != nil {
				b.Fatal(err)
			}
		}
	})
}
