package core

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/faultinject"
	"repro/internal/sparse"
	"repro/internal/trace"
)

// ndRefactor is the reusable state of a fine-ND block's in-place
// refactorization sweep, built once on the first Refactor: flags is the
// resettable epoch variant of the point-to-point Signals fabric, so
// repeated sweeps allocate no synchronization state.
//
// Everything else the sweep needs is shared with the fresh-factorization
// path on the ndNum itself — the input-block entry maps (aSrc) and the
// per-worker workspaces (fws/facc) and reduction gather buffers
// (flows/fups); the two sweeps are mutually exclusive by contract, so one
// worker-indexed pool serves both.
type ndRefactor struct {
	flags *epochBlockFlags

	// lastContended snapshots the flag fabric's cumulative contended-wait
	// counter so each sweep can report its own SyncWaits delta; lastWaitNs
	// does the same for the blocked-wait nanoseconds.
	lastContended int64
	lastWaitNs    int64
}

// ensureRefactorState builds the in-place refactor state for this ND block,
// whose rows/columns occupy [r0, r0+n) of the permuted matrix perm (kept as
// a parameter for interface stability; the input hierarchy and its gather
// maps already live on the ndNum).
func (num *ndNum) ensureRefactorState(perm *sparse.CSC, r0 int) {
	if num.re != nil {
		num.re.flags.Bind(num.opts.ctl)
		return
	}
	num.re = &ndRefactor{flags: newEpochBlockFlags(num.sym.nb)}
	num.re.flags.Bind(num.opts.ctl)
}

// refactorInPlace refreshes every numeric value of the 2D factorization for
// a same-pattern matrix whose values now live in perm (the globally
// permuted matrix; this block occupies [r0, r0+n)). Pivot sequences and all
// block patterns are reused; in steady state the sweep performs no
// allocation. On error (a reused pivot drifted to zero) the values are left
// partially refreshed — the caller falls back to a fresh factorND.
func (num *ndNum) refactorInPlace(perm *sparse.CSC, r0 int) error {
	s := num.sym
	for i := 0; i < s.nb; i++ {
		for j, src := range num.aSrc[i] {
			if src != nil {
				sparse.ExtractBlockInto(num.a[i][j], perm, src)
			}
		}
	}
	return num.refactorSweep(perm, r0, nil)
}

// refactorSweep runs the in-place refactorization of this block's 2D
// hierarchy. st, when non-nil, carries the sweep's changed-kernel matrix
// (st.chg, nb×nb row major) and per-node first-dirty columns (st.first):
// only kernels whose chg entry is true are rerun — clean kernels keep
// their factored values and their completion flags are pre-armed for the
// epoch, so dirty kernels still synchronize point-to-point exactly as the
// full sweep does — and leaf kernels, which have no reduction terms,
// restrict their refresh to the dirty column suffix. The caller is
// responsible for having regathered the input blocks that feed dirty
// kernels (the full-sweep wrapper refactorInPlace gathers everything; the
// incremental layer gathers per changed column).
func (num *ndNum) refactorSweep(perm *sparse.CSC, r0 int, st *ndIncState) error {
	num.ensureRefactorState(perm, r0)
	re := num.re
	s := num.sym
	re.flags.Reset()
	if st != nil {
		for i := 0; i < s.nb; i++ {
			row := st.chg[i*s.nb : (i+1)*s.nb]
			for j, c := range row {
				if !c {
					re.flags.set(i, j)
				}
			}
		}
	}
	num.firstErr = nil
	for t := range num.phaseDur {
		num.phaseDur[t] = num.phaseDur[t][:0]
	}
	num.rec = num.opts.Trace
	if st == nil {
		num.phase = trace.PhaseRefactor
	} else {
		num.phase = trace.PhasePartial
	}
	num.resetWaitAccounting()
	if s.p == 1 {
		num.refactorWorker(0, st)
	} else {
		var wg sync.WaitGroup
		for t := 0; t < s.p; t++ {
			wg.Add(1)
			go func(t int) {
				// Panic isolation: record the panic and fail the refactor
				// flag fabric so cooperating siblings abort their waits; the
				// WaitGroup is the join, so nothing else needs releasing.
				defer wg.Done()
				defer func() {
					if r := recover(); r != nil {
						num.failRefactor(panicError(r))
					}
				}()
				num.refactorWorker(t, st)
			}(t)
		}
		wg.Wait()
	}
	total := re.flags.Contended()
	num.SyncWaits = total - re.lastContended
	re.lastContended = total
	waitTotal := re.flags.WaitNanos()
	num.SyncWaitNs = waitTotal - re.lastWaitNs
	re.lastWaitNs = waitTotal
	if num.firstErr == nil {
		if ctl := num.opts.ctl; ctl != nil && ctl.Canceled() {
			num.firstErr = errSweepAborted
		}
	}
	return num.firstErr
}

func (num *ndNum) failRefactor(err error) {
	num.errMu.Lock()
	if num.firstErr == nil {
		num.firstErr = err
	}
	num.errMu.Unlock()
	num.re.flags.fail()
}

// refactorWorker runs thread t's static schedule of the in-place sweep —
// the same dependency structure as worker, with every kernel replaced by
// its fixed-pattern value refresh and every synchronization point on the
// resettable epoch flags (refactorization always uses point-to-point
// synchronization; the barrier ablation concerns first factorization).
// Compute time lands in phaseDur exactly like the factor path, so the
// simulated-makespan model covers refactorization too. st, when non-nil,
// selects the kernels to rerun (nil reruns everything); skipped kernels
// keep their values and rely on the driver's pre-armed flags, and the
// phase-duration appends stay unconditional so the makespan model's phase
// alignment across threads survives partial sweeps.
//
// Per-column granularity at the leaves: leaf kernels consume no reduction,
// so when the change set first touches node v at column st.first[v], the
// leaf diagonal refactors from that column (factor column k depends only
// on input columns up to k and earlier factor columns), leaf lower blocks
// refresh from it (output column c reads input column c, factor column c
// and earlier output columns, none of which changed before the first dirty
// column), and leaf upper blocks refresh from the target column's first
// dirty column provided the leaf factor itself did not change this sweep
// (each upper column reads the whole leaf L).
func (num *ndNum) refactorWorker(t int, st *ndIncState) {
	num.opts.Inject.WorkerPanic(faultinject.SweepND, t)
	s := num.sym
	re := num.re
	leaf := s.tree.Leaves[t]
	ws, _, acc := num.workerScratch(t)
	live := func(i, j int) bool { return st == nil || st.chg[i*s.nb+j] }
	firstOf := func(j int) int {
		if st == nil {
			return 0
		}
		return st.first[j]
	}
	rec := num.rec
	var waitMark int64
	if rec != nil {
		defer num.flushWait(t, &waitMark)
	}
	// record emits one trace event for a just-timed kernel span, carrying
	// the blocked wait accumulated since the previous event and the kernel
	// kind the span ran on (dense refresh, supernodal panel, or sparse).
	record := func(d time.Duration, kind trace.Kind) {
		if rec == nil {
			return
		}
		end := rec.Now()
		rec.Record(trace.Event{
			Start:  end - d.Nanoseconds(),
			End:    end,
			Wait:   num.fwait[t] - waitMark,
			Worker: trace.NDWorker(num.blk, t),
			Block:  int32(num.blk),
			Kind:   kind,
			Phase:  num.phase,
		})
		waitMark = num.fwait[t]
	}
	var busy float64

	// ---- treelevel -1: refresh the leaf diagonal and its lower blocks.
	// Kernel dispatch must mirror the fresh path exactly (dense-tagged →
	// dense refresh, supernodal → panel refresh, else sparse): both sides
	// of the choice depend only on Analyze-time state, so partial and full
	// sweeps route every kernel identically and stay bitwise-comparable.
	t0 := time.Now()
	var err error
	kind := trace.KindNDKernel
	if live(leaf, leaf) {
		switch {
		case num.useDense(leaf, leaf):
			kind = trace.KindDenseRefresh
			num.denseHits.Add(1)
			if st == nil {
				err = num.diag[leaf].RefactorDense(num.a[leaf][leaf], num.denseWS(t))
			} else {
				b0, b1 := s.blockRange(leaf)
				err = num.diag[leaf].RefactorDenseSelective(num.a[leaf][leaf], num.denseWS(t),
					st.colStamp[b0:b1], st.epoch, st.rerun[b0:b1])
			}
		case num.diag[leaf].Snodes != nil:
			kind = trace.KindSnodeKernel
			num.snHits.Add(1)
			if st == nil {
				err = num.diag[leaf].RefactorSupernodal(num.a[leaf][leaf], ws, num.denseWS(t))
			} else {
				b0, b1 := s.blockRange(leaf)
				err = num.diag[leaf].RefactorSupernodalSelective(num.a[leaf][leaf], ws, num.denseWS(t),
					st.colStamp[b0:b1], st.epoch, st.rerun[b0:b1])
			}
		default:
			if st == nil {
				err = num.diag[leaf].Refactor(num.a[leaf][leaf], ws)
			} else {
				// Selective per-column refresh: only the closure of the leaf's
				// dirty columns under the factor's own column dependencies
				// reruns (a leaf diagonal consumes no reduction, so the input
				// stamps tell the whole story).
				b0, b1 := s.blockRange(leaf)
				err = num.diag[leaf].RefactorSelective(num.a[leaf][leaf], ws,
					st.colStamp[b0:b1], st.epoch, st.rerun[b0:b1])
			}
		}
		if err == nil {
			re.flags.set(leaf, leaf)
		}
	}
	if err == nil {
		for _, i := range s.ancestors[leaf] {
			if live(i, leaf) {
				if num.useDense(i, leaf) && num.useDense(leaf, leaf) {
					num.denseHits.Add(1)
					num.diag[leaf].DenseLowerRefactorFrom(num.lower[i][leaf], num.a[i][leaf], firstOf(leaf))
				} else {
					num.diag[leaf].RefactorLowerBlockFrom(num.lower[i][leaf], num.a[i][leaf], acc, firstOf(leaf))
				}
				re.flags.set(i, leaf)
			}
		}
	}
	d := time.Since(t0)
	busy += d.Seconds()
	record(d, kind)
	num.phaseDur[t] = append(num.phaseDur[t], busy)
	busy = 0
	if err != nil {
		num.failRefactor(fmt.Errorf("core: nd refactor diag block %d: %w", leaf, err))
		return
	}
	if re.flags.Aborted() {
		return
	}

	// ---- separator columns, bottom-up (the paper's slevel loop).
	for slevel := 1; slevel <= s.maxH; slevel++ {
		j := ancestorAtHeight(s, leaf, slevel)
		// Step A: my leaf's upper block U_{leaf,j}.
		if live(leaf, j) {
			k0 := 0
			if st != nil && !st.chg[leaf*s.nb+leaf] {
				k0 = st.first[j]
			}
			t0 = time.Now()
			kind = trace.KindNDKernel
			if num.useDense(leaf, j) && num.useDense(leaf, leaf) {
				kind = trace.KindDenseRefresh
				num.denseHits.Add(1)
				num.diag[leaf].DenseUpperRefactorFrom(num.upper[leaf][j], num.a[leaf][j], k0)
			} else {
				num.diag[leaf].RefactorUpperBlockFrom(num.upper[leaf][j], num.a[leaf][j], ws, k0)
			}
			re.flags.set(leaf, j)
			d = time.Since(t0)
			busy += d.Seconds()
			record(d, kind)
		}
		num.phaseDur[t] = append(num.phaseDur[t], busy)
		busy = 0
		if re.flags.Aborted() {
			return
		}
		// Step B: internal path nodes I owned by this thread.
		for h := 1; h < slevel; h++ {
			k := ancestorAtHeight(s, leaf, h)
			if s.owner[k] == t && live(k, j) {
				lows, ups, ok := num.gatherReductionOn(re.flags, k, j, t)
				if !ok {
					num.phaseDur[t] = append(num.phaseDur[t], busy)
					return
				}
				t0 = time.Now()
				kind = trace.KindNDKernel
				if num.useDense(k, j) {
					kind = trace.KindDenseRefresh
				}
				b := num.a[k][j]
				if len(lows) > 0 {
					if num.useDense(k, j) {
						// num.red[k][j] is fully dense (built by the fresh
						// sweep's reduceBlockDense), so FillDense recycles it
						// in place: same accumulation, zero allocation.
						num.denseHits.Add(1)
						reduceBlockDense(num.a[k][j], lows, ups, num.red[k][j], num.denseWS(t))
					} else {
						reduceBlockInto(num.red[k][j], num.a[k][j], lows, ups, acc)
					}
					b = num.red[k][j]
				}
				if num.useDense(k, j) && num.useDense(k, k) {
					num.denseHits.Add(1)
					num.diag[k].DenseUpperRefactorFrom(num.upper[k][j], b, 0)
				} else {
					num.diag[k].RefactorUpperBlock(num.upper[k][j], b, ws)
				}
				re.flags.set(k, j)
				d = time.Since(t0)
				busy += d.Seconds()
				record(d, kind)
			}
			num.phaseDur[t] = append(num.phaseDur[t], busy)
			busy = 0
			if re.flags.Aborted() {
				return
			}
		}
		// Step C: the diagonal LU_jj by the owner of j.
		if s.owner[j] == t && live(j, j) {
			lows, ups, ok := num.gatherReductionOn(re.flags, j, j, t)
			if !ok {
				num.phaseDur[t] = append(num.phaseDur[t], busy)
				return
			}
			t0 = time.Now()
			kind = trace.KindNDKernel
			b := num.a[j][j]
			if len(lows) > 0 {
				if num.useDense(j, j) {
					num.denseHits.Add(1)
					reduceBlockDense(num.a[j][j], lows, ups, num.red[j][j], num.denseWS(t))
				} else {
					reduceBlockInto(num.red[j][j], num.a[j][j], lows, ups, acc)
				}
				b = num.red[j][j]
			}
			switch {
			case num.useDense(j, j):
				// The reduce above committed its panel into red before the
				// dense refactor takes its own, so the one-live-panel rule
				// of the pooled workspace holds.
				kind = trace.KindDenseRefresh
				num.denseHits.Add(1)
				err = num.diag[j].RefactorDense(b, num.denseWS(t))
			case num.diag[j].Snodes != nil:
				kind = trace.KindSnodeKernel
				num.snHits.Add(1)
				err = num.diag[j].RefactorSupernodal(b, ws, num.denseWS(t))
			default:
				err = num.diag[j].Refactor(b, ws)
			}
			if err == nil {
				re.flags.set(j, j)
			}
			d = time.Since(t0)
			busy += d.Seconds()
			record(d, kind)
			if err != nil {
				num.phaseDur[t] = append(num.phaseDur[t], busy)
				num.failRefactor(fmt.Errorf("core: nd refactor diag block %d: %w", j, err))
				return
			}
		}
		num.phaseDur[t] = append(num.phaseDur[t], busy)
		busy = 0
		if re.flags.Aborted() {
			return
		}
		// Step D: lower blocks L_ij for ancestors i of j, round-robin over
		// the threads of subtree(j).
		if !num.waitOn(re.flags, j, j, t) {
			return
		}
		nsub := s.leafHi[j] - s.leafLo[j] + 1
		for idx, i := range s.ancestors[j] {
			if idx%nsub != t-s.leafLo[j] {
				continue
			}
			if !live(i, j) {
				continue
			}
			lows, ups, ok := num.gatherRowReductionOn(re.flags, i, j, t)
			if !ok {
				num.phaseDur[t] = append(num.phaseDur[t], busy)
				return
			}
			t0 = time.Now()
			kind = trace.KindNDKernel
			if num.useDense(i, j) {
				kind = trace.KindDenseRefresh
			}
			b := num.a[i][j]
			if len(lows) > 0 {
				if num.useDense(i, j) {
					num.denseHits.Add(1)
					reduceBlockDense(num.a[i][j], lows, ups, num.red[i][j], num.denseWS(t))
				} else {
					reduceBlockInto(num.red[i][j], num.a[i][j], lows, ups, acc)
				}
				b = num.red[i][j]
			}
			if num.useDense(i, j) && num.useDense(j, j) {
				num.denseHits.Add(1)
				num.diag[j].DenseLowerRefactorFrom(num.lower[i][j], b, 0)
			} else {
				num.diag[j].RefactorLowerBlock(num.lower[i][j], b, acc)
			}
			re.flags.set(i, j)
			d = time.Since(t0)
			busy += d.Seconds()
			record(d, kind)
		}
		num.phaseDur[t] = append(num.phaseDur[t], busy)
		busy = 0
		if re.flags.Aborted() {
			return
		}
	}
}

// reduceBlockInto refreshes dst = A0 − Σ_t lows[t]·ups[t] over dst's fixed
// structural pattern (built by reduceBlock at factorization time from the
// same contributing patterns), so every touched accumulator index lies in
// dst's column pattern and comes back clean. Zero allocation.
func reduceBlockInto(dst, a0 *sparse.CSC, lows, ups []*sparse.CSC, acc []float64) {
	for c := 0; c < dst.N; c++ {
		for p := a0.Colptr[c]; p < a0.Colptr[c+1]; p++ {
			acc[a0.Rowidx[p]] += a0.Values[p]
		}
		for t := range lows {
			lo, up := lows[t], ups[t]
			for p := up.Colptr[c]; p < up.Colptr[c+1]; p++ {
				k := up.Rowidx[p]
				ukc := up.Values[p]
				if ukc == 0 {
					continue // refreshed value drifted to zero: no contribution
				}
				for q := lo.Colptr[k]; q < lo.Colptr[k+1]; q++ {
					acc[lo.Rowidx[q]] -= lo.Values[q] * ukc
				}
			}
		}
		for p := dst.Colptr[c]; p < dst.Colptr[c+1]; p++ {
			i := dst.Rowidx[p]
			dst.Values[p] = acc[i]
			acc[i] = 0
		}
	}
}
