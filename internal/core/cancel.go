package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// This file is the cooperative-cancellation and stall-watchdog layer of the
// numeric engine. Every parallel sweep (fresh factor, refactor, partial
// refactor, parallel solve) shares one design:
//
//   - a SweepControl carried by the sweep's owner (the Numeric, or the
//     trisolve workspace) holds a cancel flag every synchronization fabric
//     polls on its blocked slow path, a progress counter every completion
//     signal bumps, and the registry of ablation barriers that must be
//     broken to release barrier-mode waiters;
//   - a SweepMonitor goroutine — armed only when the caller supplied a
//     cancellable context or a positive Options.StallTimeout — watches the
//     context and the progress counter, and cancels the sweep when the
//     context fires (ErrCanceled/ErrDeadlineExceeded) or when no completion
//     signal lands for a full stall timeout (ErrStalled, naming the first
//     pending block and its worker lane);
//   - workers poll the cancel flag between blocks (and, inside long
//     Gilbert–Peierls kernels, every few hundred columns via gp.Options.Poll),
//     so a cancelled sweep unwinds through the same poisoned-but-recoverable
//     machinery as a worker panic: the driver returns the typed error, the
//     numeric is poisoned, and the next refresh recovers.
//
// Cancellation is cooperative: a worker that is truly wedged inside a
// kernel (the faultinject.PointStall chaos case) cannot be pre-empted, so a
// cancelled factor/refactor sweep returns early while the straggler drains
// in the background — sweepControl.drain() at every sweep entry waits for
// such stragglers before any shared state is touched again. Parallel solves
// instead always join fully, because their workers write into the
// caller-owned right-hand side. When every check lands on a blocked slow
// path or is amortized per block, the zero-allocation and ~0-overhead
// contracts of the uncancelled fast paths survive untouched.

// ErrCanceled is returned when a context-accepting entry point's context is
// cancelled mid-sweep. It wraps context.Canceled, so callers can match
// either error.
var ErrCanceled = fmt.Errorf("basker: operation canceled: %w", context.Canceled)

// ErrDeadlineExceeded is returned when a context deadline fires mid-sweep.
// It wraps context.DeadlineExceeded.
var ErrDeadlineExceeded = fmt.Errorf("basker: deadline exceeded: %w", context.DeadlineExceeded)

// ErrStalled is returned when the stall watchdog aborts a sweep that made
// no progress for Options.StallTimeout. The concrete error is a *StallError
// carrying the sweep name and the stalled block/lane; match the class with
// errors.Is(err, ErrStalled) and the diagnostics with errors.As.
var ErrStalled = errors.New("basker: sweep stalled")

// errSweepAborted is the internal marker a cancelled worker records for its
// block; the driver discards it in favour of the monitor's typed error.
var errSweepAborted = errors.New("core: sweep aborted by cancellation")

// StallError reports a sweep the watchdog had to abort: no completion
// signal landed for Idle (at least the configured StallTimeout). Block is
// the first coarse block still pending when the watchdog fired and Lane the
// fine-BTF worker that owns it (-1 when the block belongs to a cooperative
// fine-ND team, or when no pending block could be named).
type StallError struct {
	Sweep string
	Block int
	Lane  int
	Idle  time.Duration
}

func (e *StallError) Error() string {
	return fmt.Sprintf("basker: %s sweep stalled: no progress for %v (block %d, lane %d)", e.Sweep, e.Idle, e.Block, e.Lane)
}

// Unwrap lets errors.Is(err, ErrStalled) match the class.
func (e *StallError) Unwrap() error { return ErrStalled }

// CancelCause maps a fired context onto the library's typed errors:
// ErrDeadlineExceeded for an expired deadline, ErrCanceled otherwise.
func CancelCause(ctx context.Context) error {
	if errors.Is(ctx.Err(), context.DeadlineExceeded) {
		return ErrDeadlineExceeded
	}
	return ErrCanceled
}

// MonitorArmed reports whether a sweep monitor would actually run for this
// context/stall-timeout pair — the gate the drivers use so the unarmed fast
// path (context.Background(), no StallTimeout) allocates nothing.
func MonitorArmed(ctx context.Context, stall time.Duration) bool {
	return (ctx != nil && ctx.Done() != nil) || stall > 0
}

// SweepControl is the shared cancellation fabric of one sweep owner. All
// EpochSignals bound to it poll its cancel flag on their blocked slow path
// and bump its progress counter on every Set; ablation barriers register so
// cancellation can break them (a condition-variable wait cannot poll).
//
// The control is single-sweep-at-a-time, like the fabrics it serves:
// BeginSweep must not race any worker of a previous sweep (the drivers
// drain stragglers first).
type SweepControl struct {
	flag     atomic.Bool
	progress atomic.Uint64
	// inflight counts live worker goroutines across sweeps, so a sweep
	// that returned early (cancel/stall) can be drained by the next one
	// before any shared state is reset.
	inflight atomic.Int64

	// cancelCh is the channel face of the cancel flag for the one-shot
	// Signals fabric (whose waits block in a select). Allocated only for
	// armed sweeps; written in BeginSweep, strictly before workers launch.
	cancelCh chan struct{}

	// armed mirrors the BeginSweep argument: only monitored sweeps need
	// the progress heartbeat, so bound fabrics skip the per-block atomic
	// add entirely on unarmed sweeps (a plain read — BeginSweep writes it
	// strictly before workers launch, after stragglers drained).
	armed bool

	mu       sync.Mutex
	barriers []*barrier
}

// BeginSweep re-arms the control for a new sweep. armed selects whether a
// monitor will watch this sweep (only then is the Signals-facing cancel
// channel allocated). Callers must have drained every straggler first.
func (c *SweepControl) BeginSweep(armed bool) {
	c.flag.Store(false)
	c.armed = armed
	if armed {
		c.cancelCh = make(chan struct{})
	} else {
		c.cancelCh = nil
	}
}

// Cancel aborts the current sweep: every bound fabric's blocked wait
// returns false, the Signals cancel channel fires, and every registered
// ablation barrier is broken with the cancel cause.
func (c *SweepControl) Cancel() {
	c.flag.Store(true)
	if c.cancelCh != nil {
		close(c.cancelCh)
	}
	c.mu.Lock()
	for _, b := range c.barriers {
		b.breakCanceled()
	}
	c.mu.Unlock()
}

// Canceled reports whether the current sweep has been cancelled.
func (c *SweepControl) Canceled() bool { return c.flag.Load() }

// CancelChan exposes the channel face of the cancel flag for one-shot
// channel-based waiters (nil on unarmed sweeps; a nil channel never fires).
func (c *SweepControl) CancelChan() <-chan struct{} { return c.cancelCh }

// Poll adapts the cancel flag to the gp.Options.Poll hook: long kernels
// call it every few hundred columns and unwind on a non-nil return.
func (c *SweepControl) Poll() error {
	if c.flag.Load() {
		return errSweepAborted
	}
	return nil
}

// registerBarrier adds an ablation barrier to the set Cancel breaks.
// Barriers persist as long as their ND engine, so each registers once.
func (c *SweepControl) registerBarrier(b *barrier) {
	c.mu.Lock()
	c.barriers = append(c.barriers, b)
	c.mu.Unlock()
}

// addWorker/workerDone bracket every launched sweep goroutine, so drain can
// wait for true quiescence after an early (cancelled/stalled) return.
func (c *SweepControl) addWorker()  { c.inflight.Add(1) }
func (c *SweepControl) workerDone() { c.inflight.Add(-1) }

// drain blocks until every worker goroutine of previous sweeps has exited.
// The hot path is one atomic load; the spin/sleep backoff only runs after a
// sweep returned early, while its straggler finishes in the background.
func (c *SweepControl) drain() {
	if c.inflight.Load() == 0 {
		return
	}
	for spins := 0; c.inflight.Load() != 0; spins++ {
		if spins < 128 {
			runtime.Gosched()
		} else {
			time.Sleep(5 * time.Microsecond)
		}
	}
}

// Progress reports the cumulative completion-signal count of the bound
// fabrics — the heartbeat the stall watchdog samples.
func (c *SweepControl) Progress() uint64 { return c.progress.Load() }

// Step bumps the progress heartbeat directly, for sweeps that complete
// work outside an EpochSignals fabric (the panel-solve path steps once per
// finished panel).
func (c *SweepControl) Step() { c.progress.Add(1) }

// MonitorSpec configures one sweep's monitor.
type MonitorSpec struct {
	// Ctx is the caller's context; a nil or never-cancellable context arms
	// no context watching.
	Ctx context.Context
	// Stall is the no-progress budget; 0 disables the watchdog.
	Stall time.Duration
	// Sweep names the sweep in StallError diagnostics ("factor",
	// "refactor", "partial refactor", "solve").
	Sweep string
	// Ctl is the sweep's cancellation fabric.
	Ctl *SweepControl
	// Pending, called when the watchdog fires, names the first pending
	// block and its worker lane ((-1, -1) when unknown). It runs on the
	// monitor goroutine concurrently with workers, so it must only read
	// sweep-stable state and atomics.
	Pending func() (block, lane int)
}

// SweepMonitor watches one sweep from a side goroutine and cancels it when
// the caller's context fires or progress stops. Drivers must Stop the
// monitor on every return path and surface the error it reports.
type SweepMonitor struct {
	spec MonitorSpec
	err  error
	quit chan struct{}
	done chan struct{}
	once sync.Once
}

// StartSweepMonitor launches a monitor for the sweep described by spec,
// or returns nil when neither the context nor a stall timeout arms one
// (callers should gate with MonitorArmed to keep the unarmed path
// allocation-free). The spec's control must already be BeginSweep-armed.
func StartSweepMonitor(spec MonitorSpec) *SweepMonitor {
	if !MonitorArmed(spec.Ctx, spec.Stall) {
		return nil
	}
	m := &SweepMonitor{spec: spec, quit: make(chan struct{}), done: make(chan struct{})}
	go m.run()
	return m
}

func (m *SweepMonitor) run() {
	defer close(m.done)
	var ctxDone <-chan struct{}
	if m.spec.Ctx != nil {
		ctxDone = m.spec.Ctx.Done()
	}
	var stallC <-chan time.Time
	var timer *time.Timer
	if m.spec.Stall > 0 {
		// Sampling at half the budget bounds detection latency by 1.5× the
		// configured timeout — inside the documented 2× guarantee.
		timer = time.NewTimer(m.spec.Stall / 2)
		defer timer.Stop()
		stallC = timer.C
	}
	last := m.spec.Ctl.Progress()
	lastChange := time.Now()
	for {
		select {
		case <-m.quit:
			return
		case <-ctxDone:
			m.err = CancelCause(m.spec.Ctx)
			m.spec.Ctl.Cancel()
			return
		case <-stallC:
			now := time.Now()
			if cur := m.spec.Ctl.Progress(); cur != last {
				last = cur
				lastChange = now
			} else if idle := now.Sub(lastChange); idle >= m.spec.Stall {
				blk, lane := -1, -1
				if m.spec.Pending != nil {
					blk, lane = m.spec.Pending()
				}
				m.err = &StallError{Sweep: m.spec.Sweep, Block: blk, Lane: lane, Idle: idle}
				m.spec.Ctl.Cancel()
				return
			}
			timer.Reset(m.spec.Stall / 2)
		}
	}
}

// Stop shuts the monitor down, waits for its goroutine to exit, and
// returns the typed cancellation error if the monitor fired (nil
// otherwise). Safe on a nil monitor, so drivers can call it
// unconditionally.
func (m *SweepMonitor) Stop() error {
	if m == nil {
		return nil
	}
	m.once.Do(func() { close(m.quit) })
	<-m.done
	return m.err
}
