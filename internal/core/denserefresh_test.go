package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/matgen"
	"repro/internal/sparse"
)

// snodeCircuit builds a moderate-fill 3D-stencil circuit whose ND leaf
// diagonals sit below the dense-tag threshold but carry elimination-tree
// supernodes — the regime the supernodal panels target.
func snodeCircuit(n int, seed int64) *sparse.CSC {
	return matgen.Circuit(matgen.CircuitParams{
		N: n, BTFPct: 0, Blocks: 1 + n/50,
		Core: matgen.CoreGrid3D, ExtraDensity: 0.2, Seed: seed,
	})
}

// TestSupernodeAblationParity: the supernodal path must be live on the
// stencil circuits (detected at Analyze, hit at numeric time, on both the
// fresh and refresh sweeps), the NoSupernodes ablation must kill it
// completely, and both configurations must solve to equivalent residuals.
func TestSupernodeAblationParity(t *testing.T) {
	a := snodeCircuit(900, 91)
	opts := optsWithThreads(4)
	sym, err := Analyze(a, opts)
	if err != nil {
		t.Fatal(err)
	}
	if sym.Supernodes() == 0 {
		t.Fatal("no supernodes detected on a 3D-stencil circuit; parity sweep would be vacuous")
	}
	num, err := Factor(a, sym)
	if err != nil {
		t.Fatal(err)
	}
	freshHits := num.SupernodeHits()
	if freshHits == 0 {
		t.Fatal("supernodes detected but the fresh sweep never hit the supernodal path")
	}
	if err := num.Refactor(a); err != nil {
		t.Fatal(err)
	}
	if num.SupernodeHits() <= freshHits {
		t.Fatalf("refresh sweep did not route through the supernodal path (hits %d -> %d)",
			freshHits, num.SupernodeHits())
	}

	oopts := opts
	oopts.NoSupernodes = true
	osym, err := Analyze(a, oopts)
	if err != nil {
		t.Fatal(err)
	}
	if osym.Supernodes() != 0 {
		t.Fatalf("NoSupernodes still detects %d supernodes", osym.Supernodes())
	}
	onum, err := Factor(a, osym)
	if err != nil {
		t.Fatal(err)
	}
	if onum.SupernodeHits() != 0 {
		t.Fatalf("NoSupernodes numeric took %d supernodal hits", onum.SupernodeHits())
	}
	sres := relResidual(a, num, 91)
	ores := relResidual(a, onum, 91)
	if math.IsNaN(sres) || (sres > 1e-8 && sres > 100*ores) {
		t.Fatalf("supernodal residual %.3e vs ablation %.3e", sres, ores)
	}
	solveCheck(t, a, num, 1e-7)

	// Relaxation bound monotonicity is not guaranteed, but a wider bound
	// must still factor and solve correctly.
	wopts := opts
	wopts.SupernodeRelax = 16
	wnum, err := FactorDirect(a, wopts)
	if err != nil {
		t.Fatal(err)
	}
	solveCheck(t, a, wnum, 1e-7)
}

// TestRefactorPartialSupernodalBitwise locks the partial-vs-full bitwise
// contract down on supernodal numerics, exactly as the dense-ND variant
// does for dense-built blocks: supernode-granular selective refresh may
// over-refresh clean columns of a dirty supernode, which determinism makes
// bitwise invisible.
func TestRefactorPartialSupernodalBitwise(t *testing.T) {
	base := snodeCircuit(900, 92)
	opts := optsWithThreads(4)
	sym, err := Analyze(base, opts)
	if err != nil {
		t.Fatal(err)
	}
	if sym.Supernodes() == 0 {
		t.Fatal("no supernodes on the test matrix; bitwise sweep would be vacuous")
	}
	var nums [3]*Numeric // full, partial, auto
	for i := range nums {
		if nums[i], err = Factor(base, sym); err != nil {
			t.Fatal(err)
		}
		if err := nums[i].Refactor(base); err != nil {
			t.Fatal(err)
		}
	}
	cur := base
	for step, frac := range []float64{0.002, 0.05, 0.3} {
		clustered := step%2 == 0
		cols := matgen.ChangeSet(base.N, frac, int64(13*step+5), clustered)
		next := matgen.PerturbColumns(cur, cols, step+1, 773)
		if err := nums[0].Refactor(next); err != nil {
			t.Fatalf("full refactor step %d: %v", step, err)
		}
		if err := nums[1].RefactorPartial(next, cols); err != nil {
			t.Fatalf("partial refactor step %d: %v", step, err)
		}
		if err := nums[2].RefactorAuto(next); err != nil {
			t.Fatalf("auto refactor step %d: %v", step, err)
		}
		assertSameFactors(t, nums[0], nums[1], "supernodal partial")
		assertSameFactors(t, nums[0], nums[2], "supernodal auto")
		cur = next
	}
	solveCheck(t, cur, nums[1], 1e-6)
}

// TestRefactorFillHeavyDenseRefreshBitwise is the suite-wide lockdown of
// the dense refresh sweeps: on the fill-heavy replicas the refresh path
// must actually route kernels through the dense layer, and RefactorPartial
// must stay bitwise identical to the full Refactor through it.
func TestRefactorFillHeavyDenseRefreshBitwise(t *testing.T) {
	fillHeavy := map[string]bool{"G2_Circuit": true, "twotone": true, "onetone1": true}
	for _, m := range matgen.TableISuite(0.3) {
		if !fillHeavy[m.Name] {
			continue
		}
		m := m
		t.Run(m.Name, func(t *testing.T) {
			base := m.Gen()
			sym, err := Analyze(base, optsWithThreads(4))
			if err != nil {
				t.Fatal(err)
			}
			if sym.DenseKernels() == 0 {
				t.Fatalf("%s tagged no dense kernels; dense-refresh sweep would be vacuous", m.Name)
			}
			var nums [2]*Numeric // full, partial
			for i := range nums {
				if nums[i], err = Factor(base, sym); err != nil {
					t.Fatal(err)
				}
				if err := nums[i].Refactor(base); err != nil {
					t.Fatal(err)
				}
			}
			preHits := nums[0].DenseKernelHits()
			cols := matgen.ChangeSet(base.N, 0.05, 19, true)
			next := matgen.PerturbColumns(base, cols, 1, 881)
			if err := nums[0].Refactor(next); err != nil {
				t.Fatal(err)
			}
			if nums[0].DenseKernelHits() <= preHits {
				t.Fatal("refresh sweep did not route any kernel through the dense layer")
			}
			if err := nums[1].RefactorPartial(next, cols); err != nil {
				t.Fatal(err)
			}
			assertSameFactors(t, nums[0], nums[1], "fill-heavy dense refresh")
			solveCheck(t, next, nums[1], 1e-6)
		})
	}
}

// TestRefactorDenseRefreshZeroAlloc pins the tentpole's allocation
// guarantee: steady-state Refactor and RefactorPartial stay at zero
// allocs/op when the sweep dispatches dense panel refreshes (dense-tagged
// diagonal) and supernodal panel refreshes (stencil leaves) — the pooled
// panels and in-place TRSM leave nothing to allocate.
func TestRefactorDenseRefreshZeroAlloc(t *testing.T) {
	cases := []struct {
		name string
		gen  func() *sparse.CSC
		ck   func(t *testing.T, sym *Symbolic, num *Numeric)
	}{
		{
			name: "dense-diag",
			gen: func() *sparse.CSC {
				rng := rand.New(rand.NewSource(93))
				return denseBlockCSC(rng, 160, 0.3)
			},
			ck: func(t *testing.T, sym *Symbolic, num *Numeric) {
				if sym.DenseKernels() == 0 {
					t.Fatal("want a dense-tagged kernel")
				}
			},
		},
		{
			name: "supernodal-leaf",
			gen:  func() *sparse.CSC { return snodeCircuit(500, 94) },
			ck: func(t *testing.T, sym *Symbolic, num *Numeric) {
				if sym.Supernodes() == 0 || num.SupernodeHits() == 0 {
					t.Fatalf("want a live supernodal leaf (detected %d, hits %d)",
						sym.Supernodes(), num.SupernodeHits())
				}
			},
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			base := tc.gen()
			sym, err := Analyze(base, optsWithThreads(1))
			if err != nil {
				t.Fatal(err)
			}
			num, err := Factor(base, sym)
			if err != nil {
				t.Fatal(err)
			}
			tc.ck(t, sym, num)
			// Perturb only the change-set columns so RefactorPartial's
			// contract (cols covers every changed column) holds.
			cols := matgen.ChangeSet(base.N, 0.02, 7, true)
			steps := make([]*sparse.CSC, 4)
			for i := range steps {
				steps[i] = matgen.PerturbColumns(base, cols, i+1, 95)
			}
			for _, s := range steps {
				if err := num.Refactor(s); err != nil {
					t.Fatal(err)
				}
				if err := num.RefactorPartial(s, cols); err != nil {
					t.Fatal(err)
				}
			}
			i := 0
			allocs := testing.AllocsPerRun(20, func() {
				i++
				if err := num.Refactor(steps[i%len(steps)]); err != nil {
					t.Fatal(err)
				}
			})
			if allocs != 0 {
				t.Fatalf("steady-state Refactor allocates: %v allocs/op", allocs)
			}
			allocs = testing.AllocsPerRun(20, func() {
				i++
				if err := num.RefactorPartial(steps[i%len(steps)], cols); err != nil {
					t.Fatal(err)
				}
			})
			if allocs != 0 {
				t.Fatalf("steady-state RefactorPartial allocates: %v allocs/op", allocs)
			}
			solveCheck(t, steps[i%len(steps)], num, 1e-7)
		})
	}
}

// TestDenseRefreshPivotDriftFallback drifts the reused pivot of a
// dense-refreshed diagonal to zero (boosting an alternative row): the
// refresh must take the per-block fresh-pivot fallback, rebuild the dense
// hierarchy, and solve; the supernodal variant must do the same.
func TestDenseRefreshPivotDriftFallback(t *testing.T) {
	cases := []struct {
		name string
		gen  func() *sparse.CSC
	}{
		{"dense-diag", func() *sparse.CSC {
			rng := rand.New(rand.NewSource(96))
			return denseBlockCSC(rng, 160, 0.3)
		}},
		{"supernodal-leaf", func() *sparse.CSC { return snodeCircuit(500, 97) }},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			base := tc.gen()
			sym, err := Analyze(base, optsWithThreads(1))
			if err != nil {
				t.Fatal(err)
			}
			num, err := Factor(base, sym)
			if err != nil {
				t.Fatal(err)
			}
			if err := num.Refactor(base); err != nil {
				t.Fatal(err)
			}
			ndBlk := -1
			for blk := 0; blk < sym.NumBlocks(); blk++ {
				if sym.IsND(blk) {
					ndBlk = blk
				}
			}
			if ndBlk < 0 {
				t.Fatal("test matrix has no ND block")
			}
			r0, _ := sym.BlockRange(ndBlk)
			old := num.nd[ndBlk]
			pivLocal := old.diag[0].P[0] // leaf node 0 starts at ND-local offset 0
			ocol := sym.ColPerm[r0]
			rowPos := make([]int, sym.N)
			for k, r := range sym.RowPerm {
				rowPos[r] = k
			}
			b0, b1 := old.sym.blockRange(0)
			drift := base.Clone()
			zeroed, boosted := false, false
			for p := drift.Colptr[ocol]; p < drift.Colptr[ocol+1]; p++ {
				k := rowPos[drift.Rowidx[p]] - r0
				if k < b0 || k >= b1 {
					continue
				}
				if k == pivLocal {
					drift.Values[p] = 0
					zeroed = true
				} else if !boosted {
					drift.Values[p] = 50
					boosted = true
				}
			}
			if !zeroed || !boosted {
				t.Fatalf("test premise broken (zeroed=%v boosted=%v)", zeroed, boosted)
			}
			before := num.PivotFallbacks()
			if err := num.Refactor(drift); err != nil {
				t.Fatalf("refactor with drifted pivot: %v", err)
			}
			if num.PivotFallbacks() <= before {
				t.Fatal("expected a recorded pivot fallback")
			}
			if num.nd[ndBlk] == old {
				t.Fatal("expected the fallback to rebuild the ND hierarchy")
			}
			// The drift matrix can be badly conditioned under
			// diagonal-preference pivoting (zeroing the pivot and spiking an
			// off-diagonal compounds threshold growth on the stencil class),
			// so judge the fallback against what it promises: parity with a
			// fresh factorization of the same matrix.
			check := func(a *sparse.CSC, label string) {
				oracle, err := FactorDirect(a, optsWithThreads(1))
				if err != nil {
					t.Fatalf("%s: fresh oracle: %v", label, err)
				}
				res := relResidual(a, num, 1)
				ores := relResidual(a, oracle, 1)
				if math.IsNaN(res) || (res > 1e-6 && res > 100*ores) {
					t.Fatalf("%s: fallback residual %.3e vs fresh oracle %.3e", label, res, ores)
				}
			}
			check(drift, "drifted refresh")
			// The next same-pattern refresh rides the refreshed pivots.
			next := matgen.TransientStep(drift, 2, 98)
			if err := num.Refactor(next); err != nil {
				t.Fatalf("refactor after fallback: %v", err)
			}
			check(next, "post-fallback refresh")
		})
	}
}
