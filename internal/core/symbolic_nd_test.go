package core

import (
	"math/rand"
	"testing"

	"repro/internal/order/nd"
	"repro/internal/sparse"
)

// buildNDFixture permutes a grid into ND form and returns the permuted
// matrix plus its symbolic structure.
func buildNDFixture(t *testing.T, k, leaves int) (*sparse.CSC, *ndSym) {
	t.Helper()
	a := grid2D(k)
	tree, err := nd.Compute(a, leaves)
	if err != nil {
		t.Fatal(err)
	}
	d := a.Permute(tree.Perm, tree.Perm)
	return d, newNDSym(tree)
}

func TestEstimateNDBasicInvariants(t *testing.T) {
	d, s := buildNDFixture(t, 16, 4)
	est := estimateND(d, s)
	for b := 0; b < s.nb; b++ {
		r0, r1 := s.blockRange(b)
		w := r1 - r0
		if w == 0 {
			continue
		}
		diag := d.ExtractBlock(r0, r1, r0, r1)
		if est.diagNnz[b] < diag.Nnz() {
			t.Errorf("block %d: diag estimate %d < input nnz %d", b, est.diagNnz[b], diag.Nnz())
		}
		if est.diagNnz[b] > 2*w*w+1 {
			t.Errorf("block %d: diag estimate %d exceeds 2·area %d", b, est.diagNnz[b], 2*w*w)
		}
	}
	// Off-diagonal estimates must be at least the input block nnz and at
	// most the block area.
	for j := 0; j < s.nb; j++ {
		c0, c1 := s.blockRange(j)
		for _, i := range s.ancestors[j] {
			a0, a1 := s.blockRange(i)
			low := d.ExtractBlock(a0, a1, c0, c1)
			if est.lowerNnz[i][j] > (a1-a0)*(c1-c0) {
				t.Errorf("lower (%d,%d) estimate exceeds area", i, j)
			}
			if low.Nnz() > 0 && est.lowerNnz[i][j] == 0 {
				t.Errorf("lower (%d,%d) estimate zero despite %d input entries", i, j, low.Nnz())
			}
		}
	}
}

func TestEstimatesReduceReallocation(t *testing.T) {
	// With estimates the numeric factorization must produce identical
	// results (they are capacity hints only).
	a := grid2D(14)
	opts := optsWithThreads(4)
	sym, err := Analyze(a, opts)
	if err != nil {
		t.Fatal(err)
	}
	for blk, ns := range sym.ndsym {
		if ns == nil {
			continue
		}
		if ns.est == nil {
			t.Fatalf("block %d missing Algorithm 3 estimates", blk)
		}
	}
	num, err := Factor(a, sym)
	if err != nil {
		t.Fatal(err)
	}
	solveCheck(t, a, num, 1e-8)
}

func TestEstimateNDDeterministic(t *testing.T) {
	d, s := buildNDFixture(t, 12, 2)
	e1 := estimateND(d, s)
	e2 := estimateND(d, s)
	for b := range e1.diagNnz {
		if e1.diagNnz[b] != e2.diagNnz[b] {
			t.Fatal("estimates are not deterministic")
		}
	}
}

func TestSolveRefinedViaCore(t *testing.T) {
	// Exercise the refinement path indirectly: a tough matrix with small
	// pivot tolerance still solves to tight residual after refinement.
	rng := rand.New(rand.NewSource(77))
	a := randCircuit(rng, 300, 0.5)
	opts := optsWithThreads(2)
	opts.PivotTol = 0.0001
	num, err := FactorDirect(a, opts)
	if err != nil {
		t.Fatal(err)
	}
	solveCheck(t, a, num, 1e-6)
}
