package core

import (
	"sync"
	"sync/atomic"
)

// blockFlags is the point-to-point synchronization fabric: one completion
// signal per 2D block of the fine-ND structure. A producing thread signals
// after its block is complete; a consuming thread waits only on the exact
// blocks it needs — the Go analogue of the paper's write-to-volatile
// point-to-point synchronization. Signals are implemented as closed
// channels so waiting goroutines consume no CPU even when the host has
// fewer cores than workers (which matters for the simulated-makespan
// timing mode described in DESIGN.md).
type blockFlags struct {
	n     int
	done  []chan struct{}
	abort chan struct{}
	once  sync.Once
	// contended counts waits that actually had to block (ablation metric).
	contended atomic.Int64
}

func newBlockFlags(nblocks int) *blockFlags {
	f := &blockFlags{
		n:     nblocks,
		done:  make([]chan struct{}, nblocks*nblocks),
		abort: make(chan struct{}),
	}
	for i := range f.done {
		f.done[i] = make(chan struct{})
	}
	return f
}

func (f *blockFlags) idx(i, j int) int { return i*f.n + j }

// set marks block (i, j) complete. Each block has exactly one producer.
func (f *blockFlags) set(i, j int) { close(f.done[f.idx(i, j)]) }

// wait blocks until block (i, j) is complete. It returns false if the
// computation has been aborted (another thread hit an error), so waiters
// can unwind instead of deadlocking.
func (f *blockFlags) wait(i, j int) bool {
	ch := f.done[f.idx(i, j)]
	select {
	case <-ch:
		return true
	default:
	}
	f.contended.Add(1)
	select {
	case <-ch:
		return true
	case <-f.abort:
		return false
	}
}

// fail aborts the whole parallel region.
func (f *blockFlags) fail() { f.once.Do(func() { close(f.abort) }) }

func (f *blockFlags) aborted() bool {
	select {
	case <-f.abort:
		return true
	default:
		return false
	}
}

// barrier is a reusable counting barrier for the SyncBarrier ablation mode.
// It deliberately models the heavyweight "rejoin everything" semantics of a
// parallel-for: every participant waits for every other at each phase.
type barrier struct {
	mu      sync.Mutex
	cond    *sync.Cond
	parties int
	count   int
	gen     int
	broken  atomic.Bool
}

func newBarrier(parties int) *barrier {
	b := &barrier{parties: parties}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// await blocks until all parties arrive. Returns false if the barrier was
// broken by an error.
func (b *barrier) await() bool {
	if b.broken.Load() {
		return false
	}
	b.mu.Lock()
	gen := b.gen
	b.count++
	if b.count == b.parties {
		b.count = 0
		b.gen++
		b.mu.Unlock()
		b.cond.Broadcast()
		return !b.broken.Load()
	}
	for gen == b.gen && !b.broken.Load() {
		b.cond.Wait()
	}
	b.mu.Unlock()
	return !b.broken.Load()
}

// breakBarrier releases all waiters with a failure indication.
func (b *barrier) breakBarrier() {
	b.broken.Store(true)
	b.mu.Lock()
	b.gen++
	b.count = 0
	b.mu.Unlock()
	b.cond.Broadcast()
}
