package core

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Signals is the point-to-point synchronization fabric shared by the
// numeric engine and the trisolve subsystem: a flat array of one-shot
// completion signals plus an abort channel. A producer signals exactly once
// per slot; consumers wait only on the slots they need — the Go analogue of
// the paper's write-to-volatile point-to-point synchronization. Signals are
// implemented as closed channels so waiting goroutines consume no CPU even
// when the host has fewer cores than workers (which matters for the
// simulated-makespan timing mode described in DESIGN.md).
type Signals struct {
	done  []chan struct{}
	abort chan struct{}
	// cancel is the external cancel source (a SweepControl's channel face):
	// unlike abort, which a worker closes on numeric failure, cancel is
	// fired from outside the sweep (context expiry, stall watchdog). A nil
	// channel never fires, so unbound fabrics pay one extra select arm.
	cancel <-chan struct{}
	once   sync.Once
	// contended counts waits that actually had to block (ablation metric);
	// waitNanos accumulates the wall-clock time those blocked waits cost
	// (the fast path pays nothing — uncontended waits read no clock).
	contended atomic.Int64
	waitNanos atomic.Int64
}

// NewSignals returns a fabric with n one-shot completion slots.
func NewSignals(n int) *Signals {
	s := &Signals{
		done:  make([]chan struct{}, n),
		abort: make(chan struct{}),
	}
	for i := range s.done {
		s.done[i] = make(chan struct{})
	}
	return s
}

// Set marks slot i complete. Each slot has exactly one producer.
func (s *Signals) Set(i int) { close(s.done[i]) }

// BindCancel attaches an external cancel source: a blocked Wait returns
// false when ch fires, exactly as it does for an internal abort. Must be
// called before any waiter blocks.
func (s *Signals) BindCancel(ch <-chan struct{}) { s.cancel = ch }

// Wait blocks until slot i is complete. It returns false if the
// computation has been aborted (another worker hit an error) or cancelled
// from outside, so waiters can unwind instead of deadlocking.
func (s *Signals) Wait(i int) bool {
	ch := s.done[i]
	select {
	case <-ch:
		return true
	default:
	}
	s.contended.Add(1)
	t0 := time.Now()
	select {
	case <-ch:
		s.waitNanos.Add(time.Since(t0).Nanoseconds())
		return true
	case <-s.abort:
		s.waitNanos.Add(time.Since(t0).Nanoseconds())
		return false
	case <-s.cancel:
		s.waitNanos.Add(time.Since(t0).Nanoseconds())
		return false
	}
}

// WaitNanos reports the cumulative wall-clock nanoseconds of blocked waits.
func (s *Signals) WaitNanos() int64 { return s.waitNanos.Load() }

// Fail aborts the whole parallel region.
func (s *Signals) Fail() { s.once.Do(func() { close(s.abort) }) }

// Contended reports how many waits actually had to block.
func (s *Signals) Contended() int64 { return s.contended.Load() }

func (s *Signals) aborted() bool {
	select {
	case <-s.abort:
		return true
	default:
		return false
	}
}

// EpochSignals is the resettable variant of the Signals fabric, built for
// sweeps that repeat on a fixed dependency structure (the refactorization
// hot loop and the pooled parallel block solve). Where Signals allocates
// one-shot channels per sweep, EpochSignals keeps a flat array of epoch
// stamps: slot i is complete for the current sweep when its stamp has
// reached the sweep's epoch, so restarting costs one counter increment and
// no allocation. Waits spin briefly through the scheduler and then back off
// to short sleeps — the Go analogue of the paper's write-to-volatile
// point-to-point synchronization, bounded so oversubscribed hosts still
// make progress.
//
// The fabric is single-sweep-at-a-time: Reset must not race with Set/Wait
// (callers quiesce between sweeps, which the refactor and solve drivers
// guarantee by construction).
type EpochSignals struct {
	slots []atomic.Uint64
	epoch uint64 // written only by Reset, between sweeps
	abort atomic.Uint64
	// ctl, when bound, is the sweep's shared cancellation fabric: every Set
	// bumps its progress heartbeat (the stall watchdog's sample) and every
	// blocked wait polls its cancel flag so an external cancellation
	// unwinds waiters exactly like an internal abort.
	ctl *SweepControl
	// contended counts waits that actually had to block (ablation metric);
	// waitNanos accumulates the wall-clock time of those blocked waits. Both
	// live on the slow path only — the uncontended fast path reads no clock
	// and touches no counter, preserving the zero-overhead contract.
	contended atomic.Int64
	waitNanos atomic.Int64
}

// NewEpochSignals returns a fabric with n slots, ready for the first sweep.
func NewEpochSignals(n int) *EpochSignals {
	return &EpochSignals{slots: make([]atomic.Uint64, n), epoch: 1}
}

// Len reports the number of slots.
func (s *EpochSignals) Len() int { return len(s.slots) }

// Bind attaches the fabric to a sweep's cancellation control. Must happen
// before workers launch; the binding is stable for the fabric's lifetime.
func (s *EpochSignals) Bind(ctl *SweepControl) { s.ctl = ctl }

// Reset begins a new sweep: all slots become "not done" at once. The
// previous sweep must have fully quiesced.
func (s *EpochSignals) Reset() { s.epoch++ }

// Set marks slot i complete for the current sweep. One producer per slot.
// The progress bump is the watchdog heartbeat — one atomic add per
// completed block, paid only on monitored sweeps so the unarmed fast path
// keeps its pre-cancellation cost.
func (s *EpochSignals) Set(i int) {
	s.slots[i].Store(s.epoch)
	if c := s.ctl; c != nil && c.armed {
		c.progress.Add(1)
	}
}

// FirstPending reports the first slot not yet complete for the current
// sweep (-1 when all are). Safe to call from a monitor goroutine while the
// sweep runs: slots are atomic and the epoch is stable between Resets.
func (s *EpochSignals) FirstPending() int {
	e := s.epoch
	for i := range s.slots {
		if s.slots[i].Load() < e {
			return i
		}
	}
	return -1
}

// Wait blocks until slot i completes, returning false if the sweep was
// aborted (a worker hit an error) so waiters can unwind.
func (s *EpochSignals) Wait(i int) bool {
	e := s.epoch
	if s.slots[i].Load() >= e {
		return true
	}
	_, ok := s.waitSlow(i, e)
	return ok
}

// WaitTimed is Wait returning also the nanoseconds this call spent blocked
// (0 when the slot was already complete) — the per-worker sync-accounting
// hook of the trace layer.
func (s *EpochSignals) WaitTimed(i int) (int64, bool) {
	e := s.epoch
	if s.slots[i].Load() >= e {
		return 0, true
	}
	return s.waitSlow(i, e)
}

func (s *EpochSignals) waitSlow(i int, e uint64) (int64, bool) {
	s.contended.Add(1)
	t0 := time.Now()
	for spins := 0; ; spins++ {
		if s.slots[i].Load() >= e {
			d := time.Since(t0).Nanoseconds()
			s.waitNanos.Add(d)
			return d, true
		}
		if s.abort.Load() == e {
			d := time.Since(t0).Nanoseconds()
			s.waitNanos.Add(d)
			return d, false
		}
		// External cancellation (context expiry, stall watchdog) unblocks
		// waiters through the same false return as an internal abort. The
		// poll lives only on this blocked slow path.
		if c := s.ctl; c != nil && c.flag.Load() {
			d := time.Since(t0).Nanoseconds()
			s.waitNanos.Add(d)
			return d, false
		}
		if spins < 128 {
			runtime.Gosched()
		} else {
			time.Sleep(5 * time.Microsecond)
		}
	}
}

// WaitNanos reports the cumulative wall-clock nanoseconds of blocked waits,
// accumulated across sweeps.
func (s *EpochSignals) WaitNanos() int64 { return s.waitNanos.Load() }

// Fail aborts the current sweep; pending and future Waits return false
// until the next Reset.
func (s *EpochSignals) Fail() { s.abort.Store(s.epoch) }

// Aborted reports whether the current sweep has been aborted, by a worker
// failure or by external cancellation.
func (s *EpochSignals) Aborted() bool {
	if s.abort.Load() == s.epoch {
		return true
	}
	c := s.ctl
	return c != nil && c.flag.Load()
}

// Contended reports how many waits actually had to block, accumulated
// across sweeps.
func (s *EpochSignals) Contended() int64 { return s.contended.Load() }

// epochBlockFlags adapts EpochSignals to the fine-ND engine's 2D block
// indexing: one resettable completion slot per (i, j) block of the
// hierarchy, shared by the fresh-factorization and refactorization sweeps
// (the channel-based Signals fabric remains for one-shot consumers like the
// trisolve dependency scheduler).
type epochBlockFlags struct {
	n int
	*EpochSignals
}

func newEpochBlockFlags(nblocks int) *epochBlockFlags {
	return &epochBlockFlags{n: nblocks, EpochSignals: NewEpochSignals(nblocks * nblocks)}
}

func (f *epochBlockFlags) idx(i, j int) int   { return i*f.n + j }
func (f *epochBlockFlags) set(i, j int)       { f.Set(f.idx(i, j)) }
func (f *epochBlockFlags) wait(i, j int) bool { return f.Wait(f.idx(i, j)) }
func (f *epochBlockFlags) waitTimed(i, j int) (int64, bool) {
	return f.WaitTimed(f.idx(i, j))
}
func (f *epochBlockFlags) fail() { f.Fail() }

// barrier is a reusable counting barrier for the SyncBarrier ablation mode.
// It deliberately models the heavyweight "rejoin everything" semantics of a
// parallel-for: every participant waits for every other at each phase.
type barrier struct {
	mu      sync.Mutex
	cond    *sync.Cond
	parties int
	count   int
	gen     int
	broken  atomic.Bool
	// cause distinguishes why the barrier broke: a numeric failure
	// (breakBarrier) or an external cancellation (breakCanceled). The
	// distinction lets the barrier-ablation sweeps report a cancelled
	// deadline as ErrCanceled instead of misclassifying it as an internal
	// failure.
	cause atomic.Uint32
	// waitNanos accumulates the wall-clock time participants spent blocked
	// waiting for the rest (the last arriver pays nothing) — the barrier
	// half of the paper's 2.3%-vs-11% sync-overhead comparison.
	waitNanos atomic.Int64
}

// barrier break causes.
const (
	barrierIntact uint32 = iota
	barrierFailed
	barrierCanceled
)

func newBarrier(parties int) *barrier {
	b := &barrier{parties: parties}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// await blocks until all parties arrive. Returns false if the barrier was
// broken by an error.
func (b *barrier) await() bool {
	if b.broken.Load() {
		return false
	}
	b.mu.Lock()
	gen := b.gen
	b.count++
	if b.count == b.parties {
		b.count = 0
		b.gen++
		b.mu.Unlock()
		b.cond.Broadcast()
		return !b.broken.Load()
	}
	if gen == b.gen && !b.broken.Load() {
		t0 := time.Now()
		for gen == b.gen && !b.broken.Load() {
			b.cond.Wait()
		}
		b.waitNanos.Add(time.Since(t0).Nanoseconds())
	}
	b.mu.Unlock()
	return !b.broken.Load()
}

// waitNs reports the cumulative blocked nanoseconds across all participants.
func (b *barrier) waitNs() int64 { return b.waitNanos.Load() }

// breakBarrier releases all waiters with a failure indication.
func (b *barrier) breakBarrier() { b.breakWith(barrierFailed) }

// breakCanceled releases all waiters with the external-cancellation cause,
// so the sweep driver can surface ErrCanceled/ErrDeadlineExceeded/ErrStalled
// instead of a numeric failure.
func (b *barrier) breakCanceled() { b.breakWith(barrierCanceled) }

func (b *barrier) breakWith(cause uint32) {
	b.cause.CompareAndSwap(barrierIntact, cause)
	b.broken.Store(true)
	b.mu.Lock()
	b.gen++
	b.count = 0
	b.mu.Unlock()
	b.cond.Broadcast()
}

// canceled reports that the barrier was broken by external cancellation
// (false for an intact barrier or a failure break).
func (b *barrier) canceled() bool { return b.cause.Load() == barrierCanceled }

// reset re-arms a quiesced barrier for a new parallel region after a
// failure (all prior participants must have returned).
func (b *barrier) reset() {
	b.mu.Lock()
	b.broken.Store(false)
	b.cause.Store(barrierIntact)
	b.count = 0
	b.gen++
	b.mu.Unlock()
}
