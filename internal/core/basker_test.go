package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/sparse"
)

// randCircuit builds a nonsingular circuit-like matrix: one large strongly
// connected core plus many tiny blocks and sparse upper coupling.
func randCircuit(rng *rand.Rand, n int, coreFrac float64) *sparse.CSC {
	coo := sparse.NewCOO(n, n, 8*n)
	for i := 0; i < n; i++ {
		coo.Add(i, i, 6+rng.Float64())
	}
	core := int(coreFrac * float64(n))
	if core < 2 {
		core = 2
	}
	// Strongly connected ring + random sparse internals, grid-like locality.
	for i := 0; i < core; i++ {
		coo.Add((i+1)%core, i, 1+rng.Float64())
		if i+7 < core {
			coo.Add(i, i+7, rng.NormFloat64())
			coo.Add(i+7, i, rng.NormFloat64())
		}
		if rng.Float64() < 0.4 {
			coo.Add(rng.Intn(core), i, rng.NormFloat64()*0.3)
		}
	}
	// Tiny 2-cycles in the tail.
	for i := core; i+1 < n; i += 2 {
		coo.Add(i, i+1, rng.NormFloat64()*0.4)
		coo.Add(i+1, i, rng.NormFloat64()*0.4)
	}
	// Sparse strictly upper coupling between parts.
	for e := 0; e < n/2; e++ {
		i, j := rng.Intn(n), rng.Intn(n)
		if i < j {
			coo.Add(i, j, rng.NormFloat64()*0.2)
		}
	}
	return coo.ToCSC(false)
}

func grid2D(k int) *sparse.CSC {
	n := k * k
	coo := sparse.NewCOO(n, n, 5*n)
	id := func(i, j int) int { return i*k + j }
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < k; i++ {
		for j := 0; j < k; j++ {
			v := id(i, j)
			coo.Add(v, v, 4+rng.Float64())
			if i > 0 {
				coo.Add(v, id(i-1, j), -1)
			}
			if i < k-1 {
				coo.Add(v, id(i+1, j), -1)
			}
			if j > 0 {
				coo.Add(v, id(i, j-1), -1)
			}
			if j < k-1 {
				coo.Add(v, id(i, j+1), -1)
			}
		}
	}
	return coo.ToCSC(false)
}

func solveCheck(t *testing.T, a *sparse.CSC, num *Numeric, tol float64) {
	t.Helper()
	rng := rand.New(rand.NewSource(1234))
	x := make([]float64, a.N)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	b := make([]float64, a.N)
	a.MulVec(b, x)
	num.Solve(b)
	for i := range x {
		if math.Abs(b[i]-x[i]) > tol*(1+math.Abs(x[i])) {
			t.Fatalf("x[%d] = %v, want %v (diff %g)", i, b[i], x[i], math.Abs(b[i]-x[i]))
		}
	}
}

func optsWithThreads(threads int) Options {
	o := DefaultOptions()
	o.Threads = threads
	o.BigBlockMin = 32 // small test matrices still exercise the ND engine
	return o
}

func TestSerialFactorSolveCircuit(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := randCircuit(rng, 300, 0.6)
	num, err := FactorDirect(a, optsWithThreads(1))
	if err != nil {
		t.Fatal(err)
	}
	if num.Sym.NumNDBlocks() == 0 {
		t.Fatal("expected at least one fine-ND block")
	}
	solveCheck(t, a, num, 1e-8)
}

func TestParallelFactorSolveCircuit(t *testing.T) {
	for _, threads := range []int{2, 4, 8} {
		rng := rand.New(rand.NewSource(2))
		a := randCircuit(rng, 400, 0.7)
		num, err := FactorDirect(a, optsWithThreads(threads))
		if err != nil {
			t.Fatalf("threads=%d: %v", threads, err)
		}
		solveCheck(t, a, num, 1e-8)
	}
}

func TestGridPureND(t *testing.T) {
	// A grid with a strongly connected pattern: the whole matrix is one
	// big ND block; exercises the parallel Gilbert-Peierls fully.
	a := grid2D(20)
	for _, threads := range []int{1, 2, 4} {
		num, err := FactorDirect(a, optsWithThreads(threads))
		if err != nil {
			t.Fatalf("threads=%d: %v", threads, err)
		}
		if num.Sym.NumNDBlocks() != 1 {
			t.Fatalf("threads=%d: grid should be one ND block, got %d (blocks %d)",
				threads, num.Sym.NumNDBlocks(), num.Sym.NumBlocks())
		}
		solveCheck(t, a, num, 1e-8)
	}
}

func TestBarrierSyncMatchesP2P(t *testing.T) {
	a := grid2D(16)
	optsP := optsWithThreads(4)
	p2p, err := FactorDirect(a, optsP)
	if err != nil {
		t.Fatal(err)
	}
	optsB := optsWithThreads(4)
	optsB.Sync = SyncBarrier
	bar, err := FactorDirect(a, optsB)
	if err != nil {
		t.Fatal(err)
	}
	solveCheck(t, a, p2p, 1e-8)
	solveCheck(t, a, bar, 1e-8)
	if p2p.NnzLU() != bar.NnzLU() {
		t.Fatalf("sync mode changed |L+U|: %d vs %d", p2p.NnzLU(), bar.NnzLU())
	}
}

func TestRefactorSequence(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randCircuit(rng, 350, 0.6)
	num, err := FactorDirect(a, optsWithThreads(4))
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 4; trial++ {
		b := a.Clone()
		for i := range b.Values {
			b.Values[i] *= 1 + 0.15*rng.Float64()
		}
		if err := num.Refactor(b); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		solveCheck(t, b, num, 1e-7)
	}
}

func TestNoBTFMode(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := randCircuit(rng, 200, 0.5)
	opts := optsWithThreads(2)
	opts.UseBTF = false
	num, err := FactorDirect(a, opts)
	if err != nil {
		t.Fatal(err)
	}
	if num.Sym.NumBlocks() != 1 {
		t.Fatalf("UseBTF=false should give one block, got %d", num.Sym.NumBlocks())
	}
	solveCheck(t, a, num, 1e-8)
}

func TestNoMWCMNoLocalAMD(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := randCircuit(rng, 250, 0.6)
	opts := optsWithThreads(2)
	opts.UseMWCM = false
	opts.LocalAMD = false
	num, err := FactorDirect(a, opts)
	if err != nil {
		t.Fatal(err)
	}
	solveCheck(t, a, num, 1e-8)
}

func TestSolvePropertyRandom(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 60 + rng.Intn(300)
		a := randCircuit(rng, n, 0.3+0.4*rng.Float64())
		threads := 1 << rng.Intn(3)
		num, err := FactorDirect(a, optsWithThreads(threads))
		if err != nil {
			return false
		}
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		b := make([]float64, n)
		a.MulVec(b, x)
		num.Solve(b)
		for i := range x {
			if math.Abs(b[i]-x[i]) > 1e-6*(1+math.Abs(x[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestFillComparableToKLUStyle(t *testing.T) {
	// Basker's |L+U| should stay in the same ballpark as the serial GP
	// factorization (Table I shows nearly identical columns).
	rng := rand.New(rand.NewSource(6))
	a := randCircuit(rng, 500, 0.65)
	num, err := FactorDirect(a, optsWithThreads(4))
	if err != nil {
		t.Fatal(err)
	}
	nnz := num.NnzLU()
	if nnz < a.N {
		t.Fatalf("|L+U| = %d impossibly small", nnz)
	}
	if fd := num.FillDensity(a); fd > 20 {
		t.Fatalf("fill density %v unexpectedly high for a circuit matrix", fd)
	}
}

func TestStructurallySingularError(t *testing.T) {
	coo := sparse.NewCOO(3, 3, 3)
	coo.Add(0, 0, 1)
	coo.Add(1, 1, 1)
	if _, err := FactorDirect(coo.ToCSC(false), DefaultOptions()); err == nil {
		t.Fatal("expected error for structurally singular matrix")
	}
}

func TestNumericallySingularNDError(t *testing.T) {
	// A strongly connected block that is numerically singular: row 2 =
	// row 1 after symmetrization tricks are avoided by exact duplication.
	n := 40
	coo := sparse.NewCOO(n, n, 5*n)
	for i := 0; i < n; i++ {
		coo.Add((i+1)%n, i, 1) // ring: strongly connected
	}
	// Make two exactly dependent rows.
	for j := 0; j < n; j++ {
		coo.Add(2, j, 0) // ensure row 2 pattern superset (no-op values)
	}
	a := coo.ToCSC(false)
	opts := optsWithThreads(2)
	opts.BigBlockMin = 8
	// The ring alone is nonsingular; force singularity by zeroing values
	// in one column after assembly.
	for p := a.Colptr[5]; p < a.Colptr[6]; p++ {
		a.Values[p] = 0
	}
	if _, err := FactorDirect(a, opts); err == nil {
		t.Fatal("expected numerical singularity error")
	}
}

func TestRectangularRejected(t *testing.T) {
	if _, err := Analyze(sparse.NewCSC(2, 3, 0), DefaultOptions()); err == nil {
		t.Fatal("expected dimension error")
	}
}

func TestPermutationsValid(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	a := randCircuit(rng, 300, 0.6)
	sym, err := Analyze(a, optsWithThreads(4))
	if err != nil {
		t.Fatal(err)
	}
	if !sparse.IsPerm(sym.RowPerm) || !sparse.IsPerm(sym.ColPerm) {
		t.Fatal("composed permutations are invalid")
	}
	// The permuted matrix must have a zero-free diagonal on small blocks'
	// diagonal positions (MWCM guarantee survives composition).
	b := a.Permute(sym.RowPerm, sym.ColPerm)
	if err := b.Check(); err != nil {
		t.Fatal(err)
	}
}
