// Package core implements Basker, the paper's contribution: a threaded
// sparse LU factorization with hierarchical parallelism and hierarchical 2D
// data layouts.
//
// The solver composes two structural levels exactly as the paper describes:
//
//  1. a coarse block triangular form (BTF) over the whole matrix, found
//     from a maximum weight-cardinality matching plus strongly connected
//     components. Small diagonal blocks ("fine BTF structure", the paper's
//     D1/D3) are AMD-ordered and factored embarrassingly in parallel with
//     flop-balanced thread assignment (Algorithm 2);
//  2. each large diagonal block ("fine ND structure", the paper's D2) is
//     reordered by nested dissection into a 2D grid of sparse submatrices
//     mapped onto a binary dependency tree, and factored by the parallel
//     Gilbert–Peierls algorithm (Algorithms 3-4): multiple threads
//     cooperate on a single block column, synchronizing point-to-point
//     through atomic per-block flags (the paper's volatile-variable sync)
//     or, for the ablation study, through global barriers.
//
// Partial pivoting happens inside diagonal blocks only, which the
// fill-path theorem makes safe for the already-computed lower off-diagonal
// structure, as the paper notes.
package core

import (
	"time"

	"repro/internal/faultinject"
	"repro/internal/gp"
	"repro/internal/trace"
)

// SyncMode selects the synchronization strategy of the parallel numeric
// phase of the fine-ND engine.
type SyncMode int

const (
	// SyncPointToPoint uses one atomic flag per 2D block; a thread waits
	// only on the exact blocks it consumes. This is Basker's default and
	// the subject of the paper's §IV synchronization discussion.
	SyncPointToPoint SyncMode = iota
	// SyncBarrier synchronizes every thread of a subtree at every
	// dependency-tree step — the traditional parallel-for behaviour the
	// paper measured at 11% of runtime versus 2.3% for point-to-point.
	SyncBarrier
)

// Options configures a Basker solver.
type Options struct {
	// Threads is the worker count. The fine-ND engine uses the largest
	// power of two not exceeding it (the paper's Basker requires a power
	// of two); remaining threads still help on fine-BTF blocks.
	Threads int
	// UseBTF enables the coarse block triangular form.
	UseBTF bool
	// UseMWCM selects the bottleneck weighted matching for zero-free
	// diagonals (the paper's Pm1/Pm2); otherwise cardinality matching.
	UseMWCM bool
	// PivotTol is the Gilbert–Peierls diagonal-preference tolerance used
	// inside every diagonal block.
	PivotTol float64
	// BigBlockMin is the smallest BTF diagonal block handled by the
	// fine-ND structure; smaller blocks go to the fine-BTF engine.
	BigBlockMin int
	// LocalAMD applies an AMD ordering inside each ND diagonal block
	// (leaves and separators) to cut fill within the 2D blocks.
	LocalAMD bool
	// Sync selects the synchronization mode of the ND numeric phase.
	Sync SyncMode
	// NoPrune disables Eisenstat–Liu symmetric pruning inside every
	// Gilbert–Peierls kernel (ablation; see gp.Options.NoPrune).
	NoPrune bool
	// DenseKernelThreshold is the estimated block density (from the fine-ND
	// symbolic estimates, Algorithm 3) at or above which a 2D kernel is
	// routed through the dense panel layer at numeric time. 0 selects
	// DefaultDenseKernelThreshold; values above 1 never trigger (only the
	// density estimate's clamp reaches exactly 1), so e.g. 2 disables the
	// layer through the threshold alone.
	DenseKernelThreshold float64
	// NoDenseKernels disables the density-adaptive dense kernel layer
	// entirely (ablation; every fine-ND kernel stays on the sparse
	// Gilbert–Peierls path regardless of the density estimates).
	NoDenseKernels bool
	// SupernodeRelax is the relaxed-amalgamation bound for supernode
	// detection in fine-ND leaf diagonals: the largest column run merged
	// into one panel when the run is not a pure elimination-tree chain
	// (SuperLU's relaxation parameter). 0 selects DefaultSupernodeRelax.
	SupernodeRelax int
	// NoSupernodes disables elimination-tree supernode detection entirely
	// (ablation; moderate-density leaf diagonals factor column at a time).
	NoSupernodes bool
	// Trace, when non-nil, receives per-kernel scheduler events from every
	// sweep (analyze, factor, refactor, partial refactor, parallel solve).
	// nil keeps every hot path on its untraced, allocation-free fast path.
	Trace *trace.Recorder
	// ValidateInputs enables the full API-boundary input screen (structural
	// CSC invariants plus NaN/Inf finiteness) on Factor/Refactor entry
	// points. O(1) dimension checks are always on; this gate covers the
	// O(nnz) passes.
	ValidateInputs bool
	// Inject, when non-nil, arms the deterministic fault-injection points
	// inside every numeric sweep (chaos testing only). nil — the production
	// state — keeps every hook on its single-pointer-test fast path.
	Inject *faultinject.Injector
	// StallTimeout arms the per-sweep stall watchdog: a parallel sweep that
	// makes no progress (no completion signal lands) for this long is
	// aborted with ErrStalled, naming the stalled block and worker lane.
	// 0 (the default) disables the watchdog. Serial sweeps run on the
	// caller's goroutine and cannot be unwound by the watchdog.
	StallTimeout time.Duration

	// ctl and poll are the per-Numeric cancellation hooks, threaded through
	// sweepOpts into the fine-ND engine and its kernels (never set on the
	// shared Symbolic's Options).
	ctl  *SweepControl
	poll func() error
}

// DefaultDenseKernelThreshold is the estimated-density line above which
// fine-ND kernels switch to dense panels. Chosen by the threshold sweep
// recorded in README.md: the fill-heavy suite classes saturate their
// speedup well below it while the low-fill classes stay untagged above it.
const DefaultDenseKernelThreshold = 0.5

// DefaultSupernodeRelax is the relaxed-amalgamation bound used when
// Options.SupernodeRelax is 0 — SuperLU's traditional small-run setting.
const DefaultSupernodeRelax = 8

// DefaultOptions returns the paper-faithful defaults: BTF + MWCM on,
// KLU-style pivot tolerance, point-to-point synchronization.
func DefaultOptions() Options {
	return Options{
		Threads:     1,
		UseBTF:      true,
		UseMWCM:     true,
		PivotTol:    gp.DefaultPivotTol,
		BigBlockMin: 128,
		LocalAMD:    true,
		Sync:        SyncPointToPoint,
	}
}

// gpOptions returns the Gilbert–Peierls kernel options used inside every
// diagonal block.
func (o Options) gpOptions() gp.Options {
	return gp.Options{PivotTol: o.PivotTol, NoPrune: o.NoPrune, Poll: o.poll}
}

func (o Options) threads() int {
	if o.Threads < 1 {
		return 1
	}
	return o.Threads
}

// ndLeaves returns the power-of-two leaf count for the ND tree.
func (o Options) ndLeaves() int {
	p := 1
	for p*2 <= o.threads() {
		p *= 2
	}
	return p
}

// supernodeRelax resolves the relaxed-amalgamation bound.
func (o Options) supernodeRelax() int {
	if o.SupernodeRelax <= 0 {
		return DefaultSupernodeRelax
	}
	return o.SupernodeRelax
}

// denseKernelThreshold resolves the dense-path density line.
func (o Options) denseKernelThreshold() float64 {
	if o.DenseKernelThreshold <= 0 {
		return DefaultDenseKernelThreshold
	}
	return o.DenseKernelThreshold
}

func (o Options) bigBlockMin() int {
	if o.BigBlockMin <= 0 {
		return 128
	}
	return o.BigBlockMin
}
