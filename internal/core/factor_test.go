package core

import (
	"context"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/matgen"
	"repro/internal/sparse"
)

// TestFactorNDOverlapsBTF proves the unified fresh-factorization scheduler
// runs fine-ND and fine-BTF blocks concurrently, mirroring the Refactor
// overlap proof: the ND block's factorization is made to wait for a small
// block to finish, and every small block's factorization waits for the ND
// block to start. Under the old two-phase sweep (WaitGroup barrier over the
// fine-BTF partition, then a serial loop over ND blocks) this deadlocks;
// under the unified point-to-point scheduler it completes. Channel-based,
// so the proof holds even on a single-core host.
func TestFactorNDOverlapsBTF(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	a := randCircuit(rng, 400, 0.6)
	sym, err := Analyze(a, optsWithThreads(2))
	if err != nil {
		t.Fatal(err)
	}
	if sym.NumNDBlocks() == 0 || sym.NumBlocks() == sym.NumNDBlocks() {
		t.Fatal("test matrix needs both ND and small blocks")
	}
	const wait = 10 * time.Second
	ndStarted := make(chan struct{})
	smallDone := make(chan struct{})
	var ndOnce, smOnce sync.Once
	var timedOut atomic.Bool
	hooks := &schedHooks{
		blockStart: func(blk int, nd bool) {
			if nd {
				ndOnce.Do(func() { close(ndStarted) })
				select {
				case <-smallDone:
				case <-time.After(wait):
					timedOut.Store(true)
				}
			} else {
				select {
				case <-ndStarted:
				case <-time.After(wait):
					timedOut.Store(true)
				}
			}
		},
		blockDone: func(blk int, nd bool) {
			if !nd {
				smOnce.Do(func() { close(smallDone) })
			}
		},
	}
	num, err := factorImpl(context.Background(), a, sym, nil, hooks)
	if err != nil {
		t.Fatal(err)
	}
	num.hooks = nil
	if timedOut.Load() {
		t.Fatal("ND and fine-BTF factorizations did not overlap (scheduler is two-phase)")
	}
	solveCheck(t, a, num, 1e-7)
}

// TestFactorIntoMatchesFresh drives the pooled fresh-factorization path
// over a transient sequence: every FactorInto recycles the same storage,
// runs a genuinely fresh pivoting factorization, and must solve as
// accurately as a from-scratch Factor of the same matrix.
func TestFactorIntoMatchesFresh(t *testing.T) {
	suite := matgen.TableISuite(0.1)[:8]
	for _, m := range suite {
		m := m
		t.Run(m.Name, func(t *testing.T) {
			base := m.Gen()
			opts := optsWithThreads(4)
			sym, err := Analyze(base, opts)
			if err != nil {
				t.Fatal(err)
			}
			num, err := Factor(base, sym)
			if err != nil {
				t.Fatal(err)
			}
			for step := 1; step <= 3; step++ {
				a := matgen.TransientStep(base, step, 4242)
				if err := num.FactorInto(a); err != nil {
					t.Fatalf("FactorInto step %d: %v", step, err)
				}
				fresh, err := Factor(a, sym)
				if err != nil {
					t.Fatalf("fresh factor step %d: %v", step, err)
				}
				if num.NnzLU() != fresh.NnzLU() {
					t.Fatalf("step %d: |L+U| %d through FactorInto, %d fresh", step, num.NnzLU(), fresh.NnzLU())
				}
				rres := relResidual(a, num, int64(step))
				fres := relResidual(a, fresh, int64(step))
				if rres > 1e-6 && rres > 100*fres {
					t.Fatalf("step %d: FactorInto residual %.3e, fresh %.3e", step, rres, fres)
				}
			}
		})
	}
}

// TestFactorIntoThenRefactor checks the two reuse paths compose: a pooled
// numeric refreshed by FactorInto (new pivots) must still support the
// fixed-pivot Refactor fast path afterwards, and vice versa.
func TestFactorIntoThenRefactor(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	base := randCircuit(rng, 350, 0.6)
	num, err := FactorDirect(base, optsWithThreads(2))
	if err != nil {
		t.Fatal(err)
	}
	a1 := matgen.TransientStep(base, 1, 7)
	if err := num.Refactor(a1); err != nil {
		t.Fatal(err)
	}
	a2 := matgen.TransientStep(base, 2, 7)
	if err := num.FactorInto(a2); err != nil {
		t.Fatal(err)
	}
	solveCheck(t, a2, num, 1e-7)
	a3 := matgen.TransientStep(base, 3, 7)
	if err := num.Refactor(a3); err != nil {
		t.Fatal(err)
	}
	solveCheck(t, a3, num, 1e-7)
}

// TestFactorIntoPatternMismatchRejected: the reuse path requires the
// analyzed pattern; anything else must fail loudly before touching state.
func TestFactorIntoPatternMismatchRejected(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	a := randCircuit(rng, 200, 0.5)
	num, err := FactorDirect(a, optsWithThreads(1))
	if err != nil {
		t.Fatal(err)
	}
	other := randCircuit(rng, 200, 0.5)
	if err := num.FactorInto(other); err == nil {
		t.Fatal("expected pattern mismatch error")
	}
	if err := num.FactorInto(sparse.NewCSC(3, 3, 0)); err == nil {
		t.Fatal("expected dimension error")
	}
	// The numeric still works on the analyzed pattern.
	if err := num.FactorInto(a); err != nil {
		t.Fatal(err)
	}
	solveCheck(t, a, num, 1e-7)
}

// TestFactorIntoRetryAfterFailure: a FactorInto defeated by singular values
// leaves the structure intact and a retry with good values must genuinely
// recompute (regression: in SyncBarrier mode the broken barrier used to
// stay broken, so the retry reported success over stale garbage values).
func TestFactorIntoRetryAfterFailure(t *testing.T) {
	for _, barrier := range []bool{false, true} {
		name := "p2p"
		if barrier {
			name = "barrier"
		}
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(45))
			a := randCircuit(rng, 300, 0.6)
			opts := optsWithThreads(2)
			if barrier {
				opts.Sync = SyncBarrier
			}
			num, err := FactorDirect(a, opts)
			if err != nil {
				t.Fatal(err)
			}
			if num.Sym.NumNDBlocks() == 0 {
				t.Fatal("want an ND block so the ND retry path is exercised")
			}
			// Zero a column inside the ND block: singular, FactorInto fails.
			bad := a.Clone()
			ndBlk := -1
			for blk := 0; blk < num.Sym.NumBlocks(); blk++ {
				if num.Sym.IsND(blk) {
					ndBlk = blk
				}
			}
			r0, _ := num.Sym.BlockRange(ndBlk)
			ocol := num.Sym.ColPerm[r0]
			for p := bad.Colptr[ocol]; p < bad.Colptr[ocol+1]; p++ {
				bad.Values[p] = 0
			}
			if err := num.FactorInto(bad); err == nil {
				t.Fatal("expected singularity error")
			}
			// Retry with fresh values — must recompute for real.
			good := a.Clone()
			for p := range good.Values {
				good.Values[p] *= 1 + 0.2*rng.Float64()
			}
			if err := num.FactorInto(good); err != nil {
				t.Fatalf("retry after failure: %v", err)
			}
			solveCheck(t, good, num, 1e-7)
		})
	}
}

// TestFactorSlowPathDifferentPattern keeps the historical contract: a
// fresh Factor against a symbolic analysis of a different (sub-)pattern of
// the analyzed matrix still works through the per-call permutation
// fallback. (A pattern with entries outside the analyzed BTF structure has
// never been supported — those couplings fall outside every block.)
func TestFactorSlowPathDifferentPattern(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	a := randCircuit(rng, 250, 0.5)
	sym, err := Analyze(a, optsWithThreads(2))
	if err != nil {
		t.Fatal(err)
	}
	// Subset pattern: drop a sprinkling of weak coupling entries, keeping
	// the diagonal. Structurally different, BTF structure still valid.
	coo := sparse.NewCOO(a.M, a.N, a.Nnz())
	dropped := 0
	for j := 0; j < a.N; j++ {
		for p := a.Colptr[j]; p < a.Colptr[j+1]; p++ {
			i := a.Rowidx[p]
			if i != j && dropped < 12 && p%17 == 3 {
				dropped++
				continue
			}
			coo.Add(i, j, a.Values[p])
		}
	}
	if dropped == 0 {
		t.Fatal("no entries dropped; test premise broken")
	}
	b := coo.ToCSC(false)
	num, err := Factor(b, sym)
	if err != nil {
		t.Fatal(err)
	}
	if num.planned {
		t.Fatal("different pattern must not take the planned gather path")
	}
	if res := relResidual(b, num, 7); res > 1e-8 {
		t.Fatalf("slow-path solve residual %.3e", res)
	}
	// A slow-path numeric's storage is laid out for b's pattern, so reusing
	// it for the analyzed pattern must be rejected — even though the matrix
	// itself matches the plan (regression: the guard must check the
	// numeric's provenance, not just the incoming matrix).
	if err := num.FactorInto(a); err == nil {
		t.Fatal("FactorInto on a slow-path numeric must be rejected")
	}
	if res := relResidual(b, num, 7); res > 1e-8 {
		t.Fatalf("numeric corrupted by rejected FactorInto: residual %.3e", res)
	}
}

// TestPrunedFactorEquivalenceCore sweeps the matrix-generator classes
// through the full solver with pruning on and off: identical |L+U|
// (patterns are value-independent either way) and matching solve quality.
func TestPrunedFactorEquivalenceCore(t *testing.T) {
	suite := matgen.TableISuite(0.1)
	suite = append(suite, matgen.TableIISuite(0.12)...)
	for _, m := range suite {
		m := m
		t.Run(m.Name, func(t *testing.T) {
			a := m.Gen()
			opts := optsWithThreads(4)
			pruned, err := FactorDirect(a, opts)
			if err != nil {
				t.Fatalf("pruned: %v", err)
			}
			opts.NoPrune = true
			plain, err := FactorDirect(a, opts)
			if err != nil {
				t.Fatalf("unpruned: %v", err)
			}
			if pruned.NnzLU() != plain.NnzLU() {
				t.Fatalf("|L+U| differs: pruned %d, unpruned %d", pruned.NnzLU(), plain.NnzLU())
			}
			pres := relResidual(a, pruned, 1)
			nres := relResidual(a, plain, 1)
			if pres > 1e-6 && pres > 100*nres {
				t.Fatalf("pruned residual %.3e, unpruned %.3e", pres, nres)
			}
		})
	}
}

// TestDenseKernelEquivalenceSuite sweeps every matrix-generator class
// through the full solver with the dense panel layer on and off
// (NoDenseKernels as the oracle): solve residuals must be on par, and
// wherever the sparse path's pivoting was deterministic — it kept every
// natural pivot, the diagonally dominant common case — the dense path must
// reproduce the pivot sequence exactly (the dense LU applies the same
// diagonal-preference rule). The suite scale is chosen so the fill-heavy
// classes actually tag separator kernels; the sweep asserts that, so the
// equivalence can never silently go vacuous.
func TestDenseKernelEquivalenceSuite(t *testing.T) {
	suite := matgen.TableISuite(0.25)
	suite = append(suite, matgen.TableIISuite(0.25)...)
	tagged := 0
	for _, m := range suite {
		m := m
		t.Run(m.Name, func(t *testing.T) {
			a := m.Gen()
			opts := optsWithThreads(4)
			symD, err := Analyze(a, opts)
			if err != nil {
				t.Fatalf("dense analyze: %v", err)
			}
			tagged += symD.DenseKernels()
			numD, err := Factor(a, symD)
			if err != nil {
				t.Fatalf("dense factor: %v", err)
			}
			oOpts := opts
			oOpts.NoDenseKernels = true
			numS, err := FactorDirect(a, oOpts)
			if err != nil {
				t.Fatalf("sparse factor: %v", err)
			}
			dres := relResidual(a, numD, 1)
			sres := relResidual(a, numS, 1)
			if dres > 1e-6 && dres > 100*sres {
				t.Fatalf("dense-path residual %.3e, sparse %.3e", dres, sres)
			}
			// Pivot determinism: per fine-ND diagonal block, if the sparse
			// path chose the natural pivot everywhere, so must the dense path.
			for blk := range numS.nd {
				if numS.nd[blk] == nil {
					continue
				}
				for b, fs := range numS.nd[blk].diag {
					if fs == nil {
						continue
					}
					natural := true
					for k, p := range fs.P {
						if p != k {
							natural = false
							break
						}
					}
					if !natural {
						continue
					}
					fd := numD.nd[blk].diag[b]
					for k, p := range fd.P {
						if p != k {
							t.Fatalf("nd block %d diag %d: sparse pivots are natural, dense path deviates at step %d (row %d)", blk, b, k, p)
						}
					}
				}
			}
		})
	}
	if tagged == 0 {
		t.Error("no suite matrix tagged a dense kernel; the equivalence sweep is vacuous")
	}
}

// TestFactorCompactsFreshStorage: a fresh Factor hands back factors clipped
// to their exact length (the 2x symbolic estimate slack is released), while
// the pooled FactorInto path deliberately keeps its slack.
func TestFactorCompactsFreshStorage(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	a := randCircuit(rng, 300, 0.6)
	num, err := FactorDirect(a, optsWithThreads(1))
	if err != nil {
		t.Fatal(err)
	}
	for blk, f := range num.small {
		if f == nil {
			continue
		}
		if cap(f.L.Values) != len(f.L.Values) || cap(f.U.Values) != len(f.U.Values) {
			t.Fatalf("small block %d not compacted: L %d/%d U %d/%d", blk,
				len(f.L.Values), cap(f.L.Values), len(f.U.Values), cap(f.U.Values))
		}
	}
	for blk, ndn := range num.nd {
		if ndn == nil {
			continue
		}
		for _, f := range ndn.diag {
			if f != nil && (cap(f.L.Values) != len(f.L.Values) || cap(f.U.Values) != len(f.U.Values)) {
				t.Fatalf("nd block %d diag factor not compacted", blk)
			}
		}
	}
}
