package core

import (
	"context"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/matgen"
	"repro/internal/sparse"
)

// denseBlockCSC builds an n×n diagonally dominant matrix dense enough that
// the whole fine-ND block (a single tree node under Threads=1) crosses the
// dense-kernel threshold.
func denseBlockCSC(rng *rand.Rand, n int, fill float64) *sparse.CSC {
	coo := sparse.NewCOO(n, n, int(float64(n*n)*fill)+n)
	for i := 0; i < n; i++ {
		coo.Add(i, i, 15+rng.Float64())
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j && rng.Float64() < fill {
				coo.Add(i, j, rng.NormFloat64())
			}
		}
	}
	return coo.ToCSC(false)
}

// grid3dCircuit builds a circuit matrix whose large SCC is the 3D-stencil
// core (the G2_Circuit / twotone fill class) with btfPct percent of rows in
// small BTF blocks — the shape that produces dense-tagged separator kernels
// next to a fine-BTF partition.
func grid3dCircuit(n int, btfPct float64, seed int64) *sparse.CSC {
	return matgen.Circuit(matgen.CircuitParams{
		N: n, BTFPct: btfPct, Blocks: 1 + n/50,
		Core: matgen.CoreGrid3D, ExtraDensity: 0.2, Seed: seed,
	})
}

// TestDenseKernelTagging checks the Analyze-time classification across the
// threshold's edge values: the default tags the fill-heavy separators, a
// tiny threshold tags at least as much, 1 keeps only (estimated) fully
// dense kernels, thresholds above 1 and the NoDenseKernels ablation tag
// nothing.
func TestDenseKernelTagging(t *testing.T) {
	a := grid3dCircuit(900, 0, 71)
	count := func(mod func(*Options)) int {
		opts := optsWithThreads(4)
		if mod != nil {
			mod(&opts)
		}
		sym, err := Analyze(a, opts)
		if err != nil {
			t.Fatal(err)
		}
		return sym.DenseKernels()
	}
	def := count(nil)
	if def == 0 {
		t.Fatal("default threshold tags nothing on a 3D-stencil core")
	}
	tiny := count(func(o *Options) { o.DenseKernelThreshold = 1e-9 })
	if tiny < def {
		t.Fatalf("tiny threshold tags %d kernels, fewer than default's %d", tiny, def)
	}
	one := count(func(o *Options) { o.DenseKernelThreshold = 1 })
	if one == 0 || one > def {
		t.Fatalf("threshold 1 tags %d kernels (default %d); separator estimates saturate the clamp", one, def)
	}
	if n := count(func(o *Options) { o.DenseKernelThreshold = 2 }); n != 0 {
		t.Fatalf("threshold 2 tags %d kernels, want 0", n)
	}
	if n := count(func(o *Options) { o.NoDenseKernels = true }); n != 0 {
		t.Fatalf("NoDenseKernels tags %d kernels, want 0", n)
	}
	// The low-fill regime the paper targets must stay untagged under the
	// default threshold — that is the "adaptive" in density-adaptive.
	low := matgen.Circuit(matgen.CircuitParams{N: 900, BTFPct: 0, Blocks: 1, Core: matgen.CoreLadder, Seed: 72})
	sym, err := Analyze(low, optsWithThreads(4))
	if err != nil {
		t.Fatal(err)
	}
	if n := sym.DenseKernels(); n != 0 {
		t.Fatalf("low-fill ladder core tags %d dense kernels under the default threshold", n)
	}
}

// TestFactorDenseNDOverlapsBTF mirrors TestFactorNDOverlapsBTF on a matrix
// whose fine-ND hierarchy carries dense-tagged kernels: the dense panel
// layer must ride the same unified scheduler, with the ND block's
// (dense-path) factorization overlapping the fine-BTF sweep on the epoch
// fabric rather than running in a separate phase.
func TestFactorDenseNDOverlapsBTF(t *testing.T) {
	a := grid3dCircuit(700, 40, 71)
	sym, err := Analyze(a, optsWithThreads(2))
	if err != nil {
		t.Fatal(err)
	}
	if sym.NumNDBlocks() == 0 || sym.NumBlocks() == sym.NumNDBlocks() {
		t.Fatal("test matrix needs both ND and small blocks")
	}
	if sym.DenseKernels() == 0 {
		t.Fatal("test matrix tagged no dense kernels; overlap proof would be vacuous")
	}
	const wait = 10 * time.Second
	ndStarted := make(chan struct{})
	smallDone := make(chan struct{})
	var ndOnce, smOnce sync.Once
	var timedOut atomic.Bool
	hooks := &schedHooks{
		blockStart: func(blk int, nd bool) {
			if nd {
				ndOnce.Do(func() { close(ndStarted) })
				select {
				case <-smallDone:
				case <-time.After(wait):
					timedOut.Store(true)
				}
			} else {
				select {
				case <-ndStarted:
				case <-time.After(wait):
					timedOut.Store(true)
				}
			}
		},
		blockDone: func(blk int, nd bool) {
			if !nd {
				smOnce.Do(func() { close(smallDone) })
			}
		},
	}
	num, err := factorImpl(context.Background(), a, sym, nil, hooks)
	if err != nil {
		t.Fatal(err)
	}
	num.hooks = nil
	if timedOut.Load() {
		t.Fatal("dense-ND and fine-BTF factorizations did not overlap (scheduler is two-phase)")
	}
	solveCheck(t, a, num, 1e-7)

	// The pivot-drift fallback path must also stay on the dense layer: make
	// the reused pivot of the ND block's first column exactly zero while
	// boosting an alternative row in the same leaf, so Refactor's per-block
	// fallback rebuilds the dense-tagged hierarchy with fresh pivots.
	if err := num.Refactor(a); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(72))
	drift := a.Clone()
	for i := range drift.Values {
		drift.Values[i] *= 1 + 0.3*rng.Float64()
	}
	ndBlk := -1
	for blk := 0; blk < sym.NumBlocks(); blk++ {
		if sym.IsND(blk) {
			ndBlk = blk
		}
	}
	r0, _ := sym.BlockRange(ndBlk)
	old := num.nd[ndBlk]
	pivLocal := old.diag[0].P[0] // leaf node 0 starts at ND-local offset 0
	ocol := sym.ColPerm[r0]
	rowPos := make([]int, sym.N) // original row -> permuted position
	for k, r := range sym.RowPerm {
		rowPos[r] = k
	}
	b0, b1 := old.sym.blockRange(0)
	zeroed, boosted := false, false
	for p := drift.Colptr[ocol]; p < drift.Colptr[ocol+1]; p++ {
		k := rowPos[drift.Rowidx[p]] - r0
		if k < b0 || k >= b1 {
			continue
		}
		if k == pivLocal {
			drift.Values[p] = 0
			zeroed = true
		} else if !boosted {
			drift.Values[p] = 50
			boosted = true
		}
	}
	if !zeroed || !boosted {
		t.Fatalf("test premise broken: leaf column needs a pivot to zero and an alternative row (zeroed=%v boosted=%v)", zeroed, boosted)
	}
	if err := num.Refactor(drift); err != nil {
		t.Fatalf("refactor with drifted pivot: %v", err)
	}
	if num.nd[ndBlk] == old {
		t.Fatal("expected the pivot-drift fallback to rebuild the ND hierarchy")
	}
	solveCheck(t, drift, num, 1e-7)
}

// TestRefactorDenseZeroAllocSteadyState pins the dense-path steady state:
// a serial Refactor of a numeric whose fine-ND block went through the dense
// panel kernels performs zero allocations, exactly like the sparse path —
// the dense layer lives entirely in pooled panels and recycled factor
// storage.
func TestRefactorDenseZeroAllocSteadyState(t *testing.T) {
	rng := rand.New(rand.NewSource(75))
	base := denseBlockCSC(rng, 160, 0.3)
	opts := optsWithThreads(1)
	sym, err := Analyze(base, opts)
	if err != nil {
		t.Fatal(err)
	}
	if sym.DenseKernels() == 0 {
		t.Fatal("want a dense-tagged kernel in the zero-alloc sweep")
	}
	num, err := Factor(base, sym)
	if err != nil {
		t.Fatal(err)
	}
	steps := make([]*sparse.CSC, 4)
	for i := range steps {
		steps[i] = matgen.TransientStep(base, i+1, 76)
	}
	for _, s := range steps {
		if err := num.Refactor(s); err != nil {
			t.Fatal(err)
		}
	}
	i := 0
	allocs := testing.AllocsPerRun(20, func() {
		i++
		if err := num.Refactor(steps[i%len(steps)]); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state dense-path Refactor allocates: %v allocs/op", allocs)
	}
	solveCheck(t, steps[i%len(steps)], num, 1e-7)

	// The pooled fresh-factorization path was never allocation-free (the
	// worker's timing closures cost a couple of allocations per sweep), but
	// the dense layer must not add a single one on top of that baseline:
	// panels and factor storage are pooled.
	steady := func(n *Numeric) float64 {
		for _, s := range steps {
			if err := n.FactorInto(s); err != nil {
				t.Fatal(err)
			}
		}
		j := 0
		return testing.AllocsPerRun(20, func() {
			j++
			if err := n.FactorInto(steps[j%len(steps)]); err != nil {
				t.Fatal(err)
			}
		})
	}
	denseAllocs := steady(num)
	oopts := opts
	oopts.NoDenseKernels = true
	osym, err := Analyze(base, oopts)
	if err != nil {
		t.Fatal(err)
	}
	onum, err := Factor(base, osym)
	if err != nil {
		t.Fatal(err)
	}
	if sparseAllocs := steady(onum); denseAllocs > sparseAllocs {
		t.Fatalf("dense-path FactorInto allocates %v/op, sparse baseline %v/op", denseAllocs, sparseAllocs)
	}
}

// BenchmarkFactorDenseND compares the pooled fresh factorization of a
// high-fill 3D-stencil matrix with the dense panel layer on (tagged) and
// off (the NoDenseKernels ablation).
func BenchmarkFactorDenseND(b *testing.B) {
	var g2 matgen.Named
	for _, m := range matgen.TableISuite(0.5) {
		if m.Name == "G2_Circuit" {
			g2 = m
		}
	}
	a := g2.Gen()
	for _, cfg := range []struct {
		name    string
		noDense bool
	}{{"dense", false}, {"nodense", true}} {
		b.Run(cfg.name, func(b *testing.B) {
			opts := optsWithThreads(4)
			opts.NoDenseKernels = cfg.noDense
			sym, err := Analyze(a, opts)
			if err != nil {
				b.Fatal(err)
			}
			if !cfg.noDense && sym.DenseKernels() == 0 {
				b.Fatal("no dense kernels tagged on the G2_Circuit replica")
			}
			num, err := Factor(a, sym)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := num.FactorInto(a); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
