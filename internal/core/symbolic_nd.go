package core

import (
	"sync"

	"repro/internal/etree"
	"repro/internal/sparse"
)

// ndEstimates is the product of the paper's Algorithm 3 (Fine ND Symbolic
// Factorization): per-2D-block nonzero count estimates computed in
// parallel, used to pre-size factor storage so the numeric phase avoids
// reallocation inside the parallel region (the bottleneck the paper calls
// out). Diagonal blocks get elimination-tree column counts (treelevel -1);
// off-diagonal blocks get the lest/uest min/max row-range bounds: a column
// whose lower and upper estimated ranges overlap is assumed dense between
// its minimum and maximum row — "a reasonable upper bound and cheaper than
// storing the whole nonzero pattern" (paper §III-C).
type ndEstimates struct {
	// diagNnz[b] estimates nnz(L)+nnz(U) of diagonal block b.
	diagNnz []int
	// lowerNnz[i][j] and upperNnz[i][j] estimate the off-diagonal blocks.
	lowerNnz [][]int
	upperNnz [][]int
}

// estimateND runs the parallel symbolic estimation over the 2D structure of
// one fine-ND block. d is the fully permuted ND matrix.
func estimateND(d *sparse.CSC, s *ndSym) *ndEstimates {
	nb := s.nb
	est := &ndEstimates{
		diagNnz:  make([]int, nb),
		lowerNnz: make([][]int, nb),
		upperNnz: make([][]int, nb),
	}
	for i := 0; i < nb; i++ {
		est.lowerNnz[i] = make([]int, nb)
		est.upperNnz[i] = make([]int, nb)
	}

	// treelevel -1 / 0: per-leaf etrees, diagonal column counts and the
	// lest/uest row ranges of every off-diagonal block — embarrassingly
	// parallel over leaves (Algorithm 3 lines 2-9).
	type ranges struct{ lo, hi []int } // per column of the target block
	lest := make([][]ranges, nb)       // lest[i][path idx]
	var wg sync.WaitGroup
	for t := 0; t < s.p; t++ {
		wg.Add(1)
		go func(t int) {
			defer wg.Done()
			leaf := s.tree.Leaves[t]
			r0, r1 := s.blockRange(leaf)
			diag := d.ExtractBlock(r0, r1, r0, r1)
			parent := etree.Symmetric(diag)
			counts := etree.ColCounts(diag, parent)
			sum := 0
			for _, c := range counts {
				sum += c
			}
			est.diagNnz[leaf] = 2 * sum
			// Lower off-diagonal row ranges L_k,leaf (Algorithm 3 line 6):
			// pivoting inside the leaf cannot change them (fill-path
			// theorem), so the input ranges bound the factor.
			lest[leaf] = make([]ranges, len(s.ancestors[leaf]))
			for ai, anc := range s.ancestors[leaf] {
				a0, a1 := s.blockRange(anc)
				blk := d.ExtractBlock(a0, a1, r0, r1)
				lest[leaf][ai] = blockRowRanges(blk)
				est.lowerNnz[anc][leaf] = rangeNnz(lest[leaf][ai], true)
			}
			// Upper off-diagonal U_leaf,k (line 8): bound each column by
			// the reach estimate |subtree up to max row|.
			for _, anc := range s.ancestors[leaf] {
				a0, a1 := s.blockRange(anc)
				blk := d.ExtractBlock(r0, r1, a0, a1)
				est.upperNnz[leaf][anc] = reachBound(blk, counts)
			}
		}(t)
	}
	wg.Wait()

	// Higher treelevels (Algorithm 3 lines 11-18): separator diagonal and
	// off-diagonal estimates from the accumulated child bounds. Blocks at
	// the same height are independent — parallel over nodes per level.
	for h := 1; h <= s.maxH; h++ {
		var lwg sync.WaitGroup
		for j := 0; j < nb; j++ {
			if s.height[j] != h {
				continue
			}
			lwg.Add(1)
			go func(j int) {
				defer lwg.Done()
				r0, r1 := s.blockRange(j)
				w := r1 - r0
				// Diagonal: input counts plus the dense-span upper bound of
				// the products L_jk·U_kj over the subtree (line 14).
				diag := d.ExtractBlock(r0, r1, r0, r1)
				base := diag.Nnz()
				fillBound := 0
				for kp := s.subLo[j]; kp < j; kp++ {
					lo := est.lowerNnz[j][kp]
					up := est.upperNnz[kp][j]
					if lo > 0 && up > 0 {
						// Overlapping contributions assumed dense in the
						// spanned rows, bounded by the block area.
						f := lo + up
						if f > w*w-base-fillBound {
							f = w*w - base - fillBound
						}
						if f > 0 {
							fillBound += f
						}
					}
				}
				est.diagNnz[j] = 2 * (base + fillBound)
				// Off-diagonal blocks of the separator column/row (lines
				// 15-16): input nnz plus the subtree products' spans.
				for _, anc := range s.ancestors[j] {
					a0, a1 := s.blockRange(anc)
					low := d.ExtractBlock(a0, a1, r0, r1)
					bound := low.Nnz()
					for kp := s.subLo[j]; kp < j; kp++ {
						if est.lowerNnz[anc][kp] > 0 && est.upperNnz[kp][j] > 0 {
							bound += est.upperNnz[kp][j]
						}
					}
					if cap := (a1 - a0) * w; bound > cap {
						bound = cap
					}
					est.lowerNnz[anc][j] = bound

					upb := d.ExtractBlock(r0, r1, a0, a1).Nnz()
					for kp := s.subLo[j]; kp < j; kp++ {
						if est.upperNnz[kp][anc] > 0 {
							upb += est.upperNnz[kp][anc] / 2
						}
					}
					if cap := w * (a1 - a0); upb > cap {
						upb = cap
					}
					est.upperNnz[j][anc] = upb
				}
			}(j)
		}
		lwg.Wait()
	}
	return est
}

// denseMinDim is the smallest 2D block dimension routed through the dense
// panel layer: below it the panel scatter/zero overhead beats the
// mark/append/sort bookkeeping the dense kernels avoid.
const denseMinDim = 16

// computeDenseTags classifies every kernel of one fine-ND block's 2D
// hierarchy from the Algorithm 3 nonzero estimates: a kernel whose
// estimated density (estimate over block area, clamped to 1) reaches the
// threshold is tagged for the dense panel layer at numeric time. The
// estimates are upper bounds, so tagging errs toward dense — which is why
// the default threshold sits well above the fill densities of the paper's
// low-fill circuit classes (see the README sweep). Both block dimensions
// must reach denseMinDim. Tags depend only on the symbolic pattern and the
// analysis options, never on values, so the dense/sparse routing of every
// kernel is fixed for the lifetime of the analysis — the property that
// keeps factor block patterns stable across Factor, FactorInto, Refactor
// and the pool's recycled fresh factorizations.
func (s *ndSym) computeDenseTags(opts Options) {
	if opts.NoDenseKernels || s.est == nil {
		return
	}
	thr := opts.denseKernelThreshold()
	nb := s.nb
	tags := make([]bool, nb*nb)
	any := false
	density := func(nnzEst, area int) float64 {
		if area <= 0 {
			return 0
		}
		d := float64(nnzEst) / float64(area)
		if d > 1 {
			d = 1
		}
		return d
	}
	dim := func(b int) int {
		b0, b1 := s.blockRange(b)
		return b1 - b0
	}
	// Diagonal kernels first: their estimates (elimination-tree column
	// counts for leaves, the overlap fill bound for separators) track the
	// realized factor density closely.
	for j := 0; j < nb; j++ {
		if s.diagDenseEst(j, thr) {
			tags[j*nb+j] = true
			any = true
		}
	}
	// Off-diagonal kernels. Every off-diagonal tag requires its *solving*
	// diagonal (the factor the kernel substitutes against: node j for lower
	// targets, node kp for upper targets) to be dense — a dense-tagged
	// coupling solved by a sparse diagonal would pay the fully dense
	// reduction emission with no dense-solve payoff. On top of that gate, a
	// kernel is tagged either by its own estimate or structurally: the
	// lest/uest min/max row-range bounds badly *under*estimate coupling
	// blocks between two dense separators — the reduction Σ L_ik·U_kj over
	// the shared subtree fills them toward the product of the endpoint
	// densities, which the per-column range bounds cannot see — so a
	// coupling whose endpoint diagonals are both dense AND parent-child in
	// the dependency tree is tagged too (adjacent dense separators share
	// their whole elimination subtree; measured ≥0.92 realized density on
	// the fill-heavy suite classes, while couplings two or more tree levels
	// apart stay moderate at 0.3–0.7 and keep the sparse path).
	for j := 0; j < nb; j++ {
		w := dim(j)
		if w < denseMinDim {
			continue
		}
		adjacent := func(i int) bool {
			return tags[i*nb+i] && tags[j*nb+j] &&
				(s.tree.Parent[i] == j || s.tree.Parent[j] == i)
		}
		// A supernodal solving diagonal counts too: its couplings are still
		// worth the fully dense reduction emission (rank-k through the
		// panel) even though the substitution itself stays sparse — the
		// dense/sparse split of the solve is decided per kernel pair at
		// numeric time, and this keeps the refresh-path dispatch of the
		// reduction consistent with the fresh path.
		for _, i := range s.ancestors[j] {
			h := dim(i)
			if h < denseMinDim || !(tags[j*nb+j] || s.snodal(j)) {
				continue
			}
			if density(s.est.lowerNnz[i][j], h*w) >= thr || adjacent(i) {
				tags[i*nb+j] = true
				any = true
			}
		}
		for kp := s.subLo[j]; kp < j; kp++ {
			h := dim(kp)
			if h < denseMinDim || !(tags[kp*nb+kp] || s.snodal(kp)) {
				continue
			}
			if density(s.est.upperNnz[kp][j], h*w) >= thr || adjacent(kp) {
				tags[kp*nb+j] = true
				any = true
			}
		}
	}
	if any {
		s.dense = tags
	}
}

// diagDenseEst is the diagonal dense-tag predicate, shared by
// computeDenseTags and the supernode detection so the two classifications
// never disagree about which diagonals the fully dense panel LU claims.
func (s *ndSym) diagDenseEst(j int, thr float64) bool {
	b0, b1 := s.blockRange(j)
	w := b1 - b0
	if w < denseMinDim {
		return false
	}
	d := float64(s.est.diagNnz[j]) / float64(w*(w+1))
	if d > 1 {
		d = 1
	}
	return d >= thr
}

// snodeMinDim is the smallest leaf diagonal worth supernode detection:
// below it the panels the merging could produce are too small to beat the
// per-column sparse bookkeeping they replace.
const snodeMinDim = 32

// snodeMaxWidth caps supernode width (pure etree chains included) so panel
// scratch stays bounded; SuperLU uses the same order of magnitude.
const snodeMaxWidth = 64

// computeSupernodes detects supernodes inside the leaf diagonals of one
// fine-ND block from their column elimination trees (consecutive columns
// with nested U patterns, relaxed amalgamation like SuperLU), so
// moderate-density leaves that the area-threshold gate never tags still get
// blocked panel kernels. Leaf diagonals only: a leaf factors its input
// block directly (no reduction feeds it), so the Analyze-time pattern the
// etree is built from is exactly the pattern the numeric phase eliminates.
// dp is the fully permuted ND matrix. Must run before computeDenseTags,
// which consults the result to tag couplings onto supernodal leaves.
func (s *ndSym) computeSupernodes(dp *sparse.CSC, opts Options) {
	if opts.NoSupernodes || s.est == nil {
		return
	}
	thr := opts.denseKernelThreshold()
	relax := opts.supernodeRelax()
	var snodes [][]int
	for t := 0; t < s.p; t++ {
		leaf := s.tree.Leaves[t]
		b0, b1 := s.blockRange(leaf)
		if b1-b0 < snodeMinDim {
			continue
		}
		if !opts.NoDenseKernels && s.diagDenseEst(leaf, thr) {
			continue // the fully dense panel LU already covers it
		}
		diag := dp.ExtractBlock(b0, b1, b0, b1)
		// Column etree drives the run structure (the LU bound under
		// pivoting); symmetric-pattern column counts drive the padding
		// bound that keeps runs to genuinely shared factor patterns.
		counts := etree.ColCounts(diag, etree.Symmetric(diag))
		xsup := etree.RelaxedSupernodes(etree.ColEtree(diag), counts, relax, snodeMaxWidth)
		wide := false
		for si := 0; si+1 < len(xsup); si++ {
			if xsup[si+1]-xsup[si] >= 2 {
				wide = true
				break
			}
		}
		if !wide {
			continue
		}
		if snodes == nil {
			snodes = make([][]int, s.nb)
		}
		snodes[leaf] = xsup
	}
	s.snodes = snodes
}

// snodal reports whether diagonal b carries a supernode partition.
func (s *ndSym) snodal(b int) bool {
	return s.snodes != nil && s.snodes[b] != nil
}

// snodesOf returns diagonal b's supernode partition (nil when the block
// factors column at a time).
func (s *ndSym) snodesOf(b int) []int {
	if s.snodes == nil {
		return nil
	}
	return s.snodes[b]
}

// Supernodes reports how many wide supernodes (two or more merged columns)
// the analysis detected across every fine-ND block's leaf diagonals (0
// under NoSupernodes, or when no elimination tree produced a mergeable
// run).
func (s *Symbolic) Supernodes() int {
	total := 0
	for _, ns := range s.ndsym {
		if ns == nil || ns.snodes == nil {
			continue
		}
		for _, xsup := range ns.snodes {
			for si := 0; si+1 < len(xsup); si++ {
				if xsup[si+1]-xsup[si] >= 2 {
					total++
				}
			}
		}
	}
	return total
}

// isDense reports whether kernel (i, j) was tagged for the dense layer.
func (s *ndSym) isDense(i, j int) bool {
	return s.dense != nil && s.dense[i*s.nb+j]
}

// DenseKernels reports how many fine-ND kernels the analysis tagged for the
// dense panel layer (0 under NoDenseKernels, or when no block's estimated
// density reaches the threshold — the low-fill regime the paper targets).
func (s *Symbolic) DenseKernels() int {
	total := 0
	for _, ns := range s.ndsym {
		if ns == nil {
			continue
		}
		for _, d := range ns.dense {
			if d {
				total++
			}
		}
	}
	return total
}

// blockRowRanges records the min/max row index of every column of a block —
// the paper's lest/uest data structure.
func blockRowRanges(b *sparse.CSC) struct{ lo, hi []int } {
	lo := make([]int, b.N)
	hi := make([]int, b.N)
	for c := 0; c < b.N; c++ {
		p0, p1 := b.Colptr[c], b.Colptr[c+1]
		if p0 == p1 {
			lo[c], hi[c] = -1, -1
			continue
		}
		lo[c] = b.Rowidx[p0] // columns are sorted
		hi[c] = b.Rowidx[p1-1]
	}
	return struct{ lo, hi []int }{lo, hi}
}

// rangeNnz sums the dense spans of the recorded ranges: the "dense between
// minimum and maximum" upper bound.
func rangeNnz(r struct{ lo, hi []int }, dense bool) int {
	total := 0
	for c := range r.lo {
		if r.lo[c] < 0 {
			continue
		}
		if dense {
			total += r.hi[c] - r.lo[c] + 1
		} else {
			total++
		}
	}
	return total
}

// reachBound estimates the nnz of an upper block U_leaf,k: each column's
// sparse triangular solve can fill at most up to the leaf's subtree column
// counts; bound by column count sums capped at the block area.
func reachBound(b *sparse.CSC, leafCounts []int) int {
	total := 0
	for c := 0; c < b.N; c++ {
		span := 0
		for p := b.Colptr[c]; p < b.Colptr[c+1]; p++ {
			i := b.Rowidx[p]
			if i < len(leafCounts) {
				span += leafCounts[i]
			}
		}
		if span > b.M {
			span = b.M
		}
		total += span
	}
	if cap := b.M * b.N; total > cap {
		total = cap
	}
	return total
}
