package core

import (
	"sync"

	"repro/internal/etree"
	"repro/internal/sparse"
)

// ndEstimates is the product of the paper's Algorithm 3 (Fine ND Symbolic
// Factorization): per-2D-block nonzero count estimates computed in
// parallel, used to pre-size factor storage so the numeric phase avoids
// reallocation inside the parallel region (the bottleneck the paper calls
// out). Diagonal blocks get elimination-tree column counts (treelevel -1);
// off-diagonal blocks get the lest/uest min/max row-range bounds: a column
// whose lower and upper estimated ranges overlap is assumed dense between
// its minimum and maximum row — "a reasonable upper bound and cheaper than
// storing the whole nonzero pattern" (paper §III-C).
type ndEstimates struct {
	// diagNnz[b] estimates nnz(L)+nnz(U) of diagonal block b.
	diagNnz []int
	// lowerNnz[i][j] and upperNnz[i][j] estimate the off-diagonal blocks.
	lowerNnz [][]int
	upperNnz [][]int
}

// estimateND runs the parallel symbolic estimation over the 2D structure of
// one fine-ND block. d is the fully permuted ND matrix.
func estimateND(d *sparse.CSC, s *ndSym) *ndEstimates {
	nb := s.nb
	est := &ndEstimates{
		diagNnz:  make([]int, nb),
		lowerNnz: make([][]int, nb),
		upperNnz: make([][]int, nb),
	}
	for i := 0; i < nb; i++ {
		est.lowerNnz[i] = make([]int, nb)
		est.upperNnz[i] = make([]int, nb)
	}

	// treelevel -1 / 0: per-leaf etrees, diagonal column counts and the
	// lest/uest row ranges of every off-diagonal block — embarrassingly
	// parallel over leaves (Algorithm 3 lines 2-9).
	type ranges struct{ lo, hi []int } // per column of the target block
	lest := make([][]ranges, nb)       // lest[i][path idx]
	var wg sync.WaitGroup
	for t := 0; t < s.p; t++ {
		wg.Add(1)
		go func(t int) {
			defer wg.Done()
			leaf := s.tree.Leaves[t]
			r0, r1 := s.blockRange(leaf)
			diag := d.ExtractBlock(r0, r1, r0, r1)
			parent := etree.Symmetric(diag)
			counts := etree.ColCounts(diag, parent)
			sum := 0
			for _, c := range counts {
				sum += c
			}
			est.diagNnz[leaf] = 2 * sum
			// Lower off-diagonal row ranges L_k,leaf (Algorithm 3 line 6):
			// pivoting inside the leaf cannot change them (fill-path
			// theorem), so the input ranges bound the factor.
			lest[leaf] = make([]ranges, len(s.ancestors[leaf]))
			for ai, anc := range s.ancestors[leaf] {
				a0, a1 := s.blockRange(anc)
				blk := d.ExtractBlock(a0, a1, r0, r1)
				lest[leaf][ai] = blockRowRanges(blk)
				est.lowerNnz[anc][leaf] = rangeNnz(lest[leaf][ai], true)
			}
			// Upper off-diagonal U_leaf,k (line 8): bound each column by
			// the reach estimate |subtree up to max row|.
			for _, anc := range s.ancestors[leaf] {
				a0, a1 := s.blockRange(anc)
				blk := d.ExtractBlock(r0, r1, a0, a1)
				est.upperNnz[leaf][anc] = reachBound(blk, counts)
			}
		}(t)
	}
	wg.Wait()

	// Higher treelevels (Algorithm 3 lines 11-18): separator diagonal and
	// off-diagonal estimates from the accumulated child bounds. Blocks at
	// the same height are independent — parallel over nodes per level.
	for h := 1; h <= s.maxH; h++ {
		var lwg sync.WaitGroup
		for j := 0; j < nb; j++ {
			if s.height[j] != h {
				continue
			}
			lwg.Add(1)
			go func(j int) {
				defer lwg.Done()
				r0, r1 := s.blockRange(j)
				w := r1 - r0
				// Diagonal: input counts plus the dense-span upper bound of
				// the products L_jk·U_kj over the subtree (line 14).
				diag := d.ExtractBlock(r0, r1, r0, r1)
				base := diag.Nnz()
				fillBound := 0
				for kp := s.subLo[j]; kp < j; kp++ {
					lo := est.lowerNnz[j][kp]
					up := est.upperNnz[kp][j]
					if lo > 0 && up > 0 {
						// Overlapping contributions assumed dense in the
						// spanned rows, bounded by the block area.
						f := lo + up
						if f > w*w-base-fillBound {
							f = w*w - base - fillBound
						}
						if f > 0 {
							fillBound += f
						}
					}
				}
				est.diagNnz[j] = 2 * (base + fillBound)
				// Off-diagonal blocks of the separator column/row (lines
				// 15-16): input nnz plus the subtree products' spans.
				for _, anc := range s.ancestors[j] {
					a0, a1 := s.blockRange(anc)
					low := d.ExtractBlock(a0, a1, r0, r1)
					bound := low.Nnz()
					for kp := s.subLo[j]; kp < j; kp++ {
						if est.lowerNnz[anc][kp] > 0 && est.upperNnz[kp][j] > 0 {
							bound += est.upperNnz[kp][j]
						}
					}
					if cap := (a1 - a0) * w; bound > cap {
						bound = cap
					}
					est.lowerNnz[anc][j] = bound

					upb := d.ExtractBlock(r0, r1, a0, a1).Nnz()
					for kp := s.subLo[j]; kp < j; kp++ {
						if est.upperNnz[kp][anc] > 0 {
							upb += est.upperNnz[kp][anc] / 2
						}
					}
					if cap := w * (a1 - a0); upb > cap {
						upb = cap
					}
					est.upperNnz[j][anc] = upb
				}
			}(j)
		}
		lwg.Wait()
	}
	return est
}

// blockRowRanges records the min/max row index of every column of a block —
// the paper's lest/uest data structure.
func blockRowRanges(b *sparse.CSC) struct{ lo, hi []int } {
	lo := make([]int, b.N)
	hi := make([]int, b.N)
	for c := 0; c < b.N; c++ {
		p0, p1 := b.Colptr[c], b.Colptr[c+1]
		if p0 == p1 {
			lo[c], hi[c] = -1, -1
			continue
		}
		lo[c] = b.Rowidx[p0] // columns are sorted
		hi[c] = b.Rowidx[p1-1]
	}
	return struct{ lo, hi []int }{lo, hi}
}

// rangeNnz sums the dense spans of the recorded ranges: the "dense between
// minimum and maximum" upper bound.
func rangeNnz(r struct{ lo, hi []int }, dense bool) int {
	total := 0
	for c := range r.lo {
		if r.lo[c] < 0 {
			continue
		}
		if dense {
			total += r.hi[c] - r.lo[c] + 1
		} else {
			total++
		}
	}
	return total
}

// reachBound estimates the nnz of an upper block U_leaf,k: each column's
// sparse triangular solve can fill at most up to the leaf's subtree column
// counts; bound by column count sums capped at the block area.
func reachBound(b *sparse.CSC, leafCounts []int) int {
	total := 0
	for c := 0; c < b.N; c++ {
		span := 0
		for p := b.Colptr[c]; p < b.Colptr[c+1]; p++ {
			i := b.Rowidx[p]
			if i < len(leafCounts) {
				span += leafCounts[i]
			}
		}
		if span > b.M {
			span = b.M
		}
		total += span
	}
	if cap := b.M * b.N; total > cap {
		total = cap
	}
	return total
}
