package core

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/gp"
	"repro/internal/order/nd"
	"repro/internal/sparse"
)

// ndSym is the symbolic structure of one fine-ND block (the paper's D2):
// the dependency tree of Figure 3(b) plus the thread mapping.
type ndSym struct {
	tree *nd.Tree
	nb   int // number of tree nodes (2p-1)
	p    int // leaves / cooperating threads

	subLo     []int   // subtree(K) spans block ids [subLo[K], K]
	ancestors [][]int // ancestors[J]: path from parent(J) to root
	owner     []int   // owning thread (leaf rank) of each node
	leafLo    []int   // first leaf rank in subtree(K)
	leafHi    []int   // last leaf rank in subtree(K)
	height    []int
	maxH      int

	// est holds the Algorithm 3 nonzero estimates (may be nil when the
	// symbolic phase was skipped, e.g. in unit tests of the numeric layer).
	est *ndEstimates
}

func newNDSym(tree *nd.Tree) *ndSym {
	nb := tree.NumBlocks()
	s := &ndSym{
		tree:      tree,
		nb:        nb,
		p:         tree.NumLeaves,
		subLo:     make([]int, nb),
		ancestors: make([][]int, nb),
		owner:     make([]int, nb),
		leafLo:    make([]int, nb),
		leafHi:    make([]int, nb),
		height:    tree.Height,
	}
	leafRank := make(map[int]int, len(tree.Leaves))
	for r, leaf := range tree.Leaves {
		leafRank[leaf] = r
	}
	// Postorder layout: children precede parents; compute subtree spans and
	// leaf ranges bottom-up (ids ascending visit children first).
	children := make([][]int, nb)
	for b := 0; b < nb; b++ {
		if par := tree.Parent[b]; par != -1 {
			children[par] = append(children[par], b)
		}
	}
	for b := 0; b < nb; b++ {
		if len(children[b]) == 0 {
			s.subLo[b] = b
			s.leafLo[b] = leafRank[b]
			s.leafHi[b] = leafRank[b]
			continue
		}
		lo, llo, lhi := b, 1<<30, -1
		for _, c := range children[b] {
			if s.subLo[c] < lo {
				lo = s.subLo[c]
			}
			if s.leafLo[c] < llo {
				llo = s.leafLo[c]
			}
			if s.leafHi[c] > lhi {
				lhi = s.leafHi[c]
			}
		}
		s.subLo[b] = lo
		s.leafLo[b] = llo
		s.leafHi[b] = lhi
	}
	for b := 0; b < nb; b++ {
		s.owner[b] = s.leafLo[b]
		for a := tree.Parent[b]; a != -1; a = tree.Parent[a] {
			s.ancestors[b] = append(s.ancestors[b], a)
		}
		if s.height[b] > s.maxH {
			s.maxH = s.height[b]
		}
	}
	return s
}

// ndNum is the numeric 2D factorization: one CSC per live block of the
// hierarchical layout, exactly the paper's "hierarchy of two-dimensional
// sparse matrix blocks" storing both the reordered matrix and its factors.
type ndNum struct {
	sym  *ndSym
	n    int
	diag []*gp.Factors
	// lower[I][J] (I ancestor of J): L̃ block in unpermuted I-rows,
	// elimination-step columns of J. upper[K][J] (K descendant of J):
	// U block in pivot-space K-rows.
	lower [][]*sparse.CSC
	upper [][]*sparse.CSC
	// a[I][J] holds the permuted input blocks for every coupled pair.
	a [][]*sparse.CSC
	// red[I][J] caches the reduced blocks Â_IJ = A_IJ − Σ L·U wherever a
	// reduction feeds a kernel, so the in-place refactorization sweep can
	// refresh their values over the same (structural) patterns the first
	// factorization discovered.
	red [][]*sparse.CSC

	opts  Options
	flags *blockFlags
	barr  *barrier
	// re holds the reusable state of the in-place refactorization sweep
	// (entry maps into the permuted matrix, pooled per-worker workspaces,
	// the resettable epoch flag fabric). Built on the first Refactor.
	re *ndRefactor

	errMu    sync.Mutex
	firstErr error

	// SyncWaits counts point-to-point waits that actually blocked, for the
	// synchronization ablation experiment.
	SyncWaits int64

	// phaseDur[t][phase] is thread t's compute time in each step of the
	// static schedule. All threads traverse the same phase sequence, so the
	// simulated p-core makespan of the schedule is Σ_phase max_t duration —
	// the hardware-substitution timing model of DESIGN.md.
	phaseDur [][]float64
}

// simSeconds returns the simulated parallel makespan of the recorded
// schedule.
func (num *ndNum) simSeconds() float64 {
	total := 0.0
	if len(num.phaseDur) == 0 {
		return 0
	}
	phases := len(num.phaseDur[0])
	for ph := 0; ph < phases; ph++ {
		max := 0.0
		for t := range num.phaseDur {
			if ph < len(num.phaseDur[t]) && num.phaseDur[t][ph] > max {
				max = num.phaseDur[t][ph]
			}
		}
		total += max
	}
	return total
}

// blockRange returns the index range of tree block b within the ND matrix.
func (s *ndSym) blockRange(b int) (int, int) {
	return s.tree.BlockPtr[b], s.tree.BlockPtr[b+1]
}

// extractBlocks splits the permuted ND matrix d into the 2D block grid.
func (num *ndNum) extractBlocks(d *sparse.CSC) {
	s := num.sym
	nb := s.nb
	num.a = make([][]*sparse.CSC, nb)
	num.lower = make([][]*sparse.CSC, nb)
	num.upper = make([][]*sparse.CSC, nb)
	num.red = make([][]*sparse.CSC, nb)
	for i := 0; i < nb; i++ {
		num.a[i] = make([]*sparse.CSC, nb)
		num.lower[i] = make([]*sparse.CSC, nb)
		num.upper[i] = make([]*sparse.CSC, nb)
		num.red[i] = make([]*sparse.CSC, nb)
	}
	for j := 0; j < nb; j++ {
		c0, c1 := s.blockRange(j)
		// Diagonal.
		num.a[j][j] = d.ExtractBlock(c0, c1, c0, c1)
		// Lower: ancestors of j (larger ids, below in matrix order).
		for _, i := range s.ancestors[j] {
			r0, r1 := s.blockRange(i)
			num.a[i][j] = d.ExtractBlock(r0, r1, c0, c1)
		}
		// Upper: all descendants of j.
		for i := s.subLo[j]; i < j; i++ {
			r0, r1 := s.blockRange(i)
			num.a[i][j] = d.ExtractBlock(r0, r1, c0, c1)
		}
	}
}

// factorND runs the parallel numeric factorization of one fine-ND block
// (Algorithm 4 at block granularity; column-level interleaving is replaced
// by per-block point-to-point flags, which preserves the dependency
// structure of the paper's dependency tree). Same-pattern numeric
// refreshes go through refactorInPlace instead.
func factorND(d *sparse.CSC, sym *ndSym, opts Options) (*ndNum, error) {
	num := &ndNum{sym: sym, n: d.N, opts: opts, diag: make([]*gp.Factors, sym.nb)}
	num.extractBlocks(d)
	num.flags = newBlockFlags(sym.nb)
	num.phaseDur = make([][]float64, sym.p)
	num.SyncWaits = 0
	if opts.Sync == SyncBarrier {
		num.barr = newBarrier(sym.p)
	}
	var wg sync.WaitGroup
	for t := 0; t < sym.p; t++ {
		wg.Add(1)
		go func(t int) {
			defer wg.Done()
			num.worker(t)
		}(t)
	}
	wg.Wait()
	if num.firstErr != nil {
		return nil, num.firstErr
	}
	num.SyncWaits = num.flags.contended.Load()
	return num, nil
}

func (num *ndNum) fail(err error) {
	num.errMu.Lock()
	if num.firstErr == nil {
		num.firstErr = err
	}
	num.errMu.Unlock()
	num.flags.fail()
	if num.barr != nil {
		num.barr.breakBarrier()
	}
}

// sync points: in barrier mode every thread meets at every step; in
// point-to-point mode these are no-ops and only flag waits synchronize.
func (num *ndNum) phaseBarrier() bool {
	if num.barr == nil {
		return !num.flags.aborted()
	}
	return num.barr.await()
}

func (num *ndNum) wait(i, j int) bool {
	return num.flags.wait(i, j)
}

// worker runs the static schedule of thread t. Each schedule step is
// timed (compute only, not waits) into phaseDur for the simulated-makespan
// model.
func (num *ndNum) worker(t int) {
	s := num.sym
	leaf := s.tree.Leaves[t]
	ws := gp.NewWorkspace(maxBlockDim(s))
	mark := make([]int, num.n+1)
	acc := make([]float64, num.n+1)
	tag := 0
	var busy float64
	compute := func(f func() error) bool {
		t0 := time.Now()
		err := f()
		busy += time.Since(t0).Seconds()
		if err != nil {
			num.fail(err)
			return false
		}
		return true
	}
	endPhase := func() {
		num.phaseDur[t] = append(num.phaseDur[t], busy)
		busy = 0
	}

	// ---- treelevel -1: factor the leaf diagonal and its lower blocks.
	ok := compute(func() error {
		if err := num.factorDiag(leaf, num.a[leaf][leaf], ws); err != nil {
			return err
		}
		num.flags.set(leaf, leaf)
		for _, i := range s.ancestors[leaf] {
			num.lower[i][leaf] = num.diag[leaf].LowerBlockSolve(num.a[i][leaf], mark, &tag, acc)
			num.flags.set(i, leaf)
		}
		return nil
	})
	endPhase()
	if !ok || !num.phaseBarrier() {
		return
	}

	// ---- separator columns, bottom-up (the paper's slevel loop).
	for slevel := 1; slevel <= s.maxH; slevel++ {
		j := ancestorAtHeight(s, leaf, slevel)
		// Step A (treelevel 0): my leaf's upper block U_{leaf,j}.
		ok = compute(func() error {
			num.upper[leaf][j] = num.solveUpper(leaf, num.a[leaf][j], ws)
			num.flags.set(leaf, j)
			return nil
		})
		endPhase()
		if !ok || !num.phaseBarrier() {
			return
		}
		// Step B: internal path nodes I owned by this thread.
		for h := 1; h < slevel; h++ {
			k := ancestorAtHeight(s, leaf, h)
			if s.owner[k] == t {
				lows, ups, ok2 := num.gatherReduction(k, j)
				if !ok2 {
					endPhase()
					return
				}
				if !compute(func() error {
					ahat := num.a[k][j]
					if len(lows) > 0 {
						ahat = reduceBlock(num.a[k][j], lows, ups, mark, &tag, acc)
						num.red[k][j] = ahat
					}
					num.upper[k][j] = num.solveUpper(k, ahat, ws)
					num.flags.set(k, j)
					return nil
				}) {
					endPhase()
					return
				}
			}
			endPhase()
			if !num.phaseBarrier() {
				return
			}
		}
		// Step C: the diagonal LU_jj by the owner of j.
		if s.owner[j] == t {
			lows, ups, ok2 := num.gatherReduction(j, j)
			if !ok2 {
				endPhase()
				return
			}
			if !compute(func() error {
				ahat := num.a[j][j]
				if len(lows) > 0 {
					ahat = reduceBlock(num.a[j][j], lows, ups, mark, &tag, acc)
					num.red[j][j] = ahat
				}
				if err := num.factorDiag(j, ahat, ws); err != nil {
					return err
				}
				num.flags.set(j, j)
				return nil
			}) {
				endPhase()
				return
			}
		}
		endPhase()
		if !num.phaseBarrier() {
			return
		}
		// Step D: lower blocks L_ij for ancestors i of j, distributed
		// round-robin over the threads of subtree(j).
		if !num.wait(j, j) {
			return
		}
		nsub := s.leafHi[j] - s.leafLo[j] + 1
		for idx, i := range s.ancestors[j] {
			if idx%nsub != t-s.leafLo[j] {
				continue
			}
			lows, ups, ok2 := num.gatherRowReduction(i, j)
			if !ok2 {
				endPhase()
				return
			}
			if !compute(func() error {
				ahat := num.a[i][j]
				if len(lows) > 0 {
					ahat = reduceBlock(num.a[i][j], lows, ups, mark, &tag, acc)
					num.red[i][j] = ahat
				}
				num.lower[i][j] = num.diag[j].LowerBlockSolve(ahat, mark, &tag, acc)
				num.flags.set(i, j)
				return nil
			}) {
				endPhase()
				return
			}
		}
		endPhase()
		if !num.phaseBarrier() {
			return
		}
	}
}

// factorDiag factors diagonal block b from matrix m.
func (num *ndNum) factorDiag(b int, m *sparse.CSC, ws *gp.Workspace) error {
	hint := 0
	if num.sym.est != nil {
		hint = num.sym.est.diagNnz[b]
	}
	f, err := gp.Factor(m, hint, gp.Options{PivotTol: num.opts.PivotTol}, ws)
	if err != nil {
		return fmt.Errorf("core: nd diag block %d: %w", b, err)
	}
	num.diag[b] = f
	return nil
}

// gatherReduction waits for and collects the (lower, upper) block pairs
// feeding the reduction Â_kj = A_kj − Σ_{k' ∈ subtree(k)\{k}} L_kk'·U_k'j,
// i.e. the paper's two-phase reduction of Figure 4(d).
func (num *ndNum) gatherReduction(k, j int) (lows, ups []*sparse.CSC, ok bool) {
	s := num.sym
	for kp := s.subLo[k]; kp < k; kp++ {
		if !num.wait(kp, j) || !num.wait(k, kp) {
			return nil, nil, false
		}
		if num.upper[kp][j] == nil || num.lower[k][kp] == nil {
			continue
		}
		lows = append(lows, num.lower[k][kp])
		ups = append(ups, num.upper[kp][j])
	}
	return lows, ups, true
}

// gatherRowReduction collects pairs for a lower target row i (an ancestor
// of column j): Â_ij = A_ij − Σ_{k' ∈ subtree(j)\{j}} L_ik'·U_k'j.
func (num *ndNum) gatherRowReduction(i, j int) (lows, ups []*sparse.CSC, ok bool) {
	s := num.sym
	for kp := s.subLo[j]; kp < j; kp++ {
		if !num.wait(kp, j) || !num.wait(i, kp) {
			return nil, nil, false
		}
		if num.upper[kp][j] == nil || num.lower[i][kp] == nil {
			continue
		}
		lows = append(lows, num.lower[i][kp])
		ups = append(ups, num.upper[kp][j])
	}
	return lows, ups, true
}

// solveUpper computes U_kj = L_kk⁻¹ P_k Â_kj column by column with
// Gilbert–Peierls pattern discovery (the caller supplies the reduced block
// ahat). The output pattern is the structural DFS reach — exact-zero values
// are kept — so a same-pattern refactorization can refresh the block's
// values in place with gp.RefactorUpperBlock.
func (num *ndNum) solveUpper(k int, ahat *sparse.CSC, ws *gp.Workspace) *sparse.CSC {
	f := num.diag[k]
	out := sparse.NewCSC(ahat.M, ahat.N, ahat.Nnz()*2)
	for c := 0; c < ahat.N; c++ {
		bIdx := ahat.Rowidx[ahat.Colptr[c]:ahat.Colptr[c+1]]
		bVal := ahat.Values[ahat.Colptr[c]:ahat.Colptr[c+1]]
		patt := f.SolveSparseL(bIdx, bVal, ws)
		// Copy out sorted.
		start := len(out.Rowidx)
		for _, r := range patt {
			out.Rowidx = append(out.Rowidx, r)
			out.Values = append(out.Values, ws.X[r])
		}
		gp.ClearSparse(ws, patt)
		sortColumnSegment(out.Rowidx[start:], out.Values[start:])
		out.Colptr[c+1] = len(out.Rowidx)
	}
	return out
}

// reduceBlock assembles Â = A0 − Σ_t lows[t]·ups[t] as a fresh CSC with
// sorted columns. A0 may be nil (treated as zero) when a block has no
// original entries. The output pattern is structural (the union of the
// contributing patterns, independent of the values), the invariant
// reduceBlockInto relies on to refresh the same block in place.
func reduceBlock(a0 *sparse.CSC, lows, ups []*sparse.CSC, mark []int, tagp *int, acc []float64) *sparse.CSC {
	m, n := 0, 0
	if a0 != nil {
		m, n = a0.M, a0.N
	} else {
		m, n = lows[0].M, ups[0].N
	}
	nnzHint := 0
	if a0 != nil {
		nnzHint = a0.Nnz()
	}
	out := sparse.NewCSC(m, n, nnzHint*2)
	var patt []int
	for c := 0; c < n; c++ {
		*tagp++
		tag := *tagp
		patt = patt[:0]
		if a0 != nil {
			for p := a0.Colptr[c]; p < a0.Colptr[c+1]; p++ {
				i := a0.Rowidx[p]
				if mark[i] != tag {
					mark[i] = tag
					patt = append(patt, i)
				}
				acc[i] += a0.Values[p]
			}
		}
		for t := range lows {
			lo, up := lows[t], ups[t]
			for p := up.Colptr[c]; p < up.Colptr[c+1]; p++ {
				k := up.Rowidx[p]
				ukc := up.Values[p]
				for q := lo.Colptr[k]; q < lo.Colptr[k+1]; q++ {
					i := lo.Rowidx[q]
					if mark[i] != tag {
						mark[i] = tag
						patt = append(patt, i)
					}
					acc[i] -= lo.Values[q] * ukc
				}
			}
		}
		sort.Ints(patt)
		for _, i := range patt {
			out.Rowidx = append(out.Rowidx, i)
			out.Values = append(out.Values, acc[i])
			acc[i] = 0
		}
		out.Colptr[c+1] = len(out.Rowidx)
	}
	return out
}

func sortColumnSegment(rows []int, vals []float64) {
	if len(rows) < 2 {
		return
	}
	type pair struct {
		r int
		v float64
	}
	tmp := make([]pair, len(rows))
	for i := range rows {
		tmp[i] = pair{rows[i], vals[i]}
	}
	sort.Slice(tmp, func(a, b int) bool { return tmp[a].r < tmp[b].r })
	for i := range tmp {
		rows[i] = tmp[i].r
		vals[i] = tmp[i].v
	}
}

func ancestorAtHeight(s *ndSym, leaf, h int) int {
	b := leaf
	for s.height[b] < h {
		b = s.tree.Parent[b]
	}
	return b
}

func maxBlockDim(s *ndSym) int {
	max := 1
	for b := 0; b < s.nb; b++ {
		if sz := s.tree.BlockSize(b); sz > max {
			max = sz
		}
	}
	return max
}

// ndSolve applies the 2D block forward/backward substitution to y (the
// right-hand side in ND-permuted local coordinates), in place. scratch is
// caller-provided pivot-application space of at least maxBlockDim(sym)
// elements (nil falls back to a local allocation), so repeated solves stay
// allocation-free and reentrant.
func (num *ndNum) ndSolve(y []float64, scratch []float64) {
	s := num.sym
	nb := s.nb
	if len(scratch) < maxBlockDim(s) {
		scratch = make([]float64, maxBlockDim(s))
	}
	// Forward: block columns ascending (postorder = matrix order).
	for k := 0; k < nb; k++ {
		c0, c1 := s.blockRange(k)
		if c0 == c1 {
			continue
		}
		f := num.diag[k]
		// Apply the block pivot then unit-lower solve.
		z := scratch[:c1-c0]
		for i := range z {
			z[i] = y[c0+f.P[i]]
		}
		f.LSolve(z)
		copy(y[c0:c1], z)
		// Subtract this block's influence on ancestor rows.
		for _, i := range s.ancestors[k] {
			lb := num.lower[i][k]
			if lb == nil {
				continue
			}
			r0, _ := s.blockRange(i)
			for c := 0; c < lb.N; c++ {
				xc := y[c0+c]
				if xc == 0 {
					continue
				}
				for p := lb.Colptr[c]; p < lb.Colptr[c+1]; p++ {
					y[r0+lb.Rowidx[p]] -= lb.Values[p] * xc
				}
			}
		}
	}
	// Backward: block columns descending; first subtract upper couplings
	// from ancestor solutions, then solve the diagonal.
	for k := nb - 1; k >= 0; k-- {
		c0, c1 := s.blockRange(k)
		if c0 == c1 {
			continue
		}
		// y_k -= Σ_{j ancestor} U_kj · x_j.
		for _, j := range s.ancestors[k] {
			ub := num.upper[k][j]
			if ub == nil {
				continue
			}
			j0, _ := s.blockRange(j)
			for c := 0; c < ub.N; c++ {
				xc := y[j0+c]
				if xc == 0 {
					continue
				}
				for p := ub.Colptr[c]; p < ub.Colptr[c+1]; p++ {
					y[c0+ub.Rowidx[p]] -= ub.Values[p] * xc
				}
			}
		}
		num.diag[k].USolve(y[c0:c1])
	}
}

// nnzLU sums the factored entries of the 2D structure.
func (num *ndNum) nnzLU() int {
	total := 0
	for _, f := range num.diag {
		if f != nil {
			total += f.NnzLU()
		}
	}
	for i := range num.lower {
		for j := range num.lower[i] {
			if num.lower[i][j] != nil {
				total += num.lower[i][j].Nnz()
			}
			if num.upper[i][j] != nil {
				total += num.upper[i][j].Nnz()
			}
		}
	}
	return total
}
