package core

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dense"
	"repro/internal/faultinject"
	"repro/internal/gp"
	"repro/internal/order/nd"
	"repro/internal/sparse"
	"repro/internal/trace"
)

// ndSym is the symbolic structure of one fine-ND block (the paper's D2):
// the dependency tree of Figure 3(b) plus the thread mapping.
type ndSym struct {
	tree *nd.Tree
	nb   int // number of tree nodes (2p-1)
	p    int // leaves / cooperating threads

	subLo     []int   // subtree(K) spans block ids [subLo[K], K]
	ancestors [][]int // ancestors[J]: path from parent(J) to root
	owner     []int   // owning thread (leaf rank) of each node
	leafLo    []int   // first leaf rank in subtree(K)
	leafHi    []int   // last leaf rank in subtree(K)
	height    []int
	maxH      int

	// est holds the Algorithm 3 nonzero estimates (may be nil when the
	// symbolic phase was skipped, e.g. in unit tests of the numeric layer).
	est *ndEstimates
	// dense[i*nb+j] tags kernel (i, j) for the dense panel layer: its
	// estimated density reached Options.DenseKernelThreshold at Analyze
	// time. nil when nothing is tagged (including NoDenseKernels and the
	// est-free unit-test path).
	dense []bool
	// snodes[b], when non-nil, is the supernode partition (xsup boundaries)
	// of leaf diagonal b, detected from its column elimination tree at
	// Analyze time: the block factors through gp.FactorSupernodalInto and
	// refreshes through gp.RefactorSupernodal. Only leaf diagonals that the
	// dense-tag gate did not claim are candidates. nil when nothing merged
	// (including Options.NoSupernodes and the est-free unit-test path).
	snodes [][]int
	// grid caches the 2D input-block patterns and their entry maps into the
	// globally permuted matrix, built once at Analyze time so every numeric
	// factorization gathers block values instead of re-extracting them.
	// nil when the analysis was built without a factor plan.
	grid *ndGrid
}

// ndGrid is the pattern side of one fine-ND block's 2D input hierarchy:
// pat[i][j] holds the sparsity pattern of coupled block (i,j) (its values
// are the analyzed matrix's) and src[i][j] maps each entry to its position
// in the globally permuted matrix. Read-only after construction; numeric
// factorizations share the patterns and gather into private value buffers.
type ndGrid struct {
	pat [][]*sparse.CSC
	src [][][]int
}

// buildNDGrid extracts the coupled 2D blocks of the fine-ND hierarchy
// rooted at permuted offset r0, with entry maps for later value gathers.
func buildNDGrid(perm *sparse.CSC, r0 int, s *ndSym) *ndGrid {
	nb := s.nb
	g := &ndGrid{
		pat: make([][]*sparse.CSC, nb),
		src: make([][][]int, nb),
	}
	for i := 0; i < nb; i++ {
		g.pat[i] = make([]*sparse.CSC, nb)
		g.src[i] = make([][]int, nb)
	}
	attach := func(i, j int) {
		ri0, ri1 := s.blockRange(i)
		cj0, cj1 := s.blockRange(j)
		g.pat[i][j], g.src[i][j] = perm.ExtractBlockWithMap(r0+ri0, r0+ri1, r0+cj0, r0+cj1)
	}
	for j := 0; j < nb; j++ {
		attach(j, j) // diagonal
		for _, i := range s.ancestors[j] {
			attach(i, j) // lower: ancestors of j
		}
		for i := s.subLo[j]; i < j; i++ {
			attach(i, j) // upper: descendants of j
		}
	}
	return g
}

func newNDSym(tree *nd.Tree) *ndSym {
	nb := tree.NumBlocks()
	s := &ndSym{
		tree:      tree,
		nb:        nb,
		p:         tree.NumLeaves,
		subLo:     make([]int, nb),
		ancestors: make([][]int, nb),
		owner:     make([]int, nb),
		leafLo:    make([]int, nb),
		leafHi:    make([]int, nb),
		height:    tree.Height,
	}
	leafRank := make(map[int]int, len(tree.Leaves))
	for r, leaf := range tree.Leaves {
		leafRank[leaf] = r
	}
	// Postorder layout: children precede parents; compute subtree spans and
	// leaf ranges bottom-up (ids ascending visit children first).
	children := make([][]int, nb)
	for b := 0; b < nb; b++ {
		if par := tree.Parent[b]; par != -1 {
			children[par] = append(children[par], b)
		}
	}
	for b := 0; b < nb; b++ {
		if len(children[b]) == 0 {
			s.subLo[b] = b
			s.leafLo[b] = leafRank[b]
			s.leafHi[b] = leafRank[b]
			continue
		}
		lo, llo, lhi := b, 1<<30, -1
		for _, c := range children[b] {
			if s.subLo[c] < lo {
				lo = s.subLo[c]
			}
			if s.leafLo[c] < llo {
				llo = s.leafLo[c]
			}
			if s.leafHi[c] > lhi {
				lhi = s.leafHi[c]
			}
		}
		s.subLo[b] = lo
		s.leafLo[b] = llo
		s.leafHi[b] = lhi
	}
	for b := 0; b < nb; b++ {
		s.owner[b] = s.leafLo[b]
		for a := tree.Parent[b]; a != -1; a = tree.Parent[a] {
			s.ancestors[b] = append(s.ancestors[b], a)
		}
		if s.height[b] > s.maxH {
			s.maxH = s.height[b]
		}
	}
	return s
}

// ndNum is the numeric 2D factorization: one CSC per live block of the
// hierarchical layout, exactly the paper's "hierarchy of two-dimensional
// sparse matrix blocks" storing both the reordered matrix and its factors.
type ndNum struct {
	sym  *ndSym
	n    int
	diag []*gp.Factors
	// lower[I][J] (I ancestor of J): L̃ block in unpermuted I-rows,
	// elimination-step columns of J. upper[K][J] (K descendant of J):
	// U block in pivot-space K-rows.
	lower [][]*sparse.CSC
	upper [][]*sparse.CSC
	// a[I][J] holds the permuted input blocks for every coupled pair
	// (patterns shared with the grid, values private to this numeric).
	a [][]*sparse.CSC
	// aSrc[I][J] maps every entry of a[I][J] to its position in the
	// globally permuted matrix: refreshing the input hierarchy — for a
	// fresh factorization or an in-place refactorization — is a pure value
	// gather.
	aSrc [][][]int
	// red[I][J] caches the reduced blocks Â_IJ = A_IJ − Σ L·U wherever a
	// reduction feeds a kernel, so the in-place refactorization sweep can
	// refresh their values over the same (structural) patterns the first
	// factorization discovered.
	red [][]*sparse.CSC

	opts  Options
	flags *epochBlockFlags
	barr  *barrier
	// lastContended snapshots the flag fabric's cumulative contended-wait
	// counter so each factorization reports its own SyncWaits delta.
	lastContended int64
	// fws/fmark/facc/ftag are the pooled per-worker workspaces of the fresh
	// factorization sweep, allocated once and reused across FactorInto;
	// flows/fups are the per-worker reduction gather buffers.
	fws   []*gp.Workspace
	fmark [][]int
	facc  [][]float64
	ftag  []int
	flows [][]*sparse.CSC
	fups  [][]*sparse.CSC
	// fdws[t] is worker t's pooled dense panel workspace, lazily built on
	// the first dense-tagged kernel it runs (nil forever on untagged
	// hierarchies, so the low-fill path carries no dense-layer cost).
	fdws []*dense.Workspace
	// re holds the reusable state of the in-place refactorization sweep
	// (pooled per-worker workspaces, the resettable epoch flag fabric).
	// Built on the first Refactor.
	re *ndRefactor

	errMu    sync.Mutex
	firstErr error

	// SyncWaits counts point-to-point waits that actually blocked, for the
	// synchronization ablation experiment. SyncWaitNs is the wall-clock
	// nanoseconds those blocked waits (plus barrier waits in SyncBarrier
	// mode) cost during the last sweep — measured on the contended slow
	// path even when tracing is off.
	SyncWaits  int64
	SyncWaitNs int64
	// lastWaitNs snapshots the combined flag+barrier wait-nanos counters,
	// mirroring lastContended, so each sweep reports its own delta.
	lastWaitNs int64

	// blk is the coarse BTF block id this hierarchy factors (trace labels
	// only); rec receives scheduler events when tracing is enabled; phase
	// tags the events of the current sweep (fresh factor vs refresh).
	blk   int
	rec   *trace.Recorder
	phase trace.Phase
	// fwait[t] accumulates worker t's blocked wait nanos within the current
	// sweep, so each recorded event can carry the wait since the previous
	// one. Only maintained when rec is non-nil.
	fwait []int64
	// denseHits counts kernel executions routed through the dense panel
	// layer — the numeric-side counterpart of Symbolic.DenseKernels.
	denseHits atomic.Int64
	// snHits counts kernel executions routed through the supernodal blocked
	// panels — the numeric-side counterpart of Symbolic.Supernodes.
	snHits atomic.Int64

	// phaseDur[t][phase] is thread t's compute time in each step of the
	// static schedule. All threads traverse the same phase sequence, so the
	// simulated p-core makespan of the schedule is Σ_phase max_t duration —
	// the hardware-substitution timing model of DESIGN.md.
	phaseDur [][]float64
}

// simSeconds returns the simulated parallel makespan of the recorded
// schedule.
func (num *ndNum) simSeconds() float64 {
	total := 0.0
	if len(num.phaseDur) == 0 {
		return 0
	}
	phases := len(num.phaseDur[0])
	for ph := 0; ph < phases; ph++ {
		max := 0.0
		for t := range num.phaseDur {
			if ph < len(num.phaseDur[t]) && num.phaseDur[t][ph] > max {
				max = num.phaseDur[t][ph]
			}
		}
		total += max
	}
	return total
}

// blockRange returns the index range of tree block b within the ND matrix.
func (s *ndSym) blockRange(b int) (int, int) {
	return s.tree.BlockPtr[b], s.tree.BlockPtr[b+1]
}

// factorND runs the parallel numeric factorization of one fine-ND block
// (Algorithm 4 at block granularity; column-level interleaving is replaced
// by per-block point-to-point flags, which preserves the dependency
// structure of the paper's dependency tree). Same-pattern numeric
// refreshes with fixed pivots go through refactorInPlace instead.
//
// The block is coarse BTF block blk (trace labeling only) and occupies
// [r0, r0+n) of the globally permuted matrix perm. grid supplies the 2D
// input patterns and gather maps (nil builds them from perm — the slow path
// for matrices whose pattern was never analyzed). reuse, if non-nil,
// recycles a prior factorization's entire storage — input grids, diagonal
// factors, off-diagonal blocks, workspaces and the flag fabric — so
// repeated fresh factorizations stop allocating; on error its contents are
// unspecified.
func factorND(perm *sparse.CSC, blk, r0 int, sym *ndSym, opts Options, grid *ndGrid, reuse *ndNum) (*ndNum, error) {
	if grid == nil {
		grid = buildNDGrid(perm, r0, sym)
	}
	num := reuse
	if num == nil {
		nb := sym.nb
		num = &ndNum{
			sym:   sym,
			n:     grid.n(),
			opts:  opts,
			diag:  make([]*gp.Factors, nb),
			aSrc:  grid.src,
			flags: newEpochBlockFlags(nb),
			lower: make([][]*sparse.CSC, nb),
			upper: make([][]*sparse.CSC, nb),
			a:     make([][]*sparse.CSC, nb),
			red:   make([][]*sparse.CSC, nb),
			fws:   make([]*gp.Workspace, sym.p),
			fmark: make([][]int, sym.p),
			facc:  make([][]float64, sym.p),
			ftag:  make([]int, sym.p),
			flows: make([][]*sparse.CSC, sym.p),
			fups:  make([][]*sparse.CSC, sym.p),
			fdws:  make([]*dense.Workspace, sym.p),
		}
		for i := 0; i < nb; i++ {
			num.a[i] = make([]*sparse.CSC, nb)
			num.lower[i] = make([]*sparse.CSC, nb)
			num.upper[i] = make([]*sparse.CSC, nb)
			num.red[i] = make([]*sparse.CSC, nb)
		}
		for i := 0; i < nb; i++ {
			for j, pat := range grid.pat[i] {
				if pat != nil {
					num.a[i][j] = pat.SharePattern()
				}
			}
		}
		num.phaseDur = make([][]float64, sym.p)
		if opts.Sync == SyncBarrier {
			num.barr = newBarrier(sym.p)
			if opts.ctl != nil {
				// Register with the owning Numeric's cancel source so a
				// fired deadline or stall verdict wakes barrier sleepers
				// (with a cancellation cause, not a failure one).
				opts.ctl.registerBarrier(num.barr)
			}
		}
	} else {
		num.flags.Reset()
		if num.barr != nil {
			num.barr.reset() // a prior failed sweep leaves the barrier broken
		}
		num.firstErr = nil
		for t := range num.phaseDur {
			num.phaseDur[t] = num.phaseDur[t][:0]
		}
	}
	num.blk = blk
	// Refresh the resident options on reuse too: a recovery factorization
	// may carry a tightened pivot tolerance or an armed fault injector.
	// The flag fabric binds to the owner's cancel source so inner waits
	// unblock on cancellation (Bind is idempotent; ctl is per-Numeric).
	num.opts = opts
	num.flags.Bind(opts.ctl)
	num.rec = opts.Trace
	num.phase = trace.PhaseFactor
	num.resetWaitAccounting()
	// Gather the input hierarchy's values from the permuted matrix.
	for i := range num.a {
		for j, src := range num.aSrc[i] {
			if src != nil {
				sparse.ExtractBlockInto(num.a[i][j], perm, src)
			}
		}
	}
	if sym.p == 1 {
		num.worker(0)
	} else {
		var wg sync.WaitGroup
		for t := 0; t < sym.p; t++ {
			wg.Add(1)
			go func(t int) {
				// Panic isolation: record the panic as the sweep error and
				// fail the flag fabric (and barrier) so cooperating siblings
				// abort their waits instead of deadlocking. The WaitGroup is
				// the join, so no completion slots need force-releasing.
				defer wg.Done()
				defer func() {
					if r := recover(); r != nil {
						num.fail(panicError(r))
					}
				}()
				num.worker(t)
			}(t)
		}
		wg.Wait()
	}
	// Snapshot the contended-wait counters before the error return, so a
	// failed sweep's waits never leak into the next sweep's SyncWaits delta.
	total := num.flags.Contended()
	delta := total - num.lastContended
	num.lastContended = total
	waitDelta := num.snapshotWaitNs()
	if num.firstErr == nil && opts.ctl != nil && opts.ctl.Canceled() {
		// Workers unwound cooperatively without a numeric failure: report
		// the abort so a partially-built hierarchy is never published.
		num.firstErr = errSweepAborted
	}
	if num.firstErr != nil {
		return nil, num.firstErr
	}
	num.SyncWaits = delta
	num.SyncWaitNs = waitDelta
	return num, nil
}

// resetWaitAccounting prepares the per-worker wait accumulators for a new
// traced sweep (a no-op burden-wise when tracing is off: fwait stays nil).
func (num *ndNum) resetWaitAccounting() {
	if num.rec == nil {
		return
	}
	if num.fwait == nil {
		num.fwait = make([]int64, num.sym.p)
	}
	for t := range num.fwait {
		num.fwait[t] = 0
	}
}

// snapshotWaitNs returns the blocked-wait nanoseconds (fresh-sweep flag
// fabric plus barrier) accumulated since the previous snapshot.
func (num *ndNum) snapshotWaitNs() int64 {
	cur := num.flags.WaitNanos()
	if num.barr != nil {
		cur += num.barr.waitNs()
	}
	delta := cur - num.lastWaitNs
	num.lastWaitNs = cur
	return delta
}

// workerScratch returns worker t's pooled workspace, mark array and dense
// accumulator, lazily built on first use and shared by the fresh and
// in-place sweeps (mutually exclusive by contract).
func (num *ndNum) workerScratch(t int) (*gp.Workspace, []int, []float64) {
	if num.fws[t] == nil {
		num.fws[t] = gp.NewWorkspace(maxBlockDim(num.sym))
		num.fmark[t] = make([]int, num.n+1)
		num.facc[t] = make([]float64, num.n+1)
	}
	return num.fws[t], num.fmark[t], num.facc[t]
}

// denseWS returns worker t's pooled dense panel workspace.
func (num *ndNum) denseWS(t int) *dense.Workspace {
	if num.fdws[t] == nil {
		num.fdws[t] = dense.NewWorkspace()
	}
	return num.fdws[t]
}

// useDense reports whether kernel (i, j) runs on the dense panel layer:
// tagged at Analyze time from the symbolic density estimates, and not
// ablated away. The decision is value-independent and fixed per analysis,
// so every sweep of this numeric routes the kernel the same way and the
// block patterns stay stable.
func (num *ndNum) useDense(i, j int) bool {
	return !num.opts.NoDenseKernels && num.sym.isDense(i, j)
}

// upperKernel computes U_kj = L_kk⁻¹·P_k·Â_kj from the reduced block ahat:
// the dense panel TRSM when both the kernel and the solving diagonal are
// dense-tagged (the dense path reads L's contiguous dense columns), the
// sparse Gilbert–Peierls reach solve otherwise.
func (num *ndNum) upperKernel(k, j int, ahat *sparse.CSC, ws *gp.Workspace, t int) *sparse.CSC {
	if num.useDense(k, j) && num.useDense(k, k) {
		num.denseHits.Add(1)
		return num.diag[k].DenseUpperSolveInto(num.upper[k][j], ahat, num.denseWS(t))
	}
	return num.solveUpper(k, ahat, ws, num.upper[k][j])
}

// lowerKernel computes L_ij solving X·U_jj = Â_ij: the dense panel TRSM
// when both the kernel and the diagonal are dense-tagged, the sparse
// column sweep otherwise.
func (num *ndNum) lowerKernel(i, j int, ahat *sparse.CSC, mark []int, tagp *int, acc []float64, t int) *sparse.CSC {
	if num.useDense(i, j) && num.useDense(j, j) {
		num.denseHits.Add(1)
		return num.diag[j].DenseLowerSolveInto(num.lower[i][j], ahat, num.denseWS(t))
	}
	return num.diag[j].LowerBlockSolveInto(num.lower[i][j], ahat, mark, tagp, acc)
}

// reduceKernel assembles the reduced block Â_ij = A_ij − Σ L·U feeding
// kernel (i, j), caching it in red[i][j] for the in-place refresh sweeps:
// the dense accumulation panel for dense-tagged targets (no occupancy
// marks, no pattern sort), the scatter-accumulate otherwise. With no
// contributions the input block passes through untouched.
func (num *ndNum) reduceKernel(i, j int, lows, ups []*sparse.CSC, mark []int, tagp *int, acc []float64, t int) *sparse.CSC {
	if len(lows) == 0 {
		return num.a[i][j]
	}
	if num.useDense(i, j) {
		num.denseHits.Add(1)
		num.red[i][j] = reduceBlockDense(num.a[i][j], lows, ups, num.red[i][j], num.denseWS(t))
	} else {
		num.red[i][j] = reduceBlock(num.a[i][j], lows, ups, mark, tagp, acc, num.red[i][j])
	}
	return num.red[i][j]
}

// n reports the dimension of the grid's square hierarchy.
func (g *ndGrid) n() int {
	n := 0
	for j := range g.pat {
		if d := g.pat[j][j]; d != nil {
			n += d.N
		}
	}
	return n
}

// compactStorage clips every factor block to its exact length (fresh
// factorizations only; pooled reuse keeps the slack).
func (num *ndNum) compactStorage() {
	for _, f := range num.diag {
		if f != nil {
			f.Compact()
		}
	}
	for i := range num.lower {
		for j := range num.lower[i] {
			if b := num.lower[i][j]; b != nil {
				b.Compact()
			}
			if b := num.upper[i][j]; b != nil {
				b.Compact()
			}
			if b := num.red[i][j]; b != nil {
				b.Compact()
			}
		}
	}
}

func (num *ndNum) fail(err error) {
	num.errMu.Lock()
	if num.firstErr == nil {
		num.firstErr = err
	}
	num.errMu.Unlock()
	num.flags.fail()
	if num.barr != nil {
		num.barr.breakBarrier()
	}
}

// sync points: in barrier mode every thread meets at every step; in
// point-to-point mode these are no-ops and only flag waits synchronize.
// Worker index t charges the blocked time to the right trace lane.
func (num *ndNum) phaseBarrier(t int) bool {
	if num.barr == nil {
		return !num.flags.Aborted()
	}
	if num.rec == nil {
		return num.barr.await()
	}
	t0 := time.Now()
	ok := num.barr.await()
	num.fwait[t] += time.Since(t0).Nanoseconds()
	return ok
}

// waitOn waits for kernel (i, j) on the given flag fabric (the fresh
// sweep's or the refactor sweep's), charging the blocked time to worker
// t's trace lane when tracing is on.
func (num *ndNum) waitOn(flags *epochBlockFlags, i, j, t int) bool {
	if num.rec == nil {
		return flags.wait(i, j)
	}
	ns, ok := flags.waitTimed(i, j)
	num.fwait[t] += ns
	return ok
}

// flushWait emits a zero-length event carrying worker t's trailing blocked
// wait (waits not followed by any compute would otherwise be lost from the
// sweep summary). Called via defer on traced workers only.
func (num *ndNum) flushWait(t int, waitMark *int64) {
	w := num.fwait[t] - *waitMark
	if w <= 0 {
		return
	}
	end := num.rec.Now()
	num.rec.Record(trace.Event{
		Start:  end,
		End:    end,
		Wait:   w,
		Worker: trace.NDWorker(num.blk, t),
		Block:  int32(num.blk),
		Kind:   trace.KindNDKernel,
		Phase:  num.phase,
	})
	*waitMark = num.fwait[t]
}

// worker runs the static schedule of thread t. Each schedule step is
// timed (compute only, not waits) into phaseDur for the simulated-makespan
// model. All scratch comes from the pooled per-worker workspaces, so a
// recycled factorization allocates nothing here.
func (num *ndNum) worker(t int) {
	num.opts.Inject.WorkerPanic(faultinject.SweepND, t)
	num.opts.Inject.StallPoint(faultinject.SweepND, num.blk)
	s := num.sym
	leaf := s.tree.Leaves[t]
	ws, mark, acc := num.workerScratch(t)
	tag := num.ftag[t]
	defer func() { num.ftag[t] = tag }()
	rec := num.rec
	var waitMark int64
	if rec != nil {
		defer num.flushWait(t, &waitMark)
	}
	var busy float64
	compute := func(f func() error) bool {
		t0 := time.Now()
		err := f()
		d := time.Since(t0)
		busy += d.Seconds()
		if rec != nil {
			end := rec.Now()
			rec.Record(trace.Event{
				Start:  end - d.Nanoseconds(),
				End:    end,
				Wait:   num.fwait[t] - waitMark,
				Worker: trace.NDWorker(num.blk, t),
				Block:  int32(num.blk),
				Kind:   trace.KindNDKernel,
				Phase:  num.phase,
			})
			waitMark = num.fwait[t]
		}
		if err != nil {
			num.fail(err)
			return false
		}
		return true
	}
	endPhase := func() {
		num.phaseDur[t] = append(num.phaseDur[t], busy)
		busy = 0
	}

	// ---- treelevel -1: factor the leaf diagonal and its lower blocks.
	ok := compute(func() error {
		if err := num.factorDiag(leaf, num.a[leaf][leaf], ws, t); err != nil {
			return err
		}
		num.flags.set(leaf, leaf)
		for _, i := range s.ancestors[leaf] {
			num.lower[i][leaf] = num.lowerKernel(i, leaf, num.a[i][leaf], mark, &tag, acc, t)
			num.flags.set(i, leaf)
		}
		return nil
	})
	endPhase()
	if !ok || !num.phaseBarrier(t) {
		return
	}

	// ---- separator columns, bottom-up (the paper's slevel loop).
	for slevel := 1; slevel <= s.maxH; slevel++ {
		j := ancestorAtHeight(s, leaf, slevel)
		// Step A (treelevel 0): my leaf's upper block U_{leaf,j}.
		ok = compute(func() error {
			num.upper[leaf][j] = num.upperKernel(leaf, j, num.a[leaf][j], ws, t)
			num.flags.set(leaf, j)
			return nil
		})
		endPhase()
		if !ok || !num.phaseBarrier(t) {
			return
		}
		// Step B: internal path nodes I owned by this thread.
		for h := 1; h < slevel; h++ {
			k := ancestorAtHeight(s, leaf, h)
			if s.owner[k] == t {
				lows, ups, ok2 := num.gatherReductionOn(num.flags, k, j, t)
				if !ok2 {
					endPhase()
					return
				}
				if !compute(func() error {
					ahat := num.reduceKernel(k, j, lows, ups, mark, &tag, acc, t)
					num.upper[k][j] = num.upperKernel(k, j, ahat, ws, t)
					num.flags.set(k, j)
					return nil
				}) {
					endPhase()
					return
				}
			}
			endPhase()
			if !num.phaseBarrier(t) {
				return
			}
		}
		// Step C: the diagonal LU_jj by the owner of j.
		if s.owner[j] == t {
			lows, ups, ok2 := num.gatherReductionOn(num.flags, j, j, t)
			if !ok2 {
				endPhase()
				return
			}
			if !compute(func() error {
				ahat := num.reduceKernel(j, j, lows, ups, mark, &tag, acc, t)
				if err := num.factorDiag(j, ahat, ws, t); err != nil {
					return err
				}
				num.flags.set(j, j)
				return nil
			}) {
				endPhase()
				return
			}
		}
		endPhase()
		if !num.phaseBarrier(t) {
			return
		}
		// Step D: lower blocks L_ij for ancestors i of j, distributed
		// round-robin over the threads of subtree(j).
		if !num.waitOn(num.flags, j, j, t) {
			return
		}
		nsub := s.leafHi[j] - s.leafLo[j] + 1
		for idx, i := range s.ancestors[j] {
			if idx%nsub != t-s.leafLo[j] {
				continue
			}
			lows, ups, ok2 := num.gatherRowReductionOn(num.flags, i, j, t)
			if !ok2 {
				endPhase()
				return
			}
			if !compute(func() error {
				ahat := num.reduceKernel(i, j, lows, ups, mark, &tag, acc, t)
				num.lower[i][j] = num.lowerKernel(i, j, ahat, mark, &tag, acc, t)
				num.flags.set(i, j)
				return nil
			}) {
				endPhase()
				return
			}
		}
		endPhase()
		if !num.phaseBarrier(t) {
			return
		}
	}
}

// factorDiag factors diagonal block b from matrix m, reusing the block's
// prior factor storage when present; dense-tagged diagonals go through the
// pivoted panel LU (worker index t selects the pooled panel workspace).
func (num *ndNum) factorDiag(b int, m *sparse.CSC, ws *gp.Workspace, t int) error {
	if num.diag[b] == nil {
		num.diag[b] = &gp.Factors{}
	}
	if num.useDense(b, b) {
		num.denseHits.Add(1)
		if err := gp.FactorDenseInto(num.diag[b], m, num.opts.gpOptions(), num.denseWS(t)); err != nil {
			return fmt.Errorf("core: nd diag block %d: %w", b, err)
		}
		return nil
	}
	hint := 0
	if num.sym.est != nil {
		hint = num.sym.est.diagNnz[b]
	}
	if sn := num.sym.snodesOf(b); sn != nil {
		num.snHits.Add(1)
		if err := gp.FactorSupernodalInto(num.diag[b], m, sn, hint, num.opts.gpOptions(), ws, num.denseWS(t)); err != nil {
			return fmt.Errorf("core: nd diag block %d: %w", b, err)
		}
		return nil
	}
	if err := gp.FactorInto(num.diag[b], m, hint, num.opts.gpOptions(), ws); err != nil {
		return fmt.Errorf("core: nd diag block %d: %w", b, err)
	}
	return nil
}

// gatherReductionOn waits (on the given flag fabric — the fresh sweep's or
// the refactor sweep's) for and collects the (lower, upper) block pairs
// feeding the reduction Â_kj = A_kj − Σ_{k' ∈ subtree(k)\{k}} L_kk'·U_k'j,
// i.e. the paper's two-phase reduction of Figure 4(d). Pairs land in worker
// t's reusable buffers (no steady-state allocation).
func (num *ndNum) gatherReductionOn(flags *epochBlockFlags, k, j, t int) (lows, ups []*sparse.CSC, ok bool) {
	s := num.sym
	lows, ups = num.flows[t][:0], num.fups[t][:0]
	for kp := s.subLo[k]; kp < k; kp++ {
		if !num.waitOn(flags, kp, j, t) || !num.waitOn(flags, k, kp, t) {
			return lows, ups, false
		}
		if num.upper[kp][j] == nil || num.lower[k][kp] == nil {
			continue
		}
		lows = append(lows, num.lower[k][kp])
		ups = append(ups, num.upper[kp][j])
	}
	num.flows[t], num.fups[t] = lows, ups
	return lows, ups, true
}

// gatherRowReductionOn collects pairs for a lower target row i (an ancestor
// of column j): Â_ij = A_ij − Σ_{k' ∈ subtree(j)\{j}} L_ik'·U_k'j.
func (num *ndNum) gatherRowReductionOn(flags *epochBlockFlags, i, j, t int) (lows, ups []*sparse.CSC, ok bool) {
	s := num.sym
	lows, ups = num.flows[t][:0], num.fups[t][:0]
	for kp := s.subLo[j]; kp < j; kp++ {
		if !num.waitOn(flags, kp, j, t) || !num.waitOn(flags, i, kp, t) {
			return lows, ups, false
		}
		if num.upper[kp][j] == nil || num.lower[i][kp] == nil {
			continue
		}
		lows = append(lows, num.lower[i][kp])
		ups = append(ups, num.upper[kp][j])
	}
	num.flows[t], num.fups[t] = lows, ups
	return lows, ups, true
}

// solveUpper computes U_kj = L_kk⁻¹ P_k Â_kj column by column with
// Gilbert–Peierls pattern discovery over the pruned prefix of L_kk (the
// caller supplies the reduced block ahat). recycle, if non-nil, is reset
// and refilled so repeated fresh factorizations stop allocating. The output
// pattern is the structural DFS reach — exact-zero values are kept — so a
// same-pattern refactorization can refresh the block's values in place with
// gp.RefactorUpperBlock.
func (num *ndNum) solveUpper(k int, ahat *sparse.CSC, ws *gp.Workspace, recycle *sparse.CSC) *sparse.CSC {
	f := num.diag[k]
	out := recycle
	if out == nil {
		out = sparse.NewCSC(ahat.M, ahat.N, ahat.Nnz()*2)
	} else {
		out.ResetShape(ahat.M, ahat.N)
	}
	for c := 0; c < ahat.N; c++ {
		bIdx := ahat.Rowidx[ahat.Colptr[c]:ahat.Colptr[c+1]]
		bVal := ahat.Values[ahat.Colptr[c]:ahat.Colptr[c+1]]
		patt := f.SolveSparseL(bIdx, bVal, ws)
		// Copy out sorted: sort the index pattern alone, then gather the
		// values in sorted order (cheaper than co-sorting two arrays).
		start := len(out.Rowidx)
		out.Rowidx = append(out.Rowidx, patt...)
		seg := out.Rowidx[start:]
		sort.Ints(seg)
		for _, r := range seg {
			out.Values = append(out.Values, ws.X[r])
		}
		gp.ClearSparse(ws, patt)
		out.Colptr[c+1] = len(out.Rowidx)
	}
	return out
}

// reduceBlock assembles Â = A0 − Σ_t lows[t]·ups[t] as a CSC with sorted
// columns, writing into recycle's storage when non-nil. A0 may be nil
// (treated as zero) when a block has no original entries. The output
// pattern is structural (the union of the contributing patterns,
// independent of the values), the invariant reduceBlockInto relies on to
// refresh the same block in place.
func reduceBlock(a0 *sparse.CSC, lows, ups []*sparse.CSC, mark []int, tagp *int, acc []float64, recycle *sparse.CSC) *sparse.CSC {
	m, n := 0, 0
	if a0 != nil {
		m, n = a0.M, a0.N
	} else {
		m, n = lows[0].M, ups[0].N
	}
	out := recycle
	if out == nil {
		nnzHint := 0
		if a0 != nil {
			nnzHint = a0.Nnz()
		}
		out = sparse.NewCSC(m, n, nnzHint*2)
	} else {
		out.ResetShape(m, n)
	}
	for c := 0; c < n; c++ {
		*tagp++
		tag := *tagp
		// Column work estimate picks the emission strategy: columns whose
		// flop count rivals the block height skip pattern collection
		// entirely — marks are set unconditionally and the rows are scanned
		// in order (sorted for free, no append, no sort). Sparse columns
		// collect their pattern and sort it. Both produce the identical
		// structural pattern (mark membership does not depend on values).
		work := 0
		if a0 != nil {
			work = a0.Colptr[c+1] - a0.Colptr[c]
		}
		for t := range ups {
			up := ups[t]
			lo := lows[t]
			for p := up.Colptr[c]; p < up.Colptr[c+1]; p++ {
				k := up.Rowidx[p]
				work += lo.Colptr[k+1] - lo.Colptr[k]
			}
		}
		if work*2 >= m {
			// ---- Dense-merge emission.
			if a0 != nil {
				for p := a0.Colptr[c]; p < a0.Colptr[c+1]; p++ {
					i := a0.Rowidx[p]
					mark[i] = tag
					acc[i] += a0.Values[p]
				}
			}
			for t := range lows {
				lo, up := lows[t], ups[t]
				for p := up.Colptr[c]; p < up.Colptr[c+1]; p++ {
					k := up.Rowidx[p]
					ukc := up.Values[p]
					rows := lo.Rowidx[lo.Colptr[k]:lo.Colptr[k+1]]
					vals := lo.Values[lo.Colptr[k]:lo.Colptr[k+1]]
					vals = vals[:len(rows)] // bounds-check elimination hint
					for qi, i := range rows {
						acc[i] -= vals[qi] * ukc
						mark[i] = tag
					}
				}
			}
			for i := 0; i < m; i++ {
				if mark[i] == tag {
					out.Rowidx = append(out.Rowidx, i)
					out.Values = append(out.Values, acc[i])
					acc[i] = 0
				}
			}
			out.Colptr[c+1] = len(out.Rowidx)
			continue
		}
		// ---- Sparse emission: collect the pattern, then sort.
		start := len(out.Rowidx)
		if a0 != nil {
			for p := a0.Colptr[c]; p < a0.Colptr[c+1]; p++ {
				i := a0.Rowidx[p]
				if mark[i] != tag {
					mark[i] = tag
					out.Rowidx = append(out.Rowidx, i)
				}
				acc[i] += a0.Values[p]
			}
		}
		for t := range lows {
			lo, up := lows[t], ups[t]
			for p := up.Colptr[c]; p < up.Colptr[c+1]; p++ {
				k := up.Rowidx[p]
				ukc := up.Values[p]
				rows := lo.Rowidx[lo.Colptr[k]:lo.Colptr[k+1]]
				vals := lo.Values[lo.Colptr[k]:lo.Colptr[k+1]]
				vals = vals[:len(rows)] // bounds-check elimination hint
				for qi, i := range rows {
					acc[i] -= vals[qi] * ukc
					if mark[i] != tag {
						mark[i] = tag
						out.Rowidx = append(out.Rowidx, i)
					}
				}
			}
		}
		seg := out.Rowidx[start:]
		sort.Ints(seg)
		for _, i := range seg {
			out.Values = append(out.Values, acc[i])
			acc[i] = 0
		}
		out.Colptr[c+1] = len(out.Rowidx)
	}
	return out
}

// reduceBlockDense assembles Â = A0 − Σ_t lows[t]·ups[t] through a dense
// accumulation panel — no occupancy marks, no pattern collection, no sort —
// and emits a structural fully dense block into recycle's storage (nil
// allocates). The contribution order per element matches reduceBlock and
// reduceBlockInto exactly (A0 first, then the pairs in order, each upper
// entry scattering its lower column), so the in-place refresh sweeps
// reproduce dense-reduced blocks bitwise. Contributor columns that are
// themselves fully dense (dense-built factor blocks) collapse to contiguous
// axpys — the blocked rank-k update of the dense layer.
func reduceBlockDense(a0 *sparse.CSC, lows, ups []*sparse.CSC, recycle *sparse.CSC, dws *dense.Workspace) *sparse.CSC {
	m, n := 0, 0
	if a0 != nil {
		m, n = a0.M, a0.N
	} else {
		m, n = lows[0].M, ups[0].N
	}
	panel := dws.Panel(m, n)
	for c := 0; c < n; c++ {
		col := panel.Col(c)
		if a0 != nil {
			for p := a0.Colptr[c]; p < a0.Colptr[c+1]; p++ {
				col[a0.Rowidx[p]] += a0.Values[p]
			}
		}
		for t := range lows {
			lo, up := lows[t], ups[t]
			for p := up.Colptr[c]; p < up.Colptr[c+1]; p++ {
				k := up.Rowidx[p]
				ukc := up.Values[p]
				if ukc == 0 {
					continue
				}
				rows := lo.Rowidx[lo.Colptr[k]:lo.Colptr[k+1]]
				vals := lo.Values[lo.Colptr[k]:lo.Colptr[k+1]]
				vals = vals[:len(rows)] // bounds-check elimination hint
				if len(rows) == m {
					// Fully dense contributor column: rows are 0..m-1.
					for i, v := range vals {
						col[i] -= v * ukc
					}
					continue
				}
				for qi, i := range rows {
					col[i] -= vals[qi] * ukc
				}
			}
		}
	}
	return sparse.FillDense(recycle, m, n, panel.Data)
}

func ancestorAtHeight(s *ndSym, leaf, h int) int {
	b := leaf
	for s.height[b] < h {
		b = s.tree.Parent[b]
	}
	return b
}

func maxBlockDim(s *ndSym) int {
	max := 1
	for b := 0; b < s.nb; b++ {
		if sz := s.tree.BlockSize(b); sz > max {
			max = sz
		}
	}
	return max
}

// ndSolve applies the 2D block forward/backward substitution to y (the
// right-hand side in ND-permuted local coordinates), in place. scratch is
// caller-provided pivot-application space of at least maxBlockDim(sym)
// elements (nil falls back to a local allocation), so repeated solves stay
// allocation-free and reentrant.
func (num *ndNum) ndSolve(y []float64, scratch []float64) {
	s := num.sym
	nb := s.nb
	if len(scratch) < maxBlockDim(s) {
		scratch = make([]float64, maxBlockDim(s))
	}
	// Forward: block columns ascending (postorder = matrix order).
	for k := 0; k < nb; k++ {
		c0, c1 := s.blockRange(k)
		if c0 == c1 {
			continue
		}
		f := num.diag[k]
		// Apply the block pivot then unit-lower solve.
		z := scratch[:c1-c0]
		for i := range z {
			z[i] = y[c0+f.P[i]]
		}
		f.LSolve(z)
		copy(y[c0:c1], z)
		// Subtract this block's influence on ancestor rows.
		for _, i := range s.ancestors[k] {
			lb := num.lower[i][k]
			if lb == nil {
				continue
			}
			r0, _ := s.blockRange(i)
			for c := 0; c < lb.N; c++ {
				xc := y[c0+c]
				if xc == 0 {
					continue
				}
				for p := lb.Colptr[c]; p < lb.Colptr[c+1]; p++ {
					y[r0+lb.Rowidx[p]] -= lb.Values[p] * xc
				}
			}
		}
	}
	// Backward: block columns descending; first subtract upper couplings
	// from ancestor solutions, then solve the diagonal.
	for k := nb - 1; k >= 0; k-- {
		c0, c1 := s.blockRange(k)
		if c0 == c1 {
			continue
		}
		// y_k -= Σ_{j ancestor} U_kj · x_j.
		for _, j := range s.ancestors[k] {
			ub := num.upper[k][j]
			if ub == nil {
				continue
			}
			j0, _ := s.blockRange(j)
			for c := 0; c < ub.N; c++ {
				xc := y[j0+c]
				if xc == 0 {
					continue
				}
				for p := ub.Colptr[c]; p < ub.Colptr[c+1]; p++ {
					y[c0+ub.Rowidx[p]] -= ub.Values[p] * xc
				}
			}
		}
		num.diag[k].USolve(y[c0:c1])
	}
}

// ndSolveT applies the transposed 2D block substitution to y in place — the
// A⁻ᵀ application the condition estimator needs. With the block hierarchy
// factored as B = L̂Û (L̂ₖₖ = Pₖᵀ Lₖ, the per-block pivots applied by
// ndSolve's forward phase), Bᵀ x = y splits into an ascending Ûᵀ sweep
// (transpose-lower) and a descending L̂ᵀ sweep (transpose-upper). Couplings
// mirror ndSolve's exactly, as dot products instead of scattered updates.
// scratch needs maxBlockDim(sym) elements (nil allocates locally).
func (num *ndNum) ndSolveT(y []float64, scratch []float64) {
	s := num.sym
	nb := s.nb
	if len(scratch) < maxBlockDim(s) {
		scratch = make([]float64, maxBlockDim(s))
	}
	// Forward: Ûᵀ is block lower triangular, ascending block columns. After
	// w_k = U_k⁻ᵀ y_k, push this block's transposed upper couplings into the
	// ancestors it feeds.
	for k := 0; k < nb; k++ {
		c0, c1 := s.blockRange(k)
		if c0 == c1 {
			continue
		}
		num.diag[k].USolveT(y[c0:c1])
		for _, j := range s.ancestors[k] {
			ub := num.upper[k][j]
			if ub == nil {
				continue
			}
			j0, _ := s.blockRange(j)
			for c := 0; c < ub.N; c++ {
				sum := 0.0
				for p := ub.Colptr[c]; p < ub.Colptr[c+1]; p++ {
					sum += ub.Values[p] * y[c0+ub.Rowidx[p]]
				}
				y[j0+c] -= sum
			}
		}
	}
	// Backward: L̂ᵀ is block upper triangular, descending block columns.
	// Pull the transposed lower couplings from the already-solved ancestors,
	// then solve L̂ₖₖᵀ = Lₖᵀ Pₖ: unit-upper transpose solve, then scatter
	// through the block pivot.
	for k := nb - 1; k >= 0; k-- {
		c0, c1 := s.blockRange(k)
		if c0 == c1 {
			continue
		}
		for _, i := range s.ancestors[k] {
			lb := num.lower[i][k]
			if lb == nil {
				continue
			}
			r0, _ := s.blockRange(i)
			for c := 0; c < lb.N; c++ {
				sum := 0.0
				for p := lb.Colptr[c]; p < lb.Colptr[c+1]; p++ {
					sum += lb.Values[p] * y[r0+lb.Rowidx[p]]
				}
				y[c0+c] -= sum
			}
		}
		f := num.diag[k]
		z := scratch[:c1-c0]
		copy(z, y[c0:c1])
		f.LSolveT(z)
		for i := range z {
			y[c0+f.P[i]] = z[i]
		}
	}
}

// maxAbsU reports the largest absolute value on the U side of the 2D
// hierarchy: every diagonal factor's U plus every upper coupling block.
func (num *ndNum) maxAbsU() float64 {
	m := 0.0
	for _, f := range num.diag {
		if f != nil {
			if v := f.MaxAbsU(); v > m {
				m = v
			}
		}
	}
	for i := range num.upper {
		for _, ub := range num.upper[i] {
			if ub == nil {
				continue
			}
			if v := ub.MaxAbs(); v > m {
				m = v
			}
		}
	}
	return m
}

// finite reports whether every factored value of the 2D hierarchy (diagonal
// L/U factors plus both coupling triangles) is finite.
func (num *ndNum) finite() bool {
	for _, f := range num.diag {
		if f != nil && !finiteFactors(f) {
			return false
		}
	}
	for i := range num.lower {
		for j := range num.lower[i] {
			if b := num.lower[i][j]; b != nil && !finiteVals(b.Values[:b.Nnz()]) {
				return false
			}
			if b := num.upper[i][j]; b != nil && !finiteVals(b.Values[:b.Nnz()]) {
				return false
			}
		}
	}
	return true
}

// nnzLU sums the factored entries of the 2D structure.
func (num *ndNum) nnzLU() int {
	total := 0
	for _, f := range num.diag {
		if f != nil {
			total += f.NnzLU()
		}
	}
	for i := range num.lower {
		for j := range num.lower[i] {
			if num.lower[i][j] != nil {
				total += num.lower[i][j].Nnz()
			}
			if num.upper[i][j] != nil {
				total += num.upper[i][j].Nnz()
			}
		}
	}
	return total
}
