package core

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/gp"
	"repro/internal/matgen"
	"repro/internal/sparse"
)

// assertSameFactors compares every factored value of two numerics bitwise:
// small-block L/U values and pivots, and each fine-ND block's diagonal
// factors, lower and upper off-diagonal blocks. Both numerics must be in
// refactorization arithmetic (one full Refactor after Factor) — Factor and
// Refactor sum column updates in different orders, so bitwise comparison is
// only meaningful between Refactor-produced values.
func assertSameFactors(t *testing.T, want, got *Numeric, ctx string) {
	t.Helper()
	sym := want.Sym
	cmpCSC := func(a, b *sparse.CSC, what string) {
		t.Helper()
		if a == nil && b == nil {
			return
		}
		if len(a.Values) != len(b.Values) {
			t.Fatalf("%s: %s: %d vs %d entries", ctx, what, len(b.Values), len(a.Values))
		}
		for i, v := range a.Values {
			if b.Values[i] != v {
				t.Fatalf("%s: %s diverges at entry %d: %v vs %v", ctx, what, i, b.Values[i], v)
			}
		}
	}
	cmpFactors := func(a, b *gp.Factors, what string) {
		t.Helper()
		for i, p := range a.P {
			if b.P[i] != p {
				t.Fatalf("%s: %s pivot %d: %d vs %d", ctx, what, i, b.P[i], p)
			}
		}
		cmpCSC(a.L, b.L, what+" L")
		cmpCSC(a.U, b.U, what+" U")
	}
	for blk := 0; blk < sym.NumBlocks(); blk++ {
		switch sym.kind[blk] {
		case blockSmall:
			cmpFactors(want.small[blk], got.small[blk], "small block")
		case blockND:
			w, g := want.nd[blk], got.nd[blk]
			for b := range w.diag {
				if w.diag[b] != nil {
					cmpFactors(w.diag[b], g.diag[b], "nd diag")
				}
			}
			for i := range w.lower {
				for j := range w.lower[i] {
					if w.lower[i][j] != nil {
						cmpCSC(w.lower[i][j], g.lower[i][j], "nd lower")
					}
					if w.upper[i][j] != nil {
						cmpCSC(w.upper[i][j], g.upper[i][j], "nd upper")
					}
				}
			}
		}
	}
	// The solve also reads permuted off-block values: compare them too.
	for i, v := range want.Perm.Values {
		if got.Perm.Values[i] != v {
			t.Fatalf("%s: permuted values diverge at entry %d", ctx, i)
		}
	}
}

// TestRefactorPartialSuiteEquivalence is the suite-wide equivalence sweep:
// for every matgen class, RefactorPartial (explicit change sets) and
// RefactorAuto (diff discovery) must produce factors bitwise identical to a
// full Refactor of the same matrix, across change-set fractions from a
// single column to everything, both clustered and scattered.
func TestRefactorPartialSuiteEquivalence(t *testing.T) {
	suite := matgen.TableISuite(0.1)
	suite = append(suite, matgen.TableIISuite(0.12)...)
	fracs := []float64{0.002, 0.05, 0.3}
	for _, m := range suite {
		m := m
		t.Run(m.Name, func(t *testing.T) {
			base := m.Gen()
			opts := optsWithThreads(4)
			sym, err := Analyze(base, opts)
			if err != nil {
				t.Fatalf("analyze: %v", err)
			}
			var nums [3]*Numeric // full, partial, auto
			for i := range nums {
				if nums[i], err = Factor(base, sym); err != nil {
					t.Fatalf("factor: %v", err)
				}
				// Normalize to refactorization arithmetic.
				if err := nums[i].Refactor(base); err != nil {
					t.Fatalf("warm refactor: %v", err)
				}
			}
			cur := base
			for step, frac := range fracs {
				clustered := step%2 == 0
				cols := matgen.ChangeSet(base.N, frac, int64(31*step+7), clustered)
				next := matgen.PerturbColumns(cur, cols, step+1, 555)
				if err := nums[0].Refactor(next); err != nil {
					t.Fatalf("full refactor step %d: %v", step, err)
				}
				if err := nums[1].RefactorPartial(next, cols); err != nil {
					t.Fatalf("partial refactor step %d: %v", step, err)
				}
				if err := nums[2].RefactorAuto(next); err != nil {
					t.Fatalf("auto refactor step %d: %v", step, err)
				}
				assertSameFactors(t, nums[0], nums[1], "partial")
				assertSameFactors(t, nums[0], nums[2], "auto")
				cur = next
			}
			solveCheck(t, cur, nums[1], 1e-6)
		})
	}
}

// TestRefactorPartialDenseNDBitwise locks the incremental contract down on
// dense-path numerics: a fine-ND hierarchy carrying dense-tagged separator
// kernels must keep RefactorPartial and RefactorAuto bitwise identical to
// the full Refactor — the dirty-kernel routing of the 2D sweep refreshes
// dense-built (structural fully dense) blocks through the same in-place
// kernels, so skipping clean work can never change a bit.
func TestRefactorPartialDenseNDBitwise(t *testing.T) {
	base := grid3dCircuit(900, 20, 81)
	opts := optsWithThreads(4)
	sym, err := Analyze(base, opts)
	if err != nil {
		t.Fatal(err)
	}
	if sym.DenseKernels() == 0 {
		t.Fatal("test matrix tagged no dense kernels; bitwise sweep would be vacuous")
	}
	var nums [3]*Numeric // full, partial, auto
	for i := range nums {
		if nums[i], err = Factor(base, sym); err != nil {
			t.Fatal(err)
		}
		if err := nums[i].Refactor(base); err != nil {
			t.Fatal(err)
		}
	}
	cur := base
	for step, frac := range []float64{0.002, 0.05, 0.3} {
		clustered := step%2 == 0
		cols := matgen.ChangeSet(base.N, frac, int64(17*step+3), clustered)
		next := matgen.PerturbColumns(cur, cols, step+1, 661)
		if err := nums[0].Refactor(next); err != nil {
			t.Fatalf("full refactor step %d: %v", step, err)
		}
		if err := nums[1].RefactorPartial(next, cols); err != nil {
			t.Fatalf("partial refactor step %d: %v", step, err)
		}
		if err := nums[2].RefactorAuto(next); err != nil {
			t.Fatalf("auto refactor step %d: %v", step, err)
		}
		assertSameFactors(t, nums[0], nums[1], "dense partial")
		assertSameFactors(t, nums[0], nums[2], "dense auto")
		cur = next
	}
	solveCheck(t, cur, nums[1], 1e-6)
}

// TestRefactorPartialExtraColumns checks that listing unchanged or
// duplicate columns in the change set is harmless: the factors still match
// a full Refactor bitwise.
func TestRefactorPartialExtraColumns(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	base := randCircuit(rng, 400, 0.6)
	full, err := FactorDirect(base, optsWithThreads(2))
	if err != nil {
		t.Fatal(err)
	}
	part, err := FactorDirect(base, optsWithThreads(2))
	if err != nil {
		t.Fatal(err)
	}
	for _, num := range []*Numeric{full, part} {
		if err := num.Refactor(base); err != nil {
			t.Fatal(err)
		}
	}
	cols := []int{5, 5, 120, 233}
	next := matgen.PerturbColumns(base, []int{5, 233}, 1, 88)
	if err := full.Refactor(next); err != nil {
		t.Fatal(err)
	}
	if err := part.RefactorPartial(next, cols); err != nil {
		t.Fatal(err)
	}
	assertSameFactors(t, full, part, "extra columns")
}

// TestRefactorPartialNoChange: an empty change set (and an identical matrix
// through RefactorAuto) must visit no block at all.
func TestRefactorPartialNoChange(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	base := randCircuit(rng, 350, 0.6)
	num, err := FactorDirect(base, optsWithThreads(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := num.Refactor(base); err != nil {
		t.Fatal(err)
	}
	visited := 0
	num.hooks = &schedHooks{blockStart: func(blk int, nd bool) { visited++ }}
	if err := num.RefactorPartial(base, nil); err != nil {
		t.Fatalf("empty change set: %v", err)
	}
	if err := num.RefactorAuto(base); err != nil {
		t.Fatalf("auto with identical values: %v", err)
	}
	num.hooks = nil
	if visited != 0 {
		t.Fatalf("no-change refresh visited %d blocks, want 0", visited)
	}
	solveCheck(t, base, num, 1e-7)
}

// TestRefactorPartialPivotFallback drifts a small block's pivot to zero
// through a change set: RefactorPartial must fall back to a fresh pivoting
// factorization of that block alone, bitwise identical to the full
// Refactor's own fallback, and recover on the next step.
func TestRefactorPartialPivotFallback(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	base := randCircuit(rng, 300, 0.5)
	full, err := FactorDirect(base, optsWithThreads(2))
	if err != nil {
		t.Fatal(err)
	}
	part, err := FactorDirect(base, optsWithThreads(2))
	if err != nil {
		t.Fatal(err)
	}
	for _, num := range []*Numeric{full, part} {
		if err := num.Refactor(base); err != nil {
			t.Fatal(err)
		}
	}
	sym := full.Sym
	target := -1
	for blk := 0; blk < sym.NumBlocks(); blk++ {
		r0, r1 := sym.BlockPtr[blk], sym.BlockPtr[blk+1]
		if sym.kind[blk] != blockSmall || r1-r0 < 2 {
			continue
		}
		if full.Perm.ExtractBlock(r0, r1, r0, r0+1).Nnz() >= 2 {
			target = blk
			break
		}
	}
	if target == -1 {
		t.Fatal("no suitable small block in test matrix")
	}
	r0 := sym.BlockPtr[target]
	old := part.small[target]
	orow := sym.RowPerm[r0+old.P[0]]
	ocol := sym.ColPerm[r0]
	a2 := base.Clone()
	zeroed := false
	for p := a2.Colptr[ocol]; p < a2.Colptr[ocol+1]; p++ {
		if a2.Rowidx[p] == orow {
			a2.Values[p] = 0
			zeroed = true
		}
	}
	if !zeroed {
		t.Fatal("pivot entry not found in original coordinates")
	}
	if err := full.Refactor(a2); err != nil {
		t.Fatalf("full refactor with drifted pivot: %v", err)
	}
	if err := part.RefactorPartial(a2, []int{ocol}); err != nil {
		t.Fatalf("partial refactor with drifted pivot: %v", err)
	}
	if part.small[target] == old {
		t.Fatal("expected the fallback to replace the block's factors")
	}
	assertSameFactors(t, full, part, "pivot fallback")
	solveCheck(t, a2, part, 1e-7)
	// Next step rides the fast path on the new pivots.
	a3 := matgen.PerturbColumns(a2, []int{ocol}, 2, 77)
	if err := full.Refactor(a3); err != nil {
		t.Fatal(err)
	}
	if err := part.RefactorPartial(a3, []int{ocol}); err != nil {
		t.Fatalf("partial refactor after fallback: %v", err)
	}
	assertSameFactors(t, full, part, "after fallback")
}

// TestRefactorPartialPoisonRecovery: after a failed sweep the incremental
// path must not trust its change set; the next RefactorPartial runs a full
// refresh and recovers a consistent factorization.
func TestRefactorPartialPoisonRecovery(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	base := randCircuit(rng, 200, 0.5)
	num, err := FactorDirect(base, optsWithThreads(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := num.Refactor(base); err != nil {
		t.Fatal(err)
	}
	bad := base.Clone()
	for p := bad.Colptr[5]; p < bad.Colptr[6]; p++ {
		bad.Values[p] = 0
	}
	if err := num.RefactorPartial(bad, []int{5}); !errors.Is(err, gp.ErrSingular) {
		t.Fatalf("err = %v, want ErrSingular", err)
	}
	// Recovery: hand back the good matrix with the same change set. The
	// poisoned state must force a full refresh (the bad sweep may have
	// altered blocks beyond column 5's own).
	if err := num.RefactorPartial(base, []int{5}); err != nil {
		t.Fatalf("recovery: %v", err)
	}
	solveCheck(t, base, num, 1e-7)
}

// TestRefactorPartialGuards checks argument validation: dimension mismatch,
// out-of-range columns, and pattern drift in a changed column.
func TestRefactorPartialGuards(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	base := randCircuit(rng, 200, 0.5)
	num, err := FactorDirect(base, optsWithThreads(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := num.RefactorPartial(sparse.NewCSC(3, 3, 0), nil); err == nil {
		t.Fatal("expected dimension error")
	}
	if err := num.RefactorPartial(base, []int{-1}); err == nil {
		t.Fatal("expected out-of-range error")
	}
	if err := num.RefactorPartial(base, []int{base.N}); err == nil {
		t.Fatal("expected out-of-range error")
	}
	// Move an entry of a column to another row: the changed-column pattern
	// verification must reject it.
	shifted := base.Clone()
	moved := -1
	for j := 0; j < shifted.N && moved < 0; j++ {
		p := shifted.Colptr[j+1] - 1
		if p < shifted.Colptr[j] {
			continue
		}
		if r := shifted.Rowidx[p]; r+1 < shifted.M {
			shifted.Rowidx[p] = r + 1
			moved = j
		}
	}
	if moved < 0 {
		t.Fatal("could not construct a pattern variant")
	}
	if err := num.RefactorPartial(shifted, []int{moved}); err == nil {
		t.Fatal("expected pattern mismatch error for the changed column")
	}
	// Still healthy afterwards.
	if err := num.RefactorPartial(base, []int{0}); err != nil {
		t.Fatal(err)
	}
	solveCheck(t, base, num, 1e-7)
}

// TestRefactorPartialZeroAllocSteadyState pins the incremental guarantee:
// once the pipeline and change-tracking state exist, a serial
// RefactorPartial performs zero allocations, and so does RefactorAuto.
func TestRefactorPartialZeroAllocSteadyState(t *testing.T) {
	rng := rand.New(rand.NewSource(26))
	base := randCircuit(rng, 400, 0.6)
	num, err := FactorDirect(base, optsWithThreads(1))
	if err != nil {
		t.Fatal(err)
	}
	if num.Sym.NumNDBlocks() == 0 {
		t.Fatal("want an ND block in the zero-alloc sweep")
	}
	cols := matgen.ChangeSet(base.N, 0.02, 3, true)
	steps := make([]*sparse.CSC, 4)
	for i := range steps {
		steps[i] = matgen.PerturbColumns(base, cols, i+1, 99)
	}
	for _, s := range steps {
		if err := num.RefactorPartial(s, cols); err != nil {
			t.Fatal(err)
		}
		if err := num.RefactorAuto(s); err != nil {
			t.Fatal(err)
		}
	}
	i := 0
	allocs := testing.AllocsPerRun(20, func() {
		i++
		if err := num.RefactorPartial(steps[i%len(steps)], cols); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state RefactorPartial allocates: %v allocs/op", allocs)
	}
	allocs = testing.AllocsPerRun(20, func() {
		i++
		if err := num.RefactorAuto(steps[i%len(steps)]); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state RefactorAuto allocates: %v allocs/op", allocs)
	}
	solveCheck(t, steps[i%len(steps)], num, 1e-7)
}

// BenchmarkRefactorPartial measures the incremental sweep at a small
// clustered change fraction against the same matrix's full Refactor.
func BenchmarkRefactorPartial(b *testing.B) {
	rng := rand.New(rand.NewSource(27))
	base := randCircuit(rng, 2000, 0.5)
	num, err := FactorDirect(base, optsWithThreads(1))
	if err != nil {
		b.Fatal(err)
	}
	cols := matgen.ChangeSet(base.N, 0.01, 5, true)
	steps := make([]*sparse.CSC, 4)
	for i := range steps {
		steps[i] = matgen.PerturbColumns(base, cols, i+1, 99)
		if err := num.RefactorPartial(steps[i], cols); err != nil {
			b.Fatal(err)
		}
	}
	b.Run("partial-1pct", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := num.RefactorPartial(steps[i%len(steps)], cols); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("auto-1pct", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := num.RefactorAuto(steps[i%len(steps)]); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("full", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := num.Refactor(steps[i%len(steps)]); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// TestRefactorPartialRejectedSetLeavesStateClean pins the
// validate-before-gather contract: a change set rejected partway through
// (valid column listed before an invalid one) must leave resident values
// untouched, so subsequent incremental refreshes stay correct without any
// recovery sweep.
func TestRefactorPartialRejectedSetLeavesStateClean(t *testing.T) {
	rng := rand.New(rand.NewSource(28))
	base := randCircuit(rng, 300, 0.5)
	num, err := FactorDirect(base, optsWithThreads(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := num.Refactor(base); err != nil {
		t.Fatal(err)
	}
	// a2 perturbs column 1; the change set lists it before an out-of-range
	// column, so the call must reject WITHOUT gathering column 1.
	a2 := matgen.PerturbColumns(base, []int{1}, 1, 55)
	if err := num.RefactorPartial(a2, []int{1, -1}); err == nil {
		t.Fatal("expected out-of-range error")
	}
	// Resident values must still be base's: a refresh of a matrix derived
	// from base, with a change set that does not cover column 1, must match
	// a from-scratch factorization of that matrix.
	b2 := matgen.PerturbColumns(base, []int{2}, 1, 66)
	if err := num.RefactorPartial(b2, []int{2}); err != nil {
		t.Fatal(err)
	}
	solveCheck(t, b2, num, 1e-7)
}
