package core

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/etree"
	"repro/internal/gp"
	"repro/internal/order/amd"
	"repro/internal/order/btf"
	"repro/internal/order/matching"
	"repro/internal/order/nd"
	"repro/internal/sparse"
)

// Symbolic is Basker's reusable analysis: the coarse BTF structure, the
// fine-BTF thread partition, and the fine-ND trees with all orderings
// composed into a single pair of global permutations.
type Symbolic struct {
	N        int
	Opts     Options
	RowPerm  []int // new-to-old, all orderings composed
	ColPerm  []int
	BlockPtr []int // coarse BTF boundaries in permuted space

	// kind[b]: blockSmall or blockND per coarse block.
	kind []blockKind
	// ndsym[b] is non-nil for fine-ND blocks.
	ndsym []*ndSym
	// partition[t] lists the small coarse blocks assigned to thread t
	// (flop-balanced, Algorithm 2 line 5).
	partition [][]int
	// estNnz[b] is the factor size estimate for small blocks.
	estNnz []int

	BTFPercent float64
}

type blockKind uint8

const (
	blockSmall blockKind = iota
	blockND
)

// NumBlocks reports the number of coarse BTF blocks.
func (s *Symbolic) NumBlocks() int { return len(s.BlockPtr) - 1 }

// NumNDBlocks reports how many coarse blocks use the fine-ND engine.
func (s *Symbolic) NumNDBlocks() int {
	n := 0
	for _, k := range s.kind {
		if k == blockND {
			n++
		}
	}
	return n
}

// Numeric holds a completed factorization.
type Numeric struct {
	Sym   *Symbolic
	Perm  *sparse.CSC // fully permuted matrix (off-block entries for solve)
	small []*gp.Factors
	nd    []*ndNum
	// SyncWaits aggregates contended point-to-point waits (ablation metric).
	SyncWaits int64

	// btfBusy[t] is thread t's summed compute time over its fine-BTF
	// blocks; ndSim accumulates the simulated makespans of the ND engines.
	btfBusy []float64
	ndSim   float64
}

// SimulatedSeconds reports the numeric-factorization makespan of the static
// schedule on an ideal machine with Sym.Opts.Threads cores: the maximum
// per-thread fine-BTF compute time plus the dependency-tree makespan of
// every fine-ND block. This is the hardware-substitution timing model used
// when the host has fewer physical cores than the experiment sweeps
// (DESIGN.md); matrix permutation/extraction overhead is excluded for all
// solvers alike.
func (num *Numeric) SimulatedSeconds() float64 {
	total := num.ndSim
	max := 0.0
	for _, b := range num.btfBusy {
		if b > max {
			max = b
		}
	}
	return total + max
}

// Analyze computes Basker's symbolic factorization: coarse BTF, block
// classification, fine orderings and the thread partition.
func Analyze(a *sparse.CSC, opts Options) (*Symbolic, error) {
	if a.M != a.N {
		return nil, fmt.Errorf("core: matrix must be square, got %d×%d", a.M, a.N)
	}
	n := a.N
	sym := &Symbolic{N: n, Opts: opts}

	// ---- Coarse structure (paper §III-A).
	if opts.UseBTF {
		form, err := btf.Compute(a, opts.UseMWCM)
		if err != nil {
			return nil, fmt.Errorf("core: btf: %w", err)
		}
		sym.RowPerm, sym.ColPerm, sym.BlockPtr = form.RowPerm, form.ColPerm, form.BlockPtr
		sym.BTFPercent = form.PercentInSmallBlocks(opts.bigBlockMin())
	} else {
		sym.RowPerm = sparse.IdentityPerm(n)
		sym.ColPerm = sparse.IdentityPerm(n)
		sym.BlockPtr = []int{0, n}
		sym.BTFPercent = 0
	}
	nblocks := sym.NumBlocks()
	sym.kind = make([]blockKind, nblocks)
	sym.ndsym = make([]*ndSym, nblocks)
	sym.estNnz = make([]int, nblocks)

	// A block is worth the fine-ND machinery only when it holds a
	// significant share of the matrix (the paper's D2 averages 68% of the
	// rows); medium blocks are cheaper as independent fine-BTF work.
	ndThreshold := opts.bigBlockMin()
	if t := n / 4; t > ndThreshold {
		ndThreshold = t
	}

	b := a.Permute(sym.RowPerm, sym.ColPerm)
	rowPerm := make([]int, n)
	colPerm := make([]int, n)
	copy(rowPerm, sym.RowPerm)
	copy(colPerm, sym.ColPerm)

	type smallStat struct {
		blk   int
		flops float64
	}
	var smalls []smallStat

	for blk := 0; blk < nblocks; blk++ {
		r0, r1 := sym.BlockPtr[blk], sym.BlockPtr[blk+1]
		bs := r1 - r0
		// Large blocks use the fine-ND engine; with BTF disabled the whole
		// matrix is a single ND block regardless of size.
		if bs >= ndThreshold || !opts.UseBTF {
			sym.kind[blk] = blockND
			if err := analyzeND(sym, b, blk, r0, r1, rowPerm, colPerm, opts); err != nil {
				return nil, err
			}
			continue
		}
		// ---- Fine BTF block (paper §III-B, Algorithm 2): AMD order.
		sym.kind[blk] = blockSmall
		if bs > 1 {
			sub := b.ExtractBlock(r0, r1, r0, r1)
			local := amd.Order(sub)
			for k := 0; k < bs; k++ {
				rowPerm[r0+k] = sym.RowPerm[r0+local[k]]
				colPerm[r0+k] = sym.ColPerm[r0+local[k]]
			}
			ordered := sub.Permute(local, local)
			parent := etree.Symmetric(ordered)
			counts := etree.ColCounts(ordered, parent)
			est := 0
			for _, c := range counts {
				est += c
			}
			sym.estNnz[blk] = 2 * est
			smalls = append(smalls, smallStat{blk, etree.FlopEstimate(counts)})
		} else {
			sym.estNnz[blk] = 1
			smalls = append(smalls, smallStat{blk, 1})
		}
	}
	sym.RowPerm, sym.ColPerm = rowPerm, colPerm

	// ---- Partition small blocks among threads by estimated flops
	// (longest-processing-time greedy, Algorithm 2 line 5).
	nt := opts.threads()
	sym.partition = make([][]int, nt)
	sort.Slice(smalls, func(i, j int) bool { return smalls[i].flops > smalls[j].flops })
	loads := make([]float64, nt)
	for _, st := range smalls {
		best := 0
		for t := 1; t < nt; t++ {
			if loads[t] < loads[best] {
				best = t
			}
		}
		sym.partition[best] = append(sym.partition[best], st.blk)
		loads[best] += st.flops
	}
	return sym, nil
}

// analyzeND builds the fine-ND symbolic structure for coarse block blk
// (paper §III-C): local MWCM, nested dissection with one leaf per thread,
// optional per-block AMD, composed into the global permutations.
func analyzeND(sym *Symbolic, b *sparse.CSC, blk, r0, r1 int, rowPerm, colPerm []int, opts Options) error {
	bs := r1 - r0
	d := b.ExtractBlock(r0, r1, r0, r1)

	// Local matching (Pm2) to concentrate weight on the diagonal and
	// reduce the need to pivot.
	localRow := sparse.IdentityPerm(bs)
	if opts.UseMWCM {
		m, err := matching.Bottleneck(d)
		if err != nil {
			return fmt.Errorf("core: nd block %d matching: %w", blk, err)
		}
		localRow = m.RowPerm
		d = d.Permute(localRow, nil)
	}

	// Nested dissection with one leaf per ND thread.
	tree, err := nd.Compute(d, opts.ndLeaves())
	if err != nil {
		return fmt.Errorf("core: nd block %d: %w", blk, err)
	}
	rowL := append([]int(nil), tree.Perm...)
	colL := append([]int(nil), tree.Perm...)

	// Optional AMD inside each tree diagonal block for local fill
	// reduction; the composition keeps the tree's block boundaries.
	if opts.LocalAMD {
		d2 := d.Permute(tree.Perm, tree.Perm)
		for nb := 0; nb < tree.NumBlocks(); nb++ {
			b0, b1 := tree.BlockPtr[nb], tree.BlockPtr[nb+1]
			if b1-b0 < 3 {
				continue
			}
			sub := d2.ExtractBlock(b0, b1, b0, b1)
			local := amd.Order(sub)
			for k := 0; k < b1-b0; k++ {
				rowL[b0+k] = tree.Perm[b0+local[k]]
				colL[b0+k] = tree.Perm[b0+local[k]]
			}
		}
	}

	// Compose into the global permutations:
	// global row = BTF ∘ localRow ∘ rowL ; global col = BTF ∘ colL.
	for k := 0; k < bs; k++ {
		rowPerm[r0+k] = sym.RowPerm[r0+localRow[rowL[k]]]
		colPerm[r0+k] = sym.ColPerm[r0+colL[k]]
	}
	ns := newNDSym(tree)
	// Algorithm 3: parallel symbolic estimation over the final 2D layout,
	// so the numeric phase can pre-size factor storage.
	ns.est = estimateND(d.Permute(rowL, colL), ns)
	sym.ndsym[blk] = ns
	return nil
}

// Factor numerically factors a with a prior analysis.
func Factor(a *sparse.CSC, sym *Symbolic) (*Numeric, error) {
	return factorOrRefactor(a, sym, nil)
}

// FactorDirect is the one-shot Analyze+Factor.
func FactorDirect(a *sparse.CSC, opts Options) (*Numeric, error) {
	sym, err := Analyze(a, opts)
	if err != nil {
		return nil, err
	}
	return Factor(a, sym)
}

// Refactor recomputes numeric values for a same-pattern matrix, reusing
// the symbolic analysis and all diagonal-block pivot sequences — the
// operation the Xyce transient sequence repeats thousands of times.
func (num *Numeric) Refactor(a *sparse.CSC) error {
	fresh, err := factorOrRefactor(a, num.Sym, num)
	if err != nil {
		return err
	}
	*num = *fresh
	return nil
}

func factorOrRefactor(a *sparse.CSC, sym *Symbolic, prev *Numeric) (*Numeric, error) {
	if a.N != sym.N || a.M != sym.N {
		return nil, fmt.Errorf("core: dimension mismatch with symbolic analysis")
	}
	b := a.Permute(sym.RowPerm, sym.ColPerm)
	num := &Numeric{Sym: sym, Perm: b}
	num.small = make([]*gp.Factors, sym.NumBlocks())
	num.nd = make([]*ndNum, sym.NumBlocks())
	num.btfBusy = make([]float64, sym.Opts.threads())
	if prev != nil {
		copy(num.small, prev.small)
	}

	// ---- Fine-BTF numeric: embarrassingly parallel over the thread
	// partition (each thread factors its assigned small blocks).
	nt := sym.Opts.threads()
	var wg sync.WaitGroup
	errs := make([]error, nt)
	for t := 0; t < nt; t++ {
		if len(sym.partition[t]) == 0 {
			continue
		}
		wg.Add(1)
		go func(t int) {
			defer wg.Done()
			ws := gp.NewWorkspace(64)
			for _, blk := range sym.partition[t] {
				r0, r1 := sym.BlockPtr[blk], sym.BlockPtr[blk+1]
				sub := b.ExtractBlock(r0, r1, r0, r1)
				t0 := time.Now()
				if prev != nil && num.small[blk] != nil {
					err := num.small[blk].Refactor(sub, ws)
					num.btfBusy[t] += time.Since(t0).Seconds()
					if err != nil {
						errs[t] = fmt.Errorf("core: refactor small block %d: %w", blk, err)
						return
					}
					continue
				}
				f, err := gp.Factor(sub, sym.estNnz[blk], gp.Options{PivotTol: sym.Opts.PivotTol}, ws)
				num.btfBusy[t] += time.Since(t0).Seconds()
				if err != nil {
					errs[t] = fmt.Errorf("core: small block %d: %w", blk, err)
					return
				}
				num.small[blk] = f
			}
		}(t)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	// ---- Fine-ND numeric: one parallel region per large block.
	for blk := 0; blk < sym.NumBlocks(); blk++ {
		if sym.kind[blk] != blockND {
			continue
		}
		r0, r1 := sym.BlockPtr[blk], sym.BlockPtr[blk+1]
		d := b.ExtractBlock(r0, r1, r0, r1)
		var prevND *ndNum
		if prev != nil {
			prevND = prev.nd[blk]
		}
		ndn, err := factorND(d, sym.ndsym[blk], sym.Opts, prevND)
		if err != nil {
			return nil, fmt.Errorf("core: nd block %d: %w", blk, err)
		}
		num.nd[blk] = ndn
		num.SyncWaits += ndn.SyncWaits
		num.ndSim += ndn.simSeconds()
	}
	return num, nil
}

// Solve solves A x = rhs in place.
func (num *Numeric) Solve(rhs []float64) {
	sym := num.Sym
	n := sym.N
	y := make([]float64, n)
	for k := 0; k < n; k++ {
		y[k] = rhs[sym.RowPerm[k]]
	}
	// Coarse block back-substitution, last block first (upper BTF).
	for blk := sym.NumBlocks() - 1; blk >= 0; blk-- {
		r0, r1 := sym.BlockPtr[blk], sym.BlockPtr[blk+1]
		switch sym.kind[blk] {
		case blockSmall:
			num.small[blk].Solve(y[r0:r1])
		case blockND:
			num.nd[blk].ndSolve(y[r0:r1])
		}
		// Subtract this block's solution from earlier rows (entries above
		// the diagonal block in its columns).
		for c := r0; c < r1; c++ {
			xc := y[c]
			if xc == 0 {
				continue
			}
			for p := num.Perm.Colptr[c]; p < num.Perm.Colptr[c+1]; p++ {
				i := num.Perm.Rowidx[p]
				if i >= r0 {
					break
				}
				y[i] -= num.Perm.Values[p] * xc
			}
		}
	}
	for k := 0; k < n; k++ {
		rhs[sym.ColPerm[k]] = y[k]
	}
}

// NnzLU reports |L+U|: all factored entries plus coarse off-block entries
// used in the solve (the paper's Table I statistic).
func (num *Numeric) NnzLU() int {
	sym := num.Sym
	total := 0
	for blk := 0; blk < sym.NumBlocks(); blk++ {
		switch sym.kind[blk] {
		case blockSmall:
			total += num.small[blk].NnzLU()
		case blockND:
			total += num.nd[blk].nnzLU()
		}
	}
	blockOf := make([]int, sym.N)
	for blk := 0; blk < sym.NumBlocks(); blk++ {
		for i := sym.BlockPtr[blk]; i < sym.BlockPtr[blk+1]; i++ {
			blockOf[i] = blk
		}
	}
	for j := 0; j < sym.N; j++ {
		bj := blockOf[j]
		for p := num.Perm.Colptr[j]; p < num.Perm.Colptr[j+1]; p++ {
			if blockOf[num.Perm.Rowidx[p]] != bj {
				total++
			}
		}
	}
	return total
}

// FillDensity reports |L+U| / |A|.
func (num *Numeric) FillDensity(a *sparse.CSC) float64 {
	return float64(num.NnzLU()) / float64(a.Nnz())
}
