package core

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/etree"
	"repro/internal/faultinject"
	"repro/internal/gp"
	"repro/internal/order/amd"
	"repro/internal/order/btf"
	"repro/internal/order/matching"
	"repro/internal/order/nd"
	"repro/internal/sparse"
	"repro/internal/trace"
)

// Symbolic is Basker's reusable analysis: the coarse BTF structure, the
// fine-BTF thread partition, and the fine-ND trees with all orderings
// composed into a single pair of global permutations.
type Symbolic struct {
	N        int
	Opts     Options
	RowPerm  []int // new-to-old, all orderings composed
	ColPerm  []int
	BlockPtr []int // coarse BTF boundaries in permuted space

	// kind[b]: blockSmall or blockND per coarse block.
	kind []blockKind
	// ndsym[b] is non-nil for fine-ND blocks.
	ndsym []*ndSym
	// partition[t] lists the small coarse blocks assigned to thread t
	// (flop-balanced, Algorithm 2 line 5).
	partition [][]int
	// estNnz[b] is the factor size estimate for small blocks.
	estNnz []int
	// blockOf[i] is the coarse block containing permuted row/column i,
	// built once at analysis time (NnzLU and the trisolve dependency
	// builder both need it; rebuilding it per call was measurable).
	blockOf []int
	// scratchLen is the pivot-application scratch length a reentrant solve
	// must provide: the largest fine-ND tree-block dimension or fine-BTF
	// block dimension across all coarse blocks.
	scratchLen int
	// plan caches the entry maps from the analyzed matrix's pattern into the
	// permuted matrix and every diagonal block, so Factor is a pure value
	// gather instead of a Permute+ExtractBlock per call. Read-only after
	// Analyze; shared by all factorizations of this analysis.
	plan *factorPlan

	BTFPercent float64
}

// factorPlan is the Analyze-time gather state of the fresh-factorization
// fast path: a matrix with the analyzed sparsity pattern is permuted and
// split into diagonal blocks by flat value gathers through these maps (the
// fine-ND 2D grid maps live on each block's ndSym). A matrix with a
// different pattern falls back to the slow Permute/ExtractBlock path.
type factorPlan struct {
	// colptr/rowidx are the analyzed pattern, for verification.
	colptr, rowidx []int
	// perm is the permuted pattern (its values are the analyzed matrix's);
	// factorizations share its index slices and gather into private values.
	perm *sparse.CSC
	// permMap sends entry t of perm to its source entry in the caller's CSC.
	permMap []int
	// smallPat/smallSrc cache each small diagonal block's pattern and its
	// entry map into the permuted matrix.
	smallPat []*sparse.CSC
	smallSrc [][]int
}

// matches verifies a's sparsity structure against the analyzed pattern.
func (pl *factorPlan) matches(a *sparse.CSC) bool {
	return sparse.SamePattern(pl.colptr, pl.rowidx, a)
}

// PatternMatches reports whether a has exactly the sparsity pattern this
// analysis was computed for (the pattern every planned fast path requires).
func (s *Symbolic) PatternMatches(a *sparse.CSC) bool {
	return s.plan != nil && s.plan.matches(a)
}

type blockKind uint8

const (
	blockSmall blockKind = iota
	blockND
)

// NumBlocks reports the number of coarse BTF blocks.
func (s *Symbolic) NumBlocks() int { return len(s.BlockPtr) - 1 }

// BlockRange reports the permuted row/column range [r0, r1) of coarse
// block blk.
func (s *Symbolic) BlockRange(blk int) (int, int) {
	return s.BlockPtr[blk], s.BlockPtr[blk+1]
}

// IsND reports whether coarse block blk is factored by the fine-ND engine.
func (s *Symbolic) IsND(blk int) bool { return s.kind[blk] == blockND }

// BlockOf reports the coarse block containing permuted index i.
func (s *Symbolic) BlockOf(i int) int { return s.blockOf[i] }

// SolveScratchLen reports the scratch length required by SolveBlock and
// SolveInto: the largest diagonal sub-block dimension over all coarse
// blocks (fine-BTF block size or fine-ND tree-block size).
func (s *Symbolic) SolveScratchLen() int { return s.scratchLen }

// NumNDBlocks reports how many coarse blocks use the fine-ND engine.
func (s *Symbolic) NumNDBlocks() int {
	n := 0
	for _, k := range s.kind {
		if k == blockND {
			n++
		}
	}
	return n
}

// Numeric holds a completed factorization.
type Numeric struct {
	Sym   *Symbolic
	Perm  *sparse.CSC // fully permuted matrix (off-block entries for solve)
	small []*gp.Factors
	nd    []*ndNum
	// nnzLU caches |L+U|, computed once at the end of each (re)factorization
	// so Stats and FillDensity never recount it.
	nnzLU int
	// SyncWaits aggregates contended point-to-point waits (ablation metric);
	// SyncWaitNs aggregates the wall-clock nanoseconds those blocked waits
	// (and barrier waits) cost across the last numeric sweep — the
	// sync-overhead side of the paper's 2.3%-vs-11% comparison, measured
	// even when tracing is off because the fabrics time only their
	// contended slow paths.
	SyncWaits  int64
	SyncWaitNs int64
	// pivotFallbacks counts per-block fresh-pivot fallbacks taken by
	// refresh sweeps (pivot drift defeating a reused sequence); lastDirty
	// and dirtyTotal track the per-call and cumulative dirty coarse-block
	// counts of the incremental (RefactorPartial/RefactorAuto) path.
	pivotFallbacks atomic.Int64
	lastDirty      int
	dirtyTotal     int64

	// btfBusy[t] is thread t's summed compute time over its fine-BTF
	// blocks; ndSim accumulates the simulated makespans of the ND engines.
	btfBusy []float64
	ndSim   float64

	// planned reports that this numeric was built through the Analyze-time
	// gather plan (its Perm and block patterns are the analyzed ones).
	planned bool
	// factorSig is the coarse per-block completion fabric of the unified
	// fresh-factorization scheduler; factorErrs records per-block failures
	// and factorFailed flags the sweep so not-yet-started blocks skip their
	// work (every slot is still signalled, so the join always quiesces).
	// All are reset, never reallocated, across FactorInto calls.
	factorSig    *EpochSignals
	factorErrs   []error
	factorFailed atomic.Bool
	// factorWS[t] is fine-BTF worker t's pooled Gilbert–Peierls workspace,
	// shared by the fresh-factorization and refactorization sweeps (which
	// are mutually exclusive by contract); lazily built, reused forever.
	factorWS []*gp.Workspace
	// smallIn[blk] is the pooled gather target for small block blk on the
	// planned fast path (pattern shared with the plan, values private).
	smallIn []*sparse.CSC

	// pipe is the numeric-scatter refactorization pipeline, built on the
	// first Refactor call and reused for every subsequent same-pattern
	// refresh (entry maps, cached diagonal blocks, pooled workspaces, the
	// resettable completion fabric).
	pipe *refactorPipeline
	// inc is the change-tracking state of the incremental refactorization
	// fast path (RefactorPartial/RefactorAuto), built on first use.
	inc *incState
	// incPoisoned remembers that the last refresh sweep failed, leaving the
	// resident values unspecified: the next incremental call must run a
	// full refresh instead of trusting its change set. Cleared by any
	// successful refresh.
	incPoisoned bool
	// hooks instruments the factor/refactor schedulers for tests (nil in
	// production).
	hooks *schedHooks

	// panicMu/panicErr/panics are the panic-isolation state: every worker
	// goroutine of every parallel sweep recovers panics, records the first
	// one here, and force-releases the completion slots it owns so sibling
	// workers drain. The driver surfaces the record as ErrInternalPanic and
	// poisons the numeric.
	panicMu  sync.Mutex
	panicErr error
	panics   atomic.Int64
	// pivotTolOverride, when positive, replaces Opts.PivotTol for this
	// numeric's sweeps — the graceful-degradation chain tightens pivoting
	// per Numeric without mutating the shared Symbolic's Options.
	pivotTolOverride float64

	// sweep is the cancellation fabric every sync primitive of this
	// numeric's sweeps binds to: the context-accepting entry points and the
	// stall watchdog cancel through it, workers poll it between blocks, and
	// its inflight count lets a cancelled sweep return early while its
	// straggler goroutines drain before the next sweep touches shared
	// state. gpPoll is the bound-once kernel-poll closure handed to long
	// Gilbert–Peierls factorizations.
	sweep  SweepControl
	gpPoll func() error
}

// refactorPipeline holds everything a steady-state Refactor needs so the
// hot loop is a pure value gather plus per-block numeric refreshes:
// no Permute, no ExtractBlock, no allocation.
type refactorPipeline struct {
	// permMap sends entry t of the permuted matrix to its source entry in
	// the caller's CSC (built by sparse.PermuteWithMap).
	permMap []int
	// smallSub/smallSrc cache each small diagonal block and its entry map
	// into the permuted matrix. (Per-worker Gilbert–Peierls workspaces are
	// the Numeric's factorWS pool, shared with the fresh sweep.)
	smallSub []*sparse.CSC
	smallSrc [][]int
	// sig has one completion slot per coarse block; the driver joins the
	// sweep point-to-point on this fabric (the refactor-side reuse of the
	// Signals design) and it is reset, never reallocated, between sweeps.
	sig *EpochSignals
	// errs[blk] records a failed block refresh; reset each sweep.
	errs []error
	// changed reports that a fallback replaced a block's factors this
	// sweep, so |L+U| must be recounted.
	changed atomic.Bool
	// unowned lists coarse blocks no scheduler worker covers (empty in
	// practice: every small block is partitioned and every ND block is
	// launched); the parallel sweep refreshes them inline before starting
	// workers so the point-to-point join can never deadlock.
	unowned []int
	// colptr/rowidx are a private copy of the analyzed pattern, verified
	// against every caller matrix before its values are gathered: a
	// same-size different-pattern matrix must fail loudly, never scatter
	// into the wrong positions. The check is a flat integer compare —
	// cheaper than the value gather it guards.
	colptr []int
	rowidx []int
}

// checkPattern verifies a's sparsity structure against the analyzed one.
func (pipe *refactorPipeline) checkPattern(a *sparse.CSC) error {
	if a.Nnz() != len(pipe.rowidx) {
		return fmt.Errorf("core: refactor pattern mismatch: %d entries, analyzed %d", a.Nnz(), len(pipe.rowidx))
	}
	for j, c := range pipe.colptr {
		if a.Colptr[j] != c {
			return fmt.Errorf("core: refactor pattern mismatch in column %d", j-1)
		}
	}
	for t, r := range pipe.rowidx {
		if a.Rowidx[t] != r {
			return fmt.Errorf("core: refactor pattern mismatch at entry %d", t)
		}
	}
	return nil
}

// schedHooks observes the factor and refactor schedulers; used by tests to
// prove that ND blocks and fine-BTF blocks are processed concurrently.
type schedHooks struct {
	blockStart func(blk int, nd bool)
	blockDone  func(blk int, nd bool)
}

func (num *Numeric) hookStart(blk int, nd bool) {
	if num.hooks != nil && num.hooks.blockStart != nil {
		num.hooks.blockStart(blk, nd)
	}
}

func (num *Numeric) hookDone(blk int, nd bool) {
	if num.hooks != nil && num.hooks.blockDone != nil {
		num.hooks.blockDone(blk, nd)
	}
}

// SimulatedSeconds reports the numeric-factorization makespan of the static
// schedule on an ideal machine with Sym.Opts.Threads cores: the maximum
// per-thread fine-BTF compute time plus the dependency-tree makespan of
// every fine-ND block. This is the hardware-substitution timing model used
// when the host has fewer physical cores than the experiment sweeps
// (DESIGN.md); matrix permutation/extraction overhead is excluded for all
// solvers alike.
func (num *Numeric) SimulatedSeconds() float64 {
	total := num.ndSim
	max := 0.0
	for _, b := range num.btfBusy {
		if b > max {
			max = b
		}
	}
	return total + max
}

// SyncWaitSeconds reports the wall-clock time the last numeric sweep's
// workers spent blocked on the synchronization fabric (point-to-point
// waits plus barrier waits), summed over workers.
func (num *Numeric) SyncWaitSeconds() float64 {
	return float64(num.SyncWaitNs) / 1e9
}

// PivotFallbacks reports how many per-block fresh-pivot fallbacks the
// refresh sweeps (Refactor/RefactorPartial) have taken over this
// Numeric's lifetime — reused pivot sequences defeated by value drift.
func (num *Numeric) PivotFallbacks() int64 { return num.pivotFallbacks.Load() }

// DenseKernelHits reports how many fine-ND kernel executions were routed
// through the dense panel layer across the last numeric sweep, summed
// over the ND blocks (the numeric-side counterpart of
// Symbolic.DenseKernels' static tag count).
func (num *Numeric) DenseKernelHits() int64 {
	total := int64(0)
	for _, ndn := range num.nd {
		if ndn != nil {
			total += ndn.denseHits.Load()
		}
	}
	return total
}

// SupernodeHits reports how many fine-ND leaf-diagonal factorizations or
// refreshes went through the supernodal panel path across the last
// numeric sweep, summed over the ND blocks (the numeric-side counterpart
// of Symbolic.Supernodes' static count).
func (num *Numeric) SupernodeHits() int64 {
	total := int64(0)
	for _, ndn := range num.nd {
		if ndn != nil {
			total += ndn.snHits.Load()
		}
	}
	return total
}

// LastDirtyBlocks reports how many coarse blocks the most recent
// incremental refresh (RefactorPartial/RefactorAuto) actually reworked;
// DirtyBlocksTotal is the cumulative count across all incremental calls.
func (num *Numeric) LastDirtyBlocks() int    { return num.lastDirty }
func (num *Numeric) DirtyBlocksTotal() int64 { return num.dirtyTotal }

// Analyze computes Basker's symbolic factorization: coarse BTF, block
// classification, fine orderings and the thread partition.
func Analyze(a *sparse.CSC, opts Options) (*Symbolic, error) {
	if a.M != a.N {
		return nil, fmt.Errorf("core: matrix must be square, got %d×%d", a.M, a.N)
	}
	n := a.N
	sym := &Symbolic{N: n, Opts: opts}
	rec := opts.Trace
	sweep := rec.BeginSweep(trace.PhaseAnalyze)
	defer sweep.End()
	btfStart := rec.Now()

	// ---- Coarse structure (paper §III-A).
	if opts.UseBTF {
		ws := btfWSPool.Get().(*btf.Workspace)
		form, err := btf.ComputeWith(a, opts.UseMWCM, ws)
		btfWSPool.Put(ws)
		if err != nil {
			return nil, fmt.Errorf("core: btf: %w", err)
		}
		sym.RowPerm, sym.ColPerm, sym.BlockPtr = form.RowPerm, form.ColPerm, form.BlockPtr
		sym.BTFPercent = form.PercentInSmallBlocks(opts.bigBlockMin())
	} else {
		sym.RowPerm = sparse.IdentityPerm(n)
		sym.ColPerm = sparse.IdentityPerm(n)
		sym.BlockPtr = []int{0, n}
		sym.BTFPercent = 0
	}
	if rec != nil {
		rec.Record(trace.Event{Start: btfStart, End: rec.Now(),
			Worker: trace.DriverWorker, Block: -1, Kind: trace.KindAnalyzeBTF, Phase: trace.PhaseAnalyze})
	}
	nblocks := sym.NumBlocks()
	sym.kind = make([]blockKind, nblocks)
	sym.ndsym = make([]*ndSym, nblocks)
	sym.estNnz = make([]int, nblocks)
	sym.blockOf = make([]int, n)
	for blk := 0; blk < nblocks; blk++ {
		for i := sym.BlockPtr[blk]; i < sym.BlockPtr[blk+1]; i++ {
			sym.blockOf[i] = blk
		}
	}

	// A block is worth the fine-ND machinery only when it holds a
	// significant share of the matrix (the paper's D2 averages 68% of the
	// rows); medium blocks are cheaper as independent fine-BTF work.
	ndThreshold := opts.bigBlockMin()
	if t := n / 4; t > ndThreshold {
		ndThreshold = t
	}

	b := a.Permute(sym.RowPerm, sym.ColPerm)
	rowPerm := make([]int, n)
	colPerm := make([]int, n)
	copy(rowPerm, sym.RowPerm)
	copy(colPerm, sym.ColPerm)

	// ---- Per-block fine analysis, parallel over coarse blocks: every
	// block's ordering work (AMD / matching+ND) reads the shared permuted
	// matrix and writes only its own permutation range and symbolic slots,
	// so independent blocks analyze concurrently across the thread pool.
	type smallStat struct {
		blk   int
		flops float64
	}
	flops := make([]float64, nblocks) // <0: fine-ND block
	errs := make([]error, nblocks)
	for blk := 0; blk < nblocks; blk++ {
		bs := sym.BlockPtr[blk+1] - sym.BlockPtr[blk]
		if bs >= ndThreshold || !opts.UseBTF {
			sym.kind[blk] = blockND
		} else {
			sym.kind[blk] = blockSmall
		}
	}
	analyzeBlock := func(blk, t int) {
		var t0 int64
		if rec != nil {
			t0 = rec.Now()
			kind := trace.KindAnalyzeAMD
			if sym.kind[blk] == blockND {
				kind = trace.KindAnalyzeND
			}
			defer func() {
				rec.Record(trace.Event{Start: t0, End: rec.Now(),
					Worker: int32(t), Block: int32(blk), Kind: kind, Phase: trace.PhaseAnalyze})
			}()
		}
		r0, r1 := sym.BlockPtr[blk], sym.BlockPtr[blk+1]
		bs := r1 - r0
		if sym.kind[blk] == blockND {
			flops[blk] = -1
			errs[blk] = analyzeND(sym, b, blk, r0, r1, rowPerm, colPerm, opts)
			return
		}
		// ---- Fine BTF block (paper §III-B, Algorithm 2): AMD order.
		if bs > 1 {
			sub := b.ExtractBlock(r0, r1, r0, r1)
			local := amd.Order(sub)
			for k := 0; k < bs; k++ {
				rowPerm[r0+k] = sym.RowPerm[r0+local[k]]
				colPerm[r0+k] = sym.ColPerm[r0+local[k]]
			}
			ordered := sub.Permute(local, local)
			parent := etree.Symmetric(ordered)
			counts := etree.ColCounts(ordered, parent)
			est := 0
			for _, c := range counts {
				est += c
			}
			sym.estNnz[blk] = 2 * est
			flops[blk] = etree.FlopEstimate(counts)
		} else {
			sym.estNnz[blk] = 1
			flops[blk] = 1
		}
	}
	parallelBlocks(nblocks, opts.threads(), analyzeBlock)
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	var smalls []smallStat
	for blk := 0; blk < nblocks; blk++ {
		if sym.kind[blk] == blockSmall {
			smalls = append(smalls, smallStat{blk, flops[blk]})
		}
	}
	sym.RowPerm, sym.ColPerm = rowPerm, colPerm

	// ---- Partition small blocks among threads by estimated flops
	// (longest-processing-time greedy, Algorithm 2 line 5).
	nt := opts.threads()
	sym.partition = make([][]int, nt)
	sort.Slice(smalls, func(i, j int) bool { return smalls[i].flops > smalls[j].flops })
	loads := make([]float64, nt)
	for _, st := range smalls {
		best := 0
		for t := 1; t < nt; t++ {
			if loads[t] < loads[best] {
				best = t
			}
		}
		sym.partition[best] = append(sym.partition[best], st.blk)
		loads[best] += st.flops
	}
	for blk := 0; blk < nblocks; blk++ {
		d := 0
		if ns := sym.ndsym[blk]; ns != nil {
			d = maxBlockDim(ns)
		} else {
			d = sym.BlockPtr[blk+1] - sym.BlockPtr[blk]
		}
		if d > sym.scratchLen {
			sym.scratchLen = d
		}
	}
	sym.buildFactorPlan(a)
	return sym, nil
}

// buildFactorPlan caches, once per analysis, the entry maps every fresh
// factorization of a same-pattern matrix gathers through: the global
// permutation map plus per-block extraction maps (small blocks here, the
// fine-ND 2D grids on their ndSym). Map construction is independent per
// block and runs across the thread pool.
func (sym *Symbolic) buildFactorPlan(a *sparse.CSC) {
	rec := sym.Opts.Trace
	planStart := rec.Now()
	nblocks := sym.NumBlocks()
	perm, permMap := a.PermuteWithMap(sym.RowPerm, sym.ColPerm)
	pl := &factorPlan{
		colptr:   append([]int(nil), a.Colptr...),
		rowidx:   append([]int(nil), a.Rowidx...),
		perm:     perm,
		permMap:  permMap,
		smallPat: make([]*sparse.CSC, nblocks),
		smallSrc: make([][]int, nblocks),
	}
	parallelBlocks(nblocks, sym.Opts.threads(), func(blk, _ int) {
		r0, r1 := sym.BlockPtr[blk], sym.BlockPtr[blk+1]
		switch sym.kind[blk] {
		case blockSmall:
			pl.smallPat[blk], pl.smallSrc[blk] = perm.ExtractBlockWithMap(r0, r1, r0, r1)
			pl.smallPat[blk].Values = nil
		case blockND:
			sym.ndsym[blk].grid = buildNDGrid(perm, r0, sym.ndsym[blk])
			for _, row := range sym.ndsym[blk].grid.pat {
				for _, pat := range row {
					if pat != nil {
						pat.Values = nil
					}
				}
			}
		}
	})
	// The plan is pattern-only: every consumer either aliases the index
	// slices (SharePattern) or gathers through the entry maps, so the value
	// buffers filled during construction are dead weight — drop them rather
	// than retain ~nnz float64s per cached analysis.
	perm.Values = nil
	sym.plan = pl
	if rec != nil {
		rec.Record(trace.Event{Start: planStart, End: rec.Now(),
			Worker: trace.DriverWorker, Block: -1, Kind: trace.KindAnalyzePlan, Phase: trace.PhaseAnalyze})
	}
}

// btfWSPool and matchWSPool recycle the serial front end's workspaces
// across Analyze calls (and across the parallel per-block analyses, which
// draw one matching workspace per in-flight block): the coarse BTF and
// bottleneck-matching scratch used to be reallocated on every call, a
// measurable slice of the symbolic phase the paper insists must not
// serialize the pipeline.
var (
	btfWSPool   = sync.Pool{New: func() any { return btf.NewWorkspace() }}
	matchWSPool = sync.Pool{New: func() any { return matching.NewWorkspace() }}
)

// parallelBlocks runs fn(blk, t) for every block, fanning independent
// blocks out over up to nt worker goroutines (inline when nt <= 1); t is
// the worker index executing the block, for trace attribution.
func parallelBlocks(nblocks, nt int, fn func(blk, t int)) {
	if nt > nblocks {
		nt = nblocks
	}
	if nt <= 1 {
		for blk := 0; blk < nblocks; blk++ {
			fn(blk, 0)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for t := 0; t < nt; t++ {
		wg.Add(1)
		go func(t int) {
			defer wg.Done()
			for {
				blk := int(next.Add(1)) - 1
				if blk >= nblocks {
					return
				}
				fn(blk, t)
			}
		}(t)
	}
	wg.Wait()
}

// analyzeND builds the fine-ND symbolic structure for coarse block blk
// (paper §III-C): local MWCM, nested dissection with one leaf per thread,
// optional per-block AMD, composed into the global permutations.
func analyzeND(sym *Symbolic, b *sparse.CSC, blk, r0, r1 int, rowPerm, colPerm []int, opts Options) error {
	bs := r1 - r0
	d := b.ExtractBlock(r0, r1, r0, r1)

	// Local matching (Pm2) to concentrate weight on the diagonal and
	// reduce the need to pivot.
	localRow := sparse.IdentityPerm(bs)
	if opts.UseMWCM {
		ws := matchWSPool.Get().(*matching.Workspace)
		m, err := matching.BottleneckWith(d, ws)
		matchWSPool.Put(ws)
		if err != nil {
			return fmt.Errorf("core: nd block %d matching: %w", blk, err)
		}
		localRow = m.RowPerm
		d = d.Permute(localRow, nil)
	}

	// Nested dissection with one leaf per ND thread.
	tree, err := nd.Compute(d, opts.ndLeaves())
	if err != nil {
		return fmt.Errorf("core: nd block %d: %w", blk, err)
	}
	rowL := append([]int(nil), tree.Perm...)
	colL := append([]int(nil), tree.Perm...)

	// Optional AMD inside each tree diagonal block for local fill
	// reduction; the composition keeps the tree's block boundaries.
	if opts.LocalAMD {
		d2 := d.Permute(tree.Perm, tree.Perm)
		for nb := 0; nb < tree.NumBlocks(); nb++ {
			b0, b1 := tree.BlockPtr[nb], tree.BlockPtr[nb+1]
			if b1-b0 < 3 {
				continue
			}
			sub := d2.ExtractBlock(b0, b1, b0, b1)
			local := amd.Order(sub)
			for k := 0; k < b1-b0; k++ {
				rowL[b0+k] = tree.Perm[b0+local[k]]
				colL[b0+k] = tree.Perm[b0+local[k]]
			}
		}
	}

	// Compose into the global permutations:
	// global row = BTF ∘ localRow ∘ rowL ; global col = BTF ∘ colL.
	for k := 0; k < bs; k++ {
		rowPerm[r0+k] = sym.RowPerm[r0+localRow[rowL[k]]]
		colPerm[r0+k] = sym.ColPerm[r0+colL[k]]
	}
	ns := newNDSym(tree)
	// Algorithm 3: parallel symbolic estimation over the final 2D layout,
	// so the numeric phase can pre-size factor storage.
	dp := d.Permute(rowL, colL)
	ns.est = estimateND(dp, ns)
	// Supernode detection before the dense tags: moderate-density leaf
	// diagonals get elimination-tree panels, and computeDenseTags tags
	// couplings onto supernodal leaves the same way it does dense ones.
	ns.computeSupernodes(dp, opts)
	// Density-adaptive kernel classification: fill-heavy separator kernels
	// are tagged here, once per analysis, for the dense panel layer.
	ns.computeDenseTags(opts)
	sym.ndsym[blk] = ns
	return nil
}

// Factor numerically factors a with a prior analysis. All numeric state is
// built fresh and returned only on success, so a failed Factor never leaves
// a partially mutated Numeric behind.
//
// When a's sparsity pattern matches the analyzed one (the overwhelmingly
// common case), the values are gathered straight into permuted and
// per-block storage through the Analyze-time entry maps — no Permute, no
// ExtractBlock — and every coarse block is swept by one unified scheduler:
// independent fine-ND blocks factor concurrently with each other and with
// the flop-balanced fine-BTF partition, joined point-to-point on a
// per-block completion fabric instead of a barrier. A different pattern
// falls back to per-call permutation and extraction.
func Factor(a *sparse.CSC, sym *Symbolic) (*Numeric, error) {
	return factorImpl(context.Background(), a, sym, nil, nil)
}

// FactorCtx is Factor bound to a context: a cancellation or deadline fired
// mid-sweep unwinds every worker cooperatively and returns
// ErrCanceled/ErrDeadlineExceeded. With context.Background() it is exactly
// Factor (no monitor runs unless Options.StallTimeout arms the watchdog).
func FactorCtx(ctx context.Context, a *sparse.CSC, sym *Symbolic) (*Numeric, error) {
	return factorImpl(ctx, a, sym, nil, nil)
}

// FactorInto runs a fresh numeric factorization (new pivot selection, same
// symbolic analysis) reusing num's storage: permuted values, diagonal-block
// factors, fine-ND grids and pooled workspaces. a must have the analyzed
// sparsity pattern. On error num's numeric values are unspecified and it
// must not be used for solves until a subsequent FactorInto or Refactor
// succeeds; its structure remains intact, so retrying is permitted. Like
// Refactor, it must not run concurrently with solves on this Numeric.
func (num *Numeric) FactorInto(a *sparse.CSC) error {
	_, err := factorImpl(context.Background(), a, num.Sym, num, nil)
	return err
}

// FactorIntoCtx is FactorInto bound to a context (see FactorCtx).
func (num *Numeric) FactorIntoCtx(ctx context.Context, a *sparse.CSC) error {
	_, err := factorImpl(ctx, a, num.Sym, num, nil)
	return err
}

func factorImpl(ctx context.Context, a *sparse.CSC, sym *Symbolic, num *Numeric, hooks *schedHooks) (out *Numeric, err error) {
	if a.N != sym.N || a.M != sym.N {
		return nil, fmt.Errorf("core: dimension mismatch with symbolic analysis")
	}
	// Serial-path panic isolation: parallel workers recover below, but the
	// single-threaded sweep and the gather run on the caller's goroutine.
	defer func() {
		if r := recover(); r != nil {
			if num != nil {
				num.notePanic(r)
				num.incPoisoned = true
				err = num.takePanicErr()
			} else {
				err = panicError(r)
			}
			out = nil
		}
	}()
	nblocks := sym.NumBlocks()
	nt := sym.Opts.threads()
	rec := sym.Opts.Trace
	sweep := rec.BeginSweep(trace.PhaseFactor)
	defer sweep.End()
	fresh := num == nil
	armed := MonitorArmed(ctx, sym.Opts.StallTimeout)
	if fresh {
		num = &Numeric{
			Sym:        sym,
			small:      make([]*gp.Factors, nblocks),
			nd:         make([]*ndNum, nblocks),
			btfBusy:    make([]float64, nt),
			factorSig:  NewEpochSignals(nblocks),
			factorErrs: make([]error, nblocks),
			factorWS:   make([]*gp.Workspace, nt),
			smallIn:    make([]*sparse.CSC, nblocks),
		}
		num.factorSig.Bind(&num.sweep)
		num.gpPoll = num.sweep.Poll
		num.hooks = hooks
	} else {
		// Stragglers of a previous cancelled/stalled sweep still own their
		// workspaces and storage; wait them out before any state is reset.
		num.sweep.drain()
		num.factorSig.Reset()
		for i := range num.factorErrs {
			num.factorErrs[i] = nil
		}
		for t := range num.btfBusy {
			num.btfBusy[t] = 0
		}
		num.SyncWaits, num.SyncWaitNs, num.ndSim = 0, 0, 0
	}
	num.factorFailed.Store(false)
	num.sweep.BeginSweep(armed)
	var mon *SweepMonitor
	if armed {
		mon = StartSweepMonitor(MonitorSpec{
			Ctx: ctx, Stall: sym.Opts.StallTimeout, Sweep: "factor",
			Ctl:     &num.sweep,
			Pending: func() (int, int) { return num.pendingCoarse(num.factorSig) },
		})
	}
	defer func() {
		if merr := mon.Stop(); merr != nil {
			// The typed cancellation outranks per-block errors: cancelled
			// workers record only the aborted-sweep marker.
			num.incPoisoned = true
			err = merr
			out = nil
		}
	}()

	// ---- Value gather (or slow-path permutation) into num.Perm. A reused
	// numeric must itself have been built on the planned layout — its Perm,
	// block patterns and gather maps all describe the analyzed pattern — so
	// the guard checks the numeric's provenance, not just the new matrix.
	if fresh {
		num.planned = sym.plan != nil && sym.plan.matches(a)
	} else if !num.planned || sym.plan == nil || !sym.plan.matches(a) {
		return nil, fmt.Errorf("core: FactorInto requires a numeric built on the analyzed sparsity pattern and a matrix matching it")
	}
	gatherStart := rec.Now()
	if num.planned {
		if num.Perm == nil {
			num.Perm = sym.plan.perm.SharePattern()
		}
		sparse.PermuteInto(num.Perm, a, sym.plan.permMap)
	} else {
		num.Perm = a.Permute(sym.RowPerm, sym.ColPerm)
	}
	if rec != nil {
		rec.Record(trace.Event{Start: gatherStart, End: rec.Now(),
			Worker: trace.DriverWorker, Block: -1, Kind: trace.KindGather, Phase: trace.PhaseFactor})
	}

	// ---- Unified numeric sweep: every fine-ND block gets its own
	// cooperative parallel region and the fine-BTF partition runs on its
	// flop-balanced worker sweeps, all concurrently; the driver joins
	// point-to-point on the per-block completion fabric.
	if nt == 1 {
		for blk := 0; blk < nblocks; blk++ {
			num.factorBlock(blk, 0)
		}
	} else {
		inject := sym.Opts.Inject
		for blk := 0; blk < nblocks; blk++ {
			if sym.kind[blk] != blockND {
				continue
			}
			num.sweep.addWorker()
			go func(blk int) {
				defer num.sweep.workerDone()
				// A panicking launcher owns exactly its block's slot; Set is
				// an idempotent epoch store, so force-releasing it lets the
				// point-to-point join quiesce instead of deadlocking.
				defer num.recoverRelease(num.factorSig, []int{blk})
				inject.WorkerPanic(faultinject.SweepFactor, blk)
				num.factorBlock(blk, 0)
			}(blk)
		}
		for t := 0; t < nt; t++ {
			if len(sym.partition[t]) == 0 {
				continue
			}
			num.sweep.addWorker()
			go func(t int) {
				defer num.sweep.workerDone()
				defer num.recoverRelease(num.factorSig, sym.partition[t])
				inject.WorkerPanic(faultinject.SweepFactor, nblocks+t)
				for _, blk := range sym.partition[t] {
					num.factorBlock(blk, t)
				}
			}(t)
		}
		for blk := 0; blk < nblocks; blk++ {
			if !num.factorSig.Wait(blk) {
				// Only external cancellation unblocks this join with false
				// (coarse fabrics are never failed by workers): return
				// early with the monitor's typed error; stragglers drain at
				// the next sweep entry.
				break
			}
		}
	}
	if perr := num.takePanicErr(); perr != nil {
		num.incPoisoned = true
		return nil, perr
	}
	if num.sweep.Canceled() {
		// Cancelled mid-sweep: stragglers may still be writing block
		// storage, so no post-processing may touch it. The deferred monitor
		// stop replaces this marker with the typed cancellation error.
		num.incPoisoned = true
		return nil, errSweepAborted
	}
	for _, err := range num.factorErrs {
		if err != nil {
			num.incPoisoned = true
			return nil, err
		}
	}
	for blk := 0; blk < nblocks; blk++ {
		if sym.kind[blk] == blockND {
			num.SyncWaits += num.nd[blk].SyncWaits
			num.SyncWaitNs += num.nd[blk].SyncWaitNs
			num.ndSim += num.nd[blk].simSeconds()
		}
	}
	num.nnzLU = num.countNnzLU()
	if fresh {
		num.compactStorage()
	}
	num.incPoisoned = false
	return num, nil
}

// factorBlock freshly factors one coarse block (worker index t selects the
// pooled fine-BTF workspace and timing slot) and signals its completion
// slot. Block storage is reused when present (the FactorInto path) and
// allocated on first use.
func (num *Numeric) factorBlock(blk, t int) {
	sym := num.Sym
	if num.factorFailed.Load() || num.sweep.Canceled() {
		// Another block already failed, or the sweep was cancelled: skip the
		// work, signal the slot so the point-to-point join still quiesces
		// every worker.
		num.factorSig.Set(blk)
		return
	}
	r0, r1 := sym.BlockPtr[blk], sym.BlockPtr[blk+1]
	inject := sym.Opts.Inject
	switch sym.kind[blk] {
	case blockSmall:
		num.hookStart(blk, false)
		var sub *sparse.CSC
		if num.planned {
			sub = num.smallIn[blk]
			if sub == nil {
				sub = sym.plan.smallPat[blk].SharePattern()
				num.smallIn[blk] = sub
			}
			sparse.ExtractBlockInto(sub, num.Perm, sym.plan.smallSrc[blk])
		} else {
			sub = num.Perm.ExtractBlock(r0, r1, r0, r1)
		}
		if inject.KernelNaN(faultinject.SweepFactor, blk) && sub.Nnz() > 0 {
			sub.Values[0] = nan()
		}
		ws := num.workerWS(t)
		if num.small[blk] == nil {
			num.small[blk] = &gp.Factors{}
		}
		t0 := time.Now()
		var err error
		if inject.PivotFail(faultinject.SweepFactor, blk) {
			err = gp.ErrSingular
		} else {
			err = gp.FactorInto(num.small[blk], sub, sym.estNnz[blk], num.gpOpts(), ws)
		}
		d := time.Since(t0)
		num.btfBusy[t] += d.Seconds()
		if rec := sym.Opts.Trace; rec != nil {
			end := rec.Now()
			rec.Record(trace.Event{Start: end - d.Nanoseconds(), End: end,
				Worker: int32(t), Block: int32(blk), Kind: trace.KindSmallBlock, Phase: trace.PhaseFactor})
		}
		if err != nil {
			num.factorErrs[blk] = fmt.Errorf("core: small block %d: %w", blk, err)
			num.factorFailed.Store(true)
		}
		num.hookDone(blk, false)
		inject.StallPoint(faultinject.SweepFactor, blk)
		num.factorSig.Set(blk)
	case blockND:
		num.hookStart(blk, true)
		var grid *ndGrid
		if num.planned {
			grid = sym.ndsym[blk].grid
		}
		if inject.KernelNaN(faultinject.SweepFactor, blk) {
			poisonColumnRange(num.Perm, r0, r1)
		}
		var ndn *ndNum
		var err error
		if inject.PivotFail(faultinject.SweepFactor, blk) {
			err = gp.ErrSingular
		} else {
			ndn, err = factorND(num.Perm, blk, r0, sym.ndsym[blk], num.sweepOpts(), grid, num.nd[blk])
		}
		if err != nil {
			num.factorErrs[blk] = fmt.Errorf("core: nd block %d: %w", blk, err)
			num.factorFailed.Store(true)
		} else {
			num.nd[blk] = ndn
		}
		num.hookDone(blk, true)
		inject.StallPoint(faultinject.SweepFactor, blk)
		num.factorSig.Set(blk)
	}
}

// workerWS returns fine-BTF worker t's pooled Gilbert–Peierls workspace
// (lazily built; gp calls grow it to each block's dimension on demand).
func (num *Numeric) workerWS(t int) *gp.Workspace {
	ws := num.factorWS[t]
	if ws == nil {
		ws = gp.NewWorkspace(64)
		num.factorWS[t] = ws
	}
	return ws
}

// compactStorage clips every factor's storage to its exact length after a
// fresh factorization, releasing the slack the 2× symbolic nnz estimates
// retain (pooled FactorInto reuse deliberately keeps the slack instead).
func (num *Numeric) compactStorage() {
	for _, f := range num.small {
		if f != nil {
			f.Compact()
		}
	}
	for _, ndn := range num.nd {
		if ndn != nil {
			ndn.compactStorage()
		}
	}
}

// FactorDirect is the one-shot Analyze+Factor.
func FactorDirect(a *sparse.CSC, opts Options) (*Numeric, error) {
	return FactorDirectCtx(context.Background(), a, opts)
}

// FactorDirectCtx is FactorDirect with cooperative cancellation of the
// numeric sweep (the serial analysis runs to completion regardless; only a
// ctx already expired at entry skips it).
func FactorDirectCtx(ctx context.Context, a *sparse.CSC, opts Options) (*Numeric, error) {
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return nil, CancelCause(ctx)
		}
	}
	sym, err := Analyze(a, opts)
	if err != nil {
		return nil, err
	}
	return FactorCtx(ctx, a, sym)
}

// Refactor recomputes numeric values for a same-pattern matrix, reusing the
// symbolic analysis and all diagonal-block pivot sequences — the operation
// the Xyce transient sequence repeats thousands of times.
//
// The first call builds the numeric-scatter pipeline (entry maps from the
// caller's CSC into the permuted storage and every diagonal block, pooled
// per-worker workspaces, a resettable completion fabric); it is published
// into the Numeric only once fully built. Every subsequent call is a pure
// value gather plus per-block numeric refreshes — zero allocations in
// steady state — with all coarse blocks swept by one unified scheduler, so
// fine-ND blocks refactor concurrently with the fine-BTF partition. A small
// block whose reused pivot drifts to zero (gp.ErrSingular) falls back to a
// fresh pivoting factorization of that block alone; fine-ND blocks fall
// back to a fresh parallel factorization of that block. Replacement factors
// are published into the Numeric only after they are completely built.
//
// Exclusion contract: Refactor must not run concurrently with any solve or
// other Refactor on this Numeric (values are refreshed in place). If
// Refactor returns an error, the numeric values are unspecified: the
// factorization must not be used for solves until a subsequent Refactor or
// a fresh Factor succeeds; its structure remains intact, so retrying is
// permitted.
func (num *Numeric) Refactor(a *sparse.CSC) error {
	return num.RefactorCtx(context.Background(), a)
}

// RefactorCtx is Refactor bound to a context: a cancellation or deadline
// fired mid-sweep unwinds every worker cooperatively, poisons the numeric
// (recoverable by any subsequent successful refresh) and returns
// ErrCanceled/ErrDeadlineExceeded. With context.Background() it is exactly
// Refactor — no monitor goroutine, no allocation — unless
// Options.StallTimeout arms the stall watchdog.
func (num *Numeric) RefactorCtx(ctx context.Context, a *sparse.CSC) (err error) {
	sym := num.Sym
	if a.N != sym.N || a.M != sym.N {
		return fmt.Errorf("core: dimension mismatch with symbolic analysis")
	}
	// A context already expired at entry rejects before any numeric work:
	// the factors are untouched, so the numeric is NOT poisoned.
	if ctx != nil && ctx.Err() != nil {
		return CancelCause(ctx)
	}
	// Serial-path panic isolation (parallel workers recover in
	// refactorParallel); a recovered panic poisons the numeric.
	defer func() {
		if r := recover(); r != nil {
			num.notePanic(r)
			num.incPoisoned = true
			err = num.takePanicErr()
		}
	}()
	if num.pipe == nil {
		pipe, err := num.buildPipeline(a)
		if err != nil {
			return err
		}
		num.pipe = pipe
	}
	pipe := num.pipe
	if err := pipe.checkPattern(a); err != nil {
		return err
	}
	// Stragglers of a previous cancelled/stalled sweep still read permuted
	// storage and own their workspaces; wait them out before the gather.
	num.sweep.drain()
	rec := sym.Opts.Trace
	sweep := rec.BeginSweep(trace.PhaseRefactor)
	defer sweep.End()
	// Value gather: the caller's CSC lands directly in permuted storage.
	gatherStart := rec.Now()
	sparse.PermuteInto(num.Perm, a, pipe.permMap)
	if rec != nil {
		rec.Record(trace.Event{Start: gatherStart, End: rec.Now(),
			Worker: trace.DriverWorker, Block: -1, Kind: trace.KindGather, Phase: trace.PhaseRefactor})
	}
	for i := range pipe.errs {
		pipe.errs[i] = nil
	}
	for t := range num.btfBusy {
		num.btfBusy[t] = 0
	}
	num.SyncWaits = 0
	num.SyncWaitNs = 0
	num.ndSim = 0
	pipe.sig.Reset()
	armed := MonitorArmed(ctx, sym.Opts.StallTimeout)
	num.sweep.BeginSweep(armed)
	var mon *SweepMonitor
	if armed {
		mon = StartSweepMonitor(MonitorSpec{
			Ctx: ctx, Stall: sym.Opts.StallTimeout, Sweep: "refactor",
			Ctl:     &num.sweep,
			Pending: func() (int, int) { return num.pendingCoarse(pipe.sig) },
		})
	}
	defer func() {
		if merr := mon.Stop(); merr != nil {
			num.incPoisoned = true
			err = merr
		}
	}()
	nt := sym.Opts.threads()
	if nt == 1 {
		for blk := 0; blk < sym.NumBlocks(); blk++ {
			num.refactorBlock(blk, 0)
		}
	} else {
		num.refactorParallel(nt)
	}
	if perr := num.takePanicErr(); perr != nil {
		num.incPoisoned = true
		return perr
	}
	if num.sweep.Canceled() {
		// Cancelled mid-sweep: stragglers may still be refreshing blocks,
		// so no post-processing may touch them. The deferred monitor stop
		// replaces this marker with the typed cancellation error.
		num.incPoisoned = true
		return errSweepAborted
	}
	for _, err := range pipe.errs {
		if err != nil {
			num.incPoisoned = true
			return err
		}
	}
	for blk := 0; blk < sym.NumBlocks(); blk++ {
		if sym.kind[blk] == blockND {
			num.SyncWaits += num.nd[blk].SyncWaits
			num.SyncWaitNs += num.nd[blk].SyncWaitNs
			num.ndSim += num.nd[blk].simSeconds()
		}
	}
	if pipe.changed.Load() {
		num.nnzLU = num.countNnzLU()
		pipe.changed.Store(false)
	}
	num.incPoisoned = false
	return nil
}

// buildPipeline constructs the refactorization pipeline from the first
// same-pattern matrix, verifying that its pattern matches the factored one.
// The pipeline is returned fully built (the caller publishes it with one
// assignment), so a failed build leaves the Numeric untouched. A numeric
// built through the Analyze-time gather plan shares the plan's entry maps
// and block patterns instead of rebuilding them.
func (num *Numeric) buildPipeline(a *sparse.CSC) (*refactorPipeline, error) {
	sym := num.Sym
	nblocks := sym.NumBlocks()
	pipe := &refactorPipeline{
		smallSub: make([]*sparse.CSC, nblocks),
		smallSrc: make([][]int, nblocks),
		sig:      NewEpochSignals(nblocks),
		errs:     make([]error, nblocks),
	}
	pipe.sig.Bind(&num.sweep)
	if num.planned && sym.plan.matches(a) {
		pipe.permMap = sym.plan.permMap
		pipe.colptr = sym.plan.colptr
		pipe.rowidx = sym.plan.rowidx
	} else {
		b, permMap := a.PermuteWithMap(sym.RowPerm, sym.ColPerm)
		if b.Nnz() != num.Perm.Nnz() {
			return nil, fmt.Errorf("core: refactor pattern mismatch: %d entries, analyzed %d", b.Nnz(), num.Perm.Nnz())
		}
		for j := 0; j <= sym.N; j++ {
			if b.Colptr[j] != num.Perm.Colptr[j] {
				return nil, fmt.Errorf("core: refactor pattern mismatch in column %d", j-1)
			}
		}
		for t, r := range b.Rowidx {
			if r != num.Perm.Rowidx[t] {
				return nil, fmt.Errorf("core: refactor pattern mismatch at entry %d", t)
			}
		}
		pipe.permMap = permMap
		pipe.colptr = append([]int(nil), a.Colptr...)
		pipe.rowidx = append([]int(nil), a.Rowidx...)
	}
	for blk := 0; blk < nblocks; blk++ {
		r0, r1 := sym.BlockPtr[blk], sym.BlockPtr[blk+1]
		switch sym.kind[blk] {
		case blockSmall:
			if num.planned {
				// Reuse the pooled gather block of the factor fast path (its
				// values are scratch between sweeps either way).
				sub := num.smallIn[blk]
				if sub == nil {
					sub = sym.plan.smallPat[blk].SharePattern()
					num.smallIn[blk] = sub
				}
				pipe.smallSub[blk] = sub
				pipe.smallSrc[blk] = sym.plan.smallSrc[blk]
			} else {
				sub, src := num.Perm.ExtractBlockWithMap(r0, r1, r0, r1)
				pipe.smallSub[blk] = sub
				pipe.smallSrc[blk] = src
			}
		case blockND:
			num.nd[blk].ensureRefactorState(num.Perm, r0)
		}
	}
	nt := sym.Opts.threads()
	owned := make([]bool, nblocks)
	for blk := 0; blk < nblocks; blk++ {
		if sym.kind[blk] == blockND {
			owned[blk] = true
		}
	}
	for t := 0; t < nt; t++ {
		for _, blk := range sym.partition[t] {
			owned[blk] = true
		}
	}
	for blk, l := range owned {
		if !l {
			pipe.unowned = append(pipe.unowned, blk)
		}
	}
	return pipe, nil
}

// refactorParallel is the unified refactor scheduler: every fine-ND block
// gets its own cooperative parallel region and the fine-BTF partition runs
// on its flop-balanced worker sweeps (Algorithm 2), all concurrently. The
// driver joins the sweep point-to-point on the per-block completion fabric
// rather than with a barrier, so independent ND blocks overlap both each
// other and the small-block sweeps.
func (num *Numeric) refactorParallel(nt int) {
	sym := num.Sym
	pipe := num.pipe
	// Blocks no worker owns (none in practice) are refreshed inline before
	// any worker starts, so the join below cannot deadlock and worker 0's
	// workspace is never shared with a live goroutine.
	for _, blk := range pipe.unowned {
		num.refactorBlock(blk, 0)
	}
	inject := sym.Opts.Inject
	nblocks := sym.NumBlocks()
	for blk := 0; blk < nblocks; blk++ {
		if sym.kind[blk] != blockND {
			continue
		}
		num.sweep.addWorker()
		go func(blk int) {
			defer num.sweep.workerDone()
			// Force-release the owned slot on panic (Set is idempotent), so
			// the driver's point-to-point join quiesces every sibling.
			defer num.recoverRelease(pipe.sig, []int{blk})
			inject.WorkerPanic(faultinject.SweepRefactor, blk)
			num.refactorBlock(blk, 0)
		}(blk)
	}
	for t := 0; t < nt; t++ {
		if len(sym.partition[t]) == 0 {
			continue
		}
		num.sweep.addWorker()
		go func(t int) {
			defer num.sweep.workerDone()
			defer num.recoverRelease(pipe.sig, sym.partition[t])
			inject.WorkerPanic(faultinject.SweepRefactor, nblocks+t)
			for _, blk := range sym.partition[t] {
				num.refactorBlock(blk, t)
			}
		}(t)
	}
	for blk := 0; blk < nblocks; blk++ {
		if !pipe.sig.Wait(blk) {
			// Only external cancellation unblocks this join with false:
			// return early with the monitor's typed error; stragglers drain
			// at the next sweep entry.
			break
		}
	}
}

// refactorBlock refreshes one coarse block in place (worker index t selects
// the pooled fine-BTF workspace and timing slot) and signals its completion
// slot. A reused pivot sequence defeated by the new values (gp.ErrSingular)
// triggers a per-block fallback to a fresh pivoting factorization; the
// replacement is published only after it is fully built, and the sweep
// carries on with the remaining blocks.
func (num *Numeric) refactorBlock(blk, t int) {
	sym := num.Sym
	pipe := num.pipe
	if num.sweep.Canceled() {
		pipe.sig.Set(blk)
		return
	}
	inject := sym.Opts.Inject
	switch sym.kind[blk] {
	case blockSmall:
		num.hookStart(blk, false)
		sub := pipe.smallSub[blk]
		sparse.ExtractBlockInto(sub, num.Perm, pipe.smallSrc[blk])
		if inject.KernelNaN(faultinject.SweepRefactor, blk) && sub.Nnz() > 0 {
			sub.Values[0] = nan()
		}
		t0 := time.Now()
		var err error
		if inject.PivotFail(faultinject.SweepRefactor, blk) {
			err = gp.ErrSingular
		} else {
			err = num.small[blk].Refactor(sub, num.workerWS(t))
		}
		if err != nil && errors.Is(err, gp.ErrSingular) {
			// Pivot drift: re-pivot this block alone. A second armed
			// PivotFail also takes down the fallback, exercising the
			// poisoned-numeric path.
			num.pivotFallbacks.Add(1)
			if inject.PivotFail(faultinject.SweepRefactor, blk) {
				err = gp.ErrSingular
			} else {
				var f *gp.Factors
				f, err = gp.Factor(sub, sym.estNnz[blk], num.gpOpts(), num.workerWS(t))
				if err == nil {
					num.small[blk] = f
					pipe.changed.Store(true)
				}
			}
		}
		d := time.Since(t0)
		num.btfBusy[t] += d.Seconds()
		if rec := sym.Opts.Trace; rec != nil {
			end := rec.Now()
			rec.Record(trace.Event{Start: end - d.Nanoseconds(), End: end,
				Worker: int32(t), Block: int32(blk), Kind: trace.KindSmallBlock, Phase: trace.PhaseRefactor})
		}
		if err != nil {
			pipe.errs[blk] = fmt.Errorf("core: refactor small block %d: %w", blk, err)
		}
		num.hookDone(blk, false)
		inject.StallPoint(faultinject.SweepRefactor, blk)
		pipe.sig.Set(blk)
	case blockND:
		num.hookStart(blk, true)
		r0 := sym.BlockPtr[blk]
		if inject.KernelNaN(faultinject.SweepRefactor, blk) {
			poisonColumnRange(num.Perm, r0, sym.BlockPtr[blk+1])
		}
		var err error
		if inject.PivotFail(faultinject.SweepRefactor, blk) {
			err = gp.ErrSingular
		} else {
			err = num.nd[blk].refactorInPlace(num.Perm, r0)
		}
		if err != nil && errors.Is(err, gp.ErrSingular) {
			// Pivot drift inside the 2D hierarchy: rebuild this coarse
			// block with a fresh parallel factorization (new pivots),
			// published only once completely built.
			num.pivotFallbacks.Add(1)
			if inject.PivotFail(faultinject.SweepRefactor, blk) {
				err = gp.ErrSingular
			} else {
				var grid *ndGrid
				if num.planned {
					grid = sym.ndsym[blk].grid
				}
				var fresh *ndNum
				fresh, err = factorND(num.Perm, blk, r0, sym.ndsym[blk], num.sweepOpts(), grid, nil)
				if err == nil {
					fresh.ensureRefactorState(num.Perm, r0)
					num.nd[blk] = fresh
					num.remapBlockDst(blk)
					pipe.changed.Store(true)
				}
			}
		}
		if err != nil {
			pipe.errs[blk] = fmt.Errorf("core: refactor nd block %d: %w", blk, err)
		}
		num.hookDone(blk, true)
		inject.StallPoint(faultinject.SweepRefactor, blk)
		pipe.sig.Set(blk)
	}
}

// Solve solves A x = rhs in place. It allocates its scratch; concurrent
// and allocation-free solves go through the internal/trisolve subsystem,
// which feeds caller-owned workspaces to SolveInto.
func (num *Numeric) Solve(rhs []float64) {
	n := num.Sym.N
	num.SolveInto(rhs, make([]float64, n), make([]float64, num.Sym.SolveScratchLen()))
}

// SolveInto solves A x = rhs in place using caller-provided scratch: y must
// have length n, scratch at least Sym.SolveScratchLen(). It performs no
// allocation and is safe for concurrent use on one Numeric (each caller
// brings its own y and scratch), as long as no Refactor runs concurrently.
func (num *Numeric) SolveInto(rhs, y, scratch []float64) {
	sym := num.Sym
	n := sym.N
	for k := 0; k < n; k++ {
		y[k] = rhs[sym.RowPerm[k]]
	}
	// Coarse block back-substitution, last block first (upper BTF).
	for blk := sym.NumBlocks() - 1; blk >= 0; blk-- {
		num.SolveBlock(blk, y, scratch)
		num.OffBlockUpdate(blk, y)
	}
	for k := 0; k < n; k++ {
		rhs[sym.ColPerm[k]] = y[k]
	}
}

// SolveBlock solves coarse diagonal block blk against the permuted vector
// y (full length n; only y[r0:r1] is touched). scratch needs at least
// Sym.SolveScratchLen() elements.
func (num *Numeric) SolveBlock(blk int, y, scratch []float64) {
	sym := num.Sym
	r0, r1 := sym.BlockPtr[blk], sym.BlockPtr[blk+1]
	switch sym.kind[blk] {
	case blockSmall:
		num.small[blk].SolveWith(y[r0:r1], scratch)
	case blockND:
		num.nd[blk].ndSolve(y[r0:r1], scratch)
	}
}

// PanelWorkspace holds the scratch of the blocked multi-RHS sweep: the
// pivot-application scratch plus the active-column gather buffers of the
// panel kernels.
type PanelWorkspace struct {
	scratch []float64
	views   [][]float64
	active  []int
	vals    []float64
}

// NewPanelWorkspace sizes a workspace for panels of up to maxCols
// right-hand sides against factorizations of this symbolic structure.
func (s *Symbolic) NewPanelWorkspace(maxCols int) *PanelWorkspace {
	return &PanelWorkspace{
		scratch: make([]float64, s.SolveScratchLen()),
		views:   make([][]float64, maxCols),
		active:  make([]int, maxCols),
		vals:    make([]float64, maxCols),
	}
}

// SolvePanel runs the coarse BTF back-substitution over a panel of
// permuted right-hand sides (each of full length n, already in row-permuted
// order), blocked so each diagonal block's factors and each off-block
// column are traversed once per panel instead of once per vector. Per
// right-hand side the operation sequence is identical to the serial sweep
// of SolveInto.
func (num *Numeric) SolvePanel(ys [][]float64, pw *PanelWorkspace) {
	sym := num.Sym
	k := len(ys)
	for blk := sym.NumBlocks() - 1; blk >= 0; blk-- {
		r0, r1 := sym.BlockPtr[blk], sym.BlockPtr[blk+1]
		switch sym.kind[blk] {
		case blockSmall:
			views := pw.views[:k]
			for c, y := range ys {
				views[c] = y[r0:r1]
			}
			num.small[blk].SolveManyWith(views, pw.scratch, pw.active, pw.vals)
		case blockND:
			// The 2D ND solve stays per-column; fine-ND blocks are few and
			// large, so the panel win concentrates in the small blocks and
			// the off-block couplings.
			for _, y := range ys {
				num.nd[blk].ndSolve(y[r0:r1], pw.scratch)
			}
		}
		num.offBlockUpdateMany(blk, ys, pw)
	}
}

// offBlockUpdateMany applies block blk's off-block couplings to every
// right-hand side of the panel, loading each matrix entry once.
func (num *Numeric) offBlockUpdateMany(blk int, ys [][]float64, pw *PanelWorkspace) {
	sym := num.Sym
	r0, r1 := sym.BlockPtr[blk], sym.BlockPtr[blk+1]
	for c := r0; c < r1; c++ {
		p0, cp1 := num.Perm.Colptr[c], num.Perm.Colptr[c+1]
		pEnd := p0
		for pEnd < cp1 && num.Perm.Rowidx[pEnd] < r0 {
			pEnd++
		}
		if pEnd == p0 {
			continue
		}
		na := 0
		for ci, y := range ys {
			if xc := y[c]; xc != 0 {
				pw.active[na] = ci
				pw.vals[na] = xc
				na++
			}
		}
		if na == 0 {
			continue
		}
		for p := p0; p < pEnd; p++ {
			i, v := num.Perm.Rowidx[p], num.Perm.Values[p]
			for a := 0; a < na; a++ {
				ys[pw.active[a]][i] -= v * pw.vals[a]
			}
		}
	}
}

// OffBlockUpdate subtracts block blk's solution from earlier rows of y
// (entries above the diagonal block in its columns) — the coupling step of
// the coarse BTF back-substitution.
func (num *Numeric) OffBlockUpdate(blk int, y []float64) {
	sym := num.Sym
	r0, r1 := sym.BlockPtr[blk], sym.BlockPtr[blk+1]
	for c := r0; c < r1; c++ {
		xc := y[c]
		if xc == 0 {
			continue
		}
		for p := num.Perm.Colptr[c]; p < num.Perm.Colptr[c+1]; p++ {
			i := num.Perm.Rowidx[p]
			if i >= r0 {
				break
			}
			y[i] -= num.Perm.Values[p] * xc
		}
	}
}

// NnzLU reports |L+U|: all factored entries plus coarse off-block entries
// used in the solve (the paper's Table I statistic). The count is cached
// at factorization time.
func (num *Numeric) NnzLU() int { return num.nnzLU }

func (num *Numeric) countNnzLU() int {
	sym := num.Sym
	total := 0
	for blk := 0; blk < sym.NumBlocks(); blk++ {
		switch sym.kind[blk] {
		case blockSmall:
			total += num.small[blk].NnzLU()
		case blockND:
			total += num.nd[blk].nnzLU()
		}
	}
	for j := 0; j < sym.N; j++ {
		bj := sym.blockOf[j]
		for p := num.Perm.Colptr[j]; p < num.Perm.Colptr[j+1]; p++ {
			if sym.blockOf[num.Perm.Rowidx[p]] != bj {
				total++
			}
		}
	}
	return total
}

// FillDensity reports |L+U| / |A| using the cached count.
func (num *Numeric) FillDensity(a *sparse.CSC) float64 {
	return float64(num.NnzLU()) / float64(a.Nnz())
}

// pendingCoarse reports the first coarse block still pending on sig and the
// worker lane that owns it, for the stall watchdog's diagnostics. Safe to
// call from the monitor goroutine mid-sweep: the fabric's epoch is stable
// between Reset calls and the slots are atomic.
func (num *Numeric) pendingCoarse(sig *EpochSignals) (int, int) {
	blk := sig.FirstPending()
	if blk < 0 {
		return -1, -1
	}
	return blk, num.laneOf(blk)
}

// laneOf maps a coarse block to the fine-BTF worker lane that owns it, or
// -1 for fine-ND blocks (factored by a cooperative team, not a single lane).
func (num *Numeric) laneOf(blk int) int {
	sym := num.Sym
	if sym.kind[blk] == blockND {
		return -1
	}
	for t, blks := range sym.partition {
		for _, b := range blks {
			if b == blk {
				return t
			}
		}
	}
	return -1
}
