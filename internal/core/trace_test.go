package core

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/matgen"
	"repro/internal/sparse"
	"repro/internal/trace"
)

// TestTraceDisabledRefactorZeroAlloc pins the observability tax when
// tracing is off: with Options.Trace nil, the instrumented sweeps must
// still perform zero allocations in the Refactor steady state — the
// disabled recorder path is a single pointer test, no clock reads, no
// event writes. A regression here means instrumentation leaked into the
// hot path.
func TestTraceDisabledRefactorZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	base := randCircuit(rng, 400, 0.6)
	opts := optsWithThreads(1)
	opts.Trace = nil // explicit: the disabled-recorder contract under test
	num, err := FactorDirect(base, opts)
	if err != nil {
		t.Fatal(err)
	}
	if num.Sym.NumNDBlocks() == 0 {
		t.Fatal("want an ND block in the zero-alloc sweep")
	}
	steps := make([]*sparse.CSC, 4)
	for i := range steps {
		steps[i] = matgen.TransientStep(base, i+1, 99)
	}
	for _, s := range steps {
		if err := num.Refactor(s); err != nil {
			t.Fatal(err)
		}
	}
	i := 0
	allocs := testing.AllocsPerRun(20, func() {
		i++
		if err := num.Refactor(steps[i%len(steps)]); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state Refactor with tracing disabled allocates: %v allocs/op", allocs)
	}
	solveCheck(t, steps[i%len(steps)], num, 1e-7)
}

// TestTraceConcurrentRecording runs the full pipeline — analyze, parallel
// factor, refactor, partial refactor — with a live recorder and several
// workers recording into the shared ring. Under -race this proves the
// lock-free recording path; the summary assertions prove every sweep
// reported through the recorder.
func TestTraceConcurrentRecording(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	a := randCircuit(rng, 600, 0.6)
	rec := trace.NewRecorder(0)
	opts := optsWithThreads(4)
	opts.Trace = rec
	num, err := FactorDirect(a, opts)
	if err != nil {
		t.Fatal(err)
	}
	if num.Sym.NumNDBlocks() == 0 {
		t.Fatal("want an ND block so the 2D schedule records")
	}
	for step := 1; step <= 3; step++ {
		if err := num.Refactor(matgen.TransientStep(a, step, 99)); err != nil {
			t.Fatalf("refactor step %d: %v", step, err)
		}
	}
	last := matgen.TransientStep(a, 3, 99)
	if err := num.RefactorPartial(last, []int{0, 1, 2}); err != nil {
		t.Fatalf("partial refactor: %v", err)
	}
	solveCheck(t, last, num, 1e-7)

	for _, phase := range []trace.Phase{trace.PhaseAnalyze, trace.PhaseFactor, trace.PhaseRefactor, trace.PhasePartial} {
		sum, ok := rec.LastSummary(phase)
		if !ok {
			t.Fatalf("no %v summary", phase)
		}
		if sum.Events == 0 {
			t.Fatalf("%v summary recorded no events", phase)
		}
		if sum.WallSeconds <= 0 || sum.WorkSeconds <= 0 {
			t.Fatalf("%v summary has empty timings: %+v", phase, sum)
		}
		if len(sum.Workers) == 0 {
			t.Fatalf("%v summary has no worker lanes", phase)
		}
	}
	if sum, _ := rec.LastSummary(trace.PhaseFactor); sum.Parallelism <= 0 {
		t.Fatalf("factor parallelism = %v, want > 0", sum.Parallelism)
	}
	if num.LastDirtyBlocks() < 1 {
		t.Fatalf("partial refactor dirty blocks = %d, want >= 1", num.LastDirtyBlocks())
	}
	if num.DirtyBlocksTotal() < int64(num.LastDirtyBlocks()) {
		t.Fatalf("dirty total %d < last %d", num.DirtyBlocksTotal(), num.LastDirtyBlocks())
	}
	if num.SyncWaitSeconds() < 0 {
		t.Fatalf("negative sync wait: %v", num.SyncWaitSeconds())
	}
	if c := rec.CumulativeSeconds(); c["refactor_sweeps"] != 3 {
		t.Fatalf("refactor_sweeps = %v, want 3", c["refactor_sweeps"])
	}
}

// BenchmarkTraceFactor compares the fresh-factorization path with the
// recorder off and on, so the observability tax is a measured number
// (acceptance: enabled tracing costs <= ~5% on the factor trajectory).
func BenchmarkTraceFactor(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	a := randCircuit(rng, 2000, 0.6)
	for _, cfg := range []struct {
		name string
		rec  *trace.Recorder
	}{{"off", nil}, {"on", trace.NewRecorder(0)}} {
		b.Run(cfg.name, func(b *testing.B) {
			opts := optsWithThreads(4)
			opts.Trace = cfg.rec
			num, err := FactorDirect(a, opts)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := num.FactorInto(a); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// TestTraceChromeGolden factors and refactors with tracing on, exports
// the Chrome trace, and checks the JSON is well-formed and the events
// nest: every duration is non-negative and no two events on the same
// lane (Chrome tid) overlap — each lane is one goroutine's sequential
// timeline, so overlap would mean broken timestamps.
func TestTraceChromeGolden(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	a := randCircuit(rng, 500, 0.6)
	rec := trace.NewRecorder(0)
	opts := optsWithThreads(4)
	opts.Trace = rec
	num, err := FactorDirect(a, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := num.Refactor(matgen.TransientStep(a, 1, 99)); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rec.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
			Tid  int64   `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("chrome trace is not JSON: %v", err)
	}
	type span struct{ ts, dur float64 }
	lanes := map[int64][]span{}
	complete := 0
	for _, ev := range out.TraceEvents {
		if ev.Ph != "X" {
			continue
		}
		complete++
		if ev.Dur < 0 {
			t.Fatalf("event %q on tid %d has negative duration %v", ev.Name, ev.Tid, ev.Dur)
		}
		lanes[ev.Tid] = append(lanes[ev.Tid], span{ev.Ts, ev.Dur})
	}
	if complete == 0 {
		t.Fatal("no complete events in trace")
	}
	if len(lanes) < 2 {
		t.Fatalf("only %d lanes; want driver plus workers", len(lanes))
	}
	// Each lane is a single goroutine: sorted by start, an event must not
	// begin before its predecessor ends (epsilon absorbs the ns→µs float
	// conversion of the export).
	const eps = 1e-3
	for tid, spans := range lanes {
		sort.Slice(spans, func(i, j int) bool { return spans[i].ts < spans[j].ts })
		for i := 1; i < len(spans); i++ {
			prevEnd := spans[i-1].ts + spans[i-1].dur
			if spans[i].ts < prevEnd-eps {
				t.Fatalf("tid %d: event at %vus starts before predecessor ends (%vus)",
					tid, spans[i].ts, prevEnd)
			}
		}
	}
}
