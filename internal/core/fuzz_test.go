package core

import (
	"math"
	"testing"

	"repro/internal/matgen"
)

// FuzzFactorSolve drives randomized sparsity patterns and values (through
// the matgen generators, so every matrix is structurally nonsingular and
// diagonally dominant) across the dense/sparse kernel boundary: for each
// generated matrix and threshold — including the edge values 0 (default),
// a tiny epsilon (everything eligible goes dense), 1 (only estimate-
// saturating kernels) and 2 (nothing, the sparse path through the
// threshold alone) — and across the supernodal dimension (the NoSupernodes
// ablation and relaxation bounds 4/8/16): the blocked-path factorization
// must not panic, must solve to residuals on par with the plain-sparse
// oracle (NoDenseKernels + NoSupernodes), and must agree with it again
// after a same-pattern Refactor and a change-set-restricted
// RefactorPartial.
//
// Run the smoke locally with:
//
//	go test -run xxx -fuzz FuzzFactorSolve -fuzztime=10s ./internal/core
func FuzzFactorSolve(f *testing.F) {
	// Seed corpus: every core kind, every threshold class, serial and
	// parallel, with and without small BTF blocks.
	f.Add(int64(1), uint8(0), uint8(0), uint16(200), uint8(0), uint8(1), uint8(1))
	f.Add(int64(2), uint8(1), uint8(1), uint16(300), uint8(30), uint8(2), uint8(0))
	f.Add(int64(3), uint8(2), uint8(0), uint16(400), uint8(0), uint8(4), uint8(2))
	f.Add(int64(4), uint8(2), uint8(2), uint16(350), uint8(50), uint8(3), uint8(3))
	f.Add(int64(5), uint8(2), uint8(3), uint16(256), uint8(10), uint8(2), uint8(1))
	f.Add(int64(6), uint8(0), uint8(1), uint16(64), uint8(100), uint8(1), uint8(0))
	// Supernode-focused seeds: 3D stencil with moderate extra density and a
	// zero dense threshold, across the relaxation bounds.
	f.Add(int64(7), uint8(2), uint8(0), uint16(440), uint8(0), uint8(4), uint8(2))
	f.Add(int64(8), uint8(2), uint8(0), uint16(380), uint8(20), uint8(1), uint8(3))
	f.Fuzz(func(t *testing.T, seed int64, coreSel, thrSel uint8, nSel uint16, btfPct, threads, snSel uint8) {
		n := 64 + int(nSel)%448
		thr := []float64{0, 1e-9, 1, 2}[int(thrSel)%4]
		a := matgen.Circuit(matgen.CircuitParams{
			N:            n,
			BTFPct:       float64(int(btfPct) % 101),
			Blocks:       1 + n/40,
			Core:         matgen.CoreKind(int(coreSel) % 3),
			ExtraDensity: float64(((seed%3)+3)%3) * 0.3, // seed may be negative
			Seed:         seed,
		})
		opts := DefaultOptions()
		opts.Threads = 1 + int(threads)%4
		opts.DenseKernelThreshold = thr
		if snSel%4 == 0 {
			opts.NoSupernodes = true
		} else {
			opts.SupernodeRelax = []int{4, 8, 16}[int(snSel)%4-1]
		}
		sym, err := Analyze(a, opts)
		if err != nil {
			t.Skip() // degenerate structure; nothing to compare
		}
		num, derr := Factor(a, sym)
		oOpts := opts
		oOpts.NoDenseKernels = true
		oOpts.NoSupernodes = true
		oracle, serr := FactorDirect(a, oOpts)
		if (derr == nil) != (serr == nil) {
			t.Fatalf("dense/sparse disagree on factorability: dense %v, sparse %v", derr, serr)
		}
		if derr != nil {
			t.Skip()
		}
		check := func(stage string) {
			dres := relResidual(a, num, seed)
			sres := relResidual(a, oracle, seed)
			if math.IsNaN(dres) || (dres > 1e-6 && dres > 100*sres) {
				t.Fatalf("%s: dense-path residual %.3e, oracle %.3e (threshold %g, %d dense kernels)",
					stage, dres, sres, thr, sym.DenseKernels())
			}
		}
		check("factor")

		// Same-pattern refresh across the kernel boundary.
		a = matgen.TransientStep(a, 1, seed)
		if err := num.Refactor(a); err != nil {
			t.Skip() // pivot sequence defeated and fallback also singular
		}
		if err := oracle.Refactor(a); err != nil {
			t.Skip()
		}
		check("refactor")

		// Change-set-restricted refresh: perturb a clustered slice of
		// columns and send only those through RefactorPartial.
		cols := matgen.ChangeSet(n, 0.05, seed, seed%2 == 0)
		a = matgen.PerturbColumns(a, cols, 2, seed)
		if err := num.RefactorPartial(a, cols); err != nil {
			t.Skip()
		}
		if err := oracle.Refactor(a); err != nil {
			t.Skip()
		}
		check("refactor-partial")
	})
}
