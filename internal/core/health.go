package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime/debug"

	"repro/internal/gp"
	"repro/internal/sparse"
)

// ErrInternalPanic reports that a worker goroutine of a numeric sweep
// panicked. The panic is recovered, the numeric is poisoned (a subsequent
// full Factor/FactorInto/Refactor re-establishes a consistent state), and
// every completion slot the worker owned is force-released so sibling
// workers drain instead of deadlocking. The wrapped error carries the
// panic value and the captured stack.
var ErrInternalPanic = errors.New("core: internal panic in numeric sweep")

// panicError wraps a recovered panic value with ErrInternalPanic and the
// panicking goroutine's stack.
func panicError(r any) error {
	if e, ok := r.(error); ok {
		// Keep error-typed panic values in the chain so callers can match
		// them with errors.Is through the ErrInternalPanic wrapper.
		return fmt.Errorf("%w: %w\n%s", ErrInternalPanic, e, debug.Stack())
	}
	return fmt.Errorf("%w: %v\n%s", ErrInternalPanic, r, debug.Stack())
}

// notePanic records a worker panic for the sweep's error collection. The
// first panic wins (like the per-block error slots); factorFailed is also
// raised so not-yet-started fresh-factor blocks skip their work.
func (num *Numeric) notePanic(r any) {
	num.panics.Add(1)
	num.factorFailed.Store(true)
	err := panicError(r)
	num.panicMu.Lock()
	if num.panicErr == nil {
		num.panicErr = err
	}
	num.panicMu.Unlock()
}

// takePanicErr returns and clears the recorded worker-panic error.
func (num *Numeric) takePanicErr() error {
	num.panicMu.Lock()
	err := num.panicErr
	num.panicErr = nil
	num.panicMu.Unlock()
	return err
}

// recoverRelease converts a worker panic into a recorded sweep error and
// force-releases every completion slot the worker owns. EpochSignals.Set
// is an idempotent epoch store, so slots the worker already signalled are
// unaffected — the driver's point-to-point join still waits for true
// quiescence of every sibling instead of deadlocking or returning while
// workers race on shared per-worker state. Must be called via defer.
func (num *Numeric) recoverRelease(sig *EpochSignals, owned []int) {
	if r := recover(); r != nil {
		num.notePanic(r)
		for _, blk := range owned {
			sig.Set(blk)
		}
	}
}

// Poisoned reports whether the last numeric sweep failed (error or panic),
// leaving the resident values unspecified: the factorization must not be
// solved with until a full FactorInto/Refactor succeeds. Any successful
// refresh clears it.
func (num *Numeric) Poisoned() bool { return num.incPoisoned }

// Panics reports how many worker panics this Numeric's sweeps have
// recovered over its lifetime.
func (num *Numeric) Panics() int64 { return num.panics.Load() }

// Norm1 reports ‖A‖₁ (the maximum column absolute sum) of the factored
// matrix, computed from the permuted copy — permutations preserve column
// sums up to reordering, so no input matrix is needed.
func (num *Numeric) Norm1() float64 {
	perm := num.Perm
	norm := 0.0
	for j := 0; j < perm.N; j++ {
		s := 0.0
		for p := perm.Colptr[j]; p < perm.Colptr[j+1]; p++ {
			v := perm.Values[p]
			if v < 0 {
				v = -v
			}
			s += v
		}
		if s > norm {
			norm = s
		}
	}
	return norm
}

// MaxAbsU reports the largest absolute value across every U factor of the
// block hierarchy (fine-BTF diagonal factors, fine-ND diagonal factors and
// their upper coupling blocks) — the growth side of the reciprocal
// pivot-growth diagnostic. O(nnz U), off the factorization hot path.
func (num *Numeric) MaxAbsU() float64 {
	m := 0.0
	for _, f := range num.small {
		if f != nil {
			if v := f.MaxAbsU(); v > m {
				m = v
			}
		}
	}
	for _, ndn := range num.nd {
		if ndn != nil {
			if v := ndn.maxAbsU(); v > m {
				m = v
			}
		}
	}
	return m
}

// RecipPivotGrowth reports max|A| / max|U|, clamped to [0, 1] — the
// coarse-grained reciprocal pivot growth factor. Values near 1 mean the
// elimination amplified nothing; values near 0 mean U grew enormously
// relative to A and the factorization is numerically suspect (the usual
// symptom of a too-permissive pivot tolerance).
func (num *Numeric) RecipPivotGrowth() float64 {
	maxU := num.MaxAbsU()
	if maxU == 0 {
		return 0
	}
	g := num.Perm.MaxAbs() / maxU
	if g > 1 {
		g = 1
	}
	return g
}

// Finite reports whether every resident factor value (and every permuted
// input value) is finite — the post-factorization NaN/Inf screen of the
// health layer. One linear pass over factor storage.
func (num *Numeric) Finite() bool {
	if !finiteVals(num.Perm.Values[:num.Perm.Nnz()]) {
		return false
	}
	for _, f := range num.small {
		if f != nil && !finiteFactors(f) {
			return false
		}
	}
	for _, ndn := range num.nd {
		if ndn != nil && !ndn.finite() {
			return false
		}
	}
	return true
}

// nan is the poison value of the KernelNaN injection point.
func nan() float64 { return math.NaN() }

// poisonColumnRange plants a NaN in the first stored entry of the first
// non-empty column in [c0, c1) — the KernelNaN injection for block-ranged
// storage (fine-ND blocks gather straight from Perm).
func poisonColumnRange(a *sparse.CSC, c0, c1 int) {
	for j := c0; j < c1; j++ {
		if p := a.Colptr[j]; p < a.Colptr[j+1] {
			a.Values[p] = nan()
			return
		}
	}
}

func finiteVals(vals []float64) bool {
	for _, v := range vals {
		if v != v || v-v != 0 {
			return false
		}
	}
	return true
}

func finiteFactors(f *gp.Factors) bool {
	return finiteVals(f.L.Values[:f.L.Nnz()]) && finiteVals(f.U.Values[:f.U.Nnz()])
}

// SolveTransposeInto solves Aᵀ x = rhs in place using caller-provided
// scratch: y must have length n, scratch at least Sym.SolveScratchLen().
// With Perm = R A Cᵀ (the BTF+fine permutations), Aᵀ x = rhs reduces to
// Permᵀ (R x) = C rhs — a block forward substitution, since Permᵀ is block
// lower triangular. This is the A⁻ᵀ application the Hager/Higham condition
// estimator drives; it mirrors SolveInto's contracts (no allocation, safe
// for concurrent use with private scratch, not concurrently with Refactor).
func (num *Numeric) SolveTransposeInto(rhs, y, scratch []float64) {
	sym := num.Sym
	n := sym.N
	for k := 0; k < n; k++ {
		y[k] = rhs[sym.ColPerm[k]]
	}
	// Coarse block forward substitution, first block first (Permᵀ is lower).
	for blk := 0; blk < sym.NumBlocks(); blk++ {
		num.offBlockUpdateT(blk, y)
		num.SolveBlockTranspose(blk, y, scratch)
	}
	for k := 0; k < n; k++ {
		rhs[sym.RowPerm[k]] = y[k]
	}
}

// offBlockUpdateT subtracts earlier blocks' solution components from
// y[r0:r1) through the transposed coarse couplings: entry (i, c) of Perm
// with i above block blk contributes Perm[i,c]·y[i] to row c of Permᵀ.
func (num *Numeric) offBlockUpdateT(blk int, y []float64) {
	sym := num.Sym
	r0, r1 := sym.BlockPtr[blk], sym.BlockPtr[blk+1]
	for c := r0; c < r1; c++ {
		s := 0.0
		for p := num.Perm.Colptr[c]; p < num.Perm.Colptr[c+1]; p++ {
			i := num.Perm.Rowidx[p]
			if i >= r0 {
				break
			}
			s += num.Perm.Values[p] * y[i]
		}
		y[c] -= s
	}
}

// SolveBlockTranspose solves coarse diagonal block blk transposed against
// the permuted vector y (only y[r0:r1) is touched). scratch needs at least
// Sym.SolveScratchLen() elements.
func (num *Numeric) SolveBlockTranspose(blk int, y, scratch []float64) {
	sym := num.Sym
	r0, r1 := sym.BlockPtr[blk], sym.BlockPtr[blk+1]
	switch sym.kind[blk] {
	case blockSmall:
		num.small[blk].SolveTransposeWith(y[r0:r1], scratch)
	case blockND:
		num.nd[blk].ndSolveT(y[r0:r1], scratch)
	}
}

// rcondMaxIter caps the Hager/Higham power iteration; the estimate almost
// always converges in 2–3 steps (Higham 1988).
const rcondMaxIter = 5

// EstimateRcond estimates the reciprocal 1-norm condition number
// 1/κ₁(A) = 1/(‖A‖₁·‖A⁻¹‖₁) of the factored matrix, with ‖A⁻¹‖₁ estimated
// by the Hager/Higham power iteration on the dual norm — each step is one
// solve and one transpose solve through the existing factors, so the cost
// is a handful of solves, never a dense inverse. The final alternating-sign
// safeguard vector guards against the iteration's rare underestimates.
// Returns 0 for an exactly singular or empty estimate. This is a cold
// diagnostic path and allocates its own scratch.
func (num *Numeric) EstimateRcond() float64 {
	n := num.Sym.N
	if n == 0 {
		return 1
	}
	norm := num.Norm1()
	if norm == 0 {
		return 0
	}
	b := make([]float64, n)
	x := make([]float64, n)
	y := make([]float64, n)
	scratch := make([]float64, num.Sym.SolveScratchLen())

	for i := range x {
		x[i] = 1 / float64(n)
	}
	est := 0.0
	for iter := 0; iter < rcondMaxIter; iter++ {
		// w = A⁻¹ x ; est = ‖w‖₁.
		copy(b, x)
		num.SolveInto(b, y, scratch)
		cur := 0.0
		for _, v := range b {
			cur += math.Abs(v)
		}
		if iter > 0 && cur <= est {
			break // the iteration stopped improving
		}
		est = cur
		// z = A⁻ᵀ sign(w).
		for i, v := range b {
			if math.Signbit(v) {
				b[i] = -1
			} else {
				b[i] = 1
			}
		}
		num.SolveTransposeInto(b, y, scratch)
		// Converged when ‖z‖∞ ≤ zᵀx; otherwise steepest-ascent to e_jmax.
		zmax, jmax, zdotx := 0.0, 0, 0.0
		for i, v := range b {
			zdotx += v * x[i]
			if a := math.Abs(v); a > zmax {
				zmax, jmax = a, i
			}
		}
		if zmax <= zdotx {
			break
		}
		for i := range x {
			x[i] = 0
		}
		x[jmax] = 1
	}
	// Safeguard: an alternating-sign probe with growing magnitude catches
	// adversarial cases where the power iteration underestimates badly.
	den := float64(n - 1)
	if n == 1 {
		den = 1
	}
	for i := range b {
		v := 1 + float64(i)/den
		if i%2 == 1 {
			v = -v
		}
		b[i] = v
	}
	num.SolveInto(b, y, scratch)
	alt := 0.0
	for _, v := range b {
		alt += math.Abs(v)
	}
	if alt = 2 * alt / (3 * float64(n)); alt > est {
		est = alt
	}
	if est == 0 || math.IsNaN(est) || math.IsInf(est, 0) {
		return 0
	}
	rcond := 1 / (norm * est)
	if math.IsNaN(rcond) || math.IsInf(rcond, 0) {
		return 0
	}
	return rcond
}

// gpOpts returns the Gilbert–Peierls options of this numeric's sweeps:
// the symbolic defaults, with the per-Numeric pivot-tolerance override
// applied when a recovery factorization tightened it (the Symbolic and its
// Options are shared across pooled factorizations and must never be
// mutated).
func (num *Numeric) gpOpts() gp.Options {
	o := num.Sym.Opts.gpOptions()
	if num.pivotTolOverride > 0 {
		o.PivotTol = num.pivotTolOverride
	}
	o.Poll = num.gpPoll
	return o
}

// sweepOpts returns the Options driving this numeric's sweeps, with the
// per-Numeric pivot-tolerance override applied (for the fine-ND engine,
// which derives its kernel options from the Options value it is handed).
func (num *Numeric) sweepOpts() Options {
	o := num.Sym.Opts
	if num.pivotTolOverride > 0 {
		o.PivotTol = num.pivotTolOverride
	}
	o.ctl = &num.sweep
	o.poll = num.gpPoll
	return o
}

// FactorIntoTol is FactorInto with a tightened pivot tolerance for this
// call only — the last rung of the graceful-degradation chain (a tolerance
// of 1 forces full partial pivoting, trading sparsity for stability when
// the default diagonal preference produced an unusable factorization).
// The override lives on the Numeric, never on the shared Symbolic.
func (num *Numeric) FactorIntoTol(a *sparse.CSC, tol float64) error {
	prev := num.pivotTolOverride
	num.pivotTolOverride = tol
	_, err := factorImpl(context.Background(), a, num.Sym, num, nil)
	num.pivotTolOverride = prev
	return err
}
