package core

import (
	"errors"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/gp"
	"repro/internal/matgen"
	"repro/internal/sparse"
)

// relResidual solves A·x = b for a random right-hand side and reports the
// relative residual ‖A·x̂ − b‖∞ / ‖b‖∞.
func relResidual(a *sparse.CSC, num *Numeric, seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	n := a.N
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	b := make([]float64, n)
	a.MulVec(b, x)
	bn := 0.0
	for _, v := range b {
		if v < 0 {
			v = -v
		}
		if v > bn {
			bn = v
		}
	}
	if bn == 0 {
		bn = 1
	}
	xhat := append([]float64(nil), b...)
	num.Solve(xhat)
	r := make([]float64, n)
	a.MulVec(r, xhat)
	res := 0.0
	for i := range r {
		d := math.Abs(r[i] - b[i])
		if d > res {
			res = d
		}
	}
	return res / bn
}

// TestRefactorSuiteAcrossMatgenClasses is the suite-wide refactor
// correctness sweep: for every generated matrix class, factor once, perturb
// the values on the fixed pattern several times, Refactor, and compare the
// solve residual against a fresh FactorDirect of the same matrix. Threads=4
// exercises the unified parallel scheduler (and, under -race, concurrent
// block refreshes).
func TestRefactorSuiteAcrossMatgenClasses(t *testing.T) {
	suite := matgen.TableISuite(0.1)
	suite = append(suite, matgen.TableIISuite(0.12)...)
	const steps = 3
	for _, m := range suite {
		m := m
		t.Run(m.Name, func(t *testing.T) {
			base := m.Gen()
			opts := optsWithThreads(4)
			num, err := FactorDirect(base, opts)
			if err != nil {
				t.Fatalf("factor: %v", err)
			}
			for step := 1; step <= steps; step++ {
				a := matgen.TransientStep(base, step, 4242)
				if err := num.Refactor(a); err != nil {
					t.Fatalf("refactor step %d: %v", step, err)
				}
				fresh, err := FactorDirect(a, opts)
				if err != nil {
					t.Fatalf("fresh factor step %d: %v", step, err)
				}
				rres := relResidual(a, num, int64(step))
				fres := relResidual(a, fresh, int64(step))
				if rres > 1e-6 && rres > 100*fres {
					t.Fatalf("step %d: refactor residual %.3e, fresh %.3e", step, rres, fres)
				}
			}
		})
	}
}

// TestRefactorSignFlip drives a full sign change through the fixed pattern:
// the reused pivot sequence stays valid (pivots flip sign but stay
// nonzero), no fallback is needed, and solves remain accurate.
func TestRefactorSignFlip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a := randCircuit(rng, 350, 0.6)
	num, err := FactorDirect(a, optsWithThreads(2))
	if err != nil {
		t.Fatal(err)
	}
	flipped := a.Clone()
	for i := range flipped.Values {
		flipped.Values[i] = -flipped.Values[i]
	}
	if err := num.Refactor(flipped); err != nil {
		t.Fatalf("refactor sign-flipped: %v", err)
	}
	solveCheck(t, flipped, num, 1e-7)
	// And back again.
	if err := num.Refactor(a); err != nil {
		t.Fatalf("refactor back: %v", err)
	}
	solveCheck(t, a, num, 1e-7)
}

// TestRefactorSmallBlockPivotFallback drifts a small block's leading pivot
// to exactly zero. Refactor must not fail: the block falls back to a fresh
// pivoting factorization (new pivot order) while every other block takes
// the fast path, and the solve stays correct.
func TestRefactorSmallBlockPivotFallback(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	a := randCircuit(rng, 300, 0.5)
	num, err := FactorDirect(a, optsWithThreads(2))
	if err != nil {
		t.Fatal(err)
	}
	sym := num.Sym
	// Find a small block of dimension ≥ 2 whose first local column holds at
	// least two entries, so partial pivoting has an alternative row.
	target := -1
	for blk := 0; blk < sym.NumBlocks(); blk++ {
		r0, r1 := sym.BlockPtr[blk], sym.BlockPtr[blk+1]
		if sym.kind[blk] != blockSmall || r1-r0 < 2 {
			continue
		}
		if num.Perm.ExtractBlock(r0, r1, r0, r0+1).Nnz() >= 2 {
			target = blk
			break
		}
	}
	if target == -1 {
		t.Fatal("no suitable small block in test matrix")
	}
	r0 := sym.BlockPtr[target]
	old := num.small[target]
	// The pivot of the block's first column is the entry at local original
	// row P[0]; zero it in the caller's coordinates.
	orow := sym.RowPerm[r0+old.P[0]]
	ocol := sym.ColPerm[r0]
	a2 := a.Clone()
	zeroed := false
	for p := a2.Colptr[ocol]; p < a2.Colptr[ocol+1]; p++ {
		if a2.Rowidx[p] == orow {
			a2.Values[p] = 0
			zeroed = true
		}
	}
	if !zeroed {
		t.Fatal("pivot entry not found in original coordinates")
	}
	if err := num.Refactor(a2); err != nil {
		t.Fatalf("refactor with drifted pivot: %v", err)
	}
	if num.small[target] == old {
		t.Fatal("expected the fallback to replace the block's factors")
	}
	solveCheck(t, a2, num, 1e-7)
	// The next same-pattern step rides the fast path on the new pivots.
	a3 := a2.Clone()
	for i := range a3.Values {
		a3.Values[i] *= 1 + 0.05*rng.Float64()
	}
	if err := num.Refactor(a3); err != nil {
		t.Fatalf("refactor after fallback: %v", err)
	}
	solveCheck(t, a3, num, 1e-7)
}

// TestRefactorZeroAllocSteadyState pins the tentpole guarantee: once the
// pipeline is built, a serial Refactor performs zero allocations — no
// Permute, no ExtractBlock, no workspace churn — even with a fine-ND block
// in the matrix.
func TestRefactorZeroAllocSteadyState(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	base := randCircuit(rng, 400, 0.6)
	num, err := FactorDirect(base, optsWithThreads(1))
	if err != nil {
		t.Fatal(err)
	}
	if num.Sym.NumNDBlocks() == 0 {
		t.Fatal("want an ND block in the zero-alloc sweep")
	}
	steps := make([]*sparse.CSC, 4)
	for i := range steps {
		steps[i] = matgen.TransientStep(base, i+1, 99)
	}
	// Warm up: build the pipeline and grow every reusable buffer.
	for _, s := range steps {
		if err := num.Refactor(s); err != nil {
			t.Fatal(err)
		}
	}
	i := 0
	allocs := testing.AllocsPerRun(20, func() {
		i++
		if err := num.Refactor(steps[i%len(steps)]); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state Refactor allocates: %v allocs/op", allocs)
	}
	solveCheck(t, steps[i%len(steps)], num, 1e-7)
}

// TestRefactorNDOverlapsBTF proves the unified scheduler runs fine-ND and
// fine-BTF blocks concurrently: the ND block's refresh is made to wait for
// a small block to finish, and every small block's refresh waits for the ND
// block to start. Under the old two-phase sweep (small blocks first, ND
// strictly after) this deadlocks; under the unified scheduler it completes.
// Channel-based, so the proof holds even on a single-core host.
func TestRefactorNDOverlapsBTF(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	a := randCircuit(rng, 400, 0.6)
	num, err := FactorDirect(a, optsWithThreads(2))
	if err != nil {
		t.Fatal(err)
	}
	if num.Sym.NumNDBlocks() == 0 || num.Sym.NumBlocks() == num.Sym.NumNDBlocks() {
		t.Fatal("test matrix needs both ND and small blocks")
	}
	const wait = 10 * time.Second
	ndStarted := make(chan struct{})
	smallDone := make(chan struct{})
	var ndOnce, smOnce sync.Once
	var timedOut atomic.Bool
	num.hooks = &schedHooks{
		blockStart: func(blk int, nd bool) {
			if nd {
				ndOnce.Do(func() { close(ndStarted) })
				select {
				case <-smallDone:
				case <-time.After(wait):
					timedOut.Store(true)
				}
			} else {
				select {
				case <-ndStarted:
				case <-time.After(wait):
					timedOut.Store(true)
				}
			}
		},
		blockDone: func(blk int, nd bool) {
			if !nd {
				smOnce.Do(func() { close(smallDone) })
			}
		},
	}
	a2 := a.Clone()
	for i := range a2.Values {
		a2.Values[i] *= 1 + 0.1*rng.Float64()
	}
	if err := num.Refactor(a2); err != nil {
		t.Fatal(err)
	}
	num.hooks = nil
	if timedOut.Load() {
		t.Fatal("ND and fine-BTF refreshes did not overlap (scheduler is two-phase)")
	}
	solveCheck(t, a2, num, 1e-7)
}

// TestRefactorPatternMismatchRejected checks both detection layers: the
// structural verification at pipeline build time and the entry-count check
// on the steady-state path.
func TestRefactorPatternMismatchRejected(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	a := randCircuit(rng, 200, 0.5)
	num, err := FactorDirect(a, optsWithThreads(1))
	if err != nil {
		t.Fatal(err)
	}
	other := randCircuit(rng, 200, 0.5)
	if other.Nnz() != a.Nnz() {
		if err := num.Refactor(other); err == nil {
			t.Fatal("expected pattern mismatch error at pipeline build")
		}
	}
	if err := num.Refactor(a); err != nil {
		t.Fatal(err)
	}
	// Same entry count, different pattern: move one entry to another row
	// (keeping the column sorted). The steady-state path must reject it
	// loudly rather than scatter values into the wrong positions.
	shifted := a.Clone()
	moved := false
	for j := 0; j < shifted.N && !moved; j++ {
		p := shifted.Colptr[j+1] - 1
		if p < shifted.Colptr[j] {
			continue
		}
		if r := shifted.Rowidx[p]; r+1 < shifted.M {
			shifted.Rowidx[p] = r + 1
			moved = true
		}
	}
	if !moved {
		t.Fatal("could not construct a same-nnz pattern variant")
	}
	if err := num.Refactor(shifted); err == nil {
		t.Fatal("expected pattern mismatch error on the steady-state path")
	}
	// The factorization still works for the real pattern afterwards.
	if err := num.Refactor(a); err != nil {
		t.Fatal(err)
	}
	solveCheck(t, a, num, 1e-7)
	// Wrong dimension is rejected before anything is touched.
	if err := num.Refactor(sparse.NewCSC(3, 3, 0)); err == nil {
		t.Fatal("expected dimension error")
	}
}

// TestRefactorSingularReported drifts every entry of one column to zero so
// even the pivoting fallback cannot succeed; Refactor must report the
// singularity rather than hang or corrupt state, and a full re-Factor of a
// good matrix must still be possible afterwards.
func TestRefactorSingularReported(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	a := randCircuit(rng, 200, 0.5)
	num, err := FactorDirect(a, optsWithThreads(2))
	if err != nil {
		t.Fatal(err)
	}
	bad := a.Clone()
	for p := bad.Colptr[5]; p < bad.Colptr[6]; p++ {
		bad.Values[p] = 0
	}
	err = num.Refactor(bad)
	if err == nil {
		t.Fatal("expected singularity error")
	}
	if !errors.Is(err, gp.ErrSingular) {
		t.Fatalf("error chain does not report gp.ErrSingular: %v", err)
	}
	// The factorization's structure survives a failed refresh: a
	// subsequent same-pattern Refactor with good values recovers it.
	if err := num.Refactor(a); err != nil {
		t.Fatalf("recovery refactor: %v", err)
	}
	solveCheck(t, a, num, 1e-7)
}
