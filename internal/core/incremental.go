package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/faultinject"
	"repro/internal/gp"
	"repro/internal/sparse"
	"repro/internal/trace"
)

// incState is the change-tracking side of the incremental refactorization
// subsystem, built lazily on the first RefactorPartial/RefactorAuto call
// and reused forever: epoch-stamped dirty sets at every granularity the
// sweep skips work at — coarse BTF blocks, the dirty columns inside a
// diagonal block (gp.RefactorSelective recomputes their dependency
// closure alone), and the (row-node, column-node) pairs of each fine-ND
// block's 2D hierarchy. All marking is O(size of the change set); nothing
// here allocates after construction.
type incState struct {
	// permColOf[j] is the permuted column position of original column j
	// (the inverse of Sym.ColPerm).
	permColOf []int
	// epoch stamps the current partial sweep; a dirty mark is live only
	// when its stamp equals the epoch, so resetting the dirty sets between
	// sweeps costs one increment.
	epoch uint64
	// blkStamp[blk] == epoch marks coarse block blk dirty this sweep.
	blkStamp []uint64
	// nd[blk] is the fine-grained dirty state of fine-ND blocks (nil for
	// small blocks).
	nd []*ndIncState
	// colStamp[k] == epoch marks permuted column k as carrying an in-block
	// change; rerun[k] is the per-sweep scratch the selective
	// Gilbert–Peierls refresh records its column closure in. Both are
	// indexed by permuted position, so each diagonal block owns a disjoint
	// slice and concurrent block refreshes never share state.
	colStamp []uint64
	rerun    []bool
	// aDst/aPos are the reverse scatter map of the diagonal-block gathers:
	// permuted entry t lands at aDst[t].Values[aPos[t]] (nil for coarse
	// off-diagonal entries, which live in permuted storage only). Marking a
	// changed entry forwards its value straight into the small-block or
	// 2D-hierarchy input storage, so the partial sweep never re-extracts a
	// block and the marking cost stays proportional to the change set.
	aDst []*sparse.CSC
	aPos []int
	// dirty counts the coarse blocks marked this epoch.
	dirty int
}

// ndIncState tracks dirtiness inside one fine-ND block at tree-node
// granularity: pairStamp marks the (row-node, column-node) input blocks a
// change set touches, and chg is the per-sweep materialized changed-kernel
// matrix the dependency recurrences of computeChanged fill from those
// marks.
type ndIncState struct {
	// nodeOf[c] is the tree node whose index range contains block-local
	// row/column c; colOf[c] is c's column index local to that node.
	nodeOf []int
	colOf  []int
	// pairStamp[i*nb+j] == epoch marks input block (i, j) as holding
	// changed values.
	pairStamp []uint64
	// chg[i*nb+j] reports whether kernel (i, j) must rerun this sweep.
	chg []bool
	// nodeStamp[v] == epoch marks node v's column range as touched;
	// nodeFirst[v] is then the smallest changed node-local column, and
	// first[v] its per-sweep resolution (0 for untouched nodes) — the
	// suffix starting point the leaf off-diagonal kernels refactor from.
	nodeStamp []uint64
	nodeFirst []int
	first     []int
	// colStamp/rerun are this coarse block's slices of the incState arrays
	// (block-local indexing), and epoch the sweep's stamp — what the leaf
	// diagonal kernels need for the selective per-column refresh.
	colStamp []uint64
	rerun    []bool
	epoch    uint64
}

// ensureIncremental builds the refactor pipeline (if the first incremental
// call precedes any full Refactor) and the change-tracking state.
func (num *Numeric) ensureIncremental(a *sparse.CSC) error {
	if num.pipe == nil {
		pipe, err := num.buildPipeline(a)
		if err != nil {
			return err
		}
		num.pipe = pipe
	}
	if num.inc != nil {
		return nil
	}
	sym := num.Sym
	nblocks := sym.NumBlocks()
	inc := &incState{
		permColOf: make([]int, sym.N),
		blkStamp:  make([]uint64, nblocks),
		nd:        make([]*ndIncState, nblocks),
		colStamp:  make([]uint64, sym.N),
		rerun:     make([]bool, sym.N),
		aDst:      make([]*sparse.CSC, num.Perm.Nnz()),
		aPos:      make([]int, num.Perm.Nnz()),
	}
	for k, j := range sym.ColPerm {
		inc.permColOf[j] = k
	}
	for blk := 0; blk < nblocks; blk++ {
		switch sym.kind[blk] {
		case blockSmall:
			sub := num.pipe.smallSub[blk]
			for q, src := range num.pipe.smallSrc[blk] {
				inc.aDst[src] = sub
				inc.aPos[src] = q
			}
		case blockND:
			ns := sym.ndsym[blk]
			bs := sym.BlockPtr[blk+1] - sym.BlockPtr[blk]
			st := &ndIncState{
				nodeOf:    make([]int, bs),
				colOf:     make([]int, bs),
				pairStamp: make([]uint64, ns.nb*ns.nb),
				chg:       make([]bool, ns.nb*ns.nb),
				nodeStamp: make([]uint64, ns.nb),
				nodeFirst: make([]int, ns.nb),
				first:     make([]int, ns.nb),
				colStamp:  inc.colStamp[sym.BlockPtr[blk]:sym.BlockPtr[blk+1]],
				rerun:     inc.rerun[sym.BlockPtr[blk]:sym.BlockPtr[blk+1]],
			}
			for b := 0; b < ns.nb; b++ {
				b0, b1 := ns.blockRange(b)
				for c := b0; c < b1; c++ {
					st.nodeOf[c] = b
					st.colOf[c] = c - b0
				}
			}
			inc.nd[blk] = st
		}
	}
	num.inc = inc
	for blk := 0; blk < nblocks; blk++ {
		if sym.kind[blk] == blockND {
			num.remapBlockDst(blk)
		}
	}
	return nil
}

// RefactorPartial is Refactor for a matrix that differs from the one the
// factorization currently holds only in the listed original-index columns:
// the change set is scattered through the cached entry maps, the dirty
// coarse blocks (and, inside fine-ND blocks, the dirty kernels of the 2D
// hierarchy) are derived from it, and every clean block or kernel keeps
// its factored values — inside a dirty fine-ND block the skipped kernels'
// completion flags are pre-armed, so the rerun kernels synchronize
// point-to-point and fall back per block exactly like Refactor, while the
// sweep touches only what the perturbation reaches. Columns not listed must hold values identical to
// the previous refresh (Factor, FactorInto, Refactor, RefactorPartial or
// RefactorAuto — whichever last ran, including a failed attempt); listing
// extra unchanged columns is allowed and merely wastes work. The sparsity
// pattern must match the analyzed one: dimensions, the column pointers and
// every changed column's rows are verified, while unchanged columns are
// trusted (the full O(nnz) verification of Refactor would dwarf a small
// change set).
//
// The exclusion and error contracts are Refactor's: no concurrent solves,
// and on error the values are unspecified until a subsequent refresh
// succeeds (a failed sweep is remembered, so the next incremental call
// transparently runs a full refresh to re-establish a consistent state).
func (num *Numeric) RefactorPartial(a *sparse.CSC, changed []int) error {
	return num.RefactorPartialCtx(context.Background(), a, changed)
}

// RefactorPartialCtx is RefactorPartial with cooperative cancellation: a
// fired ctx aborts the dirty-block sweep at the next block boundary and
// returns ErrCanceled or ErrDeadlineExceeded, leaving the numeric poisoned
// but recoverable (the next refresh transparently runs a full recovery
// sweep). A ctx with a Done channel also arms the sweep monitor, as does
// Options.StallTimeout for stall detection.
func (num *Numeric) RefactorPartialCtx(ctx context.Context, a *sparse.CSC, changed []int) (err error) {
	sym := num.Sym
	if a.N != sym.N || a.M != sym.N {
		return fmt.Errorf("core: dimension mismatch with symbolic analysis")
	}
	// A context already expired at entry rejects before any numeric work.
	if ctx != nil && ctx.Err() != nil {
		return CancelCause(ctx)
	}
	// Quiesce stragglers from a previously canceled sweep before touching
	// any state they might still write (fast path: one atomic load).
	num.sweep.drain()
	// Serial-path panic isolation: a panic during marking or the serial
	// sweep poisons the numeric, so the next incremental call runs a full
	// recovery refresh.
	defer func() {
		if r := recover(); r != nil {
			num.notePanic(r)
			num.incPoisoned = true
			err = num.takePanicErr()
		}
	}()
	if err := num.ensureIncremental(a); err != nil {
		return err
	}
	if num.incPoisoned {
		// A prior failed sweep left unspecified values behind; the partial
		// contract cannot hold, so recover through one full refresh.
		return num.RefactorCtx(ctx, a)
	}
	if len(changed)*2 >= sym.N {
		// Near-total change sets gain nothing from per-column marking; the
		// flat full sweep is faster, so degrade to it transparently (this
		// also keeps the 100%-changed case at full-Refactor speed).
		return num.RefactorCtx(ctx, a)
	}
	pipe := num.pipe
	if a.Nnz() != len(pipe.rowidx) {
		return fmt.Errorf("core: refactor pattern mismatch: %d entries, analyzed %d", a.Nnz(), len(pipe.rowidx))
	}
	for j, c := range pipe.colptr {
		if a.Colptr[j] != c {
			return fmt.Errorf("core: refactor pattern mismatch in column %d", j-1)
		}
	}
	// Validate the whole change set before gathering anything: a rejected
	// column must not leave earlier columns' values already scattered into
	// resident storage (that would silently break the next sweep's
	// unchanged-columns contract without the poison flag ever being set).
	inc := num.inc
	for _, j := range changed {
		if j < 0 || j >= sym.N {
			return fmt.Errorf("core: RefactorPartial: column %d out of range", j)
		}
		k := inc.permColOf[j]
		p0, p1 := num.Perm.Colptr[k], num.Perm.Colptr[k+1]
		for t := p0; t < p1; t++ {
			if s := pipe.permMap[t]; a.Rowidx[s] != pipe.rowidx[s] {
				return fmt.Errorf("core: refactor pattern mismatch in column %d", j)
			}
		}
	}
	inc.epoch++
	inc.dirty = 0
	for _, j := range changed {
		num.gatherChangedColumn(a, inc.permColOf[j])
	}
	return num.refactorPartialSweep(ctx)
}

// RefactorAuto is Refactor with automatic change discovery: the incoming
// values are diffed against the cached previous gather while they are
// scattered into permuted storage, and the sweep then refreshes only the
// blocks the diff reached — callers that cannot (or do not want to) track
// their own change sets get the incremental fast path transparently, for
// one compare per entry on top of the gather Refactor already performs. A
// fully-changed matrix degrades gracefully to roughly full-sweep cost (the
// diff pass replaces the flat gather).
//
// Exclusion and error contracts are Refactor's.
func (num *Numeric) RefactorAuto(a *sparse.CSC) error {
	return num.RefactorAutoCtx(context.Background(), a)
}

// RefactorAutoCtx is RefactorAuto with cooperative cancellation and stall
// monitoring; the contract matches RefactorPartialCtx.
func (num *Numeric) RefactorAutoCtx(ctx context.Context, a *sparse.CSC) (err error) {
	sym := num.Sym
	if a.N != sym.N || a.M != sym.N {
		return fmt.Errorf("core: dimension mismatch with symbolic analysis")
	}
	// A context already expired at entry rejects before any numeric work.
	if ctx != nil && ctx.Err() != nil {
		return CancelCause(ctx)
	}
	num.sweep.drain()
	defer func() {
		if r := recover(); r != nil {
			num.notePanic(r)
			num.incPoisoned = true
			err = num.takePanicErr()
		}
	}()
	if err := num.ensureIncremental(a); err != nil {
		return err
	}
	if num.incPoisoned {
		return num.RefactorCtx(ctx, a)
	}
	pipe := num.pipe
	if err := pipe.checkPattern(a); err != nil {
		return err
	}
	inc := num.inc
	inc.epoch++
	inc.dirty = 0
	for k := 0; k < sym.N; k++ {
		num.diffColumn(a, k)
	}
	return num.refactorPartialSweep(ctx)
}

// markDirtyBlock records coarse block blk as dirty this epoch.
func (num *Numeric) markDirtyBlock(blk int) {
	inc := num.inc
	if inc.blkStamp[blk] != inc.epoch {
		inc.blkStamp[blk] = inc.epoch
		inc.dirty++
	}
}

// markNDNode records a change in node jn at node-local column c.
func (st *ndIncState) markNDNode(jn, c int, epoch uint64) {
	if st.nodeStamp[jn] != epoch {
		st.nodeStamp[jn] = epoch
		st.nodeFirst[jn] = c
	} else if c < st.nodeFirst[jn] {
		st.nodeFirst[jn] = c
	}
}

// gatherChangedColumn scatters permuted column k of a into permuted storage
// and, through the reverse scatter map, into the owning block's input
// storage, marking the dirty structures as it goes — the explicit
// change-set path, which trusts the caller that any entry of the column may
// have changed.
func (num *Numeric) gatherChangedColumn(a *sparse.CSC, k int) {
	sym, pipe, inc := num.Sym, num.pipe, num.inc
	perm := num.Perm
	p0, p1 := perm.Colptr[k], perm.Colptr[k+1]
	sparse.GatherRange(perm, a, pipe.permMap, p0, p1)
	blk := sym.blockOf[k]
	r0 := sym.BlockPtr[blk]
	inc.colStamp[k] = inc.epoch
	num.markDirtyBlock(blk)
	pv := perm.Values
	if sym.kind[blk] != blockND {
		for t := p0; t < p1; t++ {
			if d := inc.aDst[t]; d != nil {
				d.Values[inc.aPos[t]] = pv[t]
			}
		}
		return
	}
	st := inc.nd[blk]
	nb := sym.ndsym[blk].nb
	jn := st.nodeOf[k-r0]
	st.markNDNode(jn, st.colOf[k-r0], inc.epoch)
	for t := p0; t < p1; t++ {
		d := inc.aDst[t]
		if d == nil {
			continue // coarse off-diagonal entry: permuted storage only
		}
		d.Values[inc.aPos[t]] = pv[t]
		st.pairStamp[st.nodeOf[perm.Rowidx[t]-r0]*nb+jn] = inc.epoch
	}
}

// diffColumn scatters permuted column k of a into permuted storage entry by
// entry, comparing against the resident values; real changes are forwarded
// through the reverse scatter map and mark the dirty structures, but only
// when they land inside the diagonal block (coarse off-diagonal entries
// feed solves straight from permuted storage and never dirty a factor).
func (num *Numeric) diffColumn(a *sparse.CSC, k int) {
	sym, pipe, inc := num.Sym, num.pipe, num.inc
	perm := num.Perm
	p0, p1 := perm.Colptr[k], perm.Colptr[k+1]
	blk := sym.blockOf[k]
	r0 := sym.BlockPtr[blk]
	nd := sym.kind[blk] == blockND
	var st *ndIncState
	var nb, jn int
	if nd {
		st = inc.nd[blk]
		nb = sym.ndsym[blk].nb
		jn = st.nodeOf[k-r0]
	}
	av, pv := a.Values, perm.Values
	inBlock := false
	for t := p0; t < p1; t++ {
		v := av[pipe.permMap[t]]
		if pv[t] == v {
			continue
		}
		pv[t] = v
		d := inc.aDst[t]
		if d == nil {
			continue
		}
		d.Values[inc.aPos[t]] = v
		inBlock = true
		if nd {
			st.pairStamp[st.nodeOf[perm.Rowidx[t]-r0]*nb+jn] = inc.epoch
		}
	}
	if !inBlock {
		return
	}
	inc.colStamp[k] = inc.epoch
	num.markDirtyBlock(blk)
	if nd {
		st.markNDNode(jn, st.colOf[k-r0], inc.epoch)
	}
}

// remapBlockDst re-points the reverse scatter map at coarse block blk's
// current input storage — required after an ND pivot-drift fallback
// replaces the whole 2D hierarchy (small-block fallbacks keep their gather
// target, so only fine-ND blocks ever need this).
func (num *Numeric) remapBlockDst(blk int) {
	inc := num.inc
	if inc == nil {
		return
	}
	ndn := num.nd[blk]
	for i := range ndn.aSrc {
		for j, src := range ndn.aSrc[i] {
			if src == nil {
				continue
			}
			b := ndn.a[i][j]
			for q, s := range src {
				inc.aDst[s] = b
				inc.aPos[s] = q
			}
		}
	}
}

// computeChanged materializes st.chg, the changed-kernel matrix of one
// fine-ND block, from the epoch's dirty input pairs by walking the 2D
// sweep's dependency structure in schedule order: a kernel must rerun when
// its own input block changed, when a factor it consumes was itself rerun,
// or when any (lower, upper) pair feeding its reduction changed. This is
// the fine-grained form of "a dirty separator column dirties its ancestors
// up the ND tree": dirtiness propagates upward exactly along the paper's
// dependency tree, and nothing else reruns.
func (ndn *ndNum) computeChanged(st *ndIncState, epoch uint64) bool {
	s := ndn.sym
	nb := s.nb
	chg := st.chg
	for i := range chg {
		chg[i] = false
	}
	pair := func(i, j int) bool { return st.pairStamp[i*nb+j] == epoch }
	st.epoch = epoch
	for v := range st.first {
		if st.nodeStamp[v] == epoch {
			st.first[v] = st.nodeFirst[v]
		} else {
			st.first[v] = 0
		}
	}
	any := false
	for j := 0; j < nb; j++ {
		// Upper targets U_kp,j for descendants kp of j, in schedule order:
		// rerun when the input block changed, the solving diagonal factor
		// LU_kp,kp was rerun, or a reduction term from subtree(kp) changed.
		for kp := s.subLo[j]; kp < j; kp++ {
			c := pair(kp, j) || chg[kp*nb+kp]
			for k2 := s.subLo[kp]; k2 < kp && !c; k2++ {
				c = chg[kp*nb+k2] || chg[k2*nb+j]
			}
			if c {
				chg[kp*nb+j] = true
				any = true
			}
		}
		// The diagonal LU_jj: input block or any reduction term.
		c := pair(j, j)
		for k2 := s.subLo[j]; k2 < j && !c; k2++ {
			c = chg[j*nb+k2] || chg[k2*nb+j]
		}
		if c {
			chg[j*nb+j] = true
			any = true
		}
		// Lower targets L_ij for ancestors i of j: input block, the (just
		// decided) diagonal LU_jj, or any reduction term.
		for _, i := range s.ancestors[j] {
			c := pair(i, j) || chg[j*nb+j]
			for k2 := s.subLo[j]; k2 < j && !c; k2++ {
				c = chg[i*nb+k2] || chg[k2*nb+j]
			}
			if c {
				chg[i*nb+j] = true
				any = true
			}
		}
	}
	return any
}

// refactorPartialSweep runs the dirty-block refresh: clean coarse blocks
// have their completion slots pre-armed and are never visited; dirty small
// blocks refresh their suffix from the first dirty column; dirty fine-ND
// blocks rerun exactly the kernels computeChanged selected. Scheduling,
// synchronization, pivot-drift fallbacks and the error contract mirror the
// full Refactor sweep.
func (num *Numeric) refactorPartialSweep(ctx context.Context) (err error) {
	sym := num.Sym
	pipe := num.pipe
	inc := num.inc
	nblocks := sym.NumBlocks()
	rec := sym.Opts.Trace
	sweep := rec.BeginSweep(trace.PhasePartial)
	defer sweep.End()
	num.lastDirty = inc.dirty
	num.dirtyTotal += int64(inc.dirty)
	for i := range pipe.errs {
		pipe.errs[i] = nil
	}
	for t := range num.btfBusy {
		num.btfBusy[t] = 0
	}
	num.SyncWaits = 0
	num.SyncWaitNs = 0
	num.ndSim = 0
	// The load-bearing synchronization of the partial path stays the
	// WaitGroup / fine-ND epoch flags: coarse diagonal blocks are
	// independent under refactorization. The coarse fabric is re-armed
	// anyway — clean blocks pre-set, dirty blocks set on completion — so
	// the stall watchdog can name the stuck block and an armed sweep can
	// join on it with early cancellation unwind.
	pipe.sig.Reset()
	for blk := 0; blk < nblocks; blk++ {
		if inc.blkStamp[blk] != inc.epoch {
			pipe.sig.Set(blk)
			continue
		}
		if sym.kind[blk] == blockND {
			num.nd[blk].computeChanged(inc.nd[blk], inc.epoch)
		}
	}
	armed := MonitorArmed(ctx, sym.Opts.StallTimeout)
	num.sweep.BeginSweep(armed)
	var mon *SweepMonitor
	if armed {
		mon = StartSweepMonitor(MonitorSpec{
			Ctx: ctx, Stall: sym.Opts.StallTimeout,
			Sweep: "partial refactor", Ctl: &num.sweep,
			Pending: func() (int, int) { return num.pendingCoarse(pipe.sig) },
		})
		defer func() {
			if merr := mon.Stop(); merr != nil {
				num.incPoisoned = true
				err = merr
			}
		}()
	}
	if inc.dirty > 0 {
		nt := sym.Opts.threads()
		if nt == 1 {
			for blk := 0; blk < nblocks; blk++ {
				if inc.blkStamp[blk] == inc.epoch {
					num.refactorBlockPartial(blk, 0)
				}
			}
		} else {
			num.refactorParallelPartial(nt, armed)
		}
	}
	if perr := num.takePanicErr(); perr != nil {
		num.incPoisoned = true
		return perr
	}
	if num.sweep.Canceled() {
		num.incPoisoned = true
		return errSweepAborted
	}
	for _, err := range pipe.errs {
		if err != nil {
			num.incPoisoned = true
			return err
		}
	}
	for blk := 0; blk < nblocks; blk++ {
		if inc.blkStamp[blk] == inc.epoch && sym.kind[blk] == blockND {
			num.SyncWaits += num.nd[blk].SyncWaits
			num.SyncWaitNs += num.nd[blk].SyncWaitNs
			num.ndSim += num.nd[blk].simSeconds()
		}
	}
	if pipe.changed.Load() {
		num.nnzLU = num.countNnzLU()
		pipe.changed.Store(false)
	}
	num.incPoisoned = false
	return nil
}

// refactorParallelPartial is refactorParallel restricted to dirty blocks:
// clean blocks were pre-armed by the driver, dirty fine-ND blocks get their
// cooperative regions, and only fine-BTF workers owning at least one dirty
// block launch. Unlike the full sweep, the join is a WaitGroup rather than
// the per-block completion fabric: a partition worker consults the epoch
// stamps after signalling its last dirty block, so the driver must not
// start the next sweep's marking until every worker goroutine has exited,
// not merely until every slot is set.
func (num *Numeric) refactorParallelPartial(nt int, armed bool) {
	sym := num.Sym
	pipe := num.pipe
	inc := num.inc
	dirty := func(blk int) bool { return inc.blkStamp[blk] == inc.epoch }
	for _, blk := range pipe.unowned {
		if dirty(blk) {
			num.refactorBlockPartial(blk, 0)
		}
	}
	inject := sym.Opts.Inject
	nblocks := sym.NumBlocks()
	var wg sync.WaitGroup
	for blk := 0; blk < nblocks; blk++ {
		if sym.kind[blk] != blockND || !dirty(blk) {
			continue
		}
		wg.Add(1)
		num.sweep.addWorker()
		go func(blk int) {
			defer num.sweep.workerDone()
			// The join is the WaitGroup, so panic recovery only needs to
			// record the error; no completion slots to release — but the
			// slot is force-set anyway so an armed join quiesces.
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					num.notePanic(r)
					pipe.sig.Set(blk)
				}
			}()
			inject.WorkerPanic(faultinject.SweepPartial, blk)
			num.refactorBlockPartial(blk, 0)
		}(blk)
	}
	for t := 0; t < nt; t++ {
		launch := false
		for _, blk := range sym.partition[t] {
			if dirty(blk) {
				launch = true
				break
			}
		}
		if !launch {
			continue
		}
		wg.Add(1)
		num.sweep.addWorker()
		go func(t int) {
			defer num.sweep.workerDone()
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					num.notePanic(r)
					for _, blk := range sym.partition[t] {
						if dirty(blk) {
							pipe.sig.Set(blk)
						}
					}
				}
			}()
			inject.WorkerPanic(faultinject.SweepPartial, nblocks+t)
			for _, blk := range sym.partition[t] {
				if dirty(blk) {
					num.refactorBlockPartial(blk, t)
				}
			}
		}(t)
	}
	if !armed {
		// A partition worker consults the epoch stamps after signalling its
		// last dirty block, so the driver must not start the next sweep's
		// marking until every goroutine exits, not merely until every slot
		// is set; the full join guarantees that directly.
		wg.Wait()
		return
	}
	// Armed join: per-block waits break on cancellation so the driver can
	// return within the watchdog's bound while a stalled worker is still
	// asleep. Stragglers are drained at the next sweep's entry before any
	// marking, which restores the epoch-stamp safety the WaitGroup gave.
	early := false
	for blk := 0; blk < nblocks; blk++ {
		if !pipe.sig.Wait(blk) {
			early = true
			break
		}
	}
	if !early {
		wg.Wait()
	}
}

// refactorBlockPartial refreshes one dirty coarse block in place and
// signals its completion slot, with the same pivot-drift fallbacks as
// refactorBlock: the fallbacks rebuild from permuted storage, which the
// marking phase keeps fully current, so a partially-dirty block can always
// recover with a complete re-pivoting.
func (num *Numeric) refactorBlockPartial(blk, t int) {
	sym := num.Sym
	pipe := num.pipe
	inc := num.inc
	if num.sweep.Canceled() {
		pipe.sig.Set(blk)
		return
	}
	inject := sym.Opts.Inject
	switch sym.kind[blk] {
	case blockSmall:
		num.hookStart(blk, false)
		// The marking phase forwarded every changed value into sub through
		// the reverse scatter map, so the block input is already current.
		sub := pipe.smallSub[blk]
		r0, r1 := sym.BlockPtr[blk], sym.BlockPtr[blk+1]
		if inject.KernelNaN(faultinject.SweepPartial, blk) && sub.Nnz() > 0 {
			sub.Values[0] = nan()
		}
		t0 := time.Now()
		var err error
		if inject.PivotFail(faultinject.SweepPartial, blk) {
			err = gp.ErrSingular
		} else {
			err = num.small[blk].RefactorSelective(sub, num.workerWS(t),
				inc.colStamp[r0:r1], inc.epoch, inc.rerun[r0:r1])
		}
		if err != nil && errors.Is(err, gp.ErrSingular) {
			// Pivot drift: re-pivot this block alone (sub's clean prefix
			// still holds the resident values, so the fresh factorization
			// sees the complete current block). A second armed PivotFail
			// also takes down the fallback (poisoned-numeric path).
			num.pivotFallbacks.Add(1)
			if inject.PivotFail(faultinject.SweepPartial, blk) {
				err = gp.ErrSingular
			} else {
				var f *gp.Factors
				f, err = gp.Factor(sub, sym.estNnz[blk], num.gpOpts(), num.workerWS(t))
				if err == nil {
					num.small[blk] = f
					pipe.changed.Store(true)
				}
			}
		}
		d := time.Since(t0)
		num.btfBusy[t] += d.Seconds()
		if rec := sym.Opts.Trace; rec != nil {
			end := rec.Now()
			rec.Record(trace.Event{Start: end - d.Nanoseconds(), End: end,
				Worker: int32(t), Block: int32(blk), Kind: trace.KindSmallBlock, Phase: trace.PhasePartial})
		}
		if err != nil {
			pipe.errs[blk] = fmt.Errorf("core: refactor small block %d: %w", blk, err)
		}
		num.hookDone(blk, false)
		inject.StallPoint(faultinject.SweepPartial, blk)
		pipe.sig.Set(blk)
	case blockND:
		num.hookStart(blk, true)
		r0 := sym.BlockPtr[blk]
		if inject.KernelNaN(faultinject.SweepPartial, blk) {
			poisonColumnRange(num.Perm, r0, sym.BlockPtr[blk+1])
		}
		var err error
		if inject.PivotFail(faultinject.SweepPartial, blk) {
			err = gp.ErrSingular
		} else {
			err = num.nd[blk].refactorSweep(num.Perm, r0, inc.nd[blk])
		}
		if err != nil && errors.Is(err, gp.ErrSingular) {
			// Pivot drift inside the 2D hierarchy: rebuild this coarse
			// block with a fresh parallel factorization (new pivots); the
			// rebuild regathers its whole input hierarchy from permuted
			// storage, published only once completely built.
			num.pivotFallbacks.Add(1)
			if inject.PivotFail(faultinject.SweepPartial, blk) {
				err = gp.ErrSingular
			} else {
				var grid *ndGrid
				if num.planned {
					grid = sym.ndsym[blk].grid
				}
				var fresh *ndNum
				fresh, err = factorND(num.Perm, blk, r0, sym.ndsym[blk], num.sweepOpts(), grid, nil)
				if err == nil {
					fresh.ensureRefactorState(num.Perm, r0)
					num.nd[blk] = fresh
					num.remapBlockDst(blk)
					pipe.changed.Store(true)
				}
			}
		}
		if err != nil {
			pipe.errs[blk] = fmt.Errorf("core: refactor nd block %d: %w", blk, err)
		}
		num.hookDone(blk, true)
		inject.StallPoint(faultinject.SweepPartial, blk)
		pipe.sig.Set(blk)
	}
}
