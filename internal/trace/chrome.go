package trace

import (
	"encoding/json"
	"io"
	"sort"
)

// chromeEvent is one entry of the Chrome trace-event JSON format
// (the "X" complete-event and "M" metadata flavors), loadable in
// Perfetto / chrome://tracing.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int64          `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents []chromeEvent `json:"traceEvents"`
	DisplayUnit string        `json:"displayTimeUnit"`
}

// chromeTid maps a worker lane to a non-negative Chrome thread id:
// the driver lane (-1) becomes tid 0 and every real lane shifts up by
// one, so Perfetto's per-thread tracks line up with the lane scheme.
func chromeTid(worker int32) int64 { return int64(worker) + 1 }

// WriteChromeTrace writes every buffered event as Chrome trace-event
// JSON. Timestamps are microseconds since the recorder's base time;
// each event carries its coarse block id and blocked-wait microseconds
// as args. Returns nil (writing nothing but an empty trace) on a nil
// recorder.
func (r *Recorder) WriteChromeTrace(w io.Writer) error {
	events := r.Events()
	sort.SliceStable(events, func(i, j int) bool { return events[i].Start < events[j].Start })
	out := chromeTrace{DisplayUnit: "ms", TraceEvents: make([]chromeEvent, 0, len(events)+16)}
	out.TraceEvents = append(out.TraceEvents, chromeEvent{
		Name: "process_name", Ph: "M", Pid: 1,
		Args: map[string]any{"name": "basker"},
	})
	seen := map[int32]bool{}
	for _, ev := range events {
		if !seen[ev.Worker] {
			seen[ev.Worker] = true
			out.TraceEvents = append(out.TraceEvents, chromeEvent{
				Name: "thread_name", Ph: "M", Pid: 1, Tid: chromeTid(ev.Worker),
				Args: map[string]any{"name": LaneName(ev.Worker)},
			})
		}
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: ev.Kind.String(),
			Cat:  ev.Phase.String(),
			Ph:   "X",
			Ts:   float64(ev.Start) / 1e3,
			Dur:  float64(ev.End-ev.Start) / 1e3,
			Pid:  1,
			Tid:  chromeTid(ev.Worker),
			Args: map[string]any{"block": ev.Block, "wait_us": float64(ev.Wait) / 1e3},
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}
