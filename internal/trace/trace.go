// Package trace is the scheduler observability layer: a low-overhead
// event recorder the numeric sweeps thread their per-kernel timings
// through, plus per-sweep summaries (sync fraction, per-worker
// utilization, straggler blocks) and a Chrome trace-event exporter.
//
// The design constraints come from the zero-allocation steady-state
// contracts of the refactorization pipeline:
//
//   - a nil *Recorder is a valid, fully disabled recorder: every method
//     is nil-safe and free of clock reads, so instrumented hot paths pay
//     one pointer test when tracing is off;
//   - recording an event never allocates: events land in a fixed
//     power-of-two ring buffer through a single atomic cursor, so any
//     number of workers can record concurrently without locks (each
//     Add reserves a distinct slot);
//   - only EndSweep — called once per factor/refactor sweep by the
//     driver, never by workers — allocates, to build the Summary.
//
// Wall-clock nanoseconds are relative to the recorder's creation time,
// which keeps them small, monotonic (time.Since uses the monotonic
// clock) and directly usable as Chrome trace timestamps.
package trace

import (
	"sync"
	"sync/atomic"
	"time"
)

// Phase identifies which pipeline stage an event belongs to.
type Phase uint8

const (
	PhaseAnalyze Phase = iota
	PhaseFactor
	PhaseRefactor
	PhasePartial
	PhaseSolve
	numPhases
)

func (p Phase) String() string {
	switch p {
	case PhaseAnalyze:
		return "analyze"
	case PhaseFactor:
		return "factor"
	case PhaseRefactor:
		return "refactor"
	case PhasePartial:
		return "partial"
	case PhaseSolve:
		return "solve"
	}
	return "unknown"
}

// Kind identifies the kernel kind an event measured.
type Kind uint8

const (
	// KindSmallBlock is one fine-BTF diagonal block handled by the GP
	// kernel (factor or in-place refresh).
	KindSmallBlock Kind = iota
	// KindNDKernel is one contiguous run of fine-ND kernels executed by a
	// 2D-schedule worker between synchronization points.
	KindNDKernel
	// KindGather is the driver's value gather / permutation step.
	KindGather
	// KindAnalyzeBTF is the analyze front end: matching + BTF ordering.
	KindAnalyzeBTF
	// KindAnalyzeAMD is one small block's local AMD ordering + estimate.
	KindAnalyzeAMD
	// KindAnalyzeND is one big block's nested-dissection analysis.
	KindAnalyzeND
	// KindAnalyzePlan is the gather-plan construction step.
	KindAnalyzePlan
	// KindSolveBlock is one coarse block of the parallel triangular solve.
	KindSolveBlock
	// KindDenseRefresh is a fine-ND refresh span whose kernels ran through
	// the dense panel layer (dense refactor / dense TRSM refresh).
	KindDenseRefresh
	// KindSnodeKernel is a fine-ND leaf diagonal factored or refreshed
	// through elimination-tree supernode panels.
	KindSnodeKernel
)

func (k Kind) String() string {
	switch k {
	case KindSmallBlock:
		return "small-block"
	case KindNDKernel:
		return "nd-kernel"
	case KindGather:
		return "gather"
	case KindAnalyzeBTF:
		return "analyze-btf"
	case KindAnalyzeAMD:
		return "analyze-amd"
	case KindAnalyzeND:
		return "analyze-nd"
	case KindAnalyzePlan:
		return "analyze-plan"
	case KindSolveBlock:
		return "solve-block"
	case KindDenseRefresh:
		return "dense-refresh"
	case KindSnodeKernel:
		return "snode-kernel"
	}
	return "unknown"
}

// Event is one recorded kernel execution. Start and End are nanoseconds
// since the recorder's base time; Wait is the portion of the worker's
// time since its previous event (or sweep start) spent blocked on the
// point-to-point/barrier fabric, accounted separately from compute so
// sync overhead is measurable (the paper's 2.3%-vs-11% claim).
type Event struct {
	Start  int64
	End    int64
	Wait   int64
	Worker int32
	Block  int32
	Kind   Kind
	Phase  Phase
}

// DriverWorker labels events recorded by the sweep driver goroutine
// rather than a scheduled worker.
const DriverWorker int32 = -1

const (
	ndLaneShift   = 10
	ndLaneMask    = 1<<ndLaneShift - 1
	solveLaneBase = 1 << 20
)

// NDWorker returns the trace lane of fine-ND worker t cooperating on
// coarse block blk. Each (block, worker) pair gets its own lane so the
// per-lane event streams never overlap even when several big blocks
// factor concurrently.
func NDWorker(blk, t int) int32 {
	return int32((blk+1)<<ndLaneShift + t)
}

// SolveWorker returns the trace lane of parallel-solve worker w.
func SolveWorker(w int) int32 {
	return int32(solveLaneBase + w)
}

// LaneName names a worker lane for human-facing output (thread names in
// the Chrome export).
func LaneName(worker int32) string {
	switch {
	case worker == DriverWorker:
		return "driver"
	case worker >= solveLaneBase:
		return "solve-w" + itoa(int(worker-solveLaneBase))
	case worker >= 1<<ndLaneShift:
		blk := int(worker>>ndLaneShift) - 1
		return "nd" + itoa(blk) + "-w" + itoa(int(worker&ndLaneMask))
	}
	return "worker-" + itoa(int(worker))
}

// itoa is strconv.Itoa for small non-negative ints, kept local so the
// hot-path-free package surface stays dependency-light.
func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}

// Recorder is the shared event sink. A nil *Recorder is valid and
// disabled; a non-nil Recorder may be shared by any number of workers
// and sweeps (records are lock-free). Summaries are produced by the
// sweep driver via BeginSweep/End.
type Recorder struct {
	base   time.Time
	buf    []Event
	mask   uint64
	cursor atomic.Uint64

	mu        sync.Mutex
	summaries []Summary
	last      [numPhases]Summary
	has       [numPhases]bool
	cum       [numPhases]cumPhase
}

type cumPhase struct {
	sweeps           int64
	wall, work, wait float64
}

// DefaultCapacity is the event-ring capacity NewRecorder uses when the
// caller passes a non-positive capacity.
const DefaultCapacity = 1 << 16

// maxSummaries caps the retained per-sweep summaries so a long transient
// loop with tracing left on cannot grow without bound; the cumulative
// per-phase totals keep counting past the cap.
const maxSummaries = 1024

// NewRecorder returns an enabled Recorder whose ring holds at least
// capacity events (rounded up to a power of two; capacity <= 0 selects
// DefaultCapacity). When the ring wraps, the oldest events are
// overwritten and the affected sweep summaries report Dropped > 0.
func NewRecorder(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	n := 1
	for n < capacity {
		n <<= 1
	}
	return &Recorder{
		base: time.Now(),
		buf:  make([]Event, n),
		mask: uint64(n - 1),
	}
}

// Enabled reports whether events are being recorded.
func (r *Recorder) Enabled() bool { return r != nil }

// Now returns nanoseconds since the recorder's base time (0 when
// disabled — no clock read happens on a nil recorder).
func (r *Recorder) Now() int64 {
	if r == nil {
		return 0
	}
	return time.Since(r.base).Nanoseconds()
}

// Record appends ev to the ring. Safe for concurrent use from any
// number of workers; never allocates or blocks. A no-op when disabled.
func (r *Recorder) Record(ev Event) {
	if r == nil {
		return
	}
	idx := r.cursor.Add(1) - 1
	r.buf[idx&r.mask] = ev
}

// Events returns the recorded events, oldest first. Events recorded
// concurrently with the call may be torn; call between sweeps.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	cur := r.cursor.Load()
	n := uint64(len(r.buf))
	lo := uint64(0)
	if cur > n {
		lo = cur - n
	}
	out := make([]Event, 0, cur-lo)
	for i := lo; i < cur; i++ {
		out = append(out, r.buf[i&r.mask])
	}
	return out
}

// Sweep is an open per-sweep measurement started by BeginSweep.
type Sweep struct {
	r      *Recorder
	phase  Phase
	start  int64
	cursor uint64
}

// BeginSweep opens a sweep-level measurement for the given phase. The
// returned Sweep's End produces (and retains) the Summary over every
// event of that phase recorded in between. Nil-safe.
func (r *Recorder) BeginSweep(phase Phase) Sweep {
	if r == nil {
		return Sweep{}
	}
	return Sweep{r: r, phase: phase, start: r.Now(), cursor: r.cursor.Load()}
}

// End closes the sweep and stores its Summary on the recorder. This is
// the only allocating call of the recording path and must be made by
// the sweep driver, never by workers.
func (s Sweep) End() {
	r := s.r
	if r == nil {
		return
	}
	end := r.Now()
	cur := r.cursor.Load()
	n := uint64(len(r.buf))
	lo := s.cursor
	dropped := 0
	if cur-lo > n {
		dropped = int(cur - lo - n)
		lo = cur - n
	}
	sum := Summary{
		Phase:       s.phase,
		WallSeconds: float64(end-s.start) / 1e9,
		Dropped:     dropped,
	}
	type acc struct{ busy, wait int64 }
	workers := map[int32]*acc{}
	blocks := map[blockKey]int64{}
	for i := lo; i < cur; i++ {
		ev := r.buf[i&r.mask]
		if ev.Phase != s.phase {
			continue
		}
		sum.Events++
		busy := ev.End - ev.Start
		if busy < 0 {
			busy = 0
		}
		sum.WorkSeconds += float64(busy) / 1e9
		sum.WaitSeconds += float64(ev.Wait) / 1e9
		a := workers[ev.Worker]
		if a == nil {
			a = &acc{}
			workers[ev.Worker] = a
		}
		a.busy += busy
		a.wait += ev.Wait
		blocks[blockKey{ev.Block, ev.Kind}] += busy
	}
	if tot := sum.WorkSeconds + sum.WaitSeconds; tot > 0 {
		sum.SyncFraction = sum.WaitSeconds / tot
	}
	if sum.WallSeconds > 0 {
		sum.Parallelism = sum.WorkSeconds / sum.WallSeconds
	}
	for w, a := range workers {
		wu := WorkerUtil{
			Worker:      w,
			BusySeconds: float64(a.busy) / 1e9,
			WaitSeconds: float64(a.wait) / 1e9,
		}
		if sum.WallSeconds > 0 {
			wu.Utilization = wu.BusySeconds / sum.WallSeconds
		}
		sum.Workers = append(sum.Workers, wu)
	}
	sortWorkers(sum.Workers)
	sum.Stragglers = topBlocks(blocks, topStragglers)
	r.mu.Lock()
	if len(r.summaries) < maxSummaries {
		r.summaries = append(r.summaries, sum)
	}
	r.last[s.phase] = sum
	r.has[s.phase] = true
	c := &r.cum[s.phase]
	c.sweeps++
	c.wall += sum.WallSeconds
	c.work += sum.WorkSeconds
	c.wait += sum.WaitSeconds
	r.mu.Unlock()
}

type blockKey struct {
	block int32
	kind  Kind
}

// topStragglers is how many per-(block, kind) cost leaders a Summary
// retains.
const topStragglers = 5

func topBlocks(blocks map[blockKey]int64, k int) []BlockCost {
	out := make([]BlockCost, 0, len(blocks))
	for key, ns := range blocks {
		out = append(out, BlockCost{Block: key.block, Kind: key.kind, Seconds: float64(ns) / 1e9})
	}
	// Selection sort of the top k: the map is small (straggler reporting,
	// not a hot path) and this avoids importing sort for a partial order.
	for i := 0; i < len(out) && i < k; i++ {
		best := i
		for j := i + 1; j < len(out); j++ {
			if out[j].Seconds > out[best].Seconds {
				best = j
			}
		}
		out[i], out[best] = out[best], out[i]
	}
	if len(out) > k {
		out = out[:k]
	}
	return out
}

func sortWorkers(ws []WorkerUtil) {
	for i := 1; i < len(ws); i++ {
		for j := i; j > 0 && ws[j].Worker < ws[j-1].Worker; j-- {
			ws[j], ws[j-1] = ws[j-1], ws[j]
		}
	}
}

// WorkerUtil is one worker lane's share of a sweep.
type WorkerUtil struct {
	Worker      int32
	BusySeconds float64
	WaitSeconds float64
	// Utilization is BusySeconds over the sweep's wall-clock span.
	Utilization float64
}

// BlockCost is one coarse block's summed kernel seconds in a sweep.
type BlockCost struct {
	Block   int32
	Kind    Kind
	Seconds float64
}

// Summary is the per-sweep scheduler profile: how much of the sweep was
// compute vs synchronization, how evenly the work spread over the
// workers, and which blocks dominated the critical path.
type Summary struct {
	Phase Phase
	// WallSeconds is the sweep's wall-clock span (driver side).
	WallSeconds float64
	// WorkSeconds is the total compute across all workers.
	WorkSeconds float64
	// WaitSeconds is the total blocked synchronization time across all
	// workers (point-to-point waits, barrier waits).
	WaitSeconds float64
	// SyncFraction is WaitSeconds / (WorkSeconds + WaitSeconds) — the
	// paper's sync-overhead metric (~2.3% point-to-point vs ~11% barrier).
	SyncFraction float64
	// Parallelism is WorkSeconds / WallSeconds: the effective number of
	// busy workers (1.0 = serial, p = perfect scaling on p workers).
	Parallelism float64
	// Workers lists per-lane busy/wait/utilization, lane ascending.
	Workers []WorkerUtil
	// Stragglers lists the top per-(block, kind) kernel costs.
	Stragglers []BlockCost
	// Events is how many events of the sweep's phase were summarized;
	// Dropped counts ring overwrites during the sweep (enlarge the
	// recorder capacity if nonzero).
	Events  int
	Dropped int
}

// MeanUtilization is the mean per-worker utilization (0 when the sweep
// recorded no worker events).
func (s Summary) MeanUtilization() float64 {
	if len(s.Workers) == 0 {
		return 0
	}
	t := 0.0
	for _, w := range s.Workers {
		t += w.Utilization
	}
	return t / float64(len(s.Workers))
}

// Imbalance is the busiest worker's share over the mean (1.0 = perfectly
// balanced; 0 when no worker events were recorded). This is the paper's
// load-imbalance lens on the flop-partitioned schedule.
func (s Summary) Imbalance() float64 {
	if len(s.Workers) == 0 {
		return 0
	}
	max, tot := 0.0, 0.0
	for _, w := range s.Workers {
		tot += w.BusySeconds
		if w.BusySeconds > max {
			max = w.BusySeconds
		}
	}
	if tot == 0 {
		return 0
	}
	return max / (tot / float64(len(s.Workers)))
}

// String renders the summary as a short human-readable block, the form
// baskerbench -trace and baskersolve print.
func (s Summary) String() string {
	b := make([]byte, 0, 256)
	b = append(b, s.Phase.String()...)
	b = append(b, " sweep: wall "...)
	b = appendSeconds(b, s.WallSeconds)
	b = append(b, ", work "...)
	b = appendSeconds(b, s.WorkSeconds)
	b = append(b, ", sync "...)
	b = appendPct(b, s.SyncFraction)
	b = append(b, ", parallelism "...)
	b = appendFixed(b, s.Parallelism)
	b = append(b, "x, utilization "...)
	b = appendPct(b, s.MeanUtilization())
	b = append(b, ", imbalance "...)
	b = appendFixed(b, s.Imbalance())
	b = append(b, "x ("...)
	b = append(b, itoa(s.Events)...)
	b = append(b, " events"...)
	if s.Dropped > 0 {
		b = append(b, ", "...)
		b = append(b, itoa(s.Dropped)...)
		b = append(b, " dropped"...)
	}
	b = append(b, ')')
	return string(b)
}

func appendSeconds(b []byte, s float64) []byte {
	us := int64(s * 1e6)
	b = append(b, itoa(int(us))...)
	return append(b, "us"...)
}

func appendPct(b []byte, f float64) []byte {
	tenths := int64(f*1000 + 0.5)
	b = append(b, itoa(int(tenths/10))...)
	b = append(b, '.')
	b = append(b, byte('0'+tenths%10))
	return append(b, '%')
}

func appendFixed(b []byte, f float64) []byte {
	hund := int64(f*100 + 0.5)
	b = append(b, itoa(int(hund/100))...)
	b = append(b, '.')
	b = append(b, byte('0'+(hund/10)%10))
	return append(b, byte('0'+hund%10))
}

// LastSummary returns the most recent summary of the given phase.
func (r *Recorder) LastSummary(phase Phase) (Summary, bool) {
	if r == nil || phase >= numPhases {
		return Summary{}, false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.last[phase], r.has[phase]
}

// Summaries returns every retained per-sweep summary, oldest first.
func (r *Recorder) Summaries() []Summary {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Summary(nil), r.summaries...)
}

// CumulativeSeconds returns the cumulative per-phase totals as a flat
// string→float64 map ("factor_sweeps", "factor_wall_seconds",
// "factor_work_seconds", "factor_wait_seconds", …) — the shape the
// expvar bridge publishes for Prometheus-style scraping.
func (r *Recorder) CumulativeSeconds() map[string]float64 {
	out := map[string]float64{}
	if r == nil {
		return out
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for p := Phase(0); p < numPhases; p++ {
		c := r.cum[p]
		if c.sweeps == 0 {
			continue
		}
		name := p.String()
		out[name+"_sweeps"] = float64(c.sweeps)
		out[name+"_wall_seconds"] = c.wall
		out[name+"_work_seconds"] = c.work
		out[name+"_wait_seconds"] = c.wait
	}
	return out
}
