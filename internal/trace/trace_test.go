package trace

import (
	"bytes"
	"encoding/json"
	"math"
	"sync"
	"testing"
)

// TestTraceNilRecorder pins the disabled fast path: every method on a nil
// *Recorder is a safe no-op, so instrumented hot loops need only a nil
// check and the zero-alloc contracts of the refactor pipeline hold.
func TestTraceNilRecorder(t *testing.T) {
	var r *Recorder
	if r.Enabled() {
		t.Fatal("nil recorder reports enabled")
	}
	if r.Now() != 0 {
		t.Fatal("nil recorder Now() != 0")
	}
	r.Record(Event{Start: 1, End: 2})
	sweep := r.BeginSweep(PhaseFactor)
	sweep.End()
	if ev := r.Events(); ev != nil {
		t.Fatalf("nil recorder has events: %v", ev)
	}
	if _, ok := r.LastSummary(PhaseFactor); ok {
		t.Fatal("nil recorder has a summary")
	}
	if s := r.Summaries(); len(s) != 0 {
		t.Fatalf("nil recorder summaries: %v", s)
	}
	if c := r.CumulativeSeconds(); len(c) != 0 {
		t.Fatalf("nil recorder cumulative: %v", c)
	}
	var buf bytes.Buffer
	if err := r.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("nil recorder trace is not JSON: %v", err)
	}
}

// TestTraceSummaryMath checks the summary aggregation on hand-built
// events: work/wait totals, sync fraction, imbalance, per-worker rollup,
// straggler ranking, and phase filtering.
func TestTraceSummaryMath(t *testing.T) {
	r := NewRecorder(64)
	sweep := r.BeginSweep(PhaseRefactor)
	r.Record(Event{Start: 0, End: 3e6, Wait: 1e6, Worker: 0, Block: 7, Kind: KindSmallBlock, Phase: PhaseRefactor})
	r.Record(Event{Start: 0, End: 1e6, Wait: 0, Worker: 1, Block: 9, Kind: KindNDKernel, Phase: PhaseRefactor})
	// A different phase's event must not leak into this sweep's summary.
	r.Record(Event{Start: 0, End: 5e6, Worker: 2, Block: 1, Kind: KindGather, Phase: PhaseFactor})
	sweep.End()

	sum, ok := r.LastSummary(PhaseRefactor)
	if !ok {
		t.Fatal("no refactor summary")
	}
	approx := func(got, want float64) bool { return math.Abs(got-want) < 1e-12 }
	if sum.Events != 2 || sum.Dropped != 0 {
		t.Fatalf("events = %d dropped = %d, want 2, 0", sum.Events, sum.Dropped)
	}
	if !approx(sum.WorkSeconds, 4e-3) {
		t.Fatalf("work = %v, want 4ms", sum.WorkSeconds)
	}
	if !approx(sum.WaitSeconds, 1e-3) {
		t.Fatalf("wait = %v, want 1ms", sum.WaitSeconds)
	}
	if !approx(sum.SyncFraction, 0.2) {
		t.Fatalf("sync fraction = %v, want 0.2", sum.SyncFraction)
	}
	if !approx(sum.Imbalance(), 1.5) {
		t.Fatalf("imbalance = %v, want 1.5", sum.Imbalance())
	}
	if len(sum.Workers) != 2 || sum.Workers[0].Worker != 0 || sum.Workers[1].Worker != 1 {
		t.Fatalf("workers = %+v, want lanes 0,1 ascending", sum.Workers)
	}
	if !approx(sum.Workers[0].BusySeconds, 3e-3) || !approx(sum.Workers[0].WaitSeconds, 1e-3) {
		t.Fatalf("worker 0 rollup = %+v", sum.Workers[0])
	}
	if len(sum.Stragglers) != 2 || sum.Stragglers[0].Block != 7 || sum.Stragglers[0].Kind != KindSmallBlock {
		t.Fatalf("stragglers = %+v, want block 7 first", sum.Stragglers)
	}
	if sum.String() == "" {
		t.Fatal("empty summary string")
	}
	// The factor-phase event never got a sweep, so no factor summary exists.
	if _, ok := r.LastSummary(PhaseFactor); ok {
		t.Fatal("unexpected factor summary")
	}
}

// TestTraceRingWrapDropped checks that overflowing the ring keeps the
// newest events and reports the loss in the sweep summary.
func TestTraceRingWrapDropped(t *testing.T) {
	r := NewRecorder(8)
	sweep := r.BeginSweep(PhaseFactor)
	for i := 0; i < 20; i++ {
		r.Record(Event{Start: int64(i), End: int64(i) + 1, Block: int32(i), Phase: PhaseFactor})
	}
	sweep.End()
	sum, ok := r.LastSummary(PhaseFactor)
	if !ok {
		t.Fatal("no summary")
	}
	if sum.Events != 8 || sum.Dropped != 12 {
		t.Fatalf("events = %d dropped = %d, want 8, 12", sum.Events, sum.Dropped)
	}
	evs := r.Events()
	if len(evs) != 8 {
		t.Fatalf("len(events) = %d, want 8", len(evs))
	}
	for i, ev := range evs {
		if want := int32(12 + i); ev.Block != want {
			t.Fatalf("events[%d].Block = %d, want %d (oldest-first, newest kept)", i, ev.Block, want)
		}
	}
}

// TestTraceConcurrentRecord hammers the ring from many goroutines; under
// -race this proves Record is safe for concurrent workers, and the final
// count proves no slot reservation was lost.
func TestTraceConcurrentRecord(t *testing.T) {
	const workers, per = 8, 500
	r := NewRecorder(workers * per)
	sweep := r.BeginSweep(PhaseFactor)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				start := r.Now()
				r.Record(Event{Start: start, End: r.Now(), Worker: int32(w), Block: int32(i), Phase: PhaseFactor})
			}
		}(w)
	}
	wg.Wait()
	sweep.End()
	sum, ok := r.LastSummary(PhaseFactor)
	if !ok {
		t.Fatal("no summary")
	}
	if sum.Events != workers*per || sum.Dropped != 0 {
		t.Fatalf("events = %d dropped = %d, want %d, 0", sum.Events, sum.Dropped, workers*per)
	}
	if len(sum.Workers) != workers {
		t.Fatalf("worker lanes = %d, want %d", len(sum.Workers), workers)
	}
}

// TestTraceCumulativeSeconds checks the expvar-facing totals accumulate
// across sweeps and omit phases that never ran.
func TestTraceCumulativeSeconds(t *testing.T) {
	r := NewRecorder(64)
	for i := 0; i < 3; i++ {
		sweep := r.BeginSweep(PhaseRefactor)
		r.Record(Event{Start: 0, End: 2e6, Wait: 5e5, Phase: PhaseRefactor})
		sweep.End()
	}
	c := r.CumulativeSeconds()
	if c["refactor_sweeps"] != 3 {
		t.Fatalf("refactor_sweeps = %v, want 3", c["refactor_sweeps"])
	}
	if got, want := c["refactor_work_seconds"], 3*2e-3; math.Abs(got-want) > 1e-12 {
		t.Fatalf("refactor_work_seconds = %v, want %v", got, want)
	}
	if got, want := c["refactor_wait_seconds"], 3*5e-4; math.Abs(got-want) > 1e-12 {
		t.Fatalf("refactor_wait_seconds = %v, want %v", got, want)
	}
	if c["refactor_wall_seconds"] <= 0 {
		t.Fatalf("refactor_wall_seconds = %v, want > 0", c["refactor_wall_seconds"])
	}
	if _, ok := c["factor_sweeps"]; ok {
		t.Fatal("factor totals present without a factor sweep")
	}
}

// TestTraceLaneNames pins the lane-id scheme the Chrome export's thread
// names rely on.
func TestTraceLaneNames(t *testing.T) {
	cases := []struct {
		worker int32
		want   string
	}{
		{DriverWorker, "driver"},
		{0, "worker-0"},
		{3, "worker-3"},
		{NDWorker(3, 2), "nd3-w2"},
		{NDWorker(0, 0), "nd0-w0"},
		{SolveWorker(4), "solve-w4"},
	}
	for _, c := range cases {
		if got := LaneName(c.worker); got != c.want {
			t.Errorf("LaneName(%d) = %q, want %q", c.worker, got, c.want)
		}
	}
}

// TestTraceChromeWellFormed checks the exporter emits parseable Chrome
// trace-event JSON: process/thread metadata for every lane, "X" events
// with non-negative durations, and block/wait args.
func TestTraceChromeWellFormed(t *testing.T) {
	r := NewRecorder(64)
	r.Record(Event{Start: 100, End: 2100, Worker: DriverWorker, Block: 0, Kind: KindGather, Phase: PhaseFactor})
	r.Record(Event{Start: 2200, End: 9200, Wait: 300, Worker: 1, Block: 4, Kind: KindSmallBlock, Phase: PhaseFactor})
	r.Record(Event{Start: 2500, End: 8000, Worker: NDWorker(2, 1), Block: 2, Kind: KindNDKernel, Phase: PhaseFactor})
	var buf bytes.Buffer
	if err := r.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Tid  int64          `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("trace is not JSON: %v", err)
	}
	if out.DisplayUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q, want ms", out.DisplayUnit)
	}
	meta, complete := 0, 0
	for _, ev := range out.TraceEvents {
		switch ev.Ph {
		case "M":
			meta++
		case "X":
			complete++
			if ev.Dur < 0 {
				t.Fatalf("event %q has negative duration %v", ev.Name, ev.Dur)
			}
			if _, ok := ev.Args["block"]; !ok {
				t.Fatalf("event %q missing block arg", ev.Name)
			}
		default:
			t.Fatalf("unexpected event phase %q", ev.Ph)
		}
	}
	if complete != 3 {
		t.Fatalf("complete events = %d, want 3", complete)
	}
	// process_name plus one thread_name per distinct lane.
	if meta != 1+3 {
		t.Fatalf("metadata events = %d, want 4", meta)
	}
}
