package perf

import (
	"math"
	"strings"
	"testing"
	"time"
)

func TestGeoMean(t *testing.T) {
	if g := GeoMean([]float64{2, 8}); math.Abs(g-4) > 1e-12 {
		t.Fatalf("GeoMean = %v, want 4", g)
	}
	if g := GeoMean([]float64{5}); g != 5 {
		t.Fatalf("GeoMean = %v, want 5", g)
	}
	if g := GeoMean(nil); g != 0 {
		t.Fatalf("GeoMean(nil) = %v, want 0", g)
	}
	// Non-positive and infinite entries ignored.
	if g := GeoMean([]float64{0, -1, math.Inf(1), 3}); math.Abs(g-3) > 1e-12 {
		t.Fatalf("GeoMean = %v, want 3", g)
	}
}

func TestSpeedup(t *testing.T) {
	if s := Speedup(10, 2); s != 5 {
		t.Fatalf("Speedup = %v", s)
	}
	if s := Speedup(1, 0); !math.IsInf(s, 1) {
		t.Fatalf("Speedup by zero = %v", s)
	}
}

func TestTimeMeasures(t *testing.T) {
	sec := Time(time.Millisecond, func() { time.Sleep(200 * time.Microsecond) })
	if sec <= 0 || sec > 0.1 {
		t.Fatalf("Time = %v, implausible", sec)
	}
}

func sampleSet() []Sample {
	return []Sample{
		{Matrix: "m1", Solver: "A", Seconds: 1},
		{Matrix: "m1", Solver: "B", Seconds: 2},
		{Matrix: "m2", Solver: "A", Seconds: 3},
		{Matrix: "m2", Solver: "B", Seconds: 1},
		{Matrix: "m3", Solver: "A", Seconds: 1},
		{Matrix: "m3", Solver: "B", Failed: true},
	}
}

func TestFractionBest(t *testing.T) {
	s := sampleSet()
	if f := FractionBest(s, "A"); math.Abs(f-2.0/3) > 1e-12 {
		t.Fatalf("FractionBest(A) = %v, want 2/3", f)
	}
	if f := FractionBest(s, "B"); math.Abs(f-1.0/3) > 1e-12 {
		t.Fatalf("FractionBest(B) = %v, want 1/3", f)
	}
}

func TestProfiles(t *testing.T) {
	prof := Profiles(sampleSet(), 10)
	a := prof["A"]
	if len(a) != 3 {
		t.Fatalf("profile A has %d points, want 3", len(a))
	}
	// A is best on m1 and m3 (x=1) and 3x on m2.
	if a[0].X != 1 || a[1].X != 1 || a[2].X != 3 {
		t.Fatalf("profile A xs = %v", a)
	}
	if math.Abs(a[2].Fraction-1) > 1e-12 {
		t.Fatalf("profile A final fraction = %v", a[2].Fraction)
	}
	// B fails on m3, so its curve tops out at 2/3.
	b := prof["B"]
	if b[len(b)-1].Fraction > 2.0/3+1e-12 {
		t.Fatalf("profile B should top out at 2/3, got %v", b[len(b)-1].Fraction)
	}
}

func TestTable(t *testing.T) {
	out := Table([]string{"name", "v"}, [][]string{{"alpha", "1"}, {"b", "22"}})
	if !strings.Contains(out, "alpha") || !strings.Contains(out, "22") {
		t.Fatalf("table output missing cells:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("table has %d lines, want 4", len(lines))
	}
}

func TestTrendLine(t *testing.T) {
	a, b := TrendLine([]float64{1, 2, 3}, []float64{2, 4, 6})
	if math.Abs(a) > 1e-12 || math.Abs(b-2) > 1e-12 {
		t.Fatalf("trend = %v + %v x, want 0 + 2x", a, b)
	}
	a, b = TrendLine(nil, nil)
	if a != 0 || b != 0 {
		t.Fatal("empty trend should be zero")
	}
}

func TestMakespan(t *testing.T) {
	if m := Makespan([]float64{4, 3, 2, 1}, 2); m != 5 {
		t.Fatalf("Makespan = %v, want 5", m)
	}
	if m := Makespan([]float64{4, 3, 2, 1}, 1); m != 10 {
		t.Fatalf("Makespan p=1 = %v, want 10", m)
	}
	if m := Makespan(nil, 4); m != 0 {
		t.Fatalf("Makespan empty = %v", m)
	}
	if m := Makespan([]float64{5}, 8); m != 5 {
		t.Fatalf("Makespan single = %v", m)
	}
}
