// Package perf provides the measurement harness for the paper's
// evaluation: wall-clock timing of numeric factorization, speedup relative
// to KLU, geometric means over a suite, and Dolan–Moré performance
// profiles (the paper's Figure 7).
package perf

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"
)

// Sample is one (matrix, solver, threads) measurement.
type Sample struct {
	Matrix  string
	Solver  string
	Threads int
	Seconds float64
	// Failed marks solver failures (SLU-MT "fails on rajat21" in Fig 5);
	// failed samples count as +Inf in profiles.
	Failed bool
}

// Time runs f repeatedly until it has consumed at least minDuration (at
// least once) and returns the minimum wall-clock seconds per run — the
// usual best-of-k estimator for short kernels.
func Time(minDuration time.Duration, f func()) float64 {
	best := math.Inf(1)
	var total time.Duration
	for runs := 0; runs < 1 || total < minDuration; runs++ {
		start := time.Now()
		f()
		el := time.Since(start)
		total += el
		if s := el.Seconds(); s < best {
			best = s
		}
		if runs > 50 {
			break
		}
	}
	return best
}

// Speedup returns Time(matrix, KLU, 1) / Time(matrix, solver, p), the
// paper's Figure 6 metric.
func Speedup(kluSeconds, solverSeconds float64) float64 {
	if solverSeconds <= 0 {
		return math.Inf(1)
	}
	return kluSeconds / solverSeconds
}

// GeoMean returns the geometric mean of positive values, ignoring
// non-positive entries (paper's summary statistic: 5.91× on 16 cores).
func GeoMean(values []float64) float64 {
	s, n := 0.0, 0
	for _, v := range values {
		if v > 0 && !math.IsInf(v, 0) {
			s += math.Log(v)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(s / float64(n))
}

// ProfilePoint is one (x, fraction) point of a performance profile.
type ProfilePoint struct {
	X        float64 // time relative to the best solver
	Fraction float64 // fraction of problems solved within X× of the best
}

// Profiles computes Dolan–Moré performance profiles for a set of samples
// covering the same matrices with different solvers. The result maps
// solver name to its profile curve, with X clipped at xmax.
func Profiles(samples []Sample, xmax float64) map[string][]ProfilePoint {
	// Group: matrix -> solver -> seconds.
	byMatrix := map[string]map[string]float64{}
	solvers := map[string]bool{}
	for _, s := range samples {
		if byMatrix[s.Matrix] == nil {
			byMatrix[s.Matrix] = map[string]float64{}
		}
		sec := s.Seconds
		if s.Failed || sec <= 0 {
			sec = math.Inf(1)
		}
		byMatrix[s.Matrix][s.Solver] = sec
		solvers[s.Solver] = true
	}
	// Ratios per solver.
	ratios := map[string][]float64{}
	nmat := 0
	for _, times := range byMatrix {
		best := math.Inf(1)
		for _, sec := range times {
			if sec < best {
				best = sec
			}
		}
		if math.IsInf(best, 1) {
			continue
		}
		nmat++
		for solver := range solvers {
			sec, ok := times[solver]
			r := math.Inf(1)
			if ok && !math.IsInf(sec, 1) {
				r = sec / best
			}
			ratios[solver] = append(ratios[solver], r)
		}
	}
	out := map[string][]ProfilePoint{}
	for solver, rs := range ratios {
		sort.Float64s(rs)
		var curve []ProfilePoint
		for i, r := range rs {
			if r > xmax {
				break
			}
			curve = append(curve, ProfilePoint{X: r, Fraction: float64(i+1) / float64(nmat)})
		}
		out[solver] = curve
	}
	return out
}

// FractionBest reports the fraction of matrices on which the solver is the
// fastest (the paper's "best solver for ~77% of problems" statements).
func FractionBest(samples []Sample, solver string) float64 {
	byMatrix := map[string]map[string]float64{}
	for _, s := range samples {
		if byMatrix[s.Matrix] == nil {
			byMatrix[s.Matrix] = map[string]float64{}
		}
		sec := s.Seconds
		if s.Failed || sec <= 0 {
			sec = math.Inf(1)
		}
		byMatrix[s.Matrix][s.Solver] = sec
	}
	wins, total := 0, 0
	for _, times := range byMatrix {
		best, bestSolver := math.Inf(1), ""
		for sv, sec := range times {
			if sec < best {
				best, bestSolver = sec, sv
			}
		}
		if bestSolver == "" {
			continue
		}
		total++
		if bestSolver == solver {
			wins++
		}
	}
	if total == 0 {
		return 0
	}
	return float64(wins) / float64(total)
}

// Table formats rows as an aligned text table.
func Table(header []string, rows [][]string) string {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, r := range rows {
		writeRow(r)
	}
	return b.String()
}

// TrendLine fits y = a + b·x by least squares (Figure 8's linear trend).
func TrendLine(xs, ys []float64) (a, b float64) {
	n := float64(len(xs))
	if n == 0 {
		return 0, 0
	}
	var sx, sy, sxx, sxy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return sy / n, 0
	}
	b = (n*sxy - sx*sy) / den
	a = (sy - b*sx) / n
	return a, b
}

// Makespan computes the completion time of scheduling independent tasks
// with the given durations onto p identical workers using the
// longest-processing-time (LPT) greedy rule. It is used to *simulate*
// multicore execution of one scheduling level on hosts with fewer physical
// cores than the experiment sweeps (see DESIGN.md's hardware substitution).
func Makespan(durations []float64, p int) float64 {
	if p < 1 {
		p = 1
	}
	if len(durations) == 0 {
		return 0
	}
	sorted := append([]float64(nil), durations...)
	sort.Sort(sort.Reverse(sort.Float64Slice(sorted)))
	bins := make([]float64, p)
	for _, d := range sorted {
		best := 0
		for i := 1; i < p; i++ {
			if bins[i] < bins[best] {
				best = i
			}
		}
		bins[best] += d
	}
	max := 0.0
	for _, b := range bins {
		if b > max {
			max = b
		}
	}
	return max
}
