// Command matgen emits the synthetic benchmark matrices of this repository
// as MatrixMarket files, so they can be inspected or fed to other tools.
//
// Usage:
//
//	matgen -kind=circuit -n=4000 -btf=60 -blocks=100 -core=ladder -out=a.mtx
//	matgen -kind=mesh2d  -k=50 -out=mesh.mtx
//	matgen -kind=suite   -scale=1.0 -dir=matrices/
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/matgen"
	"repro/internal/sparse"
)

var (
	kind   = flag.String("kind", "circuit", "circuit | powergrid | mesh2d | mesh3d | suite")
	n      = flag.Int("n", 4000, "dimension (circuit/powergrid)")
	k      = flag.Int("k", 40, "grid side (mesh2d/mesh3d)")
	btf    = flag.Float64("btf", 50, "percent of rows in small BTF blocks (circuit)")
	blocks = flag.Int("blocks", 100, "number of small BTF blocks")
	coreK  = flag.String("core", "ladder", "ladder | grid | grid3d (circuit core kind)")
	extra  = flag.Float64("extra", 0.3, "extra stamp density inside the core")
	seed   = flag.Int64("seed", 1, "generator seed")
	out    = flag.String("out", "", "output file (default stdout)")
	dir    = flag.String("dir", ".", "output directory for -kind=suite")
	scale  = flag.Float64("scale", 1.0, "suite scale factor")
)

func main() {
	flag.Parse()
	switch *kind {
	case "suite":
		for _, m := range matgen.TableISuite(*scale) {
			path := filepath.Join(*dir, m.Name+".mtx")
			if err := writeTo(path, m.Gen()); err != nil {
				fail(err)
			}
			fmt.Println("wrote", path)
		}
		return
	case "circuit":
		ck := map[string]matgen.CoreKind{"ladder": matgen.CoreLadder, "grid": matgen.CoreGrid, "grid3d": matgen.CoreGrid3D}[*coreK]
		emit(matgen.Circuit(matgen.CircuitParams{N: *n, BTFPct: *btf, Blocks: *blocks, Core: ck, ExtraDensity: *extra, Seed: *seed}))
	case "powergrid":
		emit(matgen.PowerGrid(*n, *blocks, *seed))
	case "mesh2d":
		emit(matgen.Mesh2D(*k, *seed))
	case "mesh3d":
		emit(matgen.Mesh3D(*k, *seed))
	default:
		fail(fmt.Errorf("unknown kind %q", *kind))
	}
}

func emit(a *sparse.CSC) {
	if *out == "" {
		if err := sparse.WriteMatrixMarket(os.Stdout, a); err != nil {
			fail(err)
		}
		return
	}
	if err := writeTo(*out, a); err != nil {
		fail(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %s (%d×%d, %d nnz)\n", *out, a.M, a.N, a.Nnz())
}

func writeTo(path string, a *sparse.CSC) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return sparse.WriteMatrixMarket(f, a)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "matgen:", err)
	os.Exit(1)
}
