// Command baskerload drives the solver-as-a-service front end with
// thousands of concurrent clients over mixed matgen patterns and mixed
// solve/refresh/factor traffic, and reports throughput plus latency
// percentiles as a BENCH_serving.json trajectory.
//
// Two modes:
//
//	baskerload                 in-process benchmark: the same workload runs
//	                           against a sharded pool and a single-shard
//	                           pool, with real wall-clock numbers, measured
//	                           lock wait/hold seconds, and — following the
//	                           repo's single-core measurement convention
//	                           (see baskerbench -simulate) — simulated
//	                           p-core makespans replayed from measured
//	                           per-request service and lock segments.
//	baskerload -url=http://... burst against a live baskerserve over real
//	                           HTTP (the CI smoke path); exits non-zero on
//	                           any non-2xx response.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"runtime/debug"
	"sort"
	"sync"
	"time"

	basker "repro"
	"repro/internal/matgen"
	"repro/serve"
)

var (
	urlFlag  = flag.String("url", "", "drive a live server at this base URL instead of the in-process benchmark")
	clients  = flag.Int("clients", 1000, "concurrent closed-loop clients")
	perCli   = flag.Int("requests", 10, "requests per client")
	patterns = flag.Int("patterns", 8, "distinct matrix patterns")
	nBase    = flag.Int("n", 60, "base matrix dimension (pattern i gets n + 8*i)")
	shards   = flag.Int("shards", 8, "shard count for the sharded configuration")
	threads  = flag.Int("threads", 1, "factorization threads per request")
	seed     = flag.Int64("seed", 1, "workload RNG seed")
	simCores = flag.String("simcores", "8,32,128,512",
		"comma-separated core counts for the simulated-parallel replay (fleet-scale serving hosts included)")
	jsonOut = flag.String("json", "", "write the benchmark report to this path")
	calN    = flag.Int("calibrate", 0, "sequential requests measured for the simulated replay (0 = the whole stream)")
	maxByt  = flag.Int64("maxbytes", 0,
		"pool memory bound in bytes (0 = unbounded); a tight bound makes every release run the eviction scan — the memory-pressured serving regime")
)

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "baskerload: "+format+"\n", args...)
	os.Exit(1)
}

// workItem is one pre-generated request: its JSON body and the pattern it
// routes on (for the shard-aware replay).
type workItem struct {
	path string
	body []byte
	pat  int
}

// mkPatterns builds the distinct circuit patterns of the workload.
func mkPatterns(p, n int) []*basker.Matrix {
	mats := make([]*basker.Matrix, p)
	for i := range mats {
		mats[i] = matgen.Circuit(matgen.CircuitParams{
			N: n + 8*i, BTFPct: 50, Blocks: 6, Core: matgen.CoreLadder,
			ExtraDensity: 0.4, Seed: int64(300 + i),
		})
	}
	return mats
}

// mkWorkload pre-generates the full mixed request stream: 75% cache-hit
// solves on registered patterns (the amortized serving steady state), 15%
// values-refresh solves (refactor traffic), 10% factor warms. Bodies are
// pre-marshaled so client-side JSON cost stays out of the measured window.
func mkWorkload(mats []*basker.Matrix, ids []string, total int, rng *rand.Rand) []workItem {
	items := make([]workItem, total)
	for i := range items {
		p := rng.Intn(len(mats))
		a := mats[p]
		b := make([]float64, a.N)
		for j := range b {
			b[j] = rng.NormFloat64()
		}
		var (
			path string
			body any
		)
		switch r := rng.Float64(); {
		case r < 0.75:
			path = "/v1/solve"
			body = serve.SolveRequest{ID: ids[p], B: b}
		case r < 0.90:
			// Incremental refresh traffic: a few stamps drift (a circuit
			// step), so the pool's change-set-aware partial sweep carries it.
			vals := append([]float64(nil), a.Values...)
			for k := 0; k < 1+len(vals)/32; k++ {
				vals[rng.Intn(len(vals))] *= 1 + 0.02*rng.NormFloat64()
			}
			path = "/v1/solve"
			body = serve.SolveRequest{ID: ids[p], Values: vals, B: b}
		default:
			path = "/v1/factor"
			body = serve.FactorRequest{ID: ids[p]}
		}
		blob, err := json.Marshal(body)
		if err != nil {
			fatalf("marshal workload: %v", err)
		}
		items[i] = workItem{path: path, body: blob, pat: p}
	}
	return items
}

// register installs every pattern on the server (warm) and returns their
// ids, via the wire like any client.
func register(do func(path string, body []byte) (int, []byte), mats []*basker.Matrix) []string {
	ids := make([]string, len(mats))
	for i, a := range mats {
		blob, _ := json.Marshal(serve.RegisterRequest{
			Matrix: &serve.MatrixJSON{M: a.M, N: a.N, Colptr: a.Colptr, Rowidx: a.Rowidx, Values: a.Values},
			Warm:   true,
		})
		status, raw := do("/v1/matrices", blob)
		if status != http.StatusOK {
			fatalf("register pattern %d: status %d, body %s", i, status, raw)
		}
		var reg serve.RegisterResponse
		if err := json.Unmarshal(raw, &reg); err != nil {
			fatalf("register pattern %d: %v", i, err)
		}
		ids[i] = reg.ID
	}
	return ids
}

func percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}

// configResult is one configuration's measured block of the report.
type configResult struct {
	Name          string  `json:"name"`
	Shards        int     `json:"shards"`
	WallSeconds   float64 `json:"wall_s"`
	ThroughputRPS float64 `json:"throughput_rps"`
	P50Millis     float64 `json:"p50_ms"`
	P95Millis     float64 `json:"p95_ms"`
	P99Millis     float64 `json:"p99_ms"`
	Errors        int     `json:"errors"`

	Hits            uint64  `json:"pool_hits"`
	Misses          uint64  `json:"pool_misses"`
	LockWaitSeconds float64 `json:"lock_wait_s"`
	LockHoldSeconds float64 `json:"lock_hold_s"`

	CalRequests        int     `json:"cal_requests"`
	CalServiceSeconds  float64 `json:"cal_service_s"`
	CalLockHoldSeconds float64 `json:"cal_lock_hold_s"`
	SerializedFraction float64 `json:"serialized_fraction"`

	Simulated []simPoint `json:"simulated"`
}

type simPoint struct {
	Cores         int     `json:"cores"`
	MakespanS     float64 `json:"makespan_s"`
	ThroughputRPS float64 `json:"throughput_rps"`
}

type report struct {
	Generated   string             `json:"generated"`
	HostCPUs    int                `json:"host_cpus"`
	TimingMode  string             `json:"timing_mode"`
	Clients     int                `json:"clients"`
	PerClient   int                `json:"requests_per_client"`
	Patterns    int                `json:"patterns"`
	NBase       int                `json:"n_base"`
	Threads     int                `json:"threads"`
	Mix         map[string]float64 `json:"mix"`
	Configs     []configResult     `json:"configs"`
	SpeedupReal float64            `json:"sharded_vs_single_real_wall"`
	SpeedupSim  map[string]float64 `json:"sharded_vs_single_simulated"`
}

// runConfig measures one pool configuration against the workload: the
// concurrent phase gives real wall clock and latency percentiles, the
// sequential calibration phase gives the per-request service times and
// aggregate lock-hold fraction the simulated replay consumes.
func runConfig(name string, shardCount int, mats []*basker.Matrix, workload []workItem, cores []int) configResult {
	// MaxCachedPatterns is unlimited in both configurations so the
	// comparison isolates what sharding changes (lock contention and
	// per-shard eviction-scan cost), not aggregate symbolic-cache capacity.
	pool := basker.NewShardedPool(shardCount, basker.PoolOptions{
		Options:           basker.Options{Threads: *threads, BigBlockMin: 64},
		MaxBytes:          *maxByt,
		MaxCachedPatterns: -1,
		MeterLock:         true,
	})
	srv := serve.NewServer(pool, serve.Options{})
	do := func(path string, body []byte) (int, []byte) {
		req := httptest.NewRequest("POST", path, bytes.NewReader(body))
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, req)
		return rec.Code, rec.Body.Bytes()
	}
	ids := register(do, mats)
	_ = ids // ids are baked into the workload (stable content-derived ids)

	// Concurrent phase: closed-loop clients, each walking its slice of the
	// stream back-to-back.
	nClients := *clients
	if nClients > len(workload) {
		nClients = len(workload)
	}
	lat := make([]float64, len(workload))
	var errs int64
	var errMu sync.Mutex
	var wg sync.WaitGroup
	t0 := time.Now()
	for c := 0; c < nClients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := c; i < len(workload); i += nClients {
				it := workload[i]
				req := httptest.NewRequest("POST", it.path, bytes.NewReader(it.body))
				rec := httptest.NewRecorder()
				s0 := time.Now()
				srv.ServeHTTP(rec, req)
				lat[i] = time.Since(s0).Seconds()
				if rec.Code != http.StatusOK {
					errMu.Lock()
					errs++
					if errs == 1 {
						fmt.Fprintf(os.Stderr, "baskerload: %s -> %d: %s\n", it.path, rec.Code, rec.Body.Bytes())
					}
					errMu.Unlock()
				}
			}
		}(c)
	}
	wg.Wait()
	wall := time.Since(t0).Seconds()
	stats := pool.Stats()

	sorted := append([]float64(nil), lat...)
	sort.Float64s(sorted)

	res := configResult{
		Name:            name,
		Shards:          pool.NumShards(),
		WallSeconds:     wall,
		ThroughputRPS:   float64(len(workload)) / wall,
		P50Millis:       percentile(sorted, 0.50) * 1e3,
		P95Millis:       percentile(sorted, 0.95) * 1e3,
		P99Millis:       percentile(sorted, 0.99) * 1e3,
		Errors:          int(errs),
		Hits:            stats.Hits,
		Misses:          stats.Misses,
		LockWaitSeconds: stats.LockWaitSeconds,
		LockHoldSeconds: stats.LockHoldSeconds,
	}

	// Calibration phase: the warmed server serves a prefix of the stream
	// sequentially; per-request service time is measured directly and the
	// aggregate lock-hold delta gives the serialized fraction. The stream
	// runs calPasses times with GC off and each request keeps its minimum —
	// a single GC or scheduler pause on this shared host would otherwise be
	// replayed as 100-500x-the-mean "work" and floor the simulated
	// makespan at high core counts.
	calN := *calN
	if calN <= 0 || calN > len(workload) {
		calN = len(workload)
	}
	const calPasses = 3
	gcPrev := debug.SetGCPercent(-1)
	before := pool.Stats()
	service := make([]float64, calN)
	shardIdx := make([]int, calN)
	var total float64
	for pass := 0; pass < calPasses; pass++ {
		runtime.GC()
		for i := 0; i < calN; i++ {
			it := workload[i]
			req := httptest.NewRequest("POST", it.path, bytes.NewReader(it.body))
			rec := httptest.NewRecorder()
			s0 := time.Now()
			srv.ServeHTTP(rec, req)
			s := time.Since(s0).Seconds()
			total += s
			if pass == 0 || s < service[i] {
				service[i] = s
			}
			shardIdx[i] = pool.ShardIndex(mats[it.pat])
		}
	}
	after := pool.Stats()
	debug.SetGCPercent(gcPrev)
	lockHold := after.LockHoldSeconds - before.LockHoldSeconds
	frac := 0.0
	if total > 0 {
		frac = lockHold / total
	}
	res.CalRequests = calN
	res.CalServiceSeconds = total
	res.CalLockHoldSeconds = lockHold
	res.SerializedFraction = frac

	// Simulated replay: list-schedule the measured stream onto p cores.
	// Each request occupies a core for its measured service time and its
	// shard's lock for the serialized share (frac × service, the measured
	// aggregate hold split pro rata). The single-shard configuration routes
	// every request through one lock — the serialization sharding divides.
	for _, p := range cores {
		mk := simulateMakespan(service, shardIdx, frac, p, pool.NumShards())
		res.Simulated = append(res.Simulated, simPoint{
			Cores:         p,
			MakespanS:     mk,
			ThroughputRPS: float64(calN) / mk,
		})
	}
	return res
}

// simulateMakespan replays measured requests onto `cores` workers and
// `locks` shard mutexes: request i needs its lock exclusively for h_i =
// frac*s_i starting at dispatch, and a core for all of s_i.
func simulateMakespan(service []float64, shardIdx []int, frac float64, cores, locks int) float64 {
	coreFree := make([]float64, cores)
	lockFree := make([]float64, locks)
	end := 0.0
	for i, s := range service {
		// Earliest-free core (cores are interchangeable).
		c := 0
		for j := 1; j < cores; j++ {
			if coreFree[j] < coreFree[c] {
				c = j
			}
		}
		l := shardIdx[i] % locks
		start := coreFree[c]
		if lockFree[l] > start {
			start = lockFree[l]
		}
		h := frac * s
		lockFree[l] = start + h
		coreFree[c] = start + s
		if coreFree[c] > end {
			end = coreFree[c]
		}
	}
	return end
}

func parseCores(s string) []int {
	var out []int
	for _, f := range bytes.Split([]byte(s), []byte(",")) {
		var c int
		if _, err := fmt.Sscanf(string(f), "%d", &c); err != nil || c < 1 {
			fatalf("bad -simcores entry %q", f)
		}
		out = append(out, c)
	}
	return out
}

func main() {
	flag.Parse()
	if *urlFlag != "" {
		runURLMode()
		return
	}

	mats := mkPatterns(*patterns, *nBase)
	// Pattern ids are content-derived, so one registration pass against a
	// throwaway server yields the ids the workload bodies can bake in.
	idPool := basker.NewShardedPool(1, basker.PoolOptions{Options: basker.Options{Threads: 1}})
	idSrv := serve.NewServer(idPool, serve.Options{})
	ids := register(func(path string, body []byte) (int, []byte) {
		req := httptest.NewRequest("POST", path, bytes.NewReader(body))
		rec := httptest.NewRecorder()
		idSrv.ServeHTTP(rec, req)
		return rec.Code, rec.Body.Bytes()
	}, mats)

	total := *clients * *perCli
	rng := rand.New(rand.NewSource(*seed))
	workload := mkWorkload(mats, ids, total, rng)
	cores := parseCores(*simCores)

	fmt.Printf("baskerload: %d clients × %d requests over %d patterns (n = %d…%d), %d-thread factors\n",
		*clients, *perCli, *patterns, mats[0].N, mats[len(mats)-1].N, *threads)
	fmt.Printf("timing mode: real wall clock on %d CPU(s) + simulated p-core replay from measured segments\n\n", runtime.NumCPU())

	sharded := runConfig(fmt.Sprintf("sharded-%d", *shards), *shards, mats, workload, cores)
	single := runConfig("single-shard", 1, mats, workload, cores)

	rep := report{
		Generated:  time.Now().UTC().Format(time.RFC3339),
		HostCPUs:   runtime.NumCPU(),
		TimingMode: "real-wall-1core+simulated-replay",
		Clients:    *clients,
		PerClient:  *perCli,
		Patterns:   *patterns,
		NBase:      *nBase,
		Threads:    *threads,
		Mix:        map[string]float64{"solve": 0.75, "refresh": 0.15, "factor": 0.10},
		Configs:    []configResult{sharded, single},
		SpeedupSim: map[string]float64{},
	}
	if sharded.WallSeconds > 0 {
		rep.SpeedupReal = single.WallSeconds / sharded.WallSeconds
	}

	fmt.Printf("%-14s %8s %10s %9s %9s %9s %12s %12s\n",
		"config", "shards", "rps", "p50 ms", "p95 ms", "p99 ms", "lock wait s", "lock hold s")
	for _, r := range rep.Configs {
		fmt.Printf("%-14s %8d %10.0f %9.3f %9.3f %9.3f %12.4f %12.4f\n",
			r.Name, r.Shards, r.ThroughputRPS, r.P50Millis, r.P95Millis, r.P99Millis,
			r.LockWaitSeconds, r.LockHoldSeconds)
		if r.Errors > 0 {
			fatalf("%s: %d request(s) failed", r.Name, r.Errors)
		}
	}
	fmt.Printf("\nserialized fraction (measured lock hold / service): sharded %.3f, single %.3f\n",
		sharded.SerializedFraction, single.SerializedFraction)
	fmt.Printf("\nsimulated p-core replay (measured segments; single-shard serializes on one lock):\n")
	fmt.Printf("%6s %18s %18s %9s\n", "cores", "sharded rps", "single rps", "speedup")
	for i, sp := range sharded.Simulated {
		sg := single.Simulated[i]
		speed := sp.ThroughputRPS / sg.ThroughputRPS
		rep.SpeedupSim[fmt.Sprintf("%d", sp.Cores)] = speed
		fmt.Printf("%6d %18.0f %18.0f %8.2fx\n", sp.Cores, sp.ThroughputRPS, sg.ThroughputRPS, speed)
	}
	fmt.Printf("\nreal wall clock on this host: sharded %.3fs vs single %.3fs (%.2fx on %d CPU)\n",
		sharded.WallSeconds, single.WallSeconds, rep.SpeedupReal, runtime.NumCPU())

	if *jsonOut != "" {
		blob, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fatalf("marshal report: %v", err)
		}
		if err := os.WriteFile(*jsonOut, append(blob, '\n'), 0o644); err != nil {
			fatalf("write %s: %v", *jsonOut, err)
		}
		fmt.Printf("wrote %s\n", *jsonOut)
	}
}

// runURLMode bursts against a live server over real HTTP — the CI smoke
// path. Patterns are registered first, then every client fires mixed
// traffic; any non-2xx fails the run.
func runURLMode() {
	base := *urlFlag
	client := &http.Client{Timeout: 30 * time.Second}
	do := func(path string, body []byte) (int, []byte) {
		resp, err := client.Post(base+path, "application/json", bytes.NewReader(body))
		if err != nil {
			fatalf("POST %s: %v", path, err)
		}
		defer resp.Body.Close()
		raw, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, raw
	}
	mats := mkPatterns(*patterns, *nBase)
	ids := register(do, mats)
	rng := rand.New(rand.NewSource(*seed))
	workload := mkWorkload(mats, ids, *clients**perCli, rng)

	lat := make([]float64, len(workload))
	var errs int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	t0 := time.Now()
	for c := 0; c < *clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := c; i < len(workload); i += *clients {
				it := workload[i]
				s0 := time.Now()
				status, raw := do(it.path, it.body)
				lat[i] = time.Since(s0).Seconds()
				if status != http.StatusOK {
					mu.Lock()
					errs++
					if errs == 1 {
						fmt.Fprintf(os.Stderr, "baskerload: %s -> %d: %s\n", it.path, status, raw)
					}
					mu.Unlock()
				}
			}
		}(c)
	}
	wg.Wait()
	wall := time.Since(t0).Seconds()
	sort.Float64s(lat)
	fmt.Printf("baskerload: %d requests against %s in %.3fs (%.0f rps)\n",
		len(workload), base, wall, float64(len(workload))/wall)
	fmt.Printf("latency: p50 %.3fms  p95 %.3fms  p99 %.3fms\n",
		percentile(lat, 0.50)*1e3, percentile(lat, 0.95)*1e3, percentile(lat, 0.99)*1e3)
	if errs > 0 {
		fatalf("%d request(s) returned non-2xx", errs)
	}
	fmt.Println("all responses 2xx")
}
