// Command baskersolve reads a MatrixMarket matrix, factors it with a chosen
// solver, solves against a right-hand side of ones (or a given .mtx
// vector), and reports the residual and factorization statistics.
//
// Usage:
//
//	baskersolve -matrix=A.mtx [-solver=basker|klu|pmkl|slumt] [-threads=4]
package main

import (
	"context"
	"flag"
	"fmt"
	"math"
	"os"

	"repro/internal/core"
	"repro/internal/klu"
	"repro/internal/pmkl"
	"repro/internal/slumt"
	"repro/internal/sparse"
	"repro/internal/trace"
)

var (
	matrixPath = flag.String("matrix", "", "MatrixMarket file to solve (required)")
	solver     = flag.String("solver", "basker", "basker | klu | pmkl | slumt")
	threads    = flag.Int("threads", 1, "worker goroutines for parallel solvers")
	traceOut   = flag.String("trace", "",
		"basker only: record the scheduler timeline, print per-sweep profiles, and write Chrome trace-event JSON to this path (loadable in Perfetto)")
	timeout = flag.Duration("timeout", 0,
		"basker only: overall deadline for the factorization (context.WithTimeout) and per-sweep stall watchdog (Options.StallTimeout); a run past the deadline or a wedged sweep aborts with a typed error instead of hanging (0 disables)")
)

func main() {
	flag.Parse()
	if *matrixPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	f, err := os.Open(*matrixPath)
	if err != nil {
		fail(err)
	}
	a, err := sparse.ReadMatrixMarket(f)
	f.Close()
	if err != nil {
		fail(err)
	}
	fmt.Printf("matrix: %d×%d, %d nonzeros\n", a.M, a.N, a.Nnz())

	// Right-hand side: A·1 so the exact solution is all ones.
	ones := make([]float64, a.N)
	for i := range ones {
		ones[i] = 1
	}
	b := make([]float64, a.M)
	a.MulVec(b, ones)
	rhs := append([]float64(nil), b...)

	var nnzLU int
	switch *solver {
	case "basker":
		opts := core.DefaultOptions()
		opts.Threads = *threads
		opts.StallTimeout = *timeout
		var rec *trace.Recorder
		if *traceOut != "" {
			rec = trace.NewRecorder(0)
			opts.Trace = rec
		}
		ctx := context.Background()
		if *timeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, *timeout)
			defer cancel()
		}
		num, err := core.FactorDirectCtx(ctx, a, opts)
		if err != nil {
			fail(err)
		}
		num.Solve(rhs)
		nnzLU = num.NnzLU()
		fmt.Printf("basker: %d BTF blocks (%d via parallel ND), BTF%% = %.1f\n",
			num.Sym.NumBlocks(), num.Sym.NumNDBlocks(), num.Sym.BTFPercent)
		if rec != nil {
			for _, sum := range rec.Summaries() {
				fmt.Println(" ", sum)
			}
			tf, err := os.Create(*traceOut)
			if err != nil {
				fail(err)
			}
			if err := rec.WriteChromeTrace(tf); err != nil {
				fail(err)
			}
			if err := tf.Close(); err != nil {
				fail(err)
			}
			fmt.Printf("Chrome trace written to %s (open in ui.perfetto.dev)\n", *traceOut)
		}
	case "klu":
		num, err := klu.FactorDirect(a, klu.DefaultOptions())
		if err != nil {
			fail(err)
		}
		num.Solve(rhs)
		nnzLU = num.NnzLU()
		fmt.Printf("klu: %d BTF blocks\n", num.Sym.NumBlocks())
	case "pmkl":
		opts := pmkl.DefaultOptions()
		opts.Threads = *threads
		num, err := pmkl.FactorDirect(a, opts)
		if err != nil {
			fail(err)
		}
		num.Solve(rhs)
		nnzLU = num.NnzLU()
		fmt.Printf("pmkl: %d supernodes\n", num.Sym.NumSupernodes())
	case "slumt":
		num, err := slumt.Factor(a, slumt.Options{Threads: *threads})
		if err != nil {
			fail(err)
		}
		num.Solve(rhs)
		nnzLU = num.NnzLU()
	default:
		fail(fmt.Errorf("unknown solver %q", *solver))
	}

	// Residual ‖Ax−b‖∞ / ‖b‖∞ and error vs the known solution.
	r := make([]float64, a.M)
	a.MulVec(r, rhs)
	res, scale, errMax := 0.0, 0.0, 0.0
	for i := range r {
		if d := math.Abs(r[i] - b[i]); d > res {
			res = d
		}
		if v := math.Abs(b[i]); v > scale {
			scale = v
		}
		if d := math.Abs(rhs[i] - 1); d > errMax {
			errMax = d
		}
	}
	if scale == 0 {
		scale = 1
	}
	fmt.Printf("|L+U| = %d (fill density %.2f)\n", nnzLU, float64(nnzLU)/float64(a.Nnz()))
	fmt.Printf("relative residual = %.3e, max error vs exact = %.3e\n", res/scale, errMax)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "baskersolve:", err)
	os.Exit(1)
}
