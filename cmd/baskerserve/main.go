// Command baskerserve runs the solver-as-a-service HTTP front end: a
// sharded factorization pool behind the JSON endpoints of package serve.
//
// Usage:
//
//	baskerserve -addr=:8080 -shards=8 -threads=4 -max-inflight=64
//
// The pool's aggregated counters appear at /debug/vars ("basker_pool", with
// the per-shard split under "basker_shards"), liveness at /healthz, and the
// structured counter block at /v1/stats.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	basker "repro"
	"repro/serve"
)

var (
	addr    = flag.String("addr", ":8080", "listen address")
	shards  = flag.Int("shards", 0, "pool shards (rounded up to a power of two; 0 picks a CPU-derived default)")
	threads = flag.Int("threads", 0, "worker goroutines per factorization (0 = GOMAXPROCS)")
	maxConc = flag.Int("max-concurrent-factors", 0,
		"admission cap on concurrent fresh factorizations across all shards (0 = unlimited)")
	maxBytes = flag.Int64("max-bytes", 0,
		"memory bound on idle cached factorizations in bytes, divided across shards (0 = unbounded)")
	maxPatterns = flag.Int("max-cached-patterns", 0,
		"symbolic-analysis cache capacity, divided across shards (0 = default)")
	maxInflight = flag.Int("max-inflight", 256,
		"HTTP requests processed concurrently before shedding 503 overloaded (0 = unlimited)")
	defaultTimeout = flag.Duration("default-timeout", 30*time.Second,
		"deadline applied to requests that carry no timeout_ms (0 = none)")
	stallTimeout = flag.Duration("stall-timeout", 10*time.Second,
		"per-sweep stall watchdog; a wedged sweep aborts with 503 stalled instead of hanging (0 disables)")
	validate = flag.Bool("validate", true,
		"screen incoming matrices (CSC invariants, finiteness) before factoring")
)

func main() {
	flag.Parse()
	pool := basker.NewShardedPool(*shards, basker.PoolOptions{
		Options: basker.Options{
			Threads:        *threads,
			BigBlockMin:    64,
			StallTimeout:   *stallTimeout,
			ValidateInputs: *validate,
		},
		MaxConcurrentFactors: *maxConc,
		MaxBytes:             *maxBytes,
		MaxCachedPatterns:    *maxPatterns,
		MeterLock:            true,
	})
	pool.PublishExpvar("basker_pool")
	pool.PublishShardExpvar("basker_shards")

	s := serve.NewServer(pool, serve.Options{
		MaxInFlight:    *maxInflight,
		DefaultTimeout: *defaultTimeout,
	})
	srv := &http.Server{Addr: *addr, Handler: s.Handler()}

	// Graceful shutdown: stop accepting, drain in-flight solves, exit.
	done := make(chan struct{})
	go func() {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		log.Printf("shutting down")
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			log.Printf("shutdown: %v", err)
		}
		close(done)
	}()

	log.Printf("baskerserve listening on %s (%d shards)", *addr, pool.NumShards())
	if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	<-done
}
